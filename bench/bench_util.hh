/**
 * @file
 * Shared helpers for the figure/table regeneration benches.
 */

#ifndef MECH_BENCH_BENCH_UTIL_HH
#define MECH_BENCH_BENCH_UTIL_HH

#include <cstdlib>
#include <string>

#include "mech/mech.hh"

namespace mech::bench {

/**
 * Trace length for a bench: `--instructions N` argument, else the
 * MECH_TRACE_LEN environment variable, else @p fallback.  Benches
 * default to container-friendly lengths; raise for tighter statistics.
 */
inline InstCount
traceLength(int argc, char **argv, InstCount fallback)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) == "--instructions")
            return std::strtoull(argv[i + 1], nullptr, 10);
    }
    if (const char *env = std::getenv("MECH_TRACE_LEN"))
        return std::strtoull(env, nullptr, 10);
    return fallback;
}

/**
 * Worker threads for a bench: `--threads N` argument, else the
 * MECH_THREADS environment variable, else every hardware thread.
 */
inline unsigned
threadCount(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) == "--threads")
            return ThreadPool::sanitizeWorkerCount(
                std::strtoll(argv[i + 1], nullptr, 10));
    }
    if (const char *env = std::getenv("MECH_THREADS"))
        return ThreadPool::sanitizeWorkerCount(
            std::strtoll(env, nullptr, 10));
    return ThreadPool::defaultWorkerCount();
}

/** Paper-style coarse stack groups used by Figs. 4 and 8. */
struct CoarseStack
{
    double base = 0, muldiv = 0, l2access = 0, l2miss = 0, tlb = 0,
           bpredMiss = 0, bpredTaken = 0, deps = 0, ifetch = 0;

    double
    total() const
    {
        return base + muldiv + l2access + l2miss + tlb + bpredMiss +
               bpredTaken + deps + ifetch;
    }
};

/** Regroup a fine-grained model stack into the paper's categories. */
inline CoarseStack
coarsen(const CpiStack &stack)
{
    CoarseStack c;
    c.base = stack[CpiComponent::Base];
    c.muldiv =
        stack[CpiComponent::LongLat] + stack[CpiComponent::L1DAccess];
    c.l2access = stack[CpiComponent::L2Access];
    c.l2miss = stack[CpiComponent::L2Miss];
    c.tlb = stack.tlb();
    c.bpredMiss = stack[CpiComponent::BpredMiss];
    c.bpredTaken = stack[CpiComponent::BpredTakenHit];
    c.deps = stack.dependencies();
    c.ifetch = stack.ifetch();
    return c;
}

} // namespace mech::bench

#endif // MECH_BENCH_BENCH_UTIL_HH
