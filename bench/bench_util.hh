/**
 * @file
 * Shared helpers for the figure/table regeneration benches.
 *
 * Every bench takes the same standard options (--instructions,
 * --threads, --profile-dir) parsed through the shared cli::ArgParser,
 * with MECH_TRACE_LEN / MECH_THREADS environment fallbacks so suite
 * runs can be resized without editing command lines.
 */

#ifndef MECH_BENCH_BENCH_UTIL_HH
#define MECH_BENCH_BENCH_UTIL_HH

#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>

#include "harness.hh"
#include "mech/mech.hh"

namespace mech::bench {

/** Standard options shared by every bench. */
struct Args
{
    /** Dynamic instructions per benchmark trace. */
    InstCount instructions = 0;

    /** Worker threads for batched sweeps. */
    unsigned threads = 0;

    /** Directory of .mprof artifacts ("" = profile in-process). */
    std::string profileDir;

    /** Path for the machine-readable JSON artifact ("" = none). */
    std::string jsonPath;

    /** Loaded `.mdesc` machine description ("" = built-in params). */
    std::string mdescPath;
};

/**
 * Parse the standard bench options.
 *
 * Defaults: @p fallback_instructions (or MECH_TRACE_LEN), every
 * hardware thread (or MECH_THREADS).  Benches default to
 * container-friendly lengths; raise for tighter statistics.  Exits
 * with a usage string on --help or bad arguments.
 *
 * Only advertise what the bench consumes: @p with_threads /
 * @p with_profile_dir drop those options from the parser so a
 * serial or artifact-incompatible bench rejects them loudly instead
 * of accepting and silently ignoring them.  A driver with options of
 * its own registers them through @p extra_options rather than
 * re-implementing this env/default/sanitize pipeline.
 */
inline Args
parseArgs(int argc, char **argv, const std::string &prog,
          const std::string &description,
          InstCount fallback_instructions, bool with_threads = true,
          bool with_profile_dir = true,
          const std::function<void(cli::ArgParser &)> &extra_options = {})
{
    Args args;
    args.instructions = fallback_instructions;
    if (const char *env = std::getenv("MECH_TRACE_LEN"))
        args.instructions = std::strtoull(env, nullptr, 10);
    args.threads = ThreadPool::defaultWorkerCount();
    if (const char *env = std::getenv("MECH_THREADS")) {
        args.threads = ThreadPool::sanitizeWorkerCount(
            std::strtoll(env, nullptr, 10));
    }

    cli::ArgParser parser(prog, description);
    parser.add("instructions", "N",
               "dynamic instructions per benchmark trace",
               &args.instructions);
    if (with_threads) {
        parser.add("threads", "N",
                   "worker threads for batched sweeps (0 = all "
                   "hardware threads)",
                   &args.threads);
    }
    if (with_profile_dir) {
        parser.add("profile-dir", "dir",
                   "load .mprof artifacts from this directory instead "
                   "of re-profiling (see tools/mech_profile)",
                   &args.profileDir);
    }
    parser.add("json", "path",
               "also write the run's headline numbers as a "
               "schema-versioned JSON artifact (docs/benchmarking.md)",
               &args.jsonPath);
    parser.add("mdesc", "file",
               "run on a characterized .mdesc machine description "
               "instead of the built-in Table 1 parameters (see "
               "tools/mech_characterize)",
               &args.mdescPath);
    if (extra_options)
        extra_options(parser);
    parser.parse(argc, argv);
    args.threads = ThreadPool::sanitizeWorkerCount(
        static_cast<long long>(args.threads));
    if (!args.mdescPath.empty())
        applyMachineDescription(args.mdescPath);
    return args;
}

/**
 * Build a study for @p bench: loaded from its artifact when
 * --profile-dir supplies one, otherwise profiled in-process.
 */
inline DseStudy
makeStudy(const BenchmarkProfile &bench, const Args &args)
{
    return DseStudy::loadOrProfile(args.profileDir, bench,
                                   args.instructions);
}

/** Point a runner at --profile-dir when one was given. */
inline void
applyProfileDir(StudyRunner &runner, const Args &args)
{
    if (!args.profileDir.empty())
        runner.useProfileDir(args.profileDir);
}

/**
 * Write @p report to args.jsonPath when --json was given.
 *
 * Every figure/table driver calls this last, so each reproduction
 * doubles as a machine-readable artifact producer on demand.
 */
inline void
maybeWriteReport(const Args &args, const BenchReport &report)
{
    if (args.jsonPath.empty())
        return;
    try {
        saveReport(report, args.jsonPath);
        std::cout << "\nwrote " << args.jsonPath << "\n";
    } catch (const BenchIoError &e) {
        fatal(e.what());
    }
}

/** Paper-style coarse stack groups used by Figs. 4 and 8. */
struct CoarseStack
{
    double base = 0, muldiv = 0, l2access = 0, l2miss = 0, tlb = 0,
           bpredMiss = 0, bpredTaken = 0, deps = 0, ifetch = 0;

    double
    total() const
    {
        return base + muldiv + l2access + l2miss + tlb + bpredMiss +
               bpredTaken + deps + ifetch;
    }
};

/** Regroup a fine-grained model stack into the paper's categories. */
inline CoarseStack
coarsen(const CpiStack &stack)
{
    CoarseStack c;
    c.base = stack[CpiComponent::Base];
    c.muldiv =
        stack[CpiComponent::LongLat] + stack[CpiComponent::L1DAccess];
    c.l2access = stack[CpiComponent::L2Access];
    c.l2miss = stack[CpiComponent::L2Miss];
    c.tlb = stack.tlb();
    c.bpredMiss = stack[CpiComponent::BpredMiss];
    c.bpredTaken = stack[CpiComponent::BpredTakenHit];
    c.deps = stack.dependencies();
    c.ifetch = stack.ifetch();
    return c;
}

} // namespace mech::bench

#endif // MECH_BENCH_BENCH_UTIL_HH
