/**
 * @file
 * Figure 3: model-predicted CPI vs detailed-simulation CPI for the 19
 * MiBench-like benchmarks on the default configuration (Table 2).
 *
 * Paper result: average absolute error 3.1%, maximum 8.4%.
 */

#include <iostream>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace mech;
    bench::Args args = bench::parseArgs(
        argc, argv, "fig3_validation",
        "model vs detailed-simulation CPI on the default config",
        300000, /*with_threads=*/false);
    DesignPoint point = defaultDesignPoint();
    const BackendSet backends = backendSet("model,sim");

    std::cout << "=== Figure 3: CPI, model vs detailed simulation ===\n"
              << "config: " << point.label() << ", " << args.instructions
              << " instructions per benchmark\n\n";

    bench::BenchReport report = bench::makeReport("fig3_validation");
    const double t0 = bench::monotonicSeconds();

    TextTable table({"benchmark", "model CPI", "detailed CPI", "error%"});
    SummaryStats err;
    for (const auto &bench : mibenchSuite()) {
        DseStudy study = bench::makeStudy(bench, args);
        PointEvaluation ev = study.evaluate(point, backends);
        double e = ev.cpiError().value();
        err.add(e * 100.0);
        table.addRow({bench.name, TextTable::num(ev.model().cpi(), 3),
                      TextTable::num(ev.sim()->cpi(), 3),
                      TextTable::num(e * 100.0, 1)});
        report.add("fig3", bench.name, "model_cpi", ev.model().cpi(),
                   "CPI");
        report.add("fig3", bench.name, "sim_cpi", ev.sim()->cpi(),
                   "CPI");
        report.add("fig3", bench.name, "error", e * 100.0, "%");
    }
    table.print(std::cout);
    std::cout << "\naverage error: " << TextTable::num(err.mean(), 1)
              << "%   max error: " << TextTable::num(err.max(), 1)
              << "%   (paper: avg 3.1%, max 8.4%)\n";

    report.add("fig3", "suite", "error_avg", err.mean(), "%");
    report.add("fig3", "suite", "error_max", err.max(), "%");
    report.add("fig3", "suite", "wall_seconds",
               bench::monotonicSeconds() - t0, "s");
    bench::maybeWriteReport(args, report);
    return 0;
}
