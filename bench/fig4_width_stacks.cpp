/**
 * @file
 * Figure 4: model CPI stacks as a function of superscalar width
 * (W = 1..4) for sha, tiffdither and dijkstra, with detailed
 * simulation CPI as the reference line.
 *
 * Paper storyline: sha benefits most from width (high ILP), dijkstra
 * least — its shrinking base component is eaten by the growing
 * dependency component — and tiffdither sits in between.
 */

#include <iostream>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace mech;
    bench::Args args = bench::parseArgs(
        argc, argv, "fig4_width_stacks",
        "model CPI stacks across superscalar widths", 300000,
        /*with_threads=*/false);
    const BackendSet backends = backendSet("model,sim");

    std::cout << "=== Figure 4: CPI stacks vs superscalar width ===\n"
              << args.instructions << " instructions per benchmark\n\n";

    bench::BenchReport report = bench::makeReport("fig4_width_stacks");
    const double t0 = bench::monotonicSeconds();

    for (const char *name : {"sha", "tiffdither", "dijkstra"}) {
        DseStudy study = bench::makeStudy(profileByName(name), args);
        std::cout << "--- " << name << " ---\n";
        TextTable table({"W", "base", "mul/div", "l2 access", "l2 miss",
                         "tlb", "bpred miss", "bpred hit(taken)",
                         "deps", "ifetch", "model CPI", "detailed CPI"});
        for (std::uint32_t w = 1; w <= 4; ++w) {
            DesignPoint p = defaultDesignPoint();
            p.width = w;
            PointEvaluation ev = study.evaluate(p, backends);
            const EvalResult &model = ev.model();
            auto per = model.stack.perInstruction(model.instructions);
            bench::CoarseStack c = bench::coarsen(per);
            table.addRow({std::to_string(w), TextTable::num(c.base, 3),
                          TextTable::num(c.muldiv, 3),
                          TextTable::num(c.l2access, 3),
                          TextTable::num(c.l2miss, 3),
                          TextTable::num(c.tlb, 3),
                          TextTable::num(c.bpredMiss, 3),
                          TextTable::num(c.bpredTaken, 3),
                          TextTable::num(c.deps, 3),
                          TextTable::num(c.ifetch, 3),
                          TextTable::num(model.cpi(), 3),
                          TextTable::num(ev.sim()->cpi(), 3)});
            const std::string id =
                std::string(name) + "/w" + std::to_string(w);
            report.add("fig4", id, "model_cpi", model.cpi(), "CPI");
            report.add("fig4", id, "sim_cpi", ev.sim()->cpi(), "CPI");
            report.add("fig4", id, "deps_cpi", c.deps, "CPI");
        }
        table.print(std::cout);
        std::cout << '\n';
    }
    std::cout << "paper shape: sha scales with W; dijkstra saturates "
                 "beyond W=2 as the dependency component grows.\n";

    report.add("fig4", "suite", "wall_seconds",
               bench::monotonicSeconds() - t0, "s");
    bench::maybeWriteReport(args, report);
    return 0;
}
