/**
 * @file
 * Figure 5: cumulative distribution of the model's CPI prediction
 * error across the full Table 2 design space (192 points x the
 * MiBench-like suite), plus the exploration-speedup measurement that
 * motivates the paper (detailed simulation of the space: 290 days;
 * the model: hours, dominated by profiling).
 *
 * Paper result: average error 2.5%, 90% of points below 6%, max 9.6%.
 */

#include <chrono>
#include <iostream>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace mech;
    using clock = std::chrono::steady_clock;
    bench::Args args = bench::parseArgs(
        argc, argv, "fig5_error_cdf",
        "model error CDF across the full Table 2 design space", 50000,
        /*with_threads=*/false);

    auto space = table2Space();
    const auto &suite = mibenchSuite();
    const BackendSet model_only = backendSet("model");
    const BackendSet with_sim = backendSet("model,sim");

    std::cout << "=== Figure 5: error CDF across the design space ===\n"
              << space.size() << " design points x " << suite.size()
              << " benchmarks, " << args.instructions
              << " instructions each\n\n";

    bench::BenchReport report = bench::makeReport("fig5_error_cdf");
    std::vector<double> errors;
    double sim_seconds = 0.0, model_seconds = 0.0, profile_seconds = 0.0;

    for (const auto &bench : suite) {
        auto t0 = clock::now();
        DseStudy study = bench::makeStudy(bench, args);
        profile_seconds +=
            std::chrono::duration<double>(clock::now() - t0).count();
        for (const auto &point : space) {
            auto t1 = clock::now();
            PointEvaluation cheap = study.evaluate(point, model_only);
            auto t2 = clock::now();
            PointEvaluation validated = study.evaluate(point, with_sim);
            auto t3 = clock::now();
            model_seconds +=
                std::chrono::duration<double>(t2 - t1).count();
            sim_seconds +=
                std::chrono::duration<double>(t3 - t2).count();
            (void)cheap;
            errors.push_back(validated.cpiError().value() * 100.0);
        }
    }

    SummaryStats stats;
    for (double e : errors)
        stats.add(e);

    std::vector<double> thresholds;
    for (int t = 0; t <= 12; ++t)
        thresholds.push_back(static_cast<double>(t));
    auto cdf = empiricalCdf(errors, thresholds);

    TextTable table({"error <=", "fraction of design points"});
    for (std::size_t i = 0; i < thresholds.size(); ++i) {
        table.addRow({TextTable::num(thresholds[i], 0) + "%",
                      TextTable::num(cdf[i], 3)});
    }
    table.print(std::cout);

    std::cout << "\naverage error: " << TextTable::num(stats.mean(), 2)
              << "%   p90: "
              << TextTable::num(percentile(errors, 90.0), 2)
              << "%   max: " << TextTable::num(stats.max(), 2)
              << "%   (paper: avg 2.5%, 90% < 6%, max 9.6%)\n";

    std::cout << "\nexploration cost over this space ("
              << errors.size() << " evaluations):\n"
              << "  detailed simulation: "
              << TextTable::num(sim_seconds, 2) << " s\n"
              << "  profiling (once per benchmark): "
              << TextTable::num(profile_seconds, 2) << " s\n"
              << "  model evaluation: "
              << TextTable::num(model_seconds, 3) << " s\n"
              << "  speedup (sim / model eval): "
              << TextTable::num(sim_seconds / std::max(1e-9,
                                                       model_seconds),
                                0)
              << "x   (paper: ~3 orders of magnitude; profiling "
                 "dominates the model-side cost)\n";

    report.add("fig5", "space", "error_avg", stats.mean(), "%");
    report.add("fig5", "space", "error_p90",
               percentile(errors, 90.0), "%");
    report.add("fig5", "space", "error_max", stats.max(), "%");
    report.add("fig5", "space", "sim_seconds", sim_seconds, "s");
    report.add("fig5", "space", "profile_seconds", profile_seconds,
               "s");
    report.add("fig5", "space", "model_seconds", model_seconds, "s");
    report.add("fig5", "space", "sim_over_model",
               sim_seconds / std::max(1e-9, model_seconds), "speedup");
    bench::maybeWriteReport(args, report);
    return 0;
}
