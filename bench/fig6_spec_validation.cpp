/**
 * @file
 * Figure 6: model vs detailed-simulation CPI for the memory-intensive
 * SPEC-CPU2006-like workloads on the default configuration.
 *
 * Paper result: average error 4.1%, maximum 10.7%, with CPI reaching
 * ~9 for the most memory-bound benchmarks — the model stays accurate
 * when the L2-miss term dominates.
 */

#include <iostream>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace mech;
    bench::Args args = bench::parseArgs(
        argc, argv, "fig6_spec_validation",
        "model vs detailed-simulation CPI on SPEC-like workloads",
        300000, /*with_threads=*/false);
    DesignPoint point = defaultDesignPoint();
    const BackendSet backends = backendSet("model,sim");

    std::cout << "=== Figure 6: SPEC-like validation ===\n"
              << "config: " << point.label() << ", " << args.instructions
              << " instructions per benchmark\n\n";

    bench::BenchReport report = bench::makeReport("fig6_spec_validation");
    const double t0 = bench::monotonicSeconds();

    TextTable table({"benchmark", "model CPI", "detailed CPI",
                     "error%", "l2-miss share"});
    SummaryStats err;
    for (const auto &bench : specLikeSuite()) {
        DseStudy study = bench::makeStudy(bench, args);
        PointEvaluation ev = study.evaluate(point, backends);
        const EvalResult &model = ev.model();
        double e = ev.cpiError().value();
        err.add(e * 100.0);
        double miss_share =
            model.stack[CpiComponent::L2Miss] / model.cycles;
        table.addRow({bench.name, TextTable::num(model.cpi(), 3),
                      TextTable::num(ev.sim()->cpi(), 3),
                      TextTable::num(e * 100.0, 1),
                      TextTable::num(miss_share, 2)});
        report.add("fig6", bench.name, "model_cpi", model.cpi(),
                   "CPI");
        report.add("fig6", bench.name, "sim_cpi", ev.sim()->cpi(),
                   "CPI");
        report.add("fig6", bench.name, "error", e * 100.0, "%");
        report.add("fig6", bench.name, "l2_miss_share", miss_share,
                   "fraction");
    }
    table.print(std::cout);
    std::cout << "\naverage error: " << TextTable::num(err.mean(), 1)
              << "%   max error: " << TextTable::num(err.max(), 1)
              << "%   (paper: avg 4.1%, max 10.7%)\n";

    report.add("fig6", "suite", "error_avg", err.mean(), "%");
    report.add("fig6", "suite", "error_max", err.max(), "%");
    report.add("fig6", "suite", "wall_seconds",
               bench::monotonicSeconds() - t0, "s");
    bench::maybeWriteReport(args, report);
    return 0;
}
