/**
 * @file
 * Figure 7: in-order vs out-of-order CPI stacks (both from
 * mechanistic models) for the paper's 13-benchmark selection at W=4,
 * evaluated through the "model" and "ooo" backends of the registry.
 *
 * Paper observations reproduced here:
 *  - dependencies and mul/div latencies are hidden out-of-order;
 *  - branch mispredictions cost MORE out-of-order (resolution time);
 *  - the L2-miss component shrinks out-of-order (memory-level
 *    parallelism);
 *  - the I-cache component is identical on both.
 */

#include <iostream>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace mech;
    bench::Args args = bench::parseArgs(
        argc, argv, "fig7_inorder_vs_ooo",
        "in-order vs out-of-order model CPI stacks", 200000,
        /*with_threads=*/false);
    DesignPoint point = defaultDesignPoint();
    const BackendSet backends = backendSet("model,ooo");

    std::cout << "=== Figure 7: in-order vs out-of-order CPI stacks ===\n"
              << "W=4, OoO window " << OooParams{}.robSize << ", "
              << args.instructions << " instructions per benchmark\n\n";

    const char *benchmarks[] = {"cjpeg",    "dijkstra", "djpeg",
                                "lame",     "patricia", "susan_c",
                                "susan_e",  "susan_s",  "tiff2bw",
                                "tiff2rgba", "tiffdither",
                                "tiffmedian", "toast"};

    TextTable table({"benchmark", "core", "base", "mul/div", "il1+il2",
                     "dl1(l2 acc)", "dl2(mem)", "bpred miss", "deps",
                     "CPI"});

    bench::BenchReport report = bench::makeReport("fig7_inorder_vs_ooo");
    const double t0 = bench::monotonicSeconds();

    for (const char *name : benchmarks) {
        DseStudy study = bench::makeStudy(profileByName(name), args);
        PointEvaluation ev = study.evaluate(point, backends);
        report.add("fig7", name, "inorder_cpi",
                   ev.of(kModelBackend).cpi(), "CPI");
        report.add("fig7", name, "ooo_cpi", ev.of(kOooBackend).cpi(),
                   "CPI");

        auto add_row = [&](const char *core, const EvalResult &res) {
            auto per = res.stack.perInstruction(res.instructions);
            table.addRow(
                {name, core, TextTable::num(per[CpiComponent::Base], 3),
                 TextTable::num(per[CpiComponent::LongLat], 3),
                 TextTable::num(per.ifetch(), 3),
                 TextTable::num(per[CpiComponent::L2Access], 3),
                 TextTable::num(per[CpiComponent::L2Miss], 3),
                 TextTable::num(per[CpiComponent::BpredMiss], 3),
                 TextTable::num(per.dependencies(), 3),
                 TextTable::num(res.cpi(), 3)});
        };
        add_row("in-order", ev.of(kModelBackend));
        add_row("OoO", ev.of(kOooBackend));
    }
    table.print(std::cout);

    std::cout << "\npaper checks: deps/mul-div ~0 for OoO; OoO bpred "
                 "penalty larger per miss; OoO dl2 smaller (MLP); "
                 "il1+il2 identical.\n";

    report.add("fig7", "suite", "wall_seconds",
               bench::monotonicSeconds() - t0, "s");
    bench::maybeWriteReport(args, report);
    return 0;
}
