/**
 * @file
 * Figure 8: normalized cycle stacks under compiler optimizations for
 * the five most sensitive benchmarks: -O3 (scheduled), -O3
 * -fno-schedule-insns ("nosched"), and -O3 -funroll-loops ("unroll").
 *
 * Cycle stacks (CPI stack x dynamic instruction count) are normalized
 * to the -O3 variant, as in the paper.  Expected mechanisms:
 * scheduling widens dependency distances (sometimes at spill cost);
 * unrolling cuts instruction count and taken branches and gives the
 * scheduler a wider window.
 */

#include <iostream>

#include "bench_util.hh"

namespace {

using namespace mech;

/** Build the program variant for one compiler setting. */
Program
variantProgram(const BenchmarkProfile &bench, const std::string &variant)
{
    Program prog = buildProgram(bench);
    SchedOptions sched;
    sched.goal = SchedGoal::Spread;
    sched.availRegs = 14;
    sched.modelSpills = true;

    if (variant == "nosched") {
        SchedOptions tighten;
        tighten.goal = SchedGoal::Tighten;
        scheduleProgram(prog, tighten);
    } else if (variant == "O3") {
        scheduleProgram(prog, sched);
    } else if (variant == "unroll") {
        unrollLoops(prog, 2);
        scheduleProgram(prog, sched);
    }
    return prog;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Args args = bench::parseArgs(
        argc, argv, "fig8_compiler_stacks",
        "normalized cycle stacks across compiler optimizations",
        150000, /*with_threads=*/false,
        // Each variant profiles a freshly transformed program, so
        // saved artifacts cannot apply here.
        /*with_profile_dir=*/false);
    DesignPoint point = defaultDesignPoint();

    std::cout << "=== Figure 8: cycle stacks across compiler "
                 "optimizations ===\n"
              << "cycles normalized to the O3 variant; "
              << args.instructions
              << " instructions profiled per variant\n\n";

    const char *benchmarks[] = {"gsm_c", "sha", "stringsearch",
                                "susan_s", "tiffdither"};
    const char *variants[] = {"nosched", "O3", "unroll"};

    bench::BenchReport report = bench::makeReport("fig8_compiler_stacks");
    const double t0 = bench::monotonicSeconds();

    for (const char *name : benchmarks) {
        const BenchmarkProfile &bench = profileByName(name);
        std::cout << "--- " << name << " ---\n";
        TextTable table({"variant", "base", "mul/div", "l2", "bpred miss",
                         "bpred hit(taken)", "deps", "total cycles",
                         "normalized"});

        // Evaluate all variants; normalize to O3 afterwards.
        struct Row
        {
            std::string variant;
            bench::CoarseStack stack;
            double cycles;
        };
        std::vector<Row> rows;
        double o3_cycles = 1.0;

        for (const char *variant : variants) {
            Program prog = variantProgram(bench, variant);
            DseStudy study(bench, args.instructions, prog);
            PointEvaluation ev = study.evaluate(point);
            const EvalResult &model = ev.model();
            // Cycle stack = CPI stack x N: the model stack already is
            // cycles; normalization happens against O3 below.
            Row row{variant, bench::coarsen(model.stack), model.cycles};
            if (row.variant == "O3")
                o3_cycles = row.cycles;
            rows.push_back(row);
        }

        for (const auto &row : rows) {
            auto norm = [&](double v) {
                return TextTable::num(v / o3_cycles, 3);
            };
            table.addRow({row.variant, norm(row.stack.base),
                          norm(row.stack.muldiv),
                          norm(row.stack.l2access + row.stack.l2miss),
                          norm(row.stack.bpredMiss),
                          norm(row.stack.bpredTaken),
                          norm(row.stack.deps),
                          TextTable::num(row.cycles, 0),
                          norm(row.cycles)});
            const std::string id =
                std::string(name) + "/" + row.variant;
            report.add("fig8", id, "cycles", row.cycles, "cycles");
            report.add("fig8", id, "normalized_cycles",
                       row.cycles / o3_cycles, "x");
        }
        table.print(std::cout);
        std::cout << '\n';
    }

    std::cout << "paper checks: scheduling shrinks deps (sometimes "
                 "grows base via spills); unrolling shrinks base and "
                 "taken-branch penalties and helps deps further.\n";

    report.add("fig8", "suite", "wall_seconds",
               bench::monotonicSeconds() - t0, "s");
    bench::maybeWriteReport(args, report);
    return 0;
}
