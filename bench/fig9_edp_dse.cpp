/**
 * @file
 * Figure 9: energy-delay-product design-space exploration for
 * adpcm_d, gsm_c, lame and patricia: model-estimated EDP vs
 * detailed-simulation EDP across the Table 2 space, configurations
 * ordered from high to low (detailed) EDP.
 *
 * Paper result: the model finds the same EDP-optimal configuration
 * for 12/19 benchmarks, within 0.5% of optimal for 6 more, within 5%
 * for the last (adpcm_d, where it picks width 2 instead of 3).
 */

#include <algorithm>
#include <iostream>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace mech;
    bench::Args args = bench::parseArgs(
        argc, argv, "fig9_edp_dse",
        "EDP design-space exploration, model vs detailed simulation",
        50000);
    auto space = table2Space();

    std::cout << "=== Figure 9: EDP design-space exploration ===\n"
              << space.size() << " design points, " << args.instructions
              << " instructions per benchmark, " << args.threads
              << " worker thread(s)\n\n";

    // One batched run: 4 benchmarks x 192 points x (model + detailed
    // sim), sharded across the pool.
    bench::BenchReport report = bench::makeReport("fig9_edp_dse");
    const double t0 = bench::monotonicSeconds();

    StudyRunner runner({profileByName("adpcm_d"), profileByName("gsm_c"),
                        profileByName("lame"), profileByName("patricia")},
                       args.instructions, backendSet("model,sim"));
    bench::applyProfileDir(runner, args);
    auto results = runner.evaluateAll(space, args.threads);
    report.add("fig9", "sweep", "wall_seconds",
               bench::monotonicSeconds() - t0, "s");

    for (auto &result : results) {
        const std::string &name = result.benchmark;
        std::vector<PointEvaluation> &evals = result.evals;

        auto sim_edp = [](const PointEvaluation &ev) {
            return ev.of(kSimBackend).edp;
        };
        auto model_edp = [](const PointEvaluation &ev) {
            return ev.model().edp;
        };

        std::sort(evals.begin(), evals.end(),
                  [&](const auto &a, const auto &b) {
                      return sim_edp(a) > sim_edp(b);
                  });

        auto model_best = std::min_element(
            evals.begin(), evals.end(),
            [&](const auto &a, const auto &b) {
                return model_edp(a) < model_edp(b);
            });
        auto sim_best = std::min_element(
            evals.begin(), evals.end(),
            [&](const auto &a, const auto &b) {
                return sim_edp(a) < sim_edp(b);
            });

        std::cout << "--- " << name
                  << " (EDP in J*s, ordered high->low detailed EDP; "
                     "every 16th point shown) ---\n";
        TextTable table({"configuration", "estimated EDP",
                         "detailed EDP"});
        for (std::size_t i = 0; i < evals.size(); i += 16) {
            table.addRow({evals[i].point.label(),
                          TextTable::num(model_edp(evals[i]) * 1e6, 4),
                          TextTable::num(sim_edp(evals[i]) * 1e6, 4)});
        }
        table.addRow({evals.back().point.label(),
                      TextTable::num(model_edp(evals.back()) * 1e6, 4),
                      TextTable::num(sim_edp(evals.back()) * 1e6, 4)});
        table.print(std::cout);
        std::cout << "  (EDP shown in uJ*s)\n";

        double edp_gap = (sim_edp(*model_best) - sim_edp(*sim_best)) /
                         sim_edp(*sim_best);
        std::cout << "  detailed optimum: " << sim_best->point.label()
                  << "\n  model picks:      "
                  << model_best->point.label()
                  << "\n  EDP excess of the model's pick: "
                  << TextTable::num(edp_gap * 100.0, 2)
                  << "%  (paper tolerance: < 5%)\n\n";
        report.add("fig9", name, "edp_gap", edp_gap * 100.0, "%");
        report.add("fig9", name, "sim_best_edp",
                   sim_edp(*sim_best) * 1e6, "uJ*s");
        report.add("fig9", name, "model_pick_edp",
                   sim_edp(*model_best) * 1e6, "uJ*s");
    }

    bench::maybeWriteReport(args, report);
    return 0;
}
