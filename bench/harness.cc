#include "harness.hh"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/json.hh"

namespace mech::bench {

namespace {

// ---- provenance -----------------------------------------------------------

std::string
compilerId()
{
    std::ostringstream os;
#if defined(__clang__)
    os << "clang " << __clang_major__ << "." << __clang_minor__ << "."
       << __clang_patchlevel__;
#elif defined(__GNUC__)
    os << "gcc " << __GNUC__ << "." << __GNUC_MINOR__ << "."
       << __GNUC_PATCHLEVEL__;
#else
    os << "unknown";
#endif
    return os.str();
}

std::string
buildGitSha()
{
    if (const char *env = std::getenv("MECH_GIT_SHA"))
        return env;
#ifdef MECHSIM_GIT_SHA
    return MECHSIM_GIT_SHA;
#else
    return "unknown";
#endif
}

std::string
buildTypeId()
{
#ifdef MECHSIM_BUILD_TYPE
    return MECHSIM_BUILD_TYPE;
#else
    return "unknown";
#endif
}

// ---- JSON parsing helpers ------------------------------------------------
//
// Reading uses the shared mech::json reader (common/json.hh); the
// artifact schema tolerates unknown keys so future schema minors stay
// readable, and structural errors surface as BenchIoError.

std::string
stringField(const json::Value &obj, const std::string &key)
{
    const json::Value *v = obj.get(key);
    if (!v || !v->isString())
        throw BenchIoError("missing or non-string field '" + key + "'");
    return v->string;
}

double
numberField(const json::Value &obj, const std::string &key)
{
    const json::Value *v = obj.get(key);
    if (!v || !v->isNumber())
        throw BenchIoError("missing or non-number field '" + key + "'");
    return v->number;
}

} // namespace

bool
BenchRecord::higherIsBetter() const
{
    return (unit.size() >= 2 &&
            unit.compare(unit.size() - 2, 2, "/s") == 0) ||
           unit == "speedup";
}

const BenchRecord *
BenchReport::find(const std::string &key) const
{
    for (const auto &r : results) {
        if (r.key() == key)
            return &r;
    }
    return nullptr;
}

BenchReport
makeReport(std::string generator)
{
    BenchReport report;
    report.generator = std::move(generator);
    report.gitSha = buildGitSha();
    report.compiler = compilerId();
    report.buildType = buildTypeId();
    return report;
}

void
writeReportJson(const BenchReport &report, std::ostream &os)
{
    os << "{\n";
    os << "  \"schema_version\": " << kBenchSchemaVersion << ",\n";
    os << "  \"generator\": ";
    json::writeString(os, report.generator);
    os << ",\n  \"git_sha\": ";
    json::writeString(os, report.gitSha);
    os << ",\n  \"compiler\": ";
    json::writeString(os, report.compiler);
    os << ",\n  \"build_type\": ";
    json::writeString(os, report.buildType);
    os << ",\n  \"results\": [";
    for (std::size_t i = 0; i < report.results.size(); ++i) {
        const BenchRecord &r = report.results[i];
        os << (i ? "," : "") << "\n    { \"suite\": ";
        json::writeString(os, r.suite);
        os << ", \"benchmark\": ";
        json::writeString(os, r.benchmark);
        os << ", \"metric\": ";
        json::writeString(os, r.metric);
        os << ", \"value\": ";
        json::writeNumber(os, r.value);
        os << ", \"unit\": ";
        json::writeString(os, r.unit);
        os << " }";
    }
    os << (report.results.empty() ? "]\n" : "\n  ]\n") << "}\n";
}

void
saveReport(const BenchReport &report, const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        throw BenchIoError("cannot open '" + path + "' for writing");
    writeReportJson(report, os);
    os.flush();
    if (!os)
        throw BenchIoError("write to '" + path + "' failed");
}

BenchReport
parseReportJson(std::istream &is)
{
    std::ostringstream buf;
    buf << is.rdbuf();
    std::string error;
    std::optional<json::Value> root = json::parse(buf.str(), &error);
    if (!root)
        throw BenchIoError("bench JSON, " + error);
    if (!root->isObject())
        throw BenchIoError("artifact root must be a JSON object");

    const json::Value *ver = root->get("schema_version");
    if (!ver || !ver->isNumber())
        throw BenchIoError("missing schema_version");
    int version = static_cast<int>(ver->number);
    if (version < 1 || version > kBenchSchemaVersion) {
        throw BenchIoError("unsupported schema_version " +
                           std::to_string(version) +
                           " (reader supports up to " +
                           std::to_string(kBenchSchemaVersion) + ")");
    }

    BenchReport report;
    report.schemaVersion = version;
    report.generator = stringField(*root, "generator");
    report.gitSha = stringField(*root, "git_sha");
    report.compiler = stringField(*root, "compiler");
    report.buildType = stringField(*root, "build_type");

    const json::Value *results = root->get("results");
    if (!results || !results->isArray())
        throw BenchIoError("missing results array");
    for (const json::Value &entry : results->array) {
        if (!entry.isObject())
            throw BenchIoError("results entries must be objects");
        BenchRecord r;
        r.suite = stringField(entry, "suite");
        r.benchmark = stringField(entry, "benchmark");
        r.metric = stringField(entry, "metric");
        r.value = numberField(entry, "value");
        r.unit = stringField(entry, "unit");
        report.results.push_back(std::move(r));
    }
    return report;
}

BenchReport
loadReport(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        throw BenchIoError("cannot open '" + path + "'");
    return parseReportJson(is);
}

BaselineComparison
compareToBaseline(const BenchReport &current,
                  const BenchReport &baseline, double max_slowdown)
{
    BaselineComparison cmp;
    for (const BenchRecord &cur : current.results) {
        const BenchRecord *base = baseline.find(cur.key());
        if (!base) {
            cmp.missingInBaseline.push_back(cur);
            continue;
        }
        BaselineComparison::Entry entry;
        entry.current = cur;
        entry.baseline = *base;
        if (cur.unit != base->unit) {
            // A unit change makes the ratio meaningless; surface it
            // as a regression so the baseline gets refreshed.
            entry.slowdown = 0.0;
            entry.regressed = true;
        } else if (cur.value <= 0.0 || base->value <= 0.0) {
            // Degenerate measurements never gate.
            entry.slowdown = 1.0;
        } else if (cur.higherIsBetter()) {
            entry.slowdown = base->value / cur.value;
            entry.regressed = entry.slowdown > max_slowdown;
        } else {
            entry.slowdown = cur.value / base->value;
            entry.regressed = entry.slowdown > max_slowdown;
        }
        cmp.compared.push_back(std::move(entry));
    }
    for (const BenchRecord &base : baseline.results) {
        if (!current.find(base.key()))
            cmp.missingInCurrent.push_back(base);
    }
    return cmp;
}

void
printComparison(const BaselineComparison &cmp, double max_slowdown,
                std::ostream &os)
{
    os << "baseline comparison (fail above " << max_slowdown
       << "x slowdown):\n";
    for (const auto &e : cmp.compared) {
        os << "  " << (e.regressed ? "REGRESSED " : "ok        ")
           << e.current.key() << "  " << e.current.value << " "
           << e.current.unit << "  vs  " << e.baseline.value << " "
           << e.baseline.unit << "  (slowdown "
           << (e.slowdown > 0.0 ? std::to_string(e.slowdown)
                                : std::string("unit-mismatch"))
           << ")\n";
    }
    for (const auto &r : cmp.missingInBaseline) {
        os << "  new       " << r.key()
           << "  (no baseline entry; not gated)\n";
    }
    for (const auto &r : cmp.missingInCurrent) {
        os << "  missing   " << r.key()
           << "  (baseline entry not produced by this run)\n";
    }
}

} // namespace mech::bench
