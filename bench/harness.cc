#include "harness.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>

namespace mech::bench {

namespace {

// ---- provenance -----------------------------------------------------------

std::string
compilerId()
{
    std::ostringstream os;
#if defined(__clang__)
    os << "clang " << __clang_major__ << "." << __clang_minor__ << "."
       << __clang_patchlevel__;
#elif defined(__GNUC__)
    os << "gcc " << __GNUC__ << "." << __GNUC_MINOR__ << "."
       << __GNUC_PATCHLEVEL__;
#else
    os << "unknown";
#endif
    return os.str();
}

std::string
buildGitSha()
{
    if (const char *env = std::getenv("MECH_GIT_SHA"))
        return env;
#ifdef MECHSIM_GIT_SHA
    return MECHSIM_GIT_SHA;
#else
    return "unknown";
#endif
}

std::string
buildTypeId()
{
#ifdef MECHSIM_BUILD_TYPE
    return MECHSIM_BUILD_TYPE;
#else
    return "unknown";
#endif
}

// ---- JSON writing ---------------------------------------------------------

void
writeJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          case '\r': os << "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                os << "\\u" << std::hex << std::setw(4)
                   << std::setfill('0') << static_cast<int>(c)
                   << std::dec << std::setfill(' ');
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
writeJsonNumber(std::ostream &os, double v)
{
    // 17 significant digits round-trip any double exactly.
    std::ostringstream num;
    num << std::setprecision(17) << v;
    os << num.str();
}

// ---- JSON parsing ---------------------------------------------------------
//
// A minimal recursive-descent parser for the subset of JSON the
// artifact schema uses (objects, arrays, strings, numbers, booleans,
// null).  Unknown keys are tolerated so future schema minors stay
// readable; structural errors throw BenchIoError.

struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    const JsonValue *
    get(const std::string &key) const
    {
        auto it = object.find(key);
        return it == object.end() ? nullptr : &it->second;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(std::istream &is)
    {
        std::ostringstream buf;
        buf << is.rdbuf();
        text = buf.str();
    }

    JsonValue
    parse()
    {
        JsonValue v = parseValue();
        skipSpace();
        if (pos != text.size())
            fail("trailing content after JSON document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw BenchIoError("bench JSON, offset " + std::to_string(pos) +
                           ": " + what);
    }

    void
    skipSpace()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos]))) {
            ++pos;
        }
    }

    char
    peek()
    {
        skipSpace();
        if (pos >= text.size())
            fail("unexpected end of input");
        return text[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos;
    }

    bool
    consumeLiteral(const std::string &lit)
    {
        if (text.compare(pos, lit.size(), lit) == 0) {
            pos += lit.size();
            return true;
        }
        return false;
    }

    JsonValue
    parseValue()
    {
        char c = peek();
        JsonValue v;
        switch (c) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"':
            v.kind = JsonValue::Kind::String;
            v.string = parseString();
            return v;
          case 't':
            if (!consumeLiteral("true"))
                fail("bad literal");
            v.kind = JsonValue::Kind::Bool;
            v.boolean = true;
            return v;
          case 'f':
            if (!consumeLiteral("false"))
                fail("bad literal");
            v.kind = JsonValue::Kind::Bool;
            v.boolean = false;
            return v;
          case 'n':
            if (!consumeLiteral("null"))
                fail("bad literal");
            return v;
          default: return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        expect('{');
        if (peek() == '}') {
            ++pos;
            return v;
        }
        for (;;) {
            if (peek() != '"')
                fail("object key must be a string");
            std::string key = parseString();
            expect(':');
            v.object.emplace(std::move(key), parseValue());
            char c = peek();
            if (c == ',') {
                ++pos;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    parseArray()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        expect('[');
        if (peek() == ']') {
            ++pos;
            return v;
        }
        for (;;) {
            v.array.push_back(parseValue());
            char c = peek();
            if (c == ',') {
                ++pos;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (pos < text.size()) {
            char c = text[pos++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (pos >= text.size())
                    fail("unterminated escape");
                char e = text[pos++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'u': {
                    if (pos + 4 > text.size())
                        fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = text[pos++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code += static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code += static_cast<unsigned>(h - 'a') + 10;
                        else if (h >= 'A' && h <= 'F')
                            code += static_cast<unsigned>(h - 'A') + 10;
                        else
                            fail("bad \\u escape digit");
                    }
                    // The artifacts only escape control characters;
                    // encode the code point as UTF-8 for robustness.
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(0x80 |
                                                 ((code >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                  }
                  default: fail("unknown escape");
                }
            } else {
                out += c;
            }
        }
        fail("unterminated string");
    }

    JsonValue
    parseNumber()
    {
        skipSpace();
        const char *start = text.c_str() + pos;
        char *end = nullptr;
        double parsed = std::strtod(start, &end);
        if (end == start)
            fail("expected a value");
        pos += static_cast<std::size_t>(end - start);
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.number = parsed;
        return v;
    }

    std::string text;
    std::size_t pos = 0;
};

std::string
stringField(const JsonValue &obj, const std::string &key)
{
    const JsonValue *v = obj.get(key);
    if (!v || v->kind != JsonValue::Kind::String)
        throw BenchIoError("missing or non-string field '" + key + "'");
    return v->string;
}

double
numberField(const JsonValue &obj, const std::string &key)
{
    const JsonValue *v = obj.get(key);
    if (!v || v->kind != JsonValue::Kind::Number)
        throw BenchIoError("missing or non-number field '" + key + "'");
    return v->number;
}

} // namespace

bool
BenchRecord::higherIsBetter() const
{
    return (unit.size() >= 2 &&
            unit.compare(unit.size() - 2, 2, "/s") == 0) ||
           unit == "speedup";
}

const BenchRecord *
BenchReport::find(const std::string &key) const
{
    for (const auto &r : results) {
        if (r.key() == key)
            return &r;
    }
    return nullptr;
}

BenchReport
makeReport(std::string generator)
{
    BenchReport report;
    report.generator = std::move(generator);
    report.gitSha = buildGitSha();
    report.compiler = compilerId();
    report.buildType = buildTypeId();
    return report;
}

void
writeReportJson(const BenchReport &report, std::ostream &os)
{
    os << "{\n";
    os << "  \"schema_version\": " << kBenchSchemaVersion << ",\n";
    os << "  \"generator\": ";
    writeJsonString(os, report.generator);
    os << ",\n  \"git_sha\": ";
    writeJsonString(os, report.gitSha);
    os << ",\n  \"compiler\": ";
    writeJsonString(os, report.compiler);
    os << ",\n  \"build_type\": ";
    writeJsonString(os, report.buildType);
    os << ",\n  \"results\": [";
    for (std::size_t i = 0; i < report.results.size(); ++i) {
        const BenchRecord &r = report.results[i];
        os << (i ? "," : "") << "\n    { \"suite\": ";
        writeJsonString(os, r.suite);
        os << ", \"benchmark\": ";
        writeJsonString(os, r.benchmark);
        os << ", \"metric\": ";
        writeJsonString(os, r.metric);
        os << ", \"value\": ";
        writeJsonNumber(os, r.value);
        os << ", \"unit\": ";
        writeJsonString(os, r.unit);
        os << " }";
    }
    os << (report.results.empty() ? "]\n" : "\n  ]\n") << "}\n";
}

void
saveReport(const BenchReport &report, const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        throw BenchIoError("cannot open '" + path + "' for writing");
    writeReportJson(report, os);
    os.flush();
    if (!os)
        throw BenchIoError("write to '" + path + "' failed");
}

BenchReport
parseReportJson(std::istream &is)
{
    JsonValue root = JsonParser(is).parse();
    if (root.kind != JsonValue::Kind::Object)
        throw BenchIoError("artifact root must be a JSON object");

    const JsonValue *ver = root.get("schema_version");
    if (!ver || ver->kind != JsonValue::Kind::Number)
        throw BenchIoError("missing schema_version");
    int version = static_cast<int>(ver->number);
    if (version < 1 || version > kBenchSchemaVersion) {
        throw BenchIoError("unsupported schema_version " +
                           std::to_string(version) +
                           " (reader supports up to " +
                           std::to_string(kBenchSchemaVersion) + ")");
    }

    BenchReport report;
    report.schemaVersion = version;
    report.generator = stringField(root, "generator");
    report.gitSha = stringField(root, "git_sha");
    report.compiler = stringField(root, "compiler");
    report.buildType = stringField(root, "build_type");

    const JsonValue *results = root.get("results");
    if (!results || results->kind != JsonValue::Kind::Array)
        throw BenchIoError("missing results array");
    for (const JsonValue &entry : results->array) {
        if (entry.kind != JsonValue::Kind::Object)
            throw BenchIoError("results entries must be objects");
        BenchRecord r;
        r.suite = stringField(entry, "suite");
        r.benchmark = stringField(entry, "benchmark");
        r.metric = stringField(entry, "metric");
        r.value = numberField(entry, "value");
        r.unit = stringField(entry, "unit");
        report.results.push_back(std::move(r));
    }
    return report;
}

BenchReport
loadReport(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        throw BenchIoError("cannot open '" + path + "'");
    return parseReportJson(is);
}

BaselineComparison
compareToBaseline(const BenchReport &current,
                  const BenchReport &baseline, double max_slowdown)
{
    BaselineComparison cmp;
    for (const BenchRecord &cur : current.results) {
        const BenchRecord *base = baseline.find(cur.key());
        if (!base) {
            cmp.missingInBaseline.push_back(cur);
            continue;
        }
        BaselineComparison::Entry entry;
        entry.current = cur;
        entry.baseline = *base;
        if (cur.unit != base->unit) {
            // A unit change makes the ratio meaningless; surface it
            // as a regression so the baseline gets refreshed.
            entry.slowdown = 0.0;
            entry.regressed = true;
        } else if (cur.value <= 0.0 || base->value <= 0.0) {
            // Degenerate measurements never gate.
            entry.slowdown = 1.0;
        } else if (cur.higherIsBetter()) {
            entry.slowdown = base->value / cur.value;
            entry.regressed = entry.slowdown > max_slowdown;
        } else {
            entry.slowdown = cur.value / base->value;
            entry.regressed = entry.slowdown > max_slowdown;
        }
        cmp.compared.push_back(std::move(entry));
    }
    for (const BenchRecord &base : baseline.results) {
        if (!current.find(base.key()))
            cmp.missingInCurrent.push_back(base);
    }
    return cmp;
}

void
printComparison(const BaselineComparison &cmp, double max_slowdown,
                std::ostream &os)
{
    os << "baseline comparison (fail above " << max_slowdown
       << "x slowdown):\n";
    for (const auto &e : cmp.compared) {
        os << "  " << (e.regressed ? "REGRESSED " : "ok        ")
           << e.current.key() << "  " << e.current.value << " "
           << e.current.unit << "  vs  " << e.baseline.value << " "
           << e.baseline.unit << "  (slowdown "
           << (e.slowdown > 0.0 ? std::to_string(e.slowdown)
                                : std::string("unit-mismatch"))
           << ")\n";
    }
    for (const auto &r : cmp.missingInBaseline) {
        os << "  new       " << r.key()
           << "  (no baseline entry; not gated)\n";
    }
    for (const auto &r : cmp.missingInCurrent) {
        os << "  missing   " << r.key()
           << "  (baseline entry not produced by this run)\n";
    }
}

} // namespace mech::bench
