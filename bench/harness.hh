/**
 * @file
 * Benchmark harness: named results, schema-versioned JSON artifacts,
 * and baseline comparison.
 *
 * The timing core lives in src/common/bench.hh; this layer gives the
 * numbers a durable shape.  Every benchmark run produces BenchRecords
 * (suite, benchmark, metric, value, unit) collected into a
 * BenchReport that carries build provenance (git SHA, compiler,
 * build type) and serializes to a versioned JSON artifact.  The same
 * schema is read back for CI perf gating: compareToBaseline() matches
 * records between a fresh run and a checked-in baseline and flags
 * slowdowns beyond a caller-chosen ratio.
 *
 * Schema (version 1):
 *
 *   {
 *     "schema_version": 1,
 *     "generator": "mech_bench",
 *     "git_sha": "2b1218c",
 *     "compiler": "gcc 12.2.0",
 *     "build_type": "Release",
 *     "results": [
 *       { "suite": "mech_bench", "benchmark": "stack_distance",
 *         "metric": "throughput", "value": 1.0e8,
 *         "unit": "accesses/s" }
 *     ]
 *   }
 *
 * Units ending in "/s" are throughputs and "speedup" is a ratio, both
 * higher-is-better; any other unit is a cost (lower is better).  The
 * comparison direction follows from the unit alone so baselines stay
 * self-describing.
 */

#ifndef MECH_BENCH_HARNESS_HH
#define MECH_BENCH_HARNESS_HH

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

namespace mech::bench {

/** Error raised for malformed or unreadable benchmark artifacts. */
class BenchIoError : public std::runtime_error
{
  public:
    explicit BenchIoError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** Current benchmark-artifact schema version. */
inline constexpr int kBenchSchemaVersion = 1;

/** One measured quantity. */
struct BenchRecord
{
    /** Grouping, usually the emitting program ("mech_bench", "fig5"). */
    std::string suite;

    /** Benchmark name within the suite ("stack_distance"). */
    std::string benchmark;

    /** Measured quantity ("throughput", "error_avg"). */
    std::string metric;

    /** The value. */
    double value = 0.0;

    /**
     * Unit; "<item>/s" and "speedup" mark higher-is-better
     * quantities, anything else is a cost (lower is better).
     */
    std::string unit;

    /** Identity key used for baseline matching. */
    std::string
    key() const
    {
        return suite + "/" + benchmark + "/" + metric;
    }

    /** True when a higher value is better (unit ends in "/s"). */
    bool higherIsBetter() const;
};

/** A run's worth of records plus build provenance. */
struct BenchReport
{
    /** Program that produced the report. */
    std::string generator;

    /** Git SHA the binary was built from ("unknown" if unavailable). */
    std::string gitSha;

    /** Compiler id, e.g. "gcc 12.2.0". */
    std::string compiler;

    /** CMake build type baked into the binary. */
    std::string buildType;

    /** Schema version read from a loaded artifact. */
    int schemaVersion = kBenchSchemaVersion;

    /** The measurements. */
    std::vector<BenchRecord> results;

    /** Append one record. */
    void
    add(std::string suite, std::string benchmark, std::string metric,
        double value, std::string unit)
    {
        results.push_back({std::move(suite), std::move(benchmark),
                           std::move(metric), value, std::move(unit)});
    }

    /** Record with @p key, or null. */
    const BenchRecord *find(const std::string &key) const;
};

/**
 * A report pre-filled with this build's provenance: git SHA (the
 * MECH_GIT_SHA environment variable, else the SHA baked in at
 * configure time), compiler and build type.
 */
BenchReport makeReport(std::string generator);

/** Serialize @p report as schema-versioned JSON. */
void writeReportJson(const BenchReport &report, std::ostream &os);

/** Write @p report to @p path.  Throws BenchIoError on I/O failure. */
void saveReport(const BenchReport &report, const std::string &path);

/**
 * Parse a report from JSON.
 *
 * Throws BenchIoError on malformed JSON, a missing or non-integer
 * schema_version, or a schema version newer than this reader.
 */
BenchReport parseReportJson(std::istream &is);

/** Load a report from @p path.  Throws BenchIoError. */
BenchReport loadReport(const std::string &path);

/** Outcome of comparing a run against a baseline. */
struct BaselineComparison
{
    /** One record pair that exists in both reports. */
    struct Entry
    {
        BenchRecord current;
        BenchRecord baseline;

        /**
         * Slowdown ratio >= 0: 1.0 = unchanged, 2.0 = twice as slow,
         * 0.5 = twice as fast, direction resolved from the unit.
         */
        double slowdown = 1.0;

        /** True when slowdown exceeded the configured threshold. */
        bool regressed = false;
    };

    std::vector<Entry> compared;

    /** Current records with no baseline counterpart (informational). */
    std::vector<BenchRecord> missingInBaseline;

    /** Baseline records the current run did not produce. */
    std::vector<BenchRecord> missingInCurrent;

    /** True when any compared pair regressed. */
    bool
    anyRegression() const
    {
        for (const auto &e : compared) {
            if (e.regressed)
                return true;
        }
        return false;
    }
};

/**
 * Compare @p current against @p baseline.
 *
 * Records are matched by (suite, benchmark, metric); a pair whose
 * units disagree is treated as a regression (the baseline is stale).
 * A pair regresses when its slowdown ratio exceeds @p max_slowdown —
 * CI uses a deliberately generous 2.0 so shared-runner noise cannot
 * fail the gate, only real cliffs can.
 */
BaselineComparison compareToBaseline(const BenchReport &current,
                                     const BenchReport &baseline,
                                     double max_slowdown);

/** Human-readable comparison summary (one line per pair). */
void printComparison(const BaselineComparison &cmp, double max_slowdown,
                     std::ostream &os);

} // namespace mech::bench

#endif // MECH_BENCH_HARNESS_HH
