/**
 * @file
 * Section 5 speedup claim, measured with the in-repo harness:
 * evaluating the analytical model for a design point vs detailed
 * simulation of the same point, plus the one-off trace-generation and
 * profiling costs, each with warmup + min-of-N repetition selection
 * (src/common/bench.hh).
 *
 * Paper: simulating the 192-point space takes 290 days; the model
 * takes 4.5 hours, dominated by profiling — model evaluation itself
 * is "a few seconds" for the whole space.
 *
 * Like every driver, --json emits the measurements in the shared
 * schema-versioned artifact format (docs/benchmarking.md).
 */

#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hh"

namespace {

using namespace mech;

constexpr const char *kSuite = "model_speedup";

/** One throughput row: measure, print, record. */
template <typename F>
double
timed(const char *name, F &&body, double items, const char *unit,
      const bench::MeasureOptions &opts, bench::BenchReport &report)
{
    bench::Measurement m = bench::measure(std::forward<F>(body), opts);
    double rate = m.rate(items);
    std::cout << "  " << name << ": "
              << TextTable::num(m.secondsPerIter * 1e3, 3)
              << " ms/iter  (" << TextTable::num(rate, 0) << " " << unit
              << ", min of " << m.repSecondsPerIter.size() << " x "
              << m.itersPerRep << " iters)\n";
    report.add(kSuite, name, "throughput", rate, unit);
    return m.secondsPerIter;
}

/**
 * Serial-vs-parallel wall-clock comparison of the complete
 * profile-once / predict-everywhere workflow (trace generation +
 * profiling + 192-point model sweep for 8 benchmarks).
 */
void
reportBatchSpeedup(InstCount len, unsigned nthreads,
                   bench::BenchReport &report)
{
    using clock = std::chrono::steady_clock;

    const std::vector<BenchmarkProfile> benches = {
        profileByName("tiffdither"), profileByName("sha"),
        profileByName("patricia"),   profileByName("jpeg_c"),
        profileByName("adpcm_d"),    profileByName("gsm_c"),
        profileByName("lame"),       profileByName("dijkstra")};
    const auto space = table2Space();

    auto timeRun = [&](unsigned threads) {
        StudyRunner runner(benches, len); // fresh: includes profiling
        auto t0 = clock::now();
        auto results = runner.evaluateAll(space, threads);
        auto t1 = clock::now();
        bench::doNotOptimize(results.back().evals.back().model().cycles);
        return std::chrono::duration<double>(t1 - t0).count();
    };

    double serial_s = timeRun(1);
    double parallel_s = timeRun(nthreads);
    double speedup = serial_s / parallel_s;

    std::cout << "\n--- batched design-space sweep, " << benches.size()
              << " benchmarks x " << space.size() << " points (" << len
              << " instructions each) ---\n"
              << "serial   (1 thread):   " << serial_s * 1e3 << " ms\n"
              << "parallel (" << nthreads
              << " threads):  " << parallel_s * 1e3 << " ms\n"
              << "parallel speedup: " << speedup
              << "x (hardware threads: " << nthreads << ")\n";
    report.add(kSuite, "batch_sweep", "serial_seconds", serial_s, "s");
    report.add(kSuite, "batch_sweep", "parallel_seconds", parallel_s,
               "s");
    report.add(kSuite, "batch_sweep", "parallel_speedup", speedup,
               "speedup");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mech;

    unsigned repetitions = 5;
    double min_time_ms = 50.0;
    // This bench times fresh profiling runs per measurement, so
    // saved artifacts cannot apply (hence no --profile-dir).
    bench::Args args = bench::parseArgs(
        argc, argv, "model_speedup",
        "model-vs-simulation speedup measurement (paper section 5)",
        50000, /*with_threads=*/true, /*with_profile_dir=*/false,
        [&](cli::ArgParser &parser) {
            parser.add("repetitions", "N",
                       "timed repetitions per measurement (min-of-N)",
                       &repetitions);
            parser.add("min-time-ms", "ms",
                       "minimum duration of one repetition",
                       &min_time_ms);
        });
    if (repetitions < 1)
        fatal("--repetitions must be at least 1");

    const InstCount len = args.instructions;
    bench::MeasureOptions opts;
    opts.repetitions = repetitions;
    opts.minSeconds = min_time_ms / 1e3;

    bench::BenchReport report = bench::makeReport("model_speedup");
    std::cout << "=== model vs simulation speedup (" << len
              << " instructions, min-of-" << repetitions << ") ===\n\n";

    const BenchmarkProfile &bench_profile = profileByName("tiffdither");

    timed("trace_gen",
          [&] {
              Trace tr = generateTrace(bench_profile, len);
              bench::doNotOptimize(tr.size());
          },
          static_cast<double>(len), "insns/s", opts, report);

    Trace tr = generateTrace(bench_profile, len);
    ProfilerConfig pcfg;
    pcfg.hierarchy = hierarchyFor(defaultDesignPoint());
    pcfg.captureL2Stream = true;
    timed("profiling",
          [&] {
              WorkloadProfile p = profileTrace(tr, pcfg);
              bench::doNotOptimize(p.program.n);
          },
          static_cast<double>(len), "insns/s", opts, report);

    DseStudy study(bench_profile, len);
    DesignPoint off_default = defaultDesignPoint();
    off_default.l2KB = 256; // off-default so the L2 resweep shows once
    study.prepare({off_default});
    double model_spi =
        timed("model_eval",
              [&] {
                  PointEvaluation ev = study.evaluate(off_default);
                  bench::doNotOptimize(ev.model().cycles);
              },
              1.0, "evals/s", opts, report);

    SimConfig scfg = simConfigFor(defaultDesignPoint());
    double sim_spi = timed("detailed_sim",
                           [&] {
                               SimResult res =
                                   simulateInOrder(study.trace(), scfg);
                               bench::doNotOptimize(res.cycles);
                           },
                           static_cast<double>(len), "insns/s", opts,
                           report);

    double point_speedup = sim_spi / model_spi;
    std::cout << "  one-point speedup (detailed sim / model eval): "
              << TextTable::num(point_speedup, 0) << "x\n";
    report.add(kSuite, "one_point", "sim_over_model", point_speedup,
               "speedup");

    reportBatchSpeedup(len, args.threads, report);

    bench::maybeWriteReport(args, report);
    return 0;
}
