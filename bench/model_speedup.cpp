/**
 * @file
 * Section 5 speedup claim, as a google-benchmark microbenchmark:
 * evaluating the analytical model for a design point vs detailed
 * simulation of the same point, plus the one-off profiling cost.
 *
 * Paper: simulating the 192-point space takes 290 days; the model
 * takes 4.5 hours, dominated by profiling — model evaluation itself
 * is "a few seconds" for the whole space.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"

namespace {

using namespace mech;

constexpr InstCount kLen = 50000;

/** Shared fixture state: one profiled study per benchmark run. */
DseStudy &
sharedStudy()
{
    static DseStudy study(profileByName("tiffdither"), kLen);
    return study;
}

void
BM_TraceGeneration(benchmark::State &state)
{
    const BenchmarkProfile &bench = profileByName("tiffdither");
    for (auto _ : state) {
        Trace tr = generateTrace(bench, kLen);
        benchmark::DoNotOptimize(tr.size());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(kLen));
}

void
BM_Profiling(benchmark::State &state)
{
    Trace tr = generateTrace(profileByName("tiffdither"), kLen);
    ProfilerConfig cfg;
    cfg.hierarchy = hierarchyFor(defaultDesignPoint());
    cfg.predictors = {PredictorKind::Gshare1K, PredictorKind::Hybrid3K5};
    cfg.captureL2Stream = true;
    for (auto _ : state) {
        WorkloadProfile p = profileTrace(tr, cfg);
        benchmark::DoNotOptimize(p.program.n);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(kLen));
}

void
BM_ModelEvaluation(benchmark::State &state)
{
    DseStudy &study = sharedStudy();
    DesignPoint point = defaultDesignPoint();
    point.l2KB = 256; // off-default so the L2 resweep cost shows once
    for (auto _ : state) {
        PointEvaluation ev = study.evaluate(point, false);
        benchmark::DoNotOptimize(ev.model.cycles);
    }
}

void
BM_DetailedSimulation(benchmark::State &state)
{
    DseStudy &study = sharedStudy();
    DesignPoint point = defaultDesignPoint();
    for (auto _ : state) {
        SimResult res =
            simulateInOrder(study.trace(), simConfigFor(point));
        benchmark::DoNotOptimize(res.cycles);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(kLen));
}

BENCHMARK(BM_TraceGeneration)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Profiling)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ModelEvaluation)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DetailedSimulation)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
