/**
 * @file
 * Section 5 speedup claim, as a google-benchmark microbenchmark:
 * evaluating the analytical model for a design point vs detailed
 * simulation of the same point, plus the one-off profiling cost.
 *
 * Paper: simulating the 192-point space takes 290 days; the model
 * takes 4.5 hours, dominated by profiling — model evaluation itself
 * is "a few seconds" for the whole space.
 */

#include <chrono>
#include <iostream>

#include <benchmark/benchmark.h>

#include "bench_util.hh"

namespace {

using namespace mech;

constexpr InstCount kLen = 50000;

/** Shared fixture state: one profiled study per benchmark run. */
DseStudy &
sharedStudy()
{
    static DseStudy study(profileByName("tiffdither"), kLen);
    return study;
}

void
BM_TraceGeneration(benchmark::State &state)
{
    const BenchmarkProfile &bench = profileByName("tiffdither");
    for (auto _ : state) {
        Trace tr = generateTrace(bench, kLen);
        benchmark::DoNotOptimize(tr.size());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(kLen));
}

void
BM_Profiling(benchmark::State &state)
{
    Trace tr = generateTrace(profileByName("tiffdither"), kLen);
    ProfilerConfig cfg;
    cfg.hierarchy = hierarchyFor(defaultDesignPoint());
    cfg.predictors = {PredictorKind::Gshare1K, PredictorKind::Hybrid3K5};
    cfg.captureL2Stream = true;
    for (auto _ : state) {
        WorkloadProfile p = profileTrace(tr, cfg);
        benchmark::DoNotOptimize(p.program.n);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(kLen));
}

void
BM_ModelEvaluation(benchmark::State &state)
{
    DseStudy &study = sharedStudy();
    DesignPoint point = defaultDesignPoint();
    point.l2KB = 256; // off-default so the L2 resweep cost shows once
    for (auto _ : state) {
        PointEvaluation ev = study.evaluate(point);
        benchmark::DoNotOptimize(ev.model().cycles);
    }
}

void
BM_DetailedSimulation(benchmark::State &state)
{
    DseStudy &study = sharedStudy();
    DesignPoint point = defaultDesignPoint();
    for (auto _ : state) {
        SimResult res =
            simulateInOrder(study.trace(), simConfigFor(point));
        benchmark::DoNotOptimize(res.cycles);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(kLen));
}

/**
 * The batched engine over the full Table 2 space, threads as the
 * benchmark argument (profiles prebuilt, so this times the sharded
 * point-evaluation phase the paper's speedup claim is about).
 */
void
BM_BatchEvaluateAll(benchmark::State &state)
{
    static std::vector<BenchmarkProfile> benches = {
        profileByName("tiffdither"), profileByName("sha"),
        profileByName("patricia"), profileByName("jpeg_c")};
    static StudyRunner runner(benches, kLen);
    static auto space = table2Space();
    // Warm the per-benchmark profiles outside the timed region.
    static auto warm = runner.evaluateAll(space, 1);
    benchmark::DoNotOptimize(warm.size());

    auto nthreads = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        auto results = runner.evaluateAll(space, nthreads);
        benchmark::DoNotOptimize(results[0].evals[0].model().cycles);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(benches.size() * space.size()));
}

BENCHMARK(BM_TraceGeneration)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Profiling)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ModelEvaluation)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DetailedSimulation)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BatchEvaluateAll)
    ->Unit(benchmark::kMillisecond)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(static_cast<int>(ThreadPool::defaultWorkerCount()));

/**
 * Serial-vs-parallel wall-clock comparison of the complete
 * profile-once / predict-everywhere workflow (trace generation +
 * profiling + 192-point model sweep for 8 benchmarks), printed after
 * the microbenchmarks.
 */
void
reportBatchSpeedup()
{
    using clock = std::chrono::steady_clock;

    const std::vector<BenchmarkProfile> benches = {
        profileByName("tiffdither"), profileByName("sha"),
        profileByName("patricia"),   profileByName("jpeg_c"),
        profileByName("adpcm_d"),    profileByName("gsm_c"),
        profileByName("lame"),       profileByName("dijkstra")};
    const auto space = table2Space();
    const unsigned nthreads = ThreadPool::defaultWorkerCount();

    auto timeRun = [&](unsigned threads) {
        StudyRunner runner(benches, kLen); // fresh: includes profiling
        auto t0 = clock::now();
        auto results = runner.evaluateAll(space, threads);
        auto t1 = clock::now();
        benchmark::DoNotOptimize(
            results.back().evals.back().model().cycles);
        return std::chrono::duration<double>(t1 - t0).count();
    };

    double serial_s = timeRun(1);
    double parallel_s = timeRun(nthreads);

    std::cout << "\n--- batched design-space sweep, " << benches.size()
              << " benchmarks x " << space.size() << " points ("
              << kLen << " instructions each) ---\n"
              << "serial   (1 thread):   " << serial_s * 1e3 << " ms\n"
              << "parallel (" << nthreads
              << " threads):  " << parallel_s * 1e3 << " ms\n"
              << "parallel speedup: " << serial_s / parallel_s
              << "x (hardware threads: " << nthreads << ")\n";
}

} // namespace

int
main(int argc, char **argv)
{
    // The wall-clock comparison is for full default runs; skip it
    // when the caller is listing or filtering microbenchmarks.
    bool selective = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--benchmark_list_tests", 0) == 0 ||
            arg.rfind("--benchmark_filter", 0) == 0) {
            selective = true;
        }
    }

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (!selective)
        reportBatchSpeedup();
    return 0;
}
