/**
 * @file
 * Table 2: the architecture design space and default configuration,
 * with per-parameter one-at-a-time model sensitivity around the
 * default (an ablation the analytical model makes instantaneous).
 */

#include <cstddef>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace mech;
    bench::Args args = bench::parseArgs(
        argc, argv, "table2_design_space",
        "the Table 2 design space and model sensitivity", 250000);
    DesignPoint def = defaultDesignPoint();

    std::cout << "=== Table 2: design space ===\n\n";
    TextTable params({"parameter", "default", "range"});
    params.addRow({"I-cache", "32KB 4-way 64B", "fixed"});
    params.addRow({"D-cache", "32KB 4-way 64B", "fixed"});
    params.addRow({"L2 cache", "512KB 8-way 10ns",
                   "128KB-1MB, 8 vs 16-way"});
    params.addRow({"pipeline depth", "9 stages @1GHz",
                   "5@600MHz - 7@800MHz - 9@1GHz"});
    params.addRow({"width", "4", "1-4"});
    params.addRow({"branch predictor", "1KB gshare",
                   "1KB gshare vs 3.5KB hybrid"});
    params.print(std::cout);

    auto space = table2Space();
    std::cout << "\ntotal design points: " << space.size() << "\n\n";

    // One-at-a-time sensitivity for one middle-of-the-road benchmark:
    // batch every probe (default first) through the parallel engine.
    const char *bench = "jpeg_c";
    std::vector<std::string> labels;
    std::vector<DesignPoint> probes;
    auto probe = [&](const std::string &label, const DesignPoint &p) {
        labels.push_back(label);
        probes.push_back(p);
    };
    probe("default", def);
    DesignPoint p = def;
    p.width = 1;
    probe("width 1", p);
    p = def;
    p.width = 2;
    probe("width 2", p);
    p = def;
    p.depth = 5;
    p.freqGHz = 0.6;
    probe("5-stage @600MHz", p);
    p = def;
    p.depth = 7;
    p.freqGHz = 0.8;
    probe("7-stage @800MHz", p);
    p = def;
    p.l2KB = 128;
    probe("L2 128KB", p);
    p = def;
    p.l2KB = 1024;
    probe("L2 1MB", p);
    p = def;
    p.l2Assoc = 16;
    probe("L2 16-way", p);
    p = def;
    p.predictor = PredictorKind::Hybrid3K5;
    probe("hybrid 3.5KB predictor", p);

    bench::BenchReport report = bench::makeReport("table2_design_space");
    const double t0 = bench::monotonicSeconds();

    StudyRunner runner({profileByName(bench)}, args.instructions);
    bench::applyProfileDir(runner, args);
    auto evals = runner.evaluateAll(probes, args.threads);
    const std::vector<PointEvaluation> &points = evals.at(0).evals;
    double base_cpi = points.at(0).model().cpi();
    report.add("table2", "default", "model_cpi", base_cpi, "CPI");

    std::cout << "model sensitivity around the default (" << bench
              << ", CPI " << TextTable::num(base_cpi, 3) << "):\n\n";
    TextTable sens({"variation", "model CPI", "vs default"});
    for (std::size_t i = 1; i < points.size(); ++i) {
        double cpi = points[i].model().cpi();
        double delta = (cpi / base_cpi - 1.0) * 100.0;
        sens.addRow({labels[i], TextTable::num(cpi, 3),
                     TextTable::num(delta, 1) + "%"});
        report.add("table2", labels[i], "model_cpi", cpi, "CPI");
        report.add("table2", labels[i], "delta_vs_default", delta,
                   "%");
    }
    sens.print(std::cout);

    std::cout << "\n(CPI comparisons only; the depth/frequency rows "
                 "trade cycles for clock period, which the EDP study "
                 "in fig9_edp_dse weighs properly.)\n";

    report.add("table2", "suite", "wall_seconds",
               bench::monotonicSeconds() - t0, "s");
    bench::maybeWriteReport(args, report);
    return 0;
}
