/**
 * @file
 * Example: how compiler optimizations move in-order cycle stacks
 * (paper §6.2).
 *
 * Applies the scheduling and unrolling passes to one benchmark's IR
 * and reports the model's cycle breakdown per variant, normalized to
 * the scheduled (-O3-like) build.
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "mech/mech.hh"

int
main(int argc, char **argv)
{
    using namespace mech;

    std::string bench_name = "tiffdither";
    InstCount n = 150000;
    unsigned unroll = 4;
    cli::ArgParser parser("compiler_optimizations",
                          "model cycle stacks across compiler "
                          "optimization variants");
    parser.addPositional("benchmark", "profile name", &bench_name);
    parser.addPositional("instructions", "trace length", &n);
    parser.addPositional("unroll", "unroll factor", &unroll);
    parser.parse(argc, argv);

    const BenchmarkProfile &bench = profileByName(bench_name);
    DesignPoint point = defaultDesignPoint();

    struct Variant
    {
        std::string name;
        double cycles = 0;
        double deps = 0;
        double taken = 0;
        std::uint64_t instructions = 0;
        std::uint64_t spills = 0;
    };
    std::vector<Variant> rows;

    auto evaluate = [&](const std::string &name, Program prog,
                        std::uint64_t spills) {
        DseStudy study(bench, n, prog);
        PointEvaluation ev = study.evaluate(point);
        const EvalResult &model = ev.model();
        rows.push_back({name, model.cycles,
                        model.stack.dependencies(),
                        model.stack[CpiComponent::BpredTakenHit],
                        model.instructions, spills});
    };

    // -O3 -fno-schedule-insns: consumers packed behind producers.
    {
        Program prog = buildProgram(bench);
        SchedOptions opt;
        opt.goal = SchedGoal::Tighten;
        scheduleProgram(prog, opt);
        evaluate("nosched", std::move(prog), 0);
    }
    // -O3: list scheduling with a finite register budget.
    SchedOptions o3;
    o3.goal = SchedGoal::Spread;
    o3.availRegs = 14;
    {
        Program prog = buildProgram(bench);
        std::uint64_t spills = scheduleProgram(prog, o3);
        evaluate("O3", std::move(prog), spills);
    }
    // -O3 -funroll-loops: unroll, then schedule the wider window.
    {
        Program prog = buildProgram(bench);
        unrollLoops(prog, unroll);
        std::uint64_t spills = scheduleProgram(prog, o3);
        evaluate("unroll x" + std::to_string(unroll), std::move(prog),
                 spills);
    }

    double o3_cycles = rows[1].cycles;
    std::cout << "benchmark: " << bench_name
              << "   (cycles normalized to O3)\n\n";
    TextTable table({"variant", "norm cycles", "norm deps",
                     "norm taken-bubbles", "instructions",
                     "spill pairs"});
    for (const auto &row : rows) {
        table.addRow({row.name, TextTable::num(row.cycles / o3_cycles, 3),
                      TextTable::num(row.deps / o3_cycles, 3),
                      TextTable::num(row.taken / o3_cycles, 3),
                      std::to_string(row.instructions),
                      std::to_string(row.spills)});
    }
    table.print(std::cout);

    std::cout << "\nscheduling widens dependency distances (cheaper "
                 "deps, possible spill cost); unrolling removes loop "
                 "overhead and taken branches and schedules across "
                 "copies.\n";
    return 0;
}
