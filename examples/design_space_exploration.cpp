/**
 * @file
 * Example: power/performance design-space exploration (paper §6.3).
 *
 * Profiles one benchmark once, then ranks the full Table 2 space by
 * model-estimated energy-delay product in well under a second —
 * the workflow that takes months with detailed simulation.  The
 * sweep runs through the batched engine, sharded across every
 * hardware thread.
 */

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "mech/mech.hh"

int
main(int argc, char **argv)
{
    using namespace mech;

    std::string bench_name = "gsm_c";
    InstCount n = 150000;
    unsigned nthreads = 0;
    cli::ArgParser parser("design_space_exploration",
                          "rank the Table 2 space by model-estimated "
                          "EDP for one benchmark");
    parser.addPositional("benchmark", "profile name", &bench_name);
    parser.addPositional("instructions", "trace length", &n);
    parser.addPositional("threads",
                         "worker threads (0 = all hardware threads)",
                         &nthreads);
    parser.parse(argc, argv);
    nthreads = ThreadPool::sanitizeWorkerCount(
        static_cast<long long>(nthreads));

    auto space = table2Space();

    StudyRunner runner({profileByName(bench_name)}, n);
    std::vector<PointEvaluation> evals =
        std::move(runner.evaluateAll(space, nthreads).at(0).evals);

    std::sort(evals.begin(), evals.end(),
              [](const auto &a, const auto &b) {
                  return a.model().edp < b.model().edp;
              });

    std::cout << "benchmark: " << bench_name << "  (" << space.size()
              << " design points, model-only exploration)\n\n"
              << "ten best configurations by estimated EDP:\n";
    TextTable table({"rank", "configuration", "CPI", "EDP (uJ*s)"});
    for (std::size_t i = 0; i < 10 && i < evals.size(); ++i) {
        table.addRow({std::to_string(i + 1), evals[i].point.label(),
                      TextTable::num(evals[i].model().cpi(), 3),
                      TextTable::num(evals[i].model().edp * 1e6, 4)});
    }
    table.print(std::cout);

    std::cout << "\nworst configuration: " << evals.back().point.label()
              << " at "
              << TextTable::num(evals.back().model().edp * 1e6, 4)
              << " uJ*s\n";
    return 0;
}
