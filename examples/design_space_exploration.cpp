/**
 * @file
 * Example: power/performance design-space exploration (paper §6.3).
 *
 * Profiles one benchmark once, then ranks the full Table 2 space by
 * model-estimated energy-delay product in well under a second —
 * the workflow that takes months with detailed simulation.  The
 * sweep runs through the batched engine, sharded across every
 * hardware thread.
 *
 * Usage: design_space_exploration [benchmark] [instructions] [threads]
 */

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "mech/mech.hh"

int
main(int argc, char **argv)
{
    using namespace mech;

    std::string bench_name = argc > 1 ? argv[1] : "gsm_c";
    InstCount n = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 150000;
    unsigned nthreads =
        argc > 3 ? ThreadPool::sanitizeWorkerCount(std::atoll(argv[3]))
                 : ThreadPool::defaultWorkerCount();

    auto space = table2Space();

    StudyRunner runner({profileByName(bench_name)}, n);
    std::vector<PointEvaluation> evals =
        std::move(runner.evaluateAll(space, nthreads).at(0).evals);

    std::sort(evals.begin(), evals.end(),
              [](const auto &a, const auto &b) {
                  return a.modelEdp < b.modelEdp;
              });

    std::cout << "benchmark: " << bench_name << "  (" << space.size()
              << " design points, model-only exploration)\n\n"
              << "ten best configurations by estimated EDP:\n";
    TextTable table({"rank", "configuration", "CPI", "EDP (uJ*s)"});
    for (std::size_t i = 0; i < 10 && i < evals.size(); ++i) {
        table.addRow({std::to_string(i + 1), evals[i].point.label(),
                      TextTable::num(evals[i].model.cpi(), 3),
                      TextTable::num(evals[i].modelEdp * 1e6, 4)});
    }
    table.print(std::cout);

    std::cout << "\nworst configuration: " << evals.back().point.label()
              << " at " << TextTable::num(evals.back().modelEdp * 1e6, 4)
              << " uJ*s\n";
    return 0;
}
