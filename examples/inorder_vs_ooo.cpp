/**
 * @file
 * Example: where do in-order and out-of-order performance differ?
 * (paper §6.1)
 *
 * Profiles one benchmark and prints side-by-side CPI stacks from the
 * in-order mechanistic model and the out-of-order interval model —
 * both running through the unified backend API ("model" and "ooo"),
 * with the delta per mechanism.
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "mech/mech.hh"

int
main(int argc, char **argv)
{
    using namespace mech;

    std::string bench_name = "dijkstra";
    InstCount n = 150000;
    cli::ArgParser parser("inorder_vs_ooo",
                          "in-order vs out-of-order model CPI stacks "
                          "for one benchmark");
    parser.addPositional("benchmark", "profile name", &bench_name);
    parser.addPositional("instructions", "trace length", &n);
    parser.parse(argc, argv);

    DesignPoint point = defaultDesignPoint();
    DseStudy study(profileByName(bench_name), n);
    PointEvaluation ev = study.evaluate(point, backendSet("model,ooo"));
    const EvalResult &io = ev.of(kModelBackend);
    const EvalResult &oo = ev.of(kOooBackend);

    std::cout << "benchmark: " << bench_name << "   (" << point.label()
              << ", OoO window " << OooParams{}.robSize << ")\n\n";

    CpiStack io_per = io.stack.perInstruction(io.instructions);
    CpiStack oo_per = oo.stack.perInstruction(oo.instructions);

    TextTable table({"component", "in-order CPI", "OoO CPI", "delta"});
    for (std::size_t c = 0; c < kNumCpiComponents; ++c) {
        auto comp = static_cast<CpiComponent>(c);
        double a = io_per[comp], b = oo_per[comp];
        if (a == 0.0 && b == 0.0)
            continue;
        table.addRow({std::string(cpiComponentName(comp)),
                      TextTable::num(a, 3), TextTable::num(b, 3),
                      TextTable::num(b - a, 3)});
    }
    table.addRow({"TOTAL", TextTable::num(io.cpi(), 3),
                  TextTable::num(oo.cpi(), 3),
                  TextTable::num(oo.cpi() - io.cpi(), 3)});
    table.print(std::cout);

    std::cout << "\nout-of-order hides dependencies and non-unit "
                 "latencies, overlaps long misses (MLP), but pays more "
                 "per branch misprediction (resolution time).\n";
    return 0;
}
