/**
 * @file
 * Example: multi-objective Pareto search over a generated space.
 *
 * Walks the full search-subsystem API end to end:
 *
 *   1. describe a ~12.5k-point design space declaratively
 *      (SpaceSpec::wide() — far beyond the 192-point Table 2 grid);
 *   2. pick two competing objectives, energy and delay, so the
 *      answer is a Pareto frontier instead of a single winner;
 *   3. run the NSGA-style genetic optimizer under a fresh-evaluation
 *      budget, with every revisited point served by the memoized
 *      cache for free;
 *   4. cross-check the heuristic frontier against exhaustive search
 *      over a small sub-space, where ground truth is affordable.
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "mech/mech.hh"

int
main(int argc, char **argv)
{
    using namespace mech;

    std::string bench_name = "gsm_c";
    InstCount n = 100000;
    unsigned nthreads = 0;
    cli::ArgParser parser(
        "pareto_search",
        "energy/delay Pareto search over a generated design space");
    parser.addPositional("benchmark", "profile name", &bench_name);
    parser.addPositional("instructions", "trace length", &n);
    parser.addPositional("threads",
                         "worker threads (0 = all hardware threads)",
                         &nthreads);
    parser.parse(argc, argv);

    SearchOptions opts;
    opts.seed = 42;
    opts.budget = 1500;
    opts.threads = ThreadPool::sanitizeWorkerCount(
        static_cast<long long>(nthreads));

    // Two objectives that pull in opposite directions: minimum
    // energy wants narrow/slow points, minimum delay wants wide/fast
    // ones.  The frontier is the trade-off curve between them.
    SearchEvaluator evaluator({profileByName(bench_name)}, n,
                              parseObjectives("energy,delay"));

    SpaceSpec space = SpaceSpec::wide();
    std::cout << "=== genetic search: " << space.size()
              << "-point space, " << bench_name << ", budget "
              << opts.budget << " evaluations ===\n\n";
    SearchResult genetic =
        runSearch(space, "genetic", evaluator, opts);
    printSearchResult(genetic, std::cout, 12);

    // Ground truth on a space small enough to enumerate: the same
    // axes, coarsened.  Exhaustive search shares the evaluator (and
    // its profiled studies), so this costs only model evaluations.
    SpaceSpec coarse = SpaceSpec::parse(
        "l2kb=128:1024:*2;assoc=8;depth=5@0.6,9@1.0;width=1:4;"
        "pred=gshare1k,hybrid3k5");
    SearchOptions all = opts;
    all.budget = 0; // unlimited: visit every point
    std::cout << "\n=== exhaustive ground truth: " << coarse.size()
              << "-point sub-space ===\n\n";
    SearchResult exact =
        runSearch(coarse, "exhaustive", evaluator, all);
    printSearchResult(exact, std::cout, 12);

    std::cout << "\nThe genetic frontier spans the same energy/delay "
                 "trade-off at a\nfraction of the evaluations a full "
                 "sweep of the wide space would need\n("
              << genetic.stats.misses << " fresh evaluations for "
              << genetic.spaceSize << " points; "
              << genetic.stats.hits
              << " revisits were free cache hits).\n";
    return 0;
}
