/**
 * @file
 * Quickstart: predict in-order performance for one benchmark and
 * validate the prediction against cycle-accurate simulation.
 *
 * Usage: quickstart [benchmark] [instructions]
 *   benchmark    profile name (default: sha; see workload/suites.hh)
 *   instructions trace length (default: 200000)
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "mech/mech.hh"

int
main(int argc, char **argv)
{
    using namespace mech;

    std::string bench_name = argc > 1 ? argv[1] : "sha";
    InstCount n = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200000;

    const BenchmarkProfile &bench = profileByName(bench_name);
    DesignPoint point = defaultDesignPoint();

    std::cout << "benchmark: " << bench.name << "\n"
              << "design:    " << point.label() << "\n\n";

    // 1. Generate the synthetic workload trace.
    Trace trace = generateTrace(bench, n);

    // 2. Profile it once: program statistics + miss/branch statistics.
    ProfilerConfig pcfg;
    pcfg.hierarchy = hierarchyFor(point);
    pcfg.predictors = {point.predictor};
    WorkloadProfile prof = profileTrace(trace, pcfg);

    // 3. Evaluate the mechanistic model: instant CPI prediction.
    MachineParams machine = machineFor(point);
    ModelResult model =
        evaluateInOrder(prof.program, prof.memory,
                        prof.branchProfileFor(point.predictor), machine);

    // 4. Validate against the cycle-accurate reference pipeline.
    SimResult sim = simulateInOrder(trace, simConfigFor(point));

    CpiStack per_instr = model.stack.perInstruction(prof.program.n);
    TextTable stack_table({"component", "CPI contribution"});
    for (std::size_t c = 0; c < kNumCpiComponents; ++c) {
        auto comp = static_cast<CpiComponent>(c);
        if (per_instr[comp] <= 0.0)
            continue;
        stack_table.addRow({std::string(cpiComponentName(comp)),
                            TextTable::num(per_instr[comp], 4)});
    }
    stack_table.print(std::cout);

    double err = absRelativeError(model.cycles,
                                  static_cast<double>(sim.cycles));
    std::cout << "\nmodel CPI:     " << TextTable::num(model.cpi(), 4)
              << "\nsimulated CPI: " << TextTable::num(sim.cpi(), 4)
              << "\nprediction error: " << TextTable::num(err * 100.0, 2)
              << "%\n";
    return 0;
}
