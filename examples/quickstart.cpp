/**
 * @file
 * Quickstart: predict in-order performance for one benchmark through
 * the unified evaluation-backend API and validate the prediction
 * against cycle-accurate simulation.
 *
 * The flow is the paper's: profile once (DseStudy), then evaluate the
 * profile at a design point with any set of registered backends —
 * here the analytical model ("model") plus the detailed reference
 * pipeline ("sim"), selectable with --backend.
 */

#include <iostream>
#include <string>

#include "mech/mech.hh"

int
main(int argc, char **argv)
{
    using namespace mech;

    std::string bench_name = "sha";
    InstCount n = 200000;
    std::string backend_csv = "model,sim";

    cli::ArgParser parser("quickstart",
                          "predict one benchmark and validate against "
                          "the detailed simulator");
    parser.addPositional("benchmark",
                         "profile name (see workload/suites.hh)",
                         &bench_name);
    parser.addPositional("instructions", "trace length", &n);
    parser.add("backend", "set",
               "comma-separated evaluation backends", &backend_csv);
    parser.parse(argc, argv);

    const BenchmarkProfile &bench = profileByName(bench_name);
    DesignPoint point = defaultDesignPoint();
    const BackendSet backends = backendSet(backend_csv);

    std::cout << "benchmark: " << bench.name << "\n"
              << "design:    " << point.label() << "\n"
              << "backends:  " << backend_csv << "\n\n";

    // 1. Profile once: trace generation + the single profiling pass.
    DseStudy study(bench, n);

    // 2. Evaluate the design point with every requested backend.
    PointEvaluation ev = study.evaluate(point, backends);

    // 3. Report the model's CPI stack, when the model backend ran.
    if (const EvalResult *model = ev.find(kModelBackend)) {
        CpiStack per_instr =
            model->stack.perInstruction(model->instructions);
        TextTable stack_table({"component", "CPI contribution"});
        for (std::size_t c = 0; c < kNumCpiComponents; ++c) {
            auto comp = static_cast<CpiComponent>(c);
            if (per_instr[comp] <= 0.0)
                continue;
            stack_table.addRow({std::string(cpiComponentName(comp)),
                                TextTable::num(per_instr[comp], 4)});
        }
        stack_table.print(std::cout);
    }

    // 4. One line per backend; the error line needs model + sim.
    std::cout << '\n';
    for (const EvalResult &res : ev.results) {
        std::cout << res.backend << " CPI: "
                  << TextTable::num(res.cpi(), 4) << "\n";
    }
    if (auto err = ev.cpiError()) {
        std::cout << "prediction error: "
                  << TextTable::num(*err * 100.0, 2) << "%\n";
    }
    return 0;
}
