/**
 * @file
 * Walkthrough of the mech_serve protocol, fully in-process.
 *
 * Drives the exact ServerSession the mech_serve tool runs — the
 * stdio and TCP front ends only differ in where the bytes come
 * from — through a scripted conversation: point evaluations (cache
 * cold, then warm), a multi-backend comparison, a whole-space batch
 * request with its Pareto frontier, a deliberately malformed line,
 * and the final drain.  Each request line prints before its
 * response line, so the output reads as a protocol transcript.
 *
 * Against a live server the same lines work verbatim:
 *
 *   mech_serve --port 8642 &
 *   printf '%s\n' '{"id": 1, "type": "info"}' | nc 127.0.0.1 8642
 *
 * The TCP front end serves many such sessions concurrently behind
 * admission control; a production client should additionally match
 * on '"code": "overloaded"' error responses and retry with backoff
 * (docs/serving.md), and tools/mech_shard shows the scatter-gather
 * pattern for splitting a space across several servers.
 */

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "mech/mech.hh"

int
main()
{
    using namespace mech;

    // A small service: one benchmark by default, serial evaluation
    // (the walkthrough is about the protocol, not throughput).
    serve::ServeConfig cfg;
    cfg.traceLen = 30000;
    cfg.threads = 1;
    cfg.defaultBench = {"jpeg_c"};
    serve::EvalService service(cfg);

    const std::string point = defaultDesignPoint().toKey();
    std::vector<std::string> script = {
        // 1. The paper's default configuration, by its toKey()
        //    identity.  First sight: a cache miss.
        "{\"id\": 1, \"type\": \"eval\", \"point\": \"" + point +
            "\"}",
        // 2. The same point again: answered from the memo
        //    ("cached": true), no model evaluation spent.
        "{\"id\": 2, \"type\": \"eval\", \"point\": \"" + point +
            "\"}",
        // 3. Explicit axes (omitted ones default to Table 2) and two
        //    backends: the analytical model versus the detailed
        //    simulator, each reporting cpi.
        "{\"id\": 3, \"type\": \"eval\", "
        "\"point\": {\"width\": 2, \"l2kb\": 256}, "
        "\"backends\": [\"model\", \"sim\"]}",
        // 4. A batch request: fan out a 16-point space and return
        //    its energy/delay Pareto frontier in one response.
        "{\"id\": 4, \"type\": \"batch\", "
        "\"space\": \"l2kb=128,256;width=1:4;depth=5@0.6,9@1.0\", "
        "\"objectives\": \"energy,delay\"}",
        // 5. Garbage: the server answers with a structured error and
        //    keeps serving.
        "{\"id\": 5, \"type\": \"eval\", \"point\": \"nonsense\"}",
        // 6. Accounting, then a graceful drain.
        "{\"id\": 6, \"type\": \"stats\"}",
        "{\"id\": 7, \"type\": \"shutdown\"}",
    };

    std::string input;
    for (const std::string &line : script)
        input += line + "\n";

    std::istringstream in(input);
    std::ostringstream out;
    serve::IstreamLineSource source(in);
    serve::SessionOptions opts;
    opts.latencyFields = false; // transcript stays reproducible
    opts.maxBatch = 1;          // answer each line before the next
    serve::ServerSession session(service, source, out, opts);
    session.run();

    std::istringstream responses(out.str());
    std::string response;
    for (const std::string &line : script) {
        std::cout << ">> " << line << "\n";
        if (std::getline(responses, response))
            std::cout << "<< " << response << "\n\n";
    }

    serve::ServiceStats stats = service.stats();
    std::cout << "service accounting: " << stats.requested
              << " point lookups, " << stats.hits << " cache hits, "
              << stats.misses << " evaluations, " << stats.groups
              << " group(s)\n";

    // The walkthrough doubles as a smoke test: the default point
    // must have been served from the cache the second time.
    if (stats.hits == 0) {
        std::cerr << "serve_client: expected at least one cache hit\n";
        return 1;
    }
    return 0;
}
