/**
 * @file
 * Branch direction predictors.
 *
 * Table 2 evaluates two predictors: a 1 KiB global-history predictor
 * (gshare: 4096 2-bit counters indexed by PC xor 12 bits of global
 * history) and a 3.5 KiB hybrid of a 10-bit local-history component
 * and a 12-bit global-history component with a 2-bit chooser
 * (1 KiB + 1.5 KiB + 1 KiB).  Static and bimodal predictors are
 * included as baselines for tests and ablations.
 *
 * Predictors are updated with the resolved outcome immediately after
 * each prediction, in both the profiler and the pipeline simulator.
 * The paper deliberately ignores delayed-update effects (§5, "the
 * model does not account for delayed update effects in the branch
 * predictor"), so keeping profiler and simulator consistent here is
 * exactly the first-order contract.
 */

#ifndef MECH_BRANCH_PREDICTOR_HH
#define MECH_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "common/types.hh"

namespace mech {

/** Available predictor designs. */
enum class PredictorKind : std::uint8_t {
    NotTaken,  ///< static: never taken
    Taken,     ///< static: always taken
    Bimodal,   ///< PC-indexed 2-bit counters
    Gshare1K,  ///< 1 KiB global-history predictor (Table 2 default)
    Local,     ///< 10-bit local-history predictor
    Hybrid3K5, ///< 3.5 KiB hybrid local/global with chooser (Table 2)
};

/** Name of a predictor kind for reports. */
std::string predictorName(PredictorKind kind);

/**
 * Stable short key of a predictor kind ("gshare1k", "hybrid3k5").
 *
 * Unlike predictorName() this form is round-trippable: it is the
 * token DesignPoint::toKey() emits and the design-space spec grammar
 * accepts, so it must never change for an existing kind.
 */
std::string_view predictorKey(PredictorKind kind);

/**
 * Parse a predictor from its key or its display name.
 *
 * Returns nullopt for unknown spellings (callers own the diagnostic).
 */
std::optional<PredictorKind> predictorFromKey(std::string_view key);

/** Hardware budget of a predictor kind in bytes (for power model). */
std::uint64_t predictorBytes(PredictorKind kind);

/** Direction-predictor interface. */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /** Predict the direction of the branch at @p pc. */
    virtual bool predict(Addr pc) = 0;

    /** Train with the resolved outcome. */
    virtual void update(Addr pc, bool taken) = 0;

    /** Forget all state. */
    virtual void reset() = 0;
};

/** Construct a predictor of the given kind. */
std::unique_ptr<BranchPredictor> makePredictor(PredictorKind kind);

} // namespace mech

#endif // MECH_BRANCH_PREDICTOR_HH
