#include "branch/predictor.hh"

#include <vector>

#include "common/logging.hh"

namespace mech {

namespace {

/** Saturating 2-bit counter helpers. */
inline std::uint8_t
bump(std::uint8_t ctr, bool up)
{
    if (up)
        return ctr < 3 ? ctr + 1 : 3;
    return ctr > 0 ? ctr - 1 : 0;
}

/** Static always-X predictor. */
class StaticPredictor : public BranchPredictor
{
  public:
    explicit StaticPredictor(bool predict_taken)
        : takenPrediction(predict_taken)
    {
    }

    bool predict(Addr) override { return takenPrediction; }
    void update(Addr, bool) override {}
    void reset() override {}

  private:
    bool takenPrediction;
};

/** PC-indexed table of 2-bit counters. */
class BimodalPredictor : public BranchPredictor
{
  public:
    explicit BimodalPredictor(std::uint32_t index_bits)
        : indexBits(index_bits), table(std::size_t{1} << index_bits, 2)
    {
    }

    bool
    predict(Addr pc) override
    {
        return table[index(pc)] >= 2;
    }

    void
    update(Addr pc, bool taken) override
    {
        auto &ctr = table[index(pc)];
        ctr = bump(ctr, taken);
    }

    void
    reset() override
    {
        std::fill(table.begin(), table.end(), 2);
    }

  private:
    std::size_t
    index(Addr pc) const
    {
        return (pc >> 2) & ((std::size_t{1} << indexBits) - 1);
    }

    std::uint32_t indexBits;
    std::vector<std::uint8_t> table;
};

/**
 * gshare: 2-bit counters indexed by (pc >> 2) xor global history.
 * With 12 index bits the table is 4096 x 2 bits = 1 KiB — the paper's
 * "1KB global history" predictor.
 */
class GsharePredictor : public BranchPredictor
{
  public:
    explicit GsharePredictor(std::uint32_t history_bits)
        : histBits(history_bits),
          table(std::size_t{1} << history_bits, 2)
    {
    }

    bool
    predict(Addr pc) override
    {
        return table[index(pc)] >= 2;
    }

    void
    update(Addr pc, bool taken) override
    {
        auto &ctr = table[index(pc)];
        ctr = bump(ctr, taken);
        history = ((history << 1) | (taken ? 1 : 0)) & mask();
    }

    void
    reset() override
    {
        std::fill(table.begin(), table.end(), 2);
        history = 0;
    }

  private:
    std::uint32_t mask() const { return (1u << histBits) - 1; }

    std::size_t
    index(Addr pc) const
    {
        return (static_cast<std::size_t>(pc >> 2) ^ history) & mask();
    }

    std::uint32_t histBits;
    std::uint32_t history = 0;
    std::vector<std::uint8_t> table;
};

/**
 * Local-history predictor: per-PC history registers select 2-bit
 * counters.  10-bit histories over 1024 entries = 1.25 KiB histories
 * + 0.25 KiB counters (the hybrid's local component).
 */
class LocalPredictor : public BranchPredictor
{
  public:
    LocalPredictor(std::uint32_t pc_bits, std::uint32_t history_bits)
        : pcBits(pc_bits), histBits(history_bits),
          histories(std::size_t{1} << pc_bits, 0),
          table(std::size_t{1} << history_bits, 2)
    {
    }

    bool
    predict(Addr pc) override
    {
        return table[counterIndex(pc)] >= 2;
    }

    void
    update(Addr pc, bool taken) override
    {
        auto &ctr = table[counterIndex(pc)];
        ctr = bump(ctr, taken);
        auto &hist = histories[pcIndex(pc)];
        hist = ((hist << 1) | (taken ? 1 : 0)) & ((1u << histBits) - 1);
    }

    void
    reset() override
    {
        std::fill(histories.begin(), histories.end(), 0);
        std::fill(table.begin(), table.end(), 2);
    }

  private:
    std::size_t
    pcIndex(Addr pc) const
    {
        return (pc >> 2) & ((std::size_t{1} << pcBits) - 1);
    }

    std::size_t
    counterIndex(Addr pc) const
    {
        return histories[pcIndex(pc)];
    }

    std::uint32_t pcBits;
    std::uint32_t histBits;
    std::vector<std::uint16_t> histories;
    std::vector<std::uint8_t> table;
};

/**
 * Tournament hybrid: 12-bit gshare + 10-bit local with a 4096-entry
 * 2-bit chooser indexed by global history — 1 + 1.5 + 1 = 3.5 KiB,
 * Table 2's second predictor.
 */
class HybridPredictor : public BranchPredictor
{
  public:
    HybridPredictor()
        : global(12), local(10, 10),
          chooser(std::size_t{1} << 12, 2)
    {
    }

    bool
    predict(Addr pc) override
    {
        bool g = global.predict(pc);
        bool l = local.predict(pc);
        bool use_global = chooser[history & 0xfff] >= 2;
        return use_global ? g : l;
    }

    void
    update(Addr pc, bool taken) override
    {
        bool g = global.predict(pc);
        bool l = local.predict(pc);
        // Train the chooser only when the components disagree.
        if (g != l) {
            auto &ctr = chooser[history & 0xfff];
            ctr = bump(ctr, g == taken);
        }
        global.update(pc, taken);
        local.update(pc, taken);
        history = ((history << 1) | (taken ? 1 : 0)) & 0xfff;
    }

    void
    reset() override
    {
        global.reset();
        local.reset();
        std::fill(chooser.begin(), chooser.end(), 2);
        history = 0;
    }

  private:
    GsharePredictor global;
    LocalPredictor local;
    std::vector<std::uint8_t> chooser;
    std::uint32_t history = 0;
};

} // namespace

std::string
predictorName(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::NotTaken: return "static-not-taken";
      case PredictorKind::Taken: return "static-taken";
      case PredictorKind::Bimodal: return "bimodal-1KB";
      case PredictorKind::Gshare1K: return "gshare-1KB";
      case PredictorKind::Local: return "local-1.5KB";
      case PredictorKind::Hybrid3K5: return "hybrid-3.5KB";
    }
    return "?";
}

std::string_view
predictorKey(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::NotTaken: return "nottaken";
      case PredictorKind::Taken: return "taken";
      case PredictorKind::Bimodal: return "bimodal";
      case PredictorKind::Gshare1K: return "gshare1k";
      case PredictorKind::Local: return "local";
      case PredictorKind::Hybrid3K5: return "hybrid3k5";
    }
    return "?";
}

std::optional<PredictorKind>
predictorFromKey(std::string_view key)
{
    static constexpr PredictorKind kAll[] = {
        PredictorKind::NotTaken, PredictorKind::Taken,
        PredictorKind::Bimodal,  PredictorKind::Gshare1K,
        PredictorKind::Local,    PredictorKind::Hybrid3K5,
    };
    for (PredictorKind kind : kAll) {
        if (key == predictorKey(kind) || key == predictorName(kind))
            return kind;
    }
    return std::nullopt;
}

std::uint64_t
predictorBytes(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::NotTaken:
      case PredictorKind::Taken:
        return 0;
      case PredictorKind::Bimodal:
        return 1024;
      case PredictorKind::Gshare1K:
        return 1024;
      case PredictorKind::Local:
        return 1536;
      case PredictorKind::Hybrid3K5:
        return 3584;
    }
    return 0;
}

std::unique_ptr<BranchPredictor>
makePredictor(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::NotTaken:
        return std::make_unique<StaticPredictor>(false);
      case PredictorKind::Taken:
        return std::make_unique<StaticPredictor>(true);
      case PredictorKind::Bimodal:
        return std::make_unique<BimodalPredictor>(12);
      case PredictorKind::Gshare1K:
        return std::make_unique<GsharePredictor>(12);
      case PredictorKind::Local:
        return std::make_unique<LocalPredictor>(10, 10);
      case PredictorKind::Hybrid3K5:
        return std::make_unique<HybridPredictor>();
    }
    panic("unknown predictor kind");
}

} // namespace mech
