/**
 * @file
 * Single-pass multi-predictor branch profiling.
 *
 * The paper's framework collects misprediction rates "for multiple
 * branch predictors in a single run" (§2.1); BranchProfiler does
 * exactly that: every branch outcome trains all candidate predictors
 * simultaneously, so one trace pass yields model inputs for every
 * predictor configuration of the design space.
 */

#ifndef MECH_BRANCH_PROFILER_HH
#define MECH_BRANCH_PROFILER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "branch/predictor.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace mech {

/** Misprediction statistics for one predictor over one stream. */
struct BranchProfile
{
    PredictorKind kind = PredictorKind::Gshare1K;
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;

    /** Predicted-taken count (correct or not). */
    std::uint64_t predictedTaken = 0;

    /**
     * Correctly-predicted taken branches: each costs the one-cycle
     * fetch bubble the paper calls the taken-branch hit penalty.
     * (Mispredicted branches pay the full flush penalty instead; the
     * bubble they may also have caused only delays instructions that
     * get flushed anyway.)
     */
    std::uint64_t predictedTakenCorrect = 0;

    /** Misprediction ratio. */
    double
    rate() const
    {
        return branches ? static_cast<double>(mispredicts) /
                              static_cast<double>(branches)
                        : 0.0;
    }
};

/** Trains several predictors on one branch stream simultaneously. */
class BranchProfiler
{
  public:
    /** Profile the given predictor kinds. */
    explicit BranchProfiler(const std::vector<PredictorKind> &kinds)
    {
        MECH_ASSERT(!kinds.empty(), "no predictors to profile");
        for (auto kind : kinds) {
            entries.push_back({makePredictor(kind), BranchProfile{}});
            entries.back().profile.kind = kind;
        }
    }

    /** Observe one resolved branch. */
    void
    observe(Addr pc, bool taken)
    {
        for (auto &entry : entries) {
            bool predicted = entry.predictor->predict(pc);
            ++entry.profile.branches;
            if (predicted != taken)
                ++entry.profile.mispredicts;
            if (predicted) {
                ++entry.profile.predictedTaken;
                if (taken)
                    ++entry.profile.predictedTakenCorrect;
            }
            entry.predictor->update(pc, taken);
        }
    }

    /** Results, one per profiled kind (in construction order). */
    std::vector<BranchProfile>
    profiles() const
    {
        std::vector<BranchProfile> out;
        out.reserve(entries.size());
        for (const auto &entry : entries)
            out.push_back(entry.profile);
        return out;
    }

    /** Result for a specific kind. */
    const BranchProfile &
    profileFor(PredictorKind kind) const
    {
        for (const auto &entry : entries) {
            if (entry.profile.kind == kind)
                return entry.profile;
        }
        panic("predictor kind not profiled: ", predictorName(kind));
    }

  private:
    struct Entry
    {
        std::unique_ptr<BranchPredictor> predictor;
        BranchProfile profile;
    };

    std::vector<Entry> entries;
};

} // namespace mech

#endif // MECH_BRANCH_PROFILER_HH
