#include "cache/cache.hh"

#include <bit>

namespace mech {

SetAssocCache::SetAssocCache(const CacheConfig &config)
    : cfg(config)
{
    if (!std::has_single_bit(cfg.sizeBytes) ||
        !std::has_single_bit(static_cast<std::uint64_t>(cfg.blockBytes))) {
        fatal("cache size and block size must be powers of two (got ",
              cfg.sizeBytes, " / ", cfg.blockBytes, ")");
    }
    if (cfg.assoc == 0 || cfg.sizeBytes <
        static_cast<std::uint64_t>(cfg.assoc) * cfg.blockBytes) {
        fatal("cache geometry invalid: ", cfg.sizeBytes, "B / ", cfg.assoc,
              "-way / ", cfg.blockBytes, "B blocks");
    }
    if (!std::has_single_bit(cfg.numSets()))
        fatal("cache set count must be a power of two");
    lines.resize(cfg.numSets() * cfg.assoc);
}

bool
SetAssocCache::access(Addr addr, bool is_write)
{
    std::uint64_t set = setIndex(addr);
    Addr tag = tagOf(addr);
    Line *base = &lines[set * cfg.assoc];

    ++useClock;

    Line *victim = base;
    for (std::uint32_t w = 0; w < cfg.assoc; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lastUse = useClock;
            line.dirty = line.dirty || is_write;
            ++_stats.hits;
            return true;
        }
        // Track the LRU (or first invalid) way as the victim.
        if (!line.valid) {
            if (victim->valid || line.lastUse < victim->lastUse)
                victim = &line;
        } else if (victim->valid && line.lastUse < victim->lastUse) {
            victim = &line;
        }
    }

    ++_stats.misses;
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = useClock;
    victim->dirty = is_write;
    return false;
}

bool
SetAssocCache::contains(Addr addr) const
{
    std::uint64_t set = setIndex(addr);
    Addr tag = tagOf(addr);
    const Line *base = &lines[set * cfg.assoc];
    for (std::uint32_t w = 0; w < cfg.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

void
SetAssocCache::flush()
{
    for (auto &line : lines)
        line = Line{};
}

} // namespace mech
