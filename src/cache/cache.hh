/**
 * @file
 * Set-associative cache with true-LRU replacement.
 *
 * This is the building block of the two-level hierarchy the paper's
 * default configuration uses (private 32 KiB L1s + unified L2,
 * Table 2).  Timing lives in the pipeline simulator and the model;
 * the cache itself only tracks contents and hit/miss outcomes.
 */

#ifndef MECH_CACHE_CACHE_HH
#define MECH_CACHE_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace mech {

/** Geometry of one cache. */
struct CacheConfig
{
    /** Total capacity in bytes (power of two). */
    std::uint64_t sizeBytes = 32 * 1024;

    /** Associativity (ways per set). */
    std::uint32_t assoc = 4;

    /** Block (line) size in bytes (power of two). */
    std::uint32_t blockBytes = 64;

    /** Number of sets implied by the geometry. */
    std::uint64_t
    numSets() const
    {
        return sizeBytes / (static_cast<std::uint64_t>(assoc) * blockBytes);
    }
};

/** Hit/miss counters for one cache. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    /** Total accesses. */
    std::uint64_t accesses() const { return hits + misses; }

    /** Miss ratio (0 when never accessed). */
    double
    missRatio() const
    {
        return accesses()
                   ? static_cast<double>(misses) /
                         static_cast<double>(accesses())
                   : 0.0;
    }
};

/**
 * Set-associative cache with true-LRU replacement and write-allocate.
 *
 * Functional only: access() returns whether the block was present and
 * installs it if not.  Eviction follows strict LRU within the set.
 */
class SetAssocCache
{
  public:
    /** Build a cache; validates that the geometry is a power of two. */
    explicit SetAssocCache(const CacheConfig &config);

    /**
     * Access the block containing @p addr.
     *
     * @param addr Byte address.
     * @param is_write True for stores (sets the dirty bit).
     * @return True on hit, false on miss (block is then installed).
     */
    bool access(Addr addr, bool is_write = false);

    /** True if the block containing @p addr is currently resident. */
    bool contains(Addr addr) const;

    /** Invalidate all contents (statistics are kept). */
    void flush();

    /** Access statistics. */
    const CacheStats &stats() const { return _stats; }

    /** Reset statistics (contents are kept). */
    void clearStats() { _stats = CacheStats{}; }

    /** Geometry. */
    const CacheConfig &config() const { return cfg; }

  private:
    struct Line
    {
        Addr tag = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
        bool dirty = false;
    };

    /** Set index for an address. */
    std::uint64_t
    setIndex(Addr addr) const
    {
        return (addr / cfg.blockBytes) & (cfg.numSets() - 1);
    }

    /** Tag for an address. */
    Addr
    tagOf(Addr addr) const
    {
        return addr / cfg.blockBytes / cfg.numSets();
    }

    CacheConfig cfg;
    std::vector<Line> lines; // numSets x assoc, row-major
    std::uint64_t useClock = 0;
    CacheStats _stats;
};

} // namespace mech

#endif // MECH_CACHE_CACHE_HH
