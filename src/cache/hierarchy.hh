/**
 * @file
 * Two-level cache hierarchy front (L1I + L1D + unified L2 + TLBs).
 *
 * Mirrors the paper's default memory system (Table 2): private L1
 * instruction and data caches and a unified second-level cache.
 * Accesses classify into the level that serves them, which is what
 * both the pipeline simulator (stall cycles) and the profiler (miss
 * counts per event type) need.
 */

#ifndef MECH_CACHE_HIERARCHY_HH
#define MECH_CACHE_HIERARCHY_HH

#include <cstdint>

#include "cache/cache.hh"
#include "cache/tlb.hh"
#include "common/types.hh"

namespace mech {

/** Which level of the hierarchy served an access. */
enum class MemLevel : std::uint8_t {
    L1,     ///< first-level hit
    L2,     ///< L1 miss, L2 hit
    Memory, ///< missed both levels
};

/** Outcome of one hierarchy access. */
struct HierAccess
{
    /** Level that served the data. */
    MemLevel level = MemLevel::L1;

    /** True if the TLB missed (independent of the cache outcome). */
    bool tlbMiss = false;
};

/** Configuration of the full hierarchy. */
struct HierarchyConfig
{
    CacheConfig l1i{32 * 1024, 4, 64};
    CacheConfig l1d{32 * 1024, 4, 64};
    CacheConfig l2{512 * 1024, 8, 64};
    TlbConfig itlb{32, 4096};
    TlbConfig dtlb{32, 4096};
};

/** Two-level hierarchy with split L1s, unified L2, and TLBs. */
class CacheHierarchy
{
  public:
    /** Build the hierarchy. */
    explicit CacheHierarchy(const HierarchyConfig &config)
        : cfg(config), l1iCache(config.l1i), l1dCache(config.l1d),
          l2Cache(config.l2), itlbUnit(config.itlb), dtlbUnit(config.dtlb)
    {
    }

    /** Instruction fetch of the block containing @p pc. */
    HierAccess
    fetch(Addr pc)
    {
        HierAccess res;
        res.tlbMiss = !itlbUnit.access(pc);
        if (l1iCache.access(pc))
            return res;
        res.level = l2Cache.access(pc) ? MemLevel::L2 : MemLevel::Memory;
        return res;
    }

    /** Data access at @p addr; @p is_write true for stores. */
    HierAccess
    data(Addr addr, bool is_write)
    {
        HierAccess res;
        res.tlbMiss = !dtlbUnit.access(addr);
        if (l1dCache.access(addr, is_write))
            return res;
        res.level = l2Cache.access(addr, is_write) ? MemLevel::L2
                                                   : MemLevel::Memory;
        return res;
    }

    /** Component accessors (read-only stats). */
    const SetAssocCache &l1i() const { return l1iCache; }
    const SetAssocCache &l1d() const { return l1dCache; }
    const SetAssocCache &l2() const { return l2Cache; }
    const Tlb &itlb() const { return itlbUnit; }
    const Tlb &dtlb() const { return dtlbUnit; }

    /** Configuration. */
    const HierarchyConfig &config() const { return cfg; }

  private:
    HierarchyConfig cfg;
    SetAssocCache l1iCache;
    SetAssocCache l1dCache;
    SetAssocCache l2Cache;
    Tlb itlbUnit;
    Tlb dtlbUnit;
};

} // namespace mech

#endif // MECH_CACHE_HIERARCHY_HH
