/**
 * @file
 * Captured memory-reference streams.
 *
 * Sweeping L2 configurations does not require re-running the whole
 * trace: with fixed L1s the L2 only ever sees the L1 miss stream.
 * Capturing that stream once and replaying it into each candidate L2
 * is the profiling shortcut that keeps the paper's "profile once,
 * predict 192 configurations" workflow cheap.
 */

#ifndef MECH_CACHE_MISS_STREAM_HH
#define MECH_CACHE_MISS_STREAM_HH

#include <cstdint>
#include <vector>

#include "cache/cache.hh"
#include "common/types.hh"

namespace mech {

/** One captured memory reference. */
struct MemRef
{
    /** Byte address. */
    Addr addr = 0;

    /** True for stores. */
    bool isWrite = false;
};

/** Sequence of memory references in program order. */
using MemRefStream = std::vector<MemRef>;

/**
 * Replay a reference stream into a fresh cache of @p config geometry.
 *
 * @return Miss count over the stream.
 */
inline std::uint64_t
replayMisses(const MemRefStream &stream, const CacheConfig &config)
{
    SetAssocCache cache(config);
    std::uint64_t misses = 0;
    for (const auto &ref : stream) {
        if (!cache.access(ref.addr, ref.isWrite))
            ++misses;
    }
    return misses;
}

} // namespace mech

#endif // MECH_CACHE_MISS_STREAM_HH
