#include "cache/stack_sim.hh"

#include <bit>
#include <utility>

namespace mech {

namespace {

/** Initial map capacity (slots; power of two). */
constexpr std::size_t kInitialTableSize = 256;

} // namespace

StackDistanceSimulator::StackDistanceSimulator(std::uint64_t num_sets,
                                               std::uint32_t block_bytes,
                                               std::uint32_t max_tracked_assoc)
    : numSets(num_sets), blockBytes(block_bytes),
      maxAssoc(max_tracked_assoc)
{
    if (!std::has_single_bit(numSets) ||
        !std::has_single_bit(static_cast<std::uint64_t>(blockBytes))) {
        fatal("stack simulator set count and block size must be powers "
              "of two");
    }
    MECH_ASSERT(maxAssoc >= 1, "need at least one tracked way");
    blockShift = static_cast<std::uint32_t>(
        std::countr_zero(static_cast<std::uint64_t>(blockBytes)));
    stacks.resize(numSets);
    table.resize(kInitialTableSize);
    tableShift = static_cast<std::uint32_t>(
        64 - std::countr_zero(kInitialTableSize));
}

void
StackDistanceSimulator::mapInsert(std::uint64_t block,
                                  std::uint32_t node)
{
    constexpr std::size_t no_slot = static_cast<std::size_t>(-1);
    const std::size_t mask = table.size() - 1;
    std::size_t pos = hashBlock(block) >> tableShift;
    std::size_t tomb = no_slot;
    for (;; pos = (pos + 1) & mask) {
        MapSlot &slot = table[pos];
        if (slot.node == kEmpty) {
            if (tomb != no_slot) {
                pos = tomb;
            } else {
                ++tableUsed;
            }
            break;
        }
        if (slot.node == kTomb && tomb == no_slot)
            tomb = pos;
    }
    table[pos] = {block, node};
    ++tableOccupied;
    // Keep probe runs short: rebuild once 3/4 of the slots carry an
    // entry or a tombstone.
    if (tableUsed * 4 >= table.size() * 3)
        rehash();
}

void
StackDistanceSimulator::mapErase(std::uint64_t block)
{
    std::size_t pos = findSlot(block);
    MECH_ASSERT(table[pos].node != kEmpty, "erasing absent block");
    table[pos].node = kTomb;
    --tableOccupied;
}

void
StackDistanceSimulator::rehash()
{
    std::size_t new_size = table.size();
    while (tableOccupied * 3 >= new_size)
        new_size *= 2;

    std::vector<MapSlot> old = std::move(table);
    table.assign(new_size, MapSlot{});
    tableShift = static_cast<std::uint32_t>(
        64 - std::countr_zero(new_size));
    tableUsed = tableOccupied;

    const std::size_t mask = new_size - 1;
    for (const MapSlot &slot : old) {
        if (slot.node == kEmpty || slot.node == kTomb)
            continue;
        std::size_t pos = hashBlock(slot.block) >> tableShift;
        while (table[pos].node != kEmpty)
            pos = (pos + 1) & mask;
        table[pos] = slot;
    }
}

void
StackDistanceSimulator::insertCold(SetList &s, std::uint64_t block)
{
    std::uint32_t idx;
    if (s.nodes.size() < maxAssoc) {
        idx = static_cast<std::uint32_t>(s.nodes.size());
        s.nodes.push_back({block, kNil, kNil});
    } else {
        // Set full: recycle the LRU node's slot for the new block.
        idx = s.tail;
        Node &victim = s.nodes[idx];
        mapErase(victim.block);
        s.tail = victim.prev;
        if (s.tail != kNil)
            s.nodes[s.tail].next = kNil;
        else
            s.head = kNil;
        victim.block = block;
    }

    Node &n = s.nodes[idx];
    n.prev = kNil;
    n.next = s.head;
    if (s.head != kNil)
        s.nodes[s.head].prev = idx;
    s.head = idx;
    if (s.tail == kNil)
        s.tail = idx;
    // The insert re-probes rather than reusing the access-time slot:
    // the eviction above may have tombstoned an earlier slot of this
    // very probe run, and the insert should prefer it.
    mapInsert(block, idx);
}

std::uint64_t
StackDistanceSimulator::hitsForAssoc(std::uint32_t assoc) const
{
    MECH_ASSERT(assoc >= 1 && assoc <= maxAssoc,
                "assoc ", assoc, " outside tracked range");
    return distances.sumRange(1, assoc);
}

} // namespace mech
