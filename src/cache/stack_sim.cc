#include "cache/stack_sim.hh"

#include <algorithm>
#include <bit>

namespace mech {

StackDistanceSimulator::StackDistanceSimulator(std::uint64_t num_sets,
                                               std::uint32_t block_bytes,
                                               std::uint32_t max_tracked_assoc)
    : numSets(num_sets), blockBytes(block_bytes),
      maxAssoc(max_tracked_assoc)
{
    if (!std::has_single_bit(numSets) ||
        !std::has_single_bit(static_cast<std::uint64_t>(blockBytes))) {
        fatal("stack simulator set count and block size must be powers "
              "of two");
    }
    MECH_ASSERT(maxAssoc >= 1, "need at least one tracked way");
    stacks.resize(numSets);
}

void
StackDistanceSimulator::access(Addr addr)
{
    std::uint64_t block = addr / blockBytes;
    std::uint64_t set = block & (numSets - 1);
    Addr tag = block / numSets;
    auto &stack = stacks[set];

    ++total;

    auto it = std::find(stack.begin(), stack.end(), tag);
    if (it == stack.end()) {
        // Cold or beyond the tracked depth: a miss at every tracked
        // associativity.  Key 0 marks "deeper than tracked".
        distances.add(0);
    } else {
        auto depth = static_cast<std::uint64_t>(it - stack.begin()) + 1;
        distances.add(depth);
        stack.erase(it);
    }

    stack.insert(stack.begin(), tag);
    if (stack.size() > maxAssoc)
        stack.pop_back();
}

std::uint64_t
StackDistanceSimulator::hitsForAssoc(std::uint32_t assoc) const
{
    MECH_ASSERT(assoc >= 1 && assoc <= maxAssoc,
                "assoc ", assoc, " outside tracked range");
    return distances.sumRange(1, assoc);
}

} // namespace mech
