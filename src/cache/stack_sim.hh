/**
 * @file
 * Single-pass all-associativity cache simulation.
 *
 * Implements the classic Mattson stack-distance algorithm (paper
 * refs [12, 22]): one pass over an address stream yields hit counts
 * for *every* associativity of an LRU cache with a fixed set count
 * and block size, thanks to LRU's inclusion property.  The paper's
 * profiling methodology leans on this to cover a range of cache
 * configurations with a single profiling run.
 *
 * Implementation: each set keeps its recency order as an intrusive
 * doubly-linked list over a fixed arena of at most maxTrackedAssoc
 * nodes, with a block -> node hash map in front.  A hit walks the
 * list only down to the block's depth and relinks in O(1); a miss is
 * O(1) plus one hash update.  Per-access cost is therefore
 * O(min(hit depth, max_assoc)) instead of the O(stack size) scan +
 * shift of the naive vector-of-tags formulation, while the distance
 * histogram stays bit-identical (golden-tested against the reference
 * implementation in tests/cache_test.cc).
 *
 * The map is a flat open-addressing table (linear probing, tombstone
 * deletion, amortized doubling) rather than std::unordered_map: a
 * lookup touches one contiguous cache line instead of chasing bucket
 * and node pointers, which is worth >2x on real address streams.
 */

#ifndef MECH_CACHE_STACK_SIM_HH
#define MECH_CACHE_STACK_SIM_HH

#include <cstdint>
#include <vector>

#include "common/histogram.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace mech {

/**
 * Stack-distance simulator for LRU caches with @p num_sets sets.
 *
 * After streaming accesses through access(), hitsForAssoc(a) returns
 * exactly the hit count a SetAssocCache with the same set count,
 * block size, associativity @p a and LRU replacement would report —
 * for every a in [1, maxTrackedAssoc] simultaneously.
 */
class StackDistanceSimulator
{
  public:
    /**
     * @param num_sets Number of sets (power of two).
     * @param block_bytes Line size in bytes (power of two).
     * @param max_tracked_assoc Depth beyond which distances count as
     *        misses for every tracked associativity.
     */
    StackDistanceSimulator(std::uint64_t num_sets,
                           std::uint32_t block_bytes,
                           std::uint32_t max_tracked_assoc = 64);

    /**
     * Stream one access through the simulator.
     *
     * Defined inline below: profiling streams hundreds of millions
     * of accesses through this call, and keeping it inlinable is
     * worth ~2x by itself (the cold insert/evict path stays
     * out-of-line in the .cc).
     */
    void access(Addr addr);

    /** Total accesses observed. */
    std::uint64_t accesses() const { return total; }

    /**
     * Hits an LRU cache of associativity @p assoc would score.
     * @pre assoc in [1, maxTrackedAssoc].
     */
    std::uint64_t hitsForAssoc(std::uint32_t assoc) const;

    /** Misses for associativity @p assoc (complement of hits). */
    std::uint64_t
    missesForAssoc(std::uint32_t assoc) const
    {
        return total - hitsForAssoc(assoc);
    }

    /** Histogram of stack distances (1-based; key 0 = cold/deep). */
    const Histogram &distanceHistogram() const { return distances; }

  private:
    /** Null link / "no node". */
    static constexpr std::uint32_t kNil = 0xffffffffu;

    /** Map-slot marker: never occupied. */
    static constexpr std::uint32_t kEmpty = 0xffffffffu;

    /** Map-slot marker: erased, probe sequences continue past it. */
    static constexpr std::uint32_t kTomb = 0xfffffffeu;

    /** One LRU-stack entry, linked MRU-first within its set. */
    struct Node
    {
        /** Global block number (the hash-map key). */
        std::uint64_t block;

        /** Neighbours in recency order (indices into the set arena). */
        std::uint32_t prev;
        std::uint32_t next;
    };

    /** Recency list of one set, backed by a capped arena. */
    struct SetList
    {
        /** Node arena; grows to maxAssoc, then slots are recycled. */
        std::vector<Node> nodes;

        /** Most- and least-recently-used node, or kNil when empty. */
        std::uint32_t head = kNil;
        std::uint32_t tail = kNil;
    };

    /** One slot of the flat block -> node map. */
    struct MapSlot
    {
        /** Key: global block number (valid when occupied). */
        std::uint64_t block = 0;

        /** Node index within the block's set, kEmpty or kTomb. */
        std::uint32_t node = kEmpty;
    };

    /** Multiplicative hash; the table index is its top bits. */
    static std::uint64_t
    hashBlock(std::uint64_t block)
    {
        return block * 0x9E3779B97F4A7C15ull;
    }

    /** Map slot holding @p block, or the end of its probe run. */
    std::size_t
    findSlot(std::uint64_t block) const
    {
        const std::size_t mask = table.size() - 1;
        std::size_t pos = hashBlock(block) >> tableShift;
        for (;; pos = (pos + 1) & mask) {
            const MapSlot &slot = table[pos];
            if (slot.node == kEmpty ||
                (slot.node != kTomb && slot.block == block)) {
                return pos;
            }
        }
    }

    /** Cold path of access(): install a block seen cold or deep. */
    void insertCold(SetList &s, std::uint64_t block);

    /** Insert block -> node (block must be absent). */
    void mapInsert(std::uint64_t block, std::uint32_t node);

    /** Remove @p block from the map (must be present). */
    void mapErase(std::uint64_t block);

    /** Rebuild the table, dropping tombstones and growing on demand. */
    void rehash();

    std::uint64_t numSets;
    std::uint32_t blockBytes;
    std::uint32_t maxAssoc;

    /** log2(blockBytes), so block extraction is a shift. */
    std::uint32_t blockShift;

    /** Per-set recency lists, MRU first, depth-capped at maxAssoc. */
    std::vector<SetList> stacks;

    /** Flat open-addressing map: resident block -> node slot. */
    std::vector<MapSlot> table;

    /** Top-bits shift for the current table size. */
    std::uint32_t tableShift;

    /** Occupied slots (live entries). */
    std::size_t tableOccupied = 0;

    /** Occupied + tombstoned slots (probe-run length control). */
    std::size_t tableUsed = 0;

    /** distances.at(k) = accesses with stack distance k (1-based). */
    Histogram distances;

    std::uint64_t total = 0;
};

inline void
StackDistanceSimulator::access(Addr addr)
{
    const std::uint64_t block = addr >> blockShift;
    SetList &s = stacks[block & (numSets - 1)];

    ++total;

    // Re-reference of the most recent block in the set: no recency
    // change, no hash lookup.  This is the hottest path for streams
    // with spatial locality.
    if (s.head != kNil && s.nodes[s.head].block == block) {
        distances.add(1);
        return;
    }

    const std::size_t map_pos = findSlot(block);
    if (table[map_pos].node == kEmpty) {
        // Cold or beyond the tracked depth: a miss at every tracked
        // associativity.  Key 0 marks "deeper than tracked".
        distances.add(0);
        insertCold(s, block);
        return;
    }

    // Hit below the top: the depth walk stops at the node, so cost is
    // bounded by the hit depth, and the relink is O(1).
    const std::uint32_t idx = table[map_pos].node;
    std::uint64_t depth = 2;
    for (std::uint32_t cur = s.nodes[s.head].next; cur != idx;
         cur = s.nodes[cur].next) {
        ++depth;
    }
    distances.add(depth);

    Node &n = s.nodes[idx];
    s.nodes[n.prev].next = n.next;
    if (n.next != kNil)
        s.nodes[n.next].prev = n.prev;
    else
        s.tail = n.prev;
    n.prev = kNil;
    n.next = s.head;
    s.nodes[s.head].prev = idx;
    s.head = idx;
}

} // namespace mech

#endif // MECH_CACHE_STACK_SIM_HH
