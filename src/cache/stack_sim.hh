/**
 * @file
 * Single-pass all-associativity cache simulation.
 *
 * Implements the classic Mattson stack-distance algorithm (paper
 * refs [12, 22]): one pass over an address stream yields hit counts
 * for *every* associativity of an LRU cache with a fixed set count
 * and block size, thanks to LRU's inclusion property.  The paper's
 * profiling methodology leans on this to cover a range of cache
 * configurations with a single profiling run.
 */

#ifndef MECH_CACHE_STACK_SIM_HH
#define MECH_CACHE_STACK_SIM_HH

#include <cstdint>
#include <vector>

#include "common/histogram.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace mech {

/**
 * Stack-distance simulator for LRU caches with @p num_sets sets.
 *
 * After streaming accesses through access(), hitsForAssoc(a) returns
 * exactly the hit count a SetAssocCache with the same set count,
 * block size, associativity @p a and LRU replacement would report —
 * for every a in [1, maxTrackedAssoc] simultaneously.
 */
class StackDistanceSimulator
{
  public:
    /**
     * @param num_sets Number of sets (power of two).
     * @param block_bytes Line size in bytes (power of two).
     * @param max_tracked_assoc Depth beyond which distances count as
     *        misses for every tracked associativity.
     */
    StackDistanceSimulator(std::uint64_t num_sets,
                           std::uint32_t block_bytes,
                           std::uint32_t max_tracked_assoc = 64);

    /** Stream one access through the simulator. */
    void access(Addr addr);

    /** Total accesses observed. */
    std::uint64_t accesses() const { return total; }

    /**
     * Hits an LRU cache of associativity @p assoc would score.
     * @pre assoc in [1, maxTrackedAssoc].
     */
    std::uint64_t hitsForAssoc(std::uint32_t assoc) const;

    /** Misses for associativity @p assoc (complement of hits). */
    std::uint64_t
    missesForAssoc(std::uint32_t assoc) const
    {
        return total - hitsForAssoc(assoc);
    }

    /** Histogram of stack distances (1-based; key 0 = cold/deep). */
    const Histogram &distanceHistogram() const { return distances; }

  private:
    std::uint64_t numSets;
    std::uint32_t blockBytes;
    std::uint32_t maxAssoc;

    /** Per-set LRU stacks of tags, MRU first, depth-capped. */
    std::vector<std::vector<Addr>> stacks;

    /** distances.at(k) = accesses with stack distance k (1-based). */
    Histogram distances;

    std::uint64_t total = 0;
};

} // namespace mech

#endif // MECH_CACHE_STACK_SIM_HH
