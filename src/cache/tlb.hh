/**
 * @file
 * Fully-associative LRU translation lookaside buffer.
 *
 * TLB misses are one of the paper's miss-event classes (Table 1);
 * like cache misses their penalty is the miss latency minus the
 * partial-group overlap term.
 */

#ifndef MECH_CACHE_TLB_HH
#define MECH_CACHE_TLB_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace mech {

/** Geometry of a TLB. */
struct TlbConfig
{
    /** Number of entries (fully associative). */
    std::uint32_t entries = 32;

    /** Page size in bytes. */
    std::uint64_t pageBytes = 4096;
};

/** Fully-associative, true-LRU TLB. */
class Tlb
{
  public:
    /** Build a TLB with @p config geometry. */
    explicit Tlb(const TlbConfig &config)
        : cfg(config)
    {
        MECH_ASSERT(cfg.entries > 0, "TLB needs at least one entry");
        slots.resize(cfg.entries);
    }

    /**
     * Translate the page containing @p addr.
     * @return True on TLB hit; on miss the translation is installed.
     */
    bool
    access(Addr addr)
    {
        Addr vpn = addr / cfg.pageBytes;
        ++useClock;

        Slot *victim = &slots[0];
        for (auto &slot : slots) {
            if (slot.valid && slot.vpn == vpn) {
                slot.lastUse = useClock;
                ++hits;
                return true;
            }
            if (!slot.valid) {
                if (victim->valid || slot.lastUse < victim->lastUse)
                    victim = &slot;
            } else if (victim->valid && slot.lastUse < victim->lastUse) {
                victim = &slot;
            }
        }

        ++misses;
        victim->valid = true;
        victim->vpn = vpn;
        victim->lastUse = useClock;
        return false;
    }

    /** Number of hits so far. */
    std::uint64_t hitCount() const { return hits; }

    /** Number of misses so far. */
    std::uint64_t missCount() const { return misses; }

    /** Geometry. */
    const TlbConfig &config() const { return cfg; }

  private:
    struct Slot
    {
        Addr vpn = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    TlbConfig cfg;
    std::vector<Slot> slots;
    std::uint64_t useClock = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
};

} // namespace mech

#endif // MECH_CACHE_TLB_HH
