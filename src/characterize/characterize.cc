#include "characterize/characterize.hh"

#include <algorithm>
#include <cmath>

#include "characterize/kernels.hh"
#include "common/logging.hh"
#include "eval/registry.hh"
#include "profiler/profiler.hh"

namespace mech {

namespace {

/** One named kernel of the measurement battery. */
struct NamedKernel
{
    std::string name;
    Trace trace;
};

/** The full battery for one config (deterministic order and names). */
std::vector<NamedKernel>
buildBattery(const CharacterizeConfig &cfg)
{
    std::vector<NamedKernel> battery;
    auto add = [&battery](std::string name, Trace trace) {
        battery.push_back({std::move(name), std::move(trace)});
    };
    auto addPair = [&](const std::string &stem, auto make) {
        add(stem + "/a", make(cfg.lenA));
        add(stem + "/b", make(cfg.lenB));
    };

    // Pipeline fill: one instruction's total latency.
    add("single", streamKernel(OpClass::IntAlu, 1));

    // Issue throughput of every class.
    for (OpClass oc : kAllOpClasses) {
        addPair("stream/" + std::string(opClassName(oc)),
                [oc](std::size_t n) { return streamKernel(oc, n); });
    }

    // Effective latency of the value-producing execute classes.
    for (OpClass oc : kAllOpClasses) {
        if (oc != OpClass::IntAlu && !isLongLatencyClass(oc))
            continue;
        addPair("chain/" + std::string(opClassName(oc)),
                [oc](std::size_t n) { return chainKernel(oc, n); });
    }

    // The memory ladder, independent (in-order memory-stage
    // occupancy) and chained (out-of-order load-to-use latency).
    const struct
    {
        const char *name;
        LoadPattern pattern;
    } ladder[] = {
        {"l1", LoadPattern::L1Hit},
        {"l2", LoadPattern::L2Hit},
        {"mem", LoadPattern::Memory},
        {"page", LoadPattern::FreshPage},
    };
    for (const auto &rung : ladder) {
        if (rung.pattern != LoadPattern::L1Hit) {
            // L1Hit is already covered by stream/Load.
            addPair(std::string("loadstream/") + rung.name,
                    [&rung](std::size_t n) {
                        return loadStreamKernel(rung.pattern, n);
                    });
        }
        addPair(std::string("loadchain/") + rung.name,
                [&rung](std::size_t n) {
                    return loadChainKernel(rung.pattern, n);
                });
    }

    // Mixed-class streams: per-class pressure below every FU cap, so
    // the sustained IPC is the core's effective width.
    const std::vector<OpClass> mix_albr = {OpClass::IntAlu,
                                           OpClass::IntAlu,
                                           OpClass::Load,
                                           OpClass::Branch};
    const std::vector<OpClass> mix_amlb = {OpClass::IntAlu,
                                           OpClass::IntMult,
                                           OpClass::Load,
                                           OpClass::Branch};
    addPair("mix/albr", [&mix_albr](std::size_t n) {
        return mixKernel(mix_albr, n);
    });
    addPair("mix/amlb", [&mix_amlb](std::size_t n) {
        return mixKernel(mix_amlb, n);
    });

    return battery;
}

/** Measurement lookup keyed by kernel name (battery-sized, linear). */
class Measurements
{
  public:
    explicit Measurements(const std::vector<KernelMeasurement> &ms)
        : ms(ms)
    {
    }

    double
    cyclesOf(const std::string &name) const
    {
        for (const KernelMeasurement &m : ms) {
            if (m.kernel == name)
                return m.cycles;
        }
        panic("characterize: no measurement named '", name, "'");
    }

    /** Cycles-per-instruction slope between the two lengths. */
    double
    slopeOf(const std::string &stem, std::size_t len_a,
            std::size_t len_b) const
    {
        return (cyclesOf(stem + "/b") - cyclesOf(stem + "/a")) /
               static_cast<double>(len_b - len_a);
    }

  private:
    const std::vector<KernelMeasurement> &ms;
};

/**
 * An occupancy read off an independent-stream slope: a one-cycle
 * stage pipelines at 1/width (slope <= 1), anything slower
 * serializes at its occupancy.
 */
Cycles
occupancyOf(double slope)
{
    if (slope < 1.5)
        return 1;
    return static_cast<Cycles>(std::lround(slope));
}

Cycles
latencyOf(double slope)
{
    return std::max<Cycles>(1,
                            static_cast<Cycles>(std::lround(slope)));
}

/**
 * Resolve the upper memory ladder shared by both pipelines: given
 * the L2-hit occupancy and the fresh-line / fresh-page slopes
 * (l2 + mem + tlb/64 and l2 + mem + tlb), separate the memory and
 * TLB penalties.
 */
void
solveMemoryLadder(MachineParams &m, double slope_mem,
                  double slope_page)
{
    const double tlb = (slope_page - slope_mem) * 64.0 / 63.0;
    m.tlbMissCycles =
        std::max<Cycles>(1, static_cast<Cycles>(std::lround(tlb)));
    const auto total =
        static_cast<Cycles>(std::lround(slope_page));
    m.memCycles = std::max<Cycles>(
        1, total - m.l2HitCycles - m.tlbMissCycles);
}

/**
 * Front-end depth from the single-instruction kernel: the lone
 * instruction retires at frontendDepth + 3, plus its unavoidable
 * cold I-side penalty — one L1I miss to memory and one ITLB miss,
 * exactly the ladder just inferred.  Runs after solveMemoryLadder.
 */
void
solveFrontEndDepth(MachineParams &m, double single_cycles)
{
    const double cold = static_cast<double>(
        m.l2HitCycles + m.memCycles + m.tlbMissCycles);
    m.frontendDepth = static_cast<std::uint32_t>(
        std::max<long>(2, std::lround(single_cycles - cold) - 3));
}

/** In-order inference: stream slopes carry the stage occupancies. */
MachineParams
inferInOrder(const Measurements &ms, const CharacterizeConfig &cfg)
{
    const auto slope = [&](const std::string &stem) {
        return ms.slopeOf(stem, cfg.lenA, cfg.lenB);
    };

    MachineParams m;
    const double ipc = 1.0 / slope("stream/IntAlu");
    m.width = static_cast<std::uint32_t>(
        std::clamp<long>(std::lround(ipc), 1, 16));
    m.latIntMult = latencyOf(slope("chain/IntMult"));
    m.latIntDiv = latencyOf(slope("chain/IntDiv"));
    m.latFpAlu = latencyOf(slope("chain/FpAlu"));
    m.latFpMult = latencyOf(slope("chain/FpMult"));
    m.latFpDiv = latencyOf(slope("chain/FpDiv"));
    m.dl1HitCycles = occupancyOf(slope("stream/Load"));
    m.l2HitCycles = occupancyOf(slope("loadstream/l2"));
    solveMemoryLadder(m, slope("loadstream/mem"),
                      slope("loadstream/page"));
    solveFrontEndDepth(m, ms.cyclesOf("single"));
    m.freqGHz = cfg.point.freqGHz;
    return m;
}

/** Out-of-order inference: chains carry latencies, mixes the width. */
MachineParams
inferOutOfOrder(const Measurements &ms, const CharacterizeConfig &cfg)
{
    const auto slope = [&](const std::string &stem) {
        return ms.slopeOf(stem, cfg.lenA, cfg.lenB);
    };

    MachineParams m;
    const double ipc = std::max(1.0 / slope("mix/albr"),
                                1.0 / slope("mix/amlb"));
    m.width = static_cast<std::uint32_t>(
        std::clamp<long>(std::lround(ipc), 1, 16));
    m.latIntMult = latencyOf(slope("chain/IntMult"));
    m.latIntDiv = latencyOf(slope("chain/IntDiv"));
    m.latFpAlu = latencyOf(slope("chain/FpAlu"));
    m.latFpMult = latencyOf(slope("chain/FpMult"));
    m.latFpDiv = latencyOf(slope("chain/FpDiv"));
    m.dl1HitCycles = latencyOf(slope("loadchain/l1"));
    m.l2HitCycles = latencyOf(slope("loadchain/l2"));
    solveMemoryLadder(m, slope("loadchain/mem"),
                      slope("loadchain/page"));
    solveFrontEndDepth(m, ms.cyclesOf("single"));
    m.freqGHz = cfg.point.freqGHz;
    return m;
}

} // namespace

CharacterizeResult
characterize(const CharacterizeConfig &cfg, ThreadPool &pool)
{
    const bool in_order = cfg.backend == kSimBackend;
    if (!in_order && cfg.backend != kOoOSimBackend) {
        fatal("characterize: backend must be '", kSimBackend, "' or '",
              kOoOSimBackend, "' (got '", cfg.backend, "')");
    }
    MECH_ASSERT(cfg.lenB > cfg.lenA && cfg.lenA >= 2048,
                "kernel lengths must satisfy 2048 <= lenA < lenB");
    const EvalBackend &backend =
        BackendRegistry::global().at(cfg.backend);

    const std::vector<NamedKernel> battery = buildBattery(cfg);

    CharacterizeResult result;
    result.measurements.resize(battery.size());

    // One kernel per parallelFor index: each measurement profiles its
    // trace against the point's hierarchy and replays it through the
    // backend, writing only its own preassigned slot.
    ProfilerConfig profiler_config;
    profiler_config.hierarchy = hierarchyFor(cfg.point);
    pool.parallelFor(
        battery.size(), 1, [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
                const NamedKernel &kernel = battery[i];
                WorkloadProfile profile =
                    profileTrace(kernel.trace, profiler_config);
                EvalRequest req;
                req.program = &profile.program;
                req.memory = &profile.memory;
                req.branch =
                    &profile.branchProfileFor(cfg.point.predictor);
                req.trace = &kernel.trace;
                req.point = cfg.point;
                const EvalResult res = backend.evaluate(req);
                result.measurements[i] = {kernel.name,
                                          kernel.trace.size(),
                                          res.cycles};
            }
        });

    const Measurements ms(result.measurements);
    MachineDescription &desc = result.description;
    desc.machine = in_order ? inferInOrder(ms, cfg)
                            : inferOutOfOrder(ms, cfg);
    desc.sourceBackend = cfg.backend;
    desc.sourcePoint = cfg.point.toKey();
    desc.hasThroughput = true;
    for (OpClass oc : kAllOpClasses) {
        const double s = ms.slopeOf(
            "stream/" + std::string(opClassName(oc)), cfg.lenA,
            cfg.lenB);
        desc.throughput[static_cast<std::size_t>(oc)] = 1.0 / s;
    }
    return result;
}

double
expectedOooStreamIpc(OpClass oc, const MachineParams &machine,
                     const OooParams &ooo)
{
    std::uint32_t fu = ooo.fuAlu;
    if (isMem(oc))
        fu = ooo.fuMem;
    else if (isBranch(oc))
        fu = ooo.fuBr;
    else if (isLongLatencyClass(oc))
        fu = ooo.fuMul;
    return static_cast<double>(
        std::min({machine.width, fu, ooo.resultBuses}));
}

} // namespace mech
