/**
 * @file
 * Machine characterization: infer a MachineDescription by measuring
 * microbenchmark kernels on a cycle-accurate backend.
 *
 * The inverse of the usual flow.  Normally a hand-written
 * MachineParams configures a simulator; here a battery of targeted
 * kernels (kernels.hh) runs through a chosen backend and the observed
 * cycle counts are solved back into the parameters — the PALMED /
 * OSACA approach applied to this repo's own reference pipelines.
 * Against the built-in backends the inferred description must land
 * exactly on the configured parameters (CI enforces it); pointed at a
 * different simulator the same battery would characterize *that*
 * machine, which is what turns machine_params.hh into data.
 *
 * Method: every kernel is measured at two lengths and the
 * cycles-per-instruction *slope* between them is used, so cold-cache,
 * cold-predictor and pipeline-fill constants cancel.  On an in-order
 * core, independent-stream slopes read issue width and memory-stage
 * occupancies; on an out-of-order core the same quantities come from
 * dependency-chained loads (occupancy = load-to-use latency) and
 * mixed-class streams (effective width with every FU class below its
 * cap).  Execution latencies come from dependency chains on both.
 * The memory ladder is resolved bottom-up: an L1-resident pattern
 * gives dl1, a 2x-L1D working set gives the L2 hit latency, a
 * fresh-line stride gives L2 + memory + 1/64 TLB, and a fresh-page
 * stride adds a TLB miss per access; slope differences separate the
 * three penalties.
 *
 * Measurement fans out over the shared ThreadPool; results land in
 * preassigned slots and inference is a pure function of them, so the
 * inferred description is bit-identical at any thread count.
 */

#ifndef MECH_CHARACTERIZE_CHARACTERIZE_HH
#define MECH_CHARACTERIZE_CHARACTERIZE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "characterize/mdesc.hh"
#include "common/thread_pool.hh"
#include "dse/design_space.hh"
#include "ooo/ooo_params.hh"

namespace mech {

/** Options for one characterization run. */
struct CharacterizeConfig
{
    /** Backend to measure: "sim" or "oosim". */
    std::string backend = "sim";

    /** Design point to configure the backend with. */
    DesignPoint point = defaultDesignPoint();

    /** Shorter kernel length (past every cold-start effect). */
    std::size_t lenA = 4096;

    /** Longer kernel length (the slope divides lenB - lenA). */
    std::size_t lenB = 8192;
};

/** One kernel's measured cycle count. */
struct KernelMeasurement
{
    /** Kernel name, e.g. "chain/IntMult/b". */
    std::string kernel;

    /** Kernel length in instructions. */
    InstCount instructions = 0;

    /** Cycles the backend reported. */
    double cycles = 0.0;
};

/** A characterization run's complete outcome. */
struct CharacterizeResult
{
    /** The inferred machine description (with throughputs). */
    MachineDescription description;

    /** Every kernel measurement, in kernel-battery order. */
    std::vector<KernelMeasurement> measurements;
};

/**
 * Run the kernel battery through @p cfg's backend and infer the
 * machine description.  The backend is configured exactly as every
 * other tool would configure it — through the design point and the
 * process-wide activeLatencySpec() — so `--check` compares the
 * inference against the parameters the backends actually expose.
 * Deterministic for a given config at any pool size.
 */
CharacterizeResult characterize(const CharacterizeConfig &cfg,
                                ThreadPool &pool);

/**
 * The issue throughput (IPC) an independent stream of class @p oc
 * can sustain on the out-of-order pipeline: the minimum of width,
 * the class's (fully pipelined) FU count, and the result buses.
 * The oosim CI leg checks inferred throughputs against this.
 */
double expectedOooStreamIpc(OpClass oc, const MachineParams &machine,
                            const OooParams &ooo);

} // namespace mech

#endif // MECH_CHARACTERIZE_CHARACTERIZE_HH
