#include "characterize/kernels.hh"

#include "common/logging.hh"

namespace mech {

namespace {

/** 4 KiB instruction window: 1024 4-byte slots, 64 lines. */
constexpr Addr kPcBase = 0x1000;
constexpr std::size_t kPcSlots = 1024;

/** Per-pattern data regions, spaced so strides never collide. */
constexpr Addr kL1Base = 0x10000000;
constexpr Addr kL2Base = 0x20000000;
constexpr Addr kMemBase = 0x30000000;
constexpr Addr kPageBase = 0x40000000;
constexpr Addr kStoreBase = 0x50000000;
constexpr Addr kMixBase = 0x60000000;

Addr
pcOf(std::size_t i)
{
    return kPcBase + static_cast<Addr>(i % kPcSlots) * 4;
}

Addr
loadAddr(LoadPattern pattern, std::size_t i)
{
    switch (pattern) {
      case LoadPattern::L1Hit:
        // One 64 B line, revisited forever.
        return kL1Base + static_cast<Addr>(i % 16) * 4;
      case LoadPattern::L2Hit:
        // Cycle a 64 KiB working set at line stride: twice the 32 KiB
        // 4-way L1D (every set sees 16 lines per pass -> always
        // misses after the cold pass), comfortably inside any Table 2
        // L2, and only 16 pages (resident in a 32-entry DTLB).
        return kL2Base + static_cast<Addr>(i % 1024) * 64;
      case LoadPattern::Memory:
        // A fresh line every access: misses L2 forever; a new page
        // only every 64th access.
        return kMemBase + static_cast<Addr>(i) * 64;
      case LoadPattern::FreshPage:
        // A fresh page every access: L2 miss plus TLB miss each time.
        return kPageBase + static_cast<Addr>(i) * 4096;
    }
    panic("unknown load pattern");
}

DynInstr
makeInstr(OpClass oc, std::size_t i, Addr data_base)
{
    DynInstr di;
    di.pc = pcOf(i);
    di.op = oc;
    switch (oc) {
      case OpClass::Store:
        di.effAddr = data_base + static_cast<Addr>(i % 16) * 4;
        break;
      case OpClass::Load:
        di.effAddr = data_base + static_cast<Addr>(i % 16) * 4;
        di.dst = static_cast<RegIndex>(i % 8);
        break;
      case OpClass::Branch:
        // Never taken: predicted correctly after warmup, no target.
        break;
      case OpClass::Nop:
        break;
      default:
        di.dst = static_cast<RegIndex>(i % 8);
        break;
    }
    return di;
}

} // namespace

Trace
streamKernel(OpClass oc, std::size_t n)
{
    if (oc == OpClass::Load)
        return loadStreamKernel(LoadPattern::L1Hit, n);
    Trace trace;
    trace.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        trace.push(makeInstr(oc, i, kStoreBase));
    return trace;
}

Trace
chainKernel(OpClass oc, std::size_t n)
{
    if (oc == OpClass::Load)
        return loadChainKernel(LoadPattern::L1Hit, n);
    MECH_ASSERT(isLongLatencyClass(oc) || oc == OpClass::IntAlu,
                "only value-producing classes chain (got ",
                opClassName(oc), ")");
    Trace trace;
    trace.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        DynInstr di;
        di.pc = pcOf(i);
        di.op = oc;
        di.dst = 0;
        di.src1 = 0; // reads the previous iteration's result
        trace.push(di);
    }
    return trace;
}

Trace
loadStreamKernel(LoadPattern pattern, std::size_t n)
{
    Trace trace;
    trace.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        DynInstr di;
        di.pc = pcOf(i);
        di.op = OpClass::Load;
        di.effAddr = loadAddr(pattern, i);
        di.dst = static_cast<RegIndex>(i % 8);
        trace.push(di);
    }
    return trace;
}

Trace
loadChainKernel(LoadPattern pattern, std::size_t n)
{
    Trace trace;
    trace.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        DynInstr di;
        di.pc = pcOf(i);
        di.op = OpClass::Load;
        di.effAddr = loadAddr(pattern, i);
        di.dst = 0;
        di.src1 = 0; // address depends on the previous load's value
        trace.push(di);
    }
    return trace;
}

Trace
mixKernel(const std::vector<OpClass> &pattern, std::size_t n)
{
    MECH_ASSERT(!pattern.empty(), "mix kernel needs a pattern");
    Trace trace;
    trace.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        trace.push(makeInstr(pattern[i % pattern.size()], i, kMixBase));
    return trace;
}

} // namespace mech
