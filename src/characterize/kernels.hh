/**
 * @file
 * Synthetic microbenchmark kernels for machine characterization.
 *
 * PALMED-style characterization infers a machine description from the
 * cycle counts of *targeted* instruction streams; these generators
 * emit those streams as ordinary Traces, so they run through any
 * registered backend unchanged.  Three shapes cover the parameter
 * space:
 *
 *  - streams: independent instructions of one class (round-robin
 *    destinations, no sources) measure sustained issue throughput —
 *    width on an in-order core, FU/port/bus pressure on an
 *    out-of-order one;
 *  - chains: each instruction consumes the previous one's result, so
 *    the cycles-per-instruction slope *is* the class's effective
 *    latency;
 *  - mixes: a repeating multi-class pattern whose per-class pressure
 *    stays below every FU cap, exposing the core's effective width
 *    even when no single class can sustain it.
 *
 * Load kernels additionally choose an address pattern that pins every
 * steady-state access to one hierarchy level (L1 hit, L2 hit, memory,
 * or memory plus a TLB miss per access), so the memory-latency ladder
 * can be read off slope differences.  Every kernel keeps its
 * instruction addresses inside one 4 KiB window (64 lines: L1I- and
 * ITLB-resident after warmup) and contains no taken branches, so the
 * front end never perturbs the quantity being measured; cold-cache
 * and pipeline-fill constants are cancelled by measuring each kernel
 * at two lengths and differencing.
 *
 * All kernels satisfy validateTrace() and are pure functions of their
 * arguments.
 */

#ifndef MECH_CHARACTERIZE_KERNELS_HH
#define MECH_CHARACTERIZE_KERNELS_HH

#include <cstddef>
#include <vector>

#include "isa/op_class.hh"
#include "trace/trace.hh"

namespace mech {

/** Steady-state hierarchy level a load kernel's accesses resolve at. */
enum class LoadPattern : std::uint8_t {
    L1Hit,    ///< one line, revisited: L1D hits
    L2Hit,    ///< cycle 2x the L1D capacity: L1 misses, L2 hits
    Memory,   ///< fresh line each access: L2 misses, 1/64 TLB misses
    FreshPage ///< fresh page each access: L2 miss + TLB miss every time
};

/**
 * @p n independent instructions of class @p oc.
 *
 * Destinations round-robin over r0..r7 (no WAW serialization), no
 * source registers.  Loads use the L1Hit pattern; stores write one
 * resident line.
 */
Trace streamKernel(OpClass oc, std::size_t n);

/**
 * A dependency chain of @p n instructions of class @p oc: every
 * instruction reads the register the previous one wrote.  Only
 * value-producing classes (the six execute classes and loads) chain.
 */
Trace chainKernel(OpClass oc, std::size_t n);

/** @p n independent loads with the given address pattern. */
Trace loadStreamKernel(LoadPattern pattern, std::size_t n);

/** @p n address-pattern loads chained through a register. */
Trace loadChainKernel(LoadPattern pattern, std::size_t n);

/**
 * @p n instructions cycling the class pattern @p pattern.  All
 * independent; loads hit L1, branches are never taken.
 */
Trace mixKernel(const std::vector<OpClass> &pattern, std::size_t n);

} // namespace mech

#endif // MECH_CHARACTERIZE_KERNELS_HH
