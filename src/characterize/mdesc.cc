#include "characterize/mdesc.hh"

#include <cmath>
#include <sstream>

#include "common/file_util.hh"
#include "common/json.hh"
#include "common/logging.hh"

namespace mech {

namespace {

/** Schema order of the machine-parameter fields (writer and reader
 *  both walk this table, so they can never disagree). */
struct MachineField
{
    const char *name;
    double (*get)(const MachineParams &);
    void (*set)(MachineParams &, double);
    bool isInteger; ///< cycle counts and widths, vs. freq_ghz
};

constexpr MachineField kMachineFields[] = {
    {"width", [](const MachineParams &m) { return double(m.width); },
     [](MachineParams &m, double v) { m.width = std::uint32_t(v); },
     true},
    {"frontend_depth",
     [](const MachineParams &m) { return double(m.frontendDepth); },
     [](MachineParams &m, double v) {
         m.frontendDepth = std::uint32_t(v);
     },
     true},
    {"lat_int_mult",
     [](const MachineParams &m) { return double(m.latIntMult); },
     [](MachineParams &m, double v) { m.latIntMult = Cycles(v); },
     true},
    {"lat_int_div",
     [](const MachineParams &m) { return double(m.latIntDiv); },
     [](MachineParams &m, double v) { m.latIntDiv = Cycles(v); }, true},
    {"lat_fp_alu",
     [](const MachineParams &m) { return double(m.latFpAlu); },
     [](MachineParams &m, double v) { m.latFpAlu = Cycles(v); }, true},
    {"lat_fp_mult",
     [](const MachineParams &m) { return double(m.latFpMult); },
     [](MachineParams &m, double v) { m.latFpMult = Cycles(v); }, true},
    {"lat_fp_div",
     [](const MachineParams &m) { return double(m.latFpDiv); },
     [](MachineParams &m, double v) { m.latFpDiv = Cycles(v); }, true},
    {"dl1_hit_cycles",
     [](const MachineParams &m) { return double(m.dl1HitCycles); },
     [](MachineParams &m, double v) { m.dl1HitCycles = Cycles(v); },
     true},
    {"l2_hit_cycles",
     [](const MachineParams &m) { return double(m.l2HitCycles); },
     [](MachineParams &m, double v) { m.l2HitCycles = Cycles(v); },
     true},
    {"mem_cycles",
     [](const MachineParams &m) { return double(m.memCycles); },
     [](MachineParams &m, double v) { m.memCycles = Cycles(v); }, true},
    {"tlb_miss_cycles",
     [](const MachineParams &m) { return double(m.tlbMissCycles); },
     [](MachineParams &m, double v) { m.tlbMissCycles = Cycles(v); },
     true},
    {"freq_ghz", [](const MachineParams &m) { return m.freqGHz; },
     [](MachineParams &m, double v) { m.freqGHz = v; }, false},
};

[[noreturn]] void
reject(const std::string &what)
{
    throw MdescError("mdesc: " + what);
}

/** The object member @p key of @p obj, or a rejection. */
const json::Value &
member(const json::Value &obj, const char *context, const char *key)
{
    const json::Value *v = obj.get(key);
    if (!v)
        reject(std::string(context) + ": missing key '" + key + "'");
    return *v;
}

/** Reject any key of @p obj outside @p allowed. */
void
rejectUnknownKeys(const json::Value &obj, const char *context,
                  const std::vector<std::string_view> &allowed)
{
    for (const auto &[key, value] : obj.object) {
        bool known = false;
        for (std::string_view a : allowed)
            known = known || key == a;
        if (!known)
            reject(std::string(context) + ": unknown key '" + key + "'");
    }
}

/** A member that must be a string. */
const std::string &
stringMember(const json::Value &obj, const char *context,
             const char *key)
{
    const json::Value &v = member(obj, context, key);
    if (!v.isString())
        reject(std::string(context) + ": '" + key +
               "' must be a string");
    return v.string;
}

/** A member that must be a non-negative whole number. */
std::uint64_t
u64Member(const json::Value &obj, const char *context, const char *key)
{
    const json::Value &v = member(obj, context, key);
    auto u = v.asU64();
    if (!u)
        reject(std::string(context) + ": '" + key +
               "' must be a non-negative integer");
    return *u;
}

} // namespace

std::string
writeMdesc(const MachineDescription &desc)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"format\": \"mdesc\",\n";
    os << "  \"version\": " << kMdescFormatVersion << ",\n";
    os << "  \"source\": {\n";
    os << "    \"backend\": ";
    json::writeString(os, desc.sourceBackend);
    os << ",\n    \"point\": ";
    json::writeString(os, desc.sourcePoint);
    os << "\n  },\n";
    os << "  \"machine\": {\n";
    bool first = true;
    for (const MachineField &f : kMachineFields) {
        os << (first ? "" : ",\n") << "    \"" << f.name << "\": ";
        if (f.isInteger)
            os << static_cast<std::uint64_t>(f.get(desc.machine));
        else
            json::writeNumber(os, f.get(desc.machine));
        first = false;
    }
    os << "\n  }";
    if (desc.hasThroughput) {
        os << ",\n  \"throughput\": {\n";
        first = true;
        for (OpClass oc : kAllOpClasses) {
            os << (first ? "" : ",\n") << "    \"" << opClassName(oc)
               << "\": ";
            json::writeNumber(
                os, desc.throughput[static_cast<std::size_t>(oc)]);
            first = false;
        }
        os << "\n  }";
    }
    os << "\n}\n";
    return os.str();
}

MachineDescription
parseMdesc(std::string_view text)
{
    std::string error;
    auto root = json::parse(text, &error);
    if (!root)
        reject("not valid JSON: " + error);
    if (!root->isObject())
        reject("top level must be an object");
    rejectUnknownKeys(*root, "top level",
                      {"format", "version", "source", "machine",
                       "throughput"});

    if (stringMember(*root, "top level", "format") != "mdesc")
        reject("'format' must be \"mdesc\"");
    const std::uint64_t version =
        u64Member(*root, "top level", "version");
    if (version == 0)
        reject("'version' must be >= 1");
    if (version > kMdescFormatVersion)
        reject("written by future format version " +
               std::to_string(version) + " (supported: " +
               std::to_string(kMdescFormatVersion) + ")");

    MachineDescription desc;

    const json::Value &source = member(*root, "top level", "source");
    if (!source.isObject())
        reject("'source' must be an object");
    rejectUnknownKeys(source, "source", {"backend", "point"});
    desc.sourceBackend = stringMember(source, "source", "backend");
    desc.sourcePoint = stringMember(source, "source", "point");

    const json::Value &machine = member(*root, "top level", "machine");
    if (!machine.isObject())
        reject("'machine' must be an object");
    {
        std::vector<std::string_view> allowed;
        for (const MachineField &f : kMachineFields)
            allowed.push_back(f.name);
        rejectUnknownKeys(machine, "machine", allowed);
    }
    for (const MachineField &f : kMachineFields) {
        if (f.isInteger) {
            const std::uint64_t v = u64Member(machine, "machine",
                                              f.name);
            // Every integer field is a u32 width/depth or a cycle
            // count that later arithmetic treats as a small number;
            // 2^32 comfortably bounds both.
            if (v > UINT32_MAX)
                reject(std::string("machine: '") + f.name +
                       "' out of range");
            f.set(desc.machine, static_cast<double>(v));
        } else {
            const json::Value &v = member(machine, "machine", f.name);
            if (!v.isNumber())
                reject(std::string("machine: '") + f.name +
                       "' must be a number");
            f.set(desc.machine, v.number);
        }
    }

    // Range checks mirroring MachineParams::validate(), but reported
    // through MdescError: a bad file is user input, not a config bug.
    const MachineParams &m = desc.machine;
    if (m.width < 1 || m.width > 16)
        reject("machine: 'width' out of supported range [1,16]");
    if (m.frontendDepth < 2)
        reject("machine: 'frontend_depth' must be >= 2");
    if (m.latIntMult < 1 || m.latIntDiv < 1 || m.latFpAlu < 1 ||
        m.latFpMult < 1 || m.latFpDiv < 1) {
        reject("machine: execution latencies must be >= 1 cycle");
    }
    if (m.dl1HitCycles < 1 || m.l2HitCycles < 1)
        reject("machine: cache latencies must be >= 1 cycle");
    if (!std::isfinite(m.freqGHz) || m.freqGHz <= 0.0)
        reject("machine: 'freq_ghz' must be finite and positive");

    if (const json::Value *tp = root->get("throughput")) {
        if (!tp->isObject())
            reject("'throughput' must be an object");
        std::vector<std::string_view> allowed;
        for (OpClass oc : kAllOpClasses)
            allowed.push_back(opClassName(oc));
        rejectUnknownKeys(*tp, "throughput", allowed);
        for (OpClass oc : kAllOpClasses) {
            const char *name = opClassName(oc).data();
            const json::Value &v = member(*tp, "throughput", name);
            if (!v.isNumber() || !std::isfinite(v.number) ||
                v.number < 0.0) {
                reject(std::string("throughput: '") + name +
                       "' must be a finite non-negative number");
            }
            desc.throughput[static_cast<std::size_t>(oc)] = v.number;
        }
        desc.hasThroughput = true;
    }

    if (!desc.sourceBackend.empty() &&
        desc.sourceBackend != "sim" && desc.sourceBackend != "oosim") {
        reject("source: unknown backend '" + desc.sourceBackend + "'");
    }
    if (!desc.sourcePoint.empty() &&
        !DesignPoint::fromKey(desc.sourcePoint)) {
        reject("source: unparseable point key '" + desc.sourcePoint +
               "'");
    }

    return desc;
}

void
saveMdesc(const MachineDescription &desc, const std::string &path)
{
    std::string error;
    if (!atomicWriteFile(path, writeMdesc(desc), &error))
        throw MdescError("cannot write '" + path + "': " + error);
}

MachineDescription
loadMdesc(const std::string &path)
{
    MappedFile file;
    std::string error;
    if (!file.open(path, &error))
        throw MdescError("cannot read '" + path + "': " + error);
    return parseMdesc(file.view());
}

MachineDescription
applyMachineDescription(const std::string &path)
{
    try {
        MachineDescription desc = loadMdesc(path);
        setActiveLatencySpec(latencySpecFor(desc));
        return desc;
    } catch (const MdescError &e) {
        fatal("--mdesc ", path, ": ", e.what());
    }
}

LatencySpec
latencySpecFor(const MachineDescription &desc)
{
    const MachineParams &m = desc.machine;
    const double f = m.freqGHz;
    // cycles / freq converts back through nsToCycles() exactly: the
    // product (c/f)*f lands within one ulp of c, well inside the
    // converter's 1e-9 guard band.
    LatencySpec spec;
    spec.l2Ns = static_cast<double>(m.l2HitCycles) / f;
    spec.memNs = static_cast<double>(m.memCycles) / f;
    spec.tlbNs = static_cast<double>(m.tlbMissCycles) / f;
    spec.intMultNs = static_cast<double>(m.latIntMult) / f;
    spec.intDivNs = static_cast<double>(m.latIntDiv) / f;
    spec.fpAluNs = static_cast<double>(m.latFpAlu) / f;
    spec.fpMultNs = static_cast<double>(m.latFpMult) / f;
    spec.fpDivNs = static_cast<double>(m.latFpDiv) / f;
    spec.dl1Cycles = m.dl1HitCycles;
    return spec;
}

DesignPoint
designPointFor(const MachineDescription &desc)
{
    DesignPoint point = defaultDesignPoint();
    if (!desc.sourcePoint.empty()) {
        auto parsed = DesignPoint::fromKey(desc.sourcePoint);
        if (parsed)
            point = *parsed;
    }
    point.width = desc.machine.width;
    point.depth = desc.machine.frontendDepth + 3;
    point.freqGHz = desc.machine.freqGHz;
    return point;
}

std::vector<FieldDivergence>
compareMachineParams(const MachineParams &configured,
                     const MachineParams &inferred, double tolerance)
{
    std::vector<FieldDivergence> out;
    for (const MachineField &f : kMachineFields) {
        const double c = f.get(configured);
        const double i = f.get(inferred);
        if (std::abs(i - c) > tolerance)
            out.push_back({f.name, c, i});
    }
    return out;
}

} // namespace mech
