/**
 * @file
 * Serializable machine descriptions: the `.mdesc` format.
 *
 * The paper consumes a hand-written machine description (Table 1 ->
 * machine_params.hh).  The characterization subsystem *infers* that
 * description from microbenchmarks (characterize.hh) and needs to hand
 * it to every other tool; `.mdesc` is the exchange format.  Unlike the
 * binary `.mprof`/`.mcache` artifacts, a machine description is tiny
 * and meant for humans to read and diff (and check into a repo as the
 * definition of a core), so the format is JSON text on the shared
 * src/common/json parser — endian concerns never arise and `git diff`
 * shows exactly which latency changed.
 *
 * The writer is canonical: fixed key order, fixed indentation, exact
 * shortest-form numbers.  load -> save therefore reproduces the input
 * byte for byte, which the round-trip tests and the CI gate rely on.
 *
 * The reader is strict where the serve-layer JSON is tolerant: a
 * machine description feeds fatal-free config into every backend, so
 * unknown keys, missing fields, wrong types, out-of-range values,
 * future format versions, truncation and trailing bytes are all
 * rejected with MdescError rather than guessed around.
 */

#ifndef MECH_CHARACTERIZE_MDESC_HH
#define MECH_CHARACTERIZE_MDESC_HH

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "dse/design_space.hh"
#include "isa/machine_params.hh"
#include "isa/op_class.hh"

namespace mech {

/** Error raised for any malformed or unreadable description. */
class MdescError : public std::runtime_error
{
  public:
    explicit MdescError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** Current `.mdesc` format version. */
inline constexpr std::uint32_t kMdescFormatVersion = 1;

/** File extension of machine-description artifacts. */
inline constexpr const char *kMdescExtension = ".mdesc";

/** A complete serializable machine description. */
struct MachineDescription
{
    /** The machine parameters (inferred or hand-written). */
    MachineParams machine;

    /**
     * Backend the description was inferred on ("sim", "oosim"), or
     * empty for a hand-written description.
     */
    std::string sourceBackend;

    /**
     * DesignPoint::toKey() of the measurement point, or empty.  Kept
     * so designPointFor() can reconstruct the non-core axes (L2
     * geometry, predictor) the machine parameters do not carry.
     */
    std::string sourcePoint;

    /** True when @c throughput carries measured values. */
    bool hasThroughput = false;

    /**
     * Sustained issue throughput (IPC) of an independent stream of
     * each op class, indexed by static_cast<size_t>(OpClass).  On an
     * in-order core this reflects width and execute/memory-stage
     * serialization; on an out-of-order core it exposes the FU/port
     * pressure axes (min of width, FU count, result buses).
     */
    std::array<double, kNumOpClasses> throughput{};

    bool operator==(const MachineDescription &other) const = default;
};

/** Serialize @p desc to canonical `.mdesc` text. */
std::string writeMdesc(const MachineDescription &desc);

/**
 * Parse `.mdesc` text.
 *
 * Throws MdescError on anything other than a complete, well-typed,
 * in-range, current-version document: unknown or missing keys at any
 * level, wrong value types, non-integer cycle counts, out-of-range
 * parameters, future versions, truncated input, trailing bytes.
 */
MachineDescription parseMdesc(std::string_view text);

/** Write @p desc to @p path atomically.  Throws MdescError on I/O. */
void saveMdesc(const MachineDescription &desc, const std::string &path);

/** Load a description from @p path.  Throws MdescError. */
MachineDescription loadMdesc(const std::string &path);

/**
 * The `--mdesc` load path every tool shares: load @p path and install
 * its latency table as the process-wide activeLatencySpec(), so all
 * subsequent machineFor()/simConfigFor()/oooSimConfigFor() calls —
 * and therefore every backend, study, bench and serve request —
 * evaluate the loaded description.  Returns the description so
 * callers can also adopt designPointFor() as their default point.
 * Calls fatal() on an unreadable or malformed file (user input);
 * call during single-threaded startup.
 */
MachineDescription applyMachineDescription(const std::string &path);

/**
 * The latency spec that reproduces @p desc's cycle counts through
 * machineFor(): nanosecond values chosen so the ns -> cycles
 * conversion at desc.machine.freqGHz recovers every cycle count
 * exactly (cycles / freq is within the converter's guard band).
 */
LatencySpec latencySpecFor(const MachineDescription &desc);

/**
 * A design point matching @p desc: core axes (width, depth, freq)
 * from the machine parameters, non-core axes (L2 geometry, predictor,
 * OoO structures) from sourcePoint when present, defaults otherwise.
 * machineFor(designPointFor(d), latencySpecFor(d)) == d.machine.
 */
DesignPoint designPointFor(const MachineDescription &desc);

/** One diverging field of a parameter comparison. */
struct FieldDivergence
{
    /** Field name as spelled in the `.mdesc` schema. */
    std::string field;

    /** The configured (reference) value. */
    double configured = 0.0;

    /** The inferred (measured) value. */
    double inferred = 0.0;
};

/**
 * Compare two parameter sets field by field; returns the fields where
 * |inferred - configured| exceeds @p tolerance, in schema order.
 */
std::vector<FieldDivergence>
compareMachineParams(const MachineParams &configured,
                     const MachineParams &inferred,
                     double tolerance = 0.0);

} // namespace mech

#endif // MECH_CHARACTERIZE_MDESC_HH
