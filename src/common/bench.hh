/**
 * @file
 * Micro-benchmark measurement primitives.
 *
 * The paper's selling point is throughput — the model evaluates a
 * design point orders of magnitude faster than detailed simulation —
 * so the repo measures it like any other invariant.  This header
 * holds the timing core every benchmark driver shares: a monotonic
 * timer, optimizer barriers, and measure(), which runs a callable
 * with warmup, adaptive iteration-count calibration and min-of-N
 * repetition selection.
 *
 * Minimum-of-N is the standard noise model for micro-benchmarks:
 * timing noise on a quiet machine is strictly additive (preemption,
 * cache pollution, frequency ramps), so the minimum over repetitions
 * is the best estimator of the true cost.  The higher layers
 * (bench/harness.hh) turn Measurements into schema-versioned JSON
 * artifacts; this header stays dependency-free so the library, tests
 * and every driver can use it.
 */

#ifndef MECH_COMMON_BENCH_HH
#define MECH_COMMON_BENCH_HH

#include <chrono>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace mech::bench {

/** Seconds on a monotonic clock (for intervals, not wall time). */
inline double
monotonicSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

/**
 * Optimizer barrier: force @p value to be materialized.
 *
 * Mirrors the classic DoNotOptimize idiom so a benchmark body whose
 * result is otherwise dead cannot be deleted by the compiler.
 */
template <typename T>
inline void
doNotOptimize(const T &value)
{
#if defined(__GNUC__) || defined(__clang__)
    asm volatile("" : : "r,m"(value) : "memory");
#else
    static volatile const T *sink;
    sink = &value;
#endif
}

/** Controls for one measure() call. */
struct MeasureOptions
{
    /** Timed repetitions; the minimum is reported. */
    unsigned repetitions = 5;

    /** Untimed warmup invocations before calibration. */
    unsigned warmupIters = 1;

    /**
     * Target duration of one repetition.  The iteration count per
     * repetition is scaled up until a repetition takes at least this
     * long, so short-running bodies still get a quantization-free
     * timing base.
     */
    double minSeconds = 0.05;

    /** Iteration-count bounds for the calibration loop. */
    std::uint64_t minIters = 1;
    std::uint64_t maxIters = std::uint64_t(1) << 30;
};

/** Result of one measure() call. */
struct Measurement
{
    /** Seconds per iteration of the best (minimum) repetition. */
    double secondsPerIter = 0.0;

    /** Iterations timed per repetition. */
    std::uint64_t itersPerRep = 0;

    /** Seconds per iteration of every repetition, in run order. */
    std::vector<double> repSecondsPerIter;

    /**
     * Throughput in items/second given @p items_per_iter work items
     * per iteration (instructions, accesses, evaluations, ...).
     */
    double
    rate(double items_per_iter) const
    {
        return secondsPerIter > 0.0 ? items_per_iter / secondsPerIter
                                    : 0.0;
    }
};

/**
 * Measure @p fn: warmup, calibrate an iteration count so one
 * repetition lasts at least opts.minSeconds, then time
 * opts.repetitions repetitions and report the minimum.
 *
 * @p fn is a nullary callable; it must keep its own results alive
 * through doNotOptimize() if they would otherwise be dead.
 */
template <typename F>
Measurement
measure(F &&fn, const MeasureOptions &opts = {})
{
    MECH_ASSERT(opts.repetitions >= 1, "need at least one repetition");
    MECH_ASSERT(opts.minIters >= 1 && opts.minIters <= opts.maxIters,
                "bad iteration bounds");

    for (unsigned i = 0; i < opts.warmupIters; ++i)
        fn();

    auto timeIters = [&](std::uint64_t iters) {
        double t0 = monotonicSeconds();
        for (std::uint64_t i = 0; i < iters; ++i)
            fn();
        return monotonicSeconds() - t0;
    };

    // Calibrate: grow the per-repetition iteration count until one
    // repetition meets the time floor.  Growth is geometric but
    // informed by the observed rate, so calibration converges in a
    // few probes even for nanosecond-scale bodies.
    std::uint64_t iters = opts.minIters;
    double elapsed = timeIters(iters);
    while (elapsed < opts.minSeconds && iters < opts.maxIters) {
        std::uint64_t next;
        if (elapsed <= 0.0) {
            next = iters * 16;
        } else {
            double scale = 1.2 * opts.minSeconds / elapsed;
            next = static_cast<std::uint64_t>(
                static_cast<double>(iters) * scale) + 1;
            if (next < iters * 2)
                next = iters * 2;
        }
        iters = next < opts.maxIters ? next : opts.maxIters;
        elapsed = timeIters(iters);
    }

    Measurement m;
    m.itersPerRep = iters;
    m.repSecondsPerIter.reserve(opts.repetitions);
    // The calibration run already timed `iters` iterations; count it
    // as the first repetition instead of discarding the work.
    m.repSecondsPerIter.push_back(elapsed /
                                  static_cast<double>(iters));
    for (unsigned r = 1; r < opts.repetitions; ++r) {
        m.repSecondsPerIter.push_back(timeIters(iters) /
                                      static_cast<double>(iters));
    }
    m.secondsPerIter = m.repSecondsPerIter.front();
    for (double s : m.repSecondsPerIter) {
        if (s < m.secondsPerIter)
            m.secondsPerIter = s;
    }
    return m;
}

/** measure() with the work declared: returns items/second directly. */
template <typename F>
double
measureRate(F &&fn, double items_per_iter,
            const MeasureOptions &opts = {})
{
    return measure(std::forward<F>(fn), opts).rate(items_per_iter);
}

} // namespace mech::bench

#endif // MECH_COMMON_BENCH_HH
