/**
 * @file
 * Minimal shared command-line parser for the tools, benches and
 * examples.
 *
 * Every executable in the repo takes a handful of `--name value`
 * options and an optional positional or two; before this header each
 * re-implemented its own argv loop.  ArgParser centralizes that:
 * declare options bound to variables, call parse(), and `--help`
 * prints a generated usage string.
 *
 * Behaviour:
 *  - options accept `--name value` and `--name=value`;
 *  - `--help` / `-h` prints usage to stdout and exits 0;
 *  - unknown options or malformed values print the error and the
 *    usage string to stderr and exit 2 (a user error, in the spirit
 *    of fatal());
 *  - any other argument starting with '-' (a single-dash token like
 *    `-threads`, or a lone `-`) is rejected as an unknown option
 *    rather than silently binding to a positional — a mistyped flag
 *    must fail loudly, never be ignored;
 *  - remaining non-option arguments bind to declared positionals in
 *    order; excess positionals are an error.
 *
 * tryParse() is the same parser without the exit(2): it returns the
 * error message instead, so tests can assert on rejection behaviour.
 */

#ifndef MECH_COMMON_CLI_HH
#define MECH_COMMON_CLI_HH

#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

namespace mech::cli {

/**
 * Split a comma-separated list into space-trimmed tokens.
 *
 * Empty tokens (",," or a trailing comma, or an empty input) are
 * kept as empty strings so callers can reject them with their own
 * diagnostics.  Shared by every CSV-valued option in the repo
 * (backend sets, benchmark lists) so their tolerance stays identical.
 */
inline std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> tokens;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        std::size_t comma = csv.find(',', pos);
        if (comma == std::string::npos)
            comma = csv.size();
        std::string token = csv.substr(pos, comma - pos);
        while (!token.empty() && token.front() == ' ')
            token.erase(token.begin());
        while (!token.empty() && token.back() == ' ')
            token.pop_back();
        tokens.push_back(std::move(token));
        pos = comma + 1;
    }
    return tokens;
}

/** Declarative argv parser with generated --help. */
class ArgParser
{
  public:
    /**
     * @param prog Program name shown in the usage line.
     * @param description One-line description shown under it.
     */
    ArgParser(std::string prog, std::string description)
        : progName(std::move(prog)), progDesc(std::move(description))
    {
    }

    /** Declare a boolean flag (present = true). */
    void
    addFlag(const std::string &name, const std::string &help, bool *out)
    {
        options.push_back({name, "", help, true,
                           [out](const std::string &) {
                               *out = true;
                               return true;
                           }});
    }

    /** Declare a string option. */
    void
    add(const std::string &name, const std::string &value_name,
        const std::string &help, std::string *out)
    {
        options.push_back({name, value_name, help, false,
                           [out](const std::string &v) {
                               *out = v;
                               return true;
                           }});
    }

    /** Declare an unsigned 64-bit option. */
    void
    add(const std::string &name, const std::string &value_name,
        const std::string &help, std::uint64_t *out)
    {
        addParsed<std::uint64_t>(name, value_name, help, out);
    }

    /** Declare an unsigned option. */
    void
    add(const std::string &name, const std::string &value_name,
        const std::string &help, unsigned *out)
    {
        addParsed<unsigned>(name, value_name, help, out);
    }

    /** Declare an int option. */
    void
    add(const std::string &name, const std::string &value_name,
        const std::string &help, int *out)
    {
        addParsed<int>(name, value_name, help, out);
    }

    /** Declare a double option. */
    void
    add(const std::string &name, const std::string &value_name,
        const std::string &help, double *out)
    {
        addParsed<double>(name, value_name, help, out);
    }

    /** Declare an optional positional argument (bound in order). */
    void
    addPositional(const std::string &name, const std::string &help,
                  std::string *out)
    {
        positionals.push_back({name, help,
                               [out](const std::string &v) {
                                   *out = v;
                                   return true;
                               }});
    }

    /** Typed positionals: parsed and range-checked like options. */
    void
    addPositional(const std::string &name, const std::string &help,
                  std::uint64_t *out)
    {
        addPositionalParsed<std::uint64_t>(name, help, out);
    }

    void
    addPositional(const std::string &name, const std::string &help,
                  unsigned *out)
    {
        addPositionalParsed<unsigned>(name, help, out);
    }

    void
    addPositional(const std::string &name, const std::string &help,
                  int *out)
    {
        addPositionalParsed<int>(name, help, out);
    }

    /** Generated usage text. */
    std::string
    usage() const
    {
        std::ostringstream os;
        os << "usage: " << progName << " [options]";
        for (const auto &p : positionals)
            os << " [" << p.name << "]";
        os << "\n  " << progDesc << "\n";
        if (!positionals.empty()) {
            os << "\npositional arguments:\n";
            for (const auto &p : positionals)
                os << "  " << pad(p.name) << p.help << "\n";
        }
        os << "\noptions:\n";
        for (const auto &o : options) {
            std::string left = "--" + o.name;
            if (!o.valueName.empty())
                left += " <" + o.valueName + ">";
            os << "  " << pad(left) << o.help << "\n";
        }
        os << "  " << pad("--help") << "print this message and exit\n";
        return os.str();
    }

    /**
     * Parse @p argv.  Exits 0 after printing usage on --help; exits 2
     * on any parse error.  On success every bound variable is set.
     */
    void
    parse(int argc, char **argv)
    {
        if (auto error = tryParse(argc, argv))
            fail(*error);
    }

    /**
     * parse() without the exit(2): returns nullopt on success, the
     * error message on rejection (bound variables may be partially
     * set).  --help still prints usage and exits 0.  Exists so the
     * rejection behaviour — unknown flags in particular — stays
     * regression-testable.
     */
    std::optional<std::string>
    tryParse(int argc, char **argv)
    {
        std::size_t next_pos = 0;
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg == "--help" || arg == "-h") {
                std::cout << usage();
                std::exit(0);
            }
            if (arg.rfind("--", 0) == 0) {
                std::string name = arg.substr(2);
                std::string value;
                bool has_value = false;
                std::size_t eq = name.find('=');
                if (eq != std::string::npos) {
                    value = name.substr(eq + 1);
                    name = name.substr(0, eq);
                    has_value = true;
                }
                Option *opt = findOption(name);
                if (!opt)
                    return "unknown option '--" + name + "'";
                if (!opt->isFlag && !has_value) {
                    if (i + 1 >= argc) {
                        return "option '--" + name +
                               "' needs a value";
                    }
                    value = argv[++i];
                }
                if (opt->isFlag && has_value)
                    return "flag '--" + name + "' takes no value";
                if (!opt->set(value)) {
                    return "invalid value '" + value + "' for '--" +
                           name + "'";
                }
            } else if (looksLikeOption(arg)) {
                // `-threads`, `-x`, a bare `-`: a mistyped flag, not
                // a positional.  Binding it silently would make the
                // typo vanish; reject it loudly instead.  Negative
                // numbers ("-3", "-0.5") stay valid positionals.
                return "unknown option '" + arg + "'";
            } else {
                if (next_pos >= positionals.size())
                    return "unexpected argument '" + arg + "'";
                const Positional &pos = positionals[next_pos++];
                if (!pos.set(arg)) {
                    return "invalid value '" + arg + "' for '" +
                           pos.name + "'";
                }
            }
        }
        return std::nullopt;
    }

  private:
    struct Option
    {
        std::string name;
        std::string valueName;
        std::string help;
        bool isFlag;
        std::function<bool(const std::string &)> set;
    };

    struct Positional
    {
        std::string name;
        std::string help;
        std::function<bool(const std::string &)> set;
    };

    template <typename T>
    void
    addParsed(const std::string &name, const std::string &value_name,
              const std::string &help, T *out)
    {
        options.push_back({name, value_name, help, false,
                           [out](const std::string &v) {
                               return parseNumber(v, out);
                           }});
    }

    template <typename T>
    void
    addPositionalParsed(const std::string &name,
                        const std::string &help, T *out)
    {
        positionals.push_back({name, help,
                               [out](const std::string &v) {
                                   return parseNumber(v, out);
                               }});
    }

    template <typename T>
    static bool
    parseNumber(const std::string &v, T *out)
    {
        if (v.empty())
            return false;
        errno = 0;
        char *end = nullptr;
        if constexpr (std::is_floating_point_v<T>) {
            double parsed = std::strtod(v.c_str(), &end);
            if (errno || *end)
                return false;
            *out = static_cast<T>(parsed);
        } else if constexpr (std::is_signed_v<T>) {
            long long parsed = std::strtoll(v.c_str(), &end, 10);
            if (errno || *end)
                return false;
            if (parsed < std::numeric_limits<T>::min() ||
                parsed > std::numeric_limits<T>::max()) {
                return false;
            }
            *out = static_cast<T>(parsed);
        } else {
            if (v.front() == '-')
                return false;
            unsigned long long parsed =
                std::strtoull(v.c_str(), &end, 10);
            if (errno || *end)
                return false;
            if (parsed > std::numeric_limits<T>::max())
                return false;
            *out = static_cast<T>(parsed);
        }
        return true;
    }

    /** True when @p arg is dash-led but not a negative number. */
    static bool
    looksLikeOption(const std::string &arg)
    {
        if (arg.empty() || arg[0] != '-')
            return false;
        if (arg.size() == 1)
            return true; // a bare "-"
        return !(std::isdigit(static_cast<unsigned char>(arg[1])) ||
                 arg[1] == '.');
    }

    Option *
    findOption(const std::string &name)
    {
        for (auto &o : options) {
            if (o.name == name)
                return &o;
        }
        return nullptr;
    }

    [[noreturn]] void
    fail(const std::string &message) const
    {
        std::cerr << progName << ": " << message << "\n\n" << usage();
        std::exit(2);
    }

    static std::string
    pad(std::string s)
    {
        constexpr std::size_t kCol = 26;
        if (s.size() + 2 < kCol)
            s.append(kCol - s.size(), ' ');
        else
            s += "  ";
        return s;
    }

    std::string progName;
    std::string progDesc;
    std::vector<Option> options;
    std::vector<Positional> positionals;
};

} // namespace mech::cli

#endif // MECH_COMMON_CLI_HH
