#include "common/file_util.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace mech {

namespace {

void
setError(std::string *error, const std::string &what)
{
    if (error)
        *error = what + ": " + std::strerror(errno);
}

} // namespace

MappedFile::~MappedFile()
{
    close();
}

MappedFile::MappedFile(MappedFile &&other) noexcept
    : base(std::exchange(other.base, nullptr)),
      length(std::exchange(other.length, 0)),
      opened(std::exchange(other.opened, false))
{
}

MappedFile &
MappedFile::operator=(MappedFile &&other) noexcept
{
    if (this != &other) {
        close();
        base = std::exchange(other.base, nullptr);
        length = std::exchange(other.length, 0);
        opened = std::exchange(other.opened, false);
    }
    return *this;
}

bool
MappedFile::open(const std::string &path, std::string *error)
{
    close();
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
        setError(error, "open '" + path + "'");
        return false;
    }
    struct stat st;
    if (::fstat(fd, &st) < 0 || !S_ISREG(st.st_mode)) {
        setError(error, "stat '" + path + "'");
        ::close(fd);
        return false;
    }
    length = static_cast<std::size_t>(st.st_size);
    if (length > 0) {
        void *p = ::mmap(nullptr, length, PROT_READ, MAP_PRIVATE, fd, 0);
        if (p == MAP_FAILED) {
            setError(error, "mmap '" + path + "'");
            length = 0;
            ::close(fd);
            return false;
        }
        base = p;
    }
    ::close(fd); // the mapping outlives the descriptor
    opened = true;
    return true;
}

void
MappedFile::close()
{
    if (base)
        ::munmap(base, length);
    base = nullptr;
    length = 0;
    opened = false;
}

bool
atomicWriteFile(const std::string &path, std::string_view bytes,
                std::string *error)
{
    // Stage in the target's directory so the final rename(2) cannot
    // cross file systems (a cross-device rename is not atomic).
    std::string tmp = path + ".tmp.XXXXXX";
    int fd = ::mkstemp(tmp.data());
    if (fd < 0) {
        setError(error, "mkstemp '" + tmp + "'");
        return false;
    }

    std::size_t off = 0;
    while (off < bytes.size()) {
        ssize_t put =
            ::write(fd, bytes.data() + off, bytes.size() - off);
        if (put < 0) {
            if (errno == EINTR)
                continue;
            setError(error, "write '" + tmp + "'");
            ::close(fd);
            ::unlink(tmp.c_str());
            return false;
        }
        off += static_cast<std::size_t>(put);
    }
    if (::fsync(fd) < 0 || ::close(fd) < 0) {
        setError(error, "fsync '" + tmp + "'");
        ::unlink(tmp.c_str());
        return false;
    }
    if (::rename(tmp.c_str(), path.c_str()) < 0) {
        setError(error, "rename '" + tmp + "' -> '" + path + "'");
        ::unlink(tmp.c_str());
        return false;
    }
    return true;
}

bool
ensureDirectory(const std::string &path, std::string *error)
{
    if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST)
        return true;
    setError(error, "mkdir '" + path + "'");
    return false;
}

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

} // namespace mech
