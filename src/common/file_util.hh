/**
 * @file
 * Small file-system utilities for persistent artifacts.
 *
 * Two needs drove this header: the serve layer's warm-cache spills
 * (search/cache_io.hh) must be read without copying — a restarted
 * server maps each spill once and decodes straight out of the page
 * cache — and they must be written atomically, so a crash or signal
 * mid-write can never leave a half-spill a later start would try to
 * load.  MappedFile wraps mmap(2) behind a movable RAII view;
 * atomicWriteFile() stages into a same-directory temp file and
 * rename(2)s it into place.
 *
 * Everything reports failure through a bool + message out-param
 * rather than exceptions: callers treat a missing or unreadable file
 * as an ordinary cold start, not an error path.
 */

#ifndef MECH_COMMON_FILE_UTIL_HH
#define MECH_COMMON_FILE_UTIL_HH

#include <cstddef>
#include <string>
#include <string_view>

namespace mech {

/** Read-only mmap(2) view of a whole file. */
class MappedFile
{
  public:
    MappedFile() = default;
    ~MappedFile();

    MappedFile(MappedFile &&other) noexcept;
    MappedFile &operator=(MappedFile &&other) noexcept;
    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    /**
     * Map @p path read-only.  Returns false (with a message in
     * @p error when non-null) if the file cannot be opened or
     * mapped.  An empty file maps successfully to an empty view.
     */
    bool open(const std::string &path, std::string *error = nullptr);

    /** Unmap; the object returns to the default-constructed state. */
    void close();

    /** True while a mapping is held (empty files included). */
    bool isOpen() const { return opened; }

    /** The mapped bytes (valid until close()/destruction). */
    std::string_view view() const
    {
        return {static_cast<const char *>(base), length};
    }

    std::size_t size() const { return length; }

  private:
    void *base = nullptr;
    std::size_t length = 0;
    bool opened = false;
};

/**
 * Write @p bytes to @p path atomically: stage into a unique temp file
 * in the same directory, fsync it, then rename(2) over the target.
 * Readers see either the old file or the complete new one, never a
 * prefix.  Returns false with a message on any failure (the temp
 * file is removed).
 */
bool atomicWriteFile(const std::string &path, std::string_view bytes,
                     std::string *error = nullptr);

/**
 * Create directory @p path (one level; parents must exist).  An
 * already-existing directory succeeds.
 */
bool ensureDirectory(const std::string &path,
                     std::string *error = nullptr);

/** True when @p path names an existing regular file. */
bool fileExists(const std::string &path);

} // namespace mech

#endif // MECH_COMMON_FILE_UTIL_HH
