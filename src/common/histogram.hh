/**
 * @file
 * Dense integer-keyed histogram.
 *
 * Used for dependency-distance profiles (deps_unit(d), deps_LL(d),
 * deps_ld(d) in the paper's Table 1) and for diagnostic distributions.
 */

#ifndef MECH_COMMON_HISTOGRAM_HH
#define MECH_COMMON_HISTOGRAM_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace mech {

/**
 * Histogram over small non-negative integer keys.
 *
 * Grows on demand; absent keys count zero.  Keys are dependency
 * distances or similar small quantities, so dense storage wins.
 */
class Histogram
{
  public:
    Histogram() = default;

    /** Add @p weight observations of key @p key. */
    void
    add(std::uint64_t key, std::uint64_t weight = 1)
    {
        if (key >= counts.size())
            counts.resize(key + 1, 0);
        counts[key] += weight;
        totalCount += weight;
    }

    /** Observation count at @p key (0 if never seen). */
    std::uint64_t
    at(std::uint64_t key) const
    {
        return key < counts.size() ? counts[key] : 0;
    }

    /** Total number of observations. */
    std::uint64_t total() const { return totalCount; }

    /** Largest key with a non-zero count, or 0 if empty. */
    std::uint64_t
    maxKey() const
    {
        for (std::size_t i = counts.size(); i > 0; --i) {
            if (counts[i - 1] != 0)
                return i - 1;
        }
        return 0;
    }

    /** Sum of counts over keys in [lo, hi] inclusive. */
    std::uint64_t
    sumRange(std::uint64_t lo, std::uint64_t hi) const
    {
        std::uint64_t sum = 0;
        for (std::uint64_t k = lo; k <= hi && k < counts.size(); ++k)
            sum += counts[k];
        return sum;
    }

    /** Mean key weighted by counts; 0 for an empty histogram. */
    double
    mean() const
    {
        if (totalCount == 0)
            return 0.0;
        double acc = 0.0;
        for (std::size_t k = 0; k < counts.size(); ++k)
            acc += static_cast<double>(k) * static_cast<double>(counts[k]);
        return acc / static_cast<double>(totalCount);
    }

    /** Merge another histogram into this one. */
    void
    merge(const Histogram &other)
    {
        if (other.counts.size() > counts.size())
            counts.resize(other.counts.size(), 0);
        for (std::size_t k = 0; k < other.counts.size(); ++k)
            counts[k] += other.counts[k];
        totalCount += other.totalCount;
    }

    /** Reset to empty. */
    void
    clear()
    {
        counts.clear();
        totalCount = 0;
    }

    /** Dense count storage, index = key (for serialization). */
    const std::vector<std::uint64_t> &data() const { return counts; }

  private:
    std::vector<std::uint64_t> counts;
    std::uint64_t totalCount = 0;
};

} // namespace mech

#endif // MECH_COMMON_HISTOGRAM_HH
