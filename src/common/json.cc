#include "common/json.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <ostream>
#include <unordered_set>

#include "common/numfmt.hh"

namespace mech::json {

const Value *
Value::get(std::string_view key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[name, value] : object) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

std::optional<std::uint64_t>
Value::asU64() const
{
    // The largest double below 2^64 is the cast's last safe input;
    // 2^64 itself (1.8446744073709552e19) must be rejected or the
    // float-to-uint64 cast is undefined.
    if (kind != Kind::Number || number < 0.0 ||
        std::floor(number) != number ||
        number >= 1.8446744073709552e19) {
        return std::nullopt;
    }
    return static_cast<std::uint64_t>(number);
}

namespace {

/** Recursive-descent parser; errors unwind through `failed`. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text(text) {}

    std::optional<Value>
    run(std::string *error)
    {
        Value v = parseValue();
        skipSpace();
        if (!failed && pos != text.size())
            fail("trailing content after JSON document");
        if (failed) {
            if (error)
                *error = message;
            return std::nullopt;
        }
        return v;
    }

  private:
    void
    fail(const std::string &what)
    {
        if (!failed) {
            failed = true;
            message = "offset " + std::to_string(pos) + ": " + what;
        }
    }

    void
    skipSpace()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos]))) {
            ++pos;
        }
    }

    /** Next significant character, or '\0' at a (reported) EOF. */
    char
    peek()
    {
        skipSpace();
        if (pos >= text.size()) {
            fail("unexpected end of input");
            return '\0';
        }
        return text[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c) {
            fail(std::string("expected '") + c + "'");
            return;
        }
        ++pos;
    }

    bool
    consumeLiteral(std::string_view lit)
    {
        if (text.compare(pos, lit.size(), lit) == 0) {
            pos += lit.size();
            return true;
        }
        return false;
    }

    Value
    parseValue()
    {
        if (++depth > kMaxDepth) {
            fail("nesting deeper than " + std::to_string(kMaxDepth));
            --depth;
            return Value{};
        }
        char c = peek();
        Value v;
        switch (c) {
          case '{': v = parseObject(); break;
          case '[': v = parseArray(); break;
          case '"':
            v.kind = Value::Kind::String;
            v.string = parseString();
            break;
          case 't':
            if (!consumeLiteral("true"))
                fail("bad literal");
            v.kind = Value::Kind::Bool;
            v.boolean = true;
            break;
          case 'f':
            if (!consumeLiteral("false"))
                fail("bad literal");
            v.kind = Value::Kind::Bool;
            v.boolean = false;
            break;
          case 'n':
            if (!consumeLiteral("null"))
                fail("bad literal");
            break;
          default: v = parseNumber(); break;
        }
        --depth;
        return v;
    }

    Value
    parseObject()
    {
        Value v;
        v.kind = Value::Kind::Object;
        expect('{');
        if (failed)
            return v;
        if (peek() == '}') {
            ++pos;
            return v;
        }
        // Local key index so duplicate detection stays linear: a
        // Value::get() probe per member would be quadratic, which a
        // protocol-legal request line with ~100k keys turns into
        // seconds of CPU.  The set owns copies — views into the
        // object vector would dangle when small (SSO) strings
        // relocate on growth.
        std::unordered_set<std::string> seen;
        for (;;) {
            if (peek() != '"') {
                fail("object key must be a string");
                return v;
            }
            std::string key = parseString();
            expect(':');
            Value member = parseValue();
            if (failed)
                return v;
            // First occurrence wins, matching Value::get()'s scan.
            if (seen.insert(key).second) {
                v.object.emplace_back(std::move(key),
                                      std::move(member));
            }
            char c = peek();
            if (c == ',') {
                ++pos;
                continue;
            }
            expect('}');
            return v;
        }
    }

    Value
    parseArray()
    {
        Value v;
        v.kind = Value::Kind::Array;
        expect('[');
        if (failed)
            return v;
        if (peek() == ']') {
            ++pos;
            return v;
        }
        for (;;) {
            v.array.push_back(parseValue());
            if (failed)
                return v;
            char c = peek();
            if (c == ',') {
                ++pos;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (!failed && pos < text.size()) {
            char c = text[pos++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (pos >= text.size()) {
                    fail("unterminated escape");
                    return out;
                }
                char e = text[pos++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'u': {
                    if (pos + 4 > text.size()) {
                        fail("truncated \\u escape");
                        return out;
                    }
                    unsigned code = 0;
                    for (int i = 0; i < 4 && !failed; ++i) {
                        char h = text[pos++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code += static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code += static_cast<unsigned>(h - 'a') + 10;
                        else if (h >= 'A' && h <= 'F')
                            code += static_cast<unsigned>(h - 'A') + 10;
                        else
                            fail("bad \\u escape digit");
                    }
                    // Our writers only escape control characters;
                    // encode the code point as UTF-8 for robustness.
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(0x80 |
                                                 ((code >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                  }
                  default: fail("unknown escape"); return out;
                }
            } else {
                out += c;
            }
        }
        fail("unterminated string");
        return out;
    }

    Value
    parseNumber()
    {
        skipSpace();
        Value v;
        // strtod accepts "inf"/"nan", which JSON does not; the only
        // non-digit leads JSON numbers allow is a minus sign.
        if (pos >= text.size() ||
            (text[pos] != '-' &&
             !std::isdigit(static_cast<unsigned char>(text[pos])))) {
            fail("expected a value");
            return v;
        }
        // The buffer bounds the token so strtod cannot scan past a
        // string_view that is not NUL-terminated at text.end().
        char buf[64];
        std::size_t len = 0;
        while (pos + len < text.size() && len + 1 < sizeof(buf)) {
            char c = text[pos + len];
            if (!std::isdigit(static_cast<unsigned char>(c)) &&
                c != '-' && c != '+' && c != '.' && c != 'e' &&
                c != 'E') {
                break;
            }
            buf[len++] = c;
        }
        buf[len] = '\0';
        char *end = nullptr;
        double parsed = std::strtod(buf, &end);
        if (end == buf || *end != '\0') {
            fail("expected a value");
            return v;
        }
        // An overflowing literal ("1e999") comes back as inf, which
        // JSON cannot represent — and which our writers would echo
        // as the bare token "inf", corrupting the response stream.
        if (!std::isfinite(parsed)) {
            fail("number out of range");
            return v;
        }
        pos += len;
        v.kind = Value::Kind::Number;
        v.number = parsed;
        return v;
    }

    /** Recursion bound: a hostile request line must not smash the stack. */
    static constexpr int kMaxDepth = 64;

    std::string_view text;
    std::size_t pos = 0;
    int depth = 0;
    bool failed = false;
    std::string message;
};

} // namespace

std::optional<Value>
parse(std::string_view text, std::string *error)
{
    return Parser(text).run(error);
}

void
writeString(std::ostream &os, std::string_view s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          case '\r': os << "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                os << "\\u" << std::hex << std::setw(4)
                   << std::setfill('0') << static_cast<int>(c)
                   << std::dec << std::setfill(' ');
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
writeNumber(std::ostream &os, double v)
{
    os << exactDouble(v);
}

} // namespace mech::json
