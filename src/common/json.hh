/**
 * @file
 * Minimal shared JSON reader/writer.
 *
 * Three subsystems consume JSON text: the bench harness parses its
 * schema-versioned artifacts back for baseline gating, the serve
 * layer parses newline-delimited request lines, and every report
 * writer escapes strings and prints round-trip-exact doubles.  Each
 * used to hand-roll its own fragment; this header is the one shared
 * implementation, so their tolerance for malformed input stays
 * identical.
 *
 * The reader covers the JSON subset the repo's schemas use — objects,
 * arrays, strings, numbers, booleans, null — and is deliberately
 * non-throwing: parse() returns nullopt plus a positioned error
 * message, because for the serve layer a malformed line is ordinary
 * input (it must become a structured error response, never a crash).
 * Object keys keep insertion order and duplicate keys resolve to the
 * first occurrence.
 */

#ifndef MECH_COMMON_JSON_HH
#define MECH_COMMON_JSON_HH

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mech::json {

/** One parsed JSON value (a tagged union over the subset we use). */
struct Value
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<Value> array;

    /** Key/value pairs in document order (first duplicate wins). */
    std::vector<std::pair<std::string, Value>> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Member @p key of an object, or null when absent (or not one). */
    const Value *get(std::string_view key) const;

    /**
     * The number as an unsigned integer: nullopt unless it is a
     * non-negative whole number that fits (no silent truncation).
     */
    std::optional<std::uint64_t> asU64() const;
};

/**
 * Parse one JSON document covering all of @p text (trailing
 * whitespace tolerated, trailing content rejected).  On failure
 * returns nullopt and, when @p error is non-null, a message with the
 * byte offset of the problem.
 */
std::optional<Value> parse(std::string_view text, std::string *error);

/** Write @p s as a JSON string literal with escapes. */
void writeString(std::ostream &os, std::string_view s);

/** Write @p v in the shortest form that parses back bit-identically. */
void writeNumber(std::ostream &os, double v);

} // namespace mech::json

#endif // MECH_COMMON_JSON_HH
