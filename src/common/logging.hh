/**
 * @file
 * Logging and error-reporting helpers in the gem5 tradition.
 *
 * Two terminating error paths are provided, with distinct meanings
 * (see the gem5 coding-style "Fatal v. Panic" discussion):
 *
 *  - panic():  an internal invariant was violated; this is a bug in
 *              mechsim itself.  Calls std::abort() so a debugger or
 *              core dump can pick up the pieces.
 *  - fatal():  the simulation cannot continue because of a user error
 *              (bad configuration, invalid argument).  Exits with
 *              status 1.
 *
 * Non-terminating status channels: warn() for suspicious-but-survivable
 * conditions and inform() for plain status messages.
 *
 * Leveled logging: MECH_LOG(level) streams a diagnostic line to
 * stderr when the global verbosity gate (setLogLevel / --log-level)
 * admits it; a suppressed statement costs one relaxed atomic load
 * and never evaluates its stream arguments.
 * MECH_LOG_RATELIMITED(level, ms) additionally throttles its own
 * call site to one line per @p ms milliseconds, reporting how many
 * lines the throttle swallowed — the right tool for per-request
 * conditions (shed floods, slow-client warnings) that must not turn
 * an overload into a logging storm.  Note the rate-limited form
 * expands to two statements; use it inside braces.
 */

#ifndef MECH_COMMON_LOGGING_HH
#define MECH_COMMON_LOGGING_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

namespace mech {

namespace detail {

/** Stream the tail of a message pack into @p os (base case). */
inline void
streamArgs(std::ostream &)
{
}

/** Stream every argument of a message pack into @p os. */
template <typename First, typename... Rest>
void
streamArgs(std::ostream &os, const First &first, const Rest &...rest)
{
    os << first;
    streamArgs(os, rest...);
}

/** Render a message pack to a string. */
template <typename... Args>
std::string
formatMessage(const Args &...args)
{
    std::ostringstream oss;
    streamArgs(oss, args...);
    return oss.str();
}

} // namespace detail

/**
 * Report an internal invariant violation and abort.
 *
 * @param args Message fragments, streamed in order.
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    std::cerr << "panic: " << detail::formatMessage(args...) << std::endl;
    std::abort();
}

/**
 * Report an unrecoverable user error and exit with status 1.
 *
 * @param args Message fragments, streamed in order.
 */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    std::cerr << "fatal: " << detail::formatMessage(args...) << std::endl;
    std::exit(1);
}

/** Report a survivable but suspicious condition. */
template <typename... Args>
void
warn(const Args &...args)
{
    std::cerr << "warn: " << detail::formatMessage(args...) << std::endl;
}

/** Report plain status to the user. */
template <typename... Args>
void
inform(const Args &...args)
{
    std::cout << "info: " << detail::formatMessage(args...) << std::endl;
}

/** Verbosity levels for MECH_LOG, most to least severe. */
enum class LogLevel : int
{
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
    Trace = 4,
};

namespace detail {

/** The global verbosity gate (default: Info and above). */
inline std::atomic<int> &
logLevelVar()
{
    static std::atomic<int> level{static_cast<int>(LogLevel::Info)};
    return level;
}

/** Lowercase prefix tag for a level ("error", "warn", ...). */
inline const char *
logLevelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Error:
        return "error";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Info:
        return "info";
      case LogLevel::Debug:
        return "debug";
      case LogLevel::Trace:
        return "trace";
    }
    return "?";
}

} // namespace detail

/** Set the global verbosity: messages above @p level are dropped. */
inline void
setLogLevel(LogLevel level)
{
    detail::logLevelVar().store(static_cast<int>(level),
                                std::memory_order_relaxed);
}

/** The current global verbosity. */
inline LogLevel
logLevel()
{
    return static_cast<LogLevel>(
        detail::logLevelVar().load(std::memory_order_relaxed));
}

/** True when a message at @p level would currently be emitted. */
inline bool
logEnabled(LogLevel level)
{
    return static_cast<int>(level) <=
           detail::logLevelVar().load(std::memory_order_relaxed);
}

/** Parse a --log-level argument; nullopt for unknown names. */
inline std::optional<LogLevel>
parseLogLevel(const std::string &name)
{
    if (name == "error")
        return LogLevel::Error;
    if (name == "warn" || name == "warning")
        return LogLevel::Warn;
    if (name == "info")
        return LogLevel::Info;
    if (name == "debug")
        return LogLevel::Debug;
    if (name == "trace")
        return LogLevel::Trace;
    return std::nullopt;
}

namespace detail {

/**
 * One in-flight MECH_LOG statement: accumulates the streamed
 * fragments and emits them as a single stderr write on destruction,
 * so concurrent threads' lines never interleave mid-line.
 */
class LogLine
{
  public:
    explicit LogLine(LogLevel level) : level(level) {}

    LogLine(const LogLine &) = delete;
    LogLine &operator=(const LogLine &) = delete;

    ~LogLine()
    {
        std::string out = logLevelTag(level);
        out += ": ";
        out += oss.str();
        if (suppressed > 0) {
            out += " (";
            out += std::to_string(suppressed);
            out += " similar line(s) suppressed)";
        }
        out += "\n";
        std::cerr << out << std::flush;
    }

    std::ostream &stream() { return oss; }

    /** Annotate the line with a rate limiter's swallowed count. */
    LogLine &
    noteSuppressed(std::uint64_t n)
    {
        suppressed = n;
        return *this;
    }

  private:
    LogLevel level;
    std::ostringstream oss;
    std::uint64_t suppressed = 0;
};

/**
 * Per-call-site throttle for MECH_LOG_RATELIMITED: allow() admits at
 * most one line per interval and reports how many calls the throttle
 * swallowed since the last admitted one.
 */
class LogRateLimiter
{
  public:
    explicit LogRateLimiter(std::uint64_t interval_ms)
        : intervalMs(interval_ms)
    {
    }

    bool
    allow(std::uint64_t *suppressed_out)
    {
        const std::uint64_t now = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
        std::uint64_t last = lastEmitMs.load(std::memory_order_relaxed);
        if (last != 0 && now < last + intervalMs) {
            suppressedCount.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        if (!lastEmitMs.compare_exchange_strong(
                last, now, std::memory_order_relaxed)) {
            // Another thread won the slot for this interval.
            suppressedCount.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        *suppressed_out =
            suppressedCount.exchange(0, std::memory_order_relaxed);
        return true;
    }

  private:
    const std::uint64_t intervalMs;
    std::atomic<std::uint64_t> lastEmitMs{0};
    std::atomic<std::uint64_t> suppressedCount{0};
};

} // namespace detail

/**
 * Leveled diagnostic line: MECH_LOG(Info) << "x = " << x;
 * Streams to stderr; suppressed levels never evaluate the operands.
 */
#define MECH_LOG(level)                                                     \
    if (!::mech::logEnabled(::mech::LogLevel::level))                       \
        ;                                                                   \
    else                                                                    \
        ::mech::detail::LogLine(::mech::LogLevel::level).stream()

/**
 * Like MECH_LOG, but this call site emits at most one line per
 * @p interval_ms milliseconds; swallowed lines are counted and noted
 * on the next emitted one.  Expands to two statements — call it from
 * braced scope, not a dangling if.
 */
#define MECH_LOG_RATELIMITED(level, interval_ms)                            \
    static ::mech::detail::LogRateLimiter mechLogLimiter_##__LINE__{        \
        interval_ms};                                                       \
    std::uint64_t mechLogSuppressed_##__LINE__ = 0;                         \
    if (!::mech::logEnabled(::mech::LogLevel::level) ||                     \
        !mechLogLimiter_##__LINE__.allow(&mechLogSuppressed_##__LINE__))    \
        ;                                                                   \
    else                                                                    \
        ::mech::detail::LogLine(::mech::LogLevel::level)                    \
            .noteSuppressed(mechLogSuppressed_##__LINE__)                   \
            .stream()

/**
 * Panic when @p cond is false.  Unlike assert(), this check is active
 * in all build types; use it to protect simulator invariants that are
 * cheap relative to the code they guard.
 */
#define MECH_ASSERT(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::mech::panic("assertion '", #cond, "' failed at ", __FILE__,   \
                          ":", __LINE__, " ", ##__VA_ARGS__);               \
        }                                                                   \
    } while (0)

} // namespace mech

#endif // MECH_COMMON_LOGGING_HH
