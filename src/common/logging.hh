/**
 * @file
 * Logging and error-reporting helpers in the gem5 tradition.
 *
 * Two terminating error paths are provided, with distinct meanings
 * (see the gem5 coding-style "Fatal v. Panic" discussion):
 *
 *  - panic():  an internal invariant was violated; this is a bug in
 *              mechsim itself.  Calls std::abort() so a debugger or
 *              core dump can pick up the pieces.
 *  - fatal():  the simulation cannot continue because of a user error
 *              (bad configuration, invalid argument).  Exits with
 *              status 1.
 *
 * Non-terminating status channels: warn() for suspicious-but-survivable
 * conditions and inform() for plain status messages.
 */

#ifndef MECH_COMMON_LOGGING_HH
#define MECH_COMMON_LOGGING_HH

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace mech {

namespace detail {

/** Stream the tail of a message pack into @p os (base case). */
inline void
streamArgs(std::ostream &)
{
}

/** Stream every argument of a message pack into @p os. */
template <typename First, typename... Rest>
void
streamArgs(std::ostream &os, const First &first, const Rest &...rest)
{
    os << first;
    streamArgs(os, rest...);
}

/** Render a message pack to a string. */
template <typename... Args>
std::string
formatMessage(const Args &...args)
{
    std::ostringstream oss;
    streamArgs(oss, args...);
    return oss.str();
}

} // namespace detail

/**
 * Report an internal invariant violation and abort.
 *
 * @param args Message fragments, streamed in order.
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    std::cerr << "panic: " << detail::formatMessage(args...) << std::endl;
    std::abort();
}

/**
 * Report an unrecoverable user error and exit with status 1.
 *
 * @param args Message fragments, streamed in order.
 */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    std::cerr << "fatal: " << detail::formatMessage(args...) << std::endl;
    std::exit(1);
}

/** Report a survivable but suspicious condition. */
template <typename... Args>
void
warn(const Args &...args)
{
    std::cerr << "warn: " << detail::formatMessage(args...) << std::endl;
}

/** Report plain status to the user. */
template <typename... Args>
void
inform(const Args &...args)
{
    std::cout << "info: " << detail::formatMessage(args...) << std::endl;
}

/**
 * Panic when @p cond is false.  Unlike assert(), this check is active
 * in all build types; use it to protect simulator invariants that are
 * cheap relative to the code they guard.
 */
#define MECH_ASSERT(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::mech::panic("assertion '", #cond, "' failed at ", __FILE__,   \
                          ":", __LINE__, " ", ##__VA_ARGS__);               \
        }                                                                   \
    } while (0)

} // namespace mech

#endif // MECH_COMMON_LOGGING_HH
