/**
 * @file
 * Numeric formatting and strict parsing shared by the
 * round-trippable string codecs (DesignPoint::toKey()/fromKey(),
 * SpaceSpec::describe()/tryParse()).
 *
 * Both sides of every round-trip pair must use these one
 * definitions: a second hand-rolled copy is exactly how silent
 * truncation and formatting drift creep in.
 */

#ifndef MECH_COMMON_NUMFMT_HH
#define MECH_COMMON_NUMFMT_HH

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace mech {

/**
 * Shortest decimal form of @p value that parses back bit-identically.
 *
 * %.17g always round-trips an IEEE double but prints
 * "0.80000000000000004"-style noise for values with short exact
 * forms; trying increasing precision keeps keys readable
 * ("freq=0.8") without giving up exact recovery.
 */
inline std::string
exactDouble(double value)
{
    char buf[40];
    for (int prec = 1; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, value);
        if (std::strtod(buf, nullptr) == value)
            break;
    }
    return buf;
}

/**
 * Parse a non-negative decimal integer; false unless the input is
 * digits from the very first character (no sign, no leading
 * whitespace — strtoull would skip it and wrap a negative to a huge
 * value) through the last, without overflow.
 */
inline bool
parseU64(const std::string &text, std::uint64_t *out)
{
    if (text.empty() || text.front() < '0' || text.front() > '9')
        return false;
    errno = 0;
    char *end = nullptr;
    std::uint64_t v = std::strtoull(text.c_str(), &end, 10);
    if (errno || *end)
        return false;
    *out = v;
    return true;
}

/** parseU64 plus a range check into 32 bits. */
inline bool
parseU32(const std::string &text, std::uint32_t *out)
{
    std::uint64_t v = 0;
    if (!parseU64(text, &v) || v > UINT32_MAX)
        return false;
    *out = static_cast<std::uint32_t>(v);
    return true;
}

/** Checked uint64 -> uint32 narrowing. */
inline bool
narrowU32(std::uint64_t value, std::uint32_t *out)
{
    if (value > UINT32_MAX)
        return false;
    *out = static_cast<std::uint32_t>(value);
    return true;
}

/** Parse a double; false on empty input or trailing garbage. */
inline bool
parseF64(const std::string &text, double *out)
{
    if (text.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(text.c_str(), &end);
    if (errno || *end)
        return false;
    *out = v;
    return true;
}

} // namespace mech

#endif // MECH_COMMON_NUMFMT_HH
