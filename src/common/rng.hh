/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic choices in mechsim (synthetic workload generation,
 * property-test inputs) flow through Rng so that every benchmark
 * profile and every test is reproducible from a single 64-bit seed.
 * The generator is xorshift64*, which is small, fast, and has ample
 * quality for workload synthesis.
 */

#ifndef MECH_COMMON_RNG_HH
#define MECH_COMMON_RNG_HH

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace mech {

/**
 * Deterministic xorshift64* pseudo-random generator.
 *
 * Never seeded from time or other ambient state; the seed is always
 * explicit so traces regenerate bit-identically.
 */
class Rng
{
  public:
    /** Construct with an explicit non-zero seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state(seed ? seed : 0x9e3779b97f4a7c15ull)
    {
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        MECH_ASSERT(bound > 0, "Rng::below requires bound > 0");
        // Modulo bias is negligible for the bounds used in mechsim
        // (all far below 2^63) and keeps the generator branch-free.
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        MECH_ASSERT(lo <= hi, "Rng::range requires lo <= hi");
        return lo + static_cast<std::int64_t>(
                below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0); // 2^53
    }

    /** Bernoulli trial with probability @p p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Sample an index according to non-negative weights.
     *
     * @param weights Weight per index; at least one must be positive.
     * @return Sampled index in [0, weights.size()).
     */
    std::size_t
    weighted(const std::vector<double> &weights)
    {
        double total = 0.0;
        for (double w : weights) {
            MECH_ASSERT(w >= 0.0, "negative weight");
            total += w;
        }
        MECH_ASSERT(total > 0.0, "all weights zero");
        double target = uniform() * total;
        double acc = 0.0;
        for (std::size_t i = 0; i < weights.size(); ++i) {
            acc += weights[i];
            if (target < acc)
                return i;
        }
        return weights.size() - 1;
    }

    /**
     * Sample a dependency-style distance from a truncated power law:
     * P(d) proportional to d^-alpha for d in [1, max_value].
     *
     * Eeckhout & De Bosschere (PACT'01) found power laws to fit
     * inter-instruction dependency-distance distributions well; the
     * workload generator uses this to shape the profiles the paper's
     * model consumes.
     */
    std::uint64_t
    powerLaw(double alpha, std::uint64_t max_value)
    {
        MECH_ASSERT(max_value >= 1, "powerLaw requires max_value >= 1");
        // Inverse-CDF sampling over the discrete truncated power law
        // would need the normalization constant; for the small
        // max_value used here (<= 64) a cumulative table is cheapest.
        double total = 0.0;
        for (std::uint64_t d = 1; d <= max_value; ++d)
            total += std::pow(static_cast<double>(d), -alpha);
        double target = uniform() * total;
        double acc = 0.0;
        for (std::uint64_t d = 1; d <= max_value; ++d) {
            acc += std::pow(static_cast<double>(d), -alpha);
            if (target < acc)
                return d;
        }
        return max_value;
    }

    /** Geometric-like count: number of successes before failure. */
    std::uint64_t
    geometric(double p_continue, std::uint64_t max_value)
    {
        std::uint64_t n = 0;
        while (n < max_value && chance(p_continue))
            ++n;
        return n;
    }

    /** Fork an independent stream (for per-subsystem determinism). */
    Rng
    fork()
    {
        return Rng(next() | 1ull);
    }

  private:
    std::uint64_t state;
};

} // namespace mech

#endif // MECH_COMMON_RNG_HH
