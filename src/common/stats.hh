/**
 * @file
 * Running summary statistics and error metrics.
 *
 * The evaluation section of the paper reports average / maximum
 * absolute prediction error and an error CDF (Fig. 5); these helpers
 * back those computations in the benches and integration tests.
 */

#ifndef MECH_COMMON_STATS_HH
#define MECH_COMMON_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/logging.hh"

namespace mech {

/** Incremental mean/min/max/stddev accumulator (Welford). */
class SummaryStats
{
  public:
    /** Fold one sample into the summary. */
    void
    add(double x)
    {
        ++n;
        double delta = x - runningMean;
        runningMean += delta / static_cast<double>(n);
        m2 += delta * (x - runningMean);
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }

    /** Number of samples folded in. */
    std::uint64_t count() const { return n; }

    /** Arithmetic mean; 0 when empty. */
    double mean() const { return n ? runningMean : 0.0; }

    /** Smallest sample; +inf when empty. */
    double min() const { return lo; }

    /** Largest sample; -inf when empty. */
    double max() const { return hi; }

    /** Population standard deviation; 0 for fewer than two samples. */
    double
    stddev() const
    {
        if (n < 2)
            return 0.0;
        return std::sqrt(m2 / static_cast<double>(n));
    }

  private:
    std::uint64_t n = 0;
    double runningMean = 0.0;
    double m2 = 0.0;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
};

/**
 * Absolute relative error |predicted - reference| / reference.
 *
 * @pre reference != 0.
 */
inline double
absRelativeError(double predicted, double reference)
{
    MECH_ASSERT(reference != 0.0, "relative error vs zero reference");
    return std::fabs(predicted - reference) / std::fabs(reference);
}

/**
 * Empirical CDF evaluation points for a sample vector.
 *
 * Returns, for each threshold in @p thresholds, the fraction of
 * samples <= threshold.  Used to regenerate Fig. 5.
 */
inline std::vector<double>
empiricalCdf(std::vector<double> samples, const std::vector<double> &thresholds)
{
    std::sort(samples.begin(), samples.end());
    std::vector<double> cdf;
    cdf.reserve(thresholds.size());
    for (double t : thresholds) {
        auto it = std::upper_bound(samples.begin(), samples.end(), t);
        cdf.push_back(samples.empty()
                          ? 0.0
                          : static_cast<double>(it - samples.begin()) /
                                static_cast<double>(samples.size()));
    }
    return cdf;
}

/** Percentile (0..100) of a sample vector by nearest-rank. */
inline double
percentile(std::vector<double> samples, double pct)
{
    MECH_ASSERT(!samples.empty(), "percentile of empty sample set");
    MECH_ASSERT(pct >= 0.0 && pct <= 100.0, "percentile out of range");
    std::sort(samples.begin(), samples.end());
    if (pct == 0.0)
        return samples.front();
    auto rank = static_cast<std::size_t>(
        std::ceil(pct / 100.0 * static_cast<double>(samples.size())));
    return samples[std::min(rank, samples.size()) - 1];
}

} // namespace mech

#endif // MECH_COMMON_STATS_HH
