/**
 * @file
 * Minimal fixed-width text-table printer.
 *
 * The bench binaries regenerate the paper's tables and figure series
 * as aligned text; this helper keeps their output uniform.
 */

#ifndef MECH_COMMON_TABLE_HH
#define MECH_COMMON_TABLE_HH

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace mech {

/** Column-aligned text table accumulated row by row. */
class TextTable
{
  public:
    /** Define the header row. */
    explicit TextTable(std::vector<std::string> header)
        : columns(std::move(header))
    {
    }

    /** Append a row; must have exactly as many cells as the header. */
    void
    addRow(std::vector<std::string> cells)
    {
        MECH_ASSERT(cells.size() == columns.size(),
                    "row width ", cells.size(), " != header width ",
                    columns.size());
        rows.push_back(std::move(cells));
    }

    /** Format a double with fixed precision (cell helper). */
    static std::string
    num(double v, int precision = 3)
    {
        std::ostringstream oss;
        oss << std::fixed << std::setprecision(precision) << v;
        return oss.str();
    }

    /** Format a double in scientific notation (cell helper). */
    static std::string
    sci(double v, int precision = 3)
    {
        std::ostringstream oss;
        oss << std::scientific << std::setprecision(precision) << v;
        return oss.str();
    }

    /** Render the table, header underlined with dashes. */
    void
    print(std::ostream &os) const
    {
        std::vector<std::size_t> width(columns.size());
        for (std::size_t c = 0; c < columns.size(); ++c)
            width[c] = columns[c].size();
        for (const auto &row : rows) {
            for (std::size_t c = 0; c < row.size(); ++c)
                width[c] = std::max(width[c], row[c].size());
        }
        auto emit = [&](const std::vector<std::string> &row) {
            for (std::size_t c = 0; c < row.size(); ++c) {
                os << std::left << std::setw(static_cast<int>(width[c]) + 2)
                   << row[c];
            }
            os << '\n';
        };
        emit(columns);
        std::string rule;
        for (std::size_t c = 0; c < columns.size(); ++c)
            rule += std::string(width[c], '-') + "  ";
        os << rule << '\n';
        for (const auto &row : rows)
            emit(row);
    }

  private:
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;
};

} // namespace mech

#endif // MECH_COMMON_TABLE_HH
