/**
 * @file
 * A small fixed-size worker pool with two submission paths.
 *
 * submit() is the general path: any nullary callable, a std::future
 * for its result, exceptions propagated to whoever waits.  It pays
 * one heap allocation and one queue lock per task, which is fine for
 * coarse work (profiling a benchmark, building a study).
 *
 * parallelFor() is the hot path the DSE layer's (benchmark x design
 * point) sweeps run on.  A model evaluation is microseconds, so the
 * submit() machinery — shared_ptr<packaged_task>, std::function,
 * future, mutex/cv round trip per task — used to cost more than the
 * work and made sweeps scale *backwards* with threads.  parallelFor
 * publishes one index-range job with a single lock acquisition and
 * zero per-chunk heap allocations: workers (and the calling thread,
 * which participates) claim [begin, end) chunks under the pool mutex
 * and run them outside it, and completion is a single latch-style
 * wait on the job's item count.  The job lives on the caller's
 * stack; the caller does not return until every index is processed,
 * so chunk execution never touches freed state.
 *
 * A pool with zero workers degenerates to inline execution: submit()
 * runs the task on the calling thread before returning and
 * parallelFor() runs the whole range as one inline chunk.  That keeps
 * serial fallback paths (nthreads <= 1 without a spare thread) free
 * of any scheduling machinery while preserving both APIs.
 */

#ifndef MECH_COMMON_THREAD_POOL_HH
#define MECH_COMMON_THREAD_POOL_HH

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/registry.hh"
#include "obs/trace.hh"

namespace mech {

namespace detail {

/** The pool's process-wide observability instruments (all pools
 *  share them; updates are relaxed atomics, registration happens
 *  once under the registry mutex). */
struct PoolObs
{
    obs::Gauge &queueDepth;
    obs::Gauge &busyWorkers;
    obs::Counter &chunksRun;
    obs::LatencyHistogram &chunkUs;

    static PoolObs &
    get()
    {
        static PoolObs o{
            obs::MetricsRegistry::global().gauge(
                "pool.queue_depth",
                "Tasks waiting in the ThreadPool submit() queue"),
            obs::MetricsRegistry::global().gauge(
                "pool.busy_workers",
                "Threads currently executing pool work"),
            obs::MetricsRegistry::global().counter(
                "pool.chunks_run", "parallelFor chunks executed"),
            obs::MetricsRegistry::global().histogram(
                "pool.chunk_us",
                "parallelFor chunk execution latency in microseconds"),
        };
        return o;
    }
};

/**
 * Scope guard timing one unit of pool work: marks a worker busy,
 * and on exit records the chunk latency histogram, the chunk
 * counter, and (when tracing) a "parallelFor.chunk" trace span.
 * All of it stays on the observability channel — no effect on the
 * work's results or ordering.
 */
class ChunkScope
{
  public:
    ChunkScope() : start(std::chrono::steady_clock::now())
    {
        PoolObs::get().busyWorkers.add(1);
    }

    ChunkScope(const ChunkScope &) = delete;
    ChunkScope &operator=(const ChunkScope &) = delete;

    ~ChunkScope()
    {
        const auto end = std::chrono::steady_clock::now();
        const std::uint64_t us = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                end - start)
                .count());
        PoolObs &o = PoolObs::get();
        o.busyWorkers.sub(1);
        o.chunksRun.inc();
        o.chunkUs.record(us);
        if (obs::TraceRecorder *rec = obs::TraceRecorder::current())
            rec->complete("parallelFor.chunk", "pool",
                          rec->tsOf(start), us);
    }

  private:
    std::chrono::steady_clock::time_point start;
};

} // namespace detail

/** Fixed-size thread pool: FIFO task queue + bulk index-range jobs. */
class ThreadPool
{
  public:
    /**
     * @param workers Worker threads to spawn; 0 means "run tasks
     *        inline on the submitting thread".
     */
    explicit ThreadPool(unsigned workers)
    {
        threads.reserve(workers);
        try {
            for (unsigned i = 0; i < workers; ++i)
                threads.emplace_back([this] { workerLoop(); });
        } catch (...) {
            // Spawning worker i failed (resource exhaustion): join
            // the 0..i-1 already running, else their joinable
            // std::threads would terminate() on vector destruction.
            shutdown();
            throw;
        }
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Drains the queue: joins after every submitted task has run. */
    ~ThreadPool() { shutdown(); }

    /**
     * Queue @p fn for execution and return a future for its result.
     *
     * Tasks are dispatched to workers in submission order (FIFO); an
     * exception escaping @p fn is captured into the future.  A task
     * submitted while the pool is shutting down runs inline on the
     * submitting thread — workers may already have observed the stop
     * flag and exited, and a task stranded in the queue would leave
     * its future forever unready.
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        // packaged_task is move-only; std::function needs copyable
        // targets, so hold it through a shared_ptr.
        auto task =
            std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
        std::future<R> fut = task->get_future();

        if (threads.empty()) {
            (*task)();
            return fut;
        }

        {
            std::lock_guard<std::mutex> lock(mtx);
            if (!stopping) {
                queue.emplace([task] { (*task)(); });
                detail::PoolObs::get().queueDepth.add(1);
                cv.notify_one();
                return fut;
            }
        }
        // Racing shutdown: run inline so the future is always
        // satisfied even if every worker has already returned.
        (*task)();
        return fut;
    }

    /**
     * Run @p fn over the index range [0, @p n) in chunks of up to
     * @p chunk indices, blocking until every index has been
     * processed.
     *
     * @p fn is invoked as fn(begin, end) with 0 <= begin < end <= n;
     * distinct chunks may run concurrently on any worker or on the
     * calling thread (which participates), so @p fn must only write
     * to state preassigned to its indices.  The first exception
     * escaping a chunk is rethrown on the calling thread after the
     * whole range has been processed; later exceptions are dropped.
     *
     * Cost: one lock acquisition to publish the job, two per chunk
     * to claim it and retire it, no heap allocation at all.
     */
    template <typename F>
    void
    parallelFor(std::size_t n, std::size_t chunk, F &&fn)
    {
        if (n == 0)
            return;
        chunk = std::max<std::size_t>(1, chunk);
        if (threads.empty() || n <= chunk) {
            detail::ChunkScope scope;
            fn(std::size_t{0}, n);
            return;
        }

        BulkJob job;
        job.invoke = [](void *ctx, std::size_t begin, std::size_t end) {
            (*static_cast<std::remove_reference_t<F> *>(ctx))(begin,
                                                              end);
        };
        job.ctx = const_cast<void *>(
            static_cast<const void *>(std::addressof(fn)));
        job.n = n;
        job.chunk = chunk;

        std::unique_lock<std::mutex> lock(mtx);
        bulkJobs.push_back(&job);
        cv.notify_all();
        // Participate: the calling thread claims chunks like any
        // worker, so small ranges finish before workers even wake.
        runBulkChunks(lock, job);
        cvDone.wait(lock, [&job] { return job.completed == job.n; });
        bulkJobs.erase(
            std::find(bulkJobs.begin(), bulkJobs.end(), &job));
        lock.unlock();

        if (job.error)
            std::rethrow_exception(job.error);
    }

    /**
     * A chunk size for parallelFor over @p n items of roughly uniform
     * cost: ~8 chunks per participant (workers + caller), enough
     * slack for load balance while keeping claim traffic negligible.
     */
    std::size_t
    bulkChunk(std::size_t n) const
    {
        if (threads.empty())
            return std::max<std::size_t>(1, n);
        return std::max<std::size_t>(1,
                                     n / ((threads.size() + 1) * 8));
    }

    /** Number of worker threads (0 for an inline pool). */
    std::size_t workerCount() const { return threads.size(); }

    /**
     * Worker count for "use the whole machine" callers: the hardware
     * concurrency, or 1 when the runtime cannot tell.
     */
    static unsigned
    defaultWorkerCount()
    {
        unsigned hw = std::thread::hardware_concurrency();
        return hw ? hw : 1;
    }

    /** Upper bound on user-requested worker counts. */
    static constexpr unsigned kMaxWorkers = 256;

    /**
     * Clamp an untrusted (CLI/env) worker count.
     *
     * Zero and negatives mean "use the whole machine" and resolve to
     * defaultWorkerCount() — every tool's `--threads 0` (and omitted
     * default) goes through here, so the convention stays uniform
     * across mech_bench, calibrate, mech_search and the benches.
     * Oversized requests cap at kMaxWorkers.
     */
    static unsigned
    sanitizeWorkerCount(long long requested)
    {
        if (requested <= 0)
            return defaultWorkerCount();
        if (requested > static_cast<long long>(kMaxWorkers))
            return kMaxWorkers;
        return static_cast<unsigned>(requested);
    }

  private:
    /**
     * One published parallelFor range.  Lives on the caller's stack;
     * every mutable field is guarded by the pool mutex, so claiming
     * and retiring chunks needs no atomics and a finished job can be
     * popped without racing in-flight workers.
     */
    struct BulkJob
    {
        /** Type-erased chunk body (no allocation: ctx is the caller's
         *  callable, alive until parallelFor returns). */
        void (*invoke)(void *, std::size_t, std::size_t) = nullptr;
        void *ctx = nullptr;

        /** Range size and claim granularity (immutable). */
        std::size_t n = 0;
        std::size_t chunk = 1;

        /** First unclaimed index (guarded by the pool mutex). */
        std::size_t next = 0;

        /** Indices whose chunk has finished running (guarded). */
        std::size_t completed = 0;

        /** First exception a chunk threw (guarded). */
        std::exception_ptr error;
    };

    /** First published job with unclaimed work, or null (lock held). */
    BulkJob *
    nextBulkJob() const
    {
        for (BulkJob *job : bulkJobs) {
            if (job->next < job->n)
                return job;
        }
        return nullptr;
    }

    /**
     * Claim and run chunks of @p job until none are left.  Called
     * with @p lock held; the lock is released while a chunk runs and
     * reacquired to retire it, and is held again on return.
     */
    void
    runBulkChunks(std::unique_lock<std::mutex> &lock, BulkJob &job)
    {
        while (job.next < job.n) {
            const std::size_t begin = job.next;
            const std::size_t end =
                std::min(job.n, begin + job.chunk);
            job.next = end;
            lock.unlock();

            std::exception_ptr err;
            try {
                detail::ChunkScope scope;
                job.invoke(job.ctx, begin, end);
            } catch (...) {
                err = std::current_exception();
            }

            lock.lock();
            if (err && !job.error)
                job.error = err;
            job.completed += end - begin;
            if (job.completed == job.n)
                cvDone.notify_all();
        }
    }

    void
    shutdown()
    {
        {
            std::lock_guard<std::mutex> lock(mtx);
            stopping = true;
        }
        cv.notify_all();
        for (auto &t : threads)
            t.join();
        threads.clear();
    }

    void
    workerLoop()
    {
        std::unique_lock<std::mutex> lock(mtx);
        for (;;) {
            cv.wait(lock, [this] {
                return stopping || !queue.empty() ||
                       nextBulkJob() != nullptr;
            });
            if (BulkJob *job = nextBulkJob()) {
                runBulkChunks(lock, *job);
                continue;
            }
            if (!queue.empty()) {
                std::function<void()> job = std::move(queue.front());
                queue.pop();
                detail::PoolObs::get().queueDepth.sub(1);
                lock.unlock();
                {
                    detail::ChunkScope scope;
                    job();
                }
                lock.lock();
                continue;
            }
            if (stopping)
                return;
        }
    }

    std::vector<std::thread> threads;
    std::queue<std::function<void()>> queue;
    std::vector<BulkJob *> bulkJobs;
    std::mutex mtx;
    std::condition_variable cv;
    std::condition_variable cvDone;
    bool stopping = false;
};

} // namespace mech

#endif // MECH_COMMON_THREAD_POOL_HH
