/**
 * @file
 * A small fixed-size worker pool over a FIFO work queue.
 *
 * Built for the DSE layer's embarrassingly parallel (benchmark x
 * design point) sweeps, but generic: submit() accepts any nullary
 * callable and returns a std::future for its result, so exceptions
 * thrown by a task propagate to whoever waits on it.
 *
 * A pool with zero workers degenerates to inline execution: submit()
 * runs the task on the calling thread before returning.  That keeps
 * serial fallback paths (nthreads <= 1 without a spare thread) free
 * of any scheduling machinery while preserving the future-based API.
 */

#ifndef MECH_COMMON_THREAD_POOL_HH
#define MECH_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace mech {

/** Fixed-size thread pool with a FIFO task queue. */
class ThreadPool
{
  public:
    /**
     * @param workers Worker threads to spawn; 0 means "run tasks
     *        inline on the submitting thread".
     */
    explicit ThreadPool(unsigned workers)
    {
        threads.reserve(workers);
        try {
            for (unsigned i = 0; i < workers; ++i)
                threads.emplace_back([this] { workerLoop(); });
        } catch (...) {
            // Spawning worker i failed (resource exhaustion): join
            // the 0..i-1 already running, else their joinable
            // std::threads would terminate() on vector destruction.
            shutdown();
            throw;
        }
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Drains the queue: joins after every submitted task has run. */
    ~ThreadPool() { shutdown(); }

    /**
     * Queue @p fn for execution and return a future for its result.
     *
     * Tasks are dispatched to workers in submission order (FIFO); an
     * exception escaping @p fn is captured into the future.
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        // packaged_task is move-only; std::function needs copyable
        // targets, so hold it through a shared_ptr.
        auto task =
            std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
        std::future<R> fut = task->get_future();

        if (threads.empty()) {
            (*task)();
            return fut;
        }

        {
            std::lock_guard<std::mutex> lock(mtx);
            queue.emplace([task] { (*task)(); });
        }
        cv.notify_one();
        return fut;
    }

    /** Number of worker threads (0 for an inline pool). */
    std::size_t workerCount() const { return threads.size(); }

    /**
     * Worker count for "use the whole machine" callers: the hardware
     * concurrency, or 1 when the runtime cannot tell.
     */
    static unsigned
    defaultWorkerCount()
    {
        unsigned hw = std::thread::hardware_concurrency();
        return hw ? hw : 1;
    }

    /** Upper bound on user-requested worker counts. */
    static constexpr unsigned kMaxWorkers = 256;

    /**
     * Clamp an untrusted (CLI/env) worker count.
     *
     * Zero and negatives mean "use the whole machine" and resolve to
     * defaultWorkerCount() — every tool's `--threads 0` (and omitted
     * default) goes through here, so the convention stays uniform
     * across mech_bench, calibrate, mech_search and the benches.
     * Oversized requests cap at kMaxWorkers.
     */
    static unsigned
    sanitizeWorkerCount(long long requested)
    {
        if (requested <= 0)
            return defaultWorkerCount();
        if (requested > static_cast<long long>(kMaxWorkers))
            return kMaxWorkers;
        return static_cast<unsigned>(requested);
    }

  private:
    void
    shutdown()
    {
        {
            std::lock_guard<std::mutex> lock(mtx);
            stopping = true;
        }
        cv.notify_all();
        for (auto &t : threads)
            t.join();
        threads.clear();
    }
    void
    workerLoop()
    {
        for (;;) {
            std::function<void()> job;
            {
                std::unique_lock<std::mutex> lock(mtx);
                cv.wait(lock,
                        [this] { return stopping || !queue.empty(); });
                if (queue.empty()) {
                    if (stopping)
                        return;
                    continue;
                }
                job = std::move(queue.front());
                queue.pop();
            }
            job();
        }
    }

    std::vector<std::thread> threads;
    std::queue<std::function<void()>> queue;
    std::mutex mtx;
    std::condition_variable cv;
    bool stopping = false;
};

} // namespace mech

#endif // MECH_COMMON_THREAD_POOL_HH
