/**
 * @file
 * Fundamental scalar types shared across mechsim libraries.
 */

#ifndef MECH_COMMON_TYPES_HH
#define MECH_COMMON_TYPES_HH

#include <cstdint>

namespace mech {

/** Byte address in the simulated machine's address space. */
using Addr = std::uint64_t;

/** Count of clock cycles (also used for latencies). */
using Cycles = std::uint64_t;

/** Count of dynamic instructions. */
using InstCount = std::uint64_t;

/** Architectural register index. */
using RegIndex = std::uint16_t;

/** Sentinel meaning "no register operand". */
inline constexpr RegIndex kNoReg = 0xffff;

/** Number of architectural integer registers modeled. */
inline constexpr RegIndex kNumArchRegs = 32;

} // namespace mech

#endif // MECH_COMMON_TYPES_HH
