#include "compiler/passes.hh"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/logging.hh"
#include "isa/op_class.hh"

namespace mech {

namespace {

constexpr std::uint64_t kNoPos = std::numeric_limits<std::uint64_t>::max();

/** Register dependence edges within one basic block. */
struct BlockDag
{
    /** preds[i] = indices that must precede instruction i. */
    std::vector<std::vector<std::size_t>> preds;

    /** succs[i] = indices that must follow instruction i. */
    std::vector<std::vector<std::size_t>> succs;
};

/** Build RAW/WAR/WAW precedence edges over @p body. */
BlockDag
buildDag(const std::vector<StaticInst> &body)
{
    BlockDag dag;
    dag.preds.resize(body.size());
    dag.succs.resize(body.size());

    auto add_edge = [&dag](std::size_t from, std::size_t to) {
        dag.preds[to].push_back(from);
        dag.succs[from].push_back(to);
    };

    std::vector<std::size_t> last_def(kNumArchRegs, kNoPos);
    std::vector<std::vector<std::size_t>> readers_since_def(kNumArchRegs);

    for (std::size_t i = 0; i < body.size(); ++i) {
        const StaticInst &si = body[i];
        for (RegIndex src : {si.src1, si.src2}) {
            if (src == kNoReg)
                continue;
            if (last_def[src] != kNoPos)
                add_edge(last_def[src], i); // RAW
            readers_since_def[src].push_back(i);
        }
        if (si.dst != kNoReg) {
            if (last_def[si.dst] != kNoPos)
                add_edge(last_def[si.dst], i); // WAW
            for (std::size_t r : readers_since_def[si.dst]) {
                if (r != i)
                    add_edge(r, i); // WAR
            }
            readers_since_def[si.dst].clear();
            last_def[si.dst] = i;
        }
    }
    return dag;
}

/**
 * List-schedule @p body under @p goal; returns the new order as
 * indices into the original body.
 */
std::vector<std::size_t>
listSchedule(const std::vector<StaticInst> &body, SchedGoal goal)
{
    BlockDag dag = buildDag(body);
    std::size_t n = body.size();

    std::vector<std::size_t> pending(n, 0);
    for (std::size_t i = 0; i < n; ++i)
        pending[i] = dag.preds[i].size();

    std::vector<std::size_t> scheduled_pos(n, kNoPos);
    std::vector<std::size_t> ready;
    for (std::size_t i = 0; i < n; ++i) {
        if (pending[i] == 0)
            ready.push_back(i);
    }

    std::vector<std::size_t> order;
    order.reserve(n);

    while (!order.empty() || !ready.empty()) {
        if (ready.empty())
            panic("scheduling DAG has a cycle");

        // Score candidates by the distance to their latest scheduled
        // register producer (RAW only matters for stalls; using all
        // precedence edges is a close, simpler proxy).
        std::size_t best = 0;
        std::int64_t best_score = std::numeric_limits<std::int64_t>::min();
        for (std::size_t c = 0; c < ready.size(); ++c) {
            std::size_t cand = ready[c];
            std::int64_t latest = -1;
            for (std::size_t p : dag.preds[cand]) {
                latest = std::max(
                    latest, static_cast<std::int64_t>(scheduled_pos[p]));
            }
            // Distance the candidate would have to its latest producer
            // if placed now.
            std::int64_t dist =
                static_cast<std::int64_t>(order.size()) - latest;
            std::int64_t score = goal == SchedGoal::Spread ? dist : -dist;
            // Stable tie-break on original position keeps the pass
            // deterministic.
            if (score > best_score ||
                (score == best_score && cand < ready[best])) {
                best_score = score;
                best = c;
            }
        }

        std::size_t chosen = ready[best];
        ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(best));
        scheduled_pos[chosen] = order.size();
        order.push_back(chosen);
        for (std::size_t s : dag.succs[chosen]) {
            if (--pending[s] == 0)
                ready.push_back(s);
        }
        if (order.size() == n)
            break;
    }
    MECH_ASSERT(order.size() == n, "schedule dropped instructions");
    return order;
}

/**
 * Insert spill store/reload pairs where more than @p avail_regs
 * values are live simultaneously.  Returns the number of pairs.
 */
std::uint64_t
insertSpills(std::vector<StaticInst> &body, std::uint32_t avail_regs,
             std::uint16_t spill_region, std::uint32_t &spill_stream)
{
    std::size_t n = body.size();

    // Live range of each defining instruction: def position -> last
    // use position (within the block).
    struct Range
    {
        std::size_t def = 0;
        std::vector<std::size_t> uses;
    };
    std::vector<Range> ranges;
    {
        std::vector<std::size_t> open(kNumArchRegs, kNoPos);
        for (std::size_t i = 0; i < n; ++i) {
            const StaticInst &si = body[i];
            for (RegIndex src : {si.src1, si.src2}) {
                if (src != kNoReg && open[src] != kNoPos)
                    ranges[open[src]].uses.push_back(i);
            }
            if (si.dst != kNoReg) {
                ranges.push_back({i, {}});
                open[si.dst] = ranges.size() - 1;
            }
        }
    }

    // Sweep positions; spill the live value with the farthest next
    // use whenever pressure exceeds the budget.
    struct Spill
    {
        std::size_t storeAfter;  ///< insert store after this position
        std::size_t loadBefore;  ///< insert reload before this position
        RegIndex reg;
    };
    std::vector<Spill> spills;
    std::vector<bool> spilled(ranges.size(), false);

    for (std::size_t pos = 0; pos < n; ++pos) {
        // Active = defined at or before pos, with a use after pos.
        std::vector<std::size_t> active;
        for (std::size_t r = 0; r < ranges.size(); ++r) {
            if (spilled[r] || ranges[r].def > pos || ranges[r].uses.empty())
                continue;
            if (ranges[r].uses.back() > pos)
                active.push_back(r);
        }
        while (active.size() > avail_regs) {
            // Farthest next use is the cheapest to keep in memory.
            std::size_t victim = active.front();
            std::size_t victim_next = 0;
            for (std::size_t r : active) {
                auto it = std::upper_bound(ranges[r].uses.begin(),
                                           ranges[r].uses.end(), pos);
                std::size_t next =
                    it == ranges[r].uses.end() ? n : *it;
                if (next > victim_next) {
                    victim_next = next;
                    victim = r;
                }
            }
            spilled[victim] = true;
            spills.push_back(
                {pos, victim_next, body[ranges[victim].def].dst});
            active.erase(
                std::find(active.begin(), active.end(), victim));
        }
    }

    if (spills.empty())
        return 0;

    // Materialize: walk the body, inserting stores/reloads at their
    // positions (stores after `storeAfter`, reloads before
    // `loadBefore`).
    std::vector<StaticInst> out;
    out.reserve(n + 2 * spills.size());
    for (std::size_t pos = 0; pos < n; ++pos) {
        for (const Spill &sp : spills) {
            if (sp.loadBefore == pos) {
                StaticInst reload;
                reload.op = OpClass::Load;
                reload.dst = sp.reg;
                reload.src1 = 0; // stack pointer (live-in r0)
                reload.memStreamId = spill_stream++;
                reload.memPattern = MemPattern::Random;
                reload.memRegion = spill_region;
                out.push_back(reload);
            }
        }
        out.push_back(body[pos]);
        for (const Spill &sp : spills) {
            if (sp.storeAfter == pos) {
                StaticInst store;
                store.op = OpClass::Store;
                store.src1 = sp.reg;
                store.src2 = 0; // stack pointer (live-in r0)
                store.memStreamId = spill_stream++;
                store.memPattern = MemPattern::Random;
                store.memRegion = spill_region;
                out.push_back(store);
            }
        }
    }
    body = std::move(out);
    return spills.size();
}

/** Index of (or newly added) small always-resident spill region. */
std::uint16_t
spillRegionOf(Program &prog)
{
    // A 4 KiB region stays L1-resident: spill traffic costs pipeline
    // cycles (load-use) but no cache misses, matching real stacks.
    constexpr std::uint64_t kSpillBytes = 4096;
    for (std::size_t i = 0; i < prog.regions.size(); ++i) {
        if (prog.regions[i].sizeBytes == kSpillBytes)
            return static_cast<std::uint16_t>(i);
    }
    prog.regions.push_back({kSpillBytes, 0});
    return static_cast<std::uint16_t>(prog.regions.size() - 1);
}

} // namespace

std::uint64_t
scheduleProgram(Program &prog, const SchedOptions &options)
{
    std::uint64_t spill_pairs = 0;
    std::uint16_t spill_region = 0;
    // Spill instructions need stream ids that collide with nothing
    // existing; renumberMemStreams() densifies them afterwards while
    // preserving any sharing among unrolled copies.
    std::uint32_t spill_stream = 0x80000000u;
    bool want_spills =
        options.goal == SchedGoal::Spread && options.modelSpills;
    if (want_spills)
        spill_region = spillRegionOf(prog);

    for (auto &loop : prog.loops) {
        for (auto &block : loop.blocks) {
            if (block.body.size() < 2)
                continue;
            auto order = listSchedule(block.body, options.goal);
            std::vector<StaticInst> reordered;
            reordered.reserve(block.body.size());
            for (std::size_t idx : order)
                reordered.push_back(block.body[idx]);
            block.body = std::move(reordered);

            if (want_spills) {
                spill_pairs += insertSpills(block.body, options.availRegs,
                                            spill_region, spill_stream);
            }
        }
    }

    prog.renumberMemStreams();
    prog.assignPcs();
    prog.layoutData();
    return spill_pairs;
}

void
unrollLoops(Program &prog, std::uint32_t factor)
{
    MECH_ASSERT(factor >= 1, "unroll factor must be >= 1");
    if (factor == 1)
        return;

    constexpr RegIndex kFirstRotReg = 8;
    constexpr RegIndex kNumRotRegs = 20;

    for (auto &loop : prog.loops) {
        std::vector<BasicBlock> unrolled;
        unrolled.reserve(loop.blocks.size() * factor);
        for (std::uint32_t copy = 0; copy < factor; ++copy) {
            // Offset the rotating registers per copy so the copies'
            // chains are independent and a later Spread schedule can
            // interleave them.
            RegIndex offset = static_cast<RegIndex>(
                (copy * 7) % kNumRotRegs);
            auto remap = [offset](RegIndex r) {
                if (r >= kFirstRotReg &&
                    r < kFirstRotReg + kNumRotRegs) {
                    return static_cast<RegIndex>(
                        kFirstRotReg +
                        (r - kFirstRotReg + offset) % kNumRotRegs);
                }
                return r;
            };
            for (const auto &block : loop.blocks) {
                BasicBlock nb = block;
                if (nb.guarded) {
                    nb.guard.src1 = remap(nb.guard.src1);
                    nb.guard.src2 = remap(nb.guard.src2);
                }
                for (auto &si : nb.body) {
                    si.dst = si.dst == kNoReg ? kNoReg : remap(si.dst);
                    si.src1 =
                        si.src1 == kNoReg ? kNoReg : remap(si.src1);
                    si.src2 =
                        si.src2 == kNoReg ? kNoReg : remap(si.src2);
                }
                unrolled.push_back(std::move(nb));
            }
        }
        // Fuse unguarded neighbours into straight-line super-blocks:
        // this is what gives a later scheduling pass its cross-copy
        // window — the paper's observation that unrolling helps
        // *through* the instruction scheduler.  Guarded blocks keep
        // their boundaries (code cannot move across the guard).
        std::vector<BasicBlock> fused;
        for (auto &block : unrolled) {
            if (!fused.empty() && !block.guarded) {
                auto &tail = fused.back().body;
                tail.insert(tail.end(), block.body.begin(),
                            block.body.end());
            } else {
                fused.push_back(std::move(block));
            }
        }

        loop.blocks = std::move(fused);
        loop.tripCount = (loop.tripCount + factor - 1) / factor;
    }

    prog.renumberMemStreams();
    prog.assignPcs();
    prog.layoutData();
}

} // namespace mech
