/**
 * @file
 * Compiler-style transformations over the workload IR.
 *
 * The paper's second case study (§6.2, Fig. 8) compares -O3,
 * -O3 -fno-schedule-insns, and -O3 -funroll-loops.  These passes
 * reproduce the *mechanisms* behind those flags on the synthetic
 * program IR:
 *
 *  - scheduleProgram(Spread): basic-block list scheduling that
 *    interleaves independent dependency chains, maximizing def-use
 *    distances (what -O3's scheduler does for an in-order target),
 *    with a register-pressure spill model that inserts store/reload
 *    pairs when too many values are live (the paper's "spill code"
 *    effect on gsm_c and tiffdither);
 *  - scheduleProgram(Tighten): the inverse — consumers packed right
 *    behind producers, modeling unscheduled (-fno-schedule-insns)
 *    code;
 *  - unrollLoops(k): replicates loop bodies, dropping k-1 of every k
 *    counter increments and back-edge branches (fewer dynamic
 *    instructions, fewer taken branches) and widening the scheduler's
 *    window across copies.
 *
 * All passes preserve dataflow: RAW/WAR/WAW register orderings within
 * each block are honored, guards and loop tails are never reordered.
 */

#ifndef MECH_COMPILER_PASSES_HH
#define MECH_COMPILER_PASSES_HH

#include <cstdint>

#include "workload/program.hh"

namespace mech {

/** Scheduling objective. */
enum class SchedGoal : std::uint8_t {
    Spread,  ///< maximize def-use distance (compiler scheduler on)
    Tighten, ///< minimize def-use distance (scheduler off)
};

/** Options for the scheduling pass. */
struct SchedOptions
{
    /** Objective. */
    SchedGoal goal = SchedGoal::Spread;

    /**
     * Registers available to the allocator before spilling kicks in
     * (Spread only).  Fewer available registers => more spill code.
     */
    std::uint32_t availRegs = 18;

    /** Enable the spill model (Spread only). */
    bool modelSpills = true;
};

/**
 * Schedule every basic block of @p prog in place.
 *
 * Re-runs PC assignment and stream renumbering afterwards, so the
 * program is immediately executable.
 *
 * @return Number of spill store/reload pairs inserted.
 */
std::uint64_t scheduleProgram(Program &prog, const SchedOptions &options);

/**
 * Unroll every loop of @p prog by @p factor in place.
 *
 * Loop trip counts shrink accordingly (tripCount is rounded up so the
 * total work stays within one unrolled iteration of the original).
 * Rotating registers in the copies are offset to decorrelate the
 * copies' dependency chains, giving a subsequent Spread schedule more
 * freedom — the paper's observation that unrolling helps *through*
 * the scheduler.
 */
void unrollLoops(Program &prog, std::uint32_t factor);

} // namespace mech

#endif // MECH_COMPILER_PASSES_HH
