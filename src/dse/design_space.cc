#include "dse/design_space.hh"

#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace mech {

namespace {

/** Convert a nanosecond spec to cycles at @p freq_ghz (at least 1). */
Cycles
nsToCycles(double ns, double freq_ghz)
{
    return static_cast<Cycles>(
        std::max(1.0, std::ceil(ns * freq_ghz - 1e-9)));
}

/** Table 2 couples depth and frequency. */
double
freqForDepth(std::uint32_t depth)
{
    switch (depth) {
      case 5: return 0.6;
      case 7: return 0.8;
      case 9: return 1.0;
      default:
        fatal("unsupported pipeline depth ", depth,
              " (Table 2 uses 5/7/9)");
    }
}

} // namespace

std::string
DesignPoint::label() const
{
    std::ostringstream oss;
    oss << "L2:" << l2KB << "KB/" << l2Assoc << "w d" << depth << "@"
        << freqGHz << "GHz W" << width << " "
        << predictorName(predictor);
    return oss.str();
}

std::vector<DesignPoint>
table2Space()
{
    std::vector<DesignPoint> space;
    const std::uint64_t l2_sizes[] = {128, 256, 512, 1024};
    const std::uint32_t l2_assocs[] = {8, 16};
    const std::uint32_t depths[] = {5, 7, 9};
    const std::uint32_t widths[] = {1, 2, 3, 4};
    const PredictorKind predictors[] = {PredictorKind::Gshare1K,
                                        PredictorKind::Hybrid3K5};

    for (std::uint64_t l2 : l2_sizes) {
        for (std::uint32_t assoc : l2_assocs) {
            for (std::uint32_t depth : depths) {
                for (std::uint32_t width : widths) {
                    for (PredictorKind pred : predictors) {
                        DesignPoint p;
                        p.l2KB = l2;
                        p.l2Assoc = assoc;
                        p.depth = depth;
                        p.freqGHz = freqForDepth(depth);
                        p.width = width;
                        p.predictor = pred;
                        space.push_back(p);
                    }
                }
            }
        }
    }
    MECH_ASSERT(space.size() == 192, "Table 2 space must have 192 points");
    return space;
}

DesignPoint
defaultDesignPoint()
{
    DesignPoint p;
    p.l2KB = 512;
    p.l2Assoc = 8;
    p.depth = 9;
    p.freqGHz = 1.0;
    p.width = 4;
    p.predictor = PredictorKind::Gshare1K;
    return p;
}

MachineParams
machineFor(const DesignPoint &point, const LatencySpec &spec)
{
    MachineParams m;
    m.width = point.width;
    MECH_ASSERT(point.depth > 3, "need at least one front-end stage");
    m.frontendDepth = point.depth - 3; // EX/MEM/WB form the back end
    m.freqGHz = point.freqGHz;
    m.latIntMult = nsToCycles(spec.intMultNs, point.freqGHz);
    m.latIntDiv = nsToCycles(spec.intDivNs, point.freqGHz);
    m.latFpAlu = nsToCycles(spec.fpAluNs, point.freqGHz);
    m.latFpMult = nsToCycles(spec.fpMultNs, point.freqGHz);
    m.latFpDiv = nsToCycles(spec.fpDivNs, point.freqGHz);
    m.dl1HitCycles = 1;
    m.l2HitCycles = nsToCycles(spec.l2Ns, point.freqGHz);
    m.memCycles = nsToCycles(spec.memNs, point.freqGHz);
    m.tlbMissCycles = nsToCycles(spec.tlbNs, point.freqGHz);
    m.validate();
    return m;
}

HierarchyConfig
hierarchyFor(const DesignPoint &point)
{
    HierarchyConfig h;
    h.l1i = {32 * 1024, 4, 64};
    h.l1d = {32 * 1024, 4, 64};
    h.l2 = {point.l2KB * 1024, point.l2Assoc, 64};
    h.itlb = {32, 4096};
    h.dtlb = {32, 4096};
    return h;
}

SimConfig
simConfigFor(const DesignPoint &point, const LatencySpec &spec)
{
    SimConfig cfg;
    cfg.machine = machineFor(point, spec);
    cfg.hierarchy = hierarchyFor(point);
    cfg.predictor = point.predictor;
    return cfg;
}

} // namespace mech
