#include "dse/design_space.hh"

#include <cmath>
#include <cstring>
#include <sstream>

#include "common/cli.hh"
#include "common/logging.hh"
#include "common/numfmt.hh"

namespace mech {

namespace {

/** Convert a nanosecond spec to cycles at @p freq_ghz (at least 1). */
Cycles
nsToCycles(double ns, double freq_ghz)
{
    return static_cast<Cycles>(
        std::max(1.0, std::ceil(ns * freq_ghz - 1e-9)));
}

/** Table 2 couples depth and frequency. */
double
freqForDepth(std::uint32_t depth)
{
    switch (depth) {
      case 5: return 0.6;
      case 7: return 0.8;
      case 9: return 1.0;
      default:
        fatal("unsupported pipeline depth ", depth,
              " (Table 2 uses 5/7/9)");
    }
}

/** The installed process-wide default spec (see activeLatencySpec). */
LatencySpec &
activeSpecStorage()
{
    static LatencySpec spec;
    return spec;
}

} // namespace

const LatencySpec &
activeLatencySpec()
{
    return activeSpecStorage();
}

void
setActiveLatencySpec(const LatencySpec &spec)
{
    activeSpecStorage() = spec;
}

std::string
DesignPoint::label() const
{
    std::ostringstream oss;
    oss << "L2:" << l2KB << "KB/" << l2Assoc << "w d" << depth << "@"
        << freqGHz << "GHz W" << width << " "
        << predictorName(predictor);
    if (!(ooo == OooParams{})) {
        oss << " rob" << ooo.robSize << "/iq" << ooo.iqSize << " fu"
            << ooo.fuAlu << "a" << ooo.fuMul << "m" << ooo.fuMem << "l"
            << ooo.fuBr << "b/" << ooo.resultBuses << "bus";
    }
    return oss.str();
}

std::string
DesignPoint::toKey() const
{
    std::ostringstream oss;
    oss << "l2kb=" << l2KB << ",assoc=" << l2Assoc
        << ",depth=" << depth << ",freq=" << exactDouble(freqGHz)
        << ",width=" << width << ",pred=" << predictorKey(predictor);
    // Out-of-order fields only when non-default: default-core keys
    // stay byte-identical to the pre-OoO-axes format.
    const OooParams defaults;
    if (ooo.robSize != defaults.robSize)
        oss << ",rob=" << ooo.robSize;
    if (ooo.iqSize != defaults.iqSize)
        oss << ",iq=" << ooo.iqSize;
    if (ooo.fuAlu != defaults.fuAlu)
        oss << ",fualu=" << ooo.fuAlu;
    if (ooo.fuMul != defaults.fuMul)
        oss << ",fumul=" << ooo.fuMul;
    if (ooo.fuMem != defaults.fuMem)
        oss << ",fumem=" << ooo.fuMem;
    if (ooo.fuBr != defaults.fuBr)
        oss << ",fubr=" << ooo.fuBr;
    if (ooo.resultBuses != defaults.resultBuses)
        oss << ",buses=" << ooo.resultBuses;
    return oss.str();
}

std::optional<DesignPoint>
DesignPoint::fromKey(std::string_view key)
{
    DesignPoint p;
    // The six core fields are required; the out-of-order fields are
    // optional and default when absent (pre-OoO keys stay parseable).
    static const char *const kFields[] = {
        "l2kb", "assoc", "depth", "freq",  "width", "pred", "rob",
        "iq",   "fualu", "fumul", "fumem", "fubr",  "buses"};
    constexpr std::size_t kNumFields = 13;
    constexpr std::size_t kNumRequired = 6;
    bool seen[kNumFields] = {};
    for (const std::string &field : cli::splitCsv(std::string(key))) {
        std::size_t eq = field.find('=');
        if (eq == std::string::npos)
            return std::nullopt;
        std::string name = field.substr(0, eq);
        std::string value = field.substr(eq + 1);
        if (value.empty())
            return std::nullopt;
        // A repeated field is malformed, not a last-one-wins update.
        for (std::size_t f = 0; f < kNumFields; ++f) {
            if (name == kFields[f] && seen[f])
                return std::nullopt;
        }
        bool ok;
        if (name == "pred") {
            auto kind = predictorFromKey(value);
            ok = kind.has_value();
            if (ok)
                p.predictor = *kind;
            seen[5] = true;
        } else if (name == "freq") {
            ok = parseF64(value, &p.freqGHz) &&
                 std::isfinite(p.freqGHz) && p.freqGHz > 0.0;
            seen[3] = true;
        } else if (name == "l2kb") {
            ok = parseU64(value, &p.l2KB);
            seen[0] = true;
        } else if (name == "assoc") {
            ok = parseU32(value, &p.l2Assoc);
            seen[1] = true;
        } else if (name == "depth") {
            ok = parseU32(value, &p.depth);
            seen[2] = true;
        } else if (name == "width") {
            ok = parseU32(value, &p.width);
            seen[4] = true;
        } else if (name == "rob") {
            ok = parseU32(value, &p.ooo.robSize);
            seen[6] = true;
        } else if (name == "iq") {
            ok = parseU32(value, &p.ooo.iqSize);
            seen[7] = true;
        } else if (name == "fualu") {
            ok = parseU32(value, &p.ooo.fuAlu);
            seen[8] = true;
        } else if (name == "fumul") {
            ok = parseU32(value, &p.ooo.fuMul);
            seen[9] = true;
        } else if (name == "fumem") {
            ok = parseU32(value, &p.ooo.fuMem);
            seen[10] = true;
        } else if (name == "fubr") {
            ok = parseU32(value, &p.ooo.fuBr);
            seen[11] = true;
        } else if (name == "buses") {
            ok = parseU32(value, &p.ooo.resultBuses);
            seen[12] = true;
        } else {
            ok = false;
        }
        if (!ok)
            return std::nullopt;
    }
    for (std::size_t f = 0; f < kNumRequired; ++f) {
        if (!seen[f])
            return std::nullopt;
    }
    return p;
}

std::uint64_t
DesignPoint::hash() const
{
    // FNV-1a, 64-bit; every field is widened to 8 little-endian-style
    // bytes so the encoding never depends on host integer widths.
    std::uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](std::uint64_t v) {
        for (int byte = 0; byte < 8; ++byte) {
            h ^= (v >> (byte * 8)) & 0xffu;
            h *= 0x100000001b3ull;
        }
    };
    std::uint64_t freq_bits;
    static_assert(sizeof(freq_bits) == sizeof(freqGHz));
    std::memcpy(&freq_bits, &freqGHz, sizeof(freq_bits));
    mix(l2KB);
    mix(l2Assoc);
    mix(depth);
    mix(freq_bits);
    mix(width);
    mix(static_cast<std::uint64_t>(predictor));
    mix(ooo.robSize);
    mix(ooo.iqSize);
    mix(ooo.fuAlu);
    mix(ooo.fuMul);
    mix(ooo.fuMem);
    mix(ooo.fuBr);
    mix(ooo.resultBuses);
    return h;
}

std::vector<DesignPoint>
table2Space()
{
    std::vector<DesignPoint> space;
    const std::uint64_t l2_sizes[] = {128, 256, 512, 1024};
    const std::uint32_t l2_assocs[] = {8, 16};
    const std::uint32_t depths[] = {5, 7, 9};
    const std::uint32_t widths[] = {1, 2, 3, 4};
    const PredictorKind predictors[] = {PredictorKind::Gshare1K,
                                        PredictorKind::Hybrid3K5};

    for (std::uint64_t l2 : l2_sizes) {
        for (std::uint32_t assoc : l2_assocs) {
            for (std::uint32_t depth : depths) {
                for (std::uint32_t width : widths) {
                    for (PredictorKind pred : predictors) {
                        DesignPoint p;
                        p.l2KB = l2;
                        p.l2Assoc = assoc;
                        p.depth = depth;
                        p.freqGHz = freqForDepth(depth);
                        p.width = width;
                        p.predictor = pred;
                        space.push_back(p);
                    }
                }
            }
        }
    }
    MECH_ASSERT(space.size() == 192, "Table 2 space must have 192 points");
    return space;
}

DesignPoint
defaultDesignPoint()
{
    DesignPoint p;
    p.l2KB = 512;
    p.l2Assoc = 8;
    p.depth = 9;
    p.freqGHz = 1.0;
    p.width = 4;
    p.predictor = PredictorKind::Gshare1K;
    return p;
}

MachineParams
machineFor(const DesignPoint &point, const LatencySpec &spec)
{
    MachineParams m;
    m.width = point.width;
    MECH_ASSERT(point.depth > 3, "need at least one front-end stage");
    m.frontendDepth = point.depth - 3; // EX/MEM/WB form the back end
    m.freqGHz = point.freqGHz;
    m.latIntMult = nsToCycles(spec.intMultNs, point.freqGHz);
    m.latIntDiv = nsToCycles(spec.intDivNs, point.freqGHz);
    m.latFpAlu = nsToCycles(spec.fpAluNs, point.freqGHz);
    m.latFpMult = nsToCycles(spec.fpMultNs, point.freqGHz);
    m.latFpDiv = nsToCycles(spec.fpDivNs, point.freqGHz);
    m.dl1HitCycles = spec.dl1Cycles;
    m.l2HitCycles = nsToCycles(spec.l2Ns, point.freqGHz);
    m.memCycles = nsToCycles(spec.memNs, point.freqGHz);
    m.tlbMissCycles = nsToCycles(spec.tlbNs, point.freqGHz);
    m.validate();
    return m;
}

HierarchyConfig
hierarchyFor(const DesignPoint &point)
{
    HierarchyConfig h;
    h.l1i = {32 * 1024, 4, 64};
    h.l1d = {32 * 1024, 4, 64};
    h.l2 = {point.l2KB * 1024, point.l2Assoc, 64};
    h.itlb = {32, 4096};
    h.dtlb = {32, 4096};
    return h;
}

SimConfig
simConfigFor(const DesignPoint &point, const LatencySpec &spec)
{
    SimConfig cfg;
    cfg.machine = machineFor(point, spec);
    cfg.hierarchy = hierarchyFor(point);
    cfg.predictor = point.predictor;
    return cfg;
}

} // namespace mech
