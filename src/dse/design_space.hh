/**
 * @file
 * The paper's Table 2 design space.
 *
 * 192 design points: L2 size {128,256,512,1024} KiB x associativity
 * {8,16} x pipeline depth/frequency {5/600 MHz, 7/800 MHz, 9/1 GHz} x
 * width {1,2,3,4} x branch predictor {1 KiB gshare, 3.5 KiB hybrid}.
 * L1s are fixed at 32 KiB 4-way 64 B; the L2 latency is a 10 ns spec
 * (Table 2) converted to cycles at each point's frequency, as are the
 * memory, TLB and functional-unit latencies.
 */

#ifndef MECH_DSE_DESIGN_SPACE_HH
#define MECH_DSE_DESIGN_SPACE_HH

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "branch/predictor.hh"
#include "cache/hierarchy.hh"
#include "isa/machine_params.hh"
#include "ooo/ooo_params.hh"
#include "sim/inorder_sim.hh"

namespace mech {

/** One point of the Table 2 design space. */
struct DesignPoint
{
    /** Unified L2 capacity in KiB. */
    std::uint64_t l2KB = 512;

    /** L2 associativity. */
    std::uint32_t l2Assoc = 8;

    /** Total pipeline depth (5, 7 or 9 stages). */
    std::uint32_t depth = 9;

    /** Clock frequency in GHz (tied to depth in Table 2). */
    double freqGHz = 1.0;

    /** Superscalar width. */
    std::uint32_t width = 4;

    /** Branch predictor design. */
    PredictorKind predictor = PredictorKind::Gshare1K;

    /**
     * Out-of-order core structures (ROB, issue queue, FU mix, result
     * buses).  Consumed by the "ooo" and "oosim" backends; in-order
     * backends ignore it.  Full member of the point's identity.
     */
    OooParams ooo;

    /** Compact human-readable label. */
    std::string label() const;

    /**
     * Round-trippable string identity, e.g.
     * "l2kb=512,assoc=8,depth=9,freq=1,width=4,pred=gshare1k".
     *
     * Unlike label() (a lossy display string), toKey() encodes every
     * field exactly — the frequency with full double precision — so
     * fromKey(toKey()) == *this always holds.  Used by the search
     * subsystem's JSON artifacts and the evaluation cache diagnostics.
     *
     * Out-of-order fields (rob, iq, fualu, fumul, fumem, fubr, buses)
     * are appended only when they differ from the OooParams defaults,
     * so keys minted before the out-of-order axes existed remain
     * valid and default-core keys are unchanged.
     */
    std::string toKey() const;

    /** Parse a toKey() string; nullopt on any malformed input. */
    static std::optional<DesignPoint> fromKey(std::string_view key);

    /**
     * Stable FNV-1a content hash over every field.
     *
     * Deterministic across runs, processes and platforms (the
     * frequency hashes by IEEE-754 bit pattern), so it can key
     * persistent artifacts as well as in-memory caches.  Equal points
     * hash equal; the full Table 2 grid is collision-free (tested).
     */
    std::uint64_t hash() const;

    /** Exact field-wise equality (the identity hash() agrees with). */
    bool operator==(const DesignPoint &other) const = default;
};

/** Hasher for unordered containers keyed by DesignPoint. */
struct DesignPointHash
{
    std::size_t
    operator()(const DesignPoint &point) const
    {
        return static_cast<std::size_t>(point.hash());
    }
};

/** Nanosecond latency specifications shared across the space. */
struct LatencySpec
{
    double l2Ns = 10.0;     ///< Table 2: "10ns latency"
    double memNs = 60.0;    ///< main memory
    double tlbNs = 30.0;    ///< page walk
    double intMultNs = 4.0;
    double intDivNs = 20.0;
    double fpAluNs = 4.0;
    double fpMultNs = 5.0;
    double fpDivNs = 24.0;

    /**
     * L1D-hit memory-stage occupancy, in cycles applied as-is (no
     * frequency conversion — Table 2 pins the L1 at one cycle
     * regardless of clock, and converting a nanosecond spec would
     * silently move the default configurations at 0.6/0.8 GHz).
     * Loaded machine descriptions (.mdesc) override it.
     */
    Cycles dl1Cycles = 1;

    bool operator==(const LatencySpec &other) const = default;
};

/**
 * The process-wide latency spec that machineFor()/simConfigFor()/
 * oooSimConfigFor() default to.  Defaults to LatencySpec{}; tools
 * loading a `.mdesc` machine description install its latency table
 * here once at startup (before any threads evaluate), which routes
 * every backend, study and serve path onto the loaded description
 * without threading a spec through each call site.
 */
const LatencySpec &activeLatencySpec();

/**
 * Install @p spec as the process-wide default.  Not thread-safe:
 * call during single-threaded startup, before evaluations begin.
 */
void setActiveLatencySpec(const LatencySpec &spec);

/** The full 192-point space in deterministic order. */
std::vector<DesignPoint> table2Space();

/** The paper's default configuration (Table 2, middle column). */
DesignPoint defaultDesignPoint();

/** Core machine parameters for a design point (ns -> cycles). */
MachineParams machineFor(const DesignPoint &point,
                         const LatencySpec &spec = activeLatencySpec());

/** Cache hierarchy geometry for a design point. */
HierarchyConfig hierarchyFor(const DesignPoint &point);

/** Complete simulator configuration for a design point. */
SimConfig simConfigFor(const DesignPoint &point,
                       const LatencySpec &spec = activeLatencySpec());

} // namespace mech

#endif // MECH_DSE_DESIGN_SPACE_HH
