#include "dse/study.hh"

#include "workload/builder.hh"

namespace mech {

namespace {

/** Profiling configuration shared by all studies. */
ProfilerConfig
studyProfilerConfig()
{
    ProfilerConfig cfg;
    cfg.hierarchy = hierarchyFor(defaultDesignPoint());
    cfg.predictors = {PredictorKind::Gshare1K, PredictorKind::Hybrid3K5};
    cfg.captureL2Stream = true;
    return cfg;
}

} // namespace

DseStudy::DseStudy(const BenchmarkProfile &bench, InstCount trace_len)
    : benchName(bench.name)
{
    dynTrace = generateTrace(bench, trace_len);
    prof = profileTrace(dynTrace, studyProfilerConfig());
}

DseStudy::DseStudy(const BenchmarkProfile &bench, InstCount trace_len,
                   const Program &program)
    : benchName(bench.name)
{
    TraceExecutor exec(program, bench.seed ^ 0xabcdef1234567890ull);
    dynTrace = exec.run(trace_len);
    prof = profileTrace(dynTrace, studyProfilerConfig());
}

const MemoryStats *
DseStudy::findMemo(const DesignPoint &point) const
{
    auto it = l2Memo.find(std::make_pair(point.l2KB, point.l2Assoc));
    return it != l2Memo.end() ? &it->second : nullptr;
}

const MemoryStats &
DseStudy::memoryFor(const DesignPoint &point)
{
    if (const MemoryStats *memo = findMemo(point))
        return *memo;
    return l2Memo
        .emplace(std::make_pair(point.l2KB, point.l2Assoc),
                 computeMemory(point))
        .first->second;
}

MemoryStats
DseStudy::computeMemory(const DesignPoint &point) const
{
    const DesignPoint def = defaultDesignPoint();
    if (point.l2KB == def.l2KB && point.l2Assoc == def.l2Assoc)
        return prof.memory;

    CacheConfig l2{point.l2KB * 1024, point.l2Assoc, 64};
    return resweepL2(prof, l2);
}

void
DseStudy::prepare(const std::vector<DesignPoint> &points)
{
    for (const auto &point : points)
        memoryFor(point);
}

ActivityCounts
DseStudy::activityFor(const MemoryStats &mem, double cycles) const
{
    ActivityCounts a;
    a.cycles = cycles;
    a.instructions = static_cast<double>(prof.program.n);
    a.l1iAccesses = a.instructions;
    a.l1dAccesses =
        static_cast<double>(prof.program.mix.of(OpClass::Load) +
                            prof.program.mix.of(OpClass::Store));
    a.l2Accesses = static_cast<double>(
        mem.iFetchL2Hits + mem.iFetchMemory + mem.loadL2Hits +
        mem.loadMemory + mem.storeL1Misses);
    a.memAccesses =
        static_cast<double>(mem.iFetchMemory + mem.loadMemory);
    a.branches = static_cast<double>(prof.program.branches);
    return a;
}

PointEvaluation
DseStudy::evaluateWith(const MemoryStats &mem, const DesignPoint &point,
                       bool run_sim) const
{
    PointEvaluation ev;
    ev.point = point;

    const BranchProfile &bp = prof.branchProfileFor(point.predictor);
    MachineParams machine = machineFor(point);

    ev.model = evaluateInOrder(prof.program, mem, bp, machine);

    PowerModel power(machine, hierarchyFor(point), point.predictor);
    ev.modelEdp = power.edp(activityFor(mem, ev.model.cycles));

    if (run_sim) {
        ev.sim = simulateInOrder(dynTrace, simConfigFor(point));
        ev.simEdp = power.edp(
            activityFor(mem, static_cast<double>(ev.sim->cycles)));
    }
    return ev;
}

PointEvaluation
DseStudy::evaluate(const DesignPoint &point, bool run_sim)
{
    return evaluateWith(memoryFor(point), point, run_sim);
}

PointEvaluation
DseStudy::evaluate(const DesignPoint &point, bool run_sim) const
{
    if (const MemoryStats *memo = findMemo(point))
        return evaluateWith(*memo, point, run_sim);
    return evaluateWith(computeMemory(point), point, run_sim);
}

} // namespace mech
