#include "dse/study.hh"

#include <filesystem>

#include "workload/builder.hh"

namespace mech {

namespace {

/** Profiling configuration shared by all studies. */
ProfilerConfig
studyProfilerConfig()
{
    ProfilerConfig cfg;
    cfg.hierarchy = hierarchyFor(defaultDesignPoint());
    cfg.predictors = {PredictorKind::Gshare1K, PredictorKind::Hybrid3K5};
    cfg.captureL2Stream = true;
    return cfg;
}

} // namespace

DseStudy::DseStudy(const BenchmarkProfile &bench, InstCount trace_len)
    : benchName(bench.name)
{
    dynTrace = generateTrace(bench, trace_len);
    prof = profileTrace(dynTrace, studyProfilerConfig());
}

DseStudy::DseStudy(const BenchmarkProfile &bench, InstCount trace_len,
                   const Program &program)
    : benchName(bench.name)
{
    TraceExecutor exec(program, bench.seed ^ 0xabcdef1234567890ull);
    dynTrace = exec.run(trace_len);
    prof = profileTrace(dynTrace, studyProfilerConfig());
}

DseStudy::DseStudy(ProfileArtifact artifact)
    : benchName(std::move(artifact.name)),
      dynTrace(std::move(artifact.trace)),
      prof(std::move(artifact.profile))
{
}

ProfileArtifact
DseStudy::artifact(bool include_trace) const
{
    ProfileArtifact out;
    out.name = benchName;
    out.profile = prof;
    out.hasTrace = include_trace && !dynTrace.empty();
    if (out.hasTrace)
        out.trace = dynTrace;
    return out;
}

void
DseStudy::save(const std::string &path, bool include_trace) const
{
    saveProfileArtifact(artifact(include_trace), path);
}

DseStudy
DseStudy::load(const std::string &path)
{
    return DseStudy(loadProfileArtifact(path));
}

DseStudy
DseStudy::loadOrProfile(const std::string &dir,
                        const BenchmarkProfile &bench,
                        InstCount trace_len)
{
    if (!dir.empty()) {
        std::string path = profileArtifactPath(dir, bench.name);
        if (std::filesystem::exists(path)) {
            try {
                return load(path);
            } catch (const ProfileIoError &e) {
                // A damaged artifact is a user-input problem, not a
                // library bug: report it cleanly instead of letting
                // the exception escape (or terminate a worker).
                fatal("cannot load profile artifact '", path,
                      "': ", e.what());
            }
        }
    }
    return DseStudy(bench, trace_len);
}

const MemoryStats *
DseStudy::findMemo(const DesignPoint &point) const
{
    auto it = l2Memo.find(std::make_pair(point.l2KB, point.l2Assoc));
    return it != l2Memo.end() ? &it->second : nullptr;
}

const MemoryStats &
DseStudy::memoryFor(const DesignPoint &point)
{
    if (const MemoryStats *memo = findMemo(point))
        return *memo;
    return l2Memo
        .emplace(std::make_pair(point.l2KB, point.l2Assoc),
                 computeMemory(point))
        .first->second;
}

MemoryStats
DseStudy::computeMemory(const DesignPoint &point) const
{
    const DesignPoint def = defaultDesignPoint();
    if (point.l2KB == def.l2KB && point.l2Assoc == def.l2Assoc)
        return prof.memory;

    CacheConfig l2{point.l2KB * 1024, point.l2Assoc, 64};
    return resweepL2(prof, l2);
}

void
DseStudy::prepare(const std::vector<DesignPoint> &points)
{
    for (const auto &point : points)
        memoryFor(point);
}

PointEvaluation
DseStudy::evaluateWith(const MemoryStats &mem, const DesignPoint &point,
                       const BackendSet &backends) const
{
    PointEvaluation ev;
    evaluateWithInto(ev, mem, point, backends);
    return ev;
}

void
DseStudy::evaluateWithInto(PointEvaluation &out, const MemoryStats &mem,
                           const DesignPoint &point,
                           const BackendSet &backends) const
{
    out.point = point;
    // resize + assign rather than clear + push_back: a warm scratch
    // keeps its element storage, and a model-backend EvalResult holds
    // no heap state (SSO name, flat stack, disengaged detail), so the
    // assignment allocates nothing.
    out.results.resize(backends.size());

    EvalRequest req;
    req.program = &prof.program;
    req.memory = &mem;
    req.branch = &prof.branchProfileFor(point.predictor);
    req.trace = dynTrace.empty() ? nullptr : &dynTrace;
    req.point = point;

    for (std::size_t i = 0; i < backends.size(); ++i) {
        MECH_ASSERT(backends[i], "null backend in set");
        out.results[i] = backends[i]->evaluate(req);
    }
}

PointEvaluation
DseStudy::evaluate(const DesignPoint &point, const BackendSet &backends)
{
    return evaluateWith(memoryFor(point), point, backends);
}

PointEvaluation
DseStudy::evaluate(const DesignPoint &point,
                   const BackendSet &backends) const
{
    if (const MemoryStats *memo = findMemo(point))
        return evaluateWith(*memo, point, backends);
    return evaluateWith(computeMemory(point), point, backends);
}

void
DseStudy::evaluateInto(PointEvaluation &out, const DesignPoint &point,
                       const BackendSet &backends) const
{
    if (const MemoryStats *memo = findMemo(point)) {
        evaluateWithInto(out, *memo, point, backends);
        return;
    }
    evaluateWithInto(out, computeMemory(point), point, backends);
}

} // namespace mech
