/**
 * @file
 * Design-space study driver: the paper's "profile once, predict the
 * whole space" workflow (Figs. 3, 5, 9).
 *
 * Per benchmark: one trace generation, one profiling pass (capturing
 * the L2 input stream and training both Table 2 predictors), then
 * evaluation at any design point through any set of registered
 * EvalBackends — the analytical model at microseconds per point,
 * optionally backed by the detailed simulator or the out-of-order
 * interval model for the same point.
 *
 * A study is also a serializable artifact: save() persists the
 * profile (and trace) as an `.mprof` file, and load() reconstitutes
 * an equivalent study in another process, producing bit-identical
 * model results (see profiler/profile_io.hh).
 */

#ifndef MECH_DSE_STUDY_HH
#define MECH_DSE_STUDY_HH

#include <cmath>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "dse/design_space.hh"
#include "eval/registry.hh"
#include "profiler/profile_io.hh"
#include "profiler/profiler.hh"
#include "workload/executor.hh"
#include "workload/profile.hh"
#include "workload/program.hh"

namespace mech {

/**
 * Outcome of evaluating one design point for one benchmark: one
 * EvalResult per requested backend, in backend-set order.
 */
struct PointEvaluation
{
    DesignPoint point;

    /** results[i] comes from the i-th backend of the requested set. */
    std::vector<EvalResult> results;

    /** Result of backend @p backend, or null when it did not run. */
    const EvalResult *
    find(std::string_view backend) const
    {
        for (const auto &res : results) {
            if (res.backend == backend)
                return &res;
        }
        return nullptr;
    }

    /** True when backend @p backend ran. */
    bool has(std::string_view backend) const { return find(backend); }

    /** Result of backend @p backend; panics when it did not run. */
    const EvalResult &
    of(std::string_view backend) const
    {
        if (const EvalResult *res = find(backend))
            return *res;
        panic("no result from backend '", backend,
              "' in this evaluation");
    }

    /** The analytical model's result; panics when "model" did not run. */
    const EvalResult &model() const { return of(kModelBackend); }

    /** The detailed simulation's result, or null when "sim" did not run. */
    const EvalResult *sim() const { return find(kSimBackend); }

    /**
     * Absolute relative CPI error of backend @p predicted against
     * backend @p reference.
     *
     * Empty unless both backends ran — callers must not conflate "no
     * reference" with "perfect prediction".
     */
    std::optional<double>
    cpiErrorOf(std::string_view predicted, std::string_view reference)
        const
    {
        const EvalResult *m = find(predicted);
        const EvalResult *s = find(reference);
        if (!m || !s || s->cycles == 0.0)
            return std::nullopt;
        return std::abs(m->cycles - s->cycles) / s->cycles;
    }

    /**
     * Absolute relative CPI error of the in-order model vs the
     * in-order simulation ("model" vs "sim").
     */
    std::optional<double>
    cpiError() const
    {
        return cpiErrorOf(kModelBackend, kSimBackend);
    }

    /**
     * Absolute relative CPI error of the out-of-order interval model
     * vs the out-of-order simulation ("ooo" vs "oosim").
     */
    std::optional<double>
    oooCpiError() const
    {
        return cpiErrorOf(kOooBackend, kOoOSimBackend);
    }
};

/**
 * Per-benchmark design-space study.
 *
 * Holds the generated trace and the captured profile; evaluations of
 * individual points are cheap (model backends) or trace-replaying
 * (simulator backends).
 */
class DseStudy
{
  public:
    /**
     * @param bench Benchmark profile to study.
     * @param trace_len Dynamic instructions to generate.
     * @param program Optional pre-transformed program (compiler case
     *        study); defaults to the profile's own program.
     */
    DseStudy(const BenchmarkProfile &bench, InstCount trace_len);
    DseStudy(const BenchmarkProfile &bench, InstCount trace_len,
             const Program &program);

    /** Reconstitute a study from a loaded profile artifact. */
    explicit DseStudy(ProfileArtifact artifact);

    /**
     * Obtain a study for @p bench: loaded from its `.mprof` artifact
     * under @p dir when one exists (a damaged artifact is a fatal()
     * user error), otherwise profiled in-process at @p trace_len.
     * An empty @p dir always profiles.
     */
    static DseStudy loadOrProfile(const std::string &dir,
                                  const BenchmarkProfile &bench,
                                  InstCount trace_len);

    /**
     * Evaluate one design point with every backend in @p backends
     * (default: the analytical model only).
     */
    PointEvaluation
    evaluate(const DesignPoint &point,
             const BackendSet &backends = defaultBackends());

    /**
     * Thread-safe evaluation: identical results to the non-const
     * overload, but never mutates the study.  L2 geometries already
     * prepare()d (or profiled) are served from the memo; others are
     * re-derived locally on the calling thread without being cached.
     */
    PointEvaluation
    evaluate(const DesignPoint &point,
             const BackendSet &backends = defaultBackends()) const;

    /**
     * Thread-safe evaluation into a caller-owned result: bit-identical
     * to the const evaluate() overload, but reuses @p out's storage
     * instead of constructing a fresh PointEvaluation.  Sweep hot
     * loops pass a per-worker scratch (or the preassigned output
     * slot), so a model-speed evaluation performs no heap allocation
     * once the scratch has warmed up.
     */
    void evaluateInto(PointEvaluation &out, const DesignPoint &point,
                      const BackendSet &backends =
                          defaultBackends()) const;

    /**
     * Memoize MemoryStats for every distinct L2 geometry in
     * @p points, so subsequent const evaluations are pure lookups.
     * Call once before sharing the study read-only across threads.
     */
    void prepare(const std::vector<DesignPoint> &points);

    /**
     * Snapshot the study as a serializable artifact.
     *
     * @param include_trace Also embed the dynamic trace so detailed
     *        (trace-replaying) backends work on the loaded study.
     */
    ProfileArtifact artifact(bool include_trace = true) const;

    /** Persist the study as a profile artifact at @p path. */
    void save(const std::string &path, bool include_trace = true) const;

    /** Load a study saved with save().  Throws ProfileIoError. */
    static DseStudy load(const std::string &path);

    /** The workload profile (collected on the default hierarchy). */
    const WorkloadProfile &profile() const { return prof; }

    /** The generated trace (empty for trace-less loaded artifacts). */
    const Trace &trace() const { return dynTrace; }

    /** True when trace-replaying backends can run on this study. */
    bool hasTrace() const { return !dynTrace.empty(); }

    /** Benchmark name. */
    const std::string &name() const { return benchName; }

  private:
    /** Memoized stats for @p point's L2 geometry, or null on miss. */
    const MemoryStats *findMemo(const DesignPoint &point) const;

    /** Memoized MemoryStats per L2 geometry. */
    const MemoryStats &memoryFor(const DesignPoint &point);

    /** Derive MemoryStats for @p point without touching the memo. */
    MemoryStats computeMemory(const DesignPoint &point) const;

    /** Shared core of the mutable and const evaluate paths. */
    PointEvaluation evaluateWith(const MemoryStats &mem,
                                 const DesignPoint &point,
                                 const BackendSet &backends) const;

    /** evaluateWith() writing into caller-owned storage. */
    void evaluateWithInto(PointEvaluation &out, const MemoryStats &mem,
                          const DesignPoint &point,
                          const BackendSet &backends) const;

    std::string benchName;
    Trace dynTrace;
    WorkloadProfile prof;
    std::map<std::pair<std::uint64_t, std::uint32_t>, MemoryStats>
        l2Memo;
};

} // namespace mech

#endif // MECH_DSE_STUDY_HH
