/**
 * @file
 * Design-space study driver: the paper's "profile once, predict the
 * whole space" workflow (Figs. 3, 5, 9).
 *
 * Per benchmark: one trace generation, one profiling pass (capturing
 * the L2 input stream and training both Table 2 predictors), then
 * model evaluation at any design point for microseconds each —
 * optionally backed by a detailed simulation of the same point for
 * validation and EDP comparison.
 */

#ifndef MECH_DSE_STUDY_HH
#define MECH_DSE_STUDY_HH

#include <cmath>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "dse/design_space.hh"
#include "model/inorder_model.hh"
#include "power/power_model.hh"
#include "profiler/profiler.hh"
#include "sim/inorder_sim.hh"
#include "workload/executor.hh"
#include "workload/profile.hh"
#include "workload/program.hh"

namespace mech {

/** Outcome of evaluating one design point for one benchmark. */
struct PointEvaluation
{
    DesignPoint point;

    /** Analytical model prediction. */
    ModelResult model;

    /** Detailed simulation result (when requested). */
    std::optional<SimResult> sim;

    /** Model-side energy-delay product (J*s). */
    double modelEdp = 0.0;

    /** Simulation-side energy-delay product (J*s, when simulated). */
    double simEdp = 0.0;

    /** Absolute relative CPI error vs the simulation (if simulated). */
    double
    cpiError() const
    {
        if (!sim || sim->cycles == 0)
            return 0.0;
        double s = static_cast<double>(sim->cycles);
        return std::abs(model.cycles - s) / s;
    }
};

/**
 * Per-benchmark design-space study.
 *
 * Holds the generated trace and the captured profile; evaluations of
 * individual points are cheap (model) or trace-replaying (simulator).
 */
class DseStudy
{
  public:
    /**
     * @param bench Benchmark profile to study.
     * @param trace_len Dynamic instructions to generate.
     * @param program Optional pre-transformed program (compiler case
     *        study); defaults to the profile's own program.
     */
    DseStudy(const BenchmarkProfile &bench, InstCount trace_len);
    DseStudy(const BenchmarkProfile &bench, InstCount trace_len,
             const Program &program);

    /** Evaluate one design point; simulate when @p run_sim. */
    PointEvaluation evaluate(const DesignPoint &point, bool run_sim);

    /**
     * Thread-safe evaluation: identical results to the non-const
     * overload, but never mutates the study.  L2 geometries already
     * prepare()d (or profiled) are served from the memo; others are
     * re-derived locally on the calling thread without being cached.
     */
    PointEvaluation evaluate(const DesignPoint &point,
                             bool run_sim) const;

    /**
     * Memoize MemoryStats for every distinct L2 geometry in
     * @p points, so subsequent const evaluations are pure lookups.
     * Call once before sharing the study read-only across threads.
     */
    void prepare(const std::vector<DesignPoint> &points);

    /** The workload profile (collected on the default hierarchy). */
    const WorkloadProfile &profile() const { return prof; }

    /** The generated trace. */
    const Trace &trace() const { return dynTrace; }

    /** Benchmark name. */
    const std::string &name() const { return benchName; }

  private:
    /** Memoized stats for @p point's L2 geometry, or null on miss. */
    const MemoryStats *findMemo(const DesignPoint &point) const;

    /** Memoized MemoryStats per L2 geometry. */
    const MemoryStats &memoryFor(const DesignPoint &point);

    /** Derive MemoryStats for @p point without touching the memo. */
    MemoryStats computeMemory(const DesignPoint &point) const;

    /** Shared core of the mutable and const evaluate paths. */
    PointEvaluation evaluateWith(const MemoryStats &mem,
                                 const DesignPoint &point,
                                 bool run_sim) const;

    /** Activity counts shared by model- and sim-side EDP. */
    ActivityCounts activityFor(const MemoryStats &mem,
                               double cycles) const;

    std::string benchName;
    Trace dynTrace;
    WorkloadProfile prof;
    std::map<std::pair<std::uint64_t, std::uint32_t>, MemoryStats>
        l2Memo;
};

} // namespace mech

#endif // MECH_DSE_STUDY_HH
