#include "dse/study_runner.hh"

#include <algorithm>
#include <future>
#include <utility>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"

namespace mech {

StudyRunner::StudyRunner(std::vector<BenchmarkProfile> benches,
                         InstCount trace_len, BackendSet backends)
    : benches(std::move(benches)), traceLen(trace_len),
      backends_(std::move(backends))
{
    MECH_ASSERT(!backends_.empty(), "empty backend set");
}

StudyRunner::~StudyRunner() = default;

void
StudyRunner::useProfileDir(const std::string &dir)
{
    MECH_ASSERT(studies.empty(),
                "useProfileDir must precede the first evaluateAll");
    profileDir = dir;
}

const DseStudy &
StudyRunner::study(std::size_t bench_idx) const
{
    MECH_ASSERT(bench_idx < studies.size() && studies[bench_idx],
                "study not built; call evaluateAll first");
    return *studies[bench_idx];
}

ThreadPool &
StudyRunner::poolFor(unsigned nthreads)
{
    // nthreads <= 1 maps to a zero-worker pool that runs everything
    // inline on the calling thread — the strictly serial path.
    const unsigned workers = nthreads <= 1 ? 0 : nthreads;
    if (!pool_ || poolThreads_ != workers) {
        pool_.reset(); // join the old workers before spawning anew
        pool_ = std::make_unique<ThreadPool>(workers);
        poolThreads_ = workers;
    }
    return *pool_;
}

std::vector<StudyResult>
StudyRunner::evaluateAll(const std::vector<DesignPoint> &points,
                         unsigned nthreads)
{
    obs::TraceSpan span("study.evaluateAll", "dse");
    {
        static obs::Counter &sweeps =
            obs::MetricsRegistry::global().counter(
                "dse.sweeps", "evaluateAll sweeps run");
        static obs::Counter &evals =
            obs::MetricsRegistry::global().counter(
                "dse.points_evaluated",
                "(benchmark x point) evaluations requested of "
                "evaluateAll");
        sweeps.inc();
        evals.inc(benches.size() * points.size());
    }
    std::vector<StudyResult> results(benches.size());
    ThreadPool &pool = poolFor(nthreads);

    // Phase 1: obtain each benchmark's study — loaded from its saved
    // artifact when a profile directory supplies one, otherwise built
    // in-process (trace generation + the single profiling pass) —
    // and memoize every L2 geometry the sweep will touch.  After
    // this phase the studies are only read.  Profiling is
    // milliseconds-scale work, so the future-based submit() path is
    // the right tool here.
    if (studies.size() != benches.size())
        studies.resize(benches.size());
    {
        std::vector<std::future<void>> built;
        built.reserve(benches.size());
        for (std::size_t b = 0; b < benches.size(); ++b) {
            built.push_back(pool.submit([this, b, &points] {
                if (!studies[b]) {
                    studies[b] = std::make_unique<DseStudy>(
                        DseStudy::loadOrProfile(profileDir, benches[b],
                                                traceLen));
                }
                studies[b]->prepare(points);
            }));
        }
        // The pool now outlives this call, so every task must finish
        // before an exception may unwind past the locals (@p points)
        // the tasks reference: collect the first error, rethrow last.
        std::exception_ptr err;
        for (auto &f : built) {
            try {
                f.get();
            } catch (...) {
                if (!err)
                    err = std::current_exception();
            }
        }
        if (err)
            std::rethrow_exception(err);
    }

    // Phase 2: one parallelFor over the flattened (benchmark x point)
    // matrix.  Each chunk evaluates against its const studies and
    // writes its preassigned slots through a per-chunk scratch, so
    // aggregation is deterministic in design-space order regardless
    // of worker count or scheduling, and a model-speed evaluation
    // allocates nothing once the scratch is warm.
    //
    // Granularity: a model-only evaluation is microseconds, so the
    // matrix is chunked to ~8 chunks per pool participant — enough
    // slack for load balance, few enough that claim traffic is
    // negligible.  Detailed (trace-replaying) backends are orders of
    // magnitude slower per point and shard per point.
    for (std::size_t b = 0; b < benches.size(); ++b) {
        results[b].benchmark = benches[b].name;
        results[b].evals.resize(points.size());
    }
    if (points.empty())
        return results;

    const bool detailed =
        std::any_of(backends_.begin(), backends_.end(),
                    [](const EvalBackend *b) { return b->isDetailed(); });
    const std::size_t matrix = benches.size() * points.size();
    const std::size_t chunk = detailed ? 1 : pool.bulkChunk(matrix);

    StudyResult *res = results.data();
    const DesignPoint *pts = points.data();
    const std::size_t npts = points.size();
    const BackendSet &set = backends_;
    pool.parallelFor(
        matrix, chunk,
        [this, res, pts, npts, &set](std::size_t begin,
                                     std::size_t end) {
            for (std::size_t t = begin; t < end; ++t) {
                const std::size_t b = t / npts;
                const std::size_t i = t % npts;
                studies[b]->evaluateInto(res[b].evals[i], pts[i], set);
            }
        });

    return results;
}

} // namespace mech
