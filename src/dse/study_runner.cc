#include "dse/study_runner.hh"

#include <algorithm>
#include <future>
#include <utility>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace mech {

StudyRunner::StudyRunner(std::vector<BenchmarkProfile> benches,
                         InstCount trace_len, BackendSet backends)
    : benches(std::move(benches)), traceLen(trace_len),
      backends_(std::move(backends))
{
    MECH_ASSERT(!backends_.empty(), "empty backend set");
}

StudyRunner::~StudyRunner() = default;

void
StudyRunner::useProfileDir(const std::string &dir)
{
    MECH_ASSERT(studies.empty(),
                "useProfileDir must precede the first evaluateAll");
    profileDir = dir;
}

const DseStudy &
StudyRunner::study(std::size_t bench_idx) const
{
    MECH_ASSERT(bench_idx < studies.size() && studies[bench_idx],
                "study not built; call evaluateAll first");
    return *studies[bench_idx];
}

std::vector<StudyResult>
StudyRunner::evaluateAll(const std::vector<DesignPoint> &points,
                         unsigned nthreads)
{
    // Declared before the pool so they outlive it: if a task throws
    // and f.get() rethrows below, the pool destructor drains the
    // remaining queued tasks during unwinding, and those tasks write
    // into these vectors.
    std::vector<StudyResult> results(benches.size());
    std::vector<std::future<void>> done;

    // nthreads <= 1: a zero-worker pool runs every task inline on
    // this thread, in submission order — the strictly serial path.
    ThreadPool pool(nthreads <= 1 ? 0 : nthreads);

    // Phase 1: obtain each benchmark's study — loaded from its saved
    // artifact when a profile directory supplies one, otherwise built
    // in-process (trace generation + the single profiling pass) —
    // and memoize every L2 geometry the sweep will touch.  After
    // this phase the studies are only read.
    if (studies.size() != benches.size())
        studies.resize(benches.size());
    {
        std::vector<std::future<void>> built;
        built.reserve(benches.size());
        for (std::size_t b = 0; b < benches.size(); ++b) {
            built.push_back(pool.submit([this, b, &points] {
                if (!studies[b]) {
                    studies[b] = std::make_unique<DseStudy>(
                        DseStudy::loadOrProfile(profileDir, benches[b],
                                                traceLen));
                }
                studies[b]->prepare(points);
            }));
        }
        for (auto &f : built)
            f.get();
    }

    // Phase 2: shard the (benchmark x point) matrix.  Each task
    // evaluates against its const study and writes its preassigned
    // slots, so aggregation is deterministic in design-space order
    // regardless of worker count or scheduling.
    //
    // Granularity adapts to the size of the whole matrix rather than
    // a fixed per-benchmark scheme: a model-only evaluation is
    // microseconds — well under the queue/future cost of a task — so
    // the point count is chunked to yield ~8 tasks per worker across
    // all benchmarks together (enough slack for load balance, few
    // enough that task overhead stays negligible for small sweeps).
    // Detailed (trace-replaying) backends are orders of magnitude
    // slower per point and shard per point; the serial path takes
    // one task per benchmark since slicing buys nothing inline.
    const bool detailed =
        std::any_of(backends_.begin(), backends_.end(),
                    [](const EvalBackend *b) { return b->isDetailed(); });
    std::size_t chunk;
    if (detailed) {
        chunk = 1;
    } else if (nthreads <= 1) {
        chunk = std::max<std::size_t>(1, points.size());
    } else {
        const std::size_t matrix = benches.size() * points.size();
        const std::size_t target_tasks =
            static_cast<std::size_t>(nthreads) * 8;
        chunk = std::max<std::size_t>(1, matrix / target_tasks);
        chunk = std::min(chunk, std::max<std::size_t>(1, points.size()));
    }
    for (std::size_t b = 0; b < benches.size(); ++b) {
        results[b].benchmark = benches[b].name;
        results[b].evals.resize(points.size());
        const DseStudy &study = *studies[b];
        for (std::size_t start = 0; start < points.size();
             start += chunk) {
            const std::size_t end =
                std::min(points.size(), start + chunk);
            PointEvaluation *slots = results[b].evals.data();
            const DesignPoint *pts = points.data();
            const BackendSet *set = &backends_;
            done.push_back(
                pool.submit([&study, slots, pts, start, end, set] {
                    for (std::size_t i = start; i < end; ++i)
                        slots[i] = study.evaluate(pts[i], *set);
                }));
        }
    }
    for (auto &f : done)
        f.get();

    return results;
}

} // namespace mech
