/**
 * @file
 * Batched design-space evaluation across benchmarks and design points.
 *
 * The paper's workflow is profile-once / predict-everywhere: per
 * benchmark one trace generation and one profiling pass, then model
 * evaluations at microseconds per design point.  The (benchmark x
 * design point) evaluation matrix is embarrassingly parallel, so
 * StudyRunner shards it across a ThreadPool:
 *
 *   phase 1  one task per benchmark builds its DseStudy (trace +
 *            single profiling pass) and prepare()s every L2 geometry
 *            in the requested point list;
 *   phase 2  one task per (benchmark, point) evaluates the model (and
 *            optionally the detailed simulator) against the now
 *            read-only study, writing into a preallocated slot.
 *
 * Results are aggregated deterministically: slot (b, i) of the output
 * always holds benchmark b at points[i], independent of worker count
 * or scheduling.  With nthreads <= 1 no threads are spawned at all
 * (the pool runs tasks inline), so the serial path produces
 * bit-identical results through the very same code.
 */

#ifndef MECH_DSE_STUDY_RUNNER_HH
#define MECH_DSE_STUDY_RUNNER_HH

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "dse/design_space.hh"
#include "dse/study.hh"
#include "workload/profile.hh"

namespace mech {

/** All point evaluations for one benchmark, in design-space order. */
struct StudyResult
{
    /** Benchmark name. */
    std::string benchmark;

    /** evals[i] is the evaluation of points[i]. */
    std::vector<PointEvaluation> evals;
};

/** Parallel batch evaluator for (benchmark x design point) sweeps. */
class StudyRunner
{
  public:
    /**
     * @param benches Benchmarks to study (profiled once each).
     * @param trace_len Dynamic instructions per benchmark trace.
     * @param run_sim Also run the detailed simulation per point.
     */
    StudyRunner(std::vector<BenchmarkProfile> benches,
                InstCount trace_len, bool run_sim = false);
    ~StudyRunner();

    StudyRunner(const StudyRunner &) = delete;
    StudyRunner &operator=(const StudyRunner &) = delete;

    /**
     * Evaluate every benchmark at every design point.
     *
     * @param points Design points, evaluated in the given order.
     * @param nthreads Worker threads; <= 1 runs fully serial (and
     *        bit-identical) on the calling thread.
     * @return One StudyResult per benchmark, in suite order; each
     *         holds one PointEvaluation per point, in @p points
     *         order.  Deterministic for any @p nthreads.
     *
     * Profiles are built on first use and cached: a second
     * evaluateAll() on the same runner reuses them.
     */
    std::vector<StudyResult>
    evaluateAll(const std::vector<DesignPoint> &points,
                unsigned nthreads);

    /** Number of benchmarks under study. */
    std::size_t benchmarkCount() const { return benches.size(); }

    /** The per-benchmark study (built by evaluateAll), for drills. */
    const DseStudy &study(std::size_t bench_idx) const;

  private:
    std::vector<BenchmarkProfile> benches;
    InstCount traceLen;
    bool runSim;

    /** Built lazily by evaluateAll, then reused. */
    std::vector<std::unique_ptr<DseStudy>> studies;
};

} // namespace mech

#endif // MECH_DSE_STUDY_RUNNER_HH
