/**
 * @file
 * Batched design-space evaluation across benchmarks and design points.
 *
 * The paper's workflow is profile-once / predict-everywhere: per
 * benchmark one trace generation and one profiling pass, then model
 * evaluations at microseconds per design point.  The (benchmark x
 * design point) evaluation matrix is embarrassingly parallel, so
 * StudyRunner shards it across a ThreadPool:
 *
 *   phase 1  one task per benchmark builds its DseStudy (trace +
 *            single profiling pass — or a load from a saved .mprof
 *            artifact when a profile directory is configured) and
 *            prepare()s every L2 geometry in the requested point list;
 *   phase 2  one parallelFor over the flattened (benchmark, point)
 *            matrix evaluates the configured backend set against the
 *            now read-only studies, each chunk writing into its
 *            preassigned slots through a reusable scratch.
 *
 * The pool persists across evaluateAll() calls (rebuilt only when the
 * requested worker count changes): spawning and joining workers per
 * sweep used to dominate model-speed sweeps entirely and made the
 * dse_scaling ladder go backwards with threads.
 *
 * Which evaluation engines run is a registry-selected BackendSet
 * (eval/registry.hh): `backendSet("model")` for the pure analytical
 * sweep, `backendSet("model,sim")` to validate each point against the
 * detailed simulator, any other combination for custom backends.
 *
 * Results are aggregated deterministically: slot (b, i) of the output
 * always holds benchmark b at points[i], independent of worker count
 * or scheduling.  With nthreads <= 1 no threads are spawned at all
 * (the pool runs tasks inline), so the serial path produces
 * bit-identical results through the very same code.
 */

#ifndef MECH_DSE_STUDY_RUNNER_HH
#define MECH_DSE_STUDY_RUNNER_HH

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "dse/design_space.hh"
#include "dse/study.hh"
#include "eval/registry.hh"
#include "workload/profile.hh"

namespace mech {

class ThreadPool;

/** All point evaluations for one benchmark, in design-space order. */
struct StudyResult
{
    /** Benchmark name. */
    std::string benchmark;

    /** evals[i] is the evaluation of points[i]. */
    std::vector<PointEvaluation> evals;
};

/** Parallel batch evaluator for (benchmark x design point) sweeps. */
class StudyRunner
{
  public:
    /**
     * @param benches Benchmarks to study (profiled once each).
     * @param trace_len Dynamic instructions per benchmark trace.
     * @param backends Evaluation backends to run per point (default:
     *        the analytical model only).
     */
    StudyRunner(std::vector<BenchmarkProfile> benches,
                InstCount trace_len,
                BackendSet backends = defaultBackends());
    ~StudyRunner();

    StudyRunner(const StudyRunner &) = delete;
    StudyRunner &operator=(const StudyRunner &) = delete;

    /**
     * Load studies from `.mprof` artifacts under @p dir instead of
     * re-profiling: a benchmark whose artifact exists is loaded, the
     * rest are profiled in-process as usual.  Call before the first
     * evaluateAll().  Artifacts are produced by tools/mech_profile or
     * DseStudy::save().
     */
    void useProfileDir(const std::string &dir);

    /**
     * Evaluate every benchmark at every design point.
     *
     * @param points Design points, evaluated in the given order.
     * @param nthreads Worker threads; <= 1 runs fully serial (and
     *        bit-identical) on the calling thread.
     * @return One StudyResult per benchmark, in suite order; each
     *         holds one PointEvaluation per point, in @p points
     *         order.  Deterministic for any @p nthreads.
     *
     * Profiles are built on first use and cached: a second
     * evaluateAll() on the same runner reuses them.
     */
    std::vector<StudyResult>
    evaluateAll(const std::vector<DesignPoint> &points,
                unsigned nthreads);

    /** Number of benchmarks under study. */
    std::size_t benchmarkCount() const { return benches.size(); }

    /** The configured backend set. */
    const BackendSet &backendSet() const { return backends_; }

    /** The per-benchmark study (built by evaluateAll), for drills. */
    const DseStudy &study(std::size_t bench_idx) const;

  private:
    /** The persistent pool for @p nthreads workers, (re)built only
     *  when the requested count changes. */
    ThreadPool &poolFor(unsigned nthreads);

    std::vector<BenchmarkProfile> benches;
    InstCount traceLen;
    BackendSet backends_;
    std::string profileDir;

    /** Built lazily by evaluateAll, then reused. */
    std::vector<std::unique_ptr<DseStudy>> studies;

    /** Kept across calls so sweeps never pay thread spawn/join. */
    std::unique_ptr<ThreadPool> pool_;
    unsigned poolThreads_ = 0;
};

} // namespace mech

#endif // MECH_DSE_STUDY_RUNNER_HH
