/**
 * @file
 * The unified evaluation-backend API.
 *
 * Every predictor in the stack — the paper's analytical in-order
 * model, the cycle-accurate reference pipeline, the out-of-order
 * interval model — answers the same question: "how does this workload
 * perform at this design point?".  EvalBackend is that question as an
 * interface: an EvalRequest (a read-only view of a profiled workload
 * plus a DesignPoint) goes in, an EvalResult (cycles, CPI stack,
 * optional simulator detail, activity and energy) comes out.
 *
 * Backends are registered by name in a BackendRegistry (registry.hh),
 * so tools select evaluation engines with strings ("model,sim") and
 * new backends plug in without touching the DSE drivers.  Evaluations
 * must be deterministic and thread-safe: evaluate() is const and the
 * same request must produce bit-identical results on any thread.
 */

#ifndef MECH_EVAL_BACKEND_HH
#define MECH_EVAL_BACKEND_HH

#include <optional>
#include <string>
#include <string_view>

#include "dse/design_space.hh"
#include "model/cpi_stack.hh"
#include "oosim/oosim.hh"
#include "power/power_model.hh"
#include "profiler/profile_data.hh"
#include "sim/inorder_sim.hh"
#include "trace/trace.hh"

namespace mech {

/**
 * One evaluation request: a non-owning view of the profiled workload
 * plus the design point to evaluate it at.
 *
 * The profile pointers must outlive the call.  @c memory must already
 * match the request's L2 geometry (DseStudy's memoization does this);
 * @c trace may be null for backends that do not replay the trace
 * (EvalBackend::needsTrace() says which ones do).
 */
struct EvalRequest
{
    /** Machine-independent program statistics. */
    const ProgramStats *program = nullptr;

    /** Miss statistics for the point's memory hierarchy. */
    const MemoryStats *memory = nullptr;

    /** Profile of the point's branch predictor. */
    const BranchProfile *branch = nullptr;

    /** Dynamic trace (null unless the backend needsTrace()). */
    const Trace *trace = nullptr;

    /**
     * The design point under evaluation.  Carries everything a
     * backend may consume, including the out-of-order structures
     * (point.ooo) — there is no side-channel next to the point, so a
     * point's identity fully determines its results.
     */
    DesignPoint point;
};

/**
 * One backend's answer for one (workload, design point) pair.
 *
 * Every backend fills cycles, instructions, activity, energy and edp;
 * model backends additionally decompose cycles into a CPI stack, and
 * the detailed simulator attaches its stall diagnostics.
 */
struct EvalResult
{
    /** Registry name of the backend that produced this result. */
    std::string backend;

    /** Predicted (or simulated) execution cycles. */
    double cycles = 0.0;

    /** Cycle breakdown by mechanism (zero for backends without one). */
    CpiStack stack;

    /** True when @c stack carries a meaningful decomposition. */
    bool hasStack = false;

    /** Dynamic instruction count the result covers. */
    InstCount instructions = 0;

    /** Detailed simulator counters (InOrderSimBackend only). */
    std::optional<SimResult> detail;

    /** Out-of-order stall diagnostics (OoOSimBackend only). */
    std::optional<OoOSimResult> oooDetail;

    /** Activity counts the energy estimate is based on. */
    ActivityCounts activity;

    /** Energy estimate for the run. */
    EnergyBreakdown energy;

    /** Energy-delay product in joule-seconds. */
    double edp = 0.0;

    /** Cycles per instruction. */
    double
    cpi() const
    {
        return instructions ? cycles / static_cast<double>(instructions)
                            : 0.0;
    }

    /** Execution time in seconds at @p freq_ghz. */
    double
    seconds(double freq_ghz) const
    {
        return cycles / (freq_ghz * 1e9);
    }
};

/**
 * An evaluation engine.
 *
 * Implementations adapt one prediction or simulation technique to the
 * common request/result contract.  They hold no per-request state:
 * evaluate() is const and safe to call concurrently from any number
 * of threads, and must be deterministic (bit-identical results for
 * identical requests).
 */
class EvalBackend
{
  public:
    virtual ~EvalBackend() = default;

    /** Registry key ("model", "sim", "ooo", ...). */
    virtual std::string_view name() const = 0;

    /** One-line description for --help and registry listings. */
    virtual std::string_view description() const = 0;

    /**
     * True when one evaluation replays the whole trace (orders of
     * magnitude slower than a closed-form model).  Batch drivers use
     * this to pick sharding granularity.
     */
    virtual bool isDetailed() const { return false; }

    /** True when requests must carry a non-null trace. */
    virtual bool needsTrace() const { return false; }

    /**
     * True when the backend evaluates an out-of-order core and
     * therefore consumes the point's OooParams.  Drives the
     * validation that rejects out-of-order design axes when no
     * selected backend would ever read them.
     */
    virtual bool usesOoo() const { return false; }

    /** Evaluate one request.  Thread-safe and deterministic. */
    virtual EvalResult evaluate(const EvalRequest &request) const = 0;
};

} // namespace mech

#endif // MECH_EVAL_BACKEND_HH
