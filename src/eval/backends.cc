/**
 * @file
 * Built-in evaluation backends and the backend registry.
 *
 * Three adapters bridge the existing evaluation engines onto the
 * unified EvalBackend contract:
 *
 *  - ModelBackend ("model"): the paper's analytical in-order model
 *    (evaluateInOrder) — microseconds per design point;
 *  - InOrderSimBackend ("sim"): the cycle-accurate reference pipeline
 *    (simulateInOrder) — replays the whole trace per point;
 *  - OoOModelBackend ("ooo"): the out-of-order interval model
 *    (evaluateOutOfOrder) used by the paper's §6.1 comparison;
 *  - OoOSimBackend ("oosim"): the cycle-accurate out-of-order
 *    pipeline (simulateOutOfOrder) that validates the interval model
 *    the way "sim" validates "model".
 *
 * All backends finish their result identically: activity counts
 * derived from the profile, energy and EDP from the shared power
 * model — so results from different backends are directly comparable.
 */

#include "eval/registry.hh"

#include <chrono>

#include "common/cli.hh"
#include "common/logging.hh"
#include "model/inorder_model.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "ooo/ooo_model.hh"
#include "oosim/oosim.hh"
#include "sim/inorder_sim.hh"

namespace mech {

namespace {

/** Per-backend evaluation instruments, registered on first use. */
struct BackendEvalObs
{
    obs::Counter &evals;
    obs::LatencyHistogram &us;

    static BackendEvalObs
    make(const std::string &name)
    {
        auto &reg = obs::MetricsRegistry::global();
        return BackendEvalObs{
            reg.counter("eval.backend." + name + ".evals",
                        "Design-point evaluations through the '" +
                            name + "' backend"),
            reg.histogram("eval.backend." + name + ".us",
                          "Per-point evaluation latency of the '" +
                              name + "' backend, microseconds"),
        };
    }
};

/** Counts one evaluation, times it, and traces it as a span. */
class BackendEvalScope
{
  public:
    BackendEvalScope(BackendEvalObs &obs, const char *span_name)
        : obs(obs), span(span_name, "eval"),
          start(std::chrono::steady_clock::now())
    {
        obs.evals.inc();
    }

    ~BackendEvalScope()
    {
        const auto us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
        obs.us.record(static_cast<std::uint64_t>(us));
    }

  private:
    BackendEvalObs &obs;
    obs::TraceSpan span;
    std::chrono::steady_clock::time_point start;
};

/** Activity counts for a run of @p cycles over the profiled workload. */
ActivityCounts
activityFor(const EvalRequest &req, double cycles)
{
    const ProgramStats &program = *req.program;
    const MemoryStats &mem = *req.memory;

    ActivityCounts a;
    a.cycles = cycles;
    a.instructions = static_cast<double>(program.n);
    a.l1iAccesses = a.instructions;
    a.l1dAccesses = static_cast<double>(program.mix.of(OpClass::Load) +
                                        program.mix.of(OpClass::Store));
    a.l2Accesses = static_cast<double>(
        mem.iFetchL2Hits + mem.iFetchMemory + mem.loadL2Hits +
        mem.loadMemory + mem.storeL1Misses);
    a.memAccesses =
        static_cast<double>(mem.iFetchMemory + mem.loadMemory);
    a.branches = static_cast<double>(program.branches);
    return a;
}

/** Fill the activity/energy/EDP tail every backend shares. */
void
finishResult(EvalResult &res, const EvalRequest &req)
{
    PowerModel power(machineFor(req.point), hierarchyFor(req.point),
                     req.point.predictor);
    res.activity = activityFor(req, res.cycles);
    res.energy = power.energy(res.activity);
    res.edp = power.edp(res.activity);
}

/** Common request validation. */
void
checkRequest(const EvalRequest &req, const EvalBackend &backend)
{
    MECH_ASSERT(req.program && req.memory && req.branch,
                "EvalRequest must carry a profile view (backend ",
                backend.name(), ")");
    // A missing trace is a user-input condition (typically a profile
    // artifact written with --no-trace), not a library bug: report
    // it through the fatal() path.
    if (backend.needsTrace() && !req.trace) {
        fatal("backend '", backend.name(),
              "' replays the trace but the request carries none "
              "(profile artifact saved without its trace?)");
    }
}

/** The analytical superscalar in-order model (paper §3). */
class ModelBackend : public EvalBackend
{
  public:
    std::string_view name() const override { return kModelBackend; }

    std::string_view
    description() const override
    {
        return "analytical in-order model (microseconds per point)";
    }

    EvalResult
    evaluate(const EvalRequest &req) const override
    {
        checkRequest(req, *this);
        static BackendEvalObs obs = BackendEvalObs::make("model");
        BackendEvalScope scope(obs, "backend.model");
        ModelResult m = evaluateInOrder(*req.program, *req.memory,
                                        *req.branch,
                                        machineFor(req.point));
        EvalResult res;
        res.backend = std::string(name());
        res.cycles = m.cycles;
        res.stack = m.stack;
        res.hasStack = true;
        res.instructions = m.instructions;
        finishResult(res, req);
        return res;
    }
};

/** The cycle-accurate in-order reference pipeline. */
class InOrderSimBackend : public EvalBackend
{
  public:
    std::string_view name() const override { return kSimBackend; }

    std::string_view
    description() const override
    {
        return "cycle-accurate in-order pipeline (trace replay)";
    }

    bool isDetailed() const override { return true; }
    bool needsTrace() const override { return true; }

    EvalResult
    evaluate(const EvalRequest &req) const override
    {
        checkRequest(req, *this);
        static BackendEvalObs obs = BackendEvalObs::make("sim");
        BackendEvalScope scope(obs, "backend.sim");
        SimResult sim =
            simulateInOrder(*req.trace, simConfigFor(req.point));
        EvalResult res;
        res.backend = std::string(name());
        res.cycles = static_cast<double>(sim.cycles);
        res.instructions = sim.retired;
        res.detail = sim;
        finishResult(res, req);
        return res;
    }
};

/** The out-of-order interval model (paper §6.1 comparator). */
class OoOModelBackend : public EvalBackend
{
  public:
    std::string_view name() const override { return kOooBackend; }

    std::string_view
    description() const override
    {
        return "out-of-order interval model (MLP-aware)";
    }

    bool usesOoo() const override { return true; }

    EvalResult
    evaluate(const EvalRequest &req) const override
    {
        checkRequest(req, *this);
        static BackendEvalObs obs = BackendEvalObs::make("ooo");
        BackendEvalScope scope(obs, "backend.ooo");
        ModelResult m = evaluateOutOfOrder(*req.program, *req.memory,
                                           *req.branch,
                                           machineFor(req.point),
                                           req.point.ooo);
        EvalResult res;
        res.backend = std::string(name());
        res.cycles = m.cycles;
        res.stack = m.stack;
        res.hasStack = true;
        res.instructions = m.instructions;
        finishResult(res, req);
        return res;
    }
};

/** The cycle-accurate out-of-order pipeline. */
class OoOSimBackend : public EvalBackend
{
  public:
    std::string_view name() const override { return kOoOSimBackend; }

    std::string_view
    description() const override
    {
        return "cycle-accurate out-of-order pipeline (trace replay)";
    }

    bool isDetailed() const override { return true; }
    bool needsTrace() const override { return true; }
    bool usesOoo() const override { return true; }

    EvalResult
    evaluate(const EvalRequest &req) const override
    {
        checkRequest(req, *this);
        static BackendEvalObs obs = BackendEvalObs::make("oosim");
        BackendEvalScope scope(obs, "backend.oosim");
        OoOSimResult sim =
            simulateOutOfOrder(*req.trace, oooSimConfigFor(req.point));
        EvalResult res;
        res.backend = std::string(name());
        res.cycles = static_cast<double>(sim.cycles);
        res.instructions = sim.retired;
        res.oooDetail = sim;
        finishResult(res, req);
        return res;
    }
};

} // namespace

BackendRegistry &
BackendRegistry::global()
{
    static BackendRegistry *registry = [] {
        auto *r = new BackendRegistry;
        r->registerBackend(std::make_unique<ModelBackend>());
        r->registerBackend(std::make_unique<InOrderSimBackend>());
        r->registerBackend(std::make_unique<OoOModelBackend>());
        r->registerBackend(std::make_unique<OoOSimBackend>());
        return r;
    }();
    return *registry;
}

void
BackendRegistry::registerBackend(std::unique_ptr<EvalBackend> backend)
{
    MECH_ASSERT(backend, "null backend");
    if (find(backend->name()))
        fatal("backend '", backend->name(), "' registered twice");
    backends.push_back(std::move(backend));
}

const EvalBackend *
BackendRegistry::find(std::string_view name) const
{
    for (const auto &b : backends) {
        if (b->name() == name)
            return b.get();
    }
    return nullptr;
}

const EvalBackend &
BackendRegistry::at(std::string_view name) const
{
    if (const EvalBackend *b = find(name))
        return *b;
    std::string known;
    for (const auto &b : backends) {
        if (!known.empty())
            known += ',';
        known += b->name();
    }
    fatal("unknown backend '", name, "' (known: ", known, ")");
}

std::vector<std::string>
BackendRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(backends.size());
    for (const auto &b : backends)
        out.emplace_back(b->name());
    return out;
}

BackendSet
BackendRegistry::parseSet(std::string_view csv) const
{
    std::string error;
    auto set = tryParseSet(csv, &error);
    if (!set)
        fatal(error);
    return *set;
}

std::optional<BackendSet>
BackendRegistry::tryParseSet(std::string_view csv,
                             std::string *error) const
{
    BackendSet set;
    for (const std::string &token : cli::splitCsv(std::string(csv))) {
        if (token.empty()) {
            *error = "empty backend name in set '" +
                     std::string(csv) + "'";
            return std::nullopt;
        }
        const EvalBackend *backend = find(token);
        if (!backend) {
            std::string known;
            for (const std::string &name : names())
                known += (known.empty() ? "" : ", ") + name;
            *error = "unknown backend '" + token + "' (known: " +
                     known + ")";
            return std::nullopt;
        }
        for (const EvalBackend *b : set) {
            if (b == backend) {
                *error = "backend '" + token + "' listed twice in '" +
                         std::string(csv) + "'";
                return std::nullopt;
            }
        }
        set.push_back(backend);
    }
    return set;
}

BackendSet
backendSet(std::string_view csv)
{
    return BackendRegistry::global().parseSet(csv);
}

const BackendSet &
defaultBackends()
{
    static const BackendSet set = backendSet(kModelBackend);
    return set;
}

} // namespace mech
