/**
 * @file
 * String-keyed registry of evaluation backends.
 *
 * Tools and batch drivers select evaluation engines by name
 * (`--backend=model,sim`); the registry resolves those names to
 * EvalBackend instances.  The global() registry comes pre-loaded with
 * the built-in backends ("model", "sim", "ooo", "oosim"); additional
 * backends can be registered at startup before any evaluation begins.
 */

#ifndef MECH_EVAL_REGISTRY_HH
#define MECH_EVAL_REGISTRY_HH

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "eval/backend.hh"

namespace mech {

/** Names of the built-in backends. */
inline constexpr std::string_view kModelBackend = "model";
inline constexpr std::string_view kSimBackend = "sim";
inline constexpr std::string_view kOooBackend = "ooo";
inline constexpr std::string_view kOoOSimBackend = "oosim";

/**
 * An ordered set of backends to evaluate a request against.
 *
 * Non-owning: the pointers reference registry-owned (or otherwise
 * immortal) backends.  Order is preserved through evaluation — the
 * i-th EvalResult of a PointEvaluation comes from the i-th backend.
 */
using BackendSet = std::vector<const EvalBackend *>;

/** Registry mapping backend names to instances. */
class BackendRegistry
{
  public:
    /** An empty registry (built-ins are only in global()). */
    BackendRegistry() = default;

    BackendRegistry(const BackendRegistry &) = delete;
    BackendRegistry &operator=(const BackendRegistry &) = delete;

    /**
     * The process-wide registry, pre-loaded with the built-in
     * backends.  Construction is thread-safe; registering additional
     * backends is not and must happen before concurrent use.
     */
    static BackendRegistry &global();

    /**
     * Register @p backend under its name().
     *
     * Calls fatal() on a duplicate name (user/configuration error).
     */
    void registerBackend(std::unique_ptr<EvalBackend> backend);

    /** Look up a backend by name, or null when unknown. */
    const EvalBackend *find(std::string_view name) const;

    /**
     * Look up a backend by name; calls fatal() listing the known
     * names when @p name is unknown.
     */
    const EvalBackend &at(std::string_view name) const;

    /** Registered names, in registration order. */
    std::vector<std::string> names() const;

    /**
     * Resolve a comma-separated backend list ("model,sim") into an
     * ordered BackendSet.  Whitespace around names is ignored; empty
     * entries and unknown or duplicate names call fatal().
     */
    BackendSet parseSet(std::string_view csv) const;

    /**
     * parseSet() without the fatal(): nullopt plus a message in
     * @p error on rejection.  The serve layer resolves client-named
     * backend sets through this, turning a bad name into a structured
     * error response instead of terminating the server.
     */
    std::optional<BackendSet> tryParseSet(std::string_view csv,
                                          std::string *error) const;

  private:
    std::vector<std::unique_ptr<EvalBackend>> backends;
};

/** Resolve @p csv against the global registry ("model,sim"). */
BackendSet backendSet(std::string_view csv);

/** The default backend set: the analytical model only. */
const BackendSet &defaultBackends();

} // namespace mech

#endif // MECH_EVAL_REGISTRY_HH
