/**
 * @file
 * Core machine parameters shared by the analytical model and the
 * cycle-accurate reference simulator.
 *
 * These are the paper's "machine characteristics" (Table 1): width W,
 * front-end depth D, execution latencies of the non-unit instruction
 * classes, and the cache/TLB/memory latencies.  All latencies are in
 * cycles; the design-space driver converts nanosecond specs (Table 2
 * gives the L2 latency in ns) at the configured frequency.
 */

#ifndef MECH_ISA_MACHINE_PARAMS_HH
#define MECH_ISA_MACHINE_PARAMS_HH

#include <cstdint>

#include "common/logging.hh"
#include "common/types.hh"
#include "isa/op_class.hh"

namespace mech {

/** Machine description consumed by model and simulator. */
struct MachineParams
{
    /** Pipeline width W (instruction slots per stage). */
    std::uint32_t width = 4;

    /**
     * Front-end depth D in stages (fetch through decode).  The
     * paper's 5/7/9-stage pipelines keep a 3-stage back end
     * (execute, memory, writeback), so D = depth - 3.
     */
    std::uint32_t frontendDepth = 6;

    /** Execution latency of integer multiply. */
    Cycles latIntMult = 4;

    /** Execution latency of integer divide. */
    Cycles latIntDiv = 20;

    /** Execution latency of FP add/sub/cmp. */
    Cycles latFpAlu = 4;

    /** Execution latency of FP multiply. */
    Cycles latFpMult = 5;

    /** Execution latency of FP divide. */
    Cycles latFpDiv = 24;

    /** Memory-stage occupancy of an L1D-hit load. */
    Cycles dl1HitCycles = 1;

    /** Total service latency of an access that hits the L2. */
    Cycles l2HitCycles = 10;

    /** Additional latency of going to memory after an L2 miss. */
    Cycles memCycles = 60;

    /** Penalty of a TLB miss (page-walk latency). */
    Cycles tlbMissCycles = 30;

    /** Clock frequency in GHz (for time/energy conversions). */
    double freqGHz = 1.0;

    /** Execute-stage latency of op class @p oc. */
    Cycles
    execLatency(OpClass oc) const
    {
        switch (oc) {
          case OpClass::IntMult: return latIntMult;
          case OpClass::IntDiv: return latIntDiv;
          case OpClass::FpAlu: return latFpAlu;
          case OpClass::FpMult: return latFpMult;
          case OpClass::FpDiv: return latFpDiv;
          default: return 1;
        }
    }

    /** Total pipeline depth (front end + execute/memory/writeback). */
    std::uint32_t depth() const { return frontendDepth + 3; }

    bool operator==(const MachineParams &other) const = default;

    /** Validate invariants; calls fatal() on a bad configuration. */
    void
    validate() const
    {
        if (width < 1 || width > 16)
            fatal("width ", width, " out of supported range [1,16]");
        if (frontendDepth < 2)
            fatal("front-end depth must be >= 2 (fetch + decode)");
        if (dl1HitCycles < 1 || l2HitCycles < 1)
            fatal("cache latencies must be >= 1 cycle");
        if (freqGHz <= 0.0)
            fatal("frequency must be positive");
    }
};

} // namespace mech

#endif // MECH_ISA_MACHINE_PARAMS_HH
