/**
 * @file
 * Operation classes for the modeled ISA.
 *
 * The mechanistic model cares about instruction *classes*, not opcodes:
 * unit-latency integer work, the non-unit long-latency classes the
 * paper calls out (multiply, divide, and multi-cycle floating point),
 * loads (which produce in the memory stage), stores, and branches.
 */

#ifndef MECH_ISA_OP_CLASS_HH
#define MECH_ISA_OP_CLASS_HH

#include <array>
#include <cstdint>
#include <string_view>

namespace mech {

/** Coarse operation class of an instruction. */
enum class OpClass : std::uint8_t {
    IntAlu,  ///< single-cycle integer ALU op
    IntMult, ///< integer multiply (long latency)
    IntDiv,  ///< integer divide (long latency)
    FpAlu,   ///< floating-point add/sub/cmp (long latency)
    FpMult,  ///< floating-point multiply (long latency)
    FpDiv,   ///< floating-point divide (long latency)
    Load,    ///< memory read, produces in the memory stage
    Store,   ///< memory write, never blocks (ideal store buffer)
    Branch,  ///< conditional or unconditional control transfer
    Nop,     ///< no-operation (occupies a slot only)
};

/** Number of distinct OpClass values. */
inline constexpr std::size_t kNumOpClasses = 10;

/** Human-readable mnemonic for an op class. */
constexpr std::string_view
opClassName(OpClass oc)
{
    switch (oc) {
      case OpClass::IntAlu: return "IntAlu";
      case OpClass::IntMult: return "IntMult";
      case OpClass::IntDiv: return "IntDiv";
      case OpClass::FpAlu: return "FpAlu";
      case OpClass::FpMult: return "FpMult";
      case OpClass::FpDiv: return "FpDiv";
      case OpClass::Load: return "Load";
      case OpClass::Store: return "Store";
      case OpClass::Branch: return "Branch";
      case OpClass::Nop: return "Nop";
    }
    return "?";
}

/** True for memory-reading instructions. */
constexpr bool isLoad(OpClass oc) { return oc == OpClass::Load; }

/** True for memory-writing instructions. */
constexpr bool isStore(OpClass oc) { return oc == OpClass::Store; }

/** True for any memory-touching instruction. */
constexpr bool isMem(OpClass oc) { return isLoad(oc) || isStore(oc); }

/** True for control-transfer instructions. */
constexpr bool isBranch(OpClass oc) { return oc == OpClass::Branch; }

/**
 * True for classes whose *execute-stage* latency may exceed one cycle
 * on typical machines (the paper's non-unit long-latency classes,
 * loads excluded: loads are handled separately because they produce
 * their value in the memory stage).
 */
constexpr bool
isLongLatencyClass(OpClass oc)
{
    switch (oc) {
      case OpClass::IntMult:
      case OpClass::IntDiv:
      case OpClass::FpAlu:
      case OpClass::FpMult:
      case OpClass::FpDiv:
        return true;
      default:
        return false;
    }
}

/** All op classes, for iteration in tests and profilers. */
inline constexpr std::array<OpClass, kNumOpClasses> kAllOpClasses = {
    OpClass::IntAlu,  OpClass::IntMult, OpClass::IntDiv, OpClass::FpAlu,
    OpClass::FpMult,  OpClass::FpDiv,   OpClass::Load,   OpClass::Store,
    OpClass::Branch,  OpClass::Nop,
};

} // namespace mech

#endif // MECH_ISA_OP_CLASS_HH
