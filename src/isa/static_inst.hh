/**
 * @file
 * Static-instruction record used by the workload IR and the compiler
 * passes.
 *
 * A StaticInst describes one instruction slot in a basic block:
 * its op class and register operands, plus generator hints (memory
 * stream, branch behaviour) that the executor resolves into concrete
 * dynamic instances.
 */

#ifndef MECH_ISA_STATIC_INST_HH
#define MECH_ISA_STATIC_INST_HH

#include <cstdint>

#include "common/types.hh"
#include "isa/op_class.hh"

namespace mech {

/**
 * How a memory instruction walks the address space.
 *
 * The executor materializes these into concrete effective addresses;
 * the pattern determines cache behaviour (spatial streams hit, random
 * walks over big footprints miss).
 */
enum class MemPattern : std::uint8_t {
    None,       ///< not a memory instruction
    Sequential, ///< unit-stride stream over a region (walks forward)
    Strided,    ///< fixed non-unit stride over a region
    Random,     ///< uniform random within a region (pointer-ish)
    Pointer,    ///< serial random chain (each address depends on last)
};

/** One instruction slot of a basic block in the workload IR. */
struct StaticInst
{
    /**
     * Instruction address, assigned by Program::assignPcs() after the
     * IR is final (compiler passes invalidate and reassign it).
     */
    Addr pc = 0;

    /**
     * Dense id of this op's memory stream (mem ops only).  The trace
     * executor keeps per-stream cursor state indexed by this id.
     */
    std::uint32_t memStreamId = 0;

    /** Operation class. */
    OpClass op = OpClass::IntAlu;

    /** Destination register, kNoReg if none (stores, branches, nops). */
    RegIndex dst = kNoReg;

    /** First source register, kNoReg if unused. */
    RegIndex src1 = kNoReg;

    /** Second source register, kNoReg if unused. */
    RegIndex src2 = kNoReg;

    /** Memory access pattern (mem ops only). */
    MemPattern memPattern = MemPattern::None;

    /** Index of the memory region this op walks (mem ops only). */
    std::uint16_t memRegion = 0;

    /** Stride in bytes for MemPattern::Strided. */
    std::uint32_t stride = 0;

    /**
     * Branch-behaviour tag (branches only): identifies which dynamic
     * condition stream drives this branch (loop back-edge, biased
     * if-then, data-dependent, alternating...).
     */
    std::uint16_t branchStream = 0;

    /** True if this instruction writes a register. */
    bool hasDst() const { return dst != kNoReg; }

    /** Number of register sources actually used. */
    int
    numSrcs() const
    {
        return (src1 != kNoReg ? 1 : 0) + (src2 != kNoReg ? 1 : 0);
    }
};

} // namespace mech

#endif // MECH_ISA_STATIC_INST_HH
