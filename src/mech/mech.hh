/**
 * @file
 * Umbrella header: the full public API of mechsim.
 *
 * Typical flow (see examples/quickstart.cpp):
 *   1. pick a BenchmarkProfile (workload/suites.hh) or build your own;
 *   2. DseStudy profiles it once (or DseStudy::load() reuses a saved
 *      .mprof artifact — see profiler/profile_io.hh);
 *   3. evaluate() any design point with a registry-selected backend
 *      set: "model" for an instant prediction + CPI stack, "sim" for
 *      the cycle-accurate reference, "ooo" for the out-of-order
 *      interval model, "oosim" for the cycle-accurate out-of-order
 *      pipeline that validates it (eval/backend.hh, docs/api.md);
 *   4. or drop to the closed-form entry points directly:
 *      profileTrace() + evaluateInOrder() / simulateInOrder().
 */

#ifndef MECH_MECH_HH
#define MECH_MECH_HH

#include "branch/predictor.hh"
#include "branch/profiler.hh"
#include "cache/cache.hh"
#include "cache/hierarchy.hh"
#include "cache/miss_stream.hh"
#include "cache/stack_sim.hh"
#include "cache/tlb.hh"
#include "characterize/characterize.hh"
#include "characterize/kernels.hh"
#include "characterize/mdesc.hh"
#include "common/bench.hh"
#include "common/cli.hh"
#include "common/file_util.hh"
#include "common/histogram.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/numfmt.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"
#include "common/types.hh"
#include "compiler/passes.hh"
#include "dse/design_space.hh"
#include "dse/study.hh"
#include "dse/study_runner.hh"
#include "eval/backend.hh"
#include "eval/registry.hh"
#include "isa/machine_params.hh"
#include "isa/op_class.hh"
#include "isa/static_inst.hh"
#include "model/cpi_stack.hh"
#include "model/inorder_model.hh"
#include "obs/metrics.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "ooo/ooo_model.hh"
#include "ooo/ooo_params.hh"
#include "oosim/oosim.hh"
#include "power/power_model.hh"
#include "profiler/profile_io.hh"
#include "profiler/profiler.hh"
#include "search/cache_io.hh"
#include "search/eval_cache.hh"
#include "search/evaluator.hh"
#include "search/objective.hh"
#include "search/pareto.hh"
#include "search/report.hh"
#include "search/space_spec.hh"
#include "search/strategy.hh"
#include "serve/admission.hh"
#include "serve/protocol.hh"
#include "serve/request_queue.hh"
#include "serve/server.hh"
#include "serve/service.hh"
#include "serve/session.hh"
#include "serve/shard.hh"
#include "sim/inorder_sim.hh"
#include "trace/trace.hh"
#include "workload/builder.hh"
#include "workload/executor.hh"
#include "workload/profile.hh"
#include "workload/program.hh"
#include "workload/suites.hh"

#endif // MECH_MECH_HH
