/**
 * @file
 * CPI stacks: execution cycles broken down by the mechanism that
 * spent them.
 *
 * The paper's headline insight tool (Figs. 4, 7, 8) is the CPI stack:
 * base cycles N/W plus one component per penalty source.  Components
 * here are finer-grained than any single figure; aggregation helpers
 * regroup them per figure.
 */

#ifndef MECH_MODEL_CPI_STACK_HH
#define MECH_MODEL_CPI_STACK_HH

#include <array>
#include <cstdint>
#include <string_view>

#include "common/types.hh"

namespace mech {

/** Cycle-stack components. */
enum class CpiComponent : std::uint8_t {
    Base,          ///< N/W minimum cycles
    LongLat,       ///< non-unit arithmetic (mul/div/fp) execute stalls
    L1DAccess,     ///< multi-cycle L1D hits (when dl1HitCycles > 1)
    L2Access,      ///< loads missing L1D, hitting L2
    L2Miss,        ///< loads going to memory (beyond the L2 lookup)
    IFetchL2,      ///< instruction fetches missing L1I, hitting L2
    IFetchMem,     ///< instruction fetches going to memory
    ITlbMiss,      ///< instruction-TLB misses
    DTlbMiss,      ///< data-TLB misses
    BpredMiss,     ///< branch misprediction flushes
    BpredTakenHit, ///< taken-branch fetch bubbles (correct predictions)
    DepsUnit,      ///< stalls on unit-latency producers
    DepsLL,        ///< stalls on long-latency producers (non-load)
    DepsLoad,      ///< stalls on load producers
    NumComponents, ///< sentinel
};

/** Number of stack components. */
inline constexpr std::size_t kNumCpiComponents =
    static_cast<std::size_t>(CpiComponent::NumComponents);

/** Display name of a component. */
constexpr std::string_view
cpiComponentName(CpiComponent c)
{
    switch (c) {
      case CpiComponent::Base: return "base";
      case CpiComponent::LongLat: return "mul/div";
      case CpiComponent::L1DAccess: return "l1d access";
      case CpiComponent::L2Access: return "l2 access";
      case CpiComponent::L2Miss: return "l2 miss";
      case CpiComponent::IFetchL2: return "il1 miss";
      case CpiComponent::IFetchMem: return "il2 miss";
      case CpiComponent::ITlbMiss: return "itlb miss";
      case CpiComponent::DTlbMiss: return "dtlb miss";
      case CpiComponent::BpredMiss: return "bpred miss";
      case CpiComponent::BpredTakenHit: return "bpred hit (taken)";
      case CpiComponent::DepsUnit: return "deps (unit)";
      case CpiComponent::DepsLL: return "deps (longlat)";
      case CpiComponent::DepsLoad: return "deps (load)";
      case CpiComponent::NumComponents: break;
    }
    return "?";
}

/** Cycle counts per component (stored as fractional cycles). */
class CpiStack
{
  public:
    CpiStack() { cycles.fill(0.0); }

    /** Mutable cycles of component @p c. */
    double &
    operator[](CpiComponent c)
    {
        return cycles[static_cast<std::size_t>(c)];
    }

    /** Cycles of component @p c. */
    double
    operator[](CpiComponent c) const
    {
        return cycles[static_cast<std::size_t>(c)];
    }

    /** Sum of all components (total predicted cycles). */
    double
    total() const
    {
        double sum = 0.0;
        for (double v : cycles)
            sum += v;
        return sum;
    }

    /** Aggregate dependency components. */
    double
    dependencies() const
    {
        return (*this)[CpiComponent::DepsUnit] +
               (*this)[CpiComponent::DepsLL] +
               (*this)[CpiComponent::DepsLoad];
    }

    /** Aggregate TLB components. */
    double
    tlb() const
    {
        return (*this)[CpiComponent::ITlbMiss] +
               (*this)[CpiComponent::DTlbMiss];
    }

    /** Aggregate instruction-side miss components. */
    double
    ifetch() const
    {
        return (*this)[CpiComponent::IFetchL2] +
               (*this)[CpiComponent::IFetchMem];
    }

    /** Divide every component by @p n (cycles -> CPI contributions). */
    CpiStack
    perInstruction(InstCount n) const
    {
        CpiStack out = *this;
        if (n == 0)
            return out;
        for (auto &v : out.cycles)
            v /= static_cast<double>(n);
        return out;
    }

    /** Scale every component by @p f. */
    CpiStack
    scaled(double f) const
    {
        CpiStack out = *this;
        for (auto &v : out.cycles)
            v *= f;
        return out;
    }

  private:
    std::array<double, kNumCpiComponents> cycles;
};

} // namespace mech

#endif // MECH_MODEL_CPI_STACK_HH
