#include "model/inorder_model.hh"

namespace mech {

double
groupOverlap(std::uint32_t width)
{
    MECH_ASSERT(width >= 1, "width must be positive");
    double w = width;
    return (w - 1.0) / (2.0 * w);
}

double
cacheMissPenalty(Cycles miss_latency, std::uint32_t width)
{
    // Eq. 3: penalty = MissLatency - (W-1)/2W.  The subtracted term is
    // the expected number of instructions of the current W-group that
    // slipped past the miss and execute underneath it.
    return static_cast<double>(miss_latency) - groupOverlap(width);
}

double
branchMissPenalty(std::uint32_t frontend_depth, std::uint32_t width)
{
    // Eq. 4: D cycles to refill the front-end pipeline, plus the
    // flushed fraction of the execute-stage group.
    return static_cast<double>(frontend_depth) + groupOverlap(width);
}

double
longLatencyPenalty(Cycles latency, std::uint32_t width)
{
    // Eq. 6: one cycle of the execution latency is already paid in
    // the N/W base term; older same-group instructions overlap the
    // rest by (W-1)/2W on average.
    return (static_cast<double>(latency) - 1.0) - groupOverlap(width);
}

double
unitDepPenalty(std::uint64_t d, std::uint32_t width)
{
    // Eqs. 9-11: the producer/consumer pair sits in the same stage
    // with probability (W-d)/W, and then W-d younger slots stall:
    // penalty = ((W-d)/W)^2.
    double w = width;
    if (d >= width)
        return 0.0;
    double frac = (w - static_cast<double>(d)) / w;
    return frac * frac;
}

double
llDepPenalty(std::uint64_t d, std::uint32_t width)
{
    // Eq. 12: a long-latency producer is always the oldest in the
    // execute stage by the end of its execution, so a consumer at
    // distance d < W waits in decode with W-d lost slots.
    double w = width;
    if (d >= width)
        return 0.0;
    return (w - static_cast<double>(d)) / w;
}

double
loadDepPenalty(std::uint64_t d, std::uint32_t width)
{
    // Eqs. 13-16: loads produce in the memory stage, one stage later,
    // so consumers stall both when sharing the decode stage with the
    // load (case i) and when trailing it by one stage (case ii);
    // distances up to 2W-1 are exposed.
    double w = width;
    double dd = static_cast<double>(d);
    if (d < width) {
        // Case i (same stage, prob (W-d)/W) costs (2W-d)/W; case ii
        // (consecutive stages, prob d/W) costs a full cycle.
        return ((w - dd) / w) * ((2.0 * w - dd) / w) + dd / w;
    }
    if (d < 2 * static_cast<std::uint64_t>(width)) {
        // Only case ii remains: probability and cost both (2W-d)/W.
        double frac = (2.0 * w - dd) / w;
        return frac * frac;
    }
    return 0.0;
}

ModelResult
evaluateInOrder(const ProgramStats &program, const MemoryStats &memory,
                const BranchProfile &branch, const MachineParams &machine)
{
    machine.validate();

    const std::uint32_t w = machine.width;
    const double n = static_cast<double>(program.n);

    ModelResult res;
    res.instructions = program.n;
    CpiStack &stack = res.stack;

    // ---- base: N/W (eq. 1) -----------------------------------------------
    stack[CpiComponent::Base] = n / static_cast<double>(w);

    // ---- long-latency arithmetic (eqs. 5-6) -------------------------------
    for (OpClass oc : kAllOpClasses) {
        if (!isLongLatencyClass(oc))
            continue;
        Cycles lat = machine.execLatency(oc);
        if (lat <= 1)
            continue;
        double count = static_cast<double>(program.mix.of(oc));
        stack[CpiComponent::LongLat] += count * longLatencyPenalty(lat, w);
    }

    // ---- load service latencies -------------------------------------------
    // L1D hits pay (dl1-1)-ovl each when the L1D hit takes multiple
    // cycles; misses are accounted at their service level instead.
    std::uint64_t loads = program.mix.of(OpClass::Load);
    std::uint64_t l1_hit_loads =
        loads - memory.loadL2Hits - memory.loadMemory;
    if (machine.dl1HitCycles > 1) {
        stack[CpiComponent::L1DAccess] +=
            static_cast<double>(l1_hit_loads) *
            longLatencyPenalty(machine.dl1HitCycles, w);
    }

    // Loads served by the L2 behave as long-latency instructions with
    // the L2 hit latency (paper §3.4: "L2 cache hits due to loads").
    stack[CpiComponent::L2Access] +=
        static_cast<double>(memory.loadL2Hits + memory.loadMemory) *
        longLatencyPenalty(machine.l2HitCycles, w);

    // Loads that miss the L2 additionally block the memory stage for
    // the full memory latency (eq. 2-3 miss event).
    stack[CpiComponent::L2Miss] +=
        static_cast<double>(memory.loadMemory) *
        static_cast<double>(machine.memCycles);

    // ---- instruction-fetch misses (eqs. 2-3) ------------------------------
    stack[CpiComponent::IFetchL2] +=
        static_cast<double>(memory.iFetchL2Hits) *
        cacheMissPenalty(machine.l2HitCycles, w);
    stack[CpiComponent::IFetchMem] +=
        static_cast<double>(memory.iFetchMemory) *
        cacheMissPenalty(machine.l2HitCycles + machine.memCycles, w);

    // ---- TLB misses (eqs. 2-3) ---------------------------------------------
    stack[CpiComponent::ITlbMiss] +=
        static_cast<double>(memory.itlbMisses) *
        cacheMissPenalty(machine.tlbMissCycles, w);
    stack[CpiComponent::DTlbMiss] +=
        static_cast<double>(memory.dtlbMisses) *
        cacheMissPenalty(machine.tlbMissCycles, w);

    // ---- branches (eq. 4 + taken-branch hit penalty) -----------------------
    stack[CpiComponent::BpredMiss] +=
        static_cast<double>(branch.mispredicts) *
        branchMissPenalty(machine.frontendDepth, w);
    stack[CpiComponent::BpredTakenHit] +=
        static_cast<double>(branch.predictedTakenCorrect);

    // ---- inter-instruction dependencies (eqs. 7-16) ------------------------
    for (OpClass oc : kAllOpClasses) {
        const Histogram &h = program.deps.of(oc);
        if (h.total() == 0)
            continue;
        if (oc == OpClass::Load) {
            for (std::uint64_t d = 1; d < 2ull * w; ++d) {
                stack[CpiComponent::DepsLoad] +=
                    static_cast<double>(h.at(d)) * loadDepPenalty(d, w);
            }
        } else if (machine.execLatency(oc) > 1) {
            for (std::uint64_t d = 1; d < w; ++d) {
                stack[CpiComponent::DepsLL] +=
                    static_cast<double>(h.at(d)) * llDepPenalty(d, w);
            }
        } else {
            for (std::uint64_t d = 1; d < w; ++d) {
                stack[CpiComponent::DepsUnit] +=
                    static_cast<double>(h.at(d)) * unitDepPenalty(d, w);
            }
        }
    }

    res.cycles = stack.total();
    return res;
}

} // namespace mech
