/**
 * @file
 * The mechanistic performance model for superscalar in-order
 * processors — the paper's core contribution (§3).
 *
 * Execution time is estimated as
 *
 *     T = N/W + P_misses + P_LL + P_deps                       (eq. 1)
 *
 * with penalties for miss events (cache/TLB misses, branch
 * mispredictions, taken-branch bubbles), non-unit long-latency
 * instructions, and inter-instruction dependencies on unit-latency,
 * long-latency and load producers (eqs. 2-16).  Inputs are the
 * profiler's program and program-machine statistics plus the machine
 * parameters; evaluation is a handful of closed-form sums —
 * microseconds per design point, which is what buys the paper's
 * three-orders-of-magnitude speedup over detailed simulation.
 */

#ifndef MECH_MODEL_INORDER_MODEL_HH
#define MECH_MODEL_INORDER_MODEL_HH

#include "branch/profiler.hh"
#include "isa/machine_params.hh"
#include "model/cpi_stack.hh"
#include "profiler/profile_data.hh"

namespace mech {

/** Model output: total predicted cycles, broken into a CPI stack. */
struct ModelResult
{
    /** Predicted execution cycles (equals stack.total()). */
    double cycles = 0.0;

    /** Cycle breakdown by mechanism. */
    CpiStack stack;

    /** Dynamic instruction count the prediction covers. */
    InstCount instructions = 0;

    /** Predicted cycles per instruction. */
    double
    cpi() const
    {
        return instructions ? cycles / static_cast<double>(instructions)
                            : 0.0;
    }

    /** Predicted execution time in seconds at @p freq_ghz. */
    double
    seconds(double freq_ghz) const
    {
        return cycles / (freq_ghz * 1e9);
    }
};

/**
 * Evaluate the superscalar in-order model.
 *
 * @param program Machine-independent program statistics.
 * @param memory Cache/TLB miss statistics for the target hierarchy.
 * @param branch Profile of the target branch predictor.
 * @param machine Core machine parameters.
 */
ModelResult evaluateInOrder(const ProgramStats &program,
                            const MemoryStats &memory,
                            const BranchProfile &branch,
                            const MachineParams &machine);

/**
 * The fraction-of-a-cycle overlap term (W-1)/2W: instructions of a
 * partially filled W-group that proceed underneath a miss event
 * (paper eq. 3); exposed for tests.
 */
double groupOverlap(std::uint32_t width);

/** Penalty of one cache/TLB miss event (paper eq. 3). */
double cacheMissPenalty(Cycles miss_latency, std::uint32_t width);

/** Penalty of one branch misprediction (paper eq. 4). */
double branchMissPenalty(std::uint32_t frontend_depth,
                         std::uint32_t width);

/** Penalty of one long-latency instruction (paper eq. 6). */
double longLatencyPenalty(Cycles latency, std::uint32_t width);

/** Penalty of one unit-latency dependency at distance d (eq. 9-11). */
double unitDepPenalty(std::uint64_t d, std::uint32_t width);

/** Penalty of one long-latency dependency at distance d (eq. 12). */
double llDepPenalty(std::uint64_t d, std::uint32_t width);

/** Penalty of one load dependency at distance d (eqs. 13-16). */
double loadDepPenalty(std::uint64_t d, std::uint32_t width);

} // namespace mech

#endif // MECH_MODEL_INORDER_MODEL_HH
