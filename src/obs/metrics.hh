/**
 * @file
 * Lock-cheap metrics primitives for the observability layer.
 *
 * Everything here is built for hot paths: Counter and Gauge are
 * single relaxed atomics (an increment is one uncontended
 * fetch_add), and LatencyHistogram is a fixed array of relaxed
 * atomic log2 buckets — record() is a bit_width plus two fetch_adds,
 * no locks, no allocation, no floating point.
 *
 * All of it lives strictly on the *observability channel*: nothing
 * in this file ever writes to a response stream, so instrumented
 * code paths stay byte-identical whether or not anyone reads the
 * metrics.  Snapshots convert into the dense common/histogram.hh
 * Histogram (keyed by bucket index), reusing its merge/total/range
 * math for quantiles and for the Prometheus cumulative-bucket
 * rendering.
 */

#ifndef MECH_OBS_METRICS_HH
#define MECH_OBS_METRICS_HH

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/histogram.hh"

namespace mech::obs {

/** Monotonically increasing event count (relaxed atomic). */
class Counter
{
  public:
    void
    inc(std::uint64_t n = 1)
    {
        v.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return v.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> v{0};
};

/** Instantaneous level that can move both ways (relaxed atomic). */
class Gauge
{
  public:
    void
    set(std::int64_t value)
    {
        v.store(value, std::memory_order_relaxed);
    }

    void
    add(std::int64_t delta)
    {
        v.fetch_add(delta, std::memory_order_relaxed);
    }

    void sub(std::int64_t delta) { add(-delta); }

    std::int64_t value() const
    {
        return v.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::int64_t> v{0};
};

/**
 * An immutable snapshot of a LatencyHistogram: bucket counts in a
 * dense common Histogram (key = log2 bucket index) plus the sum of
 * raw recorded values.  Mergeable — merging snapshots is bucketwise
 * count addition, so it is associative and commutative by
 * construction.
 */
struct HistogramSnapshot
{
    /** Bucket counts, keyed by bucket index (see bucketIndex()). */
    Histogram buckets;

    /** Sum of the raw recorded values (for Prometheus `_sum`). */
    std::uint64_t sum = 0;

    /** Total number of recorded values. */
    std::uint64_t count() const { return buckets.total(); }

    /** Merge @p other into this snapshot. */
    void
    merge(const HistogramSnapshot &other)
    {
        buckets.merge(other.buckets);
        sum += other.sum;
    }

    /**
     * The value below which a fraction @p q of observations fall,
     * resolved to the containing bucket's inclusive upper bound —
     * the same convention Prometheus applies to `le` buckets.
     * Returns 0 for an empty snapshot; @p q is clamped to [0, 1].
     */
    std::uint64_t quantile(double q) const;
};

/**
 * Fixed-size log2-bucket latency histogram with lock-free recording.
 *
 * Bucket i counts values v with bit_width(v) == i: bucket 0 holds
 * exactly 0, bucket i >= 1 holds [2^(i-1), 2^i - 1].  With
 * kBuckets = 40 the top regular bucket tops out above 10^11 — about
 * 6 days in microseconds — and anything larger clamps into the final
 * (overflow) bucket, so no latency is ever dropped.
 */
class LatencyHistogram
{
  public:
    /** Number of log2 buckets (index 0..kBuckets-1). */
    static constexpr std::size_t kBuckets = 40;

    /** The bucket index holding @p value (clamped to the top). */
    static std::size_t
    bucketIndex(std::uint64_t value)
    {
        std::size_t width = 0;
        while (value != 0) {
            ++width;
            value >>= 1;
        }
        return width < kBuckets ? width : kBuckets - 1;
    }

    /**
     * Inclusive upper bound of bucket @p idx: 2^idx - 1.  The top
     * bucket is the overflow bucket; its nominal bound is reported
     * like any other (Prometheus adds the +Inf bucket above it).
     */
    static std::uint64_t
    bucketUpperBound(std::size_t idx)
    {
        return (std::uint64_t{1} << idx) - 1;
    }

    /** Record one observation (e.g. a latency in microseconds). */
    void
    record(std::uint64_t value)
    {
        counts[bucketIndex(value)].fetch_add(
            1, std::memory_order_relaxed);
        rawSum.fetch_add(value, std::memory_order_relaxed);
    }

    /** A coherent-enough copy for reporting (relaxed reads). */
    HistogramSnapshot
    snapshot() const
    {
        HistogramSnapshot snap;
        for (std::size_t i = 0; i < kBuckets; ++i) {
            const std::uint64_t c =
                counts[i].load(std::memory_order_relaxed);
            if (c != 0)
                snap.buckets.add(i, c);
        }
        snap.sum = rawSum.load(std::memory_order_relaxed);
        return snap;
    }

    /** Convenience: quantile of the current contents. */
    std::uint64_t quantile(double q) const
    {
        return snapshot().quantile(q);
    }

  private:
    std::atomic<std::uint64_t> counts[kBuckets] = {};
    std::atomic<std::uint64_t> rawSum{0};
};

inline std::uint64_t
HistogramSnapshot::quantile(double q) const
{
    const std::uint64_t total = buckets.total();
    if (total == 0)
        return 0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // The rank-th observation in bucket-index order (1-based); the
    // ceiling form makes quantile(0.5) of a single sample resolve to
    // that sample's bucket.
    std::uint64_t rank = static_cast<std::uint64_t>(
        q * static_cast<double>(total) + 0.5);
    if (rank == 0)
        rank = 1;
    if (rank > total)
        rank = total;
    std::uint64_t seen = 0;
    const std::uint64_t top = buckets.maxKey();
    for (std::uint64_t k = 0; k <= top; ++k) {
        seen += buckets.at(k);
        if (seen >= rank)
            return LatencyHistogram::bucketUpperBound(k);
    }
    return LatencyHistogram::bucketUpperBound(top);
}

} // namespace mech::obs

#endif // MECH_OBS_METRICS_HH
