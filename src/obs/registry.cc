#include "obs/registry.hh"

#include <cctype>
#include <cstdlib>
#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace mech::obs {

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

MetricsRegistry::Entry &
MetricsRegistry::entryFor(const std::string &name,
                          const std::string &help, MetricKind kind)
{
    // Caller holds mtx.
    MECH_ASSERT(!name.empty(), "metric name must not be empty");
    auto it = index.find(name);
    if (it != index.end()) {
        Entry &entry = entries[it->second];
        MECH_ASSERT(entry.kind == kind, "metric '", name,
                    "' registered twice with different kinds");
        return entry;
    }
    Entry entry;
    entry.name = name;
    entry.help = help;
    entry.kind = kind;
    switch (kind) {
      case MetricKind::CounterKind:
        counters.emplace_back();
        entry.counter = &counters.back();
        break;
      case MetricKind::GaugeKind:
        gauges.emplace_back();
        entry.gauge = &gauges.back();
        break;
      case MetricKind::HistogramKind:
        hists.emplace_back();
        entry.hist = &hists.back();
        break;
    }
    index.emplace(name, entries.size());
    entries.push_back(entry);
    return entries.back();
}

Counter &
MetricsRegistry::counter(const std::string &name,
                         const std::string &help)
{
    std::lock_guard<std::mutex> lock(mtx);
    return *entryFor(name, help, MetricKind::CounterKind).counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name, const std::string &help)
{
    std::lock_guard<std::mutex> lock(mtx);
    return *entryFor(name, help, MetricKind::GaugeKind).gauge;
}

LatencyHistogram &
MetricsRegistry::histogram(const std::string &name,
                           const std::string &help)
{
    std::lock_guard<std::mutex> lock(mtx);
    return *entryFor(name, help, MetricKind::HistogramKind).hist;
}

std::size_t
MetricsRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return entries.size();
}

std::vector<MetricsRegistry::Sample>
MetricsRegistry::collect() const
{
    std::lock_guard<std::mutex> lock(mtx);
    std::vector<Sample> out;
    out.reserve(entries.size());
    for (const Entry &entry : entries) {
        Sample s;
        s.name = entry.name;
        s.help = entry.help;
        s.kind = entry.kind;
        switch (entry.kind) {
          case MetricKind::CounterKind:
            s.value = static_cast<std::int64_t>(entry.counter->value());
            break;
          case MetricKind::GaugeKind:
            s.value = entry.gauge->value();
            break;
          case MetricKind::HistogramKind:
            s.hist = entry.hist->snapshot();
            break;
        }
        out.push_back(std::move(s));
    }
    return out;
}

std::string
prometheusName(const std::string &dotted)
{
    std::string out = "mech_";
    for (char c : dotted) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        out += ok ? c : '_';
    }
    return out;
}

namespace {

/** Escape a HELP text per the exposition format rules. */
std::string
escapeHelp(const std::string &help)
{
    std::string out;
    for (char c : help) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

} // namespace

void
MetricsRegistry::renderPrometheus(std::ostream &os) const
{
    const std::vector<Sample> samples = collect();
    for (const Sample &s : samples) {
        const std::string name = prometheusName(s.name);
        if (!s.help.empty())
            os << "# HELP " << name << " " << escapeHelp(s.help)
               << "\n";
        switch (s.kind) {
          case MetricKind::CounterKind:
            os << "# TYPE " << name << " counter\n";
            os << name << " " << s.value << "\n";
            break;
          case MetricKind::GaugeKind:
            os << "# TYPE " << name << " gauge\n";
            os << name << " " << s.value << "\n";
            break;
          case MetricKind::HistogramKind: {
            os << "# TYPE " << name << " histogram\n";
            std::uint64_t cumulative = 0;
            const std::uint64_t top = s.hist.buckets.maxKey();
            for (std::uint64_t k = 0; k <= top; ++k) {
                cumulative += s.hist.buckets.at(k);
                os << name << "_bucket{le=\""
                   << LatencyHistogram::bucketUpperBound(k) << "\"} "
                   << cumulative << "\n";
            }
            os << name << "_bucket{le=\"+Inf\"} " << s.hist.count()
               << "\n";
            os << name << "_sum " << s.hist.sum << "\n";
            os << name << "_count " << s.hist.count() << "\n";
            break;
          }
        }
    }
}

namespace {

bool
validMetricName(const std::string &name)
{
    if (name.empty())
        return false;
    auto head = [](char c) {
        return std::isalpha(static_cast<unsigned char>(c)) ||
               c == '_' || c == ':';
    };
    auto tail = [&](char c) {
        return head(c) || std::isdigit(static_cast<unsigned char>(c));
    };
    if (!head(name[0]))
        return false;
    for (std::size_t i = 1; i < name.size(); ++i) {
        if (!tail(name[i]))
            return false;
    }
    return true;
}

bool
validSampleValue(const std::string &value)
{
    if (value == "+Inf" || value == "-Inf" || value == "NaN")
        return true;
    if (value.empty())
        return false;
    char *end = nullptr;
    std::strtod(value.c_str(), &end);
    return end == value.c_str() + value.size();
}

struct BucketSeries
{
    std::vector<std::pair<std::string, double>> buckets; // (le, count)
    double count = 0;
    bool sawCount = false;
    bool sawInf = false;
};

} // namespace

bool
validateExposition(const std::string &text, std::string *error)
{
    auto fail = [&](std::size_t lineno, const std::string &why) {
        if (error)
            *error = "line " + std::to_string(lineno) + ": " + why;
        return false;
    };

    std::map<std::string, std::string> types; // name -> TYPE keyword
    std::map<std::string, BucketSeries> series;

    std::istringstream is(text);
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        if (line[0] == '#') {
            std::istringstream ls(line);
            std::string hash, keyword, name;
            ls >> hash >> keyword >> name;
            if (keyword != "HELP" && keyword != "TYPE")
                continue; // arbitrary comment: ignored by parsers
            if (!validMetricName(name))
                return fail(lineno, "bad metric name '" + name +
                                        "' in " + keyword);
            if (keyword == "TYPE") {
                std::string type;
                ls >> type;
                if (type != "counter" && type != "gauge" &&
                    type != "histogram" && type != "summary" &&
                    type != "untyped") {
                    return fail(lineno, "unknown TYPE '" + type + "'");
                }
                if (types.count(name))
                    return fail(lineno,
                                "duplicate TYPE for '" + name + "'");
                types[name] = type;
            }
            continue;
        }

        // Sample line: name[{labels}] value [timestamp]
        std::size_t pos = 0;
        while (pos < line.size() &&
               line[pos] != '{' && line[pos] != ' ')
            ++pos;
        const std::string name = line.substr(0, pos);
        if (!validMetricName(name))
            return fail(lineno, "bad sample name '" + name + "'");
        std::string le;
        if (pos < line.size() && line[pos] == '{') {
            const std::size_t close = line.find('}', pos);
            if (close == std::string::npos)
                return fail(lineno, "unterminated label set");
            std::string labels = line.substr(pos + 1, close - pos - 1);
            // Labels: key="value" pairs, comma-separated.
            std::size_t lp = 0;
            while (lp < labels.size()) {
                const std::size_t eq = labels.find('=', lp);
                if (eq == std::string::npos ||
                    eq + 1 >= labels.size() || labels[eq + 1] != '"')
                    return fail(lineno, "malformed label pair");
                const std::string key = labels.substr(lp, eq - lp);
                if (!validMetricName(key))
                    return fail(lineno,
                                "bad label name '" + key + "'");
                std::size_t vq = eq + 2;
                while (vq < labels.size() && labels[vq] != '"') {
                    if (labels[vq] == '\\')
                        ++vq;
                    ++vq;
                }
                if (vq >= labels.size())
                    return fail(lineno, "unterminated label value");
                if (key == "le")
                    le = labels.substr(eq + 2, vq - eq - 2);
                lp = vq + 1;
                if (lp < labels.size()) {
                    if (labels[lp] != ',')
                        return fail(lineno,
                                    "expected ',' between labels");
                    ++lp;
                }
            }
            pos = close + 1;
        }
        if (pos >= line.size() || line[pos] != ' ')
            return fail(lineno, "expected space before sample value");
        while (pos < line.size() && line[pos] == ' ')
            ++pos;
        std::istringstream vs(line.substr(pos));
        std::string value, timestamp, extra;
        vs >> value >> timestamp >> extra;
        if (!validSampleValue(value))
            return fail(lineno, "bad sample value '" + value + "'");
        if (!timestamp.empty() && !validSampleValue(timestamp))
            return fail(lineno, "bad timestamp '" + timestamp + "'");
        if (!extra.empty())
            return fail(lineno, "trailing garbage after sample");

        // Histogram bookkeeping for the cross-line checks below.
        auto strip = [&](const std::string &suffix) {
            if (name.size() > suffix.size() &&
                name.compare(name.size() - suffix.size(),
                             suffix.size(), suffix) == 0) {
                return name.substr(0, name.size() - suffix.size());
            }
            return std::string();
        };
        if (std::string base = strip("_bucket"); !base.empty()) {
            if (types.count(base) && types[base] == "histogram") {
                if (le.empty())
                    return fail(lineno,
                                "histogram bucket without le label");
                series[base].buckets.emplace_back(
                    le, std::strtod(value.c_str(), nullptr));
                if (le == "+Inf")
                    series[base].sawInf = true;
            }
        } else if (std::string base2 = strip("_count");
                   !base2.empty()) {
            if (types.count(base2) && types[base2] == "histogram") {
                series[base2].count =
                    std::strtod(value.c_str(), nullptr);
                series[base2].sawCount = true;
            }
        }
    }

    for (const auto &[name, s] : series) {
        if (!s.sawInf)
            return fail(0, "histogram '" + name +
                               "' missing +Inf bucket");
        for (std::size_t i = 1; i < s.buckets.size(); ++i) {
            if (s.buckets[i].second < s.buckets[i - 1].second)
                return fail(0, "histogram '" + name +
                                   "' buckets not cumulative");
        }
        if (s.sawCount &&
            s.buckets.back().second != s.count) {
            return fail(0, "histogram '" + name +
                               "' +Inf bucket disagrees with _count");
        }
    }
    return true;
}

} // namespace mech::obs
