/**
 * @file
 * Process-wide metrics registry with hierarchical dotted names.
 *
 * Instrumented code asks the registry for a named instrument once
 * (typically through a function-local static) and keeps the returned
 * reference: registration takes a mutex, but every subsequent update
 * is just the instrument's own relaxed atomic.  Instruments live in
 * deques, so references stay valid for the registry's lifetime.
 *
 * Names are dotted hierarchies ("serve.latency.result",
 * "evalcache.shard3.hits"); the Prometheus renderer maps them to the
 * exposition grammar ("mech_serve_latency_result_us_bucket{...}").
 * A registry is an ordinary object — tests build private ones — and
 * global() is the process-wide instance every subsystem shares.
 */

#ifndef MECH_OBS_REGISTRY_HH
#define MECH_OBS_REGISTRY_HH

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hh"

namespace mech::obs {

/** What a registry entry is (fixed at first registration). */
enum class MetricKind
{
    CounterKind,
    GaugeKind,
    HistogramKind,
};

/** The shared, name-indexed home of every metrics instrument. */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** The process-wide registry. */
    static MetricsRegistry &global();

    /**
     * The counter registered under @p name, creating it on first
     * use.  Panics if @p name is already registered as another kind
     * — a naming bug worth failing loudly on.
     */
    Counter &counter(const std::string &name,
                     const std::string &help = "");

    /** The gauge registered under @p name (see counter()). */
    Gauge &gauge(const std::string &name,
                 const std::string &help = "");

    /** The latency histogram registered under @p name. */
    LatencyHistogram &histogram(const std::string &name,
                                const std::string &help = "");

    /** One registered instrument, as reported to consumers. */
    struct Sample
    {
        std::string name;
        std::string help;
        MetricKind kind = MetricKind::CounterKind;

        /** Counter/gauge value (unused for histograms). */
        std::int64_t value = 0;

        /** Histogram snapshot (unused for counters/gauges). */
        HistogramSnapshot hist;
    };

    /** Snapshot every instrument, in registration order. */
    std::vector<Sample> collect() const;

    /**
     * Render every instrument in Prometheus text exposition format
     * (version 0.0.4): `# HELP` / `# TYPE` comments, `mech_`-prefixed
     * underscore names, cumulative `_bucket{le="..."}` series plus
     * `_sum` / `_count` for histograms.
     */
    void renderPrometheus(std::ostream &os) const;

    /** Number of registered instruments. */
    std::size_t size() const;

  private:
    struct Entry
    {
        std::string name;
        std::string help;
        MetricKind kind;
        Counter *counter = nullptr;
        Gauge *gauge = nullptr;
        LatencyHistogram *hist = nullptr;
    };

    Entry &entryFor(const std::string &name, const std::string &help,
                    MetricKind kind);

    mutable std::mutex mtx;
    std::deque<Counter> counters;
    std::deque<Gauge> gauges;
    std::deque<LatencyHistogram> hists;
    std::vector<Entry> entries;
    std::map<std::string, std::size_t> index;
};

/** A dotted metric name as a Prometheus metric name (mech_ prefix,
 *  dots to underscores, other invalid characters to underscores). */
std::string prometheusName(const std::string &dotted);

/**
 * Validate @p text against the Prometheus text exposition grammar:
 * well-formed comment and sample lines, known TYPE keywords, numeric
 * sample values, and — for histograms — cumulative bucket counts
 * ending in `+Inf` that agree with `_count`.  Returns true when the
 * whole payload parses; otherwise false with a line-numbered
 * diagnostic in @p error.
 */
bool validateExposition(const std::string &text, std::string *error);

} // namespace mech::obs

#endif // MECH_OBS_REGISTRY_HH
