#include "obs/trace.hh"

#include <fstream>
#include <ostream>
#include <sstream>

#include "common/json.hh"

namespace mech::obs {

std::atomic<TraceRecorder *> TraceRecorder::installed{nullptr};

TraceRecorder::TraceRecorder()
    : epoch(std::chrono::steady_clock::now())
{
    events.reserve(4096);
}

TraceRecorder::~TraceRecorder()
{
    // Uninstall defensively: a recorder must never dangle as the
    // process-wide target.
    TraceRecorder *self = this;
    installed.compare_exchange_strong(self, nullptr);
}

void
TraceRecorder::install(TraceRecorder *recorder)
{
    installed.store(recorder, std::memory_order_release);
}

TraceRecorder *
TraceRecorder::current()
{
    return installed.load(std::memory_order_acquire);
}

std::uint32_t
traceThreadId()
{
    static std::atomic<std::uint32_t> next{1};
    thread_local std::uint32_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

void
TraceRecorder::complete(const char *name, const char *category,
                        std::uint64_t ts_us, std::uint64_t dur_us)
{
    const std::uint32_t tid = traceThreadId();
    std::lock_guard<std::mutex> lock(mtx);
    if (events.size() >= kMaxEvents) {
        ++dropped;
        return;
    }
    TraceEvent ev;
    ev.name = name;
    ev.category = category;
    ev.tsUs = ts_us;
    ev.durUs = dur_us;
    ev.tid = tid;
    events.push_back(std::move(ev));
}

std::size_t
TraceRecorder::eventCount() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return events.size();
}

std::uint64_t
TraceRecorder::droppedCount() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return dropped;
}

void
TraceRecorder::writeJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mtx);
    os << "{\"traceEvents\": [";
    for (std::size_t i = 0; i < events.size(); ++i) {
        const TraceEvent &ev = events[i];
        if (i)
            os << ",";
        os << "\n{\"name\": ";
        json::writeString(os, ev.name);
        os << ", \"cat\": ";
        json::writeString(os, ev.category);
        os << ", \"ph\": \"X\", \"ts\": " << ev.tsUs
           << ", \"dur\": " << ev.durUs
           << ", \"pid\": 1, \"tid\": " << ev.tid << "}";
    }
    os << "\n], \"displayTimeUnit\": \"ms\", \"otherData\": "
          "{\"generator\": \"mechsim\", \"dropped_events\": "
       << dropped << "}}\n";
}

bool
TraceRecorder::writeJsonFile(const std::string &path,
                             std::string *error) const
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) {
        if (error)
            *error = "cannot open '" + path + "' for writing";
        return false;
    }
    writeJson(os);
    os.flush();
    if (!os) {
        if (error)
            *error = "write to '" + path + "' failed";
        return false;
    }
    return true;
}

} // namespace mech::obs
