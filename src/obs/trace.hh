/**
 * @file
 * Chrome Trace Event recording for the serve/search/bench tools.
 *
 * A TraceRecorder collects complete ("ph":"X") events — name,
 * category, microsecond timestamp and duration, thread id — and
 * writes them as Chrome Trace Event Format JSON that loads directly
 * in chrome://tracing or Perfetto.  Recording is opt-in: tools
 * construct a recorder when --trace-out is given and install() it as
 * the process-wide current recorder; instrumented code guards every
 * span behind TraceRecorder::active(), a single relaxed atomic load,
 * so an untraced run pays one branch per span site and nothing else.
 *
 * TraceSpan is the RAII form: it timestamps construction and records
 * one complete event on destruction.  Spans are cheap enough for
 * per-request and per-chunk scopes but are still two clock reads —
 * keep them off per-instruction paths.
 *
 * The event buffer is bounded (kMaxEvents); once full, further
 * events are counted as dropped rather than growing without limit —
 * a trace of a saturation run must not become the OOM it was
 * debugging.
 */

#ifndef MECH_OBS_TRACE_HH
#define MECH_OBS_TRACE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace mech::obs {

/** One complete trace event (Chrome "ph":"X"). */
struct TraceEvent
{
    std::string name;
    const char *category = "mech";
    std::uint64_t tsUs = 0;  ///< start, microseconds since trace begin
    std::uint64_t durUs = 0; ///< duration, microseconds
    std::uint32_t tid = 0;   ///< small per-thread ordinal
};

/** Bounded collector of trace events (see file comment). */
class TraceRecorder
{
  public:
    /** Event cap; beyond it events are dropped (and counted). */
    static constexpr std::size_t kMaxEvents = 1u << 20;

    TraceRecorder();
    TraceRecorder(const TraceRecorder &) = delete;
    TraceRecorder &operator=(const TraceRecorder &) = delete;
    ~TraceRecorder();

    /** Make this recorder the process-wide target (null uninstalls).
     *  Install before spawning instrumented threads and uninstall
     *  after joining them; installation is not itself synchronized
     *  against in-flight spans. */
    static void install(TraceRecorder *recorder);

    /** The installed recorder, or null. */
    static TraceRecorder *current();

    /** True when a recorder is installed (one relaxed load). */
    static bool
    active()
    {
        return installed.load(std::memory_order_acquire) != nullptr;
    }

    /** Microseconds since this recorder was constructed. */
    std::uint64_t
    nowUs() const
    {
        return tsOf(std::chrono::steady_clock::now());
    }

    /** @p t on this recorder's trace timeline (µs since epoch). */
    std::uint64_t
    tsOf(std::chrono::steady_clock::time_point t) const
    {
        if (t <= epoch)
            return 0;
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                t - epoch)
                .count());
    }

    /** Record one complete event starting at @p ts_us. */
    void complete(const char *name, const char *category,
                  std::uint64_t ts_us, std::uint64_t dur_us);

    /** Events recorded so far (excluding dropped ones). */
    std::size_t eventCount() const;

    /** Events refused because the buffer was full. */
    std::uint64_t droppedCount() const;

    /** Write the Chrome Trace Event Format JSON document. */
    void writeJson(std::ostream &os) const;

    /** writeJson() to @p path; false plus @p error on I/O failure. */
    bool writeJsonFile(const std::string &path,
                       std::string *error) const;

  private:
    static std::atomic<TraceRecorder *> installed;

    const std::chrono::steady_clock::time_point epoch;

    mutable std::mutex mtx;
    std::vector<TraceEvent> events;
    std::uint64_t dropped = 0;
};

/** A small stable ordinal for the calling thread (for trace tids). */
std::uint32_t traceThreadId();

/**
 * RAII complete-event span.  Construction snapshots the start time
 * when a recorder is active; destruction records the event.  The
 * name and category must outlive the span (string literals).
 */
class TraceSpan
{
  public:
    explicit TraceSpan(const char *name, const char *category = "mech")
        : name(name), category(category),
          recorder(TraceRecorder::current())
    {
        if (recorder)
            startUs = recorder->nowUs();
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    ~TraceSpan()
    {
        if (recorder) {
            recorder->complete(name, category, startUs,
                               recorder->nowUs() - startUs);
        }
    }

  private:
    const char *name;
    const char *category;
    TraceRecorder *recorder;
    std::uint64_t startUs = 0;
};

} // namespace mech::obs

#endif // MECH_OBS_TRACE_HH
