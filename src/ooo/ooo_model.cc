#include "ooo/ooo_model.hh"

#include <algorithm>

namespace mech {

double
exposedMissPenalty(const std::vector<std::uint64_t> &miss_idx,
                   Cycles latency, std::uint32_t window,
                   std::uint32_t width)
{
    MECH_ASSERT(width >= 1, "width must be positive");
    if (miss_idx.empty() || latency == 0)
        return 0.0;

    double penalty = 0.0;
    std::uint64_t group_leader = miss_idx.front();
    std::uint64_t prev_group_end = 0;

    auto charge = [&](std::uint64_t leader) {
        // Useful instructions dispatched since the previous long miss
        // resolved overlap the front of this one: an out-of-order core
        // dispatches `width` per cycle, so `gap` instructions hide
        // gap/width cycles of the latency.
        std::uint64_t gap = leader - std::min(leader, prev_group_end);
        double hidden = static_cast<double>(gap) /
                        static_cast<double>(width);
        penalty += std::max(0.0, static_cast<double>(latency) - hidden);
    };

    for (std::size_t i = 1; i < miss_idx.size(); ++i) {
        if (miss_idx[i] - group_leader <= window)
            continue; // overlaps the leader: free rider (MLP)
        charge(group_leader);
        prev_group_end = group_leader;
        group_leader = miss_idx[i];
    }
    charge(group_leader);
    return penalty;
}

ModelResult
evaluateOutOfOrder(const ProgramStats &program, const MemoryStats &memory,
                   const BranchProfile &branch,
                   const MachineParams &machine, const OooParams &ooo)
{
    machine.validate();
    MECH_ASSERT(ooo.robSize >= machine.width, "window smaller than width");

    const std::uint32_t w = machine.width;
    const double n = static_cast<double>(program.n);

    ModelResult res;
    res.instructions = program.n;
    CpiStack &stack = res.stack;

    // ---- steady state: dispatch at the designed width ---------------------
    stack[CpiComponent::Base] = n / static_cast<double>(w);

    // ---- front-end miss events: identical to the in-order core ------------
    stack[CpiComponent::IFetchL2] +=
        static_cast<double>(memory.iFetchL2Hits) *
        cacheMissPenalty(machine.l2HitCycles, w);
    stack[CpiComponent::IFetchMem] +=
        static_cast<double>(memory.iFetchMemory) *
        cacheMissPenalty(machine.l2HitCycles + machine.memCycles, w);
    stack[CpiComponent::ITlbMiss] +=
        static_cast<double>(memory.itlbMisses) *
        cacheMissPenalty(machine.tlbMissCycles, w);

    // ---- branch mispredictions: refill + resolution -------------------------
    // The branch resolution time adds to the front-end refill: the
    // mispredicted branch must traverse dispatch, execute and write
    // back before the front end can restart.  The reference machine
    // (src/oosim/) does not fetch the wrong path — fetch stalls at the
    // mispredicted branch — so the branch schedules out of order as
    // soon as its operands arrive, and resolution is its own pipeline
    // traversal (one front end, plus dispatch-to-writeback), not a
    // window drain.  An earlier robSize/(2w) drain estimate
    // overestimated branchy workloads by >2x against the
    // cycle-accurate out-of-order pipeline; this term brings the mean
    // CPI error across the MiBench sample under the documented
    // validation threshold (docs/oosim.md).
    double resolution = static_cast<double>(machine.frontendDepth) + 2.0;
    stack[CpiComponent::BpredMiss] +=
        static_cast<double>(branch.mispredicts) *
        (branchMissPenalty(machine.frontendDepth, w) + resolution);
    stack[CpiComponent::BpredTakenHit] +=
        static_cast<double>(branch.predictedTakenCorrect);

    // ---- data misses: MLP-aware interval penalties --------------------------
    // Followers inside the window overlap the leader; the leader's
    // latency is partially hidden by useful dispatch since the last
    // long-miss interval.  Serial (pointer-chasing) miss chains thus
    // pay nearly full latency while streaming misses mostly vanish.
    stack[CpiComponent::L2Miss] += exposedMissPenalty(
        memory.loadMemoryIdx, machine.memCycles, ooo.robSize, w);
    stack[CpiComponent::L2Access] += exposedMissPenalty(
        memory.loadL2HitIdx, machine.l2HitCycles, ooo.robSize, w);

    // D-TLB misses serialize the page walk; the window hides none of
    // it on the first-order assumption that walks are not overlapped.
    stack[CpiComponent::DTlbMiss] +=
        static_cast<double>(memory.dtlbMisses) *
        cacheMissPenalty(machine.tlbMissCycles, w);

    // ---- hidden on an out-of-order core -------------------------------------
    // Dependencies and non-unit execution latencies are absorbed by
    // the window (the paper's central contrast): no P_deps, no P_LL.

    res.cycles = stack.total();
    return res;
}

} // namespace mech
