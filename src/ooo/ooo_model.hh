/**
 * @file
 * First-order interval model for superscalar out-of-order processors.
 *
 * Implements the comparator the paper uses in its first case study
 * (§6.1, Fig. 7): the out-of-order interval model in the tradition of
 * Karkhanis & Smith (ISCA'04) and Eyerman et al. (TOCS'09).  A
 * balanced out-of-order core streams instructions at its designed
 * width between miss events; dependencies and non-unit execution
 * latencies are hidden by the window, so only miss events cost
 * cycles:
 *
 *  - front-end miss events (I-cache, I-TLB) cost their miss latency,
 *    exactly as on the in-order core (the paper's bullet: "I-cache
 *    miss penalty is identical on in-order and out-of-order");
 *  - branch mispredictions cost the front-end refill D *plus* the
 *    branch resolution time (the branch's own dispatch-to-writeback
 *    traversal) — costlier than in-order;
 *  - long data misses overlap within the reorder window (memory-level
 *    parallelism): overlapping misses are grouped and each *group*
 *    pays the exposed latency once, partially hidden by the useful
 *    work dispatched since the previous group.
 *
 * The MLP analysis is data-driven: it consumes the dynamic indices of
 * missing loads collected by the profiler, not a tunable constant.
 */

#ifndef MECH_OOO_OOO_MODEL_HH
#define MECH_OOO_OOO_MODEL_HH

#include "branch/profiler.hh"
#include "isa/machine_params.hh"
#include "model/cpi_stack.hh"
#include "model/inorder_model.hh"
#include "ooo/ooo_params.hh"
#include "profiler/profile_data.hh"

namespace mech {

/**
 * Evaluate the out-of-order interval model.
 *
 * @param program Machine-independent program statistics.
 * @param memory Cache/TLB miss statistics (with miss index streams).
 * @param branch Profile of the target branch predictor.
 * @param machine Shared core parameters (width, D, latencies).
 * @param ooo Out-of-order specific parameters.
 */
ModelResult evaluateOutOfOrder(const ProgramStats &program,
                               const MemoryStats &memory,
                               const BranchProfile &branch,
                               const MachineParams &machine,
                               const OooParams &ooo);

/**
 * Group long-latency data misses by overlap within a @p window of
 * dynamic instructions and return the total *exposed* penalty cycles,
 * where each group leader pays max(0, latency - gap/width) — the gap
 * being the useful instructions dispatched since the previous group
 * hid part of the latency.  Exposed for tests.
 */
double exposedMissPenalty(const std::vector<std::uint64_t> &miss_idx,
                          Cycles latency, std::uint32_t window,
                          std::uint32_t width);

} // namespace mech

#endif // MECH_OOO_OOO_MODEL_HH
