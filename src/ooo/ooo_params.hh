/**
 * @file
 * Out-of-order core parameters shared by the OoO interval model, the
 * cycle-accurate OoO pipeline simulator (src/oosim/), and the design
 * space.
 *
 * These are the structural knobs the Carroll/Lin queuing-model
 * vocabulary names: reorder-buffer depth, issue-queue (centralized
 * reservation station) size, the functional-unit mix, and the number
 * of result buses.  They live in their own header — separate from the
 * interval model — because DesignPoint embeds them as first-class
 * design axes: every field participates in DesignPoint identity
 * (operator==, hash(), toKey()/fromKey()) and in the SpaceSpec axis
 * grammar (rob=, iq=, fualu=, fumul=, fumem=, fubr=, buses=).
 *
 * The interval model consumes only robSize (its balanced-machine
 * assumption folds the rest away); the oosim backend honors every
 * field, which is exactly what makes the model-vs-oosim validation
 * meaningful: points where the structures are balanced should agree,
 * points that starve an FU class or the issue queue should not.
 */

#ifndef MECH_OOO_OOO_PARAMS_HH
#define MECH_OOO_OOO_PARAMS_HH

#include <cstdint>

namespace mech {

/** Out-of-order core parameters beyond the shared MachineParams. */
struct OooParams
{
    /** Reorder-buffer (window) size in instructions. */
    std::uint32_t robSize = 128;

    /** Centralized reservation-station (issue queue) entries. */
    std::uint32_t iqSize = 32;

    /** Single-cycle integer ALU units. */
    std::uint32_t fuAlu = 3;

    /** Long-latency units (integer mul/div, all FP classes). */
    std::uint32_t fuMul = 1;

    /** Memory ports (loads and stores). */
    std::uint32_t fuMem = 2;

    /** Branch-resolution units. */
    std::uint32_t fuBr = 1;

    /** Result buses (completions broadcast per cycle). */
    std::uint32_t resultBuses = 4;

    /** Exact field-wise equality (part of DesignPoint identity). */
    bool operator==(const OooParams &other) const = default;
};

} // namespace mech

#endif // MECH_OOO_OOO_PARAMS_HH
