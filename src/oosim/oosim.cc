#include "oosim/oosim.hh"

#include <algorithm>
#include <array>
#include <deque>
#include <limits>
#include <vector>

#include "common/logging.hh"

namespace mech {

namespace {

/** Sentinel "not known yet" cycle. */
constexpr Cycles kUnknown = std::numeric_limits<Cycles>::max();

/** Sentinel "no pending producer" tag. */
constexpr std::uint64_t kNoTag = std::numeric_limits<std::uint64_t>::max();

/** Functional-unit classes the scheduler arbitrates over. */
enum class FuType : std::uint8_t { Alu, Mul, Mem, Br };

constexpr std::size_t kNumFuTypes = 4;

/** Map an op class onto its functional-unit class. */
FuType
fuTypeOf(OpClass oc)
{
    if (isMem(oc))
        return FuType::Mem;
    if (isBranch(oc))
        return FuType::Br;
    if (isLongLatencyClass(oc))
        return FuType::Mul;
    return FuType::Alu; // IntAlu, Nop
}

/** An instruction waiting in the front end for dispatch. */
struct FrontEndEntry
{
    std::uint64_t idx = 0; ///< dynamic trace index
    Cycles readyAt = 0;    ///< first cycle dispatch may take it
};

/** One centralized reservation-station (issue queue) entry. */
struct RsEntry
{
    std::uint64_t idx = 0; ///< dynamic trace index == result tag
    FuType fu = FuType::Alu;
    Cycles lat = 1; ///< service latency once issued

    /** Pending producer tags; kNoTag == ready bit set. */
    std::uint64_t src1Tag = kNoTag;
    std::uint64_t src2Tag = kNoTag;

    bool ready() const { return src1Tag == kNoTag && src2Tag == kNoTag; }
};

/** An issued instruction executing (or awaiting a result bus). */
struct Inflight
{
    std::uint64_t idx = 0;
    Cycles doneAt = 0;
    FuType fu = FuType::Alu;
};

/**
 * The out-of-order pipeline state machine.
 *
 * One instance simulates one trace.  Per-cycle processing order is
 * retire -> writeback (result-bus grant + wakeup broadcast) -> select
 * -> dispatch -> fetch, which realizes the half-cycle contract: a
 * result written back in cycle t wakes and fires its consumers in the
 * same cycle (back-to-back dependent issue), while instructions
 * dispatched in cycle t cannot be selected before t+1 and completed
 * instructions retire no earlier than the cycle after writeback.
 */
class OoOPipeline
{
  public:
    OoOPipeline(const Trace &trace, const OoOSimConfig &config)
        : trace(trace), cfg(config), machine(config.core.machine),
          ooo(config.ooo), hier(config.core.hierarchy),
          predictor(makePredictor(config.core.predictor)),
          feDelay(config.core.machine.frontendDepth - 1),
          feCapacity(static_cast<std::size_t>(
                         config.core.machine.frontendDepth) *
                     config.core.machine.width)
    {
        machine.validate();
        if (ooo.robSize < 1 || ooo.iqSize < 1)
            fatal("out-of-order core needs a ROB and an issue queue "
                  "(rob=", ooo.robSize, ", iq=", ooo.iqSize, ")");
        if (ooo.fuAlu < 1 || ooo.fuMul < 1 || ooo.fuMem < 1 ||
            ooo.fuBr < 1) {
            fatal("every functional-unit class needs at least one "
                  "unit (alu=", ooo.fuAlu, ", mul=", ooo.fuMul,
                  ", mem=", ooo.fuMem, ", br=", ooo.fuBr, ")");
        }
        if (ooo.resultBuses < 1)
            fatal("out-of-order core needs at least one result bus");
        fuCount = {ooo.fuAlu, ooo.fuMul, ooo.fuMem, ooo.fuBr};
        regTag.fill(kNoTag);
        rs.reserve(ooo.iqSize);
        inflight.reserve(ooo.robSize);
    }

    OoOSimResult run();

  private:
    void step(Cycles t);

    void retire(Cycles t);
    void writeback(Cycles t);
    void select(Cycles t);
    void dispatch(Cycles t);
    void fetch(Cycles t);

    /**
     * Probe the data side and return the service latency of @p di.
     *
     * Called at dispatch, in program order, so the miss stream is
     * deterministic and matches the profiler's; the latency applies
     * when the access later issues, letting misses overlap in the
     * window.  Stores probe for state only (ideal store buffer).
     */
    Cycles
    memLatency(const DynInstr &di)
    {
        if (di.op == OpClass::Store) {
            if (!cfg.core.perfectDCache)
                (void)hier.data(di.effAddr, true);
            return 1;
        }
        if (cfg.core.perfectDCache)
            return machine.dl1HitCycles;
        HierAccess acc = hier.data(di.effAddr, false);
        if (cfg.core.perfectTlbs)
            acc.tlbMiss = false;
        Cycles lat = machine.dl1HitCycles;
        if (acc.level == MemLevel::L2)
            lat = machine.l2HitCycles;
        else if (acc.level == MemLevel::Memory)
            lat = machine.l2HitCycles + machine.memCycles;
        if (acc.tlbMiss)
            lat += machine.tlbMissCycles;
        return lat;
    }

    const Trace &trace;
    OoOSimConfig cfg;
    MachineParams machine;
    OooParams ooo;
    CacheHierarchy hier;
    std::unique_ptr<BranchPredictor> predictor;

    /** Fetch-to-dispatch pipeline delay (front end minus dispatch). */
    const Cycles feDelay;

    /** Front-end buffer capacity (D stages of W slots). */
    const std::size_t feCapacity;

    /** Units per FuType, indexed by static_cast<size_t>(FuType). */
    std::array<std::uint32_t, kNumFuTypes> fuCount{};

    /** regTag[r]: trace index of r's latest in-flight producer. */
    std::array<std::uint64_t, kNumArchRegs> regTag{};

    /** Fetched instructions flowing toward dispatch. */
    std::deque<FrontEndEntry> frontEnd;

    /** Centralized reservation station, ascending trace index. */
    std::vector<RsEntry> rs;

    /** Issued instructions (executing or waiting for a bus). */
    std::vector<Inflight> inflight;

    /**
     * Reorder buffer: completion flags for the contiguous trace-index
     * range [retired, retired + robCompleted.size()).
     */
    std::deque<bool> robCompleted;

    /** Scratch: inflight indices completing this cycle. */
    std::vector<std::size_t> doneScratch;

    std::uint64_t nextFetchIdx = 0;
    std::uint64_t retired = 0;

    /** Last trace index probed against the instruction side. */
    std::uint64_t probedFetchIdx = kUnknown;

    /** Fetch stalled until this cycle (miss / taken bubble). */
    Cycles fetchReadyAt = 0;

    /** Trace index of an unresolved mispredicted branch, if any. */
    std::uint64_t pendingRedirectIdx = kUnknown;

    /** Diagnostics. */
    OoOSimResult stats;

    /** Cause of the current fetch stall (diagnostics only). */
    enum class FetchStall : std::uint8_t { None, Miss, TakenBubble };
    FetchStall fetchStallCause = FetchStall::None;
};

void
OoOPipeline::retire(Cycles t)
{
    (void)t;
    std::uint32_t moved = 0;
    while (!robCompleted.empty() && moved < machine.width &&
           robCompleted.front()) {
        robCompleted.pop_front();
        ++retired;
        ++moved;
    }
}

void
OoOPipeline::writeback(Cycles t)
{
    doneScratch.clear();
    for (std::size_t i = 0; i < inflight.size(); ++i) {
        if (inflight[i].doneAt <= t)
            doneScratch.push_back(i);
    }
    if (doneScratch.empty())
        return;

    // Oldest-first result-bus arbitration.
    std::sort(doneScratch.begin(), doneScratch.end(),
              [this](std::size_t a, std::size_t b) {
                  return inflight[a].idx < inflight[b].idx;
              });
    const std::size_t grants =
        std::min<std::size_t>(doneScratch.size(), ooo.resultBuses);
    stats.busStallEvents += doneScratch.size() - grants;
    doneScratch.resize(grants);

    for (std::size_t pos : doneScratch) {
        const std::uint64_t idx = inflight[pos].idx;
        const DynInstr &di = trace[idx];

        // Completion reaches the ROB; retirement happens next cycle.
        robCompleted[idx - retired] = true;

        // Release the architectural tag if still the latest producer.
        if (di.hasDst() && regTag[di.dst] == idx)
            regTag[di.dst] = kNoTag;

        // Wakeup: broadcast the tag, setting consumer ready bits.
        for (RsEntry &e : rs) {
            if (e.src1Tag == idx)
                e.src1Tag = kNoTag;
            if (e.src2Tag == idx)
                e.src2Tag = kNoTag;
        }

        // Misprediction resolves at writeback: the front end restarts
        // on the correct path next cycle.
        if (idx == pendingRedirectIdx) {
            fetchReadyAt = t + 1;
            pendingRedirectIdx = kUnknown;
            fetchStallCause = FetchStall::None;
        }
    }

    // Free the granted in-flight slots.  Swap-and-pop must run in
    // descending *position* order (doneScratch is in age order), or a
    // granted entry could be relocated into a lower granted slot and
    // survive.  inflight order itself is irrelevant: arbitration
    // re-sorts candidates by age every cycle.
    std::sort(doneScratch.begin(), doneScratch.end(),
              std::greater<std::size_t>());
    for (std::size_t pos : doneScratch) {
        inflight[pos] = inflight.back();
        inflight.pop_back();
    }
}

void
OoOPipeline::select(Cycles t)
{
    std::array<std::uint32_t, kNumFuTypes> fired{};
    auto it = rs.begin();
    while (it != rs.end()) {
        if (it->ready()) {
            const auto fu = static_cast<std::size_t>(it->fu);
            if (fired[fu] < fuCount[fu]) {
                ++fired[fu];
                inflight.push_back({it->idx, t + it->lat, it->fu});
                it = rs.erase(it);
                continue;
            }
            ++stats.fuStallEvents;
        }
        ++it;
    }
}

void
OoOPipeline::dispatch(Cycles t)
{
    std::uint32_t moved = 0;
    bool robBlocked = false;
    bool iqBlocked = false;
    while (!frontEnd.empty() && moved < machine.width &&
           frontEnd.front().readyAt <= t) {
        if (robCompleted.size() >= ooo.robSize) {
            robBlocked = true;
            break;
        }
        if (rs.size() >= ooo.iqSize) {
            iqBlocked = true;
            break;
        }
        const std::uint64_t idx = frontEnd.front().idx;
        const DynInstr &di = trace[idx];

        RsEntry entry;
        entry.idx = idx;
        entry.fu = fuTypeOf(di.op);
        entry.lat = entry.fu == FuType::Mem ? memLatency(di)
                                            : machine.execLatency(di.op);
        // Source tags read the rename state *before* this
        // instruction's own destination claim (WAR-safe).
        if (di.src1 != kNoReg)
            entry.src1Tag = regTag[di.src1];
        if (di.src2 != kNoReg)
            entry.src2Tag = regTag[di.src2];
        if (di.hasDst())
            regTag[di.dst] = idx;

        rs.push_back(entry);
        robCompleted.push_back(false);
        frontEnd.pop_front();
        ++moved;
    }
    if (robBlocked)
        ++stats.robStallCycles;
    else if (iqBlocked)
        ++stats.iqStallCycles;

    stats.maxRobOccupancy =
        std::max<std::uint32_t>(stats.maxRobOccupancy,
                                static_cast<std::uint32_t>(
                                    robCompleted.size()));
    stats.maxIqOccupancy = std::max<std::uint32_t>(
        stats.maxIqOccupancy, static_cast<std::uint32_t>(rs.size()));
}

void
OoOPipeline::fetch(Cycles t)
{
    if (nextFetchIdx >= trace.size())
        return;

    if (pendingRedirectIdx != kUnknown) {
        ++stats.mispredictStallCycles;
        return;
    }
    if (fetchReadyAt > t) {
        if (fetchStallCause == FetchStall::Miss)
            ++stats.fetchMissStallCycles;
        else if (fetchStallCause == FetchStall::TakenBubble)
            ++stats.takenBubbleCycles;
        return;
    }
    fetchStallCause = FetchStall::None;

    std::uint32_t fetched = 0;
    while (fetched < machine.width && frontEnd.size() < feCapacity &&
           nextFetchIdx < trace.size()) {
        const DynInstr &di = trace[nextFetchIdx];

        // Probe the instruction side exactly once per instruction (the
        // profiler sees the very same access stream).  On a miss the
        // instruction is NOT consumed: it waits for its line, while
        // anything fetched earlier this cycle proceeds down the pipe.
        if (nextFetchIdx != probedFetchIdx && !cfg.core.perfectICache) {
            HierAccess acc = hier.fetch(di.pc);
            probedFetchIdx = nextFetchIdx;

            Cycles stall = 0;
            if (acc.level == MemLevel::L2)
                stall += machine.l2HitCycles;
            else if (acc.level == MemLevel::Memory)
                stall += machine.l2HitCycles + machine.memCycles;
            if (acc.tlbMiss && !cfg.core.perfectTlbs)
                stall += machine.tlbMissCycles;

            if (stall > 0) {
                fetchReadyAt = t + stall;
                fetchStallCause = FetchStall::Miss;
                break;
            }
        }

        frontEnd.push_back({nextFetchIdx, t + feDelay});
        ++nextFetchIdx;
        ++fetched;

        if (isBranch(di.op)) {
            bool predicted = predictor->predict(di.pc);
            predictor->update(di.pc, di.taken);
            if (predicted != di.taken) {
                ++stats.mispredicts;
                // Wrong path: nothing useful can be fetched until the
                // branch resolves at writeback.
                pendingRedirectIdx = nextFetchIdx - 1;
                break;
            }
            if (predicted) {
                ++stats.predictedTakenCorrect;
                // Redirect is known one cycle after fetch: one bubble.
                fetchReadyAt = t + 2;
                fetchStallCause = FetchStall::TakenBubble;
                break;
            }
        }
    }
}

void
OoOPipeline::step(Cycles t)
{
    retire(t);
    writeback(t);
    select(t);
    dispatch(t);
    fetch(t);
}

OoOSimResult
OoOPipeline::run()
{
    Cycles t = 0;
    const Cycles guard =
        trace.size() * (machine.l2HitCycles + machine.memCycles +
                        machine.tlbMissCycles + 64) +
        1000000;
    while (retired < trace.size()) {
        step(t);
        ++t;
        if (t > guard)
            panic("out-of-order pipeline deadlock: retired ", retired,
                  " of ", trace.size(), " instructions after ", t,
                  " cycles");
    }
    stats.cycles = t;
    stats.retired = retired;
    return stats;
}

} // namespace

OoOSimResult
simulateOutOfOrder(const Trace &trace, const OoOSimConfig &config)
{
    if (trace.empty())
        return OoOSimResult{};
    OoOPipeline pipe(trace, config);
    return pipe.run();
}

OoOSimConfig
oooSimConfigFor(const DesignPoint &point, const LatencySpec &spec)
{
    OoOSimConfig cfg;
    cfg.core = simConfigFor(point, spec);
    cfg.ooo = point.ooo;
    return cfg;
}

} // namespace mech
