/**
 * @file
 * Cycle-accurate superscalar out-of-order pipeline simulator.
 *
 * The out-of-order counterpart of src/sim/: a trace-driven, W-wide,
 * five-stage dynamically scheduled pipeline in the style of the
 * classic Tomasulo/ROB machines —
 *
 *   fetch -> dispatch -> schedule -> execute -> state update
 *
 * with a tag-based *centralized* reservation station (the issue
 * queue), ready-bit wakeup on result broadcast, a reorder buffer for
 * in-order retirement, per-class functional-unit issue ports
 * (ALU / mul / mem / branch) and a limited number of result buses.
 *
 * Intra-cycle ordering follows the usual half-cycle rules: results
 * write back (bus grant) in the first half, the broadcast wakes
 * dependent reservation-station entries, and only then does select
 * fire ready entries — so a unit-latency producer feeds its consumer
 * back-to-back.  Retirement precedes writeback, so an instruction
 * completing in cycle t retires no earlier than t+1.
 *
 * Modeling decisions (all idealizations are shared with the in-order
 * reference simulator and the profiler so model-vs-sim error measures
 * timing fidelity, not state skew):
 *
 *  - The data side is probed at *dispatch*, in program order, and the
 *    resulting service latency applies when the access later issues.
 *    Miss classification is therefore deterministic and independent
 *    of issue order, while the latencies themselves still overlap in
 *    the window (memory-level parallelism emerges naturally, bounded
 *    by the ROB and issue queue, not by an MLP constant).
 *  - Functional units are fully pipelined issue ports: each unit
 *    accepts one new operation per cycle, which completes after its
 *    class latency and then arbitrates (oldest first) for a result
 *    bus.  No MSHR limit is modeled.
 *  - Every completion — including stores and branches — consumes one
 *    result bus slot; an instruction holds its in-flight slot until a
 *    bus is granted.
 *  - Stores never block retirement (ideal store buffer) but probe the
 *    hierarchy so cache/TLB state tracks the profiler.
 *  - Wrong-path fetch is not simulated: a mispredicted branch stalls
 *    fetch until its result bus grant, reproducing refill plus
 *    resolution delay without wrong-path pollution.
 */

#ifndef MECH_OOSIM_OOSIM_HH
#define MECH_OOSIM_OOSIM_HH

#include <cstdint>

#include "dse/design_space.hh"
#include "ooo/ooo_params.hh"
#include "sim/inorder_sim.hh"
#include "trace/trace.hh"

namespace mech {

/** Full out-of-order simulator configuration. */
struct OoOSimConfig
{
    /** Shared core/hierarchy/predictor configuration. */
    SimConfig core;

    /** Out-of-order structures (ROB, issue queue, FUs, buses). */
    OooParams ooo;
};

/** Simulation outcome with out-of-order stall diagnostics. */
struct OoOSimResult
{
    /** Total execution cycles. */
    Cycles cycles = 0;

    /** Instructions retired (trace length). */
    InstCount retired = 0;

    /** Cycles the fetch unit was stalled on I-cache/I-TLB misses. */
    Cycles fetchMissStallCycles = 0;

    /** Fetch bubbles from correctly-predicted taken branches. */
    Cycles takenBubbleCycles = 0;

    /** Cycles fetch waited on an unresolved mispredicted branch. */
    Cycles mispredictStallCycles = 0;

    /** Cycles dispatch was blocked by a full reorder buffer. */
    Cycles robStallCycles = 0;

    /** Cycles dispatch was blocked by a full issue queue. */
    Cycles iqStallCycles = 0;

    /** (ready entry, cycle) pairs that lost FU-port arbitration. */
    Cycles fuStallEvents = 0;

    /** (completed op, cycle) pairs that lost result-bus arbitration. */
    Cycles busStallEvents = 0;

    /** Branch mispredictions observed. */
    std::uint64_t mispredicts = 0;

    /** Correctly-predicted taken branches observed. */
    std::uint64_t predictedTakenCorrect = 0;

    /** High-water reorder-buffer occupancy. */
    std::uint32_t maxRobOccupancy = 0;

    /** High-water issue-queue occupancy. */
    std::uint32_t maxIqOccupancy = 0;

    /** Cycles per instruction. */
    double
    cpi() const
    {
        return retired ? static_cast<double>(cycles) /
                             static_cast<double>(retired)
                       : 0.0;
    }

    /** Execution time in seconds at @p freq_ghz. */
    double
    seconds(double freq_ghz) const
    {
        return static_cast<double>(cycles) / (freq_ghz * 1e9);
    }
};

/**
 * Simulate @p trace on the configured out-of-order pipeline.
 *
 * Deterministic; cold caches, TLBs and predictor.  Calls fatal() on
 * a structurally invalid configuration (zero-sized ROB/issue queue,
 * missing FU class, no result buses).
 */
OoOSimResult simulateOutOfOrder(const Trace &trace,
                                const OoOSimConfig &config);

/** Complete out-of-order simulator configuration for a design point. */
OoOSimConfig oooSimConfigFor(const DesignPoint &point,
                             const LatencySpec &spec =
                                 activeLatencySpec());

} // namespace mech

#endif // MECH_OOSIM_OOSIM_HH
