#include "power/power_model.hh"

#include <cmath>

namespace mech {

namespace {

// Calibration constants (32 nm-class, order-of-magnitude realistic).
// Absolute values scale every design point identically; the case
// study depends on the relative terms only.
constexpr double kInstrEnergyNj = 0.06;   ///< base per-instruction
constexpr double kWidthEnergySlope = 0.35; ///< per extra slot of width
constexpr double kCycleEnergyNj = 0.012;  ///< per cycle per slot-stage
constexpr double kSram32kNj = 0.10;       ///< per access, 32 KiB array
constexpr double kMemAccessNj = 4.0;      ///< off-chip access
constexpr double kStaticCoreW = 0.05;     ///< per width slot at V=1
constexpr double kStaticSramWPerMB = 0.25; ///< per MiB at V=1
constexpr double kMaxFreqGHz = 1.0;       ///< V scaling reference

/** SRAM access energy scales ~sqrt(capacity) x weak assoc term. */
double
sramAccessNj(std::uint64_t bytes, std::uint32_t assoc)
{
    double size_scale = std::sqrt(static_cast<double>(bytes) /
                                  (32.0 * 1024.0));
    double assoc_scale = std::pow(static_cast<double>(assoc) / 4.0, 0.3);
    return kSram32kNj * size_scale * assoc_scale;
}

} // namespace

PowerModel::PowerModel(const MachineParams &machine,
                       const HierarchyConfig &hierarchy,
                       PredictorKind predictor)
    : machine(machine), hier(hierarchy), pred(predictor)
{
    machine.validate();
}

double
PowerModel::voltageScale() const
{
    // Lower-frequency design points run at proportionally lower
    // supply: V/Vmax = 0.6 + 0.4 f/fmax (clamped below by retention).
    double f_ratio = machine.freqGHz / kMaxFreqGHz;
    return 0.6 + 0.4 * std::min(1.0, f_ratio);
}

double
PowerModel::staticPowerW() const
{
    double sram_bytes =
        static_cast<double>(hier.l1i.sizeBytes + hier.l1d.sizeBytes +
                            hier.l2.sizeBytes + predictorBytes(pred));
    double core = kStaticCoreW * machine.width *
                  (0.7 + 0.1 * machine.depth());
    double sram = kStaticSramWPerMB * sram_bytes / (1024.0 * 1024.0);
    // Leakage scales ~V (first order).
    return (core + sram) * voltageScale();
}

EnergyBreakdown
PowerModel::energy(const ActivityCounts &activity) const
{
    EnergyBreakdown out;
    double v = voltageScale();
    double v2 = v * v; // dynamic energy scales with V^2

    // Core: per-instruction work grows with width (bypass, ports);
    // per-cycle overhead grows with width x depth (latches, clock).
    double w = machine.width;
    double per_instr =
        kInstrEnergyNj * (1.0 + kWidthEnergySlope * (w - 1.0));
    double per_cycle = kCycleEnergyNj * w *
                       static_cast<double>(machine.depth());
    out.coreDynamicJ = (activity.instructions * per_instr +
                        activity.cycles * per_cycle) *
                       v2 * 1e-9;

    // SRAM arrays.
    double cache_nj =
        activity.l1iAccesses * sramAccessNj(hier.l1i.sizeBytes,
                                            hier.l1i.assoc) +
        activity.l1dAccesses * sramAccessNj(hier.l1d.sizeBytes,
                                            hier.l1d.assoc) +
        activity.l2Accesses * sramAccessNj(hier.l2.sizeBytes,
                                           hier.l2.assoc) +
        activity.branches * sramAccessNj(
            std::max<std::uint64_t>(predictorBytes(pred), 64), 1);
    out.cacheDynamicJ = cache_nj * v2 * 1e-9;

    out.memoryDynamicJ = activity.memAccesses * kMemAccessNj * 1e-9;

    double seconds = activity.cycles / (machine.freqGHz * 1e9);
    out.staticJ = staticPowerW() * seconds;
    return out;
}

double
PowerModel::edp(const ActivityCounts &activity) const
{
    double seconds = activity.cycles / (machine.freqGHz * 1e9);
    return energy(activity).totalJ() * seconds;
}

} // namespace mech
