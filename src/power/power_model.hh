/**
 * @file
 * Analytical power/energy model (McPAT substitute).
 *
 * The paper's third case study (§6.3, Fig. 9) drives a
 * power/performance design-space exploration with McPAT at 32 nm.
 * McPAT is not available here, so this module provides an analytical
 * substitute with the scaling behaviours the case study exercises:
 *
 *  - dynamic energy per instruction grows with superscalar width
 *    (wider bypass networks, more ports);
 *  - per-cycle overhead (clock tree, latches) grows with width and
 *    pipeline depth;
 *  - SRAM access energy grows with capacity; static power grows with
 *    total on-chip SRAM;
 *  - voltage scales with frequency (lower-frequency design points run
 *    at lower voltage), so dynamic energy drops superlinearly and
 *    static power drops with V.
 *
 * Absolute watts are calibration constants; the case study's
 * conclusions depend only on the *relative* ordering of design
 * points, which these scalings determine (DESIGN.md §1).
 */

#ifndef MECH_POWER_POWER_MODEL_HH
#define MECH_POWER_POWER_MODEL_HH

#include <cstdint>

#include "branch/predictor.hh"
#include "cache/hierarchy.hh"
#include "isa/machine_params.hh"

namespace mech {

/** Activity counts the energy estimate is based on. */
struct ActivityCounts
{
    /** Execution cycles. */
    double cycles = 0;

    /** Dynamic instructions committed. */
    double instructions = 0;

    /** L1I accesses (instruction fetches). */
    double l1iAccesses = 0;

    /** L1D accesses (loads + stores). */
    double l1dAccesses = 0;

    /** Unified L2 accesses (L1 misses). */
    double l2Accesses = 0;

    /** Main-memory accesses (L2 misses). */
    double memAccesses = 0;

    /** Conditional branches (predictor lookups). */
    double branches = 0;
};

/** Energy estimate, decomposed. */
struct EnergyBreakdown
{
    double coreDynamicJ = 0;   ///< pipeline + functional units
    double cacheDynamicJ = 0;  ///< L1s + L2 + predictor SRAM
    double memoryDynamicJ = 0; ///< off-chip accesses
    double staticJ = 0;        ///< leakage over the run

    /** Total energy in joules. */
    double
    totalJ() const
    {
        return coreDynamicJ + cacheDynamicJ + memoryDynamicJ + staticJ;
    }
};

/** Analytical power model over one design point. */
class PowerModel
{
  public:
    /**
     * @param machine Core parameters (width, depth, frequency).
     * @param hierarchy Cache geometry.
     * @param predictor Branch predictor design (SRAM budget).
     */
    PowerModel(const MachineParams &machine,
               const HierarchyConfig &hierarchy, PredictorKind predictor);

    /** Estimate the energy of a run with the given activity. */
    EnergyBreakdown energy(const ActivityCounts &activity) const;

    /**
     * Energy-delay product in joule-seconds for a run of
     * @p activity; delay derives from activity.cycles at the
     * configured frequency.
     */
    double edp(const ActivityCounts &activity) const;

    /** Supply-voltage scale factor at the configured frequency. */
    double voltageScale() const;

    /** Static power in watts at the configured voltage. */
    double staticPowerW() const;

  private:
    MachineParams machine;
    HierarchyConfig hier;
    PredictorKind pred;
};

} // namespace mech

#endif // MECH_POWER_POWER_MODEL_HH
