/**
 * @file
 * Profiling results: the model inputs of the paper's Table 1.
 *
 * Split into the machine-independent program statistics (collected
 * once per binary) and the mixed program-machine statistics (cache /
 * TLB miss counts, branch predictor behaviour) that depend on the
 * memory-hierarchy and predictor configuration profiled.
 */

#ifndef MECH_PROFILER_PROFILE_DATA_HH
#define MECH_PROFILER_PROFILE_DATA_HH

#include <cstdint>
#include <vector>

#include "branch/profiler.hh"
#include "common/histogram.hh"
#include "common/types.hh"
#include "trace/trace.hh"

namespace mech {

/** Classification of a dependency's producer (paper §3.5). */
enum class ProducerKind : std::uint8_t {
    Unit, ///< unit-latency producer (IntAlu)
    LL,   ///< non-unit long-latency producer, loads excluded
    Load, ///< load producer (produces in the memory stage)
};

/**
 * Inter-instruction dependency-distance profile.
 *
 * Per consumer instruction, the *shortest* register dependency
 * distance is counted once, classified by the producing instruction's
 * op class; ties at equal distance prefer the costlier hazard
 * (loads > divide > multiply > fp > alu).
 *
 * Keeping the histogram per *producer op class* (rather than
 * pre-binning into unit/LL/load) keeps the profile machine
 * independent: whether a producer class is unit-latency or
 * long-latency is a property of the machine's latency table, decided
 * when the model is evaluated (Table 1's deps_unit / deps_LL /
 * deps_ld are then simple sums).
 */
struct DependencyProfile
{
    /** Histogram of consumer counts per producer class and distance. */
    std::array<Histogram, kNumOpClasses> byProducer;

    /** Histogram for producers of class @p oc. */
    Histogram &
    of(OpClass oc)
    {
        return byProducer[static_cast<std::size_t>(oc)];
    }

    /** Read-only access. */
    const Histogram &
    of(OpClass oc) const
    {
        return byProducer[static_cast<std::size_t>(oc)];
    }
};

/** Machine-independent program statistics (profile once per binary). */
struct ProgramStats
{
    /** Dynamic instruction count N. */
    InstCount n = 0;

    /** Dynamic instruction mix (N_i per op class). */
    InstMix mix;

    /** Dependency-distance profiles. */
    DependencyProfile deps;

    /** Dynamic conditional branches. */
    std::uint64_t branches = 0;

    /** Dynamically taken branches. */
    std::uint64_t takenBranches = 0;
};

/** Reason an access reached the unified L2 (for stream replay). */
enum class L2RefKind : std::uint8_t {
    Ifetch, ///< L1I miss
    Load,   ///< L1D load miss
    Store,  ///< L1D store miss (write-allocate traffic)
};

/** One reference of the captured L2 input stream. */
struct L2Ref
{
    Addr addr = 0;
    std::uint64_t instrIdx = 0; ///< dynamic index of the instruction
    L2RefKind kind = L2RefKind::Load;
};

/** Cache/TLB miss counts for one hierarchy configuration. */
struct MemoryStats
{
    /** I-fetch L1I misses that hit in L2. */
    std::uint64_t iFetchL2Hits = 0;

    /** I-fetch misses that go to memory. */
    std::uint64_t iFetchMemory = 0;

    /** Loads missing L1D but hitting L2 ("l2 access" events). */
    std::uint64_t loadL2Hits = 0;

    /** Loads missing L2 ("l2 miss" events). */
    std::uint64_t loadMemory = 0;

    /** Store L1D misses (informational; stores never block). */
    std::uint64_t storeL1Misses = 0;

    /** Instruction-TLB misses. */
    std::uint64_t itlbMisses = 0;

    /** Data-TLB misses on loads. */
    std::uint64_t dtlbMisses = 0;

    /**
     * Dynamic instruction indices of loads that missed L2 — the OoO
     * interval model derives memory-level parallelism (overlapping
     * long misses within a reorder-buffer window) from these.
     */
    std::vector<std::uint64_t> loadMemoryIdx;

    /** Dynamic indices of loads served by the L2 (same purpose). */
    std::vector<std::uint64_t> loadL2HitIdx;
};

/** Complete profiling result for one (trace, configuration) pair. */
struct WorkloadProfile
{
    /** Machine-independent program statistics. */
    ProgramStats program;

    /** Miss statistics for the profiled hierarchy. */
    MemoryStats memory;

    /** One profile per requested predictor kind. */
    std::vector<BranchProfile> branchProfiles;

    /**
     * Captured L2 input stream (only when requested): lets the design
     * space sweep re-derive MemoryStats for any L2 geometry without
     * re-touching the trace.
     */
    std::vector<L2Ref> l2Stream;

    /** Branch profile for a specific predictor kind. */
    const BranchProfile &
    branchProfileFor(PredictorKind kind) const
    {
        for (const auto &bp : branchProfiles) {
            if (bp.kind == kind)
                return bp;
        }
        panic("predictor kind not profiled: ", predictorName(kind));
    }
};

} // namespace mech

#endif // MECH_PROFILER_PROFILE_DATA_HH
