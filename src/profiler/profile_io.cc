#include "profiler/profile_io.hh"

#include <algorithm>
#include <array>
#include <cstddef>
#include <fstream>
#include <limits>
#include <ostream>

#include "branch/predictor.hh"

namespace mech {

namespace {

/** File magic: "MPRF". */
constexpr std::array<char, 4> kMagic = {'M', 'P', 'R', 'F'};

/** Trailing end marker: "MEND" (catches tail truncation). */
constexpr std::array<char, 4> kEndMarker = {'M', 'E', 'N', 'D'};

/** Artifact flag bits. */
constexpr std::uint32_t kFlagHasTrace = 1u << 0;

/**
 * Upfront reservation cap for length-prefixed sections.  The length
 * field of a corrupt file is untrusted: reserving all of it at once
 * would turn a forged length into a multi-GiB allocation
 * (std::bad_alloc) before any payload byte is read.  Reserving at
 * most this many entries keeps honest files allocation-efficient
 * while a forged length simply runs out of payload and raises the
 * truncation error.
 */
constexpr std::uint64_t kReserveCap = 1u << 16;

/** Little-endian byte writer over a std::ostream. */
class Writer
{
  public:
    explicit Writer(std::ostream &os) : os(os) {}

    void
    bytes(const void *data, std::size_t n)
    {
        os.write(static_cast<const char *>(data),
                 static_cast<std::streamsize>(n));
        if (!os)
            throw ProfileIoError("profile write failed");
    }

    void u8(std::uint8_t v) { bytes(&v, 1); }

    void
    u16(std::uint16_t v)
    {
        std::array<std::uint8_t, 2> b = {
            static_cast<std::uint8_t>(v),
            static_cast<std::uint8_t>(v >> 8)};
        bytes(b.data(), b.size());
    }

    void
    u32(std::uint32_t v)
    {
        std::array<std::uint8_t, 4> b = {
            static_cast<std::uint8_t>(v),
            static_cast<std::uint8_t>(v >> 8),
            static_cast<std::uint8_t>(v >> 16),
            static_cast<std::uint8_t>(v >> 24)};
        bytes(b.data(), b.size());
    }

    void
    u64(std::uint64_t v)
    {
        std::array<std::uint8_t, 8> b;
        for (std::size_t i = 0; i < 8; ++i)
            b[i] = static_cast<std::uint8_t>(v >> (8 * i));
        bytes(b.data(), b.size());
    }

    void
    str(const std::string &s)
    {
        u64(s.size());
        if (!s.empty())
            bytes(s.data(), s.size());
    }

  private:
    std::ostream &os;
};

/** Little-endian byte reader with truncation detection. */
class Reader
{
  public:
    explicit Reader(std::istream &is) : is(is) {}

    void
    bytes(void *data, std::size_t n)
    {
        is.read(static_cast<char *>(data),
                static_cast<std::streamsize>(n));
        if (static_cast<std::size_t>(is.gcount()) != n)
            throw ProfileIoError("truncated profile artifact");
    }

    std::uint8_t
    u8()
    {
        std::uint8_t v;
        bytes(&v, 1);
        return v;
    }

    std::uint16_t
    u16()
    {
        std::array<std::uint8_t, 2> b;
        bytes(b.data(), b.size());
        return static_cast<std::uint16_t>(
            b[0] | static_cast<std::uint16_t>(b[1]) << 8);
    }

    std::uint32_t
    u32()
    {
        std::array<std::uint8_t, 4> b;
        bytes(b.data(), b.size());
        return b[0] | static_cast<std::uint32_t>(b[1]) << 8 |
               static_cast<std::uint32_t>(b[2]) << 16 |
               static_cast<std::uint32_t>(b[3]) << 24;
    }

    std::uint64_t
    u64()
    {
        std::array<std::uint8_t, 8> b;
        bytes(b.data(), b.size());
        std::uint64_t v = 0;
        for (std::size_t i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
        return v;
    }

    std::string
    str()
    {
        std::uint64_t n = u64();
        if (n > (1u << 20))
            throw ProfileIoError("implausible string length");
        std::string s(n, '\0');
        if (n)
            bytes(s.data(), n);
        return s;
    }

  private:
    std::istream &is;
};

void
writeHistogram(Writer &w, const Histogram &h)
{
    const auto &counts = h.data();
    w.u64(counts.size());
    for (std::uint64_t c : counts)
        w.u64(c);
}

Histogram
readHistogram(Reader &r)
{
    Histogram h;
    std::uint64_t size = r.u64();
    if (size > (1u << 24))
        throw ProfileIoError("implausible histogram size");
    for (std::uint64_t k = 0; k < size; ++k) {
        std::uint64_t c = r.u64();
        if (c)
            h.add(k, c);
    }
    return h;
}

void
writeIdxVector(Writer &w, const std::vector<std::uint64_t> &v)
{
    w.u64(v.size());
    for (std::uint64_t x : v)
        w.u64(x);
}

std::vector<std::uint64_t>
readIdxVector(Reader &r)
{
    std::uint64_t n = r.u64();
    if (n > (1ull << 32))
        throw ProfileIoError("implausible index-vector length");
    std::vector<std::uint64_t> v;
    v.reserve(std::min(n, kReserveCap));
    for (std::uint64_t i = 0; i < n; ++i)
        v.push_back(r.u64());
    return v;
}

void
writeMemoryStats(Writer &w, const MemoryStats &m)
{
    w.u64(m.iFetchL2Hits);
    w.u64(m.iFetchMemory);
    w.u64(m.loadL2Hits);
    w.u64(m.loadMemory);
    w.u64(m.storeL1Misses);
    w.u64(m.itlbMisses);
    w.u64(m.dtlbMisses);
    writeIdxVector(w, m.loadMemoryIdx);
    writeIdxVector(w, m.loadL2HitIdx);
}

MemoryStats
readMemoryStats(Reader &r)
{
    MemoryStats m;
    m.iFetchL2Hits = r.u64();
    m.iFetchMemory = r.u64();
    m.loadL2Hits = r.u64();
    m.loadMemory = r.u64();
    m.storeL1Misses = r.u64();
    m.itlbMisses = r.u64();
    m.dtlbMisses = r.u64();
    m.loadMemoryIdx = readIdxVector(r);
    m.loadL2HitIdx = readIdxVector(r);
    return m;
}

void
writeProgramStats(Writer &w, const ProgramStats &p)
{
    w.u64(p.n);
    w.u32(static_cast<std::uint32_t>(kNumOpClasses));
    for (InstCount c : p.mix.counts)
        w.u64(c);
    w.u64(p.mix.total);
    for (std::size_t oc = 0; oc < kNumOpClasses; ++oc)
        writeHistogram(w, p.deps.of(static_cast<OpClass>(oc)));
    w.u64(p.branches);
    w.u64(p.takenBranches);
}

ProgramStats
readProgramStats(Reader &r)
{
    ProgramStats p;
    p.n = r.u64();
    if (r.u32() != kNumOpClasses)
        throw ProfileIoError("op-class count mismatch");
    for (InstCount &c : p.mix.counts)
        c = r.u64();
    p.mix.total = r.u64();
    for (std::size_t oc = 0; oc < kNumOpClasses; ++oc)
        p.deps.of(static_cast<OpClass>(oc)) = readHistogram(r);
    p.branches = r.u64();
    p.takenBranches = r.u64();
    return p;
}

void
writeBranchProfiles(Writer &w, const std::vector<BranchProfile> &bps)
{
    w.u32(static_cast<std::uint32_t>(bps.size()));
    for (const BranchProfile &bp : bps) {
        w.u8(static_cast<std::uint8_t>(bp.kind));
        w.u64(bp.branches);
        w.u64(bp.mispredicts);
        w.u64(bp.predictedTaken);
        w.u64(bp.predictedTakenCorrect);
    }
}

std::vector<BranchProfile>
readBranchProfiles(Reader &r)
{
    std::uint32_t n = r.u32();
    if (n > 64)
        throw ProfileIoError("implausible branch-profile count");
    std::vector<BranchProfile> bps(n);
    for (BranchProfile &bp : bps) {
        std::uint8_t kind = r.u8();
        if (kind > static_cast<std::uint8_t>(PredictorKind::Hybrid3K5))
            throw ProfileIoError("unknown predictor kind in artifact");
        bp.kind = static_cast<PredictorKind>(kind);
        bp.branches = r.u64();
        bp.mispredicts = r.u64();
        bp.predictedTaken = r.u64();
        bp.predictedTakenCorrect = r.u64();
    }
    return bps;
}

void
writeL2Stream(Writer &w, const std::vector<L2Ref> &stream)
{
    w.u64(stream.size());
    for (const L2Ref &ref : stream) {
        w.u64(ref.addr);
        w.u64(ref.instrIdx);
        w.u8(static_cast<std::uint8_t>(ref.kind));
    }
}

std::vector<L2Ref>
readL2Stream(Reader &r)
{
    std::uint64_t n = r.u64();
    if (n > (1ull << 32))
        throw ProfileIoError("implausible L2-stream length");
    std::vector<L2Ref> stream;
    stream.reserve(std::min(n, kReserveCap));
    for (std::uint64_t i = 0; i < n; ++i) {
        L2Ref ref;
        ref.addr = r.u64();
        ref.instrIdx = r.u64();
        std::uint8_t kind = r.u8();
        if (kind > static_cast<std::uint8_t>(L2RefKind::Store))
            throw ProfileIoError("unknown L2 reference kind");
        ref.kind = static_cast<L2RefKind>(kind);
        stream.push_back(ref);
    }
    return stream;
}

void
writeTrace(Writer &w, const Trace &trace)
{
    w.u64(trace.size());
    for (const DynInstr &di : trace) {
        w.u64(di.pc);
        w.u64(di.effAddr);
        w.u64(di.targetPc);
        w.u16(di.dst);
        w.u16(di.src1);
        w.u16(di.src2);
        w.u8(static_cast<std::uint8_t>(di.op));
        w.u8(di.taken ? 1 : 0);
    }
}

Trace
readTrace(Reader &r)
{
    std::uint64_t n = r.u64();
    if (n > (1ull << 32))
        throw ProfileIoError("implausible trace length");
    Trace trace;
    trace.reserve(std::min(n, kReserveCap));
    for (std::uint64_t i = 0; i < n; ++i) {
        DynInstr di;
        di.pc = r.u64();
        di.effAddr = r.u64();
        di.targetPc = r.u64();
        di.dst = r.u16();
        di.src1 = r.u16();
        di.src2 = r.u16();
        std::uint8_t op = r.u8();
        if (op >= kNumOpClasses)
            throw ProfileIoError("unknown op class in trace");
        di.op = static_cast<OpClass>(op);
        di.taken = r.u8() != 0;
        trace.push(di);
    }
    return trace;
}

} // namespace

void
writeProfileArtifact(const ProfileArtifact &artifact, std::ostream &os)
{
    Writer w(os);
    w.bytes(kMagic.data(), kMagic.size());
    w.u32(kProfileFormatVersion);
    w.u32(artifact.hasTrace ? kFlagHasTrace : 0);
    w.str(artifact.name);

    writeProgramStats(w, artifact.profile.program);
    writeMemoryStats(w, artifact.profile.memory);
    writeBranchProfiles(w, artifact.profile.branchProfiles);
    writeL2Stream(w, artifact.profile.l2Stream);

    if (artifact.hasTrace)
        writeTrace(w, artifact.trace);

    w.bytes(kEndMarker.data(), kEndMarker.size());
}

ProfileArtifact
readProfileArtifact(std::istream &is)
{
    Reader r(is);

    std::array<char, 4> magic;
    r.bytes(magic.data(), magic.size());
    if (magic != kMagic)
        throw ProfileIoError("not a profile artifact (bad magic)");

    std::uint32_t version = r.u32();
    if (version == 0 || version > kProfileFormatVersion) {
        throw ProfileIoError(
            "unsupported profile format version " +
            std::to_string(version) + " (reader supports up to " +
            std::to_string(kProfileFormatVersion) + ")");
    }

    std::uint32_t flags = r.u32();
    ProfileArtifact artifact;
    artifact.hasTrace = (flags & kFlagHasTrace) != 0;
    artifact.name = r.str();

    artifact.profile.program = readProgramStats(r);
    artifact.profile.memory = readMemoryStats(r);
    artifact.profile.branchProfiles = readBranchProfiles(r);
    artifact.profile.l2Stream = readL2Stream(r);

    if (artifact.hasTrace)
        artifact.trace = readTrace(r);

    std::array<char, 4> end;
    r.bytes(end.data(), end.size());
    if (end != kEndMarker)
        throw ProfileIoError("corrupt profile artifact (bad end marker)");

    return artifact;
}

void
saveProfileArtifact(const ProfileArtifact &artifact,
                    const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        throw ProfileIoError("cannot open '" + path + "' for writing");
    writeProfileArtifact(artifact, os);
    os.flush();
    if (!os)
        throw ProfileIoError("write to '" + path + "' failed");
}

ProfileArtifact
loadProfileArtifact(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw ProfileIoError("cannot open '" + path + "' for reading");
    return readProfileArtifact(is);
}

void
writeProfileJson(const ProfileArtifact &artifact, std::ostream &os)
{
    const WorkloadProfile &p = artifact.profile;
    os << "{\n"
       << "  \"name\": \"" << artifact.name << "\",\n"
       << "  \"format_version\": " << kProfileFormatVersion << ",\n"
       << "  \"instructions\": " << p.program.n << ",\n"
       << "  \"branches\": " << p.program.branches << ",\n"
       << "  \"taken_branches\": " << p.program.takenBranches << ",\n"
       << "  \"mix\": {";
    bool first = true;
    for (std::size_t oc = 0; oc < kNumOpClasses; ++oc) {
        InstCount c = p.program.mix.counts[oc];
        if (!c)
            continue;
        os << (first ? "" : ", ") << '"'
           << opClassName(static_cast<OpClass>(oc)) << "\": " << c;
        first = false;
    }
    os << "},\n"
       << "  \"memory\": {\n"
       << "    \"ifetch_l2_hits\": " << p.memory.iFetchL2Hits << ",\n"
       << "    \"ifetch_memory\": " << p.memory.iFetchMemory << ",\n"
       << "    \"load_l2_hits\": " << p.memory.loadL2Hits << ",\n"
       << "    \"load_memory\": " << p.memory.loadMemory << ",\n"
       << "    \"store_l1_misses\": " << p.memory.storeL1Misses << ",\n"
       << "    \"itlb_misses\": " << p.memory.itlbMisses << ",\n"
       << "    \"dtlb_misses\": " << p.memory.dtlbMisses << "\n"
       << "  },\n"
       << "  \"branch_profiles\": [";
    for (std::size_t i = 0; i < p.branchProfiles.size(); ++i) {
        const BranchProfile &bp = p.branchProfiles[i];
        os << (i ? ", " : "") << "{\"kind\": \""
           << predictorName(bp.kind)
           << "\", \"branches\": " << bp.branches
           << ", \"mispredicts\": " << bp.mispredicts << "}";
    }
    os << "],\n"
       << "  \"l2_stream_refs\": " << p.l2Stream.size() << ",\n"
       << "  \"has_trace\": " << (artifact.hasTrace ? "true" : "false")
       << ",\n"
       << "  \"trace_instructions\": " << artifact.trace.size() << "\n"
       << "}\n";
}

std::string
profileArtifactPath(const std::string &dir, const std::string &name)
{
    std::string path = dir;
    if (!path.empty() && path.back() != '/')
        path += '/';
    return path + name + kProfileExtension;
}

} // namespace mech
