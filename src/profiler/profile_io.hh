/**
 * @file
 * Serializable profile artifacts: the `.mprof` format.
 *
 * The paper's workflow is "profile once, predict the whole design
 * space"; an on-disk profile artifact makes the expensive half of that
 * workflow persistent, so a profiling pass in one process serves model
 * evaluations in any number of later processes (tools/mech_profile
 * writes artifacts; calibrate and the figure benches consume them via
 * --profile-dir).
 *
 * An artifact carries the complete profiling result for one benchmark:
 * the machine-independent ProgramStats, the MemoryStats of the profiled
 * hierarchy, every trained BranchProfile, and the captured L2 input
 * stream that lets resweepL2() re-derive MemoryStats for any L2
 * geometry.  The dynamic trace itself is included by default so
 * trace-replaying backends ("sim") work from a loaded artifact too;
 * model-only artifacts can omit it (roughly 40x smaller).
 *
 * Format: a versioned little-endian binary layout — stable across
 * hosts of either endianness because every integer is encoded
 * byte-by-byte.  All profile quantities are integers, so a round trip
 * is exact and model results computed from a loaded artifact are
 * bit-identical to the in-process path.  A JSON debug dump
 * (writeProfileJson) mirrors the summary statistics for humans.
 *
 * Readers reject bad magic, truncated files, and artifacts written by
 * future format versions with ProfileIoError.
 */

#ifndef MECH_PROFILER_PROFILE_IO_HH
#define MECH_PROFILER_PROFILE_IO_HH

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "profiler/profile_data.hh"
#include "trace/trace.hh"

namespace mech {

/** Error raised for any malformed or unreadable artifact. */
class ProfileIoError : public std::runtime_error
{
  public:
    explicit ProfileIoError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** Current `.mprof` format version. */
inline constexpr std::uint32_t kProfileFormatVersion = 1;

/** File extension of profile artifacts. */
inline constexpr const char *kProfileExtension = ".mprof";

/** A complete serializable profiling result for one benchmark. */
struct ProfileArtifact
{
    /** Benchmark name the profile was collected for. */
    std::string name;

    /** The profiling result (program + memory + branch + L2 stream). */
    WorkloadProfile profile;

    /** The profiled dynamic trace (empty when hasTrace is false). */
    Trace trace;

    /** True when the artifact carries the trace. */
    bool hasTrace = true;
};

/** Serialize @p artifact to @p os.  Throws ProfileIoError on I/O failure. */
void writeProfileArtifact(const ProfileArtifact &artifact,
                          std::ostream &os);

/**
 * Deserialize an artifact from @p is.
 *
 * Throws ProfileIoError on bad magic, truncation, unsupported future
 * versions, or any malformed payload.
 */
ProfileArtifact readProfileArtifact(std::istream &is);

/** Save @p artifact to @p path (binary). */
void saveProfileArtifact(const ProfileArtifact &artifact,
                         const std::string &path);

/** Load an artifact from @p path. */
ProfileArtifact loadProfileArtifact(const std::string &path);

/**
 * Human-readable JSON summary of @p artifact (counters and per-kind
 * branch statistics; not a lossless encoding — the binary format is).
 */
void writeProfileJson(const ProfileArtifact &artifact, std::ostream &os);

/** Canonical artifact path for benchmark @p name under @p dir. */
std::string profileArtifactPath(const std::string &dir,
                                const std::string &name);

} // namespace mech

#endif // MECH_PROFILER_PROFILE_IO_HH
