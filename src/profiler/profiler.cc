#include "profiler/profiler.hh"

#include <array>
#include <limits>

#include "common/logging.hh"

namespace mech {

namespace {

/**
 * Tie-break priority of producer classes at equal dependency
 * distance: prefer the costlier hazard.  Loads rank highest (they
 * produce latest, in the memory stage), then the longer-latency
 * arithmetic classes.
 */
int
producerPriority(OpClass oc)
{
    switch (oc) {
      case OpClass::Load: return 6;
      case OpClass::IntDiv: return 5;
      case OpClass::FpDiv: return 5;
      case OpClass::IntMult: return 4;
      case OpClass::FpMult: return 4;
      case OpClass::FpAlu: return 3;
      default: return 1;
    }
}

} // namespace

WorkloadProfile
profileTrace(const Trace &trace, const ProfilerConfig &config)
{
    WorkloadProfile out;
    out.program.n = trace.size();

    CacheHierarchy hier(config.hierarchy);
    BranchProfiler branches(config.predictors);

    struct LastWrite
    {
        std::uint64_t idx = 0;
        OpClass op = OpClass::IntAlu;
        bool valid = false;
    };
    std::array<LastWrite, kNumArchRegs> last_write{};

    const std::uint64_t max_d = config.maxDepDistance;

    // The instruction mix is accumulated inside the main walk instead
    // of a separate trace.mix() pass.
    InstMix &mix = out.program.mix;

    // Same-block fast paths.  The L1I and iTLB are touched only by
    // fetches, and the L1D/dTLB only by data accesses, so an access
    // to the same block as the immediately preceding one of its kind
    // is an L1 + TLB hit by construction: the block was installed (or
    // refreshed) to MRU and nothing has touched the structure since.
    // Skipping the hierarchy call changes no counter, captures no L2
    // reference, and preserves every relative LRU order — the profile
    // is bit-identical, just cheaper.  A cache block can only span a
    // page when blocks are larger than pages, so the paths are gated
    // on that (never true for real geometries).
    const Addr ifetch_block_bytes = config.hierarchy.l1i.blockBytes;
    const Addr data_block_bytes = config.hierarchy.l1d.blockBytes;
    const bool ifetch_fast =
        ifetch_block_bytes <= config.hierarchy.itlb.pageBytes;
    const bool data_fast =
        data_block_bytes <= config.hierarchy.dtlb.pageBytes;
    Addr last_ifetch_block = ~Addr(0);
    Addr last_data_block = ~Addr(0);

    for (std::uint64_t i = 0; i < trace.size(); ++i) {
        const DynInstr &di = trace[i];

        ++mix.counts[static_cast<std::size_t>(di.op)];

        // ---- instruction-side memory behaviour -------------------------
        const Addr fetch_block = di.pc / ifetch_block_bytes;
        if (!ifetch_fast || fetch_block != last_ifetch_block) {
            last_ifetch_block = fetch_block;
            HierAccess ifetch = hier.fetch(di.pc);
            if (ifetch.tlbMiss)
                ++out.memory.itlbMisses;
            if (ifetch.level == MemLevel::L2) {
                ++out.memory.iFetchL2Hits;
                if (config.captureL2Stream)
                    out.l2Stream.push_back({di.pc, i, L2RefKind::Ifetch});
            } else if (ifetch.level == MemLevel::Memory) {
                ++out.memory.iFetchMemory;
                if (config.captureL2Stream)
                    out.l2Stream.push_back({di.pc, i, L2RefKind::Ifetch});
            }
        }

        // ---- dependency measurement (shortest distance wins) -----------
        std::uint64_t best_d = std::numeric_limits<std::uint64_t>::max();
        OpClass best_op = OpClass::IntAlu;
        for (RegIndex src : {di.src1, di.src2}) {
            if (src == kNoReg)
                continue;
            const LastWrite &lw = last_write[src];
            if (!lw.valid)
                continue;
            std::uint64_t d = i - lw.idx;
            if (d < best_d ||
                (d == best_d &&
                 producerPriority(lw.op) > producerPriority(best_op))) {
                best_d = d;
                best_op = lw.op;
            }
        }
        if (best_d <= max_d)
            out.program.deps.of(best_op).add(best_d);

        // ---- data-side memory behaviour ---------------------------------
        if (di.op == OpClass::Load) {
            const Addr data_block = di.effAddr / data_block_bytes;
            if (data_fast && data_block == last_data_block) {
                // L1 hit by construction: nothing to record.
            } else {
                HierAccess acc = hier.data(di.effAddr, false);
                if (acc.tlbMiss)
                    ++out.memory.dtlbMisses;
                if (acc.level == MemLevel::L2) {
                    ++out.memory.loadL2Hits;
                    out.memory.loadL2HitIdx.push_back(i);
                    if (config.captureL2Stream) {
                        out.l2Stream.push_back(
                            {di.effAddr, i, L2RefKind::Load});
                    }
                } else if (acc.level == MemLevel::Memory) {
                    ++out.memory.loadMemory;
                    out.memory.loadMemoryIdx.push_back(i);
                    if (config.captureL2Stream) {
                        out.l2Stream.push_back(
                            {di.effAddr, i, L2RefKind::Load});
                    }
                }
            }
            last_data_block = data_block;
        } else if (di.op == OpClass::Store) {
            // Stores allocate but never block; TLB misses on stores are
            // absorbed by the ideal store buffer (DESIGN.md §3).
            // Stores always take the full path: they must set the
            // line's dirty state, so only the subsequent same-block
            // accesses are skippable.
            HierAccess acc = hier.data(di.effAddr, true);
            if (acc.level != MemLevel::L1) {
                ++out.memory.storeL1Misses;
                if (config.captureL2Stream) {
                    out.l2Stream.push_back(
                        {di.effAddr, i, L2RefKind::Store});
                }
            }
            last_data_block = di.effAddr / data_block_bytes;
        }

        // ---- branch behaviour -------------------------------------------
        if (isBranch(di.op)) {
            ++out.program.branches;
            if (di.taken)
                ++out.program.takenBranches;
            branches.observe(di.pc, di.taken);
        }

        // ---- producer side ------------------------------------------------
        if (di.hasDst())
            last_write[di.dst] = {i, di.op, true};
    }

    mix.total = trace.size();
    out.branchProfiles = branches.profiles();
    return out;
}

MemoryStats
resweepL2(const WorkloadProfile &profile, const CacheConfig &l2_config)
{
    MECH_ASSERT(!profile.l2Stream.empty() ||
                    (profile.memory.iFetchL2Hits +
                     profile.memory.iFetchMemory +
                     profile.memory.loadL2Hits + profile.memory.loadMemory +
                     profile.memory.storeL1Misses) == 0,
                "resweepL2 requires a profile captured with "
                "captureL2Stream=true");

    MemoryStats out;
    // L1/TLB statistics are unaffected by L2 geometry.
    out.itlbMisses = profile.memory.itlbMisses;
    out.dtlbMisses = profile.memory.dtlbMisses;
    out.storeL1Misses = profile.memory.storeL1Misses;

    SetAssocCache l2(l2_config);
    for (const auto &ref : profile.l2Stream) {
        bool hit = l2.access(ref.addr, ref.kind == L2RefKind::Store);
        switch (ref.kind) {
          case L2RefKind::Ifetch:
            hit ? ++out.iFetchL2Hits : ++out.iFetchMemory;
            break;
          case L2RefKind::Load:
            if (hit) {
                ++out.loadL2Hits;
                out.loadL2HitIdx.push_back(ref.instrIdx);
            } else {
                ++out.loadMemory;
                out.loadMemoryIdx.push_back(ref.instrIdx);
            }
            break;
          case L2RefKind::Store:
            break; // stores never block; allocation already applied
        }
    }
    return out;
}

} // namespace mech
