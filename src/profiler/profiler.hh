/**
 * @file
 * The profiling pass: one walk over a dynamic trace collecting every
 * model input (paper Fig. 2 "profiling run").
 *
 * Program statistics (mix, dependency distances) are machine
 * independent; the same pass also runs the trace through a concrete
 * cache hierarchy and a set of branch predictors to collect the mixed
 * program-machine statistics.  Re-profiling is only needed when the
 * L1/TLB geometry changes; L2 geometry sweeps reuse the captured L2
 * stream (see resweepL2) and predictor sweeps are all collected in
 * this single pass.
 */

#ifndef MECH_PROFILER_PROFILER_HH
#define MECH_PROFILER_PROFILER_HH

#include <cstdint>
#include <vector>

#include "cache/cache.hh"
#include "cache/hierarchy.hh"
#include "profiler/profile_data.hh"
#include "trace/trace.hh"

namespace mech {

/** Options for one profiling pass. */
struct ProfilerConfig
{
    /** Hierarchy to collect miss statistics for. */
    HierarchyConfig hierarchy;

    /** Predictors to train simultaneously. */
    std::vector<PredictorKind> predictors = {PredictorKind::Gshare1K,
                                             PredictorKind::Hybrid3K5};

    /** Capture the L2 input stream for later geometry sweeps. */
    bool captureL2Stream = false;

    /** Longest dependency distance recorded in the histograms. */
    std::uint64_t maxDepDistance = 63;
};

/** Run the profiling pass over @p trace. */
WorkloadProfile profileTrace(const Trace &trace,
                             const ProfilerConfig &config);

/**
 * Re-derive MemoryStats for a different unified-L2 geometry by
 * replaying the captured L2 stream of @p profile.
 *
 * L1 and TLB statistics are geometry-invariant under this sweep and
 * are copied through.
 *
 * @pre profile was collected with captureL2Stream = true.
 */
MemoryStats resweepL2(const WorkloadProfile &profile,
                      const CacheConfig &l2_config);

} // namespace mech

#endif // MECH_PROFILER_PROFILER_HH
