#include "search/cache_io.hh"

#include <cstdio>
#include <cstring>
#include <optional>
#include <utility>

namespace mech {

namespace {

constexpr char kMagic[4] = {'M', 'C', 'S', 'P'};

/** Append @p v little-endian, byte by byte. */
template <typename T>
void
putU(std::string &out, T v)
{
    for (std::size_t i = 0; i < sizeof(T); ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putF64(std::string &out, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    putU(out, bits);
}

void
putString(std::string &out, std::string_view s)
{
    putU(out, static_cast<std::uint32_t>(s.size()));
    out.append(s.data(), s.size());
}

/** Bounded little-endian reader over the mapped bytes. */
class Reader
{
  public:
    explicit Reader(std::string_view bytes) : data(bytes) {}

    bool
    take(std::size_t n, const char **out)
    {
        if (data.size() - pos < n)
            return false;
        *out = data.data() + pos;
        pos += n;
        return true;
    }

    template <typename T>
    bool
    getU(T *out)
    {
        const char *p;
        if (!take(sizeof(T), &p))
            return false;
        T v = 0;
        for (std::size_t i = 0; i < sizeof(T); ++i) {
            v |= static_cast<T>(static_cast<unsigned char>(p[i]))
                 << (8 * i);
        }
        *out = v;
        return true;
    }

    bool
    getF64(double *out)
    {
        std::uint64_t bits;
        if (!getU(&bits))
            return false;
        std::memcpy(out, &bits, sizeof(*out));
        return true;
    }

    bool
    getString(std::string *out)
    {
        std::uint32_t len;
        const char *p;
        if (!getU(&len) || !take(len, &p))
            return false;
        out->assign(p, len);
        return true;
    }

    bool atEnd() const { return pos == data.size(); }

  private:
    std::string_view data;
    std::size_t pos = 0;
};

/** FNV-1a over a string, for spill file names. */
std::uint64_t
fnv1a(std::string_view s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

bool
fail(std::string *error, const std::string &why)
{
    if (error)
        *error = why;
    return false;
}

} // namespace

std::string
encodeEvalCache(const EvalCache &cache, const std::string &group_key,
                std::uint32_t aggregate_len,
                std::uint32_t per_bench_len)
{
    std::string out;
    out.append(kMagic, sizeof(kMagic));
    putU(out, kCacheSpillFormatVersion);
    // Probe hash: lets a reader detect a changed DesignPoint::hash()
    // from the header alone, before touching any entry.
    putU(out, defaultDesignPoint().hash());
    putString(out, group_key);
    putU(out, aggregate_len);
    putU(out, per_bench_len);

    const std::vector<const SearchEval *> entries = cache.entries();
    putU(out, static_cast<std::uint64_t>(entries.size()));
    for (const SearchEval *eval : entries) {
        putString(out, eval->point.toKey());
        putU(out, eval->point.hash());
        for (double v : eval->aggregate)
            putF64(out, v);
        for (double v : eval->perBench)
            putF64(out, v);
    }
    return out;
}

bool
decodeEvalCache(std::string_view bytes,
                const std::string &expected_group_key,
                std::uint32_t aggregate_len,
                std::uint32_t per_bench_len, EvalCache *out,
                std::string *error)
{
    Reader r(bytes);
    const char *magic;
    if (!r.take(sizeof(kMagic), &magic) ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        return fail(error, "not a cache spill (bad magic)");
    }
    std::uint32_t version;
    if (!r.getU(&version))
        return fail(error, "truncated header");
    if (version != kCacheSpillFormatVersion) {
        return fail(error, "unsupported spill format version " +
                               std::to_string(version) + " (this "
                               "build reads version " +
                               std::to_string(kCacheSpillFormatVersion) +
                               ")");
    }
    std::uint64_t probe;
    if (!r.getU(&probe))
        return fail(error, "truncated header");
    if (probe != defaultDesignPoint().hash()) {
        return fail(error,
                    "DesignPoint hash scheme changed since this spill "
                    "was written; discarding it");
    }
    std::string group_key;
    if (!r.getString(&group_key))
        return fail(error, "truncated group key");
    if (group_key != expected_group_key) {
        return fail(error, "spill belongs to group '" + group_key +
                               "', not '" + expected_group_key + "'");
    }
    std::uint32_t agg_len, pb_len;
    if (!r.getU(&agg_len) || !r.getU(&pb_len))
        return fail(error, "truncated layout header");
    if (agg_len != aggregate_len || pb_len != per_bench_len) {
        return fail(error, "objective layout mismatch (spill " +
                               std::to_string(agg_len) + "/" +
                               std::to_string(pb_len) + ", group " +
                               std::to_string(aggregate_len) + "/" +
                               std::to_string(per_bench_len) + ")");
    }

    std::uint64_t count;
    if (!r.getU(&count))
        return fail(error, "truncated entry count");
    for (std::uint64_t i = 0; i < count; ++i) {
        std::string key;
        std::uint64_t stored_hash;
        if (!r.getString(&key) || !r.getU(&stored_hash))
            return fail(error, "truncated entry " + std::to_string(i));
        std::optional<DesignPoint> point = DesignPoint::fromKey(key);
        if (!point) {
            return fail(error, "entry " + std::to_string(i) +
                                   " has a malformed point key '" +
                                   key + "'");
        }
        if (point->hash() != stored_hash) {
            return fail(error,
                        "entry " + std::to_string(i) +
                            " hash mismatch (stale DesignPoint hash "
                            "scheme); discarding spill");
        }
        SearchEval eval;
        eval.point = *point;
        eval.aggregate.resize(aggregate_len);
        eval.perBench.resize(per_bench_len);
        for (double &v : eval.aggregate) {
            if (!r.getF64(&v))
                return fail(error,
                            "truncated entry " + std::to_string(i));
        }
        for (double &v : eval.perBench) {
            if (!r.getF64(&v))
                return fail(error,
                            "truncated entry " + std::to_string(i));
        }
        out->insert(std::move(eval));
    }
    if (!r.atEnd())
        return fail(error, "trailing bytes after the last entry");
    return true;
}

std::string
cacheSpillPath(const std::string &dir, const std::string &group_key)
{
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(fnv1a(group_key)));
    std::string path = dir;
    if (!path.empty() && path.back() != '/')
        path += '/';
    return path + hex + kCacheSpillExtension;
}

} // namespace mech
