/**
 * @file
 * Persistent spills of a serve group's EvalCache: the `.mcache`
 * format behind mech_serve --cache-dir.
 *
 * A long-running server converges to a warm memo — restarting it
 * used to throw that state away.  A spill captures one group's
 * cache exactly: every SearchEval in first-evaluation order, each as
 * its DesignPoint::toKey() string, its content hash, and the raw
 * aggregate/per-benchmark objective values (IEEE-754 bit patterns,
 * so a load is bit-identical to the evaluations that produced it).
 *
 * Like the `.mprof` codec (profiler/profile_io.hh) the layout is a
 * versioned little-endian binary encoding, integers written
 * byte-by-byte so the file is stable across hosts of either
 * endianness.
 *
 * Loads are strict — a spill is a cache, and a stale cache is worse
 * than a cold one.  decodeEvalCache() rejects, without crashing:
 *
 *   - bad magic, truncation, trailing bytes, future format versions;
 *   - a group-key mismatch (the file belongs to another
 *     bench/backends/objectives combination);
 *   - an objective-layout mismatch (aggregate/per-bench lengths);
 *   - any DesignPoint hash mismatch: each entry's stored hash is
 *     recomputed from its re-parsed key, and a header probe hash
 *     (the default point, hashed at write time) is checked first —
 *     so artifacts keyed by an older DesignPoint::hash() (PR 7
 *     widened it) are invalidated wholesale instead of silently
 *     colliding.
 *
 * Rejection means "start cold", never "crash the server".
 */

#ifndef MECH_SEARCH_CACHE_IO_HH
#define MECH_SEARCH_CACHE_IO_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "search/eval_cache.hh"

namespace mech {

/** Current `.mcache` spill format version. */
inline constexpr std::uint32_t kCacheSpillFormatVersion = 1;

/** File extension of cache spills. */
inline constexpr const char *kCacheSpillExtension = ".mcache";

/**
 * Serialize @p cache (entries in firstIndex order) for the group
 * identified by @p group_key, whose SearchEval layout is
 * @p aggregate_len aggregate and @p per_bench_len per-benchmark
 * values per entry.
 */
std::string encodeEvalCache(const EvalCache &cache,
                            const std::string &group_key,
                            std::uint32_t aggregate_len,
                            std::uint32_t per_bench_len);

/**
 * Decode a spill into @p out (which must be empty), validating it
 * against the expected group key and layout.  Returns false with a
 * reason in @p error (when non-null) on any mismatch or corruption;
 * @p out may then hold a partial load and must be discarded.
 * Insertion order equals the writer's firstIndex order, so a loaded
 * cache reproduces the original entries() sequence exactly.
 */
bool decodeEvalCache(std::string_view bytes,
                     const std::string &expected_group_key,
                     std::uint32_t aggregate_len,
                     std::uint32_t per_bench_len, EvalCache *out,
                     std::string *error = nullptr);

/**
 * Canonical spill path for @p group_key under @p dir: a stable FNV-1a
 * hash of the key (keys name benchmarks/backends/objectives and are
 * not file-system safe) plus ".mcache".
 */
std::string cacheSpillPath(const std::string &dir,
                           const std::string &group_key);

} // namespace mech

#endif // MECH_SEARCH_CACHE_IO_HH
