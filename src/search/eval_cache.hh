/**
 * @file
 * Memoized evaluation cache keyed by DesignPoint content identity.
 *
 * Iterative strategies (hill-climbing, genetic populations) revisit
 * design points constantly; the cache makes every revisit cost zero
 * model evaluations.  Keys use DesignPoint::hash()/operator== — the
 * stable content identity added alongside this subsystem — and
 * entries live in a deque so pointers handed out stay valid for the
 * cache's lifetime, letting strategies pass results around without
 * copying.
 *
 * Thread safety: find() and insert() take an internal mutex, so the
 * cache may be probed from pool workers.  Determinism is preserved
 * by the SearchEvaluator calling insert() only from the coordinating
 * thread in request order, which makes entry order (SearchEval::
 * firstIndex) independent of worker count.
 */

#ifndef MECH_SEARCH_EVAL_CACHE_HH
#define MECH_SEARCH_EVAL_CACHE_HH

#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "dse/design_space.hh"

namespace mech {

/** One cached search evaluation of one design point. */
struct SearchEval
{
    /** The evaluated point. */
    DesignPoint point;

    /**
     * Aggregate objective values (arithmetic mean across the
     * evaluator's benchmarks), in objective order.  Raw values — the
     * optimization direction is applied by Objective::normalized().
     */
    std::vector<double> aggregate;

    /** Per-benchmark raw values, flattened [bench * objectives + k]. */
    std::vector<double> perBench;

    /** Insertion index: deterministic first-evaluation order. */
    std::uint64_t firstIndex = 0;
};

/** Thread-safe memo of SearchEvals with stable entry pointers. */
class EvalCache
{
  public:
    EvalCache() = default;
    EvalCache(const EvalCache &) = delete;
    EvalCache &operator=(const EvalCache &) = delete;

    /** The cached evaluation of @p point, or null on a miss. */
    const SearchEval *
    find(const DesignPoint &point) const
    {
        std::lock_guard<std::mutex> lock(mtx);
        auto it = index.find(point);
        return it == index.end() ? nullptr : it->second;
    }

    /**
     * Insert a freshly computed evaluation; @p eval.firstIndex is
     * assigned here.  Inserting a point twice is a logic error.
     */
    const SearchEval &
    insert(SearchEval eval)
    {
        std::lock_guard<std::mutex> lock(mtx);
        MECH_ASSERT(!index.count(eval.point),
                    "design point evaluated twice");
        eval.firstIndex = store.size();
        store.push_back(std::move(eval));
        const SearchEval &stored = store.back();
        index.emplace(stored.point, &stored);
        return stored;
    }

    /** Number of cached points. */
    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mtx);
        return store.size();
    }

    /** Every entry, in first-evaluation (firstIndex) order. */
    std::vector<const SearchEval *>
    entries() const
    {
        std::lock_guard<std::mutex> lock(mtx);
        std::vector<const SearchEval *> out;
        out.reserve(store.size());
        for (const SearchEval &eval : store)
            out.push_back(&eval);
        return out;
    }

  private:
    mutable std::mutex mtx;
    std::deque<SearchEval> store;
    std::unordered_map<DesignPoint, const SearchEval *, DesignPointHash>
        index;
};

} // namespace mech

#endif // MECH_SEARCH_EVAL_CACHE_HH
