/**
 * @file
 * Memoized evaluation cache keyed by DesignPoint content identity.
 *
 * Iterative strategies (hill-climbing, genetic populations) revisit
 * design points constantly; the cache makes every revisit cost zero
 * model evaluations.  Keys use DesignPoint::hash()/operator== — the
 * stable content identity added alongside this subsystem — and
 * entries live in per-shard deques so pointers handed out stay valid
 * for the cache's lifetime, letting strategies pass results around
 * without copying.
 *
 * Thread safety: the index is striped across kShards buckets selected
 * by DesignPoint::hash(), each behind its own mutex, so concurrent
 * find() probes from pool workers only contend when they land on the
 * same shard — a single global lock here used to serialize the whole
 * evaluation fan-out.  insert() tolerates duplicates: a point already
 * present (e.g. re-discovered concurrently by two sessions) returns
 * the existing entry instead of failing.  Determinism of firstIndex
 * is preserved exactly as before: the SearchEvaluator and EvalService
 * call insert() only from the coordinating thread in request order,
 * which makes entry order independent of worker count.
 */

#ifndef MECH_SEARCH_EVAL_CACHE_HH
#define MECH_SEARCH_EVAL_CACHE_HH

#include <array>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "dse/design_space.hh"

namespace mech {

/** One cached search evaluation of one design point. */
struct SearchEval
{
    /** The evaluated point. */
    DesignPoint point;

    /**
     * Aggregate objective values (arithmetic mean across the
     * evaluator's benchmarks), in objective order.  Raw values — the
     * optimization direction is applied by Objective::normalized().
     */
    std::vector<double> aggregate;

    /** Per-benchmark raw values, flattened [bench * objectives + k]. */
    std::vector<double> perBench;

    /** Insertion index: deterministic first-evaluation order. */
    std::uint64_t firstIndex = 0;
};

/** Thread-safe sharded memo of SearchEvals with stable pointers. */
class EvalCache
{
  public:
    EvalCache() = default;
    EvalCache(const EvalCache &) = delete;
    EvalCache &operator=(const EvalCache &) = delete;

    /** Index shards; a power of two so selection is a mask. */
    static constexpr std::size_t kShards = 16;

    /** The cached evaluation of @p point, or null on a miss. */
    const SearchEval *
    find(const DesignPoint &point) const
    {
        const Shard &shard = shardFor(point);
        std::lock_guard<std::mutex> lock(shard.mtx);
        auto it = shard.index.find(point);
        return it == shard.index.end() ? nullptr : it->second;
    }

    /**
     * Insert a freshly computed evaluation; @p eval.firstIndex is
     * assigned here.  If the point is already cached — a benign
     * concurrent re-discovery — the existing entry is returned and
     * @p eval is discarded.
     */
    const SearchEval &
    insert(SearchEval eval)
    {
        Shard &shard = shardFor(eval.point);
        std::lock_guard<std::mutex> lock(shard.mtx);
        if (auto it = shard.index.find(eval.point);
            it != shard.index.end()) {
            return *it->second;
        }
        shard.store.push_back(std::move(eval));
        SearchEval &stored = shard.store.back();
        {
            // Global first-evaluation order spans every shard; the
            // counter and entry list share one light mutex, taken
            // strictly after the shard's (no reverse nesting).
            std::lock_guard<std::mutex> order_lock(orderMtx);
            stored.firstIndex = order.size();
            order.push_back(&stored);
        }
        shard.index.emplace(stored.point, &stored);
        return stored;
    }

    /** Number of cached points. */
    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(orderMtx);
        return order.size();
    }

    /** Every entry, in first-evaluation (firstIndex) order. */
    std::vector<const SearchEval *>
    entries() const
    {
        std::lock_guard<std::mutex> lock(orderMtx);
        return order;
    }

  private:
    /** One lock-striped bucket of the index. */
    struct Shard
    {
        mutable std::mutex mtx;
        std::deque<SearchEval> store;
        std::unordered_map<DesignPoint, const SearchEval *,
                           DesignPointHash>
            index;
    };

    Shard &
    shardFor(const DesignPoint &point)
    {
        return shards[DesignPointHash{}(point) & (kShards - 1)];
    }

    const Shard &
    shardFor(const DesignPoint &point) const
    {
        return shards[DesignPointHash{}(point) & (kShards - 1)];
    }

    std::array<Shard, kShards> shards;
    mutable std::mutex orderMtx;
    std::vector<const SearchEval *> order;
};

} // namespace mech

#endif // MECH_SEARCH_EVAL_CACHE_HH
