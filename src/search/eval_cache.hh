/**
 * @file
 * Memoized evaluation cache keyed by DesignPoint content identity.
 *
 * Iterative strategies (hill-climbing, genetic populations) revisit
 * design points constantly; the cache makes every revisit cost zero
 * model evaluations.  Keys use DesignPoint::hash()/operator== — the
 * stable content identity added alongside this subsystem — and
 * entries live in per-shard deques so pointers handed out stay valid
 * for the cache's lifetime, letting strategies pass results around
 * without copying.
 *
 * Thread safety: the index is striped across kShards buckets selected
 * by DesignPoint::hash(), each behind its own mutex, so concurrent
 * find() probes from pool workers only contend when they land on the
 * same shard — a single global lock here used to serialize the whole
 * evaluation fan-out.  insert() tolerates duplicates: a point already
 * present (e.g. re-discovered concurrently by two sessions) returns
 * the existing entry instead of failing.  Determinism of firstIndex
 * is preserved exactly as before: the SearchEvaluator and EvalService
 * call insert() only from the coordinating thread in request order,
 * which makes entry order independent of worker count.
 */

#ifndef MECH_SEARCH_EVAL_CACHE_HH
#define MECH_SEARCH_EVAL_CACHE_HH

#include <array>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "dse/design_space.hh"
#include "obs/registry.hh"

namespace mech {

/** One cached search evaluation of one design point. */
struct SearchEval
{
    /** The evaluated point. */
    DesignPoint point;

    /**
     * Aggregate objective values (arithmetic mean across the
     * evaluator's benchmarks), in objective order.  Raw values — the
     * optimization direction is applied by Objective::normalized().
     */
    std::vector<double> aggregate;

    /** Per-benchmark raw values, flattened [bench * objectives + k]. */
    std::vector<double> perBench;

    /** Insertion index: deterministic first-evaluation order. */
    std::uint64_t firstIndex = 0;
};

/** Thread-safe sharded memo of SearchEvals with stable pointers. */
class EvalCache
{
  public:
    EvalCache() = default;
    EvalCache(const EvalCache &) = delete;
    EvalCache &operator=(const EvalCache &) = delete;

    /** Index shards; a power of two so selection is a mask. */
    static constexpr std::size_t kShards = 16;

    /** The cached evaluation of @p point, or null on a miss. */
    const SearchEval *
    find(const DesignPoint &point) const
    {
        const std::size_t s =
            DesignPointHash{}(point) & (kShards - 1);
        const Shard &shard = shards[s];
        const SearchEval *hit;
        {
            std::lock_guard<std::mutex> lock(shard.mtx);
            auto it = shard.index.find(point);
            hit = it == shard.index.end() ? nullptr : it->second;
        }
        CacheObs &o = cacheObs();
        if (hit) {
            o.hits.inc();
            o.shards[s].hits.inc();
        } else {
            o.misses.inc();
            o.shards[s].misses.inc();
        }
        return hit;
    }

    /**
     * Insert a freshly computed evaluation; @p eval.firstIndex is
     * assigned here.  If the point is already cached — a benign
     * concurrent re-discovery — the existing entry is returned and
     * @p eval is discarded.
     */
    const SearchEval &
    insert(SearchEval eval)
    {
        const std::size_t s =
            DesignPointHash{}(eval.point) & (kShards - 1);
        Shard &shard = shards[s];
        std::lock_guard<std::mutex> lock(shard.mtx);
        if (auto it = shard.index.find(eval.point);
            it != shard.index.end()) {
            return *it->second;
        }
        CacheObs &o = cacheObs();
        o.inserts.inc();
        o.shards[s].inserts.inc();
        shard.store.push_back(std::move(eval));
        SearchEval &stored = shard.store.back();
        {
            // Global first-evaluation order spans every shard; the
            // counter and entry list share one light mutex, taken
            // strictly after the shard's (no reverse nesting).
            std::lock_guard<std::mutex> order_lock(orderMtx);
            stored.firstIndex = order.size();
            order.push_back(&stored);
        }
        shard.index.emplace(stored.point, &stored);
        return stored;
    }

    /** Number of cached points. */
    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(orderMtx);
        return order.size();
    }

    /** Every entry, in first-evaluation (firstIndex) order. */
    std::vector<const SearchEval *>
    entries() const
    {
        std::lock_guard<std::mutex> lock(orderMtx);
        return order;
    }

  private:
    /** One lock-striped bucket of the index. */
    struct Shard
    {
        mutable std::mutex mtx;
        std::deque<SearchEval> store;
        std::unordered_map<DesignPoint, const SearchEval *,
                           DesignPointHash>
            index;
    };

    /**
     * Process-wide cache observability: aggregate and per-shard
     * hit/miss/insert counters, shared by every EvalCache instance
     * (serve groups come and go; the counters are cumulative).
     * Updates are relaxed atomics outside the shard locks.
     */
    struct CacheObs
    {
        struct ShardObs
        {
            obs::Counter &hits;
            obs::Counter &misses;
            obs::Counter &inserts;
        };

        obs::Counter &hits;
        obs::Counter &misses;
        obs::Counter &inserts;
        std::vector<ShardObs> shards;
    };

    static CacheObs &
    cacheObs()
    {
        static CacheObs o = [] {
            obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
            CacheObs obs{
                reg.counter("evalcache.hits",
                            "EvalCache lookups answered from the memo"),
                reg.counter("evalcache.misses",
                            "EvalCache lookups that missed"),
                reg.counter("evalcache.inserts",
                            "Fresh evaluations inserted into EvalCache"),
                {}};
            obs.shards.reserve(kShards);
            for (std::size_t s = 0; s < kShards; ++s) {
                const std::string p =
                    "evalcache.shard" + std::to_string(s);
                obs.shards.push_back(CacheObs::ShardObs{
                    reg.counter(p + ".hits"),
                    reg.counter(p + ".misses"),
                    reg.counter(p + ".inserts")});
            }
            return obs;
        }();
        return o;
    }

    std::array<Shard, kShards> shards;
    mutable std::mutex orderMtx;
    std::vector<const SearchEval *> order;
};

} // namespace mech

#endif // MECH_SEARCH_EVAL_CACHE_HH
