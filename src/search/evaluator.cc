#include "search/evaluator.hh"

#include <algorithm>
#include <future>
#include <utility>

#include "common/logging.hh"

namespace mech {

SearchEvaluator::SearchEvaluator(std::vector<BenchmarkProfile> benches,
                                 InstCount trace_len,
                                 std::vector<Objective> objectives,
                                 BackendSet backends)
    : benches(std::move(benches)), traceLen(trace_len),
      objs(std::move(objectives)), backends_(std::move(backends))
{
    MECH_ASSERT(!this->benches.empty(), "no benchmarks to search over");
    MECH_ASSERT(!objs.empty(), "no objectives");
    MECH_ASSERT(!backends_.empty(), "empty backend set");
    // Only the first backend's result can feed the objectives;
    // evaluating the rest of a set would be paid-for, discarded
    // work (a "model,sim" set would run a silent simulation
    // campaign).  Reject it loudly instead.
    if (backends_.size() != 1) {
        fatal("search evaluation uses exactly one backend (got ",
              backends_.size(),
              "); validate winners against other backends "
              "afterwards");
    }
}

SearchEvaluator::~SearchEvaluator() = default;

void
SearchEvaluator::useProfileDir(const std::string &dir)
{
    MECH_ASSERT(studies.empty(),
                "useProfileDir must precede the first prepare()");
    profileDir = dir;
}

void
SearchEvaluator::prepare(const SpaceSpec &spec, ThreadPool &pool)
{
    if (studies.size() != benches.size()) {
        studies.resize(benches.size());
        std::vector<std::future<void>> built;
        built.reserve(benches.size());
        for (std::size_t b = 0; b < benches.size(); ++b) {
            built.push_back(pool.submit([this, b] {
                studies[b] = std::make_unique<DseStudy>(
                    DseStudy::loadOrProfile(profileDir, benches[b],
                                            traceLen));
            }));
        }
        for (auto &f : built)
            f.get();
    }

    // Sweeping the out-of-order structure axes is paid-for, silent
    // no-op work unless the backend actually reads them: the in-order
    // model and simulator ignore OooParams entirely, so every swept
    // value would evaluate to the same result.  Reject the
    // configuration loudly instead.
    if (spec.hasOooAxes()) {
        bool ooo = false;
        for (const EvalBackend *backend : backends_)
            ooo |= backend->usesOoo();
        if (!ooo) {
            fatal("the space sweeps out-of-order axes (rob/iq/fu*/"
                  "buses) but backend '", backends_[0]->name(),
                  "' ignores them; use an out-of-order backend "
                  "(ooo, oosim)");
        }
    }

    // A predictor outside the profiled set would panic() deep inside
    // a worker; turn it into an actionable configuration error here.
    for (PredictorKind kind : spec.predictor) {
        bool profiled = false;
        for (const auto &bp : studies[0]->profile().branchProfiles)
            profiled |= bp.kind == kind;
        if (!profiled) {
            fatal("predictor '", predictorKey(kind),
                  "' is not in the profiled set (the study profiles "
                  "gshare1k and hybrid3k5; see dse/study.cc)");
        }
    }

    // Memoize every L2 geometry the spec can produce; one task per
    // benchmark, since the geometries of one study must be computed
    // sequentially into its memo.
    const std::vector<DesignPoint> reps = spec.l2Geometries();
    std::vector<std::future<void>> prepared;
    prepared.reserve(studies.size());
    for (auto &study : studies) {
        DseStudy *s = study.get();
        prepared.push_back(
            pool.submit([s, &reps] { s->prepare(reps); }));
    }
    for (auto &f : prepared)
        f.get();
}

SearchEval
SearchEvaluator::compute(const DesignPoint &point) const
{
    PointEvaluation scratch;
    return compute(point, scratch);
}

SearchEval
SearchEvaluator::compute(const DesignPoint &point,
                         PointEvaluation &scratch) const
{
    const std::size_t k_objs = objs.size();
    SearchEval eval;
    eval.point = point;
    eval.aggregate.assign(k_objs, 0.0);
    eval.perBench.resize(benches.size() * k_objs);

    for (std::size_t b = 0; b < studies.size(); ++b) {
        const DseStudy &study = *studies[b];
        study.evaluateInto(scratch, point, backends_);
        const EvalResult &res = scratch.results.front();
        for (std::size_t k = 0; k < k_objs; ++k) {
            double v = objs[k].value(res, point);
            eval.perBench[b * k_objs + k] = v;
            eval.aggregate[k] += v;
        }
    }
    const double n = static_cast<double>(benches.size());
    for (double &v : eval.aggregate)
        v /= n;
    return eval;
}

std::vector<const SearchEval *>
SearchEvaluator::evaluateBatch(const std::vector<DesignPoint> &points,
                               EvalCache &cache, ThreadPool &pool,
                               SearchStats &stats) const
{
    MECH_ASSERT(!studies.empty() && studies[0],
                "prepare() must run before evaluateBatch()");
    ++stats.batches;

    // Phase 1 (coordinating thread): classify hits, intra-batch
    // duplicates and fresh misses, counting in request order.
    std::vector<const SearchEval *> out(points.size(), nullptr);
    std::vector<std::size_t> missIdx;
    std::unordered_map<DesignPoint, std::size_t, DesignPointHash>
        fresh_pos;
    for (std::size_t i = 0; i < points.size(); ++i) {
        ++stats.requested;
        if (const SearchEval *hit = cache.find(points[i])) {
            out[i] = hit;
            ++stats.hits;
        } else if (fresh_pos.count(points[i])) {
            ++stats.hits; // duplicate within this batch
        } else {
            fresh_pos.emplace(points[i], missIdx.size());
            missIdx.push_back(i);
            ++stats.misses;
        }
    }

    // Phase 2 (pool): evaluate the misses against the read-only
    // studies through one bulk index-range job — no per-task futures
    // or allocations, and a per-chunk scratch PointEvaluation reused
    // across every (point, benchmark) evaluation of the chunk.  The
    // inline pool takes the whole range as one chunk.
    std::vector<SearchEval> computed(missIdx.size());
    if (!missIdx.empty()) {
        pool.parallelFor(
            missIdx.size(), pool.bulkChunk(missIdx.size()),
            [this, &points, &missIdx, &computed](std::size_t begin,
                                                 std::size_t end) {
                PointEvaluation scratch;
                for (std::size_t j = begin; j < end; ++j)
                    computed[j] = compute(points[missIdx[j]], scratch);
            });
    }

    // Phase 3 (coordinating thread): publish in request order.
    for (SearchEval &eval : computed)
        cache.insert(std::move(eval));
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (!out[i]) {
            out[i] = cache.find(points[i]);
            MECH_ASSERT(out[i], "fresh evaluation missing from cache");
        }
    }
    return out;
}

std::vector<std::string>
SearchEvaluator::benchmarkNames() const
{
    std::vector<std::string> names;
    names.reserve(benches.size());
    for (const auto &bench : benches)
        names.push_back(bench.name);
    return names;
}

} // namespace mech
