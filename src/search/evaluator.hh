/**
 * @file
 * Batched, cache-aware design-point evaluation for search strategies.
 *
 * SearchEvaluator owns the expensive per-benchmark state — one
 * DseStudy each (trace + profiling pass, or a loaded .mprof
 * artifact) — and turns batches of DesignPoints into SearchEvals:
 * per-benchmark objective values plus their cross-benchmark
 * aggregate, computed through a registry-selected backend (the
 * analytical model by default).
 *
 * evaluateBatch() is where the memoized cache and the thread pool
 * meet, in a deterministic three-phase dance:
 *
 *   1. on the coordinating thread, classify each requested point as
 *      a cache hit, an intra-batch duplicate (also a hit), or a
 *      fresh miss — stats are counted here, in request order, so
 *      hit/miss numbers never depend on worker scheduling;
 *   2. misses are sharded across the pool (read-only studies, const
 *      evaluation) — the only parallel phase;
 *   3. results insert into the cache in request order, again on the
 *      coordinating thread, so cache entry order is deterministic.
 *
 * The returned pointers alias cache entries and stay valid for the
 * cache's lifetime.
 */

#ifndef MECH_SEARCH_EVALUATOR_HH
#define MECH_SEARCH_EVALUATOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.hh"
#include "dse/study.hh"
#include "eval/registry.hh"
#include "search/eval_cache.hh"
#include "search/objective.hh"
#include "search/space_spec.hh"
#include "workload/profile.hh"

namespace mech {

/** Evaluation-traffic counters for one search run. */
struct SearchStats
{
    /** Point lookups requested by the strategy. */
    std::uint64_t requested = 0;

    /** Lookups served from the memo (zero model evaluations). */
    std::uint64_t hits = 0;

    /** Fresh evaluations (the quantity --budget bounds). */
    std::uint64_t misses = 0;

    /** evaluateBatch() calls. */
    std::uint64_t batches = 0;
};

/** Shared evaluation engine behind every search strategy. */
class SearchEvaluator
{
  public:
    /**
     * @param benches Benchmarks the search optimizes over.
     * @param trace_len Dynamic instructions per benchmark trace.
     * @param objectives Objective set (first = scalar objective).
     * @param backends Backend set of exactly one backend, whose
     *        result feeds the objectives (default: the analytical
     *        model).  Larger sets are rejected with fatal() — their
     *        extra results could only be discarded, and e.g. "sim"
     *        would turn the search into a silent simulation
     *        campaign.  Validate winners against other backends
     *        after the search.
     */
    SearchEvaluator(std::vector<BenchmarkProfile> benches,
                    InstCount trace_len,
                    std::vector<Objective> objectives,
                    BackendSet backends = defaultBackends());
    ~SearchEvaluator();

    SearchEvaluator(const SearchEvaluator &) = delete;
    SearchEvaluator &operator=(const SearchEvaluator &) = delete;

    /**
     * Load studies from `.mprof` artifacts under @p dir when they
     * exist (see StudyRunner::useProfileDir).  Call before the first
     * prepare().
     */
    void useProfileDir(const std::string &dir);

    /**
     * Build the studies (once; parallel across @p pool) and memoize
     * every L2 geometry of @p spec, so subsequent evaluations are
     * read-only and thread-safe.  Also verifies the spec only uses
     * profiled predictors — a clear error beats a worker panic.
     * Idempotent and cumulative across specs.
     */
    void prepare(const SpaceSpec &spec, ThreadPool &pool);

    /**
     * Evaluate @p points through the memo.  Returns one SearchEval
     * pointer per requested point, in request order (duplicates map
     * to the same entry).  @p stats is updated deterministically.
     * @pre prepare() covered every geometry in @p points.
     */
    std::vector<const SearchEval *>
    evaluateBatch(const std::vector<DesignPoint> &points,
                  EvalCache &cache, ThreadPool &pool,
                  SearchStats &stats) const;

    /** Benchmark names, in construction order. */
    std::vector<std::string> benchmarkNames() const;

    /** Number of benchmarks. */
    std::size_t benchmarkCount() const { return benches.size(); }

    /** The objective set. */
    const std::vector<Objective> &objectives() const { return objs; }

  private:
    /** Evaluate one point across all benchmarks (no cache). */
    SearchEval compute(const DesignPoint &point) const;

    /** compute() through a reusable scratch PointEvaluation, so a
     *  model-speed evaluation allocates only the SearchEval itself. */
    SearchEval compute(const DesignPoint &point,
                       PointEvaluation &scratch) const;

    std::vector<BenchmarkProfile> benches;
    InstCount traceLen;
    std::vector<Objective> objs;
    BackendSet backends_;
    std::string profileDir;
    std::vector<std::unique_ptr<DseStudy>> studies;
};

} // namespace mech

#endif // MECH_SEARCH_EVALUATOR_HH
