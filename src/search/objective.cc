#include "search/objective.hh"

#include "common/cli.hh"
#include "common/logging.hh"

namespace mech {

namespace {

double
objCpi(const EvalResult &res, const DesignPoint &)
{
    return res.cpi();
}

double
objCycles(const EvalResult &res, const DesignPoint &)
{
    return res.cycles;
}

double
objDelay(const EvalResult &res, const DesignPoint &point)
{
    return res.seconds(point.freqGHz);
}

double
objBips(const EvalResult &res, const DesignPoint &point)
{
    double seconds = res.seconds(point.freqGHz);
    if (seconds <= 0.0)
        return 0.0;
    return static_cast<double>(res.instructions) / seconds / 1e9;
}

double
objEnergy(const EvalResult &res, const DesignPoint &)
{
    return res.energy.totalJ();
}

double
objEdp(const EvalResult &res, const DesignPoint &)
{
    return res.edp;
}

double
objEd2p(const EvalResult &res, const DesignPoint &point)
{
    double seconds = res.seconds(point.freqGHz);
    return res.energy.totalJ() * seconds * seconds;
}

} // namespace

const std::vector<Objective> &
allObjectives()
{
    static const std::vector<Objective> objectives = {
        {"cpi", "cycles/insn", false, objCpi},
        {"cycles", "cycles", false, objCycles},
        {"delay", "s", false, objDelay},
        {"bips", "Ginsns/s", true, objBips},
        {"energy", "J", false, objEnergy},
        {"edp", "J*s", false, objEdp},
        {"ed2p", "J*s^2", false, objEd2p},
    };
    return objectives;
}

std::optional<Objective>
objectiveByName(std::string_view name)
{
    for (const Objective &obj : allObjectives()) {
        if (obj.name == name)
            return obj;
    }
    return std::nullopt;
}

std::vector<Objective>
parseObjectives(const std::string &csv)
{
    std::vector<Objective> objectives;
    for (const std::string &token : cli::splitCsv(csv)) {
        if (token.empty())
            fatal("empty objective name in '", csv, "'");
        auto obj = objectiveByName(token);
        if (!obj) {
            std::string known;
            for (const Objective &o : allObjectives())
                known += (known.empty() ? "" : ", ") + o.name;
            fatal("unknown objective '", token, "' (known: ", known,
                  ")");
        }
        for (const Objective &seen : objectives) {
            if (seen.name == obj->name)
                fatal("duplicate objective '", token, "'");
        }
        objectives.push_back(std::move(*obj));
    }
    if (objectives.empty())
        fatal("no objectives in '", csv, "'");
    return objectives;
}

} // namespace mech
