/**
 * @file
 * Pluggable search objectives over backend evaluation results.
 *
 * Every objective maps one EvalResult (plus its design point, for
 * frequency-dependent quantities) to a scalar.  The built-ins cover
 * the paper's §6.3 exploration axes: performance (cpi, bips, delay,
 * cycles), energy, and the combined energy-delay products (edp, the
 * Fig. 9 metric, and ed2p) through the existing power model.
 *
 * Objectives carry their optimization direction; normalized() folds
 * it away so Pareto machinery and strategies can treat every
 * objective uniformly as "lower is better".
 */

#ifndef MECH_SEARCH_OBJECTIVE_HH
#define MECH_SEARCH_OBJECTIVE_HH

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "eval/backend.hh"

namespace mech {

/** One named scalar objective with an optimization direction. */
struct Objective
{
    /** Registry name ("edp"). */
    std::string name;

    /** Unit for reports ("J*s"). */
    std::string unit;

    /** True when larger values are better (bips). */
    bool maximize = false;

    /** Extract the raw objective value from one backend result. */
    double (*fn)(const EvalResult &res, const DesignPoint &point) =
        nullptr;

    /** Raw objective value of @p res at @p point. */
    double
    value(const EvalResult &res, const DesignPoint &point) const
    {
        return fn(res, point);
    }

    /** Fold the direction away: lower normalized() is always better. */
    double
    normalized(double raw) const
    {
        return maximize ? -raw : raw;
    }
};

/** All built-in objectives, in a stable listing order. */
const std::vector<Objective> &allObjectives();

/** Look up a built-in objective; nullopt when unknown. */
std::optional<Objective> objectiveByName(std::string_view name);

/**
 * Resolve a comma-separated objective list ("edp" or "energy,delay")
 * into an ordered set.  The first entry is the scalar objective
 * single-objective strategies optimize; the full list spans the
 * Pareto frontier.  Empty, unknown or duplicate names call fatal().
 */
std::vector<Objective> parseObjectives(const std::string &csv);

} // namespace mech

#endif // MECH_SEARCH_OBJECTIVE_HH
