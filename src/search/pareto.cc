#include "search/pareto.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace mech {

bool
dominates(const std::vector<double> &a, const std::vector<double> &b)
{
    MECH_ASSERT(a.size() == b.size(), "objective counts differ");
    bool strictly = false;
    for (std::size_t k = 0; k < a.size(); ++k) {
        if (a[k] > b[k])
            return false;
        if (a[k] < b[k])
            strictly = true;
    }
    return strictly;
}

std::vector<std::size_t>
paretoFrontier(const std::vector<std::vector<double>> &costs)
{
    // Incremental skyline: keep the running frontier, skip rows a
    // member dominates, evict members a new row dominates.  Equal
    // rows coexist (neither dominates), so duplicates all survive.
    std::vector<std::size_t> frontier;
    for (std::size_t i = 0; i < costs.size(); ++i) {
        bool dominated = false;
        for (std::size_t j : frontier) {
            if (dominates(costs[j], costs[i])) {
                dominated = true;
                break;
            }
        }
        if (dominated)
            continue;
        std::size_t keep = 0;
        for (std::size_t j : frontier) {
            if (!dominates(costs[i], costs[j]))
                frontier[keep++] = j;
        }
        frontier.resize(keep);
        frontier.push_back(i);
    }
    std::sort(frontier.begin(), frontier.end());
    return frontier;
}

std::vector<std::vector<std::size_t>>
nonDominatedSort(const std::vector<std::vector<double>> &costs)
{
    const std::size_t n = costs.size();
    std::vector<std::size_t> domCount(n, 0);
    std::vector<std::vector<std::size_t>> dominatesList(n);

    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            if (dominates(costs[i], costs[j])) {
                dominatesList[i].push_back(j);
                ++domCount[j];
            } else if (dominates(costs[j], costs[i])) {
                dominatesList[j].push_back(i);
                ++domCount[i];
            }
        }
    }

    std::vector<std::vector<std::size_t>> fronts;
    std::vector<std::size_t> current;
    for (std::size_t i = 0; i < n; ++i) {
        if (domCount[i] == 0)
            current.push_back(i);
    }
    while (!current.empty()) {
        fronts.push_back(current);
        std::vector<std::size_t> next;
        for (std::size_t i : current) {
            for (std::size_t j : dominatesList[i]) {
                if (--domCount[j] == 0)
                    next.push_back(j);
            }
        }
        std::sort(next.begin(), next.end());
        current = std::move(next);
    }
    return fronts;
}

std::vector<double>
crowdingDistances(const std::vector<std::vector<double>> &costs,
                  const std::vector<std::size_t> &front)
{
    const double inf = std::numeric_limits<double>::infinity();
    const std::size_t n = front.size();
    std::vector<double> distance(n, 0.0);
    if (n == 0)
        return distance;
    const std::size_t k_objs = costs[front[0]].size();

    std::vector<std::size_t> order(n);
    for (std::size_t k = 0; k < k_objs; ++k) {
        for (std::size_t i = 0; i < n; ++i)
            order[i] = i;
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             double ca = costs[front[a]][k];
                             double cb = costs[front[b]][k];
                             if (ca != cb)
                                 return ca < cb;
                             return front[a] < front[b];
                         });
        double lo = costs[front[order.front()]][k];
        double hi = costs[front[order.back()]][k];
        distance[order.front()] = inf;
        distance[order.back()] = inf;
        if (hi == lo)
            continue; // all equal on this objective: no spread
        for (std::size_t i = 1; i + 1 < n; ++i) {
            double below = costs[front[order[i - 1]]][k];
            double above = costs[front[order[i + 1]]][k];
            distance[order[i]] += (above - below) / (hi - lo);
        }
    }
    return distance;
}

} // namespace mech
