/**
 * @file
 * Pareto machinery: dominance, frontier extraction, non-dominated
 * sorting and crowding distances.
 *
 * All functions take cost rows already on the "lower is better"
 * scale (Objective::normalized()); each row is one candidate's cost
 * per objective, every row the same length.  Outputs are index-based
 * and deterministic: ties never reorder, results always come back
 * sorted by input index, so search results are bit-reproducible
 * regardless of how the rows were produced.
 */

#ifndef MECH_SEARCH_PARETO_HH
#define MECH_SEARCH_PARETO_HH

#include <cstddef>
#include <vector>

namespace mech {

/**
 * True when cost row @p a dominates @p b: no worse on every
 * objective and strictly better on at least one.
 */
bool dominates(const std::vector<double> &a,
               const std::vector<double> &b);

/**
 * Indices of the non-dominated rows of @p costs, ascending.
 *
 * Duplicate cost rows do not dominate each other, so every copy of a
 * frontier point is reported.  Runs in O(n * f) for a frontier of
 * size f — near-linear for the shallow frontiers real spaces
 * produce, never worse than the naive O(n^2).
 */
std::vector<std::size_t>
paretoFrontier(const std::vector<std::vector<double>> &costs);

/**
 * Fast non-dominated sort: fronts[0] is the Pareto frontier,
 * fronts[k] the frontier after removing fronts[0..k-1].  Every index
 * appears exactly once; each front is sorted ascending.
 */
std::vector<std::vector<std::size_t>>
nonDominatedSort(const std::vector<std::vector<double>> &costs);

/**
 * NSGA-II crowding distances for the rows selected by @p front
 * (indices into @p costs).  Boundary rows of each objective get an
 * infinite distance; interior rows the usual normalized side-gap sum.
 * Ties on an objective are ordered by index, keeping the result
 * deterministic.  Returned in @p front order.
 */
std::vector<double>
crowdingDistances(const std::vector<std::vector<double>> &costs,
                  const std::vector<std::size_t> &front);

} // namespace mech

#endif // MECH_SEARCH_PARETO_HH
