#include "search/report.hh"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/table.hh"

namespace mech {

namespace {

/** JSON string literal via the shared escaper (common/json.hh). */
void
jsonString(std::ostream &os, const std::string &s)
{
    json::writeString(os, s);
}

/** Round-trip-exact double (shared shortest-form encoder). */
void
jsonNumber(std::ostream &os, double v)
{
    json::writeNumber(os, v);
}

/** One frontier/best entry. */
void
writeEntry(std::ostream &os, const SearchResult &result,
           const SearchEval &eval, bool per_benchmark,
           const std::string &indent)
{
    const std::size_t k_objs = result.objectiveNames.size();
    os << "{ \"point\": ";
    jsonString(os, eval.point.toKey());
    os << ", \"label\": ";
    jsonString(os, eval.point.label());
    os << ",\n" << indent << "  \"objectives\": { ";
    for (std::size_t k = 0; k < k_objs; ++k) {
        if (k)
            os << ", ";
        jsonString(os, result.objectiveNames[k]);
        os << ": ";
        jsonNumber(os, eval.aggregate[k]);
    }
    os << " }";
    if (per_benchmark) {
        os << ",\n" << indent << "  \"per_benchmark\": { ";
        for (std::size_t b = 0; b < result.benchmarks.size(); ++b) {
            if (b)
                os << ", ";
            jsonString(os, result.benchmarks[b]);
            os << ": { ";
            for (std::size_t k = 0; k < k_objs; ++k) {
                if (k)
                    os << ", ";
                jsonString(os, result.objectiveNames[k]);
                os << ": ";
                jsonNumber(os, eval.perBench[b * k_objs + k]);
            }
            os << " }";
        }
        os << " }";
    }
    os << " }";
}

} // namespace

void
writeSearchResultJson(const SearchResult &result, std::ostream &os)
{
    os << "{\n";
    os << "  \"schema_version\": " << kSearchSchemaVersion << ",\n";
    os << "  \"generator\": \"mech_search\",\n";
    os << "  \"space\": ";
    jsonString(os, result.space);
    os << ",\n  \"space_size\": " << result.spaceSize;
    os << ",\n  \"strategy\": ";
    jsonString(os, result.strategy);
    os << ",\n  \"objectives\": [";
    for (std::size_t k = 0; k < result.objectiveNames.size(); ++k) {
        if (k)
            os << ", ";
        jsonString(os, result.objectiveNames[k]);
    }
    os << "],\n  \"benchmarks\": [";
    for (std::size_t b = 0; b < result.benchmarks.size(); ++b) {
        if (b)
            os << ", ";
        jsonString(os, result.benchmarks[b]);
    }
    os << "],\n  \"seed\": " << result.seed;
    os << ",\n  \"budget\": " << result.budget;
    os << ",\n  \"evaluations\": " << result.evaluated.size();
    os << ",\n  \"cache\": { \"requested\": " << result.stats.requested
       << ", \"hits\": " << result.stats.hits
       << ", \"misses\": " << result.stats.misses << " },\n";
    os << "  \"best\": ";
    writeEntry(os, result, result.best(), false, "  ");
    os << ",\n  \"frontier\": [";
    for (std::size_t i = 0; i < result.frontier.size(); ++i) {
        os << (i ? "," : "") << "\n    ";
        writeEntry(os, result, *result.evaluated[result.frontier[i]],
                   true, "    ");
    }
    os << (result.frontier.empty() ? "]\n" : "\n  ]\n") << "}\n";
}

void
saveSearchResult(const SearchResult &result, const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open '", path, "' for writing");
    writeSearchResultJson(result, os);
    os.flush();
    if (!os)
        fatal("write to '", path, "' failed");
}

void
printSearchResult(const SearchResult &result, std::ostream &os,
                  std::size_t max_rows)
{
    os << "space: " << result.space << "\n"
       << "  " << result.spaceSize << " points, strategy "
       << result.strategy << ", seed " << result.seed << ", budget "
       << (result.budget ? std::to_string(result.budget)
                         : std::string("unlimited"))
       << "\n"
       << "evaluations: " << result.evaluated.size()
       << " (cache: " << result.stats.requested << " requested, "
       << result.stats.hits << " hits, " << result.stats.misses
       << " misses)\n\n";

    const std::size_t k_objs = result.objectiveNames.size();
    std::vector<std::string> header = {"configuration"};
    for (const std::string &name : result.objectiveNames)
        header.push_back(name);
    TextTable table(header);
    const std::size_t rows =
        std::min(result.frontier.size(), max_rows);
    for (std::size_t i = 0; i < rows; ++i) {
        const SearchEval &eval =
            *result.evaluated[result.frontier[i]];
        std::vector<std::string> row = {eval.point.label()};
        for (std::size_t k = 0; k < k_objs; ++k)
            row.push_back(TextTable::sci(eval.aggregate[k], 4));
        table.addRow(row);
    }
    os << "Pareto frontier (" << result.frontier.size() << " point"
       << (result.frontier.size() == 1 ? "" : "s");
    if (rows < result.frontier.size())
        os << ", first " << rows << " shown";
    os << "):\n";
    table.print(os);

    const SearchEval &best = result.best();
    os << "\nbest by " << result.objectiveNames.front() << ": "
       << best.point.label() << "  ("
       << TextTable::sci(best.aggregate[0], 4) << " "
       << result.objectiveNames.front() << ")\n";
}

} // namespace mech
