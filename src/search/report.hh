/**
 * @file
 * Search-result reporting: schema-versioned JSON artifacts and a
 * human-readable frontier table.
 *
 * Schema (version 1):
 *
 *   {
 *     "schema_version": 1,
 *     "generator": "mech_search",
 *     "space": "l2kb=...;assoc=...;...",
 *     "space_size": 12544,
 *     "strategy": "genetic",
 *     "objectives": ["edp"],
 *     "benchmarks": ["jpeg_c", "sha"],
 *     "seed": 7,
 *     "budget": 2000,
 *     "evaluations": 1984,
 *     "cache": { "requested": 2520, "hits": 536, "misses": 1984 },
 *     "best": { "point": "...", "label": "...",
 *               "objectives": { "edp": 1.23e-06 } },
 *     "frontier": [
 *       { "point": "...", "label": "...",
 *         "objectives": { "edp": 1.23e-06 },
 *         "per_benchmark": { "jpeg_c": { "edp": 1.1e-06 } } }
 *     ]
 *   }
 *
 * The artifact deliberately excludes the thread count and any
 * wall-clock data: a search's JSON is bit-identical for any
 * --threads, which is the determinism contract CI and the tests
 * assert (doubles print with round-trip precision).  Frontier
 * entries appear in first-evaluation order.
 */

#ifndef MECH_SEARCH_REPORT_HH
#define MECH_SEARCH_REPORT_HH

#include <iosfwd>

#include "search/strategy.hh"

namespace mech {

/** Current search-artifact schema version. */
inline constexpr int kSearchSchemaVersion = 1;

/** Serialize @p result as schema-versioned JSON. */
void writeSearchResultJson(const SearchResult &result,
                           std::ostream &os);

/** Write the JSON artifact to @p path; calls fatal() on I/O errors. */
void saveSearchResult(const SearchResult &result,
                      const std::string &path);

/**
 * Human-readable summary: traffic counters, the scalar best, and the
 * frontier as a table (truncated to @p max_rows rows).
 */
void printSearchResult(const SearchResult &result, std::ostream &os,
                       std::size_t max_rows = 20);

} // namespace mech

#endif // MECH_SEARCH_REPORT_HH
