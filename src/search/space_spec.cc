#include "search/space_spec.hh"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "characterize/mdesc.hh"
#include "common/cli.hh"
#include "common/logging.hh"
#include "common/numfmt.hh"

namespace mech {

namespace {

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/**
 * Expand one numeric axis token: a plain value, or a range
 * "lo:hi[:+s|:*m]" stepping additively or multiplicatively.
 */
bool
expandToken(const std::string &token, std::vector<std::uint64_t> *out,
            std::string *error)
{
    std::size_t colon = token.find(':');
    if (colon == std::string::npos) {
        std::uint64_t v = 0;
        if (!parseU64(token, &v)) {
            *error = "bad value '" + token + "'";
            return false;
        }
        out->push_back(v);
        return true;
    }
    std::string lo_s = token.substr(0, colon);
    std::string rest = token.substr(colon + 1);
    std::size_t colon2 = rest.find(':');
    std::string hi_s =
        colon2 == std::string::npos ? rest : rest.substr(0, colon2);
    std::string step_s =
        colon2 == std::string::npos ? "+1" : rest.substr(colon2 + 1);

    std::uint64_t lo = 0, hi = 0, step = 0;
    if (!parseU64(lo_s, &lo) || !parseU64(hi_s, &hi) || lo > hi) {
        *error = "bad range '" + token + "'";
        return false;
    }
    if (step_s.size() < 2 ||
        (step_s[0] != '+' && step_s[0] != '*') ||
        !parseU64(step_s.substr(1), &step) || step == 0 ||
        (step_s[0] == '*' && step < 2)) {
        *error = "bad range step in '" + token +
                 "' (use :+N or :*N)";
        return false;
    }
    for (std::uint64_t v = lo; v <= hi;) {
        out->push_back(v);
        std::uint64_t next = step_s[0] == '+' ? v + step : v * step;
        if (next <= v)
            break; // overflow guard
        v = next;
    }
    return true;
}

template <typename T, typename Fn>
bool
appendValues(const std::string &list, std::vector<T> *axis,
             const Fn &convert, std::string *error)
{
    for (const std::string &token : cli::splitCsv(list)) {
        std::vector<std::uint64_t> values;
        if (!expandToken(token, &values, error))
            return false;
        for (std::uint64_t v : values) {
            T converted{};
            if (!convert(v, &converted)) {
                *error = "value " + std::to_string(v) +
                         " out of range in '" + list + "'";
                return false;
            }
            axis->push_back(converted);
        }
    }
    return true;
}

/**
 * Fill any empty out-of-order structure axis with the OooParams
 * default, so presets and parsed specs that never mention them
 * enumerate exactly as they did before the axes existed.
 */
void
fillOooDefaults(SpaceSpec *spec)
{
    const OooParams def;
    if (spec->robSize.empty())
        spec->robSize = {def.robSize};
    if (spec->iqSize.empty())
        spec->iqSize = {def.iqSize};
    if (spec->fuAlu.empty())
        spec->fuAlu = {def.fuAlu};
    if (spec->fuMul.empty())
        spec->fuMul = {def.fuMul};
    if (spec->fuMem.empty())
        spec->fuMem = {def.fuMem};
    if (spec->fuBr.empty())
        spec->fuBr = {def.fuBr};
    if (spec->resultBuses.empty())
        spec->resultBuses = {def.resultBuses};
}

} // namespace

SpaceSpec
SpaceSpec::table2()
{
    SpaceSpec spec;
    spec.l2KB = {128, 256, 512, 1024};
    spec.l2Assoc = {8, 16};
    spec.depthFreq = {{5, 0.6}, {7, 0.8}, {9, 1.0}};
    spec.width = {1, 2, 3, 4};
    spec.predictor = {PredictorKind::Gshare1K,
                      PredictorKind::Hybrid3K5};
    fillOooDefaults(&spec);
    spec.validate();
    return spec;
}

SpaceSpec
SpaceSpec::wide()
{
    SpaceSpec spec;
    spec.l2KB = {64, 128, 256, 512, 1024, 2048, 4096, 8192};
    spec.l2Assoc = {1, 2, 4, 8, 16, 32, 64};
    // Depth/frequency stay coupled as in Table 2; the deeper points
    // extend the paper's 200 MHz-per-two-stages slope.
    spec.depthFreq.push_back({5, 0.6});
    spec.depthFreq.push_back({7, 0.8});
    spec.depthFreq.push_back({9, 1.0});
    spec.depthFreq.push_back({11, 1.2});
    spec.depthFreq.push_back({13, 1.4});
    spec.depthFreq.push_back({15, 1.6});
    spec.depthFreq.push_back({17, 1.8});
    for (std::uint32_t w = 1; w <= 16; ++w)
        spec.width.push_back(w);
    spec.predictor = {PredictorKind::Gshare1K,
                      PredictorKind::Hybrid3K5};
    fillOooDefaults(&spec);
    spec.validate();
    return spec;
}

SpaceSpec
SpaceSpec::single(const DesignPoint &point)
{
    SpaceSpec spec;
    spec.l2KB = {point.l2KB};
    spec.l2Assoc = {point.l2Assoc};
    spec.depthFreq = {{point.depth, point.freqGHz}};
    spec.width = {point.width};
    spec.predictor = {point.predictor};
    spec.robSize = {point.ooo.robSize};
    spec.iqSize = {point.ooo.iqSize};
    spec.fuAlu = {point.ooo.fuAlu};
    spec.fuMul = {point.ooo.fuMul};
    spec.fuMem = {point.ooo.fuMem};
    spec.fuBr = {point.ooo.fuBr};
    spec.resultBuses = {point.ooo.resultBuses};
    return spec;
}

std::optional<SpaceSpec>
SpaceSpec::tryParse(const std::string &text, std::string *error)
{
    if (text == "table2")
        return table2();
    if (text == "wide")
        return wide();
    if (text.rfind("mdesc:", 0) == 0) {
        // A characterized machine description pins the space to the
        // single point it describes.  Pure: the file's latency table
        // is NOT installed here (specs parse concurrently in the
        // serve layer); tools install latencies via --mdesc.
        try {
            const MachineDescription desc =
                loadMdesc(text.substr(6));
            return single(designPointFor(desc));
        } catch (const MdescError &e) {
            *error = e.what();
            return std::nullopt;
        }
    }

    SpaceSpec spec;
    std::string body = text;
    std::size_t pos = 0;
    while (pos <= body.size()) {
        std::size_t semi = body.find(';', pos);
        if (semi == std::string::npos)
            semi = body.size();
        std::string clause = body.substr(pos, semi - pos);
        pos = semi + 1;
        // Trim surrounding spaces.
        while (!clause.empty() && clause.front() == ' ')
            clause.erase(clause.begin());
        while (!clause.empty() && clause.back() == ' ')
            clause.pop_back();
        if (clause.empty())
            continue;

        std::size_t eq = clause.find('=');
        if (eq == std::string::npos) {
            *error = "axis clause '" + clause + "' has no '='";
            return std::nullopt;
        }
        std::string axis = clause.substr(0, eq);
        std::string values = clause.substr(eq + 1);

        if (axis == "l2kb") {
            auto keep = [](std::uint64_t v, std::uint64_t *out) {
                *out = v;
                return true;
            };
            if (!appendValues(values, &spec.l2KB, keep, error))
                return std::nullopt;
        } else if (axis == "assoc") {
            if (!appendValues(values, &spec.l2Assoc, narrowU32,
                              error)) {
                return std::nullopt;
            }
        } else if (axis == "width") {
            if (!appendValues(values, &spec.width, narrowU32,
                              error)) {
                return std::nullopt;
            }
        } else if (axis == "depth") {
            for (const std::string &token : cli::splitCsv(values)) {
                std::size_t amp = token.find('@');
                if (amp == std::string::npos) {
                    *error = "depth value '" + token +
                             "' needs a frequency (depth@GHz)";
                    return std::nullopt;
                }
                std::uint32_t depth = 0;
                double freq = 0.0;
                if (!parseU32(token.substr(0, amp), &depth) ||
                    !parseF64(token.substr(amp + 1), &freq)) {
                    *error = "bad depth point '" + token + "'";
                    return std::nullopt;
                }
                spec.depthFreq.push_back({depth, freq});
            }
        } else if (axis == "pred") {
            for (const std::string &token : cli::splitCsv(values)) {
                auto kind = predictorFromKey(token);
                if (!kind) {
                    *error = "unknown predictor '" + token + "'";
                    return std::nullopt;
                }
                spec.predictor.push_back(*kind);
            }
        } else if (axis == "rob") {
            if (!appendValues(values, &spec.robSize, narrowU32,
                              error)) {
                return std::nullopt;
            }
        } else if (axis == "iq") {
            if (!appendValues(values, &spec.iqSize, narrowU32,
                              error)) {
                return std::nullopt;
            }
        } else if (axis == "fualu") {
            if (!appendValues(values, &spec.fuAlu, narrowU32,
                              error)) {
                return std::nullopt;
            }
        } else if (axis == "fumul") {
            if (!appendValues(values, &spec.fuMul, narrowU32,
                              error)) {
                return std::nullopt;
            }
        } else if (axis == "fumem") {
            if (!appendValues(values, &spec.fuMem, narrowU32,
                              error)) {
                return std::nullopt;
            }
        } else if (axis == "fubr") {
            if (!appendValues(values, &spec.fuBr, narrowU32,
                              error)) {
                return std::nullopt;
            }
        } else if (axis == "buses") {
            if (!appendValues(values, &spec.resultBuses, narrowU32,
                              error)) {
                return std::nullopt;
            }
        } else {
            *error = "unknown axis '" + axis +
                     "' (axes: l2kb, assoc, depth, width, pred, rob, "
                     "iq, fualu, fumul, fumem, fubr, buses)";
            return std::nullopt;
        }
    }

    // Omitted axes default to the Table 2 default point.
    const DesignPoint def = defaultDesignPoint();
    if (spec.l2KB.empty())
        spec.l2KB = {def.l2KB};
    if (spec.l2Assoc.empty())
        spec.l2Assoc = {def.l2Assoc};
    if (spec.depthFreq.empty())
        spec.depthFreq = {{def.depth, def.freqGHz}};
    if (spec.width.empty())
        spec.width = {def.width};
    if (spec.predictor.empty())
        spec.predictor = {def.predictor};
    fillOooDefaults(&spec);

    // Re-run the axis invariants through the non-fatal path so a bad
    // spec string reports like any other grammar error.
    if (std::string why = spec.checkAxes(); !why.empty()) {
        *error = why;
        return std::nullopt;
    }
    return spec;
}

SpaceSpec
SpaceSpec::parse(const std::string &text)
{
    std::string error;
    auto spec = tryParse(text, &error);
    if (!spec)
        fatal("bad design-space spec '", text, "': ", error);
    return *spec;
}

std::string
SpaceSpec::checkAxes() const
{
    auto dup = [](const auto &axis) {
        for (std::size_t i = 0; i < axis.size(); ++i) {
            for (std::size_t j = i + 1; j < axis.size(); ++j) {
                if (axis[i] == axis[j])
                    return true;
            }
        }
        return false;
    };
    if (l2KB.empty() || l2Assoc.empty() || depthFreq.empty() ||
        width.empty() || predictor.empty() || robSize.empty() ||
        iqSize.empty() || fuAlu.empty() || fuMul.empty() ||
        fuMem.empty() || fuBr.empty() || resultBuses.empty()) {
        return "every axis needs at least one value";
    }
    if (dup(l2KB) || dup(l2Assoc) || dup(depthFreq) || dup(width) ||
        dup(predictor) || dup(robSize) || dup(iqSize) || dup(fuAlu) ||
        dup(fuMul) || dup(fuMem) || dup(fuBr) || dup(resultBuses)) {
        return "duplicate value on an axis";
    }
    for (std::uint64_t kb : l2KB) {
        if (!isPow2(kb))
            return "L2 size " + std::to_string(kb) +
                   " KiB is not a power of two";
        // Bounded so a client-supplied geometry can never demand a
        // pathological tag-array allocation (the serve layer feeds
        // untrusted points through this check).
        if (kb > kMaxL2KB) {
            return "L2 size " + std::to_string(kb) +
                   " KiB above the supported " +
                   std::to_string(kMaxL2KB / 1024) + " MiB";
        }
    }
    for (std::uint32_t assoc : l2Assoc) {
        if (!isPow2(assoc))
            return "associativity " + std::to_string(assoc) +
                   " is not a power of two";
    }
    for (std::uint64_t kb : l2KB) {
        for (std::uint32_t assoc : l2Assoc) {
            if (kb * 1024 < static_cast<std::uint64_t>(assoc) * 64) {
                return "L2 " + std::to_string(kb) + " KiB cannot hold " +
                       std::to_string(assoc) + " ways of 64 B lines";
            }
        }
    }
    for (const DepthFreq &df : depthFreq) {
        if (df.depth < 5) {
            return "depth " + std::to_string(df.depth) +
                   " below minimum 5 (2 front-end + 3 back-end stages)";
        }
        if (!std::isfinite(df.freqGHz) || df.freqGHz <= 0.0)
            return "frequency must be positive and finite";
    }
    for (std::uint32_t w : width) {
        if (w < 1 || w > 16)
            return "width " + std::to_string(w) +
                   " outside supported [1,16]";
    }
    for (std::uint32_t rob : robSize) {
        if (rob < 1 || rob > kMaxRobSize) {
            return "ROB size " + std::to_string(rob) +
                   " outside supported [1," +
                   std::to_string(kMaxRobSize) + "]";
        }
        // The out-of-order interval model treats the ROB as the
        // dispatch window and requires it to cover at least one
        // dispatch group.
        for (std::uint32_t w : width) {
            if (rob < w) {
                return "ROB size " + std::to_string(rob) +
                       " smaller than width " + std::to_string(w);
            }
        }
    }
    for (std::uint32_t iq : iqSize) {
        if (iq < 1 || iq > kMaxIqSize) {
            return "issue-queue size " + std::to_string(iq) +
                   " outside supported [1," +
                   std::to_string(kMaxIqSize) + "]";
        }
    }
    auto badCount = [](const std::vector<std::uint32_t> &axis) {
        return std::any_of(axis.begin(), axis.end(),
                           [](std::uint32_t v) {
                               return v < 1 || v > kMaxFuCount;
                           });
    };
    if (badCount(fuAlu) || badCount(fuMul) || badCount(fuMem) ||
        badCount(fuBr)) {
        return "functional-unit counts must be in [1," +
               std::to_string(kMaxFuCount) + "]";
    }
    for (std::uint32_t buses : resultBuses) {
        if (buses < 1 || buses > kMaxResultBuses) {
            return "result-bus count " + std::to_string(buses) +
                   " outside supported [1," +
                   std::to_string(kMaxResultBuses) + "]";
        }
    }
    return "";
}

bool
SpaceSpec::hasOooAxes() const
{
    const OooParams def;
    auto nonTrivial = [](const std::vector<std::uint32_t> &axis,
                         std::uint32_t defValue) {
        return axis.size() > 1 ||
               (axis.size() == 1 && axis.front() != defValue);
    };
    return nonTrivial(robSize, def.robSize) ||
           nonTrivial(iqSize, def.iqSize) ||
           nonTrivial(fuAlu, def.fuAlu) ||
           nonTrivial(fuMul, def.fuMul) ||
           nonTrivial(fuMem, def.fuMem) ||
           nonTrivial(fuBr, def.fuBr) ||
           nonTrivial(resultBuses, def.resultBuses);
}

void
SpaceSpec::validate() const
{
    if (std::string why = checkAxes(); !why.empty())
        fatal("invalid design-space spec: ", why);
}

std::uint64_t
SpaceSpec::size() const
{
    std::uint64_t n = 1;
    for (std::size_t axis = 0; axis < kAxes; ++axis)
        n *= axisSize(axis);
    return n;
}

std::uint64_t
SpaceSpec::axisSize(std::size_t axis) const
{
    switch (axis) {
      case 0: return l2KB.size();
      case 1: return l2Assoc.size();
      case 2: return depthFreq.size();
      case 3: return width.size();
      case 4: return predictor.size();
      case 5: return robSize.size();
      case 6: return iqSize.size();
      case 7: return fuAlu.size();
      case 8: return fuMul.size();
      case 9: return fuMem.size();
      case 10: return fuBr.size();
      case 11: return resultBuses.size();
      default: panic("axis index ", axis, " out of range");
    }
}

std::vector<std::uint32_t>
SpaceSpec::digitsOf(std::uint64_t index) const
{
    MECH_ASSERT(index < size(), "space index out of range");
    std::vector<std::uint32_t> digits(kAxes);
    for (std::size_t axis = kAxes; axis-- > 0;) {
        std::uint64_t radix = axisSize(axis);
        digits[axis] = static_cast<std::uint32_t>(index % radix);
        index /= radix;
    }
    return digits;
}

DesignPoint
SpaceSpec::fromDigits(const std::vector<std::uint32_t> &digits) const
{
    MECH_ASSERT(digits.size() == kAxes, "need one digit per axis");
    for (std::size_t axis = 0; axis < kAxes; ++axis) {
        MECH_ASSERT(digits[axis] < axisSize(axis),
                    "axis digit out of range");
    }
    DesignPoint p;
    p.l2KB = l2KB[digits[0]];
    p.l2Assoc = l2Assoc[digits[1]];
    p.depth = depthFreq[digits[2]].depth;
    p.freqGHz = depthFreq[digits[2]].freqGHz;
    p.width = width[digits[3]];
    p.predictor = predictor[digits[4]];
    p.ooo.robSize = robSize[digits[5]];
    p.ooo.iqSize = iqSize[digits[6]];
    p.ooo.fuAlu = fuAlu[digits[7]];
    p.ooo.fuMul = fuMul[digits[8]];
    p.ooo.fuMem = fuMem[digits[9]];
    p.ooo.fuBr = fuBr[digits[10]];
    p.ooo.resultBuses = resultBuses[digits[11]];
    return p;
}

DesignPoint
SpaceSpec::at(std::uint64_t index) const
{
    return fromDigits(digitsOf(index));
}

std::vector<DesignPoint>
SpaceSpec::l2Geometries() const
{
    std::vector<DesignPoint> reps;
    reps.reserve(l2KB.size() * l2Assoc.size());
    DesignPoint base = at(0);
    for (std::uint64_t kb : l2KB) {
        for (std::uint32_t assoc : l2Assoc) {
            DesignPoint p = base;
            p.l2KB = kb;
            p.l2Assoc = assoc;
            reps.push_back(p);
        }
    }
    return reps;
}

std::string
SpaceSpec::describe() const
{
    std::ostringstream oss;
    auto list = [&oss](const char *name, const auto &axis,
                       const auto &print) {
        oss << name << '=';
        for (std::size_t i = 0; i < axis.size(); ++i) {
            if (i)
                oss << ',';
            print(axis[i]);
        }
    };
    list("l2kb", l2KB, [&oss](std::uint64_t v) { oss << v; });
    oss << ';';
    list("assoc", l2Assoc, [&oss](std::uint32_t v) { oss << v; });
    oss << ';';
    list("depth", depthFreq, [&oss](const DepthFreq &df) {
        oss << df.depth << '@' << exactDouble(df.freqGHz);
    });
    oss << ';';
    list("width", width, [&oss](std::uint32_t v) { oss << v; });
    oss << ';';
    list("pred", predictor,
         [&oss](PredictorKind kind) { oss << predictorKey(kind); });
    // The out-of-order axes are emitted only when non-trivial, so a
    // spec that never mentioned them describes exactly as before the
    // axes existed.
    if (hasOooAxes()) {
        auto u32 = [&oss](std::uint32_t v) { oss << v; };
        oss << ';';
        list("rob", robSize, u32);
        oss << ';';
        list("iq", iqSize, u32);
        oss << ';';
        list("fualu", fuAlu, u32);
        oss << ';';
        list("fumul", fuMul, u32);
        oss << ';';
        list("fumem", fuMem, u32);
        oss << ';';
        list("fubr", fuBr, u32);
        oss << ';';
        list("buses", resultBuses, u32);
    }
    return oss.str();
}

} // namespace mech
