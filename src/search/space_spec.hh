/**
 * @file
 * Generative design spaces: declarative axes, lazy enumeration.
 *
 * The paper's payoff is that a model evaluation costs microseconds,
 * so design-space exploration is bounded by how many points can be
 * *described*, not how many can be afforded.  The seed repo could
 * only enumerate the fixed 192-point Table 2 grid; a SpaceSpec
 * instead parameterizes each DesignPoint axis (L2 size/assoc,
 * depth/frequency operating points, width, predictor) with explicit
 * value lists — built programmatically, from named presets, or from a
 * compact text grammar — and enumerates the cross product lazily by
 * index, so spaces of 10k-1M+ points cost nothing to hold.
 *
 * Enumeration order is the mixed-radix order of the axes with l2KB
 * most significant and the predictor least significant; the `table2`
 * preset reproduces table2Space() element-for-element under it.
 *
 * Text grammar (axes separated by ';', values by ','):
 *
 *   l2kb=128:1024:*2; assoc=8,16; depth=5@0.6,7@0.8,9@1.0;
 *   width=1:4; pred=gshare1k,hybrid3k5; rob=32:256:*2; buses=2,4
 *
 *   - numeric axes take value lists ("1,2,3") and ranges: "lo:hi"
 *     steps by +1, "lo:hi:+s" by adding s, "lo:hi:*m" by multiplying
 *     by m (for power-of-two sweeps);
 *   - the depth axis takes "depth@freqGHz" operating points, mirroring
 *     Table 2's coupling of pipeline depth and clock frequency;
 *   - pred takes predictor keys (predictorKey());
 *   - the out-of-order structures are axes of their own: rob (reorder
 *     buffer entries), iq (issue-queue entries), fualu/fumul/fumem/fubr
 *     (functional-unit counts per class) and buses (result buses).
 *     They only matter to the out-of-order backends ("ooo", "oosim");
 *     the in-order backends ignore them;
 *   - an omitted axis defaults to the Table 2 default point's value
 *     (for the out-of-order axes, the OooParams defaults);
 *   - a preset name ("table2", "wide") may be used instead of a
 *     grammar string, as may "mdesc:<path>", which pins the space to
 *     the single design point of a characterized machine description
 *     (see characterize/mdesc.hh).  Loading the point is pure — it
 *     does not install the file's latency table; pass --mdesc to the
 *     tool for that.
 */

#ifndef MECH_SEARCH_SPACE_SPEC_HH
#define MECH_SEARCH_SPACE_SPEC_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dse/design_space.hh"

namespace mech {

/** One coupled (pipeline depth, clock frequency) operating point. */
struct DepthFreq
{
    std::uint32_t depth = 9;
    double freqGHz = 1.0;

    bool operator==(const DepthFreq &other) const = default;
};

/** A declarative, lazily enumerable design space. */
class SpaceSpec
{
  public:
    /**
     * Largest supported L2 capacity (64 MiB), 8x the `wide` preset's
     * top end.  check() rejects anything larger: L2 geometry sizes
     * tag-array allocations, and the serve layer runs *client*
     * design points through these invariants, so the bound is what
     * keeps a hostile request from demanding a pathological
     * allocation.
     */
    static constexpr std::uint64_t kMaxL2KB = 64 * 1024;

    /**
     * Bounds on the out-of-order structure axes.  Like kMaxL2KB they
     * exist because the serve layer runs *client* axes through
     * check(): the reorder buffer and issue queue size per-point
     * allocations in the cycle-accurate pipeline, and the functional
     * unit / result bus counts size per-cycle scan work.
     */
    static constexpr std::uint32_t kMaxRobSize = 4096;
    static constexpr std::uint32_t kMaxIqSize = 4096;
    static constexpr std::uint32_t kMaxFuCount = 64;
    static constexpr std::uint32_t kMaxResultBuses = 64;

    /**
     * Number of design-point axes (l2kb, assoc, depth, width, pred,
     * rob, iq, fualu, fumul, fumem, fubr, buses).  The out-of-order
     * axes were appended *least significant* so specs without them
     * enumerate in the same order as before they existed.
     */
    static constexpr std::size_t kAxes = 12;

    /** L2 capacities in KiB (axis 0, most significant). */
    std::vector<std::uint64_t> l2KB;

    /** L2 associativities (axis 1). */
    std::vector<std::uint32_t> l2Assoc;

    /** Depth/frequency operating points (axis 2). */
    std::vector<DepthFreq> depthFreq;

    /** Superscalar widths (axis 3). */
    std::vector<std::uint32_t> width;

    /** Branch predictor designs (axis 4). */
    std::vector<PredictorKind> predictor;

    /** Reorder-buffer sizes (axis 5). */
    std::vector<std::uint32_t> robSize;

    /** Issue-queue (reservation station) sizes (axis 6). */
    std::vector<std::uint32_t> iqSize;

    /** Simple-ALU counts (axis 7). */
    std::vector<std::uint32_t> fuAlu;

    /** Multiplier/divider (long-latency FU) counts (axis 8). */
    std::vector<std::uint32_t> fuMul;

    /** Memory-port counts (axis 9). */
    std::vector<std::uint32_t> fuMem;

    /** Branch-unit counts (axis 10). */
    std::vector<std::uint32_t> fuBr;

    /** Result-bus counts (axis 11, least significant). */
    std::vector<std::uint32_t> resultBuses;

    /** The Table 2 grid as a spec (enumerates as table2Space()). */
    static SpaceSpec table2();

    /**
     * A 12544-point expanded space: L2 64 KiB-8 MiB, associativity
     * 1-64, seven depth/frequency operating points (the Table 2
     * three plus deeper/faster pipelines up to 17@1.8), the full
     * supported width range 1-16, both Table 2 predictors.  The
     * ">= 10k points" scenario the seed exhaustive grid could not
     * express.
     */
    static SpaceSpec wide();

    /**
     * Parse a grammar string or preset name; calls fatal() on any
     * malformed input (a user error).
     */
    static SpaceSpec parse(const std::string &text);

    /**
     * parse() without the fatal(): nullopt plus a message in
     * @p error on rejection, so the grammar stays unit-testable.
     */
    static std::optional<SpaceSpec> tryParse(const std::string &text,
                                             std::string *error);

    /**
     * The one-point space containing exactly @p point.  The serve
     * layer uses it to run a client-supplied design point through the
     * same axis invariants (check()) and geometry preparation
     * (l2Geometries()) as a full space.
     */
    static SpaceSpec single(const DesignPoint &point);

    /**
     * Validate the axes: every axis non-empty and duplicate-free,
     * power-of-two L2 geometry with at least one set, widths within
     * the machine's [1,16], depths >= 5 (a 2-stage front end plus the
     * 3-stage back end), positive frequencies.  Calls fatal() on
     * violation.
     */
    void validate() const;

    /**
     * validate() without the fatal(): the first violated invariant as
     * a message, or an empty string when the axes are all valid.
     */
    std::string check() const { return checkAxes(); }

    /**
     * Whether any out-of-order structure axis is non-trivial: more
     * than one value, or a single value that differs from the
     * OooParams default.  The search and serve layers use this to
     * reject spaces that sweep out-of-order axes no selected backend
     * would ever read.
     */
    bool hasOooAxes() const;

    /** Number of points in the space (product of axis sizes). */
    std::uint64_t size() const;

    /** Cardinality of axis @p axis (0-based, see kAxes order). */
    std::uint64_t axisSize(std::size_t axis) const;

    /** The @p index-th point of the enumeration.  @pre index < size. */
    DesignPoint at(std::uint64_t index) const;

    /** Mixed-radix digits of @p index, one per axis. */
    std::vector<std::uint32_t> digitsOf(std::uint64_t index) const;

    /** The point selected by one digit per axis. */
    DesignPoint fromDigits(const std::vector<std::uint32_t> &digits) const;

    /** Canonical grammar string describing the axes. */
    std::string describe() const;

    /**
     * One representative point per distinct L2 geometry, for
     * memoizing MemoryStats before a search (DseStudy::prepare).
     */
    std::vector<DesignPoint> l2Geometries() const;

  private:
    /** The validate() invariants; empty string when they all hold. */
    std::string checkAxes() const;
};

} // namespace mech

#endif // MECH_SEARCH_SPACE_SPEC_HH
