#include "search/strategy.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"
#include "common/rng.hh"
#include "search/pareto.hh"

namespace mech {

namespace {

/** Random mixed-radix digits, one per axis. */
std::vector<std::uint32_t>
randomDigits(const SpaceSpec &spec, Rng &rng)
{
    std::vector<std::uint32_t> digits(SpaceSpec::kAxes);
    for (std::size_t axis = 0; axis < SpaceSpec::kAxes; ++axis) {
        digits[axis] =
            static_cast<std::uint32_t>(rng.below(spec.axisSize(axis)));
    }
    return digits;
}

/** Normalized ("lower is better") cost row of one evaluation. */
std::vector<double>
costRow(const SearchContext &ctx, const SearchEval &eval)
{
    const auto &objs = ctx.eval.objectives();
    std::vector<double> row(objs.size());
    for (std::size_t k = 0; k < objs.size(); ++k)
        row[k] = objs[k].normalized(eval.aggregate[k]);
    return row;
}

/** The seed's exhaustive sweep, as one strategy among several. */
class ExhaustiveSearch : public SearchStrategy
{
  public:
    std::string_view name() const override { return "exhaustive"; }

    std::string_view
    description() const override
    {
        return "every point in enumeration order (budget 0 = all)";
    }

    bool supportsUnlimitedBudget() const override { return true; }

    void
    run(SearchContext &ctx) const override
    {
        std::uint64_t limit = ctx.spec.size();
        if (ctx.opts.budget != 0)
            limit = std::min(limit, ctx.opts.budget);
        const std::uint64_t chunk =
            std::max<std::uint64_t>(1, ctx.opts.batchSize);
        for (std::uint64_t start = 0; start < limit; start += chunk) {
            const std::uint64_t end = std::min(limit, start + chunk);
            std::vector<DesignPoint> points;
            points.reserve(end - start);
            for (std::uint64_t i = start; i < end; ++i)
                points.push_back(ctx.spec.at(i));
            ctx.evaluate(points);
        }
    }
};

/** Uniform sampling with replacement (the unbiased baseline). */
class RandomSearch : public SearchStrategy
{
  public:
    std::string_view name() const override { return "random"; }

    std::string_view
    description() const override
    {
        return "uniform random sampling of the space";
    }

    void
    run(SearchContext &ctx) const override
    {
        Rng rng(ctx.opts.seed);
        const std::uint64_t space = ctx.spec.size();
        while (!ctx.budgetExhausted() && !ctx.spaceExhausted()) {
            // Capping the batch at the remaining budget means the
            // budget is never overshot: hits cost nothing and every
            // miss in the batch is one budgeted evaluation.
            std::uint64_t chunk =
                std::max<std::uint64_t>(1, ctx.opts.batchSize);
            chunk = std::min(chunk,
                             ctx.opts.budget - ctx.stats.misses);
            std::vector<DesignPoint> points;
            points.reserve(chunk);
            for (std::uint64_t i = 0; i < chunk; ++i)
                points.push_back(ctx.spec.at(rng.below(space)));
            ctx.evaluate(points);
        }
    }
};

/** Axis-step local search with random restarts (scalar objective). */
class HillClimbSearch : public SearchStrategy
{
  public:
    std::string_view name() const override { return "hillclimb"; }

    std::string_view
    description() const override
    {
        return "local axis-step search with random restarts";
    }

    void
    run(SearchContext &ctx) const override
    {
        Rng rng(ctx.opts.seed);
        // Stop after this many consecutive restarts that discovered
        // nothing new: the reachable neighbourhood is explored and
        // further restarts would spin on cache hits forever.
        constexpr int kMaxStaleRestarts = 50;
        int stale = 0;
        while (!ctx.budgetExhausted() && !ctx.spaceExhausted() &&
               stale < kMaxStaleRestarts) {
            const std::uint64_t misses_before = ctx.stats.misses;
            climb(ctx, rng);
            stale = ctx.stats.misses == misses_before ? stale + 1 : 0;
        }
    }

  private:
    void
    climb(SearchContext &ctx, Rng &rng) const
    {
        std::vector<std::uint32_t> digits =
            randomDigits(ctx.spec, rng);
        const SearchEval *cur =
            ctx.evaluate({ctx.spec.fromDigits(digits)}).front();
        double cur_cost = ctx.scalarCost(*cur);

        while (!ctx.budgetExhausted()) {
            std::vector<std::vector<std::uint32_t>> neighbours;
            std::vector<DesignPoint> points;
            for (std::size_t axis = 0; axis < SpaceSpec::kAxes;
                 ++axis) {
                for (int delta : {-1, +1}) {
                    if (delta < 0 && digits[axis] == 0)
                        continue;
                    if (delta > 0 &&
                        digits[axis] + 1 >= ctx.spec.axisSize(axis)) {
                        continue;
                    }
                    std::vector<std::uint32_t> nd = digits;
                    nd[axis] = static_cast<std::uint32_t>(
                        static_cast<int>(nd[axis]) + delta);
                    points.push_back(ctx.spec.fromDigits(nd));
                    neighbours.push_back(std::move(nd));
                }
            }
            auto evals = ctx.evaluate(points);

            // Strict improvement only; ties keep the earlier
            // neighbour so the walk is deterministic.
            std::size_t best = points.size();
            double best_cost = cur_cost;
            for (std::size_t i = 0; i < evals.size(); ++i) {
                double cost = ctx.scalarCost(*evals[i]);
                if (cost < best_cost) {
                    best_cost = cost;
                    best = i;
                }
            }
            if (best == points.size())
                return; // local optimum: restart
            digits = neighbours[best];
            cur_cost = best_cost;
        }
    }
};

/** NSGA-II-style multi-objective genetic optimizer. */
class GeneticSearch : public SearchStrategy
{
  public:
    std::string_view name() const override { return "genetic"; }

    std::string_view
    description() const override
    {
        return "NSGA-II-style multi-objective genetic search";
    }

    void
    run(SearchContext &ctx) const override
    {
        Rng rng(ctx.opts.seed);
        const unsigned pop_size = std::max(4u, ctx.opts.population);
        const double mutation =
            ctx.opts.mutationRate >= 0.0
                ? ctx.opts.mutationRate
                : 1.0 / static_cast<double>(SpaceSpec::kAxes);

        struct Individual
        {
            std::vector<std::uint32_t> digits;
            const SearchEval *eval = nullptr;
            std::size_t rank = 0;
            double crowding = 0.0;
        };

        // Initial population.
        std::vector<Individual> pop(pop_size);
        {
            std::vector<DesignPoint> points;
            points.reserve(pop_size);
            for (Individual &ind : pop) {
                ind.digits = randomDigits(ctx.spec, rng);
                points.push_back(ctx.spec.fromDigits(ind.digits));
            }
            auto evals = ctx.evaluate(points);
            for (std::size_t i = 0; i < pop.size(); ++i)
                pop[i].eval = evals[i];
            rankPopulation(ctx, pop);
        }

        // Stop once the budget is spent, the space is fully
        // explored, or several generations in a row produced nothing
        // new (the population has converged onto cached points).
        constexpr int kMaxStaleGenerations = 4;
        int stale = 0;
        while (!ctx.budgetExhausted() && !ctx.spaceExhausted() &&
               stale < kMaxStaleGenerations) {
            const std::uint64_t misses_before = ctx.stats.misses;

            // Offspring: tournament parents, uniform crossover,
            // per-axis mutation.
            std::vector<Individual> offspring(pop_size);
            std::vector<DesignPoint> points;
            points.reserve(pop_size);
            for (Individual &child : offspring) {
                const Individual &a = tournament(pop, rng);
                const Individual &b = tournament(pop, rng);
                child.digits.resize(SpaceSpec::kAxes);
                for (std::size_t axis = 0; axis < SpaceSpec::kAxes;
                     ++axis) {
                    child.digits[axis] = rng.chance(0.5)
                                             ? a.digits[axis]
                                             : b.digits[axis];
                    if (rng.chance(mutation)) {
                        child.digits[axis] = static_cast<std::uint32_t>(
                            rng.below(ctx.spec.axisSize(axis)));
                    }
                }
                points.push_back(ctx.spec.fromDigits(child.digits));
            }
            auto evals = ctx.evaluate(points);
            for (std::size_t i = 0; i < offspring.size(); ++i)
                offspring[i].eval = evals[i];

            // Environmental selection over parents + offspring,
            // deduplicated by cache entry (same point, same entry).
            std::vector<Individual> combined;
            combined.reserve(pop.size() + offspring.size());
            for (auto &src : {&pop, &offspring}) {
                for (Individual &ind : *src) {
                    bool seen = false;
                    for (const Individual &kept : combined)
                        seen |= kept.eval == ind.eval;
                    if (!seen)
                        combined.push_back(std::move(ind));
                }
            }
            rankPopulation(ctx, combined);
            std::stable_sort(
                combined.begin(), combined.end(),
                [](const Individual &x, const Individual &y) {
                    if (x.rank != y.rank)
                        return x.rank < y.rank;
                    if (x.crowding != y.crowding)
                        return x.crowding > y.crowding;
                    return x.eval->firstIndex < y.eval->firstIndex;
                });
            if (combined.size() > pop_size)
                combined.resize(pop_size);
            pop = std::move(combined);

            stale = ctx.stats.misses == misses_before ? stale + 1 : 0;
        }
    }

  private:
    template <typename Individual>
    static void
    rankPopulation(const SearchContext &ctx,
                   std::vector<Individual> &pop)
    {
        std::vector<std::vector<double>> costs;
        costs.reserve(pop.size());
        for (const Individual &ind : pop)
            costs.push_back(costRow(ctx, *ind.eval));
        auto fronts = nonDominatedSort(costs);
        for (std::size_t f = 0; f < fronts.size(); ++f) {
            auto crowd = crowdingDistances(costs, fronts[f]);
            for (std::size_t i = 0; i < fronts[f].size(); ++i) {
                pop[fronts[f][i]].rank = f;
                pop[fronts[f][i]].crowding = crowd[i];
            }
        }
    }

    template <typename Individual>
    static const Individual &
    tournament(const std::vector<Individual> &pop, Rng &rng)
    {
        const Individual &a = pop[rng.below(pop.size())];
        const Individual &b = pop[rng.below(pop.size())];
        if (a.rank != b.rank)
            return a.rank < b.rank ? a : b;
        if (a.crowding != b.crowding)
            return a.crowding > b.crowding ? a : b;
        return a.eval->firstIndex <= b.eval->firstIndex ? a : b;
    }
};

} // namespace

std::vector<std::string>
strategyNames()
{
    return {"exhaustive", "random", "hillclimb", "genetic"};
}

std::unique_ptr<SearchStrategy>
makeStrategy(std::string_view name)
{
    if (name == "exhaustive")
        return std::make_unique<ExhaustiveSearch>();
    if (name == "random")
        return std::make_unique<RandomSearch>();
    if (name == "hillclimb")
        return std::make_unique<HillClimbSearch>();
    if (name == "genetic")
        return std::make_unique<GeneticSearch>();
    std::string known;
    for (const std::string &s : strategyNames())
        known += (known.empty() ? "" : ", ") + s;
    fatal("unknown search strategy '", std::string(name),
          "' (known: ", known, ")");
}

std::string
strategyDescription(const std::string &name)
{
    return std::string(makeStrategy(name)->description());
}

SearchResult
runSearch(const SpaceSpec &spec, std::string_view strategy,
          SearchEvaluator &evaluator, const SearchOptions &opts)
{
    spec.validate();
    auto strat = makeStrategy(strategy);
    if (opts.budget == 0 && !strat->supportsUnlimitedBudget()) {
        fatal("strategy '", std::string(strategy),
              "' needs a positive --budget (0 = unlimited is only "
              "meaningful for exhaustive search)");
    }

    // opts.threads <= 1: the zero-worker pool runs every task inline
    // on this thread — the strictly serial path, same code.
    ThreadPool pool(opts.threads <= 1 ? 0 : opts.threads);
    evaluator.prepare(spec, pool);

    SearchResult res;
    res.cacheKeepAlive = std::make_shared<EvalCache>();
    SearchContext ctx{spec, evaluator, *res.cacheKeepAlive,
                      pool, opts,      SearchStats{}};
    strat->run(ctx);

    res.strategy = strat->name();
    res.space = spec.describe();
    res.spaceSize = spec.size();
    for (const Objective &obj : evaluator.objectives())
        res.objectiveNames.push_back(obj.name);
    res.benchmarks = evaluator.benchmarkNames();
    res.seed = opts.seed;
    res.budget = opts.budget;
    res.stats = ctx.stats;
    res.evaluated = res.cacheKeepAlive->entries();
    MECH_ASSERT(!res.evaluated.empty(),
                "search evaluated no points");

    std::vector<std::vector<double>> costs;
    costs.reserve(res.evaluated.size());
    for (const SearchEval *eval : res.evaluated)
        costs.push_back(costRow(ctx, *eval));
    res.frontier = paretoFrontier(costs);

    res.bestIndex = 0;
    double best_cost = ctx.scalarCost(*res.evaluated[0]);
    for (std::size_t i = 1; i < res.evaluated.size(); ++i) {
        double cost = ctx.scalarCost(*res.evaluated[i]);
        if (cost < best_cost) {
            best_cost = cost;
            res.bestIndex = i;
        }
    }
    return res;
}

} // namespace mech
