/**
 * @file
 * Search strategies over generative design spaces.
 *
 * A SearchStrategy decides *which* points to evaluate; everything
 * else — evaluation, memoization, parallelism, frontier extraction —
 * is shared machinery.  Four built-ins cover the classic trade-off
 * curve:
 *
 *   exhaustive  every point in enumeration order (the seed repo's
 *               only mode, now one strategy among several);
 *   random      uniform sampling, the unbiased baseline;
 *   hillclimb   axis-step local search with random restarts on the
 *               scalar (first) objective;
 *   genetic     an NSGA-II-style multi-objective optimizer (fast
 *               non-dominated sort + crowding selection).
 *
 * Determinism contract: given the same spec, strategy, objectives,
 * seed and budget, a search produces *bit-identical* results — the
 * same points evaluated in the same first-evaluation order with the
 * same hit/miss counts — for any thread count.  Randomness flows
 * only through the explicit seed; parallel workers only compute
 * point evaluations (themselves deterministic), never make choices.
 *
 * The budget bounds *fresh model evaluations* (cache misses); cache
 * hits are free, which is the point of the memo.  A strategy may
 * overshoot by at most one batch.  Budget 0 means unlimited — useful
 * with exhaustive, rejected by the unbounded strategies' drivers.
 */

#ifndef MECH_SEARCH_STRATEGY_HH
#define MECH_SEARCH_STRATEGY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_pool.hh"
#include "search/eval_cache.hh"
#include "search/evaluator.hh"
#include "search/space_spec.hh"

namespace mech {

/** Knobs common to every strategy (strategy-specific ones noted). */
struct SearchOptions
{
    /** Seed for every stochastic choice. */
    std::uint64_t seed = 1;

    /** Max fresh evaluations (cache misses); 0 = unlimited. */
    std::uint64_t budget = 2000;

    /** Worker threads; <= 1 runs fully serial, bit-identically. */
    unsigned threads = 1;

    /** Points per evaluation batch (exhaustive/random chunking). */
    std::uint64_t batchSize = 256;

    /** Population size (genetic). */
    unsigned population = 24;

    /** Per-axis mutation probability (genetic); <0 = 1/axes. */
    double mutationRate = -1.0;
};

/** A completed search: what was evaluated and what won. */
struct SearchResult
{
    /** Strategy name. */
    std::string strategy;

    /** Canonical spec grammar of the searched space. */
    std::string space;

    /** Size of the searched space. */
    std::uint64_t spaceSize = 0;

    /** Objective names, in objective order. */
    std::vector<std::string> objectiveNames;

    /** Benchmark names the objectives aggregate over. */
    std::vector<std::string> benchmarks;

    /** The seed and budget the search ran with. */
    std::uint64_t seed = 0;
    std::uint64_t budget = 0;

    /**
     * Every evaluated point in first-evaluation order (pointers into
     * the run's cache, kept alive by @c cacheKeepAlive).
     */
    std::vector<const SearchEval *> evaluated;

    /** Indices into @c evaluated forming the Pareto frontier. */
    std::vector<std::size_t> frontier;

    /** Index into @c evaluated of the best scalar-objective point. */
    std::size_t bestIndex = 0;

    /** Evaluation-traffic counters. */
    SearchStats stats;

    /** Owns the entries @c evaluated points into. */
    std::shared_ptr<EvalCache> cacheKeepAlive;

    /** The best point's evaluation. */
    const SearchEval &best() const { return *evaluated[bestIndex]; }
};

/** Everything a strategy needs while running. */
struct SearchContext
{
    const SpaceSpec &spec;
    const SearchEvaluator &eval;
    EvalCache &cache;
    ThreadPool &pool;
    const SearchOptions &opts;
    SearchStats stats;

    /** Evaluate a batch through the memo (see SearchEvaluator). */
    std::vector<const SearchEval *>
    evaluate(const std::vector<DesignPoint> &points)
    {
        return eval.evaluateBatch(points, cache, pool, stats);
    }

    /** True once the fresh-evaluation budget is spent. */
    bool
    budgetExhausted() const
    {
        return opts.budget != 0 && stats.misses >= opts.budget;
    }

    /** True once every point of the space has been evaluated. */
    bool
    spaceExhausted() const
    {
        return stats.misses >= spec.size();
    }

    /** Scalar cost of @p eval: normalized first objective. */
    double
    scalarCost(const SearchEval &se) const
    {
        return eval.objectives().front().normalized(se.aggregate[0]);
    }
};

/** A search strategy (stateless; all run state lives in the context). */
class SearchStrategy
{
  public:
    virtual ~SearchStrategy() = default;

    /** Registry name ("genetic"). */
    virtual std::string_view name() const = 0;

    /** One-line description for --help listings. */
    virtual std::string_view description() const = 0;

    /**
     * True when budget 0 ("unlimited") is meaningful: the strategy
     * terminates on its own.  Sampling strategies return false and
     * runSearch() rejects the combination.
     */
    virtual bool supportsUnlimitedBudget() const { return false; }

    /** Explore the space (results land in ctx.cache/ctx.stats). */
    virtual void run(SearchContext &ctx) const = 0;
};

/** Registered strategy names, in listing order. */
std::vector<std::string> strategyNames();

/** Construct a strategy by name; calls fatal() listing known names. */
std::unique_ptr<SearchStrategy> makeStrategy(std::string_view name);

/** One-line description of strategy @p name (for listings). */
std::string strategyDescription(const std::string &name);

/**
 * Run one search end to end: fresh cache, one thread pool
 * (opts.threads <= 1 executes inline on the calling thread),
 * evaluator prepared for @p spec, the strategy explored, then the
 * frontier over *all* evaluated points extracted and the scalar best
 * selected.  Deterministic for any opts.threads (see the contract
 * above); the evaluator's studies are reused across calls.
 */
SearchResult runSearch(const SpaceSpec &spec, std::string_view strategy,
                       SearchEvaluator &evaluator,
                       const SearchOptions &opts);

} // namespace mech

#endif // MECH_SEARCH_STRATEGY_HH
