#include "serve/admission.hh"

#include <algorithm>
#include <utility>

#include "obs/registry.hh"

namespace mech::serve {

namespace {

/** Admission-layer instruments (shed is counted by the front end,
 *  which alone knows whether a refused line was finally shed or
 *  force-admitted as a control request). */
struct AdmissionObs
{
    obs::Gauge &queueDepth;
    obs::Counter &admitted;
    obs::LatencyHistogram &queueWaitUs;

    static AdmissionObs &
    get()
    {
        static AdmissionObs o{
            obs::MetricsRegistry::global().gauge(
                "admission.queue_depth",
                "Request lines queued across all sessions"),
            obs::MetricsRegistry::global().counter(
                "admission.admitted",
                "Request lines accepted into the admission queue"),
            obs::MetricsRegistry::global().histogram(
                "admission.queue_wait_us",
                "Queue residency from admission to dispatch in "
                "microseconds"),
        };
        return o;
    }
};

} // namespace

AdmissionQueue::AdmissionQueue(AdmissionConfig cfg_in)
    : cfg(cfg_in)
{
}

void
AdmissionQueue::armLocked(std::uint64_t sid, Session &session)
{
    if (session.inFlight || session.inRing || session.lines.empty())
        return;
    session.inRing = true;
    ring.push_back(sid);
    cv.notify_one();
}

void
AdmissionQueue::addSession(std::uint64_t sid)
{
    std::lock_guard<std::mutex> lock(mtx);
    sessions.emplace(sid, Session{});
}

void
AdmissionQueue::removeSession(std::uint64_t sid)
{
    std::lock_guard<std::mutex> lock(mtx);
    auto it = sessions.find(sid);
    if (it == sessions.end())
        return;
    totalQueued -= it->second.lines.size();
    AdmissionObs::get().queueDepth.sub(
        static_cast<std::int64_t>(it->second.lines.size()));
    if (stopped)
        cv.notify_all();
    if (it->second.inRing) {
        for (auto rit = ring.begin(); rit != ring.end(); ++rit) {
            if (*rit == sid) {
                ring.erase(rit);
                break;
            }
        }
    }
    sessions.erase(it);
}

bool
AdmissionQueue::offer(std::uint64_t sid, QueuedLine line)
{
    std::lock_guard<std::mutex> lock(mtx);
    if (stopped)
        return false;
    auto it = sessions.find(sid);
    if (it == sessions.end())
        return false;
    Session &session = it->second;
    if (totalQueued >= cfg.maxQueue ||
        session.lines.size() >= cfg.maxInflight) {
        return false;
    }
    session.lines.push_back(std::move(line));
    ++totalQueued;
    AdmissionObs &o = AdmissionObs::get();
    o.queueDepth.add(1);
    o.admitted.inc();
    armLocked(sid, session);
    return true;
}

bool
AdmissionQueue::force(std::uint64_t sid, QueuedLine line)
{
    std::lock_guard<std::mutex> lock(mtx);
    if (stopped)
        return false;
    auto it = sessions.find(sid);
    if (it == sessions.end())
        return false;
    it->second.lines.push_back(std::move(line));
    ++totalQueued;
    AdmissionObs &o = AdmissionObs::get();
    o.queueDepth.add(1);
    o.admitted.inc();
    armLocked(sid, it->second);
    return true;
}

void
AdmissionQueue::holdDispatch(bool held_in)
{
    std::lock_guard<std::mutex> lock(mtx);
    held = held_in;
    if (!held)
        cv.notify_all();
}

bool
AdmissionQueue::nextBatch(Batch *out)
{
    std::unique_lock<std::mutex> lock(mtx);
    cv.wait(lock, [this] {
        if (stopped && totalQueued == 0)
            return true; // fully drained
        // Drain ignores any standing hold.  An empty ring with lines
        // still queued means every owner is in flight: wait for a
        // completed() to re-arm one rather than exiting early.
        return !ring.empty() && (!held || stopped);
    });
    if (ring.empty())
        return false; // stopped and fully drained

    const std::uint64_t sid = ring.front();
    ring.pop_front();
    Session &session = sessions.at(sid);
    session.inRing = false;
    session.inFlight = true;

    out->sid = sid;
    out->lines.clear();
    const std::size_t n =
        std::min(cfg.maxBatch, session.lines.size());
    out->lines.reserve(n);
    AdmissionObs &o = AdmissionObs::get();
    const auto now = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < n; ++i) {
        o.queueWaitUs.record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                now - session.lines.front().received)
                .count()));
        out->lines.push_back(std::move(session.lines.front()));
        session.lines.pop_front();
    }
    totalQueued -= n;
    o.queueDepth.sub(static_cast<std::int64_t>(n));
    if (stopped && totalQueued == 0)
        cv.notify_all(); // release dispatchers waiting out the drain
    return true;
}

void
AdmissionQueue::completed(std::uint64_t sid)
{
    std::lock_guard<std::mutex> lock(mtx);
    auto it = sessions.find(sid);
    if (it != sessions.end()) {
        it->second.inFlight = false;
        armLocked(sid, it->second);
    }
    if (stopped)
        cv.notify_all();
}

void
AdmissionQueue::stop()
{
    std::lock_guard<std::mutex> lock(mtx);
    stopped = true;
    cv.notify_all();
}

std::size_t
AdmissionQueue::pending() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return totalQueued;
}

} // namespace mech::serve
