/**
 * @file
 * Admission control for the concurrent serve front end: a bounded,
 * session-fair queue between the epoll I/O thread (producer) and the
 * dispatcher pool (consumers).
 *
 * Two bounds protect the service.  A global bound (maxQueue) caps the
 * total lines queued across every session, so a flood cannot grow
 * server memory without limit; a per-session bound (maxInflight) caps
 * one session's share of it, so a single aggressive client cannot
 * starve the rest.  offer() returning false means the line was *shed*:
 * the caller answers it immediately with a structured
 * `{"type": "error", "code": "overloaded"}` response and the request
 * never reaches the EvalService.  Control requests (info, stats,
 * shutdown) are never shed — callers force() them past the bounds, so
 * a monitoring client can always read stats from an overloaded server
 * and a shutdown can always get through.
 *
 * Fairness and ordering: sessions with queued work wait in a
 * round-robin ring; nextBatch() pops the head session's oldest lines
 * (up to maxBatch) and marks the session in-flight until the
 * dispatcher calls completed().  At most one batch per session is ever
 * in flight, which is what keeps every session's responses in its own
 * request order no matter how many dispatchers run — the per-session
 * byte-identity contract of the protocol depends on it.
 *
 * holdDispatch() is a testing knob (mech_serve --dispatch-hold-ms):
 * while held, nextBatch() blocks, so a replayed flood sheds against a
 * frozen queue and the overload golden is deterministic regardless of
 * how the kernel chunked the client's writes.
 */

#ifndef MECH_SERVE_ADMISSION_HH
#define MECH_SERVE_ADMISSION_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace mech::serve {

/** Bounds of the admission queue. */
struct AdmissionConfig
{
    /** Total queued lines across all sessions. */
    std::size_t maxQueue = 1024;

    /** Queued lines any one session may hold. */
    std::size_t maxInflight = 256;

    /** Most lines handed to a dispatcher per batch. */
    std::size_t maxBatch = 64;
};

/** One queued request line with its arrival time (for latency_us). */
struct QueuedLine
{
    std::string line;
    std::chrono::steady_clock::time_point received;
};

/** The bounded, session-fair line queue (see file comment). */
class AdmissionQueue
{
  public:
    /** Up to maxBatch consecutive lines of one session. */
    struct Batch
    {
        std::uint64_t sid = 0;
        std::vector<QueuedLine> lines;
    };

    explicit AdmissionQueue(AdmissionConfig cfg);

    AdmissionQueue(const AdmissionQueue &) = delete;
    AdmissionQueue &operator=(const AdmissionQueue &) = delete;

    /** Register a session id (fresh connection). */
    void addSession(std::uint64_t sid);

    /**
     * Drop a session and any lines it still has queued (disconnect).
     * Safe while a batch of it is in flight; the dispatcher's
     * completed() call then finds nothing to re-arm.
     */
    void removeSession(std::uint64_t sid);

    /**
     * Queue one data line for @p sid.  Returns false — without
     * queuing — when either bound is full: the caller must shed the
     * request.  Unknown session ids are also refused.
     */
    bool offer(std::uint64_t sid, QueuedLine line);

    /**
     * Queue a line past both bounds (control requests, which must
     * never be shed).  Returns false — the caller must still shed —
     * for unknown session ids or once stop() has begun the drain.
     */
    bool force(std::uint64_t sid, QueuedLine line);

    /** Freeze (true) or release (false) dispatch; see file comment. */
    void holdDispatch(bool held);

    /**
     * Block until a batch is available and pop it, round-robin over
     * ready sessions.  Returns false only after stop() once every
     * queued line has been drained — dispatchers use it as their
     * loop condition.
     */
    bool nextBatch(Batch *out);

    /**
     * A dispatcher finished @p sid's in-flight batch; the session
     * rejoins the ring if more of its lines are queued.
     */
    void completed(std::uint64_t sid);

    /**
     * Begin drain: nextBatch() hands out the remaining queued lines
     * (a standing hold is released), then returns false forever.
     * offer()/force() become no-ops.
     */
    void stop();

    /** Lines currently queued across all sessions. */
    std::size_t pending() const;

    const AdmissionConfig &config() const { return cfg; }

  private:
    struct Session
    {
        std::deque<QueuedLine> lines;
        bool inFlight = false;
        bool inRing = false;
    };

    /** Put @p sid in the ring when it is ready to dispatch (locked). */
    void armLocked(std::uint64_t sid, Session &session);

    AdmissionConfig cfg;

    mutable std::mutex mtx;
    std::condition_variable cv;
    std::map<std::uint64_t, Session> sessions;
    std::deque<std::uint64_t> ring;
    std::size_t totalQueued = 0;
    bool held = false;
    bool stopped = false;
};

} // namespace mech::serve

#endif // MECH_SERVE_ADMISSION_HH
