#include "serve/protocol.hh"

#include <cstdint>
#include <sstream>

#include "branch/predictor.hh"
#include "common/cli.hh"
#include "common/json.hh"
#include "common/numfmt.hh"

namespace mech::serve {

namespace {

/** Re-serialize a string-or-number "id" member for echoing. */
std::string
serializeId(const json::Value &id)
{
    std::ostringstream oss;
    if (id.isString()) {
        json::writeString(oss, id.string);
    } else if (auto u = id.asU64()) {
        // Whole-number ids echo back as integers ("10", never
        // "1e+01" — clients match on the exact token).
        oss << *u;
    } else {
        json::writeNumber(oss, id.number);
    }
    return oss.str();
}

/**
 * Read a name-list field: a JSON array of strings or a single
 * comma-separated string ("model,sim").  Returns false (with a
 * message) on any other shape.
 */
bool
nameList(const json::Value &root, const std::string &field,
         std::vector<std::string> *out, std::string *error)
{
    const json::Value *v = root.get(field);
    if (!v)
        return true;
    if (v->isString()) {
        for (std::string &token : cli::splitCsv(v->string))
            out->push_back(std::move(token));
        return true;
    }
    if (v->isArray()) {
        for (const json::Value &entry : v->array) {
            if (!entry.isString()) {
                *error = "'" + field +
                         "' entries must be strings";
                return false;
            }
            out->push_back(entry.string);
        }
        return true;
    }
    *error = "'" + field + "' must be a string or array of strings";
    return false;
}

/** Read one unsigned axis member of an explicit-axes point object. */
template <typename T>
bool
axisU(const json::Value &obj, const char *name, T *out,
      std::uint64_t max_value, bool *present, std::string *error)
{
    const json::Value *v = obj.get(name);
    if (!v)
        return true;
    auto u = v->asU64();
    if (!u || *u == 0 || *u > max_value) {
        *error = std::string("bad point axis '") + name + "'";
        return false;
    }
    *out = static_cast<T>(*u);
    *present = true;
    return true;
}

/**
 * Resolve the "point" member: a full DesignPoint::toKey() string or
 * an object of explicit axes, with omitted axes defaulting to the
 * Table 2 default point.
 */
bool
parsePoint(const json::Value &v, DesignPoint *out, std::string *error)
{
    if (v.isString()) {
        auto p = DesignPoint::fromKey(v.string);
        if (!p) {
            *error = "malformed point key '" + v.string +
                     "' (want the full DesignPoint::toKey() form, "
                     "e.g. \"" + defaultDesignPoint().toKey() + "\")";
            return false;
        }
        *out = *p;
        return true;
    }
    if (!v.isObject()) {
        *error = "'point' must be a key string or an axes object";
        return false;
    }

    DesignPoint p = defaultDesignPoint();
    bool present = false;
    for (const auto &member : v.object) {
        const std::string &name = member.first;
        if (name == "l2kb" || name == "assoc" || name == "depth" ||
            name == "width" || name == "freq" || name == "pred" ||
            name == "rob" || name == "iq" || name == "fualu" ||
            name == "fumul" || name == "fumem" || name == "fubr" ||
            name == "buses") {
            continue;
        }
        *error = "unknown point axis '" + name +
                 "' (axes: l2kb, assoc, depth, freq, width, pred, "
                 "rob, iq, fualu, fumul, fumem, fubr, buses)";
        return false;
    }
    constexpr std::uint64_t kU32Max = 0xffffffffull;
    if (!axisU(v, "l2kb", &p.l2KB, ~0ull, &present, error) ||
        !axisU(v, "assoc", &p.l2Assoc, kU32Max, &present, error) ||
        !axisU(v, "depth", &p.depth, kU32Max, &present, error) ||
        !axisU(v, "width", &p.width, kU32Max, &present, error) ||
        !axisU(v, "rob", &p.ooo.robSize, kU32Max, &present, error) ||
        !axisU(v, "iq", &p.ooo.iqSize, kU32Max, &present, error) ||
        !axisU(v, "fualu", &p.ooo.fuAlu, kU32Max, &present, error) ||
        !axisU(v, "fumul", &p.ooo.fuMul, kU32Max, &present, error) ||
        !axisU(v, "fumem", &p.ooo.fuMem, kU32Max, &present, error) ||
        !axisU(v, "fubr", &p.ooo.fuBr, kU32Max, &present, error) ||
        !axisU(v, "buses", &p.ooo.resultBuses, kU32Max, &present,
               error)) {
        return false;
    }
    if (const json::Value *freq = v.get("freq")) {
        if (!freq->isNumber() || !(freq->number > 0.0)) {
            *error = "bad point axis 'freq'";
            return false;
        }
        p.freqGHz = freq->number;
        present = true;
    }
    if (const json::Value *pred = v.get("pred")) {
        if (!pred->isString()) {
            *error = "bad point axis 'pred'";
            return false;
        }
        auto kind = predictorFromKey(pred->string);
        if (!kind) {
            *error = "unknown predictor '" + pred->string + "'";
            return false;
        }
        p.predictor = *kind;
        present = true;
    }
    if (!present) {
        *error = "point axes object names no axis";
        return false;
    }
    *out = p;
    return true;
}

} // namespace

ParseOutcome
parseRequest(const std::string &line)
{
    ParseOutcome out;
    std::string error;
    std::optional<json::Value> root = json::parse(line, &error);
    if (!root) {
        out.error = "parse error: " + error;
        return out;
    }
    if (!root->isObject()) {
        out.error = "request must be a JSON object";
        return out;
    }

    // Recover the id first so even a bad request echoes it.
    if (const json::Value *id = root->get("id")) {
        if (id->isString() || id->isNumber())
            out.idJson = serializeId(*id);
        else {
            out.error = "'id' must be a string or number";
            return out;
        }
    }

    const json::Value *type = root->get("type");
    if (!type || !type->isString()) {
        out.error = "missing or non-string 'type'";
        return out;
    }

    ServeRequest req;
    req.idJson = out.idJson;
    if (type->string == "eval") {
        req.type = RequestType::Eval;
    } else if (type->string == "batch") {
        req.type = RequestType::Batch;
    } else if (type->string == "info") {
        req.type = RequestType::Info;
    } else if (type->string == "stats") {
        req.type = RequestType::Stats;
    } else if (type->string == "shutdown") {
        req.type = RequestType::Shutdown;
    } else {
        out.error = "unknown request type '" + type->string +
                    "' (types: eval, batch, info, stats, shutdown)";
        return out;
    }

    if (!nameList(*root, "bench", &req.bench, &out.error) ||
        !nameList(*root, "backends", &req.backends, &out.error) ||
        !nameList(*root, "objectives", &req.objectives, &out.error)) {
        return out;
    }

    if (req.type == RequestType::Eval) {
        const json::Value *point = root->get("point");
        if (!point) {
            out.error = "eval request needs a 'point'";
            return out;
        }
        DesignPoint p;
        if (!parsePoint(*point, &p, &out.error))
            return out;
        req.point = p;
    } else if (req.type == RequestType::Batch) {
        const json::Value *space = root->get("space");
        if (!space || !space->isString() || space->string.empty()) {
            out.error = "batch request needs a non-empty 'space'";
            return out;
        }
        req.space = space->string;
    }

    out.request = std::move(req);
    return out;
}

std::string
responseHead(const std::string &id_json, const std::string &type)
{
    std::string head =
        "{\"schema_version\": " + std::to_string(kServeSchemaVersion);
    if (!id_json.empty())
        head += ", \"id\": " + id_json;
    head += ", \"type\": \"" + type + "\"";
    return head;
}

std::string
errorResponse(const std::string &id_json, const std::string &message)
{
    std::ostringstream oss;
    oss << responseHead(id_json, "error") << ", \"error\": ";
    json::writeString(oss, message);
    oss << "}";
    return oss.str();
}

std::string
codedErrorResponse(const std::string &id_json, const std::string &code,
                   const std::string &message)
{
    std::ostringstream oss;
    oss << responseHead(id_json, "error") << ", \"code\": ";
    json::writeString(oss, code);
    oss << ", \"error\": ";
    json::writeString(oss, message);
    oss << "}";
    return oss.str();
}

} // namespace mech::serve
