/**
 * @file
 * The mech_serve wire protocol: newline-delimited JSON requests and
 * responses (one object per line, UTF-8, schema-versioned).
 *
 * Request lines name what to evaluate; the service resolves names
 * against the live registries and answers with result lines in
 * request order.  Five request types:
 *
 *   eval      evaluate one design point ("point": a
 *             DesignPoint::toKey() string or an explicit-axes object)
 *             for a benchmark set, through one or more registered
 *             backends, reporting the named objectives;
 *   batch     fan out a whole SpaceSpec ("space": preset or axis
 *             grammar) and return its Pareto frontier;
 *   info      describe the server (benchmarks, backends, objectives,
 *             defaults);
 *   stats     report evaluation-traffic accounting (cache hit/miss
 *             counters, group and memo sizes);
 *   shutdown  drain pending requests, answer with a final "bye"
 *             accounting line, and stop the server.
 *
 * Parsing is total: any malformed line — truncated JSON, a missing
 * or unknown type, a bad point key — becomes a structured
 * `{"type": "error"}` response carrying the echoed request id when
 * one could be recovered.  The server never crashes or silently
 * drops a line on bad input.
 *
 * Responses are deterministic: same request stream, same
 * configuration => byte-identical response stream at any worker
 * count, except for the optional per-response "latency_us" field
 * (suppressed by mech_serve --deterministic).
 */

#ifndef MECH_SERVE_PROTOCOL_HH
#define MECH_SERVE_PROTOCOL_HH

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "dse/design_space.hh"

namespace mech::serve {

/** Current serve-protocol schema version. */
inline constexpr int kServeSchemaVersion = 1;

/** Request lines beyond this size are rejected with an error. */
inline constexpr std::size_t kMaxRequestBytes = 1 << 20;

/** The request types of the protocol. */
enum class RequestType { Eval, Batch, Info, Stats, Shutdown };

/** One parsed (but not yet name-resolved) client request. */
struct ServeRequest
{
    /**
     * The request's "id" re-serialized as JSON for echoing (a quoted
     * string or a number literal); empty when the request had none.
     */
    std::string idJson;

    RequestType type = RequestType::Eval;

    /** The design point of an eval request. */
    std::optional<DesignPoint> point;

    /** The space grammar/preset of a batch request. */
    std::string space;

    /** Benchmark names; empty means the server's default set. */
    std::vector<std::string> bench;

    /** Backend names; empty means the server's default set. */
    std::vector<std::string> backends;

    /** Objective names; empty means the server's default set. */
    std::vector<std::string> objectives;
};

/** Outcome of parsing one request line. */
struct ParseOutcome
{
    /** The parsed request; empty on failure. */
    std::optional<ServeRequest> request;

    /** Parse failure message ("" on success). */
    std::string error;

    /** Echo id recovered from the line, even when parsing failed. */
    std::string idJson;

    bool ok() const { return request.has_value(); }
};

/**
 * Parse one request line.  Never throws and never terminates: every
 * malformed input yields an ParseOutcome with a message suitable for
 * an error response.  Unknown top-level fields are tolerated (future
 * schema minors must stay speakable); unknown fields inside a
 * "point" axes object are errors, because a typoed axis silently
 * evaluating the default point would be a wrong answer.
 */
ParseOutcome parseRequest(const std::string &line);

/** Serialize an error response for @p id_json (may be empty). */
std::string errorResponse(const std::string &id_json,
                          const std::string &message);

/**
 * Machine-readable error code of an admission-control rejection.
 * Clients match on "code" (the human-readable "error" text may
 * change); any other error kind omits the field.
 */
inline constexpr const char *kOverloadedCode = "overloaded";

/**
 * Serialize an error response carrying a machine-readable "code"
 * field (e.g. kOverloadedCode for a shed request).
 */
std::string codedErrorResponse(const std::string &id_json,
                               const std::string &code,
                               const std::string &message);

/**
 * Start a response body: `{"schema_version": 1, "id": <id>,
 * "type": "<type>"` with the id omitted when @p id_json is empty.
 * Callers append further `, "k": v` fields and the closing brace.
 */
std::string responseHead(const std::string &id_json,
                         const std::string &type);

} // namespace mech::serve

#endif // MECH_SERVE_PROTOCOL_HH
