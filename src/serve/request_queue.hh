/**
 * @file
 * The request queue between a session's line reader and the
 * evaluation service.
 *
 * Pipelined clients write many request lines before reading any
 * response; the session parses each line as it arrives and pushes
 * the outcome here.  When the queue flushes — input would block, the
 * batch cap is reached, a control request arrives, or the stream
 * ends — the pending data-plane requests go to
 * EvalService::handleFlush() as one coalesced batch, and responses
 * come back in arrival order.
 *
 * Entries are either a parsed request or a pre-rendered error
 * response (a malformed line).  Keeping failed lines *in* the queue
 * is what preserves the ordering contract: response N always answers
 * line N, even when line N was garbage.
 *
 * Determinism note: flush boundaries depend on input timing (how
 * many lines were buffered when the reader drained), but the service
 * guarantees accounting and response bodies equal to strictly
 * sequential processing regardless of how requests are grouped into
 * flushes — so the observable stream is the same however the client
 * paces its writes.
 */

#ifndef MECH_SERVE_REQUEST_QUEUE_HH
#define MECH_SERVE_REQUEST_QUEUE_HH

#include <chrono>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "serve/protocol.hh"

namespace mech::serve {

/** One queued line: a parsed request or a ready error response. */
struct PendingLine
{
    /** The parsed request (valid only when error is empty). */
    ServeRequest request;

    /** Parse/validation failure for this line ("" = parsed fine). */
    std::string error;

    /** Echo id for error entries. */
    std::string idJson;

    /** Arrival time, for the response's latency accounting. */
    std::chrono::steady_clock::time_point received;

    bool ok() const { return error.empty(); }
};

/** Arrival-ordered queue of pending lines with a batch cap. */
class RequestQueue
{
  public:
    explicit RequestQueue(std::size_t max_batch)
        : maxBatch(max_batch ? max_batch : 1)
    {
    }

    bool empty() const { return entries.empty(); }
    std::size_t size() const { return entries.size(); }

    /** True when the queue has reached its coalescing cap. */
    bool full() const { return entries.size() >= maxBatch; }

    void push(PendingLine line) { entries.push_back(std::move(line)); }

    /** Drain every pending line, in arrival order. */
    std::vector<PendingLine>
    take()
    {
        std::vector<PendingLine> out;
        out.swap(entries);
        return out;
    }

  private:
    std::size_t maxBatch;
    std::vector<PendingLine> entries;
};

} // namespace mech::serve

#endif // MECH_SERVE_REQUEST_QUEUE_HH
