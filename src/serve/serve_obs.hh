/**
 * @file
 * The serve front end's observability instruments, shared by the
 * session loop (stdio), the epoll TCP server and the EvalService's
 * extended stats response.
 *
 * Everything here is strictly on the observability channel: response
 * *bodies* never contain these values unless a stats request asks
 * for them in timing mode, so deterministic-mode output stays
 * byte-identical whether or not the instruments are read.
 */

#ifndef MECH_SERVE_SERVE_OBS_HH
#define MECH_SERVE_SERVE_OBS_HH

#include <cstdint>
#include <string>

#include "obs/registry.hh"

namespace mech::serve {

/** Front-end instruments (process-wide, registered on first use). */
struct ServeObs
{
    /** Arrival-to-write latency by response type, microseconds. */
    obs::LatencyHistogram &latencyResult;
    obs::LatencyHistogram &latencyFrontier;
    obs::LatencyHistogram &latencyControl;
    obs::LatencyHistogram &latencyError;

    /** Admitted request lines not yet answered. */
    obs::Gauge &inflight;

    /** Open client connections (TCP front end). */
    obs::Gauge &connections;

    /** Payload bytes received from / sent to clients. */
    obs::Counter &bytesIn;
    obs::Counter &bytesOut;

    /** Requests answered with an "overloaded" shed error. */
    obs::Counter &shed;

    static ServeObs &
    get()
    {
        static ServeObs o{
            obs::MetricsRegistry::global().histogram(
                "serve.latency.result",
                "Eval request latency (arrival to response write), "
                "microseconds"),
            obs::MetricsRegistry::global().histogram(
                "serve.latency.frontier",
                "Batch request latency (arrival to response write), "
                "microseconds"),
            obs::MetricsRegistry::global().histogram(
                "serve.latency.control",
                "Control request (info/stats/shutdown) latency, "
                "microseconds"),
            obs::MetricsRegistry::global().histogram(
                "serve.latency.error",
                "Error response latency, microseconds"),
            obs::MetricsRegistry::global().gauge(
                "serve.inflight",
                "Admitted request lines not yet answered"),
            obs::MetricsRegistry::global().gauge(
                "serve.connections", "Open client connections"),
            obs::MetricsRegistry::global().counter(
                "serve.bytes_in", "Bytes received from clients"),
            obs::MetricsRegistry::global().counter(
                "serve.bytes_out", "Bytes sent to clients"),
            obs::MetricsRegistry::global().counter(
                "serve.shed",
                "Requests shed with an overloaded error"),
        };
        return o;
    }
};

/**
 * Record @p latency_us into the per-response-type histogram, sniffing
 * the type from the body's protocol head (the same cheap structural
 * check ResponseWriter uses for error accounting).
 */
inline void
recordResponseLatency(const std::string &body, double latency_us)
{
    const std::uint64_t us =
        latency_us <= 0.0 ? 0
                          : static_cast<std::uint64_t>(latency_us);
    ServeObs &o = ServeObs::get();
    static const char kTypeKey[] = "\"type\": \"";
    const std::size_t pos = body.find(kTypeKey);
    if (pos == std::string::npos) {
        o.latencyError.record(us);
        return;
    }
    const std::size_t start = pos + sizeof(kTypeKey) - 1;
    const std::size_t end = body.find('"', start);
    const std::string type = body.substr(start, end - start);
    if (type == "result")
        o.latencyResult.record(us);
    else if (type == "frontier")
        o.latencyFrontier.record(us);
    else if (type == "error")
        o.latencyError.record(us);
    else
        o.latencyControl.record(us);
}

} // namespace mech::serve

#endif // MECH_SERVE_SERVE_OBS_HH
