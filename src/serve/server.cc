#include "serve/server.hh"

#include <cerrno>
#include <cstring>
#include <istream>
#include <ostream>

#include <arpa/inet.h>
#include <csignal>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace mech::serve {

namespace {

/** Set by SIGINT/SIGTERM; checked between connections and reads. */
volatile std::sig_atomic_t g_terminate = 0;

void
onTerminate(int)
{
    g_terminate = 1;
}

void
installSignalHandlers()
{
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onTerminate;
    // No SA_RESTART: blocked accept()/recv() must return EINTR so
    // the loops can notice the flag and drain.
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
    // A client vanishing mid-response must be a write error, not a
    // process kill.
    std::signal(SIGPIPE, SIG_IGN);
}

/**
 * LineSource over a connected socket: an internal buffer split on
 * newlines, refilled with blocking recv().  Oversized lines are
 * truncated at the request cap and the excess discarded, so a
 * misbehaving client costs bounded memory.
 */
class FdLineSource : public LineSource
{
  public:
    explicit FdLineSource(int fd) : fd(fd) {}

    bool
    nextLine(std::string &line) override
    {
        line.clear();
        bool truncating = false;
        for (;;) {
            std::size_t nl = buffer.find('\n');
            if (nl != std::string::npos) {
                if (!truncating)
                    line.append(buffer, 0, nl);
                buffer.erase(0, nl + 1);
                return true;
            }
            // No newline buffered: bank what we have (or discard it,
            // once the line has blown the cap) and read more.
            if (!truncating) {
                line += buffer;
                if (line.size() > kMaxRequestBytes + 1) {
                    line.resize(kMaxRequestBytes + 1);
                    truncating = true;
                }
            }
            buffer.clear();
            char chunk[4096];
            ssize_t got;
            do {
                got = ::recv(fd, chunk, sizeof(chunk), 0);
            } while (got < 0 && errno == EINTR && !g_terminate);
            if (got <= 0)
                return !line.empty();
            buffer.append(chunk, static_cast<std::size_t>(got));
        }
    }

    bool
    moreBuffered() override
    {
        if (!buffer.empty())
            return true;
        struct pollfd pfd;
        pfd.fd = fd;
        pfd.events = POLLIN;
        pfd.revents = 0;
        return ::poll(&pfd, 1, 0) > 0 && (pfd.revents & POLLIN);
    }

  private:
    int fd;
    std::string buffer;
};

/** Minimal buffered ostream over a socket fd. */
class FdStreambuf : public std::streambuf
{
  public:
    explicit FdStreambuf(int fd) : fd(fd) {}

  protected:
    int
    overflow(int ch) override
    {
        if (ch != traits_type::eof()) {
            char c = static_cast<char>(ch);
            pending += c;
            if (c == '\n' || pending.size() >= 1 << 16)
                return sync() == 0 ? ch : traits_type::eof();
        }
        return ch;
    }

    std::streamsize
    xsputn(const char *s, std::streamsize n) override
    {
        pending.append(s, static_cast<std::size_t>(n));
        if (pending.size() >= 1 << 16)
            return sync() == 0 ? n : 0;
        return n;
    }

    int
    sync() override
    {
        std::size_t off = 0;
        while (off < pending.size()) {
            ssize_t put = ::send(fd, pending.data() + off,
                                 pending.size() - off, 0);
            if (put < 0) {
                if (errno == EINTR)
                    continue;
                pending.clear();
                return -1;
            }
            off += static_cast<std::size_t>(put);
        }
        pending.clear();
        return 0;
    }

  private:
    int fd;
    std::string pending;
};

} // namespace

SessionStats
runStdioServer(EvalService &service, std::istream &in,
               std::ostream &out, std::ostream &log,
               const SessionOptions &opts)
{
    IstreamLineSource source(in);
    ServerSession session(service, source, out, opts);
    SessionStats stats = session.run();
    const ServiceStats svc = service.stats();
    log << "mech_serve: session over: " << stats.lines
        << " request line(s), "
        << stats.responses << " response(s), " << stats.errors
        << " error(s); cache " << svc.hits << "/" << svc.requested
        << " hits\n";
    return stats;
}

int
runTcpServer(EvalService &service, unsigned short port,
             std::ostream &log, const SessionOptions &opts)
{
    installSignalHandlers();

    int listener = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listener < 0) {
        log << "mech_serve: socket(): " << std::strerror(errno)
            << "\n";
        return 1;
    }
    int one = 1;
    ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(listener, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0 ||
        ::listen(listener, 4) < 0) {
        log << "mech_serve: cannot listen on 127.0.0.1:" << port
            << ": " << std::strerror(errno) << "\n";
        ::close(listener);
        return 1;
    }
    log << "mech_serve: listening on 127.0.0.1:" << port << "\n";

    bool drained = false;
    while (!g_terminate && !drained) {
        int client = ::accept(listener, nullptr, nullptr);
        if (client < 0) {
            if (errno == EINTR)
                continue; // signal: loop re-checks g_terminate
            log << "mech_serve: accept(): " << std::strerror(errno)
                << "\n";
            break;
        }
        log << "mech_serve: client connected\n";
        {
            FdLineSource source(client);
            FdStreambuf buf(client);
            std::ostream out(&buf);
            ServerSession session(service, source, out, opts);
            SessionStats stats = session.run();
            out.flush();
            drained = stats.shutdownRequested;
            log << "mech_serve: client disconnected ("
                << stats.responses << " response(s))\n";
        }
        ::shutdown(client, SHUT_RDWR);
        ::close(client);
    }
    ::close(listener);

    const ServiceStats svc = service.stats();
    log << "mech_serve: " << (drained ? "drained" : "terminated")
        << "; cache " << svc.hits << "/" << svc.requested
        << " hits across " << svc.groups << " group(s)\n";
    return 0;
}

} // namespace mech::serve
