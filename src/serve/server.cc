#include "serve/server.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <istream>
#include <map>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <csignal>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/json.hh"
#include "common/logging.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "serve/admission.hh"
#include "serve/serve_obs.hh"

namespace mech::serve {

namespace {

/** Set by SIGINT/SIGTERM; polled by the epoll loop between waits. */
volatile std::sig_atomic_t g_terminate = 0;

void
onTerminate(int)
{
    g_terminate = 1;
}

void
installSignalHandlers()
{
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onTerminate;
    // No SA_RESTART: a blocked epoll_wait() must return EINTR so the
    // loop can notice the flag and drain.
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
    // A client vanishing mid-response must be a write error, not a
    // process kill.
    std::signal(SIGPIPE, SIG_IGN);
}

double
microsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start)
        .count();
}

bool
isBlank(const std::string &line)
{
    for (char c : line) {
        if (c != ' ' && c != '\t' && c != '\r')
            return false;
    }
    return true;
}

/** One response line, formatted exactly as ResponseWriter writes it. */
std::string
responseLine(const std::string &body, bool latency_fields,
             double latency_us)
{
    if (!latency_fields)
        return body + "\n";
    std::ostringstream os;
    os.write(body.data(),
             static_cast<std::streamsize>(body.size() - 1));
    os << ", \"latency_us\": ";
    json::writeNumber(os, latency_us);
    os << "}\n";
    return os.str();
}

/** epoll tags below this are the listener / wake eventfd. */
constexpr std::uint64_t kListenerTag = 0;
constexpr std::uint64_t kWakeTag = 1;
constexpr std::uint64_t kFirstConnTag = 2;

/** High-bit namespace for the metrics endpoint's epoll tags: the
 *  metrics listener is the bare bit, accepted metrics connections
 *  are bit | id.  NDJSON session ids never reach 2^63. */
constexpr std::uint64_t kMetricsTagBit = std::uint64_t{1} << 63;
constexpr std::uint64_t kMetricsListenerTag = kMetricsTagBit;

} // namespace

SessionStats
runStdioServer(EvalService &service, std::istream &in,
               std::ostream &out, std::ostream &log,
               const SessionOptions &opts)
{
    IstreamLineSource source(in);
    ServerSession session(service, source, out, opts);
    SessionStats stats = session.run();
    const ServiceStats svc = service.stats();
    log << "mech_serve: session over: " << stats.lines
        << " request line(s), "
        << stats.responses << " response(s), " << stats.errors
        << " error(s); cache " << svc.hits << "/" << svc.requested
        << " hits\n";
    return stats;
}

struct TcpServer::Impl
{
    Impl(EvalService &service_in, TcpServerConfig cfg_in,
         std::ostream &log_in, SessionOptions opts_in)
        : service(service_in), cfg(cfg_in), log(log_in),
          opts(opts_in),
          queue(AdmissionConfig{cfg_in.maxQueue, cfg_in.maxInflight,
                                opts_in.maxBatch})
    {
    }

    /** One accepted connection.  Input state (raw/line/truncating and
     *  the eof/broken flags) belongs to the I/O thread alone; outbuf,
     *  busy and the response counters are shared with the dispatchers
     *  and guarded by connMtx. */
    struct Conn
    {
        int fd = -1;
        std::uint64_t sid = 0;

        std::string raw;  ///< received bytes not yet split on '\n'
        std::string line; ///< the partial line being accumulated
        bool truncating = false;
        bool peerEof = false;
        bool broken = false;
        bool wantWrite = false;
        std::uint64_t linesRead = 0;

        std::string outbuf;
        std::size_t busy = 0; ///< admitted lines not yet answered
        std::uint64_t responses = 0;
        std::uint64_t errors = 0;
    };

    EvalService &service;
    TcpServerConfig cfg;
    std::ostream &log;
    SessionOptions opts;
    AdmissionQueue queue;

    /** One connection to the metrics endpoint (I/O thread only).
     *  HTTP/1.0: read one request, write one response, close. */
    struct MetricsConn
    {
        int fd = -1;
        std::uint64_t tag = 0;
        std::string inbuf;
        std::string outbuf;
        bool responded = false;
        bool wantWrite = false;
    };

    int epfd = -1;
    int listener = -1;
    int wakeFd = -1;
    unsigned short boundPort = 0;

    int metricsListener = -1;
    unsigned short metricsBoundPort = 0;
    std::map<std::uint64_t, MetricsConn> metricsConns;
    std::uint64_t nextMetricsId = 1;

    std::thread io;
    std::vector<std::thread> dispatchers;

    std::atomic<bool> stopRequested{false};
    std::atomic<bool> drainAsked{false};
    std::atomic<bool> shutdownSeen{false};
    bool draining = false; // I/O thread only

    std::mutex connMtx;
    std::map<std::uint64_t, std::unique_ptr<Conn>> conns;
    std::vector<std::uint64_t> writeReady;
    std::uint64_t nextSid = kFirstConnTag;

    bool start(std::string *error);
    void ioLoop();
    void dispatchLoop();
    void processBatch(const AdmissionQueue::Batch &batch);
    void deliver(std::uint64_t sid, std::string bytes,
                 std::size_t consumed, std::uint64_t responses,
                 std::uint64_t errors);
    void wake();

    void acceptClients();
    void acceptMetricsClients();
    void handleMetricsConn(std::uint64_t tag, std::uint32_t events);
    void closeMetricsConn(std::uint64_t tag);
    std::string metricsHttpResponse(const std::string &request) const;
    void readConn(Conn &conn);
    void discardInput(Conn &conn);
    void ingestLine(Conn &conn);
    void shedLine(Conn &conn, QueuedLine line);
    bool flushConn(Conn &conn);
    void setWantWrite(Conn &conn, bool want);
    void closeConn(std::uint64_t sid);
    void beginDrain();
    void sweepConns();
    void drainWriteReady();
};

bool
TcpServer::Impl::start(std::string *error)
{
    auto fail = [&](const char *what) {
        *error = std::string(what) + ": " + std::strerror(errno);
        if (listener >= 0)
            ::close(listener);
        if (metricsListener >= 0)
            ::close(metricsListener);
        if (wakeFd >= 0)
            ::close(wakeFd);
        if (epfd >= 0)
            ::close(epfd);
        listener = metricsListener = wakeFd = epfd = -1;
        return false;
    };

    // Register the front end's instruments up front: a scrape that
    // arrives before any traffic must still see every series.
    ServeObs::get();

    listener = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (listener < 0)
        return fail("socket()");
    int one = 1;
    ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(cfg.port);
    if (::bind(listener, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0) {
        return fail("bind()");
    }
    if (::listen(listener, 128) < 0)
        return fail("listen()");

    socklen_t len = sizeof(addr);
    if (::getsockname(listener, reinterpret_cast<sockaddr *>(&addr),
                      &len) < 0) {
        return fail("getsockname()");
    }
    boundPort = ntohs(addr.sin_port);

    if (cfg.metricsPort >= 0) {
        metricsListener =
            ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
        if (metricsListener < 0)
            return fail("socket(metrics)");
        ::setsockopt(metricsListener, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in maddr;
        std::memset(&maddr, 0, sizeof(maddr));
        maddr.sin_family = AF_INET;
        maddr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        maddr.sin_port =
            htons(static_cast<unsigned short>(cfg.metricsPort));
        if (::bind(metricsListener,
                   reinterpret_cast<sockaddr *>(&maddr),
                   sizeof(maddr)) < 0) {
            return fail("bind(metrics)");
        }
        if (::listen(metricsListener, 16) < 0)
            return fail("listen(metrics)");
        socklen_t mlen = sizeof(maddr);
        if (::getsockname(metricsListener,
                          reinterpret_cast<sockaddr *>(&maddr),
                          &mlen) < 0) {
            return fail("getsockname(metrics)");
        }
        metricsBoundPort = ntohs(maddr.sin_port);
    }

    wakeFd = ::eventfd(0, EFD_NONBLOCK);
    if (wakeFd < 0)
        return fail("eventfd()");
    epfd = ::epoll_create1(0);
    if (epfd < 0)
        return fail("epoll_create1()");

    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.u64 = kListenerTag;
    if (::epoll_ctl(epfd, EPOLL_CTL_ADD, listener, &ev) < 0)
        return fail("epoll_ctl(listener)");
    ev.data.u64 = kWakeTag;
    if (::epoll_ctl(epfd, EPOLL_CTL_ADD, wakeFd, &ev) < 0)
        return fail("epoll_ctl(eventfd)");
    if (metricsListener >= 0) {
        ev.data.u64 = kMetricsListenerTag;
        if (::epoll_ctl(epfd, EPOLL_CTL_ADD, metricsListener, &ev) < 0)
            return fail("epoll_ctl(metrics)");
    }

    if (cfg.dispatchHoldMs > 0)
        queue.holdDispatch(true);

    // Logged before the threads spawn: the I/O thread owns the log
    // stream from here until wait() joins it.
    log << "mech_serve: listening on 127.0.0.1:" << boundPort << " ("
        << cfg.dispatchers << " dispatcher(s), queue " << cfg.maxQueue
        << ", per-session " << cfg.maxInflight << ")\n";
    if (metricsListener >= 0) {
        log << "mech_serve: metrics on http://127.0.0.1:"
            << metricsBoundPort << "/metrics\n";
    }

    io = std::thread([this] { ioLoop(); });
    for (unsigned i = 0; i < cfg.dispatchers; ++i)
        dispatchers.emplace_back([this] { dispatchLoop(); });
    return true;
}

void
TcpServer::Impl::wake()
{
    std::uint64_t one = 1;
    ssize_t ignored [[maybe_unused]] =
        ::write(wakeFd, &one, sizeof(one));
}

void
TcpServer::Impl::setWantWrite(Conn &conn, bool want)
{
    if (conn.wantWrite == want)
        return;
    conn.wantWrite = want;
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
    ev.data.u64 = conn.sid;
    ::epoll_ctl(epfd, EPOLL_CTL_MOD, conn.fd, &ev);
}

bool
TcpServer::Impl::flushConn(Conn &conn)
{
    // Runs on the I/O thread; connMtx held by the caller.
    while (!conn.outbuf.empty()) {
        ssize_t put = ::send(conn.fd, conn.outbuf.data(),
                             conn.outbuf.size(), 0);
        if (put < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                setWantWrite(conn, true);
                return true;
            }
            conn.broken = true;
            return false;
        }
        ServeObs::get().bytesOut.inc(static_cast<std::uint64_t>(put));
        conn.outbuf.erase(0, static_cast<std::size_t>(put));
    }
    setWantWrite(conn, false);
    return true;
}

void
TcpServer::Impl::acceptClients()
{
    for (;;) {
        int client =
            ::accept4(listener, nullptr, nullptr, SOCK_NONBLOCK);
        if (client < 0) {
            if (errno == EINTR)
                continue;
            return; // EAGAIN: accepted everything pending
        }
        auto conn = std::make_unique<Conn>();
        conn->fd = client;
        conn->sid = nextSid++;
        queue.addSession(conn->sid);

        epoll_event ev;
        std::memset(&ev, 0, sizeof(ev));
        ev.events = EPOLLIN;
        ev.data.u64 = conn->sid;
        if (::epoll_ctl(epfd, EPOLL_CTL_ADD, client, &ev) < 0) {
            queue.removeSession(conn->sid);
            ::close(client);
            continue;
        }
        ServeObs::get().connections.add(1);
        MECH_LOG(Debug)
            << "mech_serve: client connected (session " << conn->sid
            << ")";
        std::lock_guard<std::mutex> lock(connMtx);
        conns.emplace(conn->sid, std::move(conn));
    }
}

void
TcpServer::Impl::acceptMetricsClients()
{
    for (;;) {
        int client = ::accept4(metricsListener, nullptr, nullptr,
                               SOCK_NONBLOCK);
        if (client < 0) {
            if (errno == EINTR)
                continue;
            return; // EAGAIN: accepted everything pending
        }
        MetricsConn conn;
        conn.fd = client;
        conn.tag = kMetricsTagBit | nextMetricsId++;

        epoll_event ev;
        std::memset(&ev, 0, sizeof(ev));
        ev.events = EPOLLIN;
        ev.data.u64 = conn.tag;
        if (::epoll_ctl(epfd, EPOLL_CTL_ADD, client, &ev) < 0) {
            ::close(client);
            continue;
        }
        metricsConns.emplace(conn.tag, conn);
    }
}

std::string
TcpServer::Impl::metricsHttpResponse(const std::string &request) const
{
    // A deliberately tiny HTTP/1.0 server: one GET, one response,
    // close.  Anything that is not "GET /metrics" gets a 404.
    const std::size_t eol = request.find_first_of("\r\n");
    const std::string head = request.substr(
        0, eol == std::string::npos ? request.size() : eol);
    std::string path;
    if (head.compare(0, 4, "GET ") == 0) {
        const std::size_t sp = head.find(' ', 4);
        path = head.substr(4, sp == std::string::npos ? std::string::npos
                                                      : sp - 4);
    }

    std::string body;
    const char *status;
    const char *contentType;
    if (path == "/metrics") {
        std::ostringstream os;
        obs::MetricsRegistry::global().renderPrometheus(os);
        body = os.str();
        status = "200 OK";
        contentType = "text/plain; version=0.0.4; charset=utf-8";
    } else {
        body = "not found: only GET /metrics is served\n";
        status = "404 Not Found";
        contentType = "text/plain; charset=utf-8";
    }

    std::ostringstream resp;
    resp << "HTTP/1.0 " << status << "\r\n"
         << "Content-Type: " << contentType << "\r\n"
         << "Content-Length: " << body.size() << "\r\n"
         << "Connection: close\r\n\r\n"
         << body;
    return resp.str();
}

void
TcpServer::Impl::handleMetricsConn(std::uint64_t tag,
                                   std::uint32_t events)
{
    auto it = metricsConns.find(tag);
    if (it == metricsConns.end())
        return;
    MetricsConn &conn = it->second;

    if (events & (EPOLLERR | EPOLLHUP)) {
        closeMetricsConn(tag);
        return;
    }
    if (!conn.responded && (events & EPOLLIN)) {
        char chunk[4096];
        bool eof = false;
        for (;;) {
            ssize_t got = ::recv(conn.fd, chunk, sizeof(chunk), 0);
            if (got < 0) {
                if (errno == EINTR)
                    continue;
                if (errno != EAGAIN && errno != EWOULDBLOCK) {
                    closeMetricsConn(tag);
                    return;
                }
                break;
            }
            if (got == 0) {
                eof = true;
                break;
            }
            conn.inbuf.append(chunk, static_cast<std::size_t>(got));
            if (conn.inbuf.size() > (1u << 16)) {
                closeMetricsConn(tag); // no legitimate scrape is 64K
                return;
            }
        }
        const bool complete =
            conn.inbuf.find("\r\n\r\n") != std::string::npos ||
            conn.inbuf.find("\n\n") != std::string::npos || eof;
        if (complete) {
            conn.outbuf = metricsHttpResponse(conn.inbuf);
            conn.responded = true;
        }
    }
    if (!conn.responded)
        return;
    while (!conn.outbuf.empty()) {
        ssize_t put = ::send(conn.fd, conn.outbuf.data(),
                             conn.outbuf.size(), 0);
        if (put < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                if (!conn.wantWrite) {
                    conn.wantWrite = true;
                    epoll_event ev;
                    std::memset(&ev, 0, sizeof(ev));
                    ev.events = EPOLLIN | EPOLLOUT;
                    ev.data.u64 = conn.tag;
                    ::epoll_ctl(epfd, EPOLL_CTL_MOD, conn.fd, &ev);
                }
                return;
            }
            closeMetricsConn(tag);
            return;
        }
        conn.outbuf.erase(0, static_cast<std::size_t>(put));
    }
    closeMetricsConn(tag); // response fully written: HTTP/1.0 close
}

void
TcpServer::Impl::closeMetricsConn(std::uint64_t tag)
{
    auto it = metricsConns.find(tag);
    if (it == metricsConns.end())
        return;
    ::epoll_ctl(epfd, EPOLL_CTL_DEL, it->second.fd, nullptr);
    ::close(it->second.fd);
    metricsConns.erase(it);
}

void
TcpServer::Impl::shedLine(Conn &conn, QueuedLine line)
{
    // The queue refused the line (the caller already counted it in
    // conn.busy).  Control requests must still get through (a monitor
    // reading stats from an overloaded server, a shutdown) — parsing
    // only happens on this slow path.
    ParseOutcome outcome = parseRequest(line.line);
    if (outcome.ok() &&
        (outcome.request->type == RequestType::Info ||
         outcome.request->type == RequestType::Stats ||
         outcome.request->type == RequestType::Shutdown) &&
        queue.force(conn.sid, QueuedLine{line})) {
        return; // admitted after all: stays in flight
    }
    const std::string body = codedErrorResponse(
        outcome.idJson, kOverloadedCode,
        "server overloaded: admission queue is full, retry later");
    service.noteShedRequests(1);
    ServeObs &sobs = ServeObs::get();
    sobs.shed.inc();
    sobs.inflight.sub(1);
    {
        MECH_LOG_RATELIMITED(Warn, 1000)
            << "mech_serve: shedding requests: admission queue full "
               "(session "
            << conn.sid << ")";
    }
    std::lock_guard<std::mutex> lock(connMtx);
    --conn.busy;
    conn.outbuf += responseLine(body, opts.latencyFields,
                                microsSince(line.received));
    ++conn.responses;
    ++conn.errors;
    flushConn(conn);
}

void
TcpServer::Impl::ingestLine(Conn &conn)
{
    std::string line = std::move(conn.line);
    conn.line.clear();
    const bool truncated = conn.truncating;
    conn.truncating = false;
    if (!truncated && isBlank(line))
        return;
    ++conn.linesRead;
    QueuedLine queued{std::move(line),
                      std::chrono::steady_clock::now()};
    // Count the line as in flight BEFORE the queue can hand it to a
    // dispatcher: deliver() may decrement conn.busy the instant
    // offer() succeeds, and an increment racing in afterwards would
    // strand the connection at busy > 0 — unreapable, wedging the
    // drain.  A refused line stays counted until shedLine() settles
    // whether it was force-admitted or answered with an error.
    {
        std::lock_guard<std::mutex> lock(connMtx);
        ++conn.busy;
    }
    ServeObs::get().inflight.add(1);
    if (queue.offer(conn.sid, queued))
        return;
    shedLine(conn, std::move(queued));
}

void
TcpServer::Impl::readConn(Conn &conn)
{
    char chunk[1 << 16];
    for (;;) {
        ssize_t got = ::recv(conn.fd, chunk, sizeof(chunk), 0);
        if (got < 0) {
            if (errno == EINTR)
                continue;
            if (errno != EAGAIN && errno != EWOULDBLOCK)
                conn.broken = true;
            return;
        }
        if (got == 0) {
            conn.peerEof = true;
            // A final unterminated line still counts (mirroring the
            // blocking reader's EOF behaviour).
            if (!conn.raw.empty() || !conn.line.empty()) {
                if (!conn.truncating)
                    conn.line += conn.raw;
                conn.raw.clear();
                ingestLine(conn);
            }
            return;
        }
        ServeObs::get().bytesIn.inc(static_cast<std::uint64_t>(got));
        conn.raw.append(chunk, static_cast<std::size_t>(got));
        for (;;) {
            const std::size_t nl = conn.raw.find('\n');
            if (nl == std::string::npos) {
                if (!conn.truncating) {
                    conn.line += conn.raw;
                    if (conn.line.size() > kMaxRequestBytes + 1) {
                        // Keep the cap plus a sentinel byte so the
                        // dispatcher reports the overflow; discard
                        // the rest of the physical line.
                        conn.line.resize(kMaxRequestBytes + 1);
                        conn.truncating = true;
                    }
                }
                conn.raw.clear();
                break;
            }
            if (!conn.truncating)
                conn.line.append(conn.raw, 0, nl);
            conn.raw.erase(0, nl + 1);
            ingestLine(conn);
        }
    }
}

void
TcpServer::Impl::discardInput(Conn &conn)
{
    // During drain the server answers what it admitted and nothing
    // more; unread input is consumed and dropped so level-triggered
    // polling does not spin on it.
    char chunk[1 << 16];
    for (;;) {
        ssize_t got = ::recv(conn.fd, chunk, sizeof(chunk), 0);
        if (got < 0) {
            if (errno == EINTR)
                continue;
            if (errno != EAGAIN && errno != EWOULDBLOCK)
                conn.broken = true;
            return;
        }
        if (got == 0) {
            conn.peerEof = true;
            return;
        }
    }
}

void
TcpServer::Impl::closeConn(std::uint64_t sid)
{
    std::unique_ptr<Conn> conn;
    {
        std::lock_guard<std::mutex> lock(connMtx);
        auto it = conns.find(sid);
        if (it == conns.end())
            return;
        conn = std::move(it->second);
        conns.erase(it);
    }
    queue.removeSession(sid);
    ::epoll_ctl(epfd, EPOLL_CTL_DEL, conn->fd, nullptr);
    ::shutdown(conn->fd, SHUT_RDWR);
    ::close(conn->fd);
    ServeObs &sobs = ServeObs::get();
    sobs.connections.sub(1);
    // Lines the session still had in flight will never be answered:
    // settle the gauge so a mid-batch disconnect cannot leak it.
    if (conn->busy > 0)
        sobs.inflight.sub(static_cast<std::int64_t>(conn->busy));
    MECH_LOG(Debug)
        << "mech_serve: client disconnected (session " << sid << ", "
        << conn->responses << " response(s))";
}

void
TcpServer::Impl::beginDrain()
{
    if (draining)
        return;
    draining = true;
    if (listener >= 0) {
        ::epoll_ctl(epfd, EPOLL_CTL_DEL, listener, nullptr);
        ::close(listener);
        listener = -1;
    }
    if (metricsListener >= 0) {
        ::epoll_ctl(epfd, EPOLL_CTL_DEL, metricsListener, nullptr);
        ::close(metricsListener);
        metricsListener = -1;
    }
    while (!metricsConns.empty())
        closeMetricsConn(metricsConns.begin()->first);
    queue.stop();
}

void
TcpServer::Impl::sweepConns()
{
    // Close connections with nothing left to do: the peer is done
    // (or the server is draining), every admitted line has been
    // answered, and the answers have left the write buffer.
    std::vector<std::uint64_t> done;
    {
        std::lock_guard<std::mutex> lock(connMtx);
        for (auto &[sid, conn] : conns) {
            if (conn->broken ||
                ((conn->peerEof || draining) && conn->busy == 0 &&
                 conn->outbuf.empty())) {
                done.push_back(sid);
            }
        }
    }
    for (std::uint64_t sid : done)
        closeConn(sid);
}

void
TcpServer::Impl::drainWriteReady()
{
    std::lock_guard<std::mutex> lock(connMtx);
    std::vector<std::uint64_t> ready;
    ready.swap(writeReady);
    for (std::uint64_t sid : ready) {
        auto it = conns.find(sid);
        if (it != conns.end())
            flushConn(*it->second);
    }
}

void
TcpServer::Impl::ioLoop()
{
    using clock = std::chrono::steady_clock;
    bool holdActive = cfg.dispatchHoldMs > 0;
    bool holdStarted = false;
    clock::time_point holdStart;

    epoll_event events[64];
    for (;;) {
        int timeoutMs = 200;
        if (holdActive && holdStarted) {
            const auto left =
                std::chrono::milliseconds(cfg.dispatchHoldMs) -
                (clock::now() - holdStart);
            const int leftMs = static_cast<int>(
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    left)
                    .count());
            timeoutMs = std::max(0, std::min(timeoutMs, leftMs));
        }
        const int n = ::epoll_wait(epfd, events, 64, timeoutMs);
        if (n < 0 && errno != EINTR)
            break;

        if (!draining &&
            (g_terminate || stopRequested.load() ||
             drainAsked.load())) {
            beginDrain();
        }
        if (holdActive && holdStarted &&
            clock::now() - holdStart >=
                std::chrono::milliseconds(cfg.dispatchHoldMs)) {
            holdActive = false;
            queue.holdDispatch(false);
        }

        for (int i = 0; i < std::max(n, 0); ++i) {
            const std::uint64_t tag = events[i].data.u64;
            if (tag == kListenerTag) {
                if (!draining)
                    acceptClients();
                if (holdActive && !holdStarted) {
                    holdStarted = true;
                    holdStart = clock::now();
                }
                continue;
            }
            if (tag == kWakeTag) {
                std::uint64_t count;
                while (::read(wakeFd, &count, sizeof(count)) > 0) {
                }
                continue;
            }
            if (tag == kMetricsListenerTag) {
                if (!draining && metricsListener >= 0)
                    acceptMetricsClients();
                continue;
            }
            if (tag & kMetricsTagBit) {
                handleMetricsConn(tag, events[i].events);
                continue;
            }
            Conn *conn = nullptr;
            {
                std::lock_guard<std::mutex> lock(connMtx);
                auto it = conns.find(tag);
                if (it != conns.end())
                    conn = it->second.get();
            }
            if (!conn)
                continue;
            // The I/O thread is the only closer, so the pointer stays
            // valid past the lock; input state is thread-private and
            // flushConn retakes the lock for the shared half.
            if (events[i].events & (EPOLLERR | EPOLLHUP))
                conn->broken = true;
            if (!conn->broken && (events[i].events & EPOLLIN)) {
                if (draining)
                    discardInput(*conn);
                else
                    readConn(*conn);
            }
            if (!conn->broken && (events[i].events & EPOLLOUT)) {
                std::lock_guard<std::mutex> lock(connMtx);
                flushConn(*conn);
            }
        }

        drainWriteReady();
        sweepConns();

        if (draining) {
            std::lock_guard<std::mutex> lock(connMtx);
            if (conns.empty() && queue.pending() == 0)
                break;
        }
    }
}

void
TcpServer::Impl::deliver(std::uint64_t sid, std::string bytes,
                         std::size_t consumed,
                         std::uint64_t responses, std::uint64_t errors)
{
    obs::TraceSpan span("request.flush", "serve");
    std::size_t settled = 0;
    {
        std::lock_guard<std::mutex> lock(connMtx);
        auto it = conns.find(sid);
        if (it == conns.end())
            return; // session disconnected mid-batch
        Conn &conn = *it->second;
        conn.outbuf += bytes;
        settled = std::min(conn.busy, consumed);
        conn.busy -= settled;
        conn.responses += responses;
        conn.errors += errors;
        writeReady.push_back(sid);
    }
    if (settled > 0)
        ServeObs::get().inflight.sub(
            static_cast<std::int64_t>(settled));
    wake();
}

void
TcpServer::Impl::processBatch(const AdmissionQueue::Batch &batch)
{
    // The dispatcher-side mirror of ServerSession::run(): parse,
    // coalesce data requests, answer control requests on drained
    // state, and emit one response line per request in order.
    if (obs::TraceRecorder *rec = obs::TraceRecorder::current();
        rec && !batch.lines.empty()) {
        // Retrospective span: the time this batch's oldest line spent
        // queued before a dispatcher picked it up.
        const auto received = batch.lines.front().received;
        const double waited =
            std::max(0.0, microsSince(received));
        rec->complete("request.admit", "serve", rec->tsOf(received),
                      static_cast<std::uint64_t>(waited));
    }
    obs::TraceSpan dispatchSpan("request.dispatch", "serve");

    std::ostringstream out;
    ResponseWriter writer(out, opts.latencyFields);
    std::vector<PendingLine> pendingBatch;

    auto flushPending = [&] {
        if (pendingBatch.empty())
            return;
        std::vector<ServeRequest> requests;
        requests.reserve(pendingBatch.size());
        for (const PendingLine &line : pendingBatch) {
            if (line.ok())
                requests.push_back(line.request);
        }
        std::vector<std::string> bodies =
            service.handleFlush(requests);
        obs::TraceSpan serializeSpan("request.serialize", "serve");
        std::size_t next = 0;
        for (const PendingLine &line : pendingBatch) {
            const std::string body =
                line.ok() ? bodies[next++]
                          : errorResponse(line.idJson, line.error);
            writer.write(body, microsSince(line.received));
        }
        pendingBatch.clear();
    };

    bool sawShutdown = false;
    for (const QueuedLine &queued : batch.lines) {
        PendingLine pending;
        pending.received = queued.received;
        if (queued.line.size() > kMaxRequestBytes) {
            pending.error = "request line exceeds " +
                            std::to_string(kMaxRequestBytes) +
                            " bytes";
        } else {
            ParseOutcome outcome = [&] {
                obs::TraceSpan parseSpan("request.parse", "serve");
                return parseRequest(queued.line);
            }();
            pending.idJson = outcome.idJson;
            if (!outcome.ok()) {
                pending.error = outcome.error;
            } else if (outcome.request->type == RequestType::Info ||
                       outcome.request->type == RequestType::Stats ||
                       outcome.request->type ==
                           RequestType::Shutdown) {
                flushPending();
                const ServeRequest &req = *outcome.request;
                std::string body =
                    req.type == RequestType::Info
                        ? service.infoResponse(req.idJson)
                        : service.statsResponse(req.idJson, req.type,
                                                opts.latencyFields);
                writer.write(body, microsSince(pending.received));
                if (req.type == RequestType::Shutdown) {
                    sawShutdown = true;
                    break;
                }
                continue;
            } else {
                pending.request = *outcome.request;
            }
        }
        pendingBatch.push_back(std::move(pending));
    }
    flushPending();

    deliver(batch.sid, out.str(), batch.lines.size(),
            writer.written(), writer.errorsWritten());
    if (sawShutdown) {
        shutdownSeen.store(true);
        drainAsked.store(true);
        wake();
    }
}

void
TcpServer::Impl::dispatchLoop()
{
    AdmissionQueue::Batch batch;
    while (queue.nextBatch(&batch)) {
        processBatch(batch);
        queue.completed(batch.sid);
    }
}

TcpServer::TcpServer(EvalService &service, TcpServerConfig cfg,
                     std::ostream &log, SessionOptions opts)
    : impl(std::make_unique<Impl>(service, cfg, log, opts))
{
}

TcpServer::~TcpServer()
{
    if (impl->io.joinable()) {
        requestStop();
        wait();
    }
}

bool
TcpServer::start(std::string *error)
{
    return impl->start(error);
}

unsigned short
TcpServer::port() const
{
    return impl->boundPort;
}

unsigned short
TcpServer::metricsPort() const
{
    return impl->metricsBoundPort;
}

void
TcpServer::requestStop()
{
    impl->stopRequested.store(true);
    if (impl->wakeFd >= 0)
        impl->wake();
}

void
TcpServer::wait()
{
    if (impl->io.joinable())
        impl->io.join();
    // The I/O loop has fully drained: stop the queue (idempotent) and
    // collect the dispatchers.
    impl->queue.stop();
    for (std::thread &t : impl->dispatchers) {
        if (t.joinable())
            t.join();
    }
    if (impl->epfd >= 0) {
        ::close(impl->epfd);
        impl->epfd = -1;
    }
    if (impl->wakeFd >= 0) {
        ::close(impl->wakeFd);
        impl->wakeFd = -1;
    }
    if (impl->listener >= 0) {
        ::close(impl->listener);
        impl->listener = -1;
    }
    if (impl->metricsListener >= 0) {
        ::close(impl->metricsListener);
        impl->metricsListener = -1;
    }
}

bool
TcpServer::drainedByShutdown() const
{
    return impl->shutdownSeen.load();
}

int
runTcpServer(EvalService &service, const TcpServerConfig &cfg,
             std::ostream &log, const SessionOptions &opts)
{
    installSignalHandlers();

    TcpServer server(service, cfg, log, opts);
    std::string error;
    if (!server.start(&error)) {
        log << "mech_serve: " << error << "\n";
        return 1;
    }
    server.wait();

    const ServiceStats svc = service.stats();
    log << "mech_serve: "
        << (server.drainedByShutdown() ? "drained" : "terminated")
        << "; cache " << svc.hits << "/" << svc.requested
        << " hits across " << svc.groups << " group(s)\n";
    return 0;
}

} // namespace mech::serve
