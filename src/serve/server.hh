/**
 * @file
 * mech_serve front ends: the stdio loop and a concurrent epoll TCP
 * server (no event-loop library, no new dependencies).
 *
 * Stdio mode serves one session over stdin/stdout — the mode CI
 * smokes and scripts pipe request files through.
 *
 * TCP mode is a production-shaped front end for hundreds of
 * concurrent sessions: one epoll I/O thread owns the listener and
 * every connection (nonblocking reads into per-connection line
 * buffers, buffered writes with EPOLLOUT backpressure), and a small
 * dispatcher pool pulls admitted line batches from an AdmissionQueue
 * and answers them through the shared EvalService.  At most one batch
 * per session is in flight at a time, so each session's responses
 * stay in its own request order and the per-session byte-identity
 * contract holds at any thread or dispatcher count.  Requests beyond
 * the admission bounds are shed with structured
 * `{"type": "error", "code": "overloaded"}` responses; control
 * requests (info/stats/shutdown) are never shed.
 *
 * Graceful drain: a client "shutdown" request answers its final "bye"
 * accounting line, then the server stops accepting, the dispatchers
 * finish every admitted request, write buffers flush, and the process
 * exits.  SIGINT/SIGTERM take the same path, so an operator's Ctrl-C
 * never kills a request mid-evaluation.
 */

#ifndef MECH_SERVE_SERVER_HH
#define MECH_SERVE_SERVER_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "serve/session.hh"

namespace mech::serve {

/** TCP front-end knobs (see mech_serve --help for the flags). */
struct TcpServerConfig
{
    /** Port to bind on 127.0.0.1; 0 picks an ephemeral port. */
    unsigned short port = 0;

    /** Dispatcher threads pulling batches off the admission queue. */
    unsigned dispatchers = 1;

    /** Global bound on queued request lines (admission control). */
    std::size_t maxQueue = 1024;

    /** Per-session bound on queued request lines. */
    std::size_t maxInflight = 256;

    /**
     * Testing knob: freeze dispatch for this many milliseconds after
     * the first connection, so overload goldens shed against a frozen
     * queue deterministically.  0 disables.
     */
    unsigned dispatchHoldMs = 0;

    /**
     * Port for the plaintext HTTP/1.0 metrics endpoint (GET /metrics
     * answers Prometheus text exposition), served by the same epoll
     * loop on 127.0.0.1.  -1 disables; 0 picks an ephemeral port
     * (see TcpServer::metricsPort()).
     */
    int metricsPort = -1;
};

/**
 * The epoll front end as an embeddable object: benchmarks and tests
 * run it in-process against an ephemeral port; runTcpServer() wraps
 * it for the tool.  start() binds and spawns the threads, wait()
 * blocks until a drain (shutdown request, requestStop(), or a
 * termination signal) completes.
 */
class TcpServer
{
  public:
    TcpServer(EvalService &service, TcpServerConfig cfg,
              std::ostream &log, SessionOptions opts);
    ~TcpServer();

    TcpServer(const TcpServer &) = delete;
    TcpServer &operator=(const TcpServer &) = delete;

    /** Bind, listen and spawn the threads; false + error on failure. */
    bool start(std::string *error);

    /** The bound port (useful after binding port 0). */
    unsigned short port() const;

    /** The bound metrics port (0 when the endpoint is disabled). */
    unsigned short metricsPort() const;

    /** Ask for a graceful drain (the in-process Ctrl-C). */
    void requestStop();

    /** Block until the drain completes and every thread has joined. */
    void wait();

    /** True when the drain was initiated by a shutdown request. */
    bool drainedByShutdown() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl;
};

/**
 * Serve one stdio session: requests from @p in, responses to @p out,
 * diagnostics to @p log (never to @p out — that is the protocol
 * channel).  Returns the session's stats.
 */
SessionStats runStdioServer(EvalService &service, std::istream &in,
                            std::ostream &out, std::ostream &log,
                            const SessionOptions &opts);

/**
 * Bind 127.0.0.1 per @p cfg and serve TCP clients until a shutdown
 * request or a termination signal, then drain.  Returns 0 on a clean
 * drain, nonzero when the listener could not be set up.
 */
int runTcpServer(EvalService &service, const TcpServerConfig &cfg,
                 std::ostream &log, const SessionOptions &opts);

} // namespace mech::serve

#endif // MECH_SERVE_SERVER_HH
