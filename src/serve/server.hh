/**
 * @file
 * mech_serve front ends: the stdio loop and a plain blocking TCP
 * server (no event loop, no new dependencies).
 *
 * Stdio mode serves one session over stdin/stdout — the mode CI
 * smokes and scripts pipe request files through.  TCP mode binds a
 * loopback listener and serves clients one connection at a time
 * (requests *within* a connection pipeline and batch; the evaluation
 * parallelism lives in the service's thread pool, which a sequential
 * accept loop keeps fully available to the active client).
 *
 * Graceful drain: a client "shutdown" request drains that session's
 * queue, answers a final "bye" accounting line, and stops the server
 * (in TCP mode, after closing the connection).  SIGINT/SIGTERM set a
 * flag the accept loop honours, so an operator's Ctrl-C never kills
 * a request mid-evaluation: the active session finishes its flush,
 * then the listener closes.
 */

#ifndef MECH_SERVE_SERVER_HH
#define MECH_SERVE_SERVER_HH

#include <iosfwd>

#include "serve/session.hh"

namespace mech::serve {

/**
 * Serve one stdio session: requests from @p in, responses to @p out,
 * diagnostics to @p log (never to @p out — that is the protocol
 * channel).  Returns the session's stats.
 */
SessionStats runStdioServer(EvalService &service, std::istream &in,
                            std::ostream &out, std::ostream &log,
                            const SessionOptions &opts);

/**
 * Bind 127.0.0.1:@p port and serve TCP clients until a shutdown
 * request or a termination signal.  Returns 0 on a clean drain,
 * nonzero when the listener could not be set up.
 */
int runTcpServer(EvalService &service, unsigned short port,
                 std::ostream &log, const SessionOptions &opts);

} // namespace mech::serve

#endif // MECH_SERVE_SERVER_HH
