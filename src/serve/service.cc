#include "serve/service.hh"

#include <algorithm>
#include <future>
#include <set>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "common/json.hh"
#include "common/logging.hh"
#include "dse/study.hh"
#include "eval/registry.hh"
#include "search/eval_cache.hh"
#include "search/objective.hh"
#include "search/pareto.hh"
#include "search/space_spec.hh"
#include "workload/suites.hh"

namespace mech::serve {

namespace {

/** Join names with commas (for group keys and response fields). */
std::string
joinNames(const std::vector<std::string> &names)
{
    std::string out;
    for (const std::string &name : names)
        out += (out.empty() ? "" : ",") + name;
    return out;
}

/** Emit a JSON array of strings. */
void
writeNameArray(std::ostream &os, const std::vector<std::string> &names)
{
    os << '[';
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (i)
            os << ", ";
        json::writeString(os, names[i]);
    }
    os << ']';
}

} // namespace

/**
 * One benchmark's shared study: profiled (or artifact-loaded) once,
 * then reused by every group that names the benchmark.  `prepared`
 * tracks the L2 geometries whose MemoryStats the study has memoized,
 * so evaluation stays read-only across pool workers.
 */
struct EvalService::StudyEntry
{
    std::unique_ptr<DseStudy> study;
    std::set<std::pair<std::uint64_t, std::uint32_t>> prepared;
};

/**
 * One (benchmarks, backends, objectives) evaluation group with its
 * own PR-4 EvalCache.  SearchEval vectors use serve layouts:
 * aggregate[be * K + k] is the cross-benchmark mean of objective k
 * through backend be; perBench[(b * NBE + be) * K + k] the
 * per-benchmark value.
 */
struct EvalService::Group
{
    std::string key;
    std::vector<std::string> benchNames;
    std::vector<StudyEntry *> studies;
    BackendSet backends;
    std::vector<Objective> objectives;
    EvalCache cache;
};

EvalService::EvalService(ServeConfig cfg_in)
    : cfg(std::move(cfg_in)),
      pool(cfg.threads <= 1 ? 0 : cfg.threads)
{
    MECH_ASSERT(!cfg.defaultBench.empty(),
                "service needs a default benchmark set");
    MECH_ASSERT(!cfg.defaultBackends.empty(),
                "service needs a default backend set");
    MECH_ASSERT(!cfg.defaultObjectives.empty(),
                "service needs a default objective set");
}

EvalService::~EvalService() = default;

void
EvalService::buildStudies(const std::vector<std::string> &names)
{
    std::vector<std::pair<std::string, StudyEntry *>> missing;
    for (const std::string &name : names) {
        auto it = studies.find(name);
        if (it != studies.end())
            continue;
        auto entry = std::make_unique<StudyEntry>();
        StudyEntry *raw = entry.get();
        studies.emplace(name, std::move(entry));
        missing.emplace_back(name, raw);
    }
    if (missing.empty())
        return;

    // Profiling is the expensive part of a cold benchmark; build the
    // new studies in parallel, one task per benchmark.
    std::vector<std::future<void>> built;
    built.reserve(missing.size());
    for (auto &[name, entry] : missing) {
        StudyEntry *e = entry;
        const std::string bench_name = name;
        built.push_back(pool.submit([this, e, bench_name] {
            e->study = std::make_unique<DseStudy>(DseStudy::loadOrProfile(
                cfg.profileDir, profileByName(bench_name),
                cfg.traceLen));
        }));
    }
    for (auto &f : built)
        f.get();
}

EvalService::Group *
EvalService::resolveGroup(const ServeRequest &req, std::string *error)
{
    // Benchmarks: default set when unnamed; aliases resolve to their
    // canonical profile so "cjpeg" and "jpeg_c" share a group.
    const std::vector<std::string> &named =
        req.bench.empty() ? cfg.defaultBench : req.bench;
    std::vector<std::string> benches;
    for (const std::string &name : named) {
        if (name.empty()) {
            *error = "empty benchmark name";
            return nullptr;
        }
        const BenchmarkProfile *profile = findProfile(name);
        if (!profile) {
            *error = "unknown benchmark '" + name + "'";
            return nullptr;
        }
        if (std::find(benches.begin(), benches.end(), profile->name) !=
            benches.end()) {
            *error = "benchmark '" + profile->name +
                     "' listed twice";
            return nullptr;
        }
        benches.push_back(profile->name);
    }

    // Backends, via the registry's non-fatal set parser.
    const std::vector<std::string> &be_names =
        req.backends.empty() ? cfg.defaultBackends : req.backends;
    auto backends = BackendRegistry::global().tryParseSet(
        joinNames(be_names), error);
    if (!backends)
        return nullptr;

    // Objectives.
    const std::vector<std::string> &obj_names =
        req.objectives.empty() ? cfg.defaultObjectives : req.objectives;
    std::vector<Objective> objectives;
    for (const std::string &name : obj_names) {
        if (name.empty()) {
            *error = "empty objective name";
            return nullptr;
        }
        auto obj = objectiveByName(name);
        if (!obj) {
            std::string known;
            for (const Objective &o : allObjectives())
                known += (known.empty() ? "" : ", ") + o.name;
            *error = "unknown objective '" + name + "' (known: " +
                     known + ")";
            return nullptr;
        }
        for (const Objective &seen : objectives) {
            if (seen.name == obj->name) {
                *error = "objective '" + name + "' listed twice";
                return nullptr;
            }
        }
        objectives.push_back(*obj);
    }

    std::string key = "bench=" + joinNames(benches) + "|backends=";
    for (std::size_t i = 0; i < backends->size(); ++i)
        key += (i ? "," : "") + std::string((*backends)[i]->name());
    key += "|obj=" + joinNames(obj_names);

    if (auto it = groupIndex.find(key); it != groupIndex.end())
        return it->second;

    // Materialize the group: studies first (the expensive half).
    buildStudies(benches);
    auto group = std::make_unique<Group>();
    group->key = key;
    group->benchNames = benches;
    for (const std::string &name : benches)
        group->studies.push_back(studies.at(name).get());
    group->backends = std::move(*backends);
    group->objectives = std::move(objectives);
    Group *raw = group.get();
    groupList.push_back(std::move(group));
    groupIndex.emplace(raw->key, raw);
    ++counters.groups;
    return raw;
}

void
EvalService::prepareGeometries(Group &group,
                               const std::vector<DesignPoint> &points)
{
    // One preparation list per study: only geometries that study has
    // not memoized yet.  Preparation mutates the study, so it runs
    // strictly before the parallel evaluation phase, one task per
    // study (a study's geometries must be computed into its memo
    // sequentially).
    std::vector<std::future<void>> prepared;
    for (StudyEntry *entry : group.studies) {
        std::vector<DesignPoint> fresh;
        std::set<std::pair<std::uint64_t, std::uint32_t>> seen;
        for (const DesignPoint &p : points) {
            auto geom = std::make_pair(p.l2KB, p.l2Assoc);
            if (entry->prepared.count(geom) || seen.count(geom))
                continue;
            seen.insert(geom);
            DesignPoint rep;
            rep.l2KB = p.l2KB;
            rep.l2Assoc = p.l2Assoc;
            fresh.push_back(rep);
        }
        if (fresh.empty())
            continue;
        for (const auto &geom : seen)
            entry->prepared.insert(geom);
        DseStudy *study = entry->study.get();
        prepared.push_back(pool.submit(
            [study, fresh = std::move(fresh)] { study->prepare(fresh); }));
    }
    for (auto &f : prepared)
        f.get();
}

std::vector<const SearchEval *>
EvalService::evaluatePoints(Group &group,
                            const std::vector<DesignPoint> &points,
                            std::vector<bool> *was_hit)
{
    // Phase 1 (this thread): classify hits, intra-flush duplicates
    // and fresh misses in request order, so accounting never depends
    // on worker scheduling.
    std::vector<const SearchEval *> out(points.size(), nullptr);
    std::vector<std::size_t> missIdx;
    std::unordered_set<DesignPoint, DesignPointHash> fresh;
    was_hit->assign(points.size(), false);
    for (std::size_t i = 0; i < points.size(); ++i) {
        ++counters.requested;
        if (const SearchEval *hit = group.cache.find(points[i])) {
            out[i] = hit;
            (*was_hit)[i] = true;
            ++counters.hits;
        } else if (fresh.count(points[i])) {
            (*was_hit)[i] = true; // duplicate within this flush
            ++counters.hits;
        } else {
            fresh.insert(points[i]);
            missIdx.push_back(i);
            ++counters.misses;
        }
    }

    // Phase 2 (pool): memoize any new L2 geometries, then evaluate
    // the misses against the read-only studies through one bulk
    // index-range job — no per-task futures or allocations, one
    // scratch PointEvaluation per chunk (the same shape as
    // SearchEvaluator::evaluateBatch).
    std::vector<SearchEval> computed(missIdx.size());
    if (!missIdx.empty()) {
        std::vector<DesignPoint> missPoints;
        missPoints.reserve(missIdx.size());
        for (std::size_t idx : missIdx)
            missPoints.push_back(points[idx]);
        prepareGeometries(group, missPoints);

        const Group *g = &group;
        pool.parallelFor(
            missIdx.size(), pool.bulkChunk(missIdx.size()),
            [g, &missPoints, &computed](std::size_t begin,
                                        std::size_t end) {
                const std::size_t n_be = g->backends.size();
                const std::size_t k_objs = g->objectives.size();
                const std::size_t n_bench = g->studies.size();
                PointEvaluation scratch;
                for (std::size_t j = begin; j < end; ++j) {
                    SearchEval &eval = computed[j];
                    eval.point = missPoints[j];
                    eval.aggregate.assign(n_be * k_objs, 0.0);
                    eval.perBench.resize(n_bench * n_be * k_objs);
                    for (std::size_t b = 0; b < n_bench; ++b) {
                        const DseStudy &study = *g->studies[b]->study;
                        study.evaluateInto(scratch, eval.point,
                                           g->backends);
                        for (std::size_t be = 0; be < n_be; ++be) {
                            const EvalResult &res = scratch.results[be];
                            for (std::size_t k = 0; k < k_objs; ++k) {
                                double v = g->objectives[k].value(
                                    res, eval.point);
                                eval.perBench[(b * n_be + be) * k_objs +
                                              k] = v;
                                eval.aggregate[be * k_objs + k] += v;
                            }
                        }
                    }
                    const double n = static_cast<double>(n_bench);
                    for (double &v : eval.aggregate)
                        v /= n;
                }
            });
    }

    // Phase 3 (this thread): publish in request order.
    for (SearchEval &eval : computed)
        group.cache.insert(std::move(eval));
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (!out[i]) {
            out[i] = group.cache.find(points[i]);
            MECH_ASSERT(out[i],
                        "fresh serve evaluation missing from cache");
        }
    }
    return out;
}

namespace {

/**
 * Check every predictor a request names against the profiled set; a
 * predictor the studies never trained would panic deep inside a
 * worker, so turn it into a client error here.
 */
bool
predictorsProfiled(const DseStudy &study,
                   const std::vector<PredictorKind> &kinds,
                   std::string *error)
{
    for (PredictorKind kind : kinds) {
        bool profiled = false;
        for (const auto &bp : study.profile().branchProfiles)
            profiled |= bp.kind == kind;
        if (!profiled) {
            *error = "predictor '" + std::string(predictorKey(kind)) +
                     "' is outside the profiled design space "
                     "(profiled: gshare1k, hybrid3k5)";
            return false;
        }
    }
    return true;
}

/** Emit {"<obj>": v, ...} for one objective-value slice. */
void
writeObjectives(std::ostream &os,
                const std::vector<Objective> &objs,
                const std::vector<double> &values, std::size_t base)
{
    os << "{ ";
    for (std::size_t k = 0; k < objs.size(); ++k) {
        if (k)
            os << ", ";
        json::writeString(os, objs[k].name);
        os << ": ";
        json::writeNumber(os, values[base + k]);
    }
    os << " }";
}

} // namespace

std::string
EvalService::evalResponse(const ServeRequest &req, Group &group,
                          const SearchEval &eval, bool was_hit)
{
    const std::size_t k_objs = group.objectives.size();
    const std::size_t n_be = group.backends.size();
    std::ostringstream os;
    os << responseHead(req.idJson, "result") << ", \"point\": ";
    json::writeString(os, eval.point.toKey());
    os << ", \"label\": ";
    json::writeString(os, eval.point.label());
    os << ", \"cached\": " << (was_hit ? "true" : "false");
    os << ", \"bench\": ";
    writeNameArray(os, group.benchNames);
    os << ", \"results\": { ";
    for (std::size_t be = 0; be < n_be; ++be) {
        if (be)
            os << ", ";
        json::writeString(os, std::string(group.backends[be]->name()));
        os << ": { \"objectives\": ";
        writeObjectives(os, group.objectives, eval.aggregate,
                        be * k_objs);
        os << ", \"per_benchmark\": { ";
        for (std::size_t b = 0; b < group.benchNames.size(); ++b) {
            if (b)
                os << ", ";
            json::writeString(os, group.benchNames[b]);
            os << ": ";
            writeObjectives(os, group.objectives, eval.perBench,
                            (b * n_be + be) * k_objs);
        }
        os << " } }";
    }
    os << " }}";
    return os.str();
}

std::string
EvalService::batchResponse(const ServeRequest &req, Group &group,
                           bool *ok)
{
    *ok = false;
    std::string error;
    auto spec = SpaceSpec::tryParse(req.space, &error);
    if (!spec)
        return errorResponse(req.idJson,
                             "bad space '" + req.space + "': " + error);
    if (std::string why = spec->check(); !why.empty())
        return errorResponse(req.idJson,
                             "invalid space '" + req.space + "': " + why);
    if (spec->size() > cfg.maxSpacePoints) {
        return errorResponse(
            req.idJson,
            "space has " + std::to_string(spec->size()) +
                " points; this server caps batch requests at " +
                std::to_string(cfg.maxSpacePoints) +
                " (see mech_serve --max-space)");
    }
    if (group.backends.size() != 1) {
        return errorResponse(
            req.idJson,
            "batch requests take exactly one backend (got " +
                std::to_string(group.backends.size()) +
                "); rank with one engine, then validate winners "
                "with eval requests");
    }
    // Sweeping out-of-order axes through an in-order backend would
    // fan out paid-for evaluations that all collapse to one result;
    // the same rule mech_search enforces (SearchEvaluator::prepare).
    if (spec->hasOooAxes() && !group.backends[0]->usesOoo()) {
        return errorResponse(
            req.idJson,
            "space '" + req.space +
                "' sweeps out-of-order axes (rob/iq/fu*/buses) but "
                "backend '" +
                std::string(group.backends[0]->name()) +
                "' ignores them; use an out-of-order backend "
                "(ooo, oosim)");
    }
    if (!predictorsProfiled(*group.studies[0]->study, spec->predictor,
                            &error)) {
        return errorResponse(req.idJson, error);
    }

    const std::uint64_t n = spec->size();
    std::vector<DesignPoint> points;
    points.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i)
        points.push_back(spec->at(i));

    const std::uint64_t req_before = counters.requested;
    const std::uint64_t hits_before = counters.hits;
    const std::uint64_t miss_before = counters.misses;
    std::vector<bool> was_hit;
    std::vector<const SearchEval *> evals =
        evaluatePoints(group, points, &was_hit);

    // Frontier over the fan-out, on the "lower is better" scale of
    // the single backend's objectives; indices ascend, so frontier
    // entries come back in enumeration order.
    const std::size_t k_objs = group.objectives.size();
    std::vector<std::vector<double>> costs;
    costs.reserve(evals.size());
    for (const SearchEval *eval : evals) {
        std::vector<double> row(k_objs);
        for (std::size_t k = 0; k < k_objs; ++k)
            row[k] = group.objectives[k].normalized(eval->aggregate[k]);
        costs.push_back(std::move(row));
    }
    std::vector<std::size_t> frontier = paretoFrontier(costs);

    std::size_t best = 0;
    for (std::size_t i = 1; i < evals.size(); ++i) {
        if (costs[i][0] < costs[best][0])
            best = i;
    }

    *ok = true;
    std::vector<std::string> obj_names;
    for (const Objective &obj : group.objectives)
        obj_names.push_back(obj.name);

    auto entry = [&](std::ostream &os, std::size_t idx) {
        os << "{ \"point\": ";
        json::writeString(os, evals[idx]->point.toKey());
        os << ", \"label\": ";
        json::writeString(os, evals[idx]->point.label());
        os << ", \"objectives\": ";
        writeObjectives(os, group.objectives, evals[idx]->aggregate, 0);
        os << " }";
    };

    std::ostringstream os;
    os << responseHead(req.idJson, "frontier") << ", \"space\": ";
    json::writeString(os, spec->describe());
    os << ", \"space_size\": " << n;
    os << ", \"backend\": ";
    json::writeString(os, std::string(group.backends[0]->name()));
    os << ", \"objectives\": ";
    writeNameArray(os, obj_names);
    os << ", \"bench\": ";
    writeNameArray(os, group.benchNames);
    os << ", \"evaluations\": " << n;
    os << ", \"cache\": { \"requested\": "
       << counters.requested - req_before
       << ", \"hits\": " << counters.hits - hits_before
       << ", \"misses\": " << counters.misses - miss_before << " }";
    os << ", \"best\": ";
    entry(os, best);
    os << ", \"frontier\": [";
    for (std::size_t i = 0; i < frontier.size(); ++i) {
        os << (i ? ", " : "");
        entry(os, frontier[i]);
    }
    os << "]}";
    return os.str();
}

std::vector<std::string>
EvalService::handleFlush(const std::vector<ServeRequest> &requests)
{
    // Per-request slots, filled out of order, emitted in order.
    std::vector<std::string> responses(requests.size());

    // Pending eval requests per group, coalesced across the flush.
    // A batch request of the same group is a barrier: pending evals
    // flush first, so accounting is exactly what strictly sequential
    // processing would produce, independent of how the session
    // chunked the input stream.
    struct PendingEval
    {
        std::size_t slot;
        DesignPoint point;
    };
    std::vector<Group *> groupOrder;
    std::map<Group *, std::vector<PendingEval>> pending;

    auto flushGroup = [&](Group *group) {
        auto it = pending.find(group);
        if (it == pending.end() || it->second.empty())
            return;
        std::vector<DesignPoint> points;
        points.reserve(it->second.size());
        for (const PendingEval &pe : it->second)
            points.push_back(pe.point);
        std::vector<bool> was_hit;
        std::vector<const SearchEval *> evals =
            evaluatePoints(*group, points, &was_hit);
        for (std::size_t i = 0; i < it->second.size(); ++i) {
            const PendingEval &pe = it->second[i];
            responses[pe.slot] = evalResponse(requests[pe.slot], *group,
                                              *evals[i], was_hit[i]);
        }
        it->second.clear();
    };

    for (std::size_t i = 0; i < requests.size(); ++i) {
        const ServeRequest &req = requests[i];
        std::string error;
        Group *group = resolveGroup(req, &error);
        if (!group) {
            responses[i] = errorResponse(req.idJson, error);
            ++counters.errors;
            continue;
        }
        if (std::find(groupOrder.begin(), groupOrder.end(), group) ==
            groupOrder.end()) {
            groupOrder.push_back(group);
        }

        if (req.type == RequestType::Eval) {
            const DesignPoint &point = *req.point;
            if (std::string why = SpaceSpec::single(point).check();
                !why.empty()) {
                responses[i] = errorResponse(
                    req.idJson, "invalid design point '" +
                                    point.toKey() + "': " + why);
                ++counters.errors;
                continue;
            }
            if (!predictorsProfiled(*group->studies[0]->study,
                                    {point.predictor}, &error)) {
                responses[i] = errorResponse(req.idJson, error);
                ++counters.errors;
                continue;
            }
            pending[group].push_back({i, point});
            ++counters.evalRequests;
        } else if (req.type == RequestType::Batch) {
            flushGroup(group);
            bool ok = false;
            responses[i] = batchResponse(req, *group, &ok);
            if (ok)
                ++counters.batchRequests;
            else
                ++counters.errors;
        } else {
            panic("control request reached handleFlush");
        }
    }

    for (Group *group : groupOrder)
        flushGroup(group);
    return responses;
}

std::string
EvalService::infoResponse(const std::string &id_json) const
{
    std::vector<std::string> obj_names;
    for (const Objective &obj : allObjectives())
        obj_names.push_back(obj.name);

    std::ostringstream os;
    os << responseHead(id_json, "info")
       << ", \"generator\": \"mech_serve\"";
    os << ", \"benchmarks\": ";
    writeNameArray(os, allProfileNames());
    os << ", \"backends\": ";
    writeNameArray(os, BackendRegistry::global().names());
    os << ", \"objectives\": ";
    writeNameArray(os, obj_names);
    os << ", \"defaults\": { \"bench\": ";
    writeNameArray(os, cfg.defaultBench);
    os << ", \"backends\": ";
    writeNameArray(os, cfg.defaultBackends);
    os << ", \"objectives\": ";
    writeNameArray(os, cfg.defaultObjectives);
    os << " }, \"max_space\": " << cfg.maxSpacePoints;
    os << ", \"instructions\": " << cfg.traceLen << "}";
    return os.str();
}

std::string
EvalService::statsResponse(const std::string &id_json,
                           RequestType type) const
{
    const ServiceStats s = stats();
    std::ostringstream os;
    os << responseHead(id_json,
                       type == RequestType::Shutdown ? "bye" : "stats");
    os << ", \"requests\": { \"eval\": " << s.evalRequests
       << ", \"batch\": " << s.batchRequests
       << ", \"errors\": " << s.errors << " }";
    os << ", \"cache\": { \"requested\": " << s.requested
       << ", \"hits\": " << s.hits << ", \"misses\": " << s.misses
       << ", \"hit_rate\": ";
    json::writeNumber(os, s.hitRate());
    os << " }, \"groups\": " << s.groups
       << ", \"cached_points\": " << s.cachedPoints << "}";
    return os.str();
}

ServiceStats
EvalService::stats() const
{
    ServiceStats s = counters;
    s.cachedPoints = 0;
    for (const auto &group : groupList)
        s.cachedPoints += group->cache.size();
    return s;
}

} // namespace mech::serve
