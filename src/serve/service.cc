#include "serve/service.hh"

#include <algorithm>
#include <future>
#include <mutex>
#include <ostream>
#include <set>
#include <shared_mutex>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "characterize/mdesc.hh"
#include "common/file_util.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "obs/trace.hh"
#include "dse/study.hh"
#include "eval/registry.hh"
#include "search/cache_io.hh"
#include "search/eval_cache.hh"
#include "search/objective.hh"
#include "search/space_spec.hh"
#include "serve/serve_obs.hh"
#include "serve/shard.hh"
#include "workload/suites.hh"

namespace mech::serve {

namespace {

/** Join names with commas (for group keys and response fields). */
std::string
joinNames(const std::vector<std::string> &names)
{
    std::string out;
    for (const std::string &name : names)
        out += (out.empty() ? "" : ",") + name;
    return out;
}

/** Emit a JSON array of strings. */
void
writeNameArray(std::ostream &os, const std::vector<std::string> &names)
{
    os << '[';
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (i)
            os << ", ";
        json::writeString(os, names[i]);
    }
    os << ']';
}

} // namespace

/**
 * One benchmark's shared study: profiled (or artifact-loaded) once,
 * then reused by every group that names the benchmark.  `prepared`
 * tracks the L2 geometries whose MemoryStats the study has memoized.
 *
 * The reader-writer lock is what lets concurrent dispatcher flushes
 * share a study: preparation (which mutates the memo) holds it
 * exclusively, the evaluation fan-out holds it shared.  `seq` gives
 * every study a global order; coordinators acquire their shared
 * locks in ascending seq, so two flushes over overlapping study sets
 * can never deadlock against a pending writer.
 */
struct EvalService::StudyEntry
{
    std::unique_ptr<DseStudy> study;

    /** Creation order, for deadlock-free multi-study lock sequences. */
    std::uint64_t seq = 0;

    std::shared_mutex rw;

    /** Guarded by rw (writers update it after prepare()). */
    std::set<std::pair<std::uint64_t, std::uint32_t>> prepared;
};

/**
 * One (benchmarks, backends, objectives) evaluation group with its
 * own PR-4 EvalCache.  SearchEval vectors use serve layouts:
 * aggregate[be * K + k] is the cross-benchmark mean of objective k
 * through backend be; perBench[(b * NBE + be) * K + k] the
 * per-benchmark value.
 */
struct EvalService::Group
{
    std::string key;
    std::vector<std::string> benchNames;
    std::vector<StudyEntry *> studies;
    BackendSet backends;
    std::vector<Objective> objectives;
    EvalCache cache;

    /** This group's own hit/miss traffic (guarded by statsMtx). */
    std::uint64_t hitCount = 0;
    std::uint64_t missCount = 0;

    std::uint32_t
    aggregateLen() const
    {
        return static_cast<std::uint32_t>(backends.size() *
                                          objectives.size());
    }

    std::uint32_t
    perBenchLen() const
    {
        return static_cast<std::uint32_t>(
            benchNames.size() * backends.size() * objectives.size());
    }
};

EvalService::EvalService(ServeConfig cfg_in)
    : cfg(std::move(cfg_in)),
      pool(cfg.threads <= 1 ? 0 : cfg.threads)
{
    MECH_ASSERT(!cfg.defaultBench.empty(),
                "service needs a default benchmark set");
    MECH_ASSERT(!cfg.defaultBackends.empty(),
                "service needs a default backend set");
    MECH_ASSERT(!cfg.defaultObjectives.empty(),
                "service needs a default objective set");
    // Single-threaded here: no request can race the install.
    if (!cfg.mdescPath.empty())
        applyMachineDescription(cfg.mdescPath);
}

EvalService::~EvalService() = default;

void
EvalService::buildStudies(const std::vector<std::string> &names)
{
    // Caller holds resolveMtx.
    std::vector<std::pair<std::string, StudyEntry *>> missing;
    for (const std::string &name : names) {
        auto it = studies.find(name);
        if (it != studies.end())
            continue;
        auto entry = std::make_unique<StudyEntry>();
        entry->seq = studies.size();
        StudyEntry *raw = entry.get();
        studies.emplace(name, std::move(entry));
        missing.emplace_back(name, raw);
    }
    if (missing.empty())
        return;

    // Profiling is the expensive part of a cold benchmark; build the
    // new studies in parallel, one task per benchmark.
    std::vector<std::future<void>> built;
    built.reserve(missing.size());
    for (auto &[name, entry] : missing) {
        StudyEntry *e = entry;
        const std::string bench_name = name;
        built.push_back(pool.submit([this, e, bench_name] {
            e->study = std::make_unique<DseStudy>(DseStudy::loadOrProfile(
                cfg.profileDir, profileByName(bench_name),
                cfg.traceLen));
        }));
    }
    for (auto &f : built)
        f.get();
}

void
EvalService::loadSpill(Group &group)
{
    // Caller holds resolveMtx (the group is still being materialized,
    // so no other thread can reach its cache yet).
    if (cfg.cacheDir.empty())
        return;
    const std::string path = cacheSpillPath(cfg.cacheDir, group.key);
    if (!fileExists(path))
        return;
    obs::TraceSpan span("cache.load", "cache");
    MappedFile file;
    std::string error;
    if (!file.open(path, &error)) {
        warn("mech_serve: cannot map cache spill: ", error);
        return;
    }
    // Decode into a staging cache: a spill rejected halfway must not
    // leave a partial memo behind.
    EvalCache staged;
    if (!decodeEvalCache(file.view(), group.key, group.aggregateLen(),
                         group.perBenchLen(), &staged, &error)) {
        warn("mech_serve: ignoring cache spill '", path, "': ", error);
        return;
    }
    const std::vector<const SearchEval *> entries = staged.entries();
    for (const SearchEval *eval : entries)
        group.cache.insert(*eval);
    std::lock_guard<std::mutex> stats_lock(statsMtx);
    counters.restored += entries.size();
}

EvalService::Group *
EvalService::resolveGroup(const ServeRequest &req, std::string *error)
{
    // Benchmarks: default set when unnamed; aliases resolve to their
    // canonical profile so "cjpeg" and "jpeg_c" share a group.
    const std::vector<std::string> &named =
        req.bench.empty() ? cfg.defaultBench : req.bench;
    std::vector<std::string> benches;
    for (const std::string &name : named) {
        if (name.empty()) {
            *error = "empty benchmark name";
            return nullptr;
        }
        const BenchmarkProfile *profile = findProfile(name);
        if (!profile) {
            *error = "unknown benchmark '" + name + "'";
            return nullptr;
        }
        if (std::find(benches.begin(), benches.end(), profile->name) !=
            benches.end()) {
            *error = "benchmark '" + profile->name +
                     "' listed twice";
            return nullptr;
        }
        benches.push_back(profile->name);
    }

    // Backends, via the registry's non-fatal set parser.
    const std::vector<std::string> &be_names =
        req.backends.empty() ? cfg.defaultBackends : req.backends;
    auto backends = BackendRegistry::global().tryParseSet(
        joinNames(be_names), error);
    if (!backends)
        return nullptr;

    // Objectives.
    const std::vector<std::string> &obj_names =
        req.objectives.empty() ? cfg.defaultObjectives : req.objectives;
    std::vector<Objective> objectives;
    for (const std::string &name : obj_names) {
        if (name.empty()) {
            *error = "empty objective name";
            return nullptr;
        }
        auto obj = objectiveByName(name);
        if (!obj) {
            std::string known;
            for (const Objective &o : allObjectives())
                known += (known.empty() ? "" : ", ") + o.name;
            *error = "unknown objective '" + name + "' (known: " +
                     known + ")";
            return nullptr;
        }
        for (const Objective &seen : objectives) {
            if (seen.name == obj->name) {
                *error = "objective '" + name + "' listed twice";
                return nullptr;
            }
        }
        objectives.push_back(*obj);
    }

    std::string key = "bench=" + joinNames(benches) + "|backends=";
    for (std::size_t i = 0; i < backends->size(); ++i)
        key += (i ? "," : "") + std::string((*backends)[i]->name());
    key += "|obj=" + joinNames(obj_names);

    // The resolve lock covers lookup and materialization: a cold
    // group profiles under it, which intentionally serializes other
    // sessions' (microsecond) lookups behind first use rather than
    // letting two sessions profile the same benchmark twice.
    std::lock_guard<std::mutex> lock(resolveMtx);
    if (auto it = groupIndex.find(key); it != groupIndex.end())
        return it->second;

    // Materialize the group: studies first (the expensive half).
    buildStudies(benches);
    auto group = std::make_unique<Group>();
    group->key = key;
    group->benchNames = benches;
    for (const std::string &name : benches)
        group->studies.push_back(studies.at(name).get());
    group->backends = std::move(*backends);
    group->objectives = std::move(objectives);
    loadSpill(*group);
    Group *raw = group.get();
    groupList.push_back(std::move(group));
    groupIndex.emplace(raw->key, raw);
    {
        std::lock_guard<std::mutex> stats_lock(statsMtx);
        ++counters.groups;
    }
    return raw;
}

void
EvalService::prepareGeometries(Group &group,
                               const std::vector<DesignPoint> &points)
{
    // One preparation task per study, each taking its study's lock
    // exclusively: preparation mutates the study's geometry memo, so
    // it must never overlap another flush's shared-lock evaluation of
    // the same study.  The fresh-geometry list is computed under the
    // lock — a concurrent flush may have prepared some of these
    // geometries while this one was queued.
    std::vector<std::future<void>> prepared;
    for (StudyEntry *entry : group.studies) {
        prepared.push_back(pool.submit([entry, &points] {
            std::unique_lock<std::shared_mutex> lock(entry->rw);
            std::vector<DesignPoint> fresh;
            std::set<std::pair<std::uint64_t, std::uint32_t>> seen;
            for (const DesignPoint &p : points) {
                auto geom = std::make_pair(p.l2KB, p.l2Assoc);
                if (entry->prepared.count(geom) || seen.count(geom))
                    continue;
                seen.insert(geom);
                DesignPoint rep;
                rep.l2KB = p.l2KB;
                rep.l2Assoc = p.l2Assoc;
                fresh.push_back(rep);
            }
            if (fresh.empty())
                return;
            entry->study->prepare(fresh);
            for (const auto &geom : seen)
                entry->prepared.insert(geom);
        }));
    }
    for (auto &f : prepared)
        f.get();
}

std::vector<const SearchEval *>
EvalService::evaluatePoints(Group &group,
                            const std::vector<DesignPoint> &points,
                            std::vector<bool> *was_hit,
                            FlushCounts *counts)
{
    // Phase 1 (this thread): classify hits, intra-flush duplicates
    // and fresh misses in request order, so accounting never depends
    // on worker scheduling.  Counts accumulate locally and merge into
    // the service counters once — concurrent flushes each account
    // their own traffic exactly.
    obs::TraceSpan span("service.evaluate", "serve");
    FlushCounts local;
    std::vector<const SearchEval *> out(points.size(), nullptr);
    std::vector<std::size_t> missIdx;
    std::unordered_set<DesignPoint, DesignPointHash> fresh;
    was_hit->assign(points.size(), false);
    for (std::size_t i = 0; i < points.size(); ++i) {
        ++local.requested;
        if (const SearchEval *hit = group.cache.find(points[i])) {
            out[i] = hit;
            (*was_hit)[i] = true;
            ++local.hits;
        } else if (fresh.count(points[i])) {
            (*was_hit)[i] = true; // duplicate within this flush
            ++local.hits;
        } else {
            fresh.insert(points[i]);
            missIdx.push_back(i);
            ++local.misses;
        }
    }

    // Phase 2 (pool): memoize any new L2 geometries (exclusive study
    // locks), then evaluate the misses against the shared-locked
    // studies through one bulk index-range job — no per-task futures
    // or allocations, one scratch PointEvaluation per chunk (the
    // same shape as SearchEvaluator::evaluateBatch).
    std::vector<SearchEval> computed(missIdx.size());
    if (!missIdx.empty()) {
        std::vector<DesignPoint> missPoints;
        missPoints.reserve(missIdx.size());
        for (std::size_t idx : missIdx)
            missPoints.push_back(points[idx]);
        prepareGeometries(group, missPoints);

        // Shared locks in ascending seq order (see StudyEntry), held
        // across the whole fan-out.
        std::vector<StudyEntry *> locked = group.studies;
        std::sort(locked.begin(), locked.end(),
                  [](const StudyEntry *a, const StudyEntry *b) {
                      return a->seq < b->seq;
                  });
        std::vector<std::shared_lock<std::shared_mutex>> guards;
        guards.reserve(locked.size());
        for (StudyEntry *entry : locked)
            guards.emplace_back(entry->rw);

        const Group *g = &group;
        pool.parallelFor(
            missIdx.size(), pool.bulkChunk(missIdx.size()),
            [g, &missPoints, &computed](std::size_t begin,
                                        std::size_t end) {
                const std::size_t n_be = g->backends.size();
                const std::size_t k_objs = g->objectives.size();
                const std::size_t n_bench = g->studies.size();
                PointEvaluation scratch;
                for (std::size_t j = begin; j < end; ++j) {
                    SearchEval &eval = computed[j];
                    eval.point = missPoints[j];
                    eval.aggregate.assign(n_be * k_objs, 0.0);
                    eval.perBench.resize(n_bench * n_be * k_objs);
                    for (std::size_t b = 0; b < n_bench; ++b) {
                        const DseStudy &study = *g->studies[b]->study;
                        study.evaluateInto(scratch, eval.point,
                                           g->backends);
                        for (std::size_t be = 0; be < n_be; ++be) {
                            const EvalResult &res = scratch.results[be];
                            for (std::size_t k = 0; k < k_objs; ++k) {
                                double v = g->objectives[k].value(
                                    res, eval.point);
                                eval.perBench[(b * n_be + be) * k_objs +
                                              k] = v;
                                eval.aggregate[be * k_objs + k] += v;
                            }
                        }
                    }
                    const double n = static_cast<double>(n_bench);
                    for (double &v : eval.aggregate)
                        v /= n;
                }
            });
    }

    // Phase 3 (this thread): publish in request order.
    for (SearchEval &eval : computed)
        group.cache.insert(std::move(eval));
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (!out[i]) {
            out[i] = group.cache.find(points[i]);
            MECH_ASSERT(out[i],
                        "fresh serve evaluation missing from cache");
        }
    }

    {
        std::lock_guard<std::mutex> lock(statsMtx);
        counters.requested += local.requested;
        counters.hits += local.hits;
        counters.misses += local.misses;
        group.hitCount += local.hits;
        group.missCount += local.misses;
    }
    if (counts)
        *counts = local;
    return out;
}

namespace {

/**
 * Check every predictor a request names against the profiled set; a
 * predictor the studies never trained would panic deep inside a
 * worker, so turn it into a client error here.
 */
bool
predictorsProfiled(const DseStudy &study,
                   const std::vector<PredictorKind> &kinds,
                   std::string *error)
{
    for (PredictorKind kind : kinds) {
        bool profiled = false;
        for (const auto &bp : study.profile().branchProfiles)
            profiled |= bp.kind == kind;
        if (!profiled) {
            *error = "predictor '" + std::string(predictorKey(kind)) +
                     "' is outside the profiled design space "
                     "(profiled: gshare1k, hybrid3k5)";
            return false;
        }
    }
    return true;
}

} // namespace

std::string
EvalService::evalResponse(const ServeRequest &req, Group &group,
                          const SearchEval &eval, bool was_hit)
{
    const std::size_t k_objs = group.objectives.size();
    const std::size_t n_be = group.backends.size();
    std::ostringstream os;
    os << responseHead(req.idJson, "result") << ", \"point\": ";
    json::writeString(os, eval.point.toKey());
    os << ", \"label\": ";
    json::writeString(os, eval.point.label());
    os << ", \"cached\": " << (was_hit ? "true" : "false");
    os << ", \"bench\": ";
    writeNameArray(os, group.benchNames);
    os << ", \"results\": { ";
    for (std::size_t be = 0; be < n_be; ++be) {
        if (be)
            os << ", ";
        json::writeString(os, std::string(group.backends[be]->name()));
        os << ": { \"objectives\": ";
        writeObjectiveObject(os, group.objectives, eval.aggregate,
                             be * k_objs);
        os << ", \"per_benchmark\": { ";
        for (std::size_t b = 0; b < group.benchNames.size(); ++b) {
            if (b)
                os << ", ";
            json::writeString(os, group.benchNames[b]);
            os << ": ";
            writeObjectiveObject(os, group.objectives, eval.perBench,
                                 (b * n_be + be) * k_objs);
        }
        os << " } }";
    }
    os << " }}";
    return os.str();
}

std::string
EvalService::batchResponse(const ServeRequest &req, Group &group,
                           bool *ok)
{
    *ok = false;
    std::string error;
    auto spec = SpaceSpec::tryParse(req.space, &error);
    if (!spec)
        return errorResponse(req.idJson,
                             "bad space '" + req.space + "': " + error);
    if (std::string why = spec->check(); !why.empty())
        return errorResponse(req.idJson,
                             "invalid space '" + req.space + "': " + why);
    if (spec->size() > cfg.maxSpacePoints) {
        return errorResponse(
            req.idJson,
            "space has " + std::to_string(spec->size()) +
                " points; this server caps batch requests at " +
                std::to_string(cfg.maxSpacePoints) +
                " (see mech_serve --max-space)");
    }
    if (group.backends.size() != 1) {
        return errorResponse(
            req.idJson,
            "batch requests take exactly one backend (got " +
                std::to_string(group.backends.size()) +
                "); rank with one engine, then validate winners "
                "with eval requests");
    }
    // Sweeping out-of-order axes through an in-order backend would
    // fan out paid-for evaluations that all collapse to one result;
    // the same rule mech_search enforces (SearchEvaluator::prepare).
    if (spec->hasOooAxes() && !group.backends[0]->usesOoo()) {
        return errorResponse(
            req.idJson,
            "space '" + req.space +
                "' sweeps out-of-order axes (rob/iq/fu*/buses) but "
                "backend '" +
                std::string(group.backends[0]->name()) +
                "' ignores them; use an out-of-order backend "
                "(ooo, oosim)");
    }
    if (!predictorsProfiled(*group.studies[0]->study, spec->predictor,
                            &error)) {
        return errorResponse(req.idJson, error);
    }

    const std::uint64_t n = spec->size();
    std::vector<DesignPoint> points;
    points.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i)
        points.push_back(spec->at(i));

    // Per-call accounting: under concurrent sessions the global
    // counters move underneath us, so the response's "cache" object
    // reports this flush's own classification, which is exact.
    FlushCounts flush;
    std::vector<bool> was_hit;
    std::vector<const SearchEval *> evals =
        evaluatePoints(group, points, &was_hit, &flush);

    // The response body is assembled by the same frontierResponse()
    // the sharded scatter-gather path uses: one serializer, so the
    // two stay byte-identical by construction.
    const std::size_t k_objs = group.objectives.size();
    std::vector<FrontierEntry> entries;
    entries.reserve(evals.size());
    for (const SearchEval *eval : evals) {
        FrontierEntry e;
        e.pointKey = eval->point.toKey();
        e.label = eval->point.label();
        e.objectives.assign(eval->aggregate.begin(),
                            eval->aggregate.begin() +
                                static_cast<std::ptrdiff_t>(k_objs));
        entries.push_back(std::move(e));
    }

    *ok = true;
    return frontierResponse(
        req.idJson, spec->describe(), n,
        std::string(group.backends[0]->name()), group.objectives,
        group.benchNames, entries,
        GatherCounts{flush.requested, flush.hits, flush.misses});
}

std::vector<std::string>
EvalService::handleFlush(const std::vector<ServeRequest> &requests)
{
    obs::TraceSpan span("service.flush", "serve");
    // Per-request slots, filled out of order, emitted in order.
    std::vector<std::string> responses(requests.size());

    // This flush's own control-plane accounting, merged under one
    // lock at the end so concurrent flushes never interleave
    // half-counted requests.
    std::uint64_t evalReqs = 0, batchReqs = 0, errorReqs = 0;

    // Pending eval requests per group, coalesced across the flush.
    // A batch request of the same group is a barrier: pending evals
    // flush first, so accounting is exactly what strictly sequential
    // processing would produce, independent of how the session
    // chunked the input stream.
    struct PendingEval
    {
        std::size_t slot;
        DesignPoint point;
    };
    std::vector<Group *> groupOrder;
    std::map<Group *, std::vector<PendingEval>> pending;

    auto flushGroup = [&](Group *group) {
        auto it = pending.find(group);
        if (it == pending.end() || it->second.empty())
            return;
        std::vector<DesignPoint> points;
        points.reserve(it->second.size());
        for (const PendingEval &pe : it->second)
            points.push_back(pe.point);
        std::vector<bool> was_hit;
        std::vector<const SearchEval *> evals =
            evaluatePoints(*group, points, &was_hit);
        for (std::size_t i = 0; i < it->second.size(); ++i) {
            const PendingEval &pe = it->second[i];
            responses[pe.slot] = evalResponse(requests[pe.slot], *group,
                                              *evals[i], was_hit[i]);
        }
        it->second.clear();
    };

    for (std::size_t i = 0; i < requests.size(); ++i) {
        const ServeRequest &req = requests[i];
        std::string error;
        Group *group = resolveGroup(req, &error);
        if (!group) {
            responses[i] = errorResponse(req.idJson, error);
            ++errorReqs;
            continue;
        }
        if (std::find(groupOrder.begin(), groupOrder.end(), group) ==
            groupOrder.end()) {
            groupOrder.push_back(group);
        }

        if (req.type == RequestType::Eval) {
            const DesignPoint &point = *req.point;
            if (std::string why = SpaceSpec::single(point).check();
                !why.empty()) {
                responses[i] = errorResponse(
                    req.idJson, "invalid design point '" +
                                    point.toKey() + "': " + why);
                ++errorReqs;
                continue;
            }
            if (!predictorsProfiled(*group->studies[0]->study,
                                    {point.predictor}, &error)) {
                responses[i] = errorResponse(req.idJson, error);
                ++errorReqs;
                continue;
            }
            pending[group].push_back({i, point});
            ++evalReqs;
        } else if (req.type == RequestType::Batch) {
            flushGroup(group);
            bool ok = false;
            responses[i] = batchResponse(req, *group, &ok);
            if (ok)
                ++batchReqs;
            else
                ++errorReqs;
        } else {
            panic("control request reached handleFlush");
        }
    }

    for (Group *group : groupOrder)
        flushGroup(group);

    {
        std::lock_guard<std::mutex> lock(statsMtx);
        counters.evalRequests += evalReqs;
        counters.batchRequests += batchReqs;
        counters.errors += errorReqs;
    }
    return responses;
}

void
EvalService::noteShedRequests(std::uint64_t n)
{
    std::lock_guard<std::mutex> lock(statsMtx);
    counters.errors += n;
    counters.shed += n;
}

std::size_t
EvalService::persistCaches(std::ostream *log) const
{
    if (cfg.cacheDir.empty())
        return 0;
    obs::TraceSpan span("cache.spill", "cache");
    std::string error;
    if (!ensureDirectory(cfg.cacheDir, &error)) {
        warn("mech_serve: cannot create cache dir: ", error);
        return 0;
    }
    std::size_t written = 0;
    std::lock_guard<std::mutex> lock(resolveMtx);
    for (const auto &group : groupList) {
        if (group->cache.size() == 0)
            continue;
        const std::string bytes =
            encodeEvalCache(group->cache, group->key,
                            group->aggregateLen(), group->perBenchLen());
        const std::string path =
            cacheSpillPath(cfg.cacheDir, group->key);
        if (!atomicWriteFile(path, bytes, &error)) {
            warn("mech_serve: cannot write cache spill: ", error);
            continue;
        }
        if (log) {
            *log << "mech_serve: spilled " << group->cache.size()
                 << " point(s) of group " << group->key << " to "
                 << path << "\n";
        }
        ++written;
    }
    return written;
}

std::string
EvalService::infoResponse(const std::string &id_json) const
{
    std::vector<std::string> obj_names;
    for (const Objective &obj : allObjectives())
        obj_names.push_back(obj.name);

    std::ostringstream os;
    os << responseHead(id_json, "info")
       << ", \"generator\": \"mech_serve\"";
    os << ", \"benchmarks\": ";
    writeNameArray(os, allProfileNames());
    os << ", \"backends\": ";
    writeNameArray(os, BackendRegistry::global().names());
    os << ", \"objectives\": ";
    writeNameArray(os, obj_names);
    os << ", \"defaults\": { \"bench\": ";
    writeNameArray(os, cfg.defaultBench);
    os << ", \"backends\": ";
    writeNameArray(os, cfg.defaultBackends);
    os << ", \"objectives\": ";
    writeNameArray(os, cfg.defaultObjectives);
    os << " }, \"max_space\": " << cfg.maxSpacePoints;
    os << ", \"instructions\": " << cfg.traceLen << "}";
    return os.str();
}

namespace {

/** Emit { "count": N, "p50": ..., "p95": ..., "p99": ... }. */
void
writeQuantileObject(std::ostream &os, const obs::LatencyHistogram &h)
{
    const obs::HistogramSnapshot snap = h.snapshot();
    os << "{ \"count\": " << snap.count()
       << ", \"p50\": " << snap.quantile(0.50)
       << ", \"p95\": " << snap.quantile(0.95)
       << ", \"p99\": " << snap.quantile(0.99) << " }";
}

} // namespace

std::string
EvalService::statsResponse(const std::string &id_json,
                           RequestType type, bool timing) const
{
    const ServiceStats s = stats();
    std::ostringstream os;
    os << responseHead(id_json,
                       type == RequestType::Shutdown ? "bye" : "stats");
    os << ", \"requests\": { \"eval\": " << s.evalRequests
       << ", \"batch\": " << s.batchRequests
       << ", \"errors\": " << s.errors << ", \"shed\": " << s.shed
       << " }";
    os << ", \"cache\": { \"requested\": " << s.requested
       << ", \"hits\": " << s.hits << ", \"misses\": " << s.misses
       << ", \"restored\": " << s.restored << ", \"hit_rate\": ";
    json::writeNumber(os, s.hitRate());
    os << " }, \"groups\": " << s.groups
       << ", \"cached_points\": " << s.cachedPoints;

    // Uptime is wall clock, so deterministic mode pins it to 0 — the
    // field order stays identical either way, keeping goldens stable.
    std::uint64_t uptime_ms = 0;
    if (timing) {
        uptime_ms = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - startTime)
                .count());
    }
    os << ", \"uptime_ms\": " << uptime_ms;

    // Per-group cache occupancy and hit-rate, in materialization
    // order (deterministic for a single session; under concurrent
    // sessions it truthfully reflects arrival order, like "groups").
    os << ", \"group_caches\": [";
    {
        std::lock_guard<std::mutex> lock(resolveMtx);
        std::lock_guard<std::mutex> stats_lock(statsMtx);
        for (std::size_t i = 0; i < groupList.size(); ++i) {
            const Group &g = *groupList[i];
            const std::uint64_t lookups = g.hitCount + g.missCount;
            if (i)
                os << ", ";
            os << "{ \"key\": ";
            json::writeString(os, g.key);
            os << ", \"points\": " << g.cache.size()
               << ", \"hits\": " << g.hitCount
               << ", \"misses\": " << g.missCount
               << ", \"hit_rate\": ";
            json::writeNumber(
                os, lookups ? static_cast<double>(g.hitCount) /
                                  static_cast<double>(lookups)
                            : 0.0);
            os << " }";
        }
    }
    os << "]";

    // Latency quantiles are wall clock through and through; they
    // only appear in timing mode, where responses already carry
    // latency_us fields.  (Named distinctly from the scalar
    // "latency_us" the response writer appends, so the stats object
    // never carries a duplicate key.)
    if (timing) {
        ServeObs &o = ServeObs::get();
        os << ", \"latency_quantiles_us\": { \"result\": ";
        writeQuantileObject(os, o.latencyResult);
        os << ", \"frontier\": ";
        writeQuantileObject(os, o.latencyFrontier);
        os << ", \"control\": ";
        writeQuantileObject(os, o.latencyControl);
        os << ", \"error\": ";
        writeQuantileObject(os, o.latencyError);
        os << ", \"queue_wait\": ";
        writeQuantileObject(
            os, obs::MetricsRegistry::global().histogram(
                    "admission.queue_wait_us"));
        os << " }";
    }
    os << "}";
    return os.str();
}

ServiceStats
EvalService::stats() const
{
    ServiceStats s;
    {
        std::lock_guard<std::mutex> lock(statsMtx);
        s = counters;
    }
    // Sequential (never nested) acquisition: statsMtx above, then
    // resolveMtx for the group list.
    std::lock_guard<std::mutex> lock(resolveMtx);
    s.cachedPoints = 0;
    for (const auto &group : groupList)
        s.cachedPoints += group->cache.size();
    return s;
}

} // namespace mech::serve
