/**
 * @file
 * The evaluation service behind mech_serve: resolve client requests
 * against the live registries and answer them through shared studies,
 * a shared thread pool, and per-group memoized evaluation caches.
 *
 * The unit of work here is a *client request*, not a study: requests
 * arrive naming arbitrary (benchmarks, backends, objectives)
 * combinations, so the service keeps
 *
 *   - a study pool: one DseStudy per benchmark name, profiled once
 *     (or loaded from a .mprof artifact) on first use and shared by
 *     every request that names the benchmark, with cumulative
 *     L2-geometry preparation so evaluations stay read-only;
 *   - evaluation groups: one per distinct
 *     (benchmarks, backends, objectives) combination, each owning a
 *     PR-4 EvalCache keyed by DesignPoint identity — repeat requests
 *     are answered from the memo without touching the pool;
 *   - one ThreadPool shared by every group, used only to compute
 *     cache misses (and to build studies).
 *
 * Concurrency: handleFlush() is safe to call from any number of
 * dispatcher threads at once (the epoll front end runs several).
 * Registry maps sit behind a resolve mutex, traffic counters behind
 * a stats mutex, and each study behind a reader-writer lock —
 * geometry preparation takes it exclusively, the evaluation fan-out
 * holds it shared (in a global study order, so concurrent flushes
 * over overlapping study sets cannot deadlock).
 *
 * Determinism: within one flush, hits and misses are classified and
 * inserted on the calling thread in request order — the exact
 * three-phase dance of SearchEvaluator::evaluateBatch() — so for a
 * single client session response bodies are byte-identical at any
 * worker count.  Across concurrent sessions the "cached" flags
 * truthfully reflect arrival interleaving (a point another session
 * just computed is a hit), which is inherently timing-dependent;
 * every numeric result is interleaving-independent.
 *
 * Warm-cache persistence: with a cache directory configured, each
 * group's EvalCache can be spilled on drain (persistCaches) and is
 * transparently reloaded when the group re-materializes after a
 * restart — see search/cache_io.hh for the format and its
 * invalidation rules.
 */

#ifndef MECH_SERVE_SERVICE_HH
#define MECH_SERVE_SERVICE_HH

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_pool.hh"
#include "common/types.hh"
#include "serve/protocol.hh"

namespace mech {
class DseStudy;
struct SearchEval;
}

namespace mech::serve {

/** Server-side configuration shared by every session. */
struct ServeConfig
{
    /** Dynamic instructions per benchmark trace when profiling. */
    InstCount traceLen = 50000;

    /** Directory of .mprof artifacts to load instead of profiling. */
    std::string profileDir;

    /** Worker threads (already sanitized); <= 1 evaluates inline. */
    unsigned threads = 1;

    /** Largest SpaceSpec a batch request may fan out. */
    std::uint64_t maxSpacePoints = 100000;

    /**
     * Directory of .mcache warm-cache spills: groups reload their
     * memo from here on first use, persistCaches() writes spills
     * back on drain.  Empty disables persistence.
     */
    std::string cacheDir;

    /** Benchmark set for requests that name none. */
    std::vector<std::string> defaultBench{"jpeg_c", "sha"};

    /** Backend set for requests that name none. */
    std::vector<std::string> defaultBackends{"model"};

    /** Objective set for requests that name none. */
    std::vector<std::string> defaultObjectives{"cpi"};

    /**
     * Optional `.mdesc` machine description to serve: loaded at
     * construction and installed as the process-wide latency spec,
     * so every backend evaluates the described machine.  Empty
     * serves the built-in Table 1 parameters.
     */
    std::string mdescPath;
};

/** Service-wide evaluation-traffic accounting (all deterministic). */
struct ServiceStats
{
    /** Point lookups requested (eval requests + batch fan-outs). */
    std::uint64_t requested = 0;

    /** Lookups served from a group's memo. */
    std::uint64_t hits = 0;

    /** Fresh evaluations computed. */
    std::uint64_t misses = 0;

    /** Data-plane requests answered, by kind. */
    std::uint64_t evalRequests = 0;
    std::uint64_t batchRequests = 0;

    /** Requests answered with an error response. */
    std::uint64_t errors = 0;

    /** Of those errors, requests shed by admission control. */
    std::uint64_t shed = 0;

    /** Distinct (bench, backends, objectives) groups materialized. */
    std::uint64_t groups = 0;

    /** Memoized design points across all groups. */
    std::uint64_t cachedPoints = 0;

    /** Points reloaded from warm-cache spills (--cache-dir). */
    std::uint64_t restored = 0;

    /** Hits over requested (0 before any request). */
    double
    hitRate() const
    {
        return requested
                   ? static_cast<double>(hits) /
                         static_cast<double>(requested)
                   : 0.0;
    }
};

/** The long-running evaluation engine behind every server session. */
class EvalService
{
  public:
    explicit EvalService(ServeConfig cfg);
    ~EvalService();

    EvalService(const EvalService &) = delete;
    EvalService &operator=(const EvalService &) = delete;

    /**
     * Answer one coalesced flush of data-plane (eval/batch) requests.
     *
     * Returns exactly one response body per request, in request
     * order: a "result" line per eval, a "frontier" line per batch,
     * or an "error" line for any request that fails resolution.
     * Bodies carry no latency fields (the ResponseWriter appends
     * those) and no thread-count-dependent data.  Callable
     * concurrently from multiple dispatcher threads.
     */
    std::vector<std::string>
    handleFlush(const std::vector<ServeRequest> &requests);

    /** Answer an info request (registries, defaults, limits). */
    std::string infoResponse(const std::string &id_json) const;

    /**
     * Answer a stats request, or — for @p type Shutdown — the final
     * "bye" accounting line of a graceful drain.  The response
     * carries the traffic counters, uptime, and per-group cache
     * occupancy/hit-rate; with @p timing set (the server's
     * non-deterministic mode) it additionally reports wall-clock
     * latency-histogram quantiles.  With @p timing false every field
     * is deterministic (uptime_ms reads 0), so golden streams stay
     * byte-identical.
     */
    std::string statsResponse(const std::string &id_json,
                              RequestType type, bool timing) const;

    /**
     * Account @p n requests rejected by admission control (they were
     * answered with "overloaded" errors at the server layer and never
     * reached handleFlush).
     */
    void noteShedRequests(std::uint64_t n);

    /**
     * Spill every group's EvalCache to the configured cache
     * directory (no-op without one).  Returns the number of spill
     * files written; failures warn and continue.  The front ends
     * call this once on graceful drain.
     */
    std::size_t persistCaches(std::ostream *log = nullptr) const;

    /** Current accounting snapshot. */
    ServiceStats stats() const;

    /** The service configuration. */
    const ServeConfig &config() const { return cfg; }

  private:
    struct Group;
    struct StudyEntry;

    /** Per-flush cache accounting (per call, not global deltas). */
    struct FlushCounts
    {
        std::uint64_t requested = 0;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
    };

    /** Resolve names; null plus @p error on failure. */
    Group *resolveGroup(const ServeRequest &req, std::string *error);

    /** The study-pool entry for @p bench, building it on first use. */
    void buildStudies(const std::vector<std::string> &names);

    /** Reload @p group's memo from its spill file, if one is valid. */
    void loadSpill(Group &group);

    /** Memoize any unprepared L2 geometries of @p points. */
    void prepareGeometries(Group &group,
                           const std::vector<DesignPoint> &points);

    /**
     * Evaluate @p points through @p group's memo (deterministic
     * three-phase hit/miss split).  @p was_hit gets one flag per
     * point: true when it was answered without a fresh evaluation.
     * @p counts (optional) receives this call's own accounting.
     */
    std::vector<const SearchEval *>
    evaluatePoints(Group &group,
                   const std::vector<DesignPoint> &points,
                   std::vector<bool> *was_hit,
                   FlushCounts *counts = nullptr);

    std::string evalResponse(const ServeRequest &req, Group &group,
                             const SearchEval &eval, bool was_hit);

    /** @p ok reports whether the body is a frontier (vs an error). */
    std::string batchResponse(const ServeRequest &req, Group &group,
                              bool *ok);

    ServeConfig cfg;
    ThreadPool pool;

    /** Guards studies, groupList and groupIndex (a leaf-ward lock:
     *  statsMtx may nest inside it, never the reverse). */
    mutable std::mutex resolveMtx;
    std::map<std::string, std::unique_ptr<StudyEntry>> studies;
    std::vector<std::unique_ptr<Group>> groupList;
    std::map<std::string, Group *> groupIndex;

    /** Guards counters and per-group traffic; strictly a leaf lock. */
    mutable std::mutex statsMtx;
    ServiceStats counters;

    /** Service construction time, for the stats uptime field. */
    const std::chrono::steady_clock::time_point startTime =
        std::chrono::steady_clock::now();
};

} // namespace mech::serve

#endif // MECH_SERVE_SERVICE_HH
