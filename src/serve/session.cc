#include "serve/session.hh"

#include <istream>
#include <ostream>

#include "common/json.hh"
#include "common/logging.hh"
#include "obs/trace.hh"
#include "serve/serve_obs.hh"

namespace mech::serve {

bool
IstreamLineSource::nextLine(std::string &line)
{
    if (!std::getline(is, line))
        return false;
    if (line.size() > kMaxRequestBytes) {
        // Keep the cap's worth so the session can report the
        // overflow; the getline above already consumed the rest.
        line.resize(kMaxRequestBytes + 1);
    }
    return true;
}

bool
IstreamLineSource::moreBuffered()
{
    // in_avail() counts bytes already sitting in the stream buffer: a
    // piped file keeps it positive until the buffer drains, while an
    // interactive client leaves it at zero between requests — exactly
    // the "flush now or coalesce more?" signal we need.
    return is.good() && is.rdbuf()->in_avail() > 0;
}

void
ResponseWriter::write(const std::string &body, double latency_us)
{
    MECH_ASSERT(!body.empty() && body.back() == '}',
                "response body must be a JSON object");
    ++count;
    recordResponseLatency(body, latency_us);
    // A cheap, structural check: every error body starts with the
    // same head the protocol serializer produced.
    if (body.find("\"type\": \"error\"") != std::string::npos &&
        body.find("\"error\": ") != std::string::npos) {
        ++errorCount;
    }
    if (!latencyFields) {
        os << body << '\n';
        return;
    }
    os.write(body.data(),
             static_cast<std::streamsize>(body.size() - 1));
    os << ", \"latency_us\": ";
    json::writeNumber(os, latency_us);
    os << "}\n";
}

void
ResponseWriter::flush()
{
    os.flush();
}

ServerSession::ServerSession(EvalService &service, LineSource &source,
                             std::ostream &out, SessionOptions opts)
    : service(service), source(source),
      writer(out, opts.latencyFields), queue(opts.maxBatch), opts(opts)
{
}

namespace {

double
microsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start)
        .count();
}

bool
isBlank(const std::string &line)
{
    for (char c : line) {
        if (c != ' ' && c != '\t' && c != '\r')
            return false;
    }
    return true;
}

} // namespace

void
ServerSession::flushQueue()
{
    if (queue.empty())
        return;
    obs::TraceSpan span("session.flush", "serve");
    std::vector<PendingLine> lines = queue.take();

    // The service answers the well-formed requests as one coalesced
    // batch; garbage lines keep their slot so response N always
    // answers line N.
    std::vector<ServeRequest> requests;
    requests.reserve(lines.size());
    for (const PendingLine &line : lines) {
        if (line.ok())
            requests.push_back(line.request);
    }
    std::vector<std::string> bodies = service.handleFlush(requests);

    std::size_t next = 0;
    for (const PendingLine &line : lines) {
        const std::string body =
            line.ok() ? bodies[next++]
                      : errorResponse(line.idJson, line.error);
        writer.write(body, microsSince(line.received));
    }
    writer.flush();
}

SessionStats
ServerSession::run()
{
    std::string line;
    while (source.nextLine(line)) {
        if (isBlank(line))
            continue;
        ++stats.lines;

        PendingLine pending;
        pending.received = std::chrono::steady_clock::now();
        if (line.size() > kMaxRequestBytes) {
            pending.error =
                "request line exceeds " +
                std::to_string(kMaxRequestBytes) + " bytes";
        } else {
            ParseOutcome outcome = parseRequest(line);
            pending.idJson = outcome.idJson;
            if (!outcome.ok()) {
                pending.error = outcome.error;
            } else if (outcome.request->type == RequestType::Info ||
                       outcome.request->type == RequestType::Stats ||
                       outcome.request->type ==
                           RequestType::Shutdown) {
                // Control requests act on drained state: answer
                // everything already queued first.
                flushQueue();
                const ServeRequest &req = *outcome.request;
                std::string body =
                    req.type == RequestType::Info
                        ? service.infoResponse(req.idJson)
                        : service.statsResponse(req.idJson, req.type,
                                                opts.latencyFields);
                writer.write(body, microsSince(pending.received));
                writer.flush();
                if (req.type == RequestType::Shutdown) {
                    stats.shutdownRequested = true;
                    break;
                }
                continue;
            } else {
                pending.request = *outcome.request;
            }
        }
        queue.push(pending);
        if (queue.full() || !source.moreBuffered())
            flushQueue();
    }
    flushQueue();
    stats.responses = writer.written();
    stats.errors = writer.errorsWritten();
    return stats;
}

} // namespace mech::serve
