/**
 * @file
 * One client's conversation with the service: the pipelined
 * read-coalesce-evaluate-respond loop shared by the stdio and TCP
 * front ends.
 *
 * A ServerSession reads newline-delimited requests from a
 * LineSource, batches them through a RequestQueue, answers through
 * the shared EvalService, and streams responses (one line per
 * request, in request order) through a ResponseWriter that appends
 * per-response latency and keeps traffic accounting.
 *
 * Coalescing policy: keep reading while more input is immediately
 * available and the batch cap is not reached; flush when the source
 * would block (an interactive client gets its answer right away), at
 * the cap, on a control request, and at EOF.  Because the service's
 * accounting is flush-boundary independent, this is purely a
 * throughput knob — the response stream is byte-identical however
 * the input was paced or chunked.
 */

#ifndef MECH_SERVE_SESSION_HH
#define MECH_SERVE_SESSION_HH

#include <cstdint>
#include <iosfwd>
#include <string>

#include "serve/request_queue.hh"
#include "serve/service.hh"

namespace mech::serve {

/** A source of request lines (stdin, a socket, a test string). */
class LineSource
{
  public:
    virtual ~LineSource() = default;

    /**
     * Read the next line (without its newline) into @p line.
     * Returns false at end of stream.  Oversized lines (beyond
     * kMaxRequestBytes) are truncated to the cap, with the rest of
     * the physical line consumed and discarded — the session turns
     * the truncation into an error response.
     */
    virtual bool nextLine(std::string &line) = 0;

    /** True when another line can be read without blocking. */
    virtual bool moreBuffered() = 0;
};

/** LineSource over a std::istream (stdin, test stringstreams). */
class IstreamLineSource : public LineSource
{
  public:
    explicit IstreamLineSource(std::istream &is) : is(is) {}

    bool nextLine(std::string &line) override;
    bool moreBuffered() override;

  private:
    std::istream &is;
};

/** Per-session knobs (the server's --max-batch / --deterministic). */
struct SessionOptions
{
    /** Most requests coalesced into one service flush. */
    std::size_t maxBatch = 64;

    /** Append "latency_us" to responses (off => fully reproducible). */
    bool latencyFields = true;
};

/** One session's traffic counters. */
struct SessionStats
{
    std::uint64_t lines = 0;     ///< non-blank lines read
    std::uint64_t responses = 0; ///< response lines written
    std::uint64_t errors = 0;    ///< of which error responses
    bool shutdownRequested = false;
};

/**
 * Response serializer: one JSON line per response, with optional
 * latency annotation.
 *
 * Latency is measured from line arrival to response write — it
 * includes the coalescing wait, which is the number a client
 * experiences.  The field is appended by this writer (bodies arrive
 * latency-free from the service), so switching it off yields the
 * deterministic stream CI diffs against a golden file.
 */
class ResponseWriter
{
  public:
    ResponseWriter(std::ostream &os, bool latency_fields)
        : os(os), latencyFields(latency_fields)
    {
    }

    /** Write one response body, annotating @p latency_us if enabled. */
    void write(const std::string &body, double latency_us);

    /** Flush the underlying stream (once per batch). */
    void flush();

    std::uint64_t written() const { return count; }
    std::uint64_t errorsWritten() const { return errorCount; }

  private:
    std::ostream &os;
    bool latencyFields;
    std::uint64_t count = 0;
    std::uint64_t errorCount = 0;
};

/** The pipelined request/response loop for one client. */
class ServerSession
{
  public:
    ServerSession(EvalService &service, LineSource &source,
                  std::ostream &out, SessionOptions opts);

    /**
     * Serve until end of stream or a shutdown request (which drains
     * pending requests and answers with a final "bye" line).
     */
    SessionStats run();

  private:
    void flushQueue();

    EvalService &service;
    LineSource &source;
    ResponseWriter writer;
    RequestQueue queue;
    SessionOptions opts;
    SessionStats stats;
};

} // namespace mech::serve

#endif // MECH_SERVE_SESSION_HH
