#include "serve/shard.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/json.hh"
#include "search/pareto.hh"
#include "serve/protocol.hh"

namespace mech::serve {

void
writeObjectiveObject(std::ostream &os,
                     const std::vector<Objective> &objs,
                     const std::vector<double> &values,
                     std::size_t base)
{
    os << "{ ";
    for (std::size_t k = 0; k < objs.size(); ++k) {
        if (k)
            os << ", ";
        json::writeString(os, objs[k].name);
        os << ": ";
        json::writeNumber(os, values[base + k]);
    }
    os << " }";
}

namespace {

void
writeNameArray(std::ostream &os, const std::vector<std::string> &names)
{
    os << '[';
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (i)
            os << ", ";
        json::writeString(os, names[i]);
    }
    os << ']';
}

} // namespace

std::string
frontierResponse(const std::string &id_json,
                 const std::string &space_describe,
                 std::uint64_t space_size,
                 const std::string &backend_name,
                 const std::vector<Objective> &objectives,
                 const std::vector<std::string> &bench,
                 const std::vector<FrontierEntry> &entries,
                 const GatherCounts &cache)
{
    // Frontier over the fan-out, on the "lower is better" scale of
    // the single backend's objectives; indices ascend, so frontier
    // entries come back in enumeration order.
    const std::size_t k_objs = objectives.size();
    std::vector<std::vector<double>> costs;
    costs.reserve(entries.size());
    for (const FrontierEntry &e : entries) {
        std::vector<double> row(k_objs);
        for (std::size_t k = 0; k < k_objs; ++k)
            row[k] = objectives[k].normalized(e.objectives[k]);
        costs.push_back(std::move(row));
    }
    std::vector<std::size_t> frontier = paretoFrontier(costs);

    std::size_t best = 0;
    for (std::size_t i = 1; i < entries.size(); ++i) {
        if (costs[i][0] < costs[best][0])
            best = i;
    }

    std::vector<std::string> obj_names;
    for (const Objective &obj : objectives)
        obj_names.push_back(obj.name);

    auto entry = [&](std::ostream &os, std::size_t idx) {
        os << "{ \"point\": ";
        json::writeString(os, entries[idx].pointKey);
        os << ", \"label\": ";
        json::writeString(os, entries[idx].label);
        os << ", \"objectives\": ";
        writeObjectiveObject(os, objectives, entries[idx].objectives,
                             0);
        os << " }";
    };

    std::ostringstream os;
    os << responseHead(id_json, "frontier") << ", \"space\": ";
    json::writeString(os, space_describe);
    os << ", \"space_size\": " << space_size;
    os << ", \"backend\": ";
    json::writeString(os, backend_name);
    os << ", \"objectives\": ";
    writeNameArray(os, obj_names);
    os << ", \"bench\": ";
    writeNameArray(os, bench);
    os << ", \"evaluations\": " << space_size;
    os << ", \"cache\": { \"requested\": " << cache.requested
       << ", \"hits\": " << cache.hits
       << ", \"misses\": " << cache.misses << " }";
    os << ", \"best\": ";
    entry(os, best);
    os << ", \"frontier\": [";
    for (std::size_t i = 0; i < frontier.size(); ++i) {
        os << (i ? ", " : "");
        entry(os, frontier[i]);
    }
    os << "]}";
    return os.str();
}

namespace {

bool
sendAll(int fd, const char *data, std::size_t size,
        std::string *error)
{
    std::size_t off = 0;
    while (off < size) {
        const ssize_t put = ::send(fd, data + off, size - off, 0);
        if (put < 0) {
            if (errno == EINTR)
                continue;
            *error = std::string("send(): ") + std::strerror(errno);
            return false;
        }
        off += static_cast<std::size_t>(put);
    }
    return true;
}

/** Move complete lines from @p buffer into @p responses. */
void
splitLines(std::string &buffer, std::vector<std::string> *responses)
{
    for (;;) {
        const std::size_t nl = buffer.find('\n');
        if (nl == std::string::npos)
            return;
        responses->push_back(buffer.substr(0, nl));
        buffer.erase(0, nl + 1);
    }
}

} // namespace

LoopbackClient::~LoopbackClient()
{
    close();
}

void
LoopbackClient::close()
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

bool
LoopbackClient::connect(unsigned short port, std::string *error)
{
    close();
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        *error = std::string("socket(): ") + std::strerror(errno);
        return false;
    }
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        *error = "connect(127.0.0.1:" + std::to_string(port) +
                 "): " + std::strerror(errno);
        close();
        return false;
    }
    return true;
}

bool
LoopbackClient::run(const std::vector<std::string> &lines,
                    std::vector<std::string> *responses,
                    std::string *error, std::size_t window,
                    std::vector<double> *latencies_us)
{
    if (fd < 0) {
        *error = "not connected";
        return false;
    }
    if (window == 0)
        window = 1;
    using clock = std::chrono::steady_clock;
    std::size_t sent = 0;
    std::string inbuf;
    std::vector<clock::time_point> sendTimes;
    if (latencies_us)
        sendTimes.reserve(lines.size());
    // Responses arrive strictly in request order, so response j pairs
    // with send time j when measuring client-observed latency.
    auto noteLatencies = [&](std::size_t before) {
        if (!latencies_us)
            return;
        const clock::time_point now = clock::now();
        for (std::size_t j = before; j < responses->size(); ++j) {
            const double us =
                j < sendTimes.size()
                    ? std::chrono::duration<double, std::micro>(
                          now - sendTimes[j])
                          .count()
                    : 0.0;
            latencies_us->push_back(us);
        }
    };
    while (responses->size() < lines.size()) {
        // Top up the window, then flush it in one send.
        std::string burst;
        while (sent < lines.size() &&
               sent - responses->size() < window) {
            burst += lines[sent];
            burst += '\n';
            ++sent;
        }
        if (!burst.empty()) {
            if (!sendAll(fd, burst.data(), burst.size(), error))
                return false;
            if (latencies_us)
                sendTimes.resize(sent, clock::now());
        }

        char chunk[1 << 16];
        ssize_t got;
        do {
            got = ::recv(fd, chunk, sizeof(chunk), 0);
        } while (got < 0 && errno == EINTR);
        if (got < 0) {
            *error = std::string("recv(): ") + std::strerror(errno);
            return false;
        }
        if (got == 0) {
            const std::size_t before = responses->size();
            splitLines(inbuf, responses);
            noteLatencies(before);
            if (responses->size() == lines.size())
                return true;
            *error = "server closed after " +
                     std::to_string(responses->size()) + " of " +
                     std::to_string(lines.size()) + " responses";
            return false;
        }
        inbuf.append(chunk, static_cast<std::size_t>(got));
        const std::size_t before = responses->size();
        splitLines(inbuf, responses);
        noteLatencies(before);
    }
    return true;
}

bool
LoopbackClient::flood(const std::vector<std::string> &lines,
                      std::vector<std::string> *responses,
                      std::string *error)
{
    if (fd < 0) {
        *error = "not connected";
        return false;
    }
    std::string payload;
    for (const std::string &line : lines) {
        payload += line;
        payload += '\n';
    }
    if (!sendAll(fd, payload.data(), payload.size(), error))
        return false;
    ::shutdown(fd, SHUT_WR);

    std::string inbuf;
    for (;;) {
        char chunk[1 << 16];
        ssize_t got;
        do {
            got = ::recv(fd, chunk, sizeof(chunk), 0);
        } while (got < 0 && errno == EINTR);
        if (got < 0) {
            *error = std::string("recv(): ") + std::strerror(errno);
            return false;
        }
        if (got == 0) {
            splitLines(inbuf, responses);
            return true;
        }
        inbuf.append(chunk, static_cast<std::size_t>(got));
        splitLines(inbuf, responses);
    }
}

} // namespace mech::serve
