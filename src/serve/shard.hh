/**
 * @file
 * Sharded scatter-gather over mech_serve instances, plus the small
 * loopback client the tools, benchmarks and smokes drive servers
 * with.
 *
 * mech_shard splits a SpaceSpec across N server processes by
 * DesignPoint hash (shardOf), pipelines one eval request per point to
 * the owning shard, gathers the objective values back, and assembles
 * the exact frontier response one server would have produced for the
 * whole batch.  Byte-identity holds because (a) every shard computes
 * the same deterministic objective values, (b) json::writeNumber
 * round-trips doubles exactly, so values gathered over the wire
 * re-serialize to the same bytes, and (c) the response body itself is
 * built by frontierResponse() — the same function the in-process
 * batch path uses.
 *
 * The LoopbackClient is deliberately windowed: it keeps at most
 * `window` requests outstanding per connection so a large scatter
 * never trips the server's admission control (window must stay at or
 * below the server's per-session in-flight bound).
 */

#ifndef MECH_SERVE_SHARD_HH
#define MECH_SERVE_SHARD_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "dse/design_space.hh"
#include "search/objective.hh"

namespace mech::serve {

/** The shard (of @p shards) that owns @p point, by stable hash. */
inline std::size_t
shardOf(const DesignPoint &point, std::size_t shards)
{
    return shards ? static_cast<std::size_t>(point.hash() % shards)
                  : 0;
}

/** One evaluated point of a frontier response, in response layout. */
struct FrontierEntry
{
    std::string pointKey;
    std::string label;

    /** Aggregate objective values, one per objective, in order. */
    std::vector<double> objectives;
};

/**
 * Emit `{ "<obj>": v, ... }` for one objective-value slice starting
 * at @p base of @p values (shared by the eval and frontier paths so
 * their number formatting cannot drift).
 */
void writeObjectiveObject(std::ostream &os,
                          const std::vector<Objective> &objs,
                          const std::vector<double> &values,
                          std::size_t base);

/** Cache accounting of one gathered batch. */
struct GatherCounts
{
    std::uint64_t requested = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
};

/**
 * Serialize the "frontier" response for @p entries (the whole
 * enumerated space, in enumeration order).  Computes normalized
 * costs, the Pareto frontier and the best-by-first-objective entry
 * internally; both the in-process batch path and mech_shard's gather
 * path call this, which is what keeps them byte-identical.
 */
std::string frontierResponse(const std::string &id_json,
                             const std::string &space_describe,
                             std::uint64_t space_size,
                             const std::string &backend_name,
                             const std::vector<Objective> &objectives,
                             const std::vector<std::string> &bench,
                             const std::vector<FrontierEntry> &entries,
                             const GatherCounts &cache);

/**
 * A blocking loopback NDJSON client with windowed pipelining: sends
 * @p lines (newlines appended) keeping at most @p window outstanding,
 * and collects one response line per request line.
 */
class LoopbackClient
{
  public:
    /** Connect to 127.0.0.1:@p port; false + error on failure. */
    bool connect(unsigned short port, std::string *error);

    /** Close the connection (also done by the destructor). */
    void close();

    ~LoopbackClient();

    /**
     * Pipeline @p lines and collect exactly one response line each,
     * in order.  Returns false (with the responses gathered so far)
     * on a connection error or a premature server close.
     *
     * With @p latencies_us, additionally records one client-observed
     * send-to-receive latency (microseconds) per gathered response,
     * in response order — the client half of the replay summary
     * table.  Purely observational: the request/response byte
     * streams are identical either way.
     */
    bool run(const std::vector<std::string> &lines,
             std::vector<std::string> *responses, std::string *error,
             std::size_t window = 64,
             std::vector<double> *latencies_us = nullptr);

    /**
     * Flood mode: write every line immediately, half-close, and read
     * until the server closes — no windowing, no response counting.
     * This is what overload smokes use to slam admission control.
     */
    bool flood(const std::vector<std::string> &lines,
               std::vector<std::string> *responses,
               std::string *error);

  private:
    int fd = -1;
};

} // namespace mech::serve

#endif // MECH_SERVE_SHARD_HH
