#include "sim/inorder_sim.hh"

#include <array>
#include <deque>
#include <limits>

#include "common/logging.hh"

namespace mech {

namespace {

/** Sentinel "not known yet" cycle. */
constexpr Cycles kUnknown = std::numeric_limits<Cycles>::max();

/** An instruction in the execute or memory stage. */
struct StageEntry
{
    std::uint64_t idx = 0; ///< dynamic trace index
    Cycles doneAt = 0;     ///< first cycle it may leave the stage
    bool serialized = false; ///< blocks its stage while in service
};

/**
 * The pipeline state machine.
 *
 * One instance simulates one trace; per-cycle processing moves
 * instructions downstream-first so a handoff takes effect on the next
 * stage in the same clock (simultaneous shift semantics), while each
 * instruction advances at most one stage per cycle.
 */
class Pipeline
{
  public:
    Pipeline(const Trace &trace, const SimConfig &config)
        : trace(trace), cfg(config), machine(config.machine),
          hier(config.hierarchy),
          predictor(makePredictor(config.predictor)),
          feStages(config.machine.frontendDepth)
    {
        machine.validate();
        regReadyAt.fill(0);
    }

    SimResult run();

  private:
    /** Process one full cycle @p t. */
    void step(Cycles t);

    void retireFromMem(Cycles t);
    void execToMem(Cycles t);
    void issue(Cycles t);
    void shiftFrontEnd();
    void fetch(Cycles t);

    /** True when every source of @p di is forwardable at cycle @p t. */
    bool
    operandsReady(const DynInstr &di, Cycles t) const
    {
        for (RegIndex src : {di.src1, di.src2}) {
            if (src != kNoReg && regReadyAt[src] > t)
                return false;
        }
        return true;
    }

    /** Memory-stage service demand of one instruction. */
    struct MemService
    {
        Cycles occupancy = 1;

        /**
         * True when the access holds the (single) miss port: L2/memory
         * service and page walks serialize; L1 hits are pipelined at
         * full width.
         */
        bool serialized = false;
    };

    /** Probe the data side and compute @p di's memory-stage demand. */
    MemService
    memService(const DynInstr &di)
    {
        MemService svc;
        if (di.op == OpClass::Load) {
            if (cfg.perfectDCache) {
                svc.occupancy = machine.dl1HitCycles;
                svc.serialized = svc.occupancy > 1;
                return svc;
            }
            HierAccess acc = hier.data(di.effAddr, false);
            if (cfg.perfectTlbs)
                acc.tlbMiss = false;
            svc.occupancy = machine.dl1HitCycles;
            if (acc.level == MemLevel::L2) {
                svc.occupancy = machine.l2HitCycles;
                svc.serialized = true;
            } else if (acc.level == MemLevel::Memory) {
                svc.occupancy = machine.l2HitCycles + machine.memCycles;
                svc.serialized = true;
            }
            if (acc.tlbMiss) {
                svc.occupancy += machine.tlbMissCycles;
                svc.serialized = true;
            }
        } else if (di.op == OpClass::Store) {
            // Probe to keep cache/TLB state identical to the profiler;
            // the ideal store buffer hides all store latency.
            if (!cfg.perfectDCache)
                (void)hier.data(di.effAddr, true);
        }
        return svc;
    }

    const Trace &trace;
    SimConfig cfg;
    MachineParams machine;
    CacheHierarchy hier;
    std::unique_ptr<BranchPredictor> predictor;

    /** regReadyAt[r]: first cycle a consumer entering EX may read r. */
    std::array<Cycles, kNumArchRegs> regReadyAt{};

    /** Front-end stages; [0] = fetch output, [D-1] = decode buffer. */
    std::vector<std::deque<std::uint64_t>> feStages;

    /** Execute-stage contents (<= W). */
    std::deque<StageEntry> ex;

    /** Memory-stage contents (<= W). */
    std::deque<StageEntry> mem;

    std::uint64_t nextFetchIdx = 0;
    std::uint64_t retired = 0;

    /** Last trace index probed against the instruction side. */
    std::uint64_t probedFetchIdx = kUnknown;

    /** Fetch stalled until this cycle (miss / taken bubble). */
    Cycles fetchReadyAt = 0;

    /** Trace index of an unresolved mispredicted branch, if any. */
    std::uint64_t pendingRedirectIdx = kUnknown;

    /** Diagnostics. */
    SimResult stats;

    /** Cause of the current fetch stall (diagnostics only). */
    enum class FetchStall : std::uint8_t { None, Miss, TakenBubble };
    FetchStall fetchStallCause = FetchStall::None;
};

void
Pipeline::retireFromMem(Cycles t)
{
    std::uint32_t moved = 0;
    while (!mem.empty() && moved < machine.width) {
        if (mem.front().doneAt > t)
            break; // in-order: younger entries cannot pass
        mem.pop_front();
        ++retired;
        ++moved;
    }
}

void
Pipeline::execToMem(Cycles t)
{
    // A missing load "blocks up the memory stage" (paper SS2.2): while
    // a serialized access is in service, nothing enters the stage.
    for (const auto &entry : mem) {
        if (entry.serialized && entry.doneAt > t)
            return;
    }

    std::uint32_t moved = 0;
    while (!ex.empty() && moved < machine.width &&
           mem.size() < machine.width) {
        const StageEntry &head = ex.front();
        if (head.doneAt > t)
            break; // oldest not finished: in-order block

        const DynInstr &di = trace[head.idx];
        MemService svc = memService(di);
        StageEntry entry;
        entry.idx = head.idx;
        entry.serialized = svc.serialized;
        entry.doneAt = t + svc.occupancy;

        // Loads produce their value when leaving the memory stage.
        if (di.op == OpClass::Load && di.hasDst())
            regReadyAt[di.dst] = entry.doneAt;

        mem.push_back(entry);
        ex.pop_front();
        ++moved;

        // A serialized access admits nothing behind it this cycle.
        if (svc.serialized)
            break;
    }
}

void
Pipeline::issue(Cycles t)
{
    auto &decode = feStages[machine.frontendDepth - 1];
    std::uint32_t moved = 0;
    bool stalled_on_deps = false;

    // A long-latency instruction in execute "blocks all subsequent
    // instructions" (paper SS2.2, in-order commit): no issue while one
    // is still executing.
    for (const auto &entry : ex) {
        if (entry.serialized && entry.doneAt > t) {
            if (!decode.empty())
                ++stats.backPressureStallCycles;
            return;
        }
    }

    while (!decode.empty() && moved < machine.width &&
           ex.size() < machine.width) {
        std::uint64_t idx = decode.front();
        const DynInstr &di = trace[idx];

        if (!operandsReady(di, t)) {
            stalled_on_deps = true;
            break; // stall-on-use: this and all younger wait
        }

        Cycles lat = machine.execLatency(di.op);
        ex.push_back({idx, t + lat, lat > 1});

        if (di.hasDst()) {
            // Unit and long-latency results forward out of execute;
            // loads resolve later, at memory-stage entry.
            regReadyAt[di.dst] =
                di.op == OpClass::Load ? kUnknown : t + lat;
        }

        if (isBranch(di.op) && idx == pendingRedirectIdx) {
            // Misprediction resolves at the end of execute: the front
            // end restarts on the correct path next cycle.
            fetchReadyAt = t + lat;
            pendingRedirectIdx = kUnknown;
            fetchStallCause = FetchStall::None;
        }

        decode.pop_front();
        ++moved;

        // A just-issued long-latency instruction immediately blocks
        // everything younger.
        if (lat > 1)
            break;
    }

    if (moved == 0 && !decode.empty()) {
        if (stalled_on_deps)
            ++stats.dependencyStallCycles;
        else
            ++stats.backPressureStallCycles;
    }
}

void
Pipeline::shiftFrontEnd()
{
    for (std::size_t s = feStages.size() - 1; s >= 1; --s) {
        auto &to = feStages[s];
        auto &from = feStages[s - 1];
        while (!from.empty() && to.size() < machine.width) {
            to.push_back(from.front());
            from.pop_front();
        }
    }
}

void
Pipeline::fetch(Cycles t)
{
    if (nextFetchIdx >= trace.size())
        return;

    if (pendingRedirectIdx != kUnknown) {
        ++stats.mispredictStallCycles;
        return;
    }
    if (fetchReadyAt > t) {
        if (fetchStallCause == FetchStall::Miss)
            ++stats.fetchMissStallCycles;
        else if (fetchStallCause == FetchStall::TakenBubble)
            ++stats.takenBubbleCycles;
        return;
    }
    fetchStallCause = FetchStall::None;

    auto &stage0 = feStages[0];
    std::uint32_t fetched = 0;
    while (fetched < machine.width && stage0.size() < machine.width &&
           nextFetchIdx < trace.size()) {
        const DynInstr &di = trace[nextFetchIdx];

        // Probe the instruction side exactly once per instruction (the
        // profiler sees the very same access stream).  On a miss the
        // instruction is NOT consumed: it waits for its line, while
        // anything fetched earlier this cycle proceeds down the pipe.
        if (nextFetchIdx != probedFetchIdx && !cfg.perfectICache) {
            HierAccess acc = hier.fetch(di.pc);
            probedFetchIdx = nextFetchIdx;

            Cycles stall = 0;
            if (acc.level == MemLevel::L2)
                stall += machine.l2HitCycles;
            else if (acc.level == MemLevel::Memory)
                stall += machine.l2HitCycles + machine.memCycles;
            if (acc.tlbMiss && !cfg.perfectTlbs)
                stall += machine.tlbMissCycles;

            if (stall > 0) {
                fetchReadyAt = t + stall;
                fetchStallCause = FetchStall::Miss;
                break;
            }
        }

        stage0.push_back(nextFetchIdx);
        ++nextFetchIdx;
        ++fetched;

        if (isBranch(di.op)) {
            bool predicted = predictor->predict(di.pc);
            predictor->update(di.pc, di.taken);
            if (predicted != di.taken) {
                ++stats.mispredicts;
                // Wrong path: nothing useful can be fetched until the
                // branch resolves in execute.
                pendingRedirectIdx = nextFetchIdx - 1;
                break;
            }
            if (predicted) {
                ++stats.predictedTakenCorrect;
                // Redirect is known one cycle after fetch: one bubble.
                fetchReadyAt = t + 2;
                fetchStallCause = FetchStall::TakenBubble;
                break;
            }
        }
    }
}

void
Pipeline::step(Cycles t)
{
    retireFromMem(t);
    execToMem(t);
    issue(t);
    shiftFrontEnd();
    fetch(t);
}

SimResult
Pipeline::run()
{
    Cycles t = 0;
    const Cycles guard =
        trace.size() * (machine.l2HitCycles + machine.memCycles +
                        machine.tlbMissCycles + 64) +
        1000000;
    while (retired < trace.size()) {
        step(t);
        ++t;
        if (t > guard)
            panic("pipeline deadlock: retired ", retired, " of ",
                  trace.size(), " instructions after ", t, " cycles");
    }
    stats.cycles = t;
    stats.retired = retired;
    return stats;
}

} // namespace

SimResult
simulateInOrder(const Trace &trace, const SimConfig &config)
{
    if (trace.empty())
        return SimResult{};
    Pipeline pipe(trace, config);
    return pipe.run();
}

} // namespace mech
