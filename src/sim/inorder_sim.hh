/**
 * @file
 * Cycle-accurate superscalar in-order pipeline simulator.
 *
 * This is the reproduction's stand-in for the paper's detailed M5
 * simulation: a trace-driven, W-wide, in-order pipeline implementing
 * the microarchitecture contract of paper §2.2 / DESIGN.md §3:
 *
 *  - D front-end stages (fetch .. decode), each holding up to W
 *    instructions, then execute / memory / writeback;
 *  - full forwarding, stall-on-use at the decode->execute boundary;
 *  - long-latency instructions block the execute stage (in-order
 *    commit / precise interrupts);
 *  - loads produce in the memory stage; a missing load blocks it;
 *  - branches predicted one cycle after fetch (taken predictions cost
 *    one fetch bubble), resolved in execute (mispredictions restart
 *    the front end);
 *  - stores never block (ideal store buffer).
 *
 * Wrong-path fetch is not simulated (the trace holds the correct path
 * only): a mispredicted branch stalls fetch until it resolves, which
 * reproduces the refill penalty without wrong-path cache pollution —
 * consistent with the profiler, and with the paper's decision not to
 * model such second-order effects.
 *
 * Everything the analytical model does NOT capture — overlap of miss
 * events with long-latency execution, back-pressure, burstiness —
 * emerges here naturally; the gap between this simulator and the
 * model is exactly the "second-order effects" error source the paper
 * discusses (§5).
 */

#ifndef MECH_SIM_INORDER_SIM_HH
#define MECH_SIM_INORDER_SIM_HH

#include <cstdint>
#include <vector>

#include "branch/predictor.hh"
#include "cache/hierarchy.hh"
#include "isa/machine_params.hh"
#include "trace/trace.hh"

namespace mech {

/** Full simulator configuration. */
struct SimConfig
{
    /** Core parameters (width, depths, latencies). */
    MachineParams machine;

    /** Memory hierarchy geometry. */
    HierarchyConfig hierarchy;

    /** Branch predictor design. */
    PredictorKind predictor = PredictorKind::Gshare1K;

    /**
     * Idealization knobs: never-missing instruction cache, data cache
     * or TLBs.  Used by micro-benchmarks, pipeline unit tests and
     * ablation studies to isolate individual penalty mechanisms.
     */
    bool perfectICache = false;
    bool perfectDCache = false;
    bool perfectTlbs = false;
};

/** Simulation outcome with diagnostic counters. */
struct SimResult
{
    /** Total execution cycles. */
    Cycles cycles = 0;

    /** Instructions retired (trace length). */
    InstCount retired = 0;

    /** Cycles the fetch unit was stalled on I-cache/I-TLB misses. */
    Cycles fetchMissStallCycles = 0;

    /** Fetch bubbles from correctly-predicted taken branches. */
    Cycles takenBubbleCycles = 0;

    /** Cycles fetch waited on an unresolved mispredicted branch. */
    Cycles mispredictStallCycles = 0;

    /** Cycles decode stalled with unready operands (head-of-queue). */
    Cycles dependencyStallCycles = 0;

    /** Cycles decode stalled on execute-stage back-pressure. */
    Cycles backPressureStallCycles = 0;

    /** Branch mispredictions observed. */
    std::uint64_t mispredicts = 0;

    /** Correctly-predicted taken branches observed. */
    std::uint64_t predictedTakenCorrect = 0;

    /** Cycles per instruction. */
    double
    cpi() const
    {
        return retired ? static_cast<double>(cycles) /
                             static_cast<double>(retired)
                       : 0.0;
    }

    /** Execution time in seconds at @p freq_ghz. */
    double
    seconds(double freq_ghz) const
    {
        return static_cast<double>(cycles) / (freq_ghz * 1e9);
    }
};

/**
 * Simulate @p trace on the configured pipeline, cycle by cycle.
 *
 * Deterministic; cold caches, TLBs and predictor.
 */
SimResult simulateInOrder(const Trace &trace, const SimConfig &config);

} // namespace mech

#endif // MECH_SIM_INORDER_SIM_HH
