#include "trace/trace.hh"

#include <sstream>

namespace mech {

InstMix
Trace::mix() const
{
    InstMix m;
    for (const auto &di : instrs)
        ++m.counts[static_cast<std::size_t>(di.op)];
    m.total = instrs.size();
    return m;
}

bool
validateTrace(const Trace &trace, std::string *error)
{
    auto fail = [&](std::size_t i, const std::string &what) {
        if (error) {
            std::ostringstream oss;
            oss << "instruction " << i << ": " << what;
            *error = oss.str();
        }
        return false;
    };

    for (std::size_t i = 0; i < trace.size(); ++i) {
        const DynInstr &di = trace[i];

        auto reg_ok = [](RegIndex r) {
            return r == kNoReg || r < kNumArchRegs;
        };
        if (!reg_ok(di.dst) || !reg_ok(di.src1) || !reg_ok(di.src2))
            return fail(i, "register index out of range");

        if (isMem(di.op) && di.effAddr == 0)
            return fail(i, "memory op without effective address");
        if (!isMem(di.op) && di.effAddr != 0)
            return fail(i, "non-memory op with effective address");

        if (isBranch(di.op)) {
            if (di.taken && di.targetPc == 0)
                return fail(i, "taken branch without target");
        } else {
            if (di.taken)
                return fail(i, "non-branch marked taken");
            if (di.targetPc != 0)
                return fail(i, "non-branch with target");
        }

        switch (di.op) {
          case OpClass::Store:
          case OpClass::Branch:
          case OpClass::Nop:
            if (di.hasDst())
                return fail(i, "non-producing class writes a register");
            break;
          default:
            break;
        }
    }
    return true;
}

} // namespace mech
