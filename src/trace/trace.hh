/**
 * @file
 * Dynamic instruction trace: the exchange format between the workload
 * generator, the profiler, and the cycle-accurate simulator.
 *
 * Both the analytical model's inputs (via the profiler) and the
 * reference cycle counts (via the simulator) are derived from the same
 * Trace, so model-vs-simulation error reflects modeling fidelity, not
 * workload skew.
 */

#ifndef MECH_TRACE_TRACE_HH
#define MECH_TRACE_TRACE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/op_class.hh"

namespace mech {

/** One dynamically executed instruction. */
struct DynInstr
{
    /** Instruction address. */
    Addr pc = 0;

    /** Effective address (memory instructions only). */
    Addr effAddr = 0;

    /** Branch target (branches only; fall-through if not taken). */
    Addr targetPc = 0;

    /** Destination register or kNoReg. */
    RegIndex dst = kNoReg;

    /** Source registers or kNoReg. */
    RegIndex src1 = kNoReg;

    /** Second source register or kNoReg. */
    RegIndex src2 = kNoReg;

    /** Operation class. */
    OpClass op = OpClass::IntAlu;

    /** Branch outcome (branches only). */
    bool taken = false;

    /** True if this instruction writes a register. */
    bool hasDst() const { return dst != kNoReg; }
};

/** Per-op-class dynamic instruction counts. */
struct InstMix
{
    /** Count per OpClass, indexed by static_cast<size_t>(OpClass). */
    std::array<InstCount, kNumOpClasses> counts{};

    /** Total dynamic instructions. */
    InstCount total = 0;

    /** Count for one class. */
    InstCount
    of(OpClass oc) const
    {
        return counts[static_cast<std::size_t>(oc)];
    }

    /** Fraction of the dynamic stream in class @p oc (0 if empty). */
    double
    fraction(OpClass oc) const
    {
        return total ? static_cast<double>(of(oc)) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/**
 * In-memory dynamic instruction trace.
 *
 * A thin, cache-friendly wrapper over a vector of DynInstr with
 * convenience statistics.  Traces are deterministic functions of
 * (benchmark profile, seed, length).
 */
class Trace
{
  public:
    Trace() = default;

    /** Reserve space for @p n instructions. */
    void reserve(std::size_t n) { instrs.reserve(n); }

    /** Append an instruction. */
    void push(const DynInstr &di) { instrs.push_back(di); }

    /** Number of dynamic instructions. */
    InstCount size() const { return instrs.size(); }

    /** True when the trace holds no instructions. */
    bool empty() const { return instrs.empty(); }

    /** Instruction at position @p i. */
    const DynInstr &operator[](std::size_t i) const { return instrs[i]; }

    /** Iteration support. */
    auto begin() const { return instrs.begin(); }
    auto end() const { return instrs.end(); }

    /** Compute the dynamic instruction mix. */
    InstMix mix() const;

    /** Release storage. */
    void
    clear()
    {
        instrs.clear();
        instrs.shrink_to_fit();
    }

  private:
    std::vector<DynInstr> instrs;
};

/**
 * Structural validity check for a trace.
 *
 * Verifies the invariants the rest of the stack assumes: register
 * indices in range, memory ops carry effective addresses, branches
 * carry targets, non-branches are never taken, destinations only on
 * value-producing classes.
 *
 * @param trace Trace to check.
 * @param error Filled with a description of the first violation.
 * @return True when the trace is well-formed.
 */
bool validateTrace(const Trace &trace, std::string *error = nullptr);

} // namespace mech

#endif // MECH_TRACE_TRACE_HH
