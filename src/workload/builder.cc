#include "workload/builder.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "isa/op_class.hh"

namespace mech {

namespace {

/** Registers r8..r27 rotate as destinations. */
constexpr RegIndex kFirstRotReg = 8;
constexpr RegIndex kNumRotRegs = 20;

/** Registers r28..r31 serve as loop counters. */
constexpr RegIndex kFirstCounterReg = 28;
constexpr RegIndex kNumCounterRegs = 4;

/**
 * Chain-structured dependency shaping while emitting one loop body.
 *
 * Real dataflow is a set of interleaved dependency chains: each
 * instruction typically consumes the value produced by the previous
 * element of *its* chain and extends it.  The shaper maintains C
 * chain tails; producers extend the chain they consumed from, so the
 * effective def-use distance distribution concentrates around C —
 * the profile's ILP knob.  This chain structure also matches the
 * stall pattern the paper's dependency penalty formulas assume (after
 * a stall the producer heads its stage, eq. 10).
 */
class DepShaper
{
  public:
    DepShaper(const BenchmarkProfile &profile, Rng &rng)
        : prof(profile), rand(rng)
    {
        reset();
    }

    /** Re-roll the chain count at a loop boundary. */
    void
    reset()
    {
        double jitter = 0.7 + 0.6 * rand.uniform();
        auto chains = static_cast<std::size_t>(
            std::max(1.0, prof.ilpChains * jitter + 0.5));
        tails.assign(chains, kNoReg);
        cooldown.assign(chains, 0);
        nextChain = 0;
        loadChain = kNoChain;
    }

    /** A random live-in register (never a stall source). */
    RegIndex
    liveIn()
    {
        return static_cast<RegIndex>(rand.below(kNumLiveInRegs));
    }

    /**
     * Pick the primary source of the next instruction and remember
     * which chain it came from (the producer will extend it).
     */
    RegIndex
    pickSource()
    {
        tickCooldowns();
        pickedChain = kNoChain;
        if (rand.chance(prof.indepFraction))
            return liveIn();

        // Load-use pressure: follow the most recent load's chain
        // immediately (pointer chasing / un-hoisted loads).
        if (loadChain != kNoChain && rand.chance(prof.loadDepBias)) {
            pickedChain = loadChain;
            cooldown[pickedChain] = 0;
            loadChain = kNoChain;
            return tails[pickedChain];
        }

        std::size_t c = rand.below(tails.size());
        // Loads are hoisted ahead of their consumers: a chain freshly
        // extended by a load is skipped while it cools down.
        if (cooldown[c] > 0)
            c = rand.below(tails.size());
        if (tails[c] == kNoReg || cooldown[c] > 0)
            return liveIn();
        pickedChain = c;
        return tails[c];
    }

    /** A secondary source: another chain's tail or a live-in. */
    RegIndex
    pickSecondSource()
    {
        std::size_t c = rand.below(tails.size());
        if (c == pickedChain || tails[c] == kNoReg)
            return liveIn();
        return tails[c];
    }

    /**
     * Address source for a non-pointer load: a base register (never
     * stalls).  Clears any chain picked by a previous instruction so
     * the load's result starts a fresh chain.
     */
    RegIndex
    addressSource()
    {
        pickedChain = kNoChain;
        return liveIn();
    }

    /**
     * Address source for a pointer-chasing load: the previous load's
     * value, extending the load chain into a serial miss chain.
     */
    RegIndex
    pointerChainSource()
    {
        if (loadChain != kNoChain && tails[loadChain] != kNoReg) {
            pickedChain = loadChain;
            return tails[loadChain];
        }
        pickedChain = kNoChain;
        return liveIn();
    }

    /** Record a producing instruction: it extends (or starts) a chain. */
    void
    produced(const StaticInst &si)
    {
        if (si.dst == kNoReg)
            return;
        std::size_t c = pickedChain != kNoChain
                            ? pickedChain
                            : nextFreshChain();
        tails[c] = si.dst;
        if (si.op == OpClass::Load) {
            loadChain = c;
            // Compilers hoist loads past the exposed load-to-use
            // window; 8 instructions clears 2W-1 for W <= 4.
            cooldown[c] = 8;
        }
        pickedChain = kNoChain;
    }

  private:
    static constexpr std::size_t kNoChain =
        std::numeric_limits<std::size_t>::max();

    /** Chain replaced by a fresh value (round-robin keeps balance). */
    std::size_t
    nextFreshChain()
    {
        std::size_t c = nextChain;
        nextChain = (nextChain + 1) % tails.size();
        return c;
    }

    /** Age the per-chain load-hoisting cooldowns. */
    void
    tickCooldowns()
    {
        for (auto &cd : cooldown) {
            if (cd > 0)
                --cd;
        }
    }

    const BenchmarkProfile &prof;
    Rng &rand;
    std::vector<RegIndex> tails;
    std::vector<int> cooldown;
    std::size_t nextChain = 0;
    std::size_t pickedChain = kNoChain;
    std::size_t loadChain = kNoChain;
};

/** Sample a non-branch op class from the profile's mix weights. */
OpClass
sampleOp(const BenchmarkProfile &p, Rng &rng)
{
    static constexpr OpClass classes[] = {
        OpClass::IntAlu, OpClass::IntMult, OpClass::IntDiv,
        OpClass::FpAlu,  OpClass::FpMult,  OpClass::FpDiv,
        OpClass::Load,   OpClass::Store,
    };
    std::vector<double> w = {p.wIntAlu, p.wIntMult, p.wIntDiv, p.wFpAlu,
                             p.wFpMult, p.wFpDiv,   p.wLoad,   p.wStore};
    return classes[rng.weighted(w)];
}

/** Sample a memory pattern from the profile's weights. */
MemPattern
samplePattern(const BenchmarkProfile &p, Rng &rng)
{
    static constexpr MemPattern patterns[] = {
        MemPattern::Sequential, MemPattern::Strided,
        MemPattern::Random,     MemPattern::Pointer,
    };
    std::vector<double> w = {p.wSeq, p.wStrided, p.wRandom, p.wPointer};
    return patterns[rng.weighted(w)];
}

/** Create the condition stream for one guard branch. */
BranchStreamDesc
makeGuardStream(const BenchmarkProfile &p, Rng &rng)
{
    BranchStreamDesc desc;
    if (rng.chance(p.hardBranchFraction)) {
        desc.kind = BranchStreamDesc::Kind::Biased;
        desc.takenBias = 0.4 + 0.2 * rng.uniform(); // near-coin-flip
    } else if (rng.chance(p.correlatedFraction)) {
        desc.kind = BranchStreamDesc::Kind::Correlated;
        desc.histLen = 2 + static_cast<std::uint32_t>(rng.below(5));
        desc.takenBias = 0.05; // residual noise
    } else if (rng.chance(0.5)) {
        desc.kind = BranchStreamDesc::Kind::Periodic;
        double bias = std::max(p.guardTakenBias, 0.05);
        desc.period = std::max<std::uint32_t>(
            1, static_cast<std::uint32_t>(std::lround(1.0 / bias)));
    } else {
        desc.kind = BranchStreamDesc::Kind::Biased;
        desc.takenBias = p.guardTakenBias;
    }
    return desc;
}

} // namespace

Program
buildProgram(const BenchmarkProfile &profile)
{
    MECH_ASSERT(profile.numLoops >= 1, "profile needs at least one loop");
    MECH_ASSERT(profile.blocksPerLoop >= 1, "loop needs at least one block");
    MECH_ASSERT(profile.instrsPerBlock >= 1, "block needs instructions");
    MECH_ASSERT(profile.ilpChains >= 1.0, "need at least one chain");

    Rng rng(profile.seed);
    Program prog;
    prog.name = profile.name;

    for (int r = 0; r < profile.numRegions; ++r)
        prog.regions.push_back({profile.regionKB * 1024, 0});

    // Prologue: define every live-in register once.
    for (RegIndex r = 0; r < kNumLiveInRegs; ++r) {
        StaticInst si;
        si.op = OpClass::IntAlu;
        si.dst = r;
        prog.prologue.push_back(si);
    }

    DepShaper shaper(profile, rng);
    RegIndex rot = 0;
    std::uint32_t mem_stream = 0;

    auto next_dst = [&rot]() {
        RegIndex r = static_cast<RegIndex>(kFirstRotReg + rot);
        rot = static_cast<RegIndex>((rot + 1) % kNumRotRegs);
        return r;
    };

    for (int l = 0; l < profile.numLoops; ++l) {
        Loop loop;
        loop.tripCount = std::max<std::uint64_t>(1, profile.tripCount);
        loop.counterReg = static_cast<RegIndex>(
            kFirstCounterReg + l % kNumCounterRegs);
        shaper.reset();

        for (int b = 0; b < profile.blocksPerLoop; ++b) {
            BasicBlock block;

            if (rng.chance(profile.guardFraction)) {
                block.guarded = true;
                prog.streams.push_back(makeGuardStream(profile, rng));
                block.guard.op = OpClass::Branch;
                block.guard.branchStream =
                    static_cast<std::uint16_t>(prog.streams.size() - 1);
                block.guard.src1 = shaper.pickSource();
            }

            // Block length varies +-25% around the profile mean.
            int len = profile.instrsPerBlock;
            int jitter = std::max(1, len / 4);
            len += static_cast<int>(rng.range(-jitter, jitter));
            len = std::max(1, len);

            for (int i = 0; i < len; ++i) {
                StaticInst si;
                si.op = sampleOp(profile, rng);

                switch (si.op) {
                  case OpClass::Load:
                    si.dst = next_dst();
                    si.memStreamId = mem_stream++;
                    si.memPattern = samplePattern(profile, rng);
                    si.memRegion = static_cast<std::uint16_t>(
                        rng.below(static_cast<std::uint64_t>(
                            profile.numRegions)));
                    si.stride = profile.strideBytes;
                    // Pointer chains read their own previous value;
                    // other loads use a (non-stalling) base register.
                    si.src1 = si.memPattern == MemPattern::Pointer
                                  ? shaper.pointerChainSource()
                                  : shaper.addressSource();
                    shaper.produced(si);
                    break;
                  case OpClass::Store:
                    si.memStreamId = mem_stream++;
                    si.memPattern = samplePattern(profile, rng);
                    si.memRegion = static_cast<std::uint16_t>(
                        rng.below(static_cast<std::uint64_t>(
                            profile.numRegions)));
                    si.stride = profile.strideBytes;
                    si.src1 = shaper.pickSource(); // data value
                    si.src2 = shaper.liveIn();     // address base
                    break;
                  default:
                    si.dst = next_dst();
                    si.src1 = shaper.pickSource();
                    // Two-source ops: always for mul/div/fp, half the
                    // time for plain ALU work.
                    if (isLongLatencyClass(si.op) || rng.chance(0.5))
                        si.src2 = shaper.pickSecondSource();
                    shaper.produced(si);
                    break;
                }
                if (si.src1 == kNoReg)
                    si.src1 = shaper.liveIn();

                block.body.push_back(si);
            }
            loop.blocks.push_back(std::move(block));
        }

        // The loop counter forms its own cross-iteration chain whose
        // distance equals the body length: harmless for any realistic
        // body size.
        loop.counterInc.op = OpClass::IntAlu;
        loop.counterInc.dst = loop.counterReg;
        loop.counterInc.src1 = loop.counterReg;

        loop.backEdge.op = OpClass::Branch;
        loop.backEdge.src1 = loop.counterReg;
        loop.backEdge.branchStream = kBackEdgeStream;

        prog.loops.push_back(std::move(loop));
    }

    prog.renumberMemStreams();
    prog.assignPcs();
    prog.layoutData();
    return prog;
}

} // namespace mech
