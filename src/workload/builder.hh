/**
 * @file
 * Builds a synthetic Program from a BenchmarkProfile.
 */

#ifndef MECH_WORKLOAD_BUILDER_HH
#define MECH_WORKLOAD_BUILDER_HH

#include "workload/profile.hh"
#include "workload/program.hh"

namespace mech {

/**
 * Construct the synthetic program described by @p profile.
 *
 * Deterministic: the same profile (including seed) always produces an
 * identical Program, and hence identical traces.
 *
 * The builder emits *unscheduled* code: consumers are placed close to
 * their producers, the way a compiler's naive code generation (or
 * -fno-schedule-insns) would.  The compiler passes in src/compiler
 * then transform the IR the way -O3 scheduling / unrolling would.
 */
Program buildProgram(const BenchmarkProfile &profile);

} // namespace mech

#endif // MECH_WORKLOAD_BUILDER_HH
