#include "workload/executor.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"
#include "workload/builder.hh"

namespace mech {

TraceExecutor::TraceExecutor(const Program &program, std::uint64_t seed)
    : prog(program), initialSeed(seed), rng(seed)
{
    MECH_ASSERT(!prog.loops.empty(), "program has no loops");
    memState.resize(prog.numMemStreams);
    branchState.resize(prog.streams.size());
}

bool
TraceExecutor::nextOutcome(std::uint16_t id)
{
    MECH_ASSERT(id < prog.streams.size(), "branch stream out of range");
    const BranchStreamDesc &desc = prog.streams[id];
    BranchStreamState &st = branchState[id];

    bool taken = false;
    switch (desc.kind) {
      case BranchStreamDesc::Kind::Biased:
        taken = rng.chance(desc.takenBias);
        break;
      case BranchStreamDesc::Kind::Periodic:
        taken = (st.execCount % desc.period) == (desc.period - 1);
        break;
      case BranchStreamDesc::Kind::Correlated: {
        // Outcome is the parity of the last histLen outcomes, with a
        // small noise probability: learnable from branch history but
        // opaque to a history-less predictor.
        std::uint32_t mask = (1u << desc.histLen) - 1;
        bool parity = (std::popcount(st.history & mask) & 1) == 0;
        taken = rng.chance(desc.takenBias) ? !parity : parity;
        break;
      }
    }
    st.history = (st.history << 1) | (taken ? 1u : 0u);
    ++st.execCount;
    return taken;
}

Addr
TraceExecutor::effectiveAddr(const StaticInst &si)
{
    MECH_ASSERT(si.memRegion < prog.regions.size(), "region out of range");
    const MemRegionDesc &region = prog.regions[si.memRegion];
    MECH_ASSERT(region.base != 0, "layoutData() not run");
    MemStreamState &st = memState[si.memStreamId];

    std::uint64_t elems = std::max<std::uint64_t>(1, region.sizeBytes / 8);
    Addr addr = 0;
    switch (si.memPattern) {
      case MemPattern::Sequential:
        addr = region.base + st.offset;
        st.offset = (st.offset + 8) % region.sizeBytes;
        break;
      case MemPattern::Strided:
        addr = region.base + st.offset;
        st.offset = (st.offset + std::max<std::uint32_t>(8, si.stride)) %
                    region.sizeBytes;
        break;
      case MemPattern::Random:
        addr = region.base + rng.below(elems) * 8;
        break;
      case MemPattern::Pointer: {
        // Serial chain: the next element index is a deterministic
        // scramble of the current one, so consecutive accesses are
        // data-dependent and spread over the whole region.
        st.pointer = (st.pointer * 6364136223846793005ull +
                      1442695040888963407ull);
        addr = region.base + (st.pointer % elems) * 8;
        break;
      }
      case MemPattern::None:
        panic("memory instruction without a pattern");
    }
    return addr & ~Addr{7};
}

void
TraceExecutor::emit(Trace &trace, const StaticInst &si)
{
    DynInstr di;
    di.pc = si.pc;
    di.op = si.op;
    di.dst = si.dst;
    di.src1 = si.src1;
    di.src2 = si.src2;
    if (isMem(si.op))
        di.effAddr = effectiveAddr(si);
    trace.push(di);
}

void
TraceExecutor::emitBranch(Trace &trace, const StaticInst &si, bool taken,
                          Addr target)
{
    DynInstr di;
    di.pc = si.pc;
    di.op = OpClass::Branch;
    di.src1 = si.src1;
    di.src2 = si.src2;
    di.taken = taken;
    di.targetPc = target;
    trace.push(di);
}

Trace
TraceExecutor::run(InstCount max_instrs)
{
    // Reset to pristine state so repeated runs are bit-identical.
    rng = Rng(initialSeed);
    std::fill(memState.begin(), memState.end(), MemStreamState{});
    std::fill(branchState.begin(), branchState.end(), BranchStreamState{});

    Trace trace;
    trace.reserve(max_instrs + 4096);

    for (const auto &si : prog.prologue)
        emit(trace, si);

    std::size_t loop_cursor = 0;
    while (trace.size() < max_instrs) {
        const Loop &loop = prog.loops[loop_cursor % prog.loops.size()];
        ++loop_cursor;

        for (std::uint64_t iter = 0;
             iter < loop.tripCount && trace.size() < max_instrs; ++iter) {
            for (const auto &block : loop.blocks) {
                if (block.guarded) {
                    bool taken = nextOutcome(block.guard.branchStream);
                    emitBranch(trace, block.guard, taken,
                               block.guardTarget);
                    if (taken)
                        continue; // block body skipped
                }
                for (const auto &si : block.body)
                    emit(trace, si);
            }
            emit(trace, loop.counterInc);
            bool continuing = iter + 1 < loop.tripCount;
            emitBranch(trace, loop.backEdge, continuing,
                       loop.backEdgeTarget);
        }
    }
    return trace;
}

Trace
generateTrace(const BenchmarkProfile &profile, InstCount max_instrs)
{
    Program prog = buildProgram(profile);
    TraceExecutor exec(prog, profile.seed ^ 0xabcdef1234567890ull);
    return exec.run(max_instrs);
}

} // namespace mech
