/**
 * @file
 * Executes a synthetic Program into a dynamic instruction Trace.
 *
 * The executor is the "functional simulator" of this stack: it
 * resolves branch conditions, walks memory streams into concrete
 * effective addresses, and linearizes control flow, producing the
 * dynamic instruction stream that both the profiler (model inputs)
 * and the cycle-accurate simulator (reference cycles) consume.
 */

#ifndef MECH_WORKLOAD_EXECUTOR_HH
#define MECH_WORKLOAD_EXECUTOR_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "trace/trace.hh"
#include "workload/profile.hh"
#include "workload/program.hh"

namespace mech {

/**
 * Stateful executor turning a Program into a Trace.
 *
 * Deterministic given (program, seed).  The executor may be run
 * multiple times; each run() restarts from a pristine state.
 */
class TraceExecutor
{
  public:
    /**
     * @param program Program to execute (must outlive the executor).
     * @param seed Seed for condition/address randomness.
     */
    TraceExecutor(const Program &program, std::uint64_t seed);

    /**
     * Execute until @p max_instrs dynamic instructions are emitted
     * (the current loop iteration is allowed to finish first, so the
     * trace may run slightly past the target).
     */
    Trace run(InstCount max_instrs);

  private:
    /** Per-memory-stream cursor state. */
    struct MemStreamState
    {
        std::uint64_t offset = 0;  ///< byte offset for seq/strided
        std::uint64_t pointer = 0; ///< element index for pointer chains
    };

    /** Per-branch-stream condition state. */
    struct BranchStreamState
    {
        std::uint64_t execCount = 0; ///< executions (periodic streams)
        std::uint32_t history = 0;   ///< outcome history (correlated)
    };

    /** Resolve the next outcome of branch condition stream @p id. */
    bool nextOutcome(std::uint16_t id);

    /** Compute the next effective address for a memory instruction. */
    Addr effectiveAddr(const StaticInst &si);

    /** Emit one non-control instruction. */
    void emit(Trace &trace, const StaticInst &si);

    /** Emit a branch with resolved outcome and target. */
    void emitBranch(Trace &trace, const StaticInst &si, bool taken,
                    Addr target);

    const Program &prog;
    std::uint64_t initialSeed;
    Rng rng;
    std::vector<MemStreamState> memState;
    std::vector<BranchStreamState> branchState;
};

/**
 * Convenience one-shot: build the program for @p profile and execute
 * approximately @p max_instrs instructions.
 */
Trace generateTrace(const BenchmarkProfile &profile, InstCount max_instrs);

} // namespace mech

#endif // MECH_WORKLOAD_EXECUTOR_HH
