/**
 * @file
 * Benchmark profile: the knobs that shape a synthetic workload.
 *
 * The paper evaluates on 19 MiBench benchmarks plus a SPEC CPU2006
 * subset; neither those binaries nor the M5 toolchain are available
 * here, so each benchmark is substituted by a synthetic program whose
 * distributional properties (instruction mix, dependency tightness,
 * memory footprint and access patterns, branch behaviour, static code
 * footprint) are set per benchmark to mirror its published character
 * (see DESIGN.md §1).  The profile is the single source of truth for
 * those properties.
 */

#ifndef MECH_WORKLOAD_PROFILE_HH
#define MECH_WORKLOAD_PROFILE_HH

#include <cstdint>
#include <string>

namespace mech {

/** All generator knobs for one synthetic benchmark. */
struct BenchmarkProfile
{
    /** Benchmark name (MiBench/SPEC-like identifier). */
    std::string name;

    /** Master seed; every stochastic choice derives from it. */
    std::uint64_t seed = 1;

    // ---- static structure -------------------------------------------------
    /** Number of loops (program phases, executed round-robin). */
    int numLoops = 4;

    /** Basic blocks per loop body. */
    int blocksPerLoop = 3;

    /** Mean instructions per basic block. */
    int instrsPerBlock = 12;

    /** Iterations per loop entry. */
    std::uint64_t tripCount = 64;

    /** Fraction of blocks guarded by a conditional branch. */
    double guardFraction = 0.3;

    // ---- instruction mix (relative weights of non-branch body ops) -------
    double wIntAlu = 1.0;
    double wIntMult = 0.0;
    double wIntDiv = 0.0;
    double wFpAlu = 0.0;
    double wFpMult = 0.0;
    double wFpDiv = 0.0;
    double wLoad = 0.25;
    double wStore = 0.12;

    // ---- dependency shaping ----------------------------------------------
    /**
     * Mean number of independent dependency chains interleaved in the
     * instruction stream.  Real dataflow is chain/tree-structured: an
     * instruction extends the chain it consumes from.  With C chains
     * the typical def-use distance is ~C, so C >= width means almost
     * no stalls (sha, the paper's high-ILP pole) while C near 1 means
     * serial execution (adpcm/dijkstra).
     */
    double ilpChains = 3.0;

    /**
     * Probability that an instruction starts a fresh chain from
     * live-in registers instead of extending an existing one.
     */
    double indepFraction = 0.15;

    /**
     * Probability that the instruction following a load is steered to
     * consume that load's chain (load-use pressure, e.g., pointer
     * chasing in dijkstra/mcf).
     */
    double loadDepBias = 0.0;

    // ---- memory behaviour -------------------------------------------------
    /** Pattern weights over {Sequential, Strided, Random, Pointer}. */
    double wSeq = 1.0;
    double wStrided = 0.0;
    double wRandom = 0.0;
    double wPointer = 0.0;

    /** Stride in bytes for strided streams. */
    std::uint32_t strideBytes = 256;

    /** Number of data regions. */
    int numRegions = 2;

    /** Region size in KiB (all regions; the working set). */
    std::uint64_t regionKB = 16;

    // ---- branch behaviour -------------------------------------------------
    /** P(taken) of guard branches (Biased streams). */
    double guardTakenBias = 0.2;

    /**
     * Fraction of guard streams that are hard to predict (iid coin
     * flips near 0.5) versus well-behaved biased/periodic streams.
     */
    double hardBranchFraction = 0.1;

    /**
     * Fraction of guard streams that are history-correlated
     * (learnable by global/local history predictors, not by bimodal).
     */
    double correlatedFraction = 0.2;
};

} // namespace mech

#endif // MECH_WORKLOAD_PROFILE_HH
