#include "workload/program.hh"

#include <map>

#include "common/logging.hh"
#include "isa/op_class.hh"

namespace mech {

void
Program::assignPcs()
{
    Addr pc = kTextBase;
    auto place = [&pc](StaticInst &si) {
        si.pc = pc;
        pc += kInstBytes;
    };

    for (auto &si : prologue)
        place(si);

    for (auto &loop : loops) {
        Addr loop_head = pc;
        for (auto &block : loop.blocks) {
            if (block.guarded)
                place(block.guard);
            for (auto &si : block.body)
                place(si);
            // Guard jumps past the block body when taken.
            if (block.guarded)
                block.guardTarget = pc;
        }
        place(loop.counterInc);
        place(loop.backEdge);
        // The back edge returns to the first instruction of the loop.
        loop.backEdgeTarget = loop_head;
    }
}

void
Program::layoutData()
{
    Addr base = kDataBase;
    for (auto &region : regions) {
        region.base = base;
        // Pad to the next 64 KiB boundary after the region so regions
        // never share a cache set pathologically.
        Addr size = region.sizeBytes;
        base += ((size + 0xffff) / 0x10000 + 1) * 0x10000;
    }
}

void
Program::renumberMemStreams()
{
    // Densify stream ids while PRESERVING sharing: instructions that
    // carried the same id keep sharing one executor cursor.  Loop
    // unrolling relies on this — the copies of a load must continue
    // the original's address stream, not replay it.
    std::map<std::uint32_t, std::uint32_t> remap;
    auto renumber = [&remap](StaticInst &si) {
        if (!isMem(si.op))
            return;
        auto [it, fresh] = remap.try_emplace(
            si.memStreamId, static_cast<std::uint32_t>(remap.size()));
        si.memStreamId = it->second;
    };
    for (auto &si : prologue)
        renumber(si);
    for (auto &loop : loops) {
        for (auto &block : loop.blocks) {
            for (auto &si : block.body)
                renumber(si);
        }
    }
    numMemStreams = static_cast<std::uint32_t>(remap.size());
}

std::uint64_t
Program::staticInstCount() const
{
    std::uint64_t n = prologue.size();
    for (const auto &loop : loops) {
        n += 2; // counterInc + backEdge
        for (const auto &block : loop.blocks)
            n += block.body.size() + (block.guarded ? 1 : 0);
    }
    return n;
}

} // namespace mech
