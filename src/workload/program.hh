/**
 * @file
 * Synthetic program intermediate representation (IR).
 *
 * A Program is a loop-structured synthetic workload: a prologue that
 * defines live-in registers, then a list of loops executed round-robin
 * by the trace executor.  Each loop iteration runs the loop's basic
 * blocks in order (some guarded by conditional branches that skip
 * them), then a counter increment and a back-edge branch.
 *
 * The IR exists so that compiler-style transformations (instruction
 * scheduling, loop unrolling, spill insertion — paper §6.2) operate on
 * program *structure*, exactly as a compiler would, rather than on
 * derived statistics.
 */

#ifndef MECH_WORKLOAD_PROGRAM_HH
#define MECH_WORKLOAD_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/static_inst.hh"

namespace mech {

/** Size of one encoded instruction in bytes (PC spacing). */
inline constexpr Addr kInstBytes = 4;

/** Base address of the text segment. */
inline constexpr Addr kTextBase = 0x1000;

/** Base address of the data segment. */
inline constexpr Addr kDataBase = 0x10000000;

/** Registers r0..r7 are live-in scratch written by the prologue. */
inline constexpr RegIndex kNumLiveInRegs = 8;

/** Sentinel branch-stream id marking a loop back-edge branch. */
inline constexpr std::uint16_t kBackEdgeStream = 0xffff;

/** Behaviour of one conditional-branch condition stream. */
struct BranchStreamDesc
{
    /** How outcomes are produced. */
    enum class Kind : std::uint8_t {
        Biased,     ///< iid Bernoulli with takenBias
        Periodic,   ///< taken exactly once every `period` executions
        Correlated, ///< outcome = f(previous `histLen` outcomes) + noise
    };

    Kind kind = Kind::Biased;

    /** P(taken) for Biased; noise level for Correlated. */
    double takenBias = 0.5;

    /** Period for Periodic streams. */
    std::uint32_t period = 2;

    /** History length a Correlated stream depends on. */
    std::uint32_t histLen = 4;
};

/** One memory working-set region. */
struct MemRegionDesc
{
    /** Region size in bytes (executor wraps accesses inside it). */
    std::uint64_t sizeBytes = 4096;

    /** Base address, assigned by Program::layoutData(). */
    Addr base = 0;
};

/**
 * Straight-line basic block, optionally guarded.
 *
 * A guarded block is preceded by a conditional branch (the guard);
 * when the guard is taken the block body is skipped entirely.
 */
struct BasicBlock
{
    /** Non-control instructions of the block. */
    std::vector<StaticInst> body;

    /** True when a guard branch precedes this block. */
    bool guarded = false;

    /** Guard branch instruction (valid when guarded). */
    StaticInst guard;

    /** Taken-target of the guard: first PC past the block body. */
    Addr guardTarget = 0;
};

/** One natural loop. */
struct Loop
{
    /** Loop body blocks, executed in order each iteration. */
    std::vector<BasicBlock> blocks;

    /** Iterations executed per entry into the loop. */
    std::uint64_t tripCount = 1;

    /** Register serving as the loop counter. */
    RegIndex counterReg = 0;

    /** Counter-increment instruction (one per iteration). */
    StaticInst counterInc;

    /** Back-edge conditional branch (taken while iterating). */
    StaticInst backEdge;

    /** Taken-target of the back edge: first PC of the loop. */
    Addr backEdgeTarget = 0;

    /** Dynamic instructions in one unguarded iteration. */
    std::uint64_t
    iterationLength() const
    {
        std::uint64_t n = 2; // counterInc + backEdge
        for (const auto &b : blocks)
            n += b.body.size() + (b.guarded ? 1 : 0);
        return n;
    }
};

/** A complete synthetic program. */
struct Program
{
    /** Program name (benchmark profile it was built from). */
    std::string name;

    /** Memory working-set regions. */
    std::vector<MemRegionDesc> regions;

    /** Conditional-branch condition streams. */
    std::vector<BranchStreamDesc> streams;

    /** Prologue defining live-in registers r0..r7. */
    std::vector<StaticInst> prologue;

    /** The loops, executed round-robin by the executor. */
    std::vector<Loop> loops;

    /** Number of distinct memory streams (for executor state). */
    std::uint32_t numMemStreams = 0;

    /**
     * Assign PCs to every instruction (prologue, guards, bodies, loop
     * tails) and branch targets.  Must be re-run after any structural
     * transformation.
     */
    void assignPcs();

    /** Assign base addresses to memory regions. */
    void layoutData();

    /** Renumber memory streams densely (after transformations). */
    void renumberMemStreams();

    /** Total static instruction count (text footprint / kInstBytes). */
    std::uint64_t staticInstCount() const;

    /** Static code footprint in bytes. */
    std::uint64_t textBytes() const { return staticInstCount() * kInstBytes; }
};

} // namespace mech

#endif // MECH_WORKLOAD_PROGRAM_HH
