#include "workload/suites.hh"

#include <algorithm>
#include <map>

#include "common/logging.hh"

namespace mech {

namespace {

/**
 * Profile tuning notes.
 *
 * Knobs are set from each benchmark's published character:
 *  - ILP: ilpChains (mean interleaved dependency chains; sha is the
 *    paper's high-ILP pole, adpcm/dijkstra the serial pole)
 *  - mul/div density: wIntMult / wIntDiv (tiff2bw, gsm_c)
 *  - fp density: wFpAlu / wFpMult (lame, rsynth, milc, lbm)
 *  - memory footprint: regionKB x numRegions + pattern weights
 *    (tiff2rgba streams megabytes; dijkstra/mcf chase pointers)
 *  - branch behaviour: guardFraction, hardBranchFraction (patricia
 *    and qsort mispredict; adpcm is near-perfectly predictable)
 *  - static code footprint: numLoops x blocksPerLoop x instrsPerBlock
 *    (jpeg/lame/gcc exceed the 32 KiB L1I; most MiBench kernels are
 *    tiny).
 *
 * MiBench working sets are kept modest (mostly cache/TLB resident,
 * CPI in the paper's 0.6-1.4 band); the SPEC-like set deliberately
 * blows through the L2 (Fig. 6's CPI-up-to-9 regime).
 */
std::vector<BenchmarkProfile>
makeMibench()
{
    std::vector<BenchmarkProfile> v;

    BenchmarkProfile p;

    // ---- adpcm_c: serial bit-twiddling codec, tiny footprint ----------
    p = BenchmarkProfile{};
    p.name = "adpcm_c";
    p.seed = 101;
    p.numLoops = 2;
    p.blocksPerLoop = 4;
    p.instrsPerBlock = 9;
    p.tripCount = 512;
    p.guardFraction = 0.55;
    p.wIntAlu = 1.0;
    p.wLoad = 0.10;
    p.wStore = 0.05;
    p.ilpChains = 1.3;
    p.indepFraction = 0.06;
    p.loadDepBias = 0.05;
    p.wSeq = 1.0;
    p.numRegions = 2;
    p.regionKB = 8;
    p.guardTakenBias = 0.25;
    p.hardBranchFraction = 0.04;
    p.correlatedFraction = 0.30;
    v.push_back(p);

    // ---- adpcm_d: the decoder twin, marginally more parallel ----------
    p = BenchmarkProfile{};
    p.name = "adpcm_d";
    p.seed = 103;
    p.numLoops = 2;
    p.blocksPerLoop = 4;
    p.instrsPerBlock = 8;
    p.tripCount = 512;
    p.guardFraction = 0.5;
    p.wIntAlu = 1.0;
    p.wLoad = 0.09;
    p.wStore = 0.07;
    p.ilpChains = 1.6;
    p.indepFraction = 0.10;
    p.loadDepBias = 0.05;
    p.wSeq = 1.0;
    p.numRegions = 2;
    p.regionKB = 8;
    p.guardTakenBias = 0.25;
    p.hardBranchFraction = 0.04;
    p.correlatedFraction = 0.30;
    v.push_back(p);

    // ---- dijkstra: pointer-heavy graph walk, worst W-scaling ----------
    p = BenchmarkProfile{};
    p.name = "dijkstra";
    p.seed = 107;
    p.numLoops = 3;
    p.blocksPerLoop = 4;
    p.instrsPerBlock = 8;
    p.tripCount = 128;
    p.guardFraction = 0.5;
    p.wIntAlu = 1.0;
    p.wLoad = 0.36;
    p.wStore = 0.08;
    p.ilpChains = 1.4;
    p.indepFraction = 0.05;
    p.loadDepBias = 0.45;
    p.wSeq = 0.45;
    p.wRandom = 0.35;
    p.wPointer = 0.20;
    p.numRegions = 2;
    p.regionKB = 16;
    p.guardTakenBias = 0.3;
    p.hardBranchFraction = 0.10;
    p.correlatedFraction = 0.2;
    v.push_back(p);

    // ---- gsm_c (toast): DSP MAC chains, multiply-dense ----------------
    p = BenchmarkProfile{};
    p.name = "gsm_c";
    p.seed = 109;
    p.numLoops = 10;
    p.blocksPerLoop = 5;
    p.instrsPerBlock = 14;
    p.tripCount = 40;
    p.guardFraction = 0.3;
    p.wIntAlu = 1.0;
    p.wIntMult = 0.14;
    p.wLoad = 0.28;
    p.wStore = 0.09;
    p.ilpChains = 2.2;
    p.indepFraction = 0.12;
    p.loadDepBias = 0.10;
    p.wSeq = 0.8;
    p.wStrided = 0.2;
    p.numRegions = 3;
    p.regionKB = 16;
    p.guardTakenBias = 0.2;
    p.hardBranchFraction = 0.05;
    p.correlatedFraction = 0.25;
    v.push_back(p);

    // ---- jpeg_c (cjpeg): DCT + entropy coding, big code footprint -----
    p = BenchmarkProfile{};
    p.name = "jpeg_c";
    p.seed = 113;
    p.numLoops = 36;
    p.blocksPerLoop = 6;
    p.instrsPerBlock = 42;
    p.tripCount = 10;
    p.guardFraction = 0.35;
    p.wIntAlu = 1.0;
    p.wIntMult = 0.08;
    p.wLoad = 0.26;
    p.wStore = 0.11;
    p.ilpChains = 3.2;
    p.indepFraction = 0.16;
    p.loadDepBias = 0.08;
    p.wSeq = 0.75;
    p.wStrided = 0.22;
    p.wRandom = 0.03;
    p.numRegions = 3;
    p.regionKB = 128;
    p.guardTakenBias = 0.25;
    p.hardBranchFraction = 0.08;
    p.correlatedFraction = 0.2;
    v.push_back(p);

    // ---- jpeg_d (djpeg): inverse transform, store-heavier -------------
    p = BenchmarkProfile{};
    p.name = "jpeg_d";
    p.seed = 127;
    p.numLoops = 32;
    p.blocksPerLoop = 6;
    p.instrsPerBlock = 40;
    p.tripCount = 10;
    p.guardFraction = 0.3;
    p.wIntAlu = 1.0;
    p.wIntMult = 0.06;
    p.wLoad = 0.22;
    p.wStore = 0.16;
    p.ilpChains = 3.4;
    p.indepFraction = 0.18;
    p.loadDepBias = 0.06;
    p.wSeq = 0.8;
    p.wStrided = 0.2;
    p.numRegions = 3;
    p.regionKB = 128;
    p.guardTakenBias = 0.25;
    p.hardBranchFraction = 0.07;
    p.correlatedFraction = 0.2;
    v.push_back(p);

    // ---- lame: fp-heavy psychoacoustics, large code + data ------------
    p = BenchmarkProfile{};
    p.name = "lame";
    p.seed = 131;
    p.numLoops = 30;
    p.blocksPerLoop = 8;
    p.instrsPerBlock = 38;
    p.tripCount = 12;
    p.guardFraction = 0.3;
    p.wIntAlu = 1.0;
    p.wFpAlu = 0.25;
    p.wFpMult = 0.18;
    p.wLoad = 0.30;
    p.wStore = 0.10;
    p.ilpChains = 3.2;
    p.indepFraction = 0.18;
    p.loadDepBias = 0.08;
    p.wSeq = 0.8;
    p.wStrided = 0.15;
    p.wRandom = 0.05;
    p.numRegions = 4;
    p.regionKB = 256;
    p.guardTakenBias = 0.2;
    p.hardBranchFraction = 0.06;
    p.correlatedFraction = 0.25;
    v.push_back(p);

    // ---- patricia: trie walk, the branch-misprediction pole -----------
    p = BenchmarkProfile{};
    p.name = "patricia";
    p.seed = 137;
    p.numLoops = 4;
    p.blocksPerLoop = 6;
    p.instrsPerBlock = 6;
    p.tripCount = 96;
    p.guardFraction = 0.8;
    p.wIntAlu = 1.0;
    p.wLoad = 0.30;
    p.wStore = 0.06;
    p.ilpChains = 2.2;
    p.indepFraction = 0.12;
    p.loadDepBias = 0.25;
    p.wSeq = 0.4;
    p.wRandom = 0.45;
    p.wPointer = 0.15;
    p.numRegions = 2;
    p.regionKB = 24;
    p.guardTakenBias = 0.45;
    p.hardBranchFraction = 0.35;
    p.correlatedFraction = 0.1;
    v.push_back(p);

    // ---- qsort: compare-driven branches, partition sweeps -------------
    p = BenchmarkProfile{};
    p.name = "qsort";
    p.seed = 139;
    p.numLoops = 4;
    p.blocksPerLoop = 5;
    p.instrsPerBlock = 7;
    p.tripCount = 128;
    p.guardFraction = 0.7;
    p.wIntAlu = 1.0;
    p.wLoad = 0.32;
    p.wStore = 0.14;
    p.ilpChains = 2.2;
    p.indepFraction = 0.12;
    p.loadDepBias = 0.22;
    p.wSeq = 0.55;
    p.wRandom = 0.45;
    p.numRegions = 2;
    p.regionKB = 32;
    p.guardTakenBias = 0.5;
    p.hardBranchFraction = 0.3;
    p.correlatedFraction = 0.05;
    v.push_back(p);

    // ---- rsynth: formant synthesis, fp-alu dense, modest data ---------
    p = BenchmarkProfile{};
    p.name = "rsynth";
    p.seed = 149;
    p.numLoops = 20;
    p.blocksPerLoop = 6;
    p.instrsPerBlock = 30;
    p.tripCount = 24;
    p.guardFraction = 0.25;
    p.wIntAlu = 1.0;
    p.wFpAlu = 0.40;
    p.wFpMult = 0.15;
    p.wLoad = 0.24;
    p.wStore = 0.08;
    p.ilpChains = 2.8;
    p.indepFraction = 0.14;
    p.loadDepBias = 0.06;
    p.wSeq = 0.9;
    p.wStrided = 0.1;
    p.numRegions = 3;
    p.regionKB = 24;
    p.guardTakenBias = 0.2;
    p.hardBranchFraction = 0.05;
    p.correlatedFraction = 0.3;
    v.push_back(p);

    // ---- sha: unrolled rounds, the high-ILP pole -----------------------
    p = BenchmarkProfile{};
    p.name = "sha";
    p.seed = 151;
    p.numLoops = 2;
    p.blocksPerLoop = 3;
    p.instrsPerBlock = 26;
    p.tripCount = 256;
    p.guardFraction = 0.15;
    p.wIntAlu = 1.0;
    p.wLoad = 0.12;
    p.wStore = 0.05;
    p.ilpChains = 6.5;
    p.indepFraction = 0.18;
    p.loadDepBias = 0.0;
    p.wSeq = 1.0;
    p.numRegions = 2;
    p.regionKB = 8;
    p.guardTakenBias = 0.1;
    p.hardBranchFraction = 0.02;
    p.correlatedFraction = 0.3;
    v.push_back(p);

    // ---- stringsearch: byte scans with biased compare branches --------
    p = BenchmarkProfile{};
    p.name = "stringsearch";
    p.seed = 157;
    p.numLoops = 3;
    p.blocksPerLoop = 5;
    p.instrsPerBlock = 6;
    p.tripCount = 160;
    p.guardFraction = 0.75;
    p.wIntAlu = 1.0;
    p.wLoad = 0.30;
    p.wStore = 0.04;
    p.ilpChains = 2.6;
    p.indepFraction = 0.16;
    p.loadDepBias = 0.15;
    p.wSeq = 0.9;
    p.wRandom = 0.1;
    p.numRegions = 2;
    p.regionKB = 16;
    p.guardTakenBias = 0.3;
    p.hardBranchFraction = 0.18;
    p.correlatedFraction = 0.15;
    v.push_back(p);

    // ---- susan_c: corner detection, strided window sums ---------------
    p = BenchmarkProfile{};
    p.name = "susan_c";
    p.seed = 163;
    p.numLoops = 6;
    p.blocksPerLoop = 5;
    p.instrsPerBlock = 16;
    p.tripCount = 64;
    p.guardFraction = 0.45;
    p.wIntAlu = 1.0;
    p.wIntMult = 0.05;
    p.wLoad = 0.30;
    p.wStore = 0.07;
    p.ilpChains = 3.0;
    p.indepFraction = 0.16;
    p.loadDepBias = 0.08;
    p.wSeq = 0.6;
    p.wStrided = 0.4;
    p.numRegions = 3;
    p.regionKB = 96;
    p.guardTakenBias = 0.6;
    p.hardBranchFraction = 0.1;
    p.correlatedFraction = 0.2;
    v.push_back(p);

    // ---- susan_e: edge detection, more arithmetic per pixel -----------
    p = BenchmarkProfile{};
    p.name = "susan_e";
    p.seed = 167;
    p.numLoops = 6;
    p.blocksPerLoop = 5;
    p.instrsPerBlock = 20;
    p.tripCount = 64;
    p.guardFraction = 0.4;
    p.wIntAlu = 1.0;
    p.wIntMult = 0.08;
    p.wLoad = 0.28;
    p.wStore = 0.08;
    p.ilpChains = 2.8;
    p.indepFraction = 0.15;
    p.loadDepBias = 0.08;
    p.wSeq = 0.6;
    p.wStrided = 0.4;
    p.numRegions = 3;
    p.regionKB = 96;
    p.guardTakenBias = 0.5;
    p.hardBranchFraction = 0.08;
    p.correlatedFraction = 0.2;
    v.push_back(p);

    // ---- susan_s: smoothing kernel, multiply-dense streaming ----------
    p = BenchmarkProfile{};
    p.name = "susan_s";
    p.seed = 173;
    p.numLoops = 4;
    p.blocksPerLoop = 4;
    p.instrsPerBlock = 22;
    p.tripCount = 96;
    p.guardFraction = 0.3;
    p.wIntAlu = 1.0;
    p.wIntMult = 0.12;
    p.wLoad = 0.30;
    p.wStore = 0.06;
    p.ilpChains = 3.0;
    p.indepFraction = 0.16;
    p.loadDepBias = 0.06;
    p.wSeq = 0.7;
    p.wStrided = 0.3;
    p.numRegions = 2;
    p.regionKB = 96;
    p.guardTakenBias = 0.3;
    p.hardBranchFraction = 0.05;
    p.correlatedFraction = 0.25;
    v.push_back(p);

    // ---- tiff2bw: per-pixel scale = the multiply/divide pole -----------
    p = BenchmarkProfile{};
    p.name = "tiff2bw";
    p.seed = 179;
    p.numLoops = 3;
    p.blocksPerLoop = 3;
    p.instrsPerBlock = 14;
    p.tripCount = 256;
    p.guardFraction = 0.2;
    p.wIntAlu = 1.0;
    p.wIntMult = 0.26;
    p.wIntDiv = 0.03;
    p.wLoad = 0.28;
    p.wStore = 0.12;
    p.ilpChains = 2.6;
    p.indepFraction = 0.15;
    p.loadDepBias = 0.05;
    p.wSeq = 1.0;
    p.numRegions = 3;
    p.regionKB = 1024;
    p.guardTakenBias = 0.15;
    p.hardBranchFraction = 0.03;
    p.correlatedFraction = 0.2;
    v.push_back(p);

    // ---- tiff2rgba: format expansion, the memory-streaming pole --------
    p = BenchmarkProfile{};
    p.name = "tiff2rgba";
    p.seed = 181;
    p.numLoops = 3;
    p.blocksPerLoop = 3;
    p.instrsPerBlock = 12;
    p.tripCount = 256;
    p.guardFraction = 0.2;
    p.wIntAlu = 1.0;
    p.wLoad = 0.34;
    p.wStore = 0.22;
    p.ilpChains = 4.2;
    p.indepFraction = 0.2;
    p.loadDepBias = 0.05;
    p.wSeq = 1.0;
    p.numRegions = 4;
    p.regionKB = 2048;
    p.guardTakenBias = 0.15;
    p.hardBranchFraction = 0.03;
    p.correlatedFraction = 0.2;
    v.push_back(p);

    // ---- tiffdither: error diffusion, serial middle of the range -------
    p = BenchmarkProfile{};
    p.name = "tiffdither";
    p.seed = 191;
    p.numLoops = 3;
    p.blocksPerLoop = 5;
    p.instrsPerBlock = 10;
    p.tripCount = 192;
    p.guardFraction = 0.5;
    p.wIntAlu = 1.0;
    p.wIntMult = 0.05;
    p.wLoad = 0.26;
    p.wStore = 0.10;
    p.ilpChains = 1.8;
    p.indepFraction = 0.10;
    p.loadDepBias = 0.20;
    p.wSeq = 0.85;
    p.wStrided = 0.15;
    p.numRegions = 2;
    p.regionKB = 48;
    p.guardTakenBias = 0.35;
    p.hardBranchFraction = 0.15;
    p.correlatedFraction = 0.15;
    v.push_back(p);

    // ---- tiffmedian: histogram median cut, random table walks ----------
    p = BenchmarkProfile{};
    p.name = "tiffmedian";
    p.seed = 193;
    p.numLoops = 4;
    p.blocksPerLoop = 4;
    p.instrsPerBlock = 11;
    p.tripCount = 128;
    p.guardFraction = 0.45;
    p.wIntAlu = 1.0;
    p.wIntMult = 0.03;
    p.wLoad = 0.30;
    p.wStore = 0.12;
    p.ilpChains = 2.4;
    p.indepFraction = 0.14;
    p.loadDepBias = 0.12;
    p.wSeq = 0.6;
    p.wRandom = 0.4;
    p.numRegions = 2;
    p.regionKB = 48;
    p.guardTakenBias = 0.3;
    p.hardBranchFraction = 0.12;
    p.correlatedFraction = 0.15;
    v.push_back(p);

    MECH_ASSERT(v.size() == 19, "expected 19 MiBench-like profiles");
    return v;
}

std::vector<BenchmarkProfile>
makeSpecLike()
{
    std::vector<BenchmarkProfile> v;
    BenchmarkProfile p;

    // ---- mcf: pointer chasing over a huge graph ------------------------
    p = BenchmarkProfile{};
    p.name = "mcf";
    p.seed = 211;
    p.numLoops = 4;
    p.blocksPerLoop = 4;
    p.instrsPerBlock = 8;
    p.tripCount = 128;
    p.guardFraction = 0.6;
    p.wIntAlu = 1.0;
    p.wLoad = 0.36;
    p.wStore = 0.09;
    p.ilpChains = 1.6;
    p.indepFraction = 0.08;
    p.loadDepBias = 0.40;
    p.wSeq = 0.15;
    p.wRandom = 0.45;
    p.wPointer = 0.40;
    p.numRegions = 3;
    p.regionKB = 6144;
    p.guardTakenBias = 0.4;
    p.hardBranchFraction = 0.22;
    p.correlatedFraction = 0.1;
    v.push_back(p);

    // ---- libquantum: long unit-stride sweeps over a huge vector --------
    p = BenchmarkProfile{};
    p.name = "libquantum";
    p.seed = 223;
    p.numLoops = 2;
    p.blocksPerLoop = 3;
    p.instrsPerBlock = 10;
    p.tripCount = 512;
    p.guardFraction = 0.3;
    p.wIntAlu = 1.0;
    p.wLoad = 0.33;
    p.wStore = 0.15;
    p.ilpChains = 4.5;
    p.indepFraction = 0.2;
    p.loadDepBias = 0.05;
    p.wSeq = 1.0;
    p.numRegions = 2;
    p.regionKB = 16384;
    p.guardTakenBias = 0.2;
    p.hardBranchFraction = 0.03;
    p.correlatedFraction = 0.2;
    v.push_back(p);

    // ---- omnetpp: event-queue pointer soup, branchy --------------------
    p = BenchmarkProfile{};
    p.name = "omnetpp";
    p.seed = 227;
    p.numLoops = 10;
    p.blocksPerLoop = 6;
    p.instrsPerBlock = 9;
    p.tripCount = 48;
    p.guardFraction = 0.6;
    p.wIntAlu = 1.0;
    p.wLoad = 0.32;
    p.wStore = 0.12;
    p.ilpChains = 1.9;
    p.indepFraction = 0.1;
    p.loadDepBias = 0.28;
    p.wSeq = 0.25;
    p.wRandom = 0.50;
    p.wPointer = 0.25;
    p.numRegions = 4;
    p.regionKB = 3072;
    p.guardTakenBias = 0.4;
    p.hardBranchFraction = 0.25;
    p.correlatedFraction = 0.15;
    v.push_back(p);

    // ---- astar: grid pathfinding, data-dependent branches --------------
    p = BenchmarkProfile{};
    p.name = "astar";
    p.seed = 229;
    p.numLoops = 5;
    p.blocksPerLoop = 5;
    p.instrsPerBlock = 9;
    p.tripCount = 96;
    p.guardFraction = 0.65;
    p.wIntAlu = 1.0;
    p.wLoad = 0.33;
    p.wStore = 0.08;
    p.ilpChains = 2.0;
    p.indepFraction = 0.1;
    p.loadDepBias = 0.28;
    p.wSeq = 0.3;
    p.wRandom = 0.45;
    p.wPointer = 0.25;
    p.numRegions = 3;
    p.regionKB = 1536;
    p.guardTakenBias = 0.45;
    p.hardBranchFraction = 0.3;
    p.correlatedFraction = 0.1;
    v.push_back(p);

    // ---- bzip2: block-sort compression, mixed locality ------------------
    p = BenchmarkProfile{};
    p.name = "bzip2";
    p.seed = 233;
    p.numLoops = 6;
    p.blocksPerLoop = 5;
    p.instrsPerBlock = 10;
    p.tripCount = 128;
    p.guardFraction = 0.55;
    p.wIntAlu = 1.0;
    p.wLoad = 0.28;
    p.wStore = 0.12;
    p.ilpChains = 2.4;
    p.indepFraction = 0.12;
    p.loadDepBias = 0.15;
    p.wSeq = 0.5;
    p.wRandom = 0.5;
    p.numRegions = 3;
    p.regionKB = 2048;
    p.guardTakenBias = 0.4;
    p.hardBranchFraction = 0.25;
    p.correlatedFraction = 0.15;
    v.push_back(p);

    // ---- gcc: huge code footprint, branchy, medium data -----------------
    p = BenchmarkProfile{};
    p.name = "gcc";
    p.seed = 239;
    p.numLoops = 48;
    p.blocksPerLoop = 8;
    p.instrsPerBlock = 30;
    p.tripCount = 6;
    p.guardFraction = 0.6;
    p.wIntAlu = 1.0;
    p.wLoad = 0.28;
    p.wStore = 0.12;
    p.ilpChains = 2.5;
    p.indepFraction = 0.14;
    p.loadDepBias = 0.15;
    p.wSeq = 0.45;
    p.wRandom = 0.55;
    p.numRegions = 4;
    p.regionKB = 768;
    p.guardTakenBias = 0.35;
    p.hardBranchFraction = 0.2;
    p.correlatedFraction = 0.2;
    v.push_back(p);

    // ---- milc: lattice QCD, fp streaming over a huge grid ---------------
    p = BenchmarkProfile{};
    p.name = "milc";
    p.seed = 241;
    p.numLoops = 4;
    p.blocksPerLoop = 4;
    p.instrsPerBlock = 20;
    p.tripCount = 192;
    p.guardFraction = 0.2;
    p.wIntAlu = 1.0;
    p.wFpAlu = 0.5;
    p.wFpMult = 0.35;
    p.wLoad = 0.35;
    p.wStore = 0.12;
    p.ilpChains = 4.0;
    p.indepFraction = 0.18;
    p.loadDepBias = 0.05;
    p.wSeq = 0.9;
    p.wStrided = 0.1;
    p.numRegions = 3;
    p.regionKB = 8192;
    p.guardTakenBias = 0.15;
    p.hardBranchFraction = 0.03;
    p.correlatedFraction = 0.2;
    v.push_back(p);

    // ---- lbm: fluid stencil, store-heavy streaming -----------------------
    p = BenchmarkProfile{};
    p.name = "lbm";
    p.seed = 251;
    p.numLoops = 2;
    p.blocksPerLoop = 3;
    p.instrsPerBlock = 24;
    p.tripCount = 384;
    p.guardFraction = 0.15;
    p.wIntAlu = 1.0;
    p.wFpAlu = 0.55;
    p.wFpMult = 0.3;
    p.wLoad = 0.30;
    p.wStore = 0.20;
    p.ilpChains = 4.5;
    p.indepFraction = 0.2;
    p.loadDepBias = 0.04;
    p.wSeq = 0.85;
    p.wStrided = 0.15;
    p.numRegions = 2;
    p.regionKB = 16384;
    p.guardTakenBias = 0.1;
    p.hardBranchFraction = 0.02;
    p.correlatedFraction = 0.2;
    v.push_back(p);

    // ---- hmmer: profile HMM inner loop, ALU-dense, cache-resident -------
    p = BenchmarkProfile{};
    p.name = "hmmer";
    p.seed = 257;
    p.numLoops = 2;
    p.blocksPerLoop = 4;
    p.instrsPerBlock = 18;
    p.tripCount = 256;
    p.guardFraction = 0.25;
    p.wIntAlu = 1.0;
    p.wLoad = 0.30;
    p.wStore = 0.10;
    p.ilpChains = 4.0;
    p.indepFraction = 0.2;
    p.loadDepBias = 0.08;
    p.wSeq = 0.8;
    p.wStrided = 0.2;
    p.numRegions = 3;
    p.regionKB = 96;
    p.guardTakenBias = 0.2;
    p.hardBranchFraction = 0.06;
    p.correlatedFraction = 0.25;
    v.push_back(p);

    // ---- sjeng: game-tree search, mispredict-dominated -------------------
    p = BenchmarkProfile{};
    p.name = "sjeng";
    p.seed = 263;
    p.numLoops = 12;
    p.blocksPerLoop = 6;
    p.instrsPerBlock = 8;
    p.tripCount = 48;
    p.guardFraction = 0.7;
    p.wIntAlu = 1.0;
    p.wLoad = 0.26;
    p.wStore = 0.08;
    p.ilpChains = 2.3;
    p.indepFraction = 0.12;
    p.loadDepBias = 0.12;
    p.wSeq = 0.35;
    p.wRandom = 0.65;
    p.numRegions = 3;
    p.regionKB = 1024;
    p.guardTakenBias = 0.45;
    p.hardBranchFraction = 0.35;
    p.correlatedFraction = 0.1;
    v.push_back(p);

    return v;
}

} // namespace

const std::vector<BenchmarkProfile> &
mibenchSuite()
{
    static const std::vector<BenchmarkProfile> suite = makeMibench();
    return suite;
}

const std::vector<BenchmarkProfile> &
specLikeSuite()
{
    static const std::vector<BenchmarkProfile> suite = makeSpecLike();
    return suite;
}

const BenchmarkProfile *
findProfile(const std::string &name)
{
    // Fig. 7 of the paper uses the MiBench binary names; map them to
    // the canonical profile names used elsewhere.
    static const std::map<std::string, std::string> aliases = {
        {"cjpeg", "jpeg_c"},
        {"djpeg", "jpeg_d"},
        {"toast", "gsm_c"},
    };
    std::string wanted = name;
    if (auto it = aliases.find(wanted); it != aliases.end())
        wanted = it->second;

    for (const auto &p : mibenchSuite()) {
        if (p.name == wanted)
            return &p;
    }
    for (const auto &p : specLikeSuite()) {
        if (p.name == wanted)
            return &p;
    }
    return nullptr;
}

const BenchmarkProfile &
profileByName(const std::string &name)
{
    if (const BenchmarkProfile *p = findProfile(name))
        return *p;
    fatal("unknown benchmark profile '", name, "'");
}

std::vector<std::string>
allProfileNames()
{
    std::vector<std::string> names;
    for (const auto &p : mibenchSuite())
        names.push_back(p.name);
    for (const auto &p : specLikeSuite())
        names.push_back(p.name);
    std::sort(names.begin(), names.end());
    return names;
}

} // namespace mech
