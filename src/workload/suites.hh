/**
 * @file
 * Named benchmark-profile suites.
 *
 * mibenchSuite() returns the 19 MiBench-like profiles the paper
 * validates on (Fig. 3); specLikeSuite() returns the memory-intensive
 * SPEC-CPU2006-like profiles of Fig. 6.  Profiles are synthetic
 * substitutes (see DESIGN.md §1) whose knobs mirror each benchmark's
 * published character: ILP, mul/div density, memory footprint and
 * patterns, branch behaviour, and static code footprint.
 */

#ifndef MECH_WORKLOAD_SUITES_HH
#define MECH_WORKLOAD_SUITES_HH

#include <string>
#include <vector>

#include "workload/profile.hh"

namespace mech {

/** The 19 MiBench-like benchmark profiles (paper §4, Fig. 3). */
const std::vector<BenchmarkProfile> &mibenchSuite();

/** Memory-intensive SPEC-CPU2006-like profiles (Fig. 6). */
const std::vector<BenchmarkProfile> &specLikeSuite();

/**
 * Look up a profile by name across all suites.
 *
 * Aliases used by the paper's Fig. 7 (cjpeg/djpeg/toast for
 * jpeg_c/jpeg_d/gsm_c) resolve to their canonical profiles.
 *
 * Calls fatal() if the name is unknown (user error).
 */
const BenchmarkProfile &profileByName(const std::string &name);

} // namespace mech

#endif // MECH_WORKLOAD_SUITES_HH
