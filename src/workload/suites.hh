/**
 * @file
 * Named benchmark-profile suites.
 *
 * mibenchSuite() returns the 19 MiBench-like profiles the paper
 * validates on (Fig. 3); specLikeSuite() returns the memory-intensive
 * SPEC-CPU2006-like profiles of Fig. 6.  Profiles are synthetic
 * substitutes (see DESIGN.md §1) whose knobs mirror each benchmark's
 * published character: ILP, mul/div density, memory footprint and
 * patterns, branch behaviour, and static code footprint.
 */

#ifndef MECH_WORKLOAD_SUITES_HH
#define MECH_WORKLOAD_SUITES_HH

#include <string>
#include <vector>

#include "workload/profile.hh"

namespace mech {

/** The 19 MiBench-like benchmark profiles (paper §4, Fig. 3). */
const std::vector<BenchmarkProfile> &mibenchSuite();

/** Memory-intensive SPEC-CPU2006-like profiles (Fig. 6). */
const std::vector<BenchmarkProfile> &specLikeSuite();

/**
 * Look up a profile by name across all suites, or null when the name
 * is unknown.
 *
 * Aliases used by the paper's Fig. 7 (cjpeg/djpeg/toast for
 * jpeg_c/jpeg_d/gsm_c) resolve to their canonical profiles.  The
 * nullable variant exists for the serve layer, where an unknown
 * benchmark is ordinary client input that must become a structured
 * error response rather than terminate the process.
 */
const BenchmarkProfile *findProfile(const std::string &name);

/** findProfile(), but calls fatal() on an unknown name (user error). */
const BenchmarkProfile &profileByName(const std::string &name);

/** Every known profile name (both suites, no aliases), sorted. */
std::vector<std::string> allProfileNames();

} // namespace mech

#endif // MECH_WORKLOAD_SUITES_HH
