/**
 * @file
 * Tests for the benchmark harness: the measurement core
 * (src/common/bench.hh) and the JSON artifact / baseline-comparison
 * layer (bench/harness.hh).
 */

#include <chrono>
#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "common/bench.hh"
#include "harness.hh"

namespace mech::bench {
namespace {

// ---- measurement core -------------------------------------------------------

TEST(BenchTiming, MonotonicClockNeverGoesBackwards)
{
    double last = monotonicSeconds();
    for (int i = 0; i < 1000; ++i) {
        double now = monotonicSeconds();
        ASSERT_GE(now, last);
        last = now;
    }
}

TEST(BenchTiming, MeasureCountsEveryRepetition)
{
    MeasureOptions opts;
    opts.repetitions = 4;
    opts.minSeconds = 0.0;  // no calibration growth
    opts.warmupIters = 2;

    int calls = 0;
    Measurement m = measure([&] { ++calls; }, opts);

    EXPECT_EQ(m.itersPerRep, 1u);
    EXPECT_EQ(m.repSecondsPerIter.size(), 4u);
    // warmup (2) + calibration-as-first-rep (1) + 3 further reps.
    EXPECT_EQ(calls, 6);
}

TEST(BenchTiming, MinOfNSelectsTheFastestRepetition)
{
    MeasureOptions opts;
    opts.repetitions = 5;
    opts.minSeconds = 0.0;

    Measurement m = measure(
        [] { std::this_thread::sleep_for(std::chrono::microseconds(200)); },
        opts);

    ASSERT_EQ(m.repSecondsPerIter.size(), 5u);
    double min_rep = m.repSecondsPerIter.front();
    for (double s : m.repSecondsPerIter)
        min_rep = std::min(min_rep, s);
    EXPECT_DOUBLE_EQ(m.secondsPerIter, min_rep);
    // A 200us sleep can never complete faster than 200us.
    EXPECT_GE(m.secondsPerIter, 200e-6);
}

TEST(BenchTiming, CalibrationMeetsTheTimeFloor)
{
    MeasureOptions opts;
    opts.repetitions = 1;
    opts.minSeconds = 0.005;

    // The optimizer barrier keeps the body at a real (sub-us) cost,
    // so the calibration loop must raise the iteration count to
    // reach the floor.
    Measurement m = measure(
        [] {
            for (int i = 0; i < 256; ++i)
                doNotOptimize(i);
        },
        opts);

    EXPECT_GT(m.itersPerRep, 1u);
    // One repetition of itersPerRep iterations must have lasted at
    // least the floor (halved for clock noise).
    EXPECT_GE(m.secondsPerIter * static_cast<double>(m.itersPerRep),
              opts.minSeconds * 0.5);
}

TEST(BenchTiming, RateInvertsSecondsPerIteration)
{
    Measurement m;
    m.secondsPerIter = 0.25;
    EXPECT_DOUBLE_EQ(m.rate(100.0), 400.0);
    Measurement zero;
    EXPECT_DOUBLE_EQ(zero.rate(100.0), 0.0);
}

// ---- JSON artifacts ---------------------------------------------------------

BenchReport
sampleReport()
{
    BenchReport r;
    r.generator = "unit-test";
    r.gitSha = "abc1234";
    r.compiler = "gcc 12.2.0";
    r.buildType = "Release";
    r.add("suiteA", "bench1", "throughput", 1.25e8, "insns/s");
    r.add("suiteA", "bench2", "latency", 3.5e-6, "s");
    r.add("suiteB", "we\"ird\\name", "value", -42.5, "x");
    return r;
}

TEST(BenchArtifact, JsonRoundTripPreservesEverything)
{
    BenchReport before = sampleReport();
    std::stringstream ss;
    writeReportJson(before, ss);

    BenchReport after = parseReportJson(ss);
    EXPECT_EQ(after.schemaVersion, kBenchSchemaVersion);
    EXPECT_EQ(after.generator, before.generator);
    EXPECT_EQ(after.gitSha, before.gitSha);
    EXPECT_EQ(after.compiler, before.compiler);
    EXPECT_EQ(after.buildType, before.buildType);
    ASSERT_EQ(after.results.size(), before.results.size());
    for (std::size_t i = 0; i < before.results.size(); ++i) {
        EXPECT_EQ(after.results[i].suite, before.results[i].suite);
        EXPECT_EQ(after.results[i].benchmark,
                  before.results[i].benchmark);
        EXPECT_EQ(after.results[i].metric, before.results[i].metric);
        // 17 significant digits round-trip doubles exactly.
        EXPECT_EQ(after.results[i].value, before.results[i].value);
        EXPECT_EQ(after.results[i].unit, before.results[i].unit);
    }
}

TEST(BenchArtifact, EmptyResultsRoundTrip)
{
    BenchReport before = makeReport("empty");
    std::stringstream ss;
    writeReportJson(before, ss);
    BenchReport after = parseReportJson(ss);
    EXPECT_TRUE(after.results.empty());
    EXPECT_EQ(after.generator, "empty");
}

TEST(BenchArtifact, MakeReportFillsProvenance)
{
    BenchReport r = makeReport("prov");
    EXPECT_EQ(r.generator, "prov");
    EXPECT_FALSE(r.gitSha.empty());
    EXPECT_FALSE(r.compiler.empty());
    EXPECT_FALSE(r.buildType.empty());
}

TEST(BenchArtifact, RejectsMalformedJson)
{
    std::stringstream ss("{ not json ]");
    EXPECT_THROW(parseReportJson(ss), BenchIoError);
}

TEST(BenchArtifact, RejectsMissingSchemaVersion)
{
    std::stringstream ss(R"({"generator": "x", "results": []})");
    EXPECT_THROW(parseReportJson(ss), BenchIoError);
}

TEST(BenchArtifact, RejectsFutureSchemaVersions)
{
    std::stringstream ss(
        R"({"schema_version": 999, "generator": "x", "git_sha": "s",
            "compiler": "c", "build_type": "b", "results": []})");
    EXPECT_THROW(parseReportJson(ss), BenchIoError);
}

TEST(BenchArtifact, RejectsNonObjectResults)
{
    std::stringstream ss(
        R"({"schema_version": 1, "generator": "x", "git_sha": "s",
            "compiler": "c", "build_type": "b", "results": [1, 2]})");
    EXPECT_THROW(parseReportJson(ss), BenchIoError);
}

TEST(BenchArtifact, SaveAndLoadThroughAFile)
{
    BenchReport before = sampleReport();
    std::string path =
        ::testing::TempDir() + "/bench_harness_roundtrip.json";
    saveReport(before, path);
    BenchReport after = loadReport(path);
    ASSERT_EQ(after.results.size(), before.results.size());
    EXPECT_EQ(after.results[2].benchmark, "we\"ird\\name");
    EXPECT_EQ(after.results[2].value, -42.5);
}

TEST(BenchArtifact, LoadOfMissingFileThrows)
{
    EXPECT_THROW(loadReport("/nonexistent/bench.json"), BenchIoError);
}

// ---- baseline comparison ----------------------------------------------------

TEST(BenchBaseline, UnitEncodesTheComparisonDirection)
{
    BenchRecord rate{"s", "b", "m", 1.0, "insns/s"};
    BenchRecord cost{"s", "b", "m", 1.0, "s"};
    BenchRecord speedup{"s", "b", "m", 2.0, "speedup"};
    BenchRecord ratio{"s", "b", "m", 2.0, "x"};
    EXPECT_TRUE(rate.higherIsBetter());
    EXPECT_FALSE(cost.higherIsBetter());
    // Speedups improve upward; bare "x" ratios (e.g. normalized
    // cycles) are costs.
    EXPECT_TRUE(speedup.higherIsBetter());
    EXPECT_FALSE(ratio.higherIsBetter());
}

TEST(BenchBaseline, ImprovedSpeedupNeverRegresses)
{
    BenchReport base = makeReport("t");
    base.add("s", "b", "parallel_speedup", 2.0, "speedup");
    BenchReport cur = makeReport("t");
    cur.add("s", "b", "parallel_speedup", 5.0, "speedup");

    auto cmp = compareToBaseline(cur, base, 2.0);
    ASSERT_EQ(cmp.compared.size(), 1u);
    EXPECT_FALSE(cmp.compared[0].regressed);

    // And a collapse in scaling does regress.
    auto rev = compareToBaseline(base, cur, 2.0);
    ASSERT_EQ(rev.compared.size(), 1u);
    EXPECT_TRUE(rev.compared[0].regressed);
}

TEST(BenchBaseline, RateSlowdownComputedAsBaselineOverCurrent)
{
    BenchReport base = makeReport("t");
    base.add("s", "b", "throughput", 100.0, "evals/s");
    BenchReport cur = makeReport("t");
    cur.add("s", "b", "throughput", 40.0, "evals/s");

    auto cmp = compareToBaseline(cur, base, 2.0);
    ASSERT_EQ(cmp.compared.size(), 1u);
    EXPECT_DOUBLE_EQ(cmp.compared[0].slowdown, 2.5);
    EXPECT_TRUE(cmp.compared[0].regressed);
    EXPECT_TRUE(cmp.anyRegression());
}

TEST(BenchBaseline, GenerousThresholdToleratesNoise)
{
    BenchReport base = makeReport("t");
    base.add("s", "b", "throughput", 100.0, "evals/s");
    BenchReport cur = makeReport("t");
    cur.add("s", "b", "throughput", 60.0, "evals/s"); // 1.67x slower

    auto cmp = compareToBaseline(cur, base, 2.0);
    ASSERT_EQ(cmp.compared.size(), 1u);
    EXPECT_FALSE(cmp.compared[0].regressed);
    EXPECT_FALSE(cmp.anyRegression());
}

TEST(BenchBaseline, CostMetricsRegressWhenTheyGrow)
{
    BenchReport base = makeReport("t");
    base.add("s", "b", "wall", 1.0, "s");
    BenchReport cur = makeReport("t");
    cur.add("s", "b", "wall", 2.5, "s");

    auto cmp = compareToBaseline(cur, base, 2.0);
    ASSERT_EQ(cmp.compared.size(), 1u);
    EXPECT_DOUBLE_EQ(cmp.compared[0].slowdown, 2.5);
    EXPECT_TRUE(cmp.compared[0].regressed);
}

TEST(BenchBaseline, SpeedupsNeverRegress)
{
    BenchReport base = makeReport("t");
    base.add("s", "b", "throughput", 100.0, "evals/s");
    BenchReport cur = makeReport("t");
    cur.add("s", "b", "throughput", 500.0, "evals/s");

    auto cmp = compareToBaseline(cur, base, 2.0);
    ASSERT_EQ(cmp.compared.size(), 1u);
    EXPECT_DOUBLE_EQ(cmp.compared[0].slowdown, 0.2);
    EXPECT_FALSE(cmp.anyRegression());
}

TEST(BenchBaseline, UnitMismatchIsAlwaysARegression)
{
    BenchReport base = makeReport("t");
    base.add("s", "b", "throughput", 100.0, "evals/s");
    BenchReport cur = makeReport("t");
    cur.add("s", "b", "throughput", 100.0, "points/s");

    auto cmp = compareToBaseline(cur, base, 2.0);
    ASSERT_EQ(cmp.compared.size(), 1u);
    EXPECT_TRUE(cmp.compared[0].regressed);
}

TEST(BenchBaseline, DegenerateValuesNeverGate)
{
    BenchReport base = makeReport("t");
    base.add("s", "b", "throughput", 0.0, "evals/s");
    BenchReport cur = makeReport("t");
    cur.add("s", "b", "throughput", 50.0, "evals/s");

    auto cmp = compareToBaseline(cur, base, 2.0);
    ASSERT_EQ(cmp.compared.size(), 1u);
    EXPECT_FALSE(cmp.compared[0].regressed);
}

TEST(BenchBaseline, UnmatchedRecordsAreReportedNotGated)
{
    BenchReport base = makeReport("t");
    base.add("s", "gone", "throughput", 1.0, "evals/s");
    BenchReport cur = makeReport("t");
    cur.add("s", "new", "throughput", 1.0, "evals/s");

    auto cmp = compareToBaseline(cur, base, 2.0);
    EXPECT_TRUE(cmp.compared.empty());
    ASSERT_EQ(cmp.missingInBaseline.size(), 1u);
    EXPECT_EQ(cmp.missingInBaseline[0].benchmark, "new");
    ASSERT_EQ(cmp.missingInCurrent.size(), 1u);
    EXPECT_EQ(cmp.missingInCurrent[0].benchmark, "gone");
    EXPECT_FALSE(cmp.anyRegression());
}

} // namespace
} // namespace mech::bench
