/**
 * @file
 * Unit tests for the branch-predictor substrate: learning behaviour
 * of each design on deterministic patterns, hardware budgets, and the
 * single-pass multi-predictor profiler.
 */

#include <gtest/gtest.h>

#include "branch/predictor.hh"
#include "branch/profiler.hh"

namespace mech {
namespace {

/** Run @p n outcomes of a pattern through a predictor; return hits. */
std::uint64_t
trainOn(BranchPredictor &pred, Addr pc, const std::vector<bool> &pattern,
        int repeats)
{
    std::uint64_t hits = 0;
    for (int r = 0; r < repeats; ++r) {
        for (bool taken : pattern) {
            if (pred.predict(pc) == taken)
                ++hits;
            pred.update(pc, taken);
        }
    }
    return hits;
}

TEST(StaticPredictors, FixedDirection)
{
    auto nt = makePredictor(PredictorKind::NotTaken);
    auto tk = makePredictor(PredictorKind::Taken);
    EXPECT_FALSE(nt->predict(0x1000));
    EXPECT_TRUE(tk->predict(0x1000));
    nt->update(0x1000, true);
    EXPECT_FALSE(nt->predict(0x1000)); // static never learns
}

TEST(Bimodal, LearnsBias)
{
    auto p = makePredictor(PredictorKind::Bimodal);
    std::uint64_t hits = trainOn(*p, 0x1000, {true}, 100);
    EXPECT_GE(hits, 98u); // misses at most the warmup
}

TEST(Bimodal, HysteresisSurvivesSingleFlip)
{
    auto p = makePredictor(PredictorKind::Bimodal);
    trainOn(*p, 0x1000, {true}, 10);
    p->update(0x1000, false); // one not-taken
    EXPECT_TRUE(p->predict(0x1000)); // 2-bit counter keeps taken
}

TEST(Bimodal, CannotLearnAlternation)
{
    auto p = makePredictor(PredictorKind::Bimodal);
    std::uint64_t hits = trainOn(*p, 0x1000, {true, false}, 200);
    // A history-less 2-bit counter is at chance on T/N/T/N.
    EXPECT_LE(hits, 240u);
}

TEST(Gshare, LearnsAlternation)
{
    auto p = makePredictor(PredictorKind::Gshare1K);
    trainOn(*p, 0x1000, {true, false}, 50); // warmup
    std::uint64_t hits = trainOn(*p, 0x1000, {true, false}, 100);
    EXPECT_GE(hits, 195u); // history disambiguates the phases
}

TEST(Gshare, LearnsLoopExitPattern)
{
    // Taken 7x then not-taken once (8-iteration loop): needs history.
    std::vector<bool> loop(8, true);
    loop[7] = false;
    auto p = makePredictor(PredictorKind::Gshare1K);
    trainOn(*p, 0x1000, loop, 30);
    std::uint64_t hits = trainOn(*p, 0x1000, loop, 50);
    EXPECT_GE(hits, 390u); // 400 executions, near-perfect
}

TEST(Local, LearnsPerBranchPattern)
{
    auto p = makePredictor(PredictorKind::Local);
    std::vector<bool> pat = {true, true, false};
    trainOn(*p, 0x1000, pat, 50);
    std::uint64_t hits = trainOn(*p, 0x1000, pat, 100);
    EXPECT_GE(hits, 290u);
}

TEST(Hybrid, AtLeastAsGoodAsComponentsOnMix)
{
    // Two branches: one alternating (global-friendly), one short
    // periodic (local-friendly), interleaved.
    auto run = [](PredictorKind kind) {
        auto p = makePredictor(kind);
        std::uint64_t hits = 0, total = 0;
        bool alt = false;
        for (int i = 0; i < 3000; ++i) {
            alt = !alt;
            bool t1 = alt;
            if (p->predict(0x1000) == t1)
                ++hits;
            p->update(0x1000, t1);
            bool t2 = (i % 3) != 2;
            if (p->predict(0x2000) == t2)
                ++hits;
            p->update(0x2000, t2);
            total += 2;
        }
        return static_cast<double>(hits) / static_cast<double>(total);
    };
    double hybrid = run(PredictorKind::Hybrid3K5);
    EXPECT_GE(hybrid, 0.93);
}

TEST(Hybrid, Resets)
{
    auto p = makePredictor(PredictorKind::Hybrid3K5);
    trainOn(*p, 0x1000, {true}, 50);
    p->reset();
    // After reset the default (weakly taken counters, empty history)
    // prediction must be deterministic.
    EXPECT_EQ(p->predict(0x1000), p->predict(0x1000));
}

TEST(PredictorBytes, MatchesTable2Budgets)
{
    EXPECT_EQ(predictorBytes(PredictorKind::Gshare1K), 1024u);
    EXPECT_EQ(predictorBytes(PredictorKind::Hybrid3K5), 3584u); // 3.5 KiB
    EXPECT_EQ(predictorBytes(PredictorKind::NotTaken), 0u);
}

TEST(PredictorNames, AreDistinct)
{
    EXPECT_NE(predictorName(PredictorKind::Gshare1K),
              predictorName(PredictorKind::Hybrid3K5));
    EXPECT_NE(predictorName(PredictorKind::Bimodal),
              predictorName(PredictorKind::Local));
}

// ---- BranchProfiler ----------------------------------------------------------

TEST(BranchProfiler, CountsBranchesPerPredictor)
{
    BranchProfiler prof({PredictorKind::NotTaken, PredictorKind::Taken});
    for (int i = 0; i < 10; ++i)
        prof.observe(0x1000, true);
    const auto &nt = prof.profileFor(PredictorKind::NotTaken);
    const auto &tk = prof.profileFor(PredictorKind::Taken);
    EXPECT_EQ(nt.branches, 10u);
    EXPECT_EQ(nt.mispredicts, 10u);
    EXPECT_EQ(tk.mispredicts, 0u);
    EXPECT_EQ(tk.predictedTaken, 10u);
    EXPECT_EQ(tk.predictedTakenCorrect, 10u);
}

TEST(BranchProfiler, PredictedTakenCorrectExcludesWrongTaken)
{
    BranchProfiler prof({PredictorKind::Taken});
    prof.observe(0x1000, false); // predicted taken, actually not
    prof.observe(0x1000, true);  // predicted taken, actually taken
    const auto &p = prof.profileFor(PredictorKind::Taken);
    EXPECT_EQ(p.predictedTaken, 2u);
    EXPECT_EQ(p.predictedTakenCorrect, 1u);
    EXPECT_EQ(p.mispredicts, 1u);
}

TEST(BranchProfiler, RateComputation)
{
    BranchProfile p;
    EXPECT_DOUBLE_EQ(p.rate(), 0.0);
    p.branches = 10;
    p.mispredicts = 3;
    EXPECT_DOUBLE_EQ(p.rate(), 0.3);
}

TEST(BranchProfiler, SinglePassMatchesSeparatePasses)
{
    // Profiling two predictors together must equal profiling each
    // alone (no cross-predictor interference).
    std::vector<std::pair<Addr, bool>> stream;
    for (int i = 0; i < 500; ++i)
        stream.push_back({0x1000 + (i % 7) * 4, (i % 3) != 0});

    BranchProfiler combined(
        {PredictorKind::Gshare1K, PredictorKind::Hybrid3K5});
    BranchProfiler alone(
        {PredictorKind::Gshare1K});
    for (auto [pc, taken] : stream) {
        combined.observe(pc, taken);
        alone.observe(pc, taken);
    }
    EXPECT_EQ(combined.profileFor(PredictorKind::Gshare1K).mispredicts,
              alone.profileFor(PredictorKind::Gshare1K).mispredicts);
}

} // namespace
} // namespace mech
