/**
 * @file
 * Tests for the `.mcache` warm-cache spill codec (search/cache_io.hh)
 * and the file utilities underneath it (common/file_util.hh): bit
 * identity across a save/load round trip, strict rejection of every
 * mismatch class (version, probe hash, group key, layout, truncation,
 * trailing bytes, corrupted entries), and atomic write + mmap read.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/file_util.hh"
#include "dse/design_space.hh"
#include "search/cache_io.hh"
#include "search/eval_cache.hh"
#include "search/space_spec.hh"

namespace mech {
namespace {

constexpr const char *kGroupKey =
    "bench=jpeg_c|backends=model|obj=cpi,edp";
constexpr std::uint32_t kAggLen = 2;
constexpr std::uint32_t kPerBenchLen = 2;

/** A cache of @p n distinct points with recognizable bit patterns. */
void
fillCache(EvalCache &cache, std::size_t n)
{
    SpaceSpec spec = SpaceSpec::table2();
    for (std::size_t i = 0; i < n; ++i) {
        SearchEval eval;
        eval.point = spec.at(i % spec.size());
        // Values exercise exact-bit preservation: negatives,
        // subnormal-ish magnitudes, and non-terminating fractions.
        eval.aggregate = {1.0 / 3.0 + static_cast<double>(i),
                          -2.5e-308 * static_cast<double>(i + 1)};
        eval.perBench = {0.1 * static_cast<double>(i), 7e300};
        cache.insert(std::move(eval));
    }
}

std::uint64_t
bitsOf(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

void
expectSameEntries(const EvalCache &a, const EvalCache &b)
{
    const auto ea = a.entries();
    const auto eb = b.entries();
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t i = 0; i < ea.size(); ++i) {
        EXPECT_EQ(ea[i]->point.toKey(), eb[i]->point.toKey());
        EXPECT_EQ(ea[i]->firstIndex, eb[i]->firstIndex);
        ASSERT_EQ(ea[i]->aggregate.size(), eb[i]->aggregate.size());
        for (std::size_t k = 0; k < ea[i]->aggregate.size(); ++k) {
            EXPECT_EQ(bitsOf(ea[i]->aggregate[k]),
                      bitsOf(eb[i]->aggregate[k]));
        }
        ASSERT_EQ(ea[i]->perBench.size(), eb[i]->perBench.size());
        for (std::size_t k = 0; k < ea[i]->perBench.size(); ++k) {
            EXPECT_EQ(bitsOf(ea[i]->perBench[k]),
                      bitsOf(eb[i]->perBench[k]));
        }
    }
}

TEST(CacheIo, RoundTripIsBitIdentical)
{
    EvalCache cache;
    fillCache(cache, 17);
    const std::string bytes =
        encodeEvalCache(cache, kGroupKey, kAggLen, kPerBenchLen);

    EvalCache loaded;
    std::string error;
    ASSERT_TRUE(decodeEvalCache(bytes, kGroupKey, kAggLen,
                                kPerBenchLen, &loaded, &error))
        << error;
    expectSameEntries(cache, loaded);

    // Re-encoding the loaded cache reproduces the file exactly.
    EXPECT_EQ(bytes, encodeEvalCache(loaded, kGroupKey, kAggLen,
                                     kPerBenchLen));
}

TEST(CacheIo, EmptyCacheRoundTrips)
{
    EvalCache cache;
    const std::string bytes =
        encodeEvalCache(cache, kGroupKey, kAggLen, kPerBenchLen);
    EvalCache loaded;
    ASSERT_TRUE(decodeEvalCache(bytes, kGroupKey, kAggLen,
                                kPerBenchLen, &loaded));
    EXPECT_EQ(loaded.size(), 0u);
}

TEST(CacheIo, RejectsBadMagic)
{
    EvalCache cache;
    fillCache(cache, 3);
    std::string bytes =
        encodeEvalCache(cache, kGroupKey, kAggLen, kPerBenchLen);
    bytes[0] = 'X';
    EvalCache loaded;
    std::string error;
    EXPECT_FALSE(decodeEvalCache(bytes, kGroupKey, kAggLen,
                                 kPerBenchLen, &loaded, &error));
    EXPECT_NE(error.find("magic"), std::string::npos);
}

TEST(CacheIo, RejectsFutureFormatVersion)
{
    EvalCache cache;
    fillCache(cache, 3);
    std::string bytes =
        encodeEvalCache(cache, kGroupKey, kAggLen, kPerBenchLen);
    bytes[4] = static_cast<char>(kCacheSpillFormatVersion + 1);
    EvalCache loaded;
    std::string error;
    EXPECT_FALSE(decodeEvalCache(bytes, kGroupKey, kAggLen,
                                 kPerBenchLen, &loaded, &error));
    EXPECT_NE(error.find("version"), std::string::npos);
}

TEST(CacheIo, RejectsProbeHashMismatch)
{
    // The probe hash occupies bytes [8, 16); flipping any bit there
    // simulates a DesignPoint::hash() scheme change.
    EvalCache cache;
    fillCache(cache, 3);
    std::string bytes =
        encodeEvalCache(cache, kGroupKey, kAggLen, kPerBenchLen);
    bytes[9] = static_cast<char>(bytes[9] ^ 0x40);
    EvalCache loaded;
    std::string error;
    EXPECT_FALSE(decodeEvalCache(bytes, kGroupKey, kAggLen,
                                 kPerBenchLen, &loaded, &error));
    EXPECT_NE(error.find("hash scheme"), std::string::npos);
}

TEST(CacheIo, RejectsGroupKeyMismatch)
{
    EvalCache cache;
    fillCache(cache, 3);
    const std::string bytes =
        encodeEvalCache(cache, kGroupKey, kAggLen, kPerBenchLen);
    EvalCache loaded;
    std::string error;
    EXPECT_FALSE(decodeEvalCache(
        bytes, "bench=sha|backends=model|obj=cpi,edp", kAggLen,
        kPerBenchLen, &loaded, &error));
    EXPECT_NE(error.find("group"), std::string::npos);
}

TEST(CacheIo, RejectsObjectiveLayoutMismatch)
{
    EvalCache cache;
    fillCache(cache, 3);
    const std::string bytes =
        encodeEvalCache(cache, kGroupKey, kAggLen, kPerBenchLen);
    EvalCache loaded;
    std::string error;
    EXPECT_FALSE(decodeEvalCache(bytes, kGroupKey, kAggLen + 1,
                                 kPerBenchLen, &loaded, &error));
    EXPECT_NE(error.find("layout"), std::string::npos);
}

TEST(CacheIo, RejectsEveryTruncation)
{
    EvalCache cache;
    fillCache(cache, 3);
    const std::string bytes =
        encodeEvalCache(cache, kGroupKey, kAggLen, kPerBenchLen);
    // Every proper prefix must be rejected without crashing — a
    // half-written spill (the atomic writer makes this impossible,
    // but a copied or damaged file does not) must read as cold.
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        EvalCache loaded;
        EXPECT_FALSE(decodeEvalCache(bytes.substr(0, len), kGroupKey,
                                     kAggLen, kPerBenchLen, &loaded))
            << "prefix of " << len << " bytes decoded";
    }
}

TEST(CacheIo, RejectsTrailingBytes)
{
    EvalCache cache;
    fillCache(cache, 3);
    std::string bytes =
        encodeEvalCache(cache, kGroupKey, kAggLen, kPerBenchLen);
    bytes += '\0';
    EvalCache loaded;
    std::string error;
    EXPECT_FALSE(decodeEvalCache(bytes, kGroupKey, kAggLen,
                                 kPerBenchLen, &loaded, &error));
    EXPECT_NE(error.find("trailing"), std::string::npos);
}

TEST(CacheIo, RejectsCorruptedEntryKey)
{
    EvalCache cache;
    fillCache(cache, 1);
    std::string bytes =
        encodeEvalCache(cache, kGroupKey, kAggLen, kPerBenchLen);
    // First entry's key begins after the fixed header (16), the
    // length-prefixed group key (4 + len), the layout pair (8), the
    // count (8) and the entry key's own length prefix (4).
    const std::size_t key_pos =
        16 + 4 + std::strlen(kGroupKey) + 8 + 8 + 4;
    ASSERT_LT(key_pos, bytes.size());
    bytes[key_pos] = '?';
    EvalCache loaded;
    std::string error;
    EXPECT_FALSE(decodeEvalCache(bytes, kGroupKey, kAggLen,
                                 kPerBenchLen, &loaded, &error));
    EXPECT_FALSE(error.empty());
}

TEST(CacheIo, SpillPathIsStableAndFilesystemSafe)
{
    const std::string a = cacheSpillPath("/tmp/warm", kGroupKey);
    const std::string b = cacheSpillPath("/tmp/warm/", kGroupKey);
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("/tmp/warm/"), std::string::npos);
    EXPECT_EQ(a.substr(a.size() - 7), ".mcache");
    // Distinct groups land in distinct files.
    EXPECT_NE(a, cacheSpillPath("/tmp/warm",
                                "bench=sha|backends=model|obj=cpi"));
}

TEST(FileUtil, AtomicWriteThenMmapRoundTrip)
{
    const std::string dir =
        ::testing::TempDir() + "cache_io_test_files";
    ASSERT_TRUE(ensureDirectory(dir));
    ASSERT_TRUE(ensureDirectory(dir)); // idempotent

    const std::string path = dir + "/blob.bin";
    EXPECT_FALSE(fileExists(path));

    std::string payload = "mcache\0binary\xff payload";
    payload += std::string(1 << 16, '\x5a'); // larger than one page
    std::string error;
    ASSERT_TRUE(atomicWriteFile(path, payload, &error)) << error;
    EXPECT_TRUE(fileExists(path));

    MappedFile map;
    ASSERT_TRUE(map.open(path, &error)) << error;
    EXPECT_EQ(map.view(), payload);

    // Overwrite is atomic too: the new content fully replaces the old.
    ASSERT_TRUE(atomicWriteFile(path, "shorter", &error)) << error;
    MappedFile remap;
    ASSERT_TRUE(remap.open(path, &error)) << error;
    EXPECT_EQ(remap.view(), "shorter");
    std::remove(path.c_str());
}

TEST(FileUtil, MappedFileReportsMissingFile)
{
    MappedFile map;
    std::string error;
    EXPECT_FALSE(map.open(::testing::TempDir() + "nope/missing.bin",
                          &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(map.isOpen());
}

TEST(FileUtil, EmptyFileMapsToEmptyView)
{
    const std::string path =
        ::testing::TempDir() + "cache_io_empty.bin";
    std::string error;
    ASSERT_TRUE(atomicWriteFile(path, "", &error)) << error;
    MappedFile map;
    ASSERT_TRUE(map.open(path, &error)) << error;
    EXPECT_TRUE(map.isOpen());
    EXPECT_EQ(map.size(), 0u);
    std::remove(path.c_str());
}

} // namespace
} // namespace mech
