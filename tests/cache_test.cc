/**
 * @file
 * Unit and property tests for the cache substrate: set-associative
 * LRU cache, TLB, two-level hierarchy, and the single-pass
 * stack-distance simulator (whose counts must equal per-configuration
 * simulation exactly — the key Mattson inclusion property).
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/hierarchy.hh"
#include "cache/miss_stream.hh"
#include "cache/stack_sim.hh"
#include "cache/tlb.hh"
#include "common/rng.hh"

namespace mech {
namespace {

// ---- SetAssocCache ----------------------------------------------------------

TEST(Cache, ColdMissThenHit)
{
    SetAssocCache c({1024, 2, 64});
    EXPECT_FALSE(c.access(0x100));
    EXPECT_TRUE(c.access(0x100));
    EXPECT_TRUE(c.access(0x13f)); // same 64B block
    EXPECT_EQ(c.stats().misses, 1u);
    EXPECT_EQ(c.stats().hits, 2u);
}

TEST(Cache, DifferentBlocksMissSeparately)
{
    SetAssocCache c({1024, 2, 64});
    EXPECT_FALSE(c.access(0x000));
    EXPECT_FALSE(c.access(0x040));
    EXPECT_TRUE(c.access(0x000));
    EXPECT_TRUE(c.access(0x040));
}

TEST(Cache, LruEvictionOrder)
{
    // 2-way, 1 set: 128B total with 64B blocks.
    SetAssocCache c({128, 2, 64});
    c.access(0x0000); // A
    c.access(0x1000); // B
    c.access(0x0000); // touch A: B is now LRU
    c.access(0x2000); // C evicts B
    EXPECT_TRUE(c.contains(0x0000));
    EXPECT_FALSE(c.contains(0x1000));
    EXPECT_TRUE(c.contains(0x2000));
}

TEST(Cache, AssociativityConfinesConflicts)
{
    // Direct-mapped: two blocks mapping to the same set thrash.
    SetAssocCache dm({1024, 1, 64});
    std::uint64_t sets = dm.config().numSets();
    Addr a = 0, b = sets * 64; // same set index
    dm.access(a);
    dm.access(b);
    EXPECT_FALSE(dm.contains(a));

    // 2-way holds both.
    SetAssocCache c2({2048, 2, 64});
    std::uint64_t sets2 = c2.config().numSets();
    Addr a2 = 0, b2 = sets2 * 64;
    c2.access(a2);
    c2.access(b2);
    EXPECT_TRUE(c2.contains(a2));
    EXPECT_TRUE(c2.contains(b2));
}

TEST(Cache, FlushInvalidatesContents)
{
    SetAssocCache c({1024, 4, 64});
    c.access(0x40);
    c.flush();
    EXPECT_FALSE(c.contains(0x40));
    EXPECT_EQ(c.stats().misses, 1u); // stats preserved
}

TEST(Cache, GeometryAccessors)
{
    CacheConfig cfg{32 * 1024, 4, 64};
    EXPECT_EQ(cfg.numSets(), 128u);
    SetAssocCache c(cfg);
    EXPECT_EQ(c.config().sizeBytes, 32u * 1024u);
}

TEST(CacheStats, MissRatio)
{
    CacheStats s;
    EXPECT_DOUBLE_EQ(s.missRatio(), 0.0);
    s.hits = 3;
    s.misses = 1;
    EXPECT_DOUBLE_EQ(s.missRatio(), 0.25);
}

// ---- Tlb ----------------------------------------------------------------------

TEST(Tlb, HitsWithinPage)
{
    Tlb t({4, 4096});
    EXPECT_FALSE(t.access(0x1000));
    EXPECT_TRUE(t.access(0x1fff));
    EXPECT_FALSE(t.access(0x2000)); // next page
    EXPECT_EQ(t.missCount(), 2u);
    EXPECT_EQ(t.hitCount(), 1u);
}

TEST(Tlb, LruReplacement)
{
    Tlb t({2, 4096});
    t.access(0x0000);  // page 0
    t.access(0x1000);  // page 1
    t.access(0x0000);  // touch page 0
    t.access(0x2000);  // page 2 evicts page 1
    EXPECT_TRUE(t.access(0x0000));
    EXPECT_FALSE(t.access(0x1000));
}

// ---- CacheHierarchy -------------------------------------------------------------

TEST(Hierarchy, FetchClassifiesLevels)
{
    HierarchyConfig cfg;
    CacheHierarchy h(cfg);
    HierAccess first = h.fetch(0x1000);
    EXPECT_EQ(first.level, MemLevel::Memory); // cold: misses both
    HierAccess second = h.fetch(0x1000);
    EXPECT_EQ(second.level, MemLevel::L1);
}

TEST(Hierarchy, L2CatchesL1Evictions)
{
    HierarchyConfig cfg;
    cfg.l1i = {128, 1, 64};      // tiny direct-mapped L1I
    cfg.l2 = {64 * 1024, 8, 64}; // roomy L2
    CacheHierarchy h(cfg);
    Addr a = 0x0000, conflict = 0x0080; // same L1 set (2 sets of 64B)
    h.fetch(a);
    h.fetch(conflict); // evicts a from L1I, both in L2
    HierAccess res = h.fetch(a);
    EXPECT_EQ(res.level, MemLevel::L2);
}

TEST(Hierarchy, DataAndInstrSidesAreSplit)
{
    HierarchyConfig cfg;
    CacheHierarchy h(cfg);
    h.fetch(0x1000);
    // Same address on the data side still misses L1D (split caches)
    // but hits the unified L2.
    HierAccess res = h.data(0x1000, false);
    EXPECT_EQ(res.level, MemLevel::L2);
}

TEST(Hierarchy, TlbMissFlagIndependentOfCache)
{
    HierarchyConfig cfg;
    CacheHierarchy h(cfg);
    HierAccess first = h.data(0x5000, false);
    EXPECT_TRUE(first.tlbMiss);
    HierAccess second = h.data(0x5008, false);
    EXPECT_FALSE(second.tlbMiss);
}

// ---- replayMisses ----------------------------------------------------------------

TEST(MissStream, ReplayCountsColdMisses)
{
    MemRefStream stream = {{0x000, false}, {0x040, false}, {0x000, false}};
    EXPECT_EQ(replayMisses(stream, {1024, 2, 64}), 2u);
}

// ---- StackDistanceSimulator: unit behaviour ---------------------------------------

TEST(StackSim, ColdAccessesAreDeepMisses)
{
    StackDistanceSimulator s(1, 64, 8);
    s.access(0x000);
    s.access(0x040);
    EXPECT_EQ(s.hitsForAssoc(8), 0u);
    EXPECT_EQ(s.missesForAssoc(1), 2u);
}

TEST(StackSim, DistanceOneIsMruHit)
{
    StackDistanceSimulator s(1, 64, 8);
    s.access(0x000);
    s.access(0x000);
    EXPECT_EQ(s.hitsForAssoc(1), 1u);
}

TEST(StackSim, InclusionAcrossAssociativities)
{
    StackDistanceSimulator s(2, 64, 16);
    Rng rng(5);
    for (int i = 0; i < 4000; ++i)
        s.access(rng.below(64) * 64);
    for (std::uint32_t a = 2; a <= 16; ++a)
        EXPECT_GE(s.hitsForAssoc(a), s.hitsForAssoc(a - 1));
}

// ---- StackDistanceSimulator == SetAssocCache (Mattson property) --------------------

struct StackEquivParam
{
    std::uint64_t numSets;
    std::uint32_t assoc;
    std::uint64_t addrSpaceBlocks;
    std::uint64_t seed;
};

class StackEquivalence : public ::testing::TestWithParam<StackEquivParam>
{
};

TEST_P(StackEquivalence, SinglePassMatchesPerConfigSimulation)
{
    const auto &p = GetParam();
    StackDistanceSimulator stack(p.numSets, 64, 32);
    SetAssocCache cache(
        {p.numSets * p.assoc * 64, p.assoc, 64});

    Rng rng(p.seed);
    std::uint64_t cache_misses = 0;
    for (int i = 0; i < 20000; ++i) {
        // Mix of streaming and random references.
        Addr addr = rng.chance(0.5)
                        ? static_cast<Addr>(i % p.addrSpaceBlocks) * 64
                        : rng.below(p.addrSpaceBlocks) * 64;
        stack.access(addr);
        if (!cache.access(addr))
            ++cache_misses;
    }
    EXPECT_EQ(stack.missesForAssoc(p.assoc), cache_misses);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, StackEquivalence,
    ::testing::Values(StackEquivParam{1, 1, 16, 3},
                      StackEquivParam{1, 4, 64, 5},
                      StackEquivParam{4, 2, 128, 7},
                      StackEquivParam{16, 8, 1024, 11},
                      StackEquivParam{64, 4, 4096, 13},
                      StackEquivParam{8, 16, 512, 17},
                      StackEquivParam{256, 8, 16384, 19}));

// ---- Golden: optimized simulator == seed algorithm --------------------------------
//
// The hash-map + intrusive-list StackDistanceSimulator must be
// bit-identical to the original vector-of-tags formulation it
// replaced.  ReferenceStackSim below IS that seed implementation,
// kept verbatim as the oracle; the golden test streams randomized
// address mixes through both and compares hit counts for every
// associativity 1..64 plus the full distance histogram.

/** The seed linear-scan stack-distance algorithm (the oracle). */
class ReferenceStackSim
{
  public:
    ReferenceStackSim(std::uint64_t num_sets, std::uint32_t block_bytes,
                      std::uint32_t max_tracked_assoc)
        : numSets(num_sets), blockBytes(block_bytes),
          maxAssoc(max_tracked_assoc)
    {
        stacks.resize(numSets);
    }

    void
    access(Addr addr)
    {
        std::uint64_t block = addr / blockBytes;
        std::uint64_t set = block & (numSets - 1);
        Addr tag = block / numSets;
        auto &stack = stacks[set];

        ++total;

        auto it = std::find(stack.begin(), stack.end(), tag);
        if (it == stack.end()) {
            distances.add(0);
        } else {
            auto depth =
                static_cast<std::uint64_t>(it - stack.begin()) + 1;
            distances.add(depth);
            stack.erase(it);
        }

        stack.insert(stack.begin(), tag);
        if (stack.size() > maxAssoc)
            stack.pop_back();
    }

    std::uint64_t
    hitsForAssoc(std::uint32_t assoc) const
    {
        return distances.sumRange(1, assoc);
    }

    const Histogram &distanceHistogram() const { return distances; }

  private:
    std::uint64_t numSets;
    std::uint32_t blockBytes;
    std::uint32_t maxAssoc;
    std::vector<std::vector<Addr>> stacks;
    Histogram distances;
    std::uint64_t total = 0;
};

struct StackGoldenParam
{
    std::uint64_t numSets;
    std::uint64_t addrSpaceBlocks;
    std::uint64_t seed;
};

class StackGolden : public ::testing::TestWithParam<StackGoldenParam>
{
};

TEST_P(StackGolden, BitIdenticalToSeedAcrossAssoc1To64)
{
    const auto &p = GetParam();
    constexpr std::uint32_t kMaxAssoc = 64;
    StackDistanceSimulator opt(p.numSets, 64, kMaxAssoc);
    ReferenceStackSim ref(p.numSets, 64, kMaxAssoc);

    Rng rng(p.seed);
    for (int i = 0; i < 50000; ++i) {
        // Mix of streaming, strided, and random references so hits
        // land at every depth, including past the tracked cap.
        Addr addr;
        if (rng.chance(0.4))
            addr = static_cast<Addr>(i % p.addrSpaceBlocks) * 64;
        else if (rng.chance(0.5))
            addr = static_cast<Addr>((i * 17) % p.addrSpaceBlocks) * 64;
        else
            addr = rng.below(p.addrSpaceBlocks) * 64;
        opt.access(addr);
        ref.access(addr);
    }

    for (std::uint32_t a = 1; a <= kMaxAssoc; ++a)
        ASSERT_EQ(opt.hitsForAssoc(a), ref.hitsForAssoc(a))
            << "hit counts diverge at associativity " << a;

    const Histogram &oh = opt.distanceHistogram();
    const Histogram &rh = ref.distanceHistogram();
    EXPECT_EQ(oh.total(), rh.total());
    for (std::uint64_t d = 0; d <= kMaxAssoc; ++d)
        ASSERT_EQ(oh.at(d), rh.at(d))
            << "distance histogram diverges at depth " << d;
}

INSTANTIATE_TEST_SUITE_P(
    Streams, StackGolden,
    ::testing::Values(
        // Footprint below capacity (no evictions) ...
        StackGoldenParam{64, 1024, 23},
        // ... around capacity (heavy eviction/tombstone churn) ...
        StackGoldenParam{16, 1024, 29},
        StackGoldenParam{4, 256, 31},
        // ... and far beyond capacity with one deep set.
        StackGoldenParam{1, 512, 37},
        StackGoldenParam{128, 65536, 41}));

} // namespace
} // namespace mech
