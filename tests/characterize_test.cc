/**
 * @file
 * Tests for the characterization subsystem (characterize/).  The
 * headline property is exactness: against the repo's own backends the
 * inferred MachineParams must equal the configured ones field for
 * field, on the in-order pipeline at several design points and on the
 * out-of-order pipeline at the default point.  Also covered: the
 * kernel generators emit validateTrace()-clean traces, measured
 * out-of-order stream throughputs match the FU/port-pressure
 * prediction, and inference is bit-identical at any thread count.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "characterize/characterize.hh"
#include "characterize/kernels.hh"
#include "eval/registry.hh"
#include "trace/trace.hh"

namespace mech {
namespace {

/** Characterize @p backend at @p point and expect zero divergence. */
void
expectExactInference(std::string_view backend,
                     const DesignPoint &point)
{
    CharacterizeConfig cfg;
    cfg.backend = std::string(backend);
    cfg.point = point;
    ThreadPool pool(3);
    const CharacterizeResult result = characterize(cfg, pool);
    const MachineParams configured = machineFor(point);
    const auto diffs = compareMachineParams(
        configured, result.description.machine);
    for (const FieldDivergence &f : diffs) {
        ADD_FAILURE() << backend << " at " << point.label() << ": "
                      << f.field << " configured " << f.configured
                      << " inferred " << f.inferred;
    }
    EXPECT_EQ(result.description.sourceBackend, backend);
    EXPECT_EQ(result.description.sourcePoint, point.toKey());
    EXPECT_TRUE(result.description.hasThroughput);
}

TEST(Characterize, InOrderInferenceIsExactAtDefaultPoint)
{
    expectExactInference(kSimBackend, defaultDesignPoint());
}

TEST(Characterize, InOrderInferenceIsExactAtNarrowSlowPoint)
{
    DesignPoint point = defaultDesignPoint();
    point.width = 2;
    point.depth = 5;
    point.freqGHz = 0.6;
    expectExactInference(kSimBackend, point);
}

TEST(Characterize, InOrderInferenceIsExactAtScalarPoint)
{
    DesignPoint point = defaultDesignPoint();
    point.width = 1;
    point.depth = 7;
    point.freqGHz = 0.8;
    point.l2KB = 128;
    point.l2Assoc = 16;
    expectExactInference(kSimBackend, point);
}

TEST(Characterize, OutOfOrderInferenceIsExactAtDefaultPoint)
{
    expectExactInference(kOoOSimBackend, defaultDesignPoint());
}

TEST(Characterize, OutOfOrderThroughputMatchesPortPressure)
{
    CharacterizeConfig cfg;
    cfg.backend = kOoOSimBackend;
    ThreadPool pool(3);
    const CharacterizeResult result = characterize(cfg, pool);
    const MachineParams machine = machineFor(cfg.point);
    for (OpClass oc : kAllOpClasses) {
        // Fully serialized classes sustain 1/latency, everything
        // else the min of width, FU count and result buses; ceil
        // effects at non-divisible lengths stay well inside 0.01.
        double expect =
            expectedOooStreamIpc(oc, machine, cfg.point.ooo);
        if (isLongLatencyClass(oc))
            expect = 1.0;
        EXPECT_NEAR(
            result.description
                .throughput[static_cast<std::size_t>(oc)],
            expect, 0.01)
            << opClassName(oc);
    }
}

TEST(Characterize, InferenceIsDeterministicAcrossThreadCounts)
{
    CharacterizeConfig cfg;
    auto run = [&cfg](unsigned threads) {
        ThreadPool pool(threads);
        return characterize(cfg, pool);
    };
    const CharacterizeResult one = run(1);
    const CharacterizeResult two = run(2);
    const CharacterizeResult eight = run(8);
    EXPECT_EQ(one.description, two.description);
    EXPECT_EQ(one.description, eight.description);
    ASSERT_EQ(one.measurements.size(), eight.measurements.size());
    for (std::size_t i = 0; i < one.measurements.size(); ++i) {
        EXPECT_EQ(one.measurements[i].kernel,
                  eight.measurements[i].kernel);
        EXPECT_EQ(one.measurements[i].cycles,
                  eight.measurements[i].cycles);
    }
}

TEST(Characterize, RejectsUnknownBackend)
{
    CharacterizeConfig cfg;
    cfg.backend = "model";
    ThreadPool pool(1);
    EXPECT_DEATH(characterize(cfg, pool), "backend");
}

TEST(CharacterizeKernels, AllKernelsValidate)
{
    std::string error;
    for (OpClass oc : kAllOpClasses) {
        const Trace stream = streamKernel(oc, 257);
        EXPECT_TRUE(validateTrace(stream, &error))
            << opClassName(oc) << ": " << error;
        EXPECT_EQ(stream.size(), 257u);
    }
    for (OpClass oc : kAllOpClasses) {
        if (oc != OpClass::IntAlu && oc != OpClass::Load &&
            !isLongLatencyClass(oc)) {
            continue;
        }
        EXPECT_TRUE(validateTrace(chainKernel(oc, 100), &error))
            << opClassName(oc) << ": " << error;
    }
    for (LoadPattern pattern :
         {LoadPattern::L1Hit, LoadPattern::L2Hit, LoadPattern::Memory,
          LoadPattern::FreshPage}) {
        EXPECT_TRUE(
            validateTrace(loadStreamKernel(pattern, 100), &error))
            << error;
        EXPECT_TRUE(
            validateTrace(loadChainKernel(pattern, 100), &error))
            << error;
    }
    EXPECT_TRUE(validateTrace(
        mixKernel({OpClass::IntAlu, OpClass::Load, OpClass::Branch},
                  100),
        &error))
        << error;
}

TEST(CharacterizeKernels, ChainKernelsCarryTrueDependencies)
{
    const Trace chain = chainKernel(OpClass::IntMult, 8);
    for (std::size_t i = 0; i < chain.size(); ++i) {
        EXPECT_EQ(chain[i].dst, 0);
        EXPECT_EQ(chain[i].src1, 0);
    }
    // Streams never chain: destinations rotate faster than reuse.
    const Trace stream = streamKernel(OpClass::IntMult, 8);
    for (std::size_t i = 1; i < stream.size(); ++i)
        EXPECT_NE(stream[i].src1, stream[i - 1].dst);
}

} // namespace
} // namespace mech
