/**
 * @file
 * Unit tests for the common substrate: RNG, histogram, summary
 * statistics, error metrics, the text-table printer and the shared
 * command-line parser (including the unknown-flag rejection
 * regression tests).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/histogram.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace mech {
namespace {

// ---- Rng ------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, ZeroSeedIsUsable)
{
    Rng r(0);
    EXPECT_NE(r.next(), 0u);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(13), 13u);
}

TEST(Rng, BelowCoversAllValues)
{
    Rng r(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(r.below(5));
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(13);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        std::int64_t v = r.range(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        saw_lo |= v == -2;
        saw_hi |= v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(17);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(19);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, WeightedRespectsWeights)
{
    Rng r(23);
    std::vector<double> w = {1.0, 0.0, 3.0};
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 8000; ++i)
        ++counts[r.weighted(w)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.5);
}

TEST(Rng, PowerLawFavorsSmallValues)
{
    Rng r(29);
    std::uint64_t ones = 0, fours = 0;
    for (int i = 0; i < 8000; ++i) {
        std::uint64_t d = r.powerLaw(1.5, 8);
        EXPECT_GE(d, 1u);
        EXPECT_LE(d, 8u);
        ones += d == 1;
        fours += d == 4;
    }
    EXPECT_GT(ones, fours * 2);
}

TEST(Rng, GeometricBounded)
{
    Rng r(31);
    for (int i = 0; i < 200; ++i)
        EXPECT_LE(r.geometric(0.9, 5), 5u);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(37);
    Rng b = a.fork();
    EXPECT_NE(a.next(), b.next());
}

// ---- Histogram --------------------------------------------------------------

TEST(Histogram, StartsEmpty)
{
    Histogram h;
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.at(0), 0u);
    EXPECT_EQ(h.at(100), 0u);
    EXPECT_EQ(h.maxKey(), 0u);
}

TEST(Histogram, AddAndQuery)
{
    Histogram h;
    h.add(3);
    h.add(3);
    h.add(7, 5);
    EXPECT_EQ(h.at(3), 2u);
    EXPECT_EQ(h.at(7), 5u);
    EXPECT_EQ(h.total(), 7u);
    EXPECT_EQ(h.maxKey(), 7u);
}

TEST(Histogram, SumRange)
{
    Histogram h;
    for (std::uint64_t k = 0; k < 10; ++k)
        h.add(k, k);
    EXPECT_EQ(h.sumRange(2, 4), 2u + 3u + 4u);
    EXPECT_EQ(h.sumRange(8, 100), 8u + 9u);
    EXPECT_EQ(h.sumRange(20, 30), 0u);
}

TEST(Histogram, Mean)
{
    Histogram h;
    h.add(2, 2);
    h.add(4, 2);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(Histogram, Merge)
{
    Histogram a, b;
    a.add(1, 2);
    b.add(1, 3);
    b.add(9, 1);
    a.merge(b);
    EXPECT_EQ(a.at(1), 5u);
    EXPECT_EQ(a.at(9), 1u);
    EXPECT_EQ(a.total(), 6u);
}

TEST(Histogram, Clear)
{
    Histogram h;
    h.add(5, 5);
    h.clear();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.at(5), 0u);
}

// ---- SummaryStats ------------------------------------------------------------

TEST(SummaryStats, Empty)
{
    SummaryStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(SummaryStats, MeanMinMax)
{
    SummaryStats s;
    for (double v : {2.0, 4.0, 6.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
    EXPECT_EQ(s.count(), 3u);
}

TEST(SummaryStats, Stddev)
{
    SummaryStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_NEAR(s.stddev(), 2.0, 1e-9);
}

// ---- error metrics -------------------------------------------------------------

TEST(ErrorMetrics, AbsRelativeError)
{
    EXPECT_DOUBLE_EQ(absRelativeError(110.0, 100.0), 0.1);
    EXPECT_DOUBLE_EQ(absRelativeError(90.0, 100.0), 0.1);
    EXPECT_DOUBLE_EQ(absRelativeError(100.0, 100.0), 0.0);
}

TEST(ErrorMetrics, EmpiricalCdf)
{
    std::vector<double> samples = {0.01, 0.02, 0.03, 0.10};
    auto cdf = empiricalCdf(samples, {0.0, 0.02, 0.05, 0.2});
    ASSERT_EQ(cdf.size(), 4u);
    EXPECT_DOUBLE_EQ(cdf[0], 0.0);
    EXPECT_DOUBLE_EQ(cdf[1], 0.5);
    EXPECT_DOUBLE_EQ(cdf[2], 0.75);
    EXPECT_DOUBLE_EQ(cdf[3], 1.0);
}

TEST(ErrorMetrics, Percentile)
{
    std::vector<double> s = {5.0, 1.0, 3.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(s, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(s, 100.0), 5.0);
    EXPECT_DOUBLE_EQ(percentile(s, 50.0), 3.0);
}

// ---- TextTable ------------------------------------------------------------------

TEST(TextTable, AlignsColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "2"});
    std::ostringstream oss;
    t.print(oss);
    std::string out = oss.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTable, NumFormatsPrecision)
{
    EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(TextTable, SciFormatsScientific)
{
    EXPECT_EQ(TextTable::sci(12345.0, 3), "1.234e+04");
    EXPECT_EQ(TextTable::sci(1.5e-10, 1), "1.5e-10");
}

// ---- ArgParser ------------------------------------------------------------

/** tryParse over a writable copy of @p args (argv[0] included). */
std::optional<std::string>
parseArgs(cli::ArgParser &parser, std::vector<std::string> args)
{
    std::vector<char *> argv;
    argv.reserve(args.size());
    for (std::string &arg : args)
        argv.push_back(arg.data());
    return parser.tryParse(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParser, ParsesDeclaredOptionsAndPositionals)
{
    std::string strategy;
    unsigned budget = 0;
    bool json = false;
    std::string pos;
    cli::ArgParser parser("prog", "test");
    parser.add("strategy", "name", "h", &strategy);
    parser.add("budget", "N", "h", &budget);
    parser.addFlag("json", "h", &json);
    parser.addPositional("input", "h", &pos);
    auto err = parseArgs(parser, {"prog", "--strategy", "genetic",
                                  "--budget=2000", "--json", "file"});
    EXPECT_FALSE(err.has_value()) << *err;
    EXPECT_EQ(strategy, "genetic");
    EXPECT_EQ(budget, 2000u);
    EXPECT_TRUE(json);
    EXPECT_EQ(pos, "file");
}

// Regression: a mistyped flag must fail loudly, never be silently
// ignored (`mech_search --strateg typo` used to be able to slip a
// dash-led token into a positional slot).
TEST(ArgParser, RejectsUnknownDoubleDashOption)
{
    std::string strategy;
    cli::ArgParser parser("prog", "test");
    parser.add("strategy", "name", "h", &strategy);
    auto err = parseArgs(parser, {"prog", "--strateg", "typo"});
    ASSERT_TRUE(err.has_value());
    EXPECT_NE(err->find("unknown option '--strateg'"),
              std::string::npos);
}

TEST(ArgParser, RejectsSingleDashTokenInsteadOfBindingPositional)
{
    std::string pos = "unset";
    cli::ArgParser parser("prog", "test");
    parser.addPositional("input", "h", &pos);
    auto err = parseArgs(parser, {"prog", "-threads"});
    ASSERT_TRUE(err.has_value());
    EXPECT_NE(err->find("unknown option '-threads'"),
              std::string::npos);
    EXPECT_EQ(pos, "unset");
}

TEST(ArgParser, NegativeNumbersStillBindToPositionals)
{
    int value = 0;
    cli::ArgParser parser("prog", "test");
    parser.addPositional("n", "h", &value);
    auto err = parseArgs(parser, {"prog", "-3"});
    EXPECT_FALSE(err.has_value()) << *err;
    EXPECT_EQ(value, -3);
}

TEST(ArgParser, RejectsValueOnFlagAndMissingValue)
{
    bool flag = false;
    std::string opt;
    cli::ArgParser parser("prog", "test");
    parser.addFlag("list", "h", &flag);
    parser.add("out", "path", "h", &opt);
    auto err = parseArgs(parser, {"prog", "--list=yes"});
    ASSERT_TRUE(err.has_value());
    EXPECT_NE(err->find("takes no value"), std::string::npos);
    err = parseArgs(parser, {"prog", "--out"});
    ASSERT_TRUE(err.has_value());
    EXPECT_NE(err->find("needs a value"), std::string::npos);
}

TEST(ArgParser, RejectsExcessPositionalsAndBadNumbers)
{
    unsigned n = 0;
    cli::ArgParser parser("prog", "test");
    parser.addPositional("n", "h", &n);
    auto err = parseArgs(parser, {"prog", "12", "extra"});
    ASSERT_TRUE(err.has_value());
    EXPECT_NE(err->find("unexpected argument"), std::string::npos);
    err = parseArgs(parser, {"prog", "--", "12"});
    ASSERT_TRUE(err.has_value());
    err = parseArgs(parser, {"prog", "12x"});
    ASSERT_TRUE(err.has_value());
    EXPECT_NE(err->find("invalid value"), std::string::npos);
}

} // namespace
} // namespace mech
