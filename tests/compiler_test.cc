/**
 * @file
 * Tests for the compiler passes: dataflow preservation under
 * scheduling, distance changes per objective, spill insertion under
 * register pressure, and unrolling arithmetic (paper §6.2 mechanisms).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

#include "compiler/passes.hh"
#include "workload/builder.hh"
#include "workload/executor.hh"
#include "workload/suites.hh"

namespace mech {
namespace {

BenchmarkProfile
schedProfile()
{
    BenchmarkProfile p;
    p.name = "sched-test";
    p.seed = 4242;
    p.numLoops = 3;
    p.blocksPerLoop = 3;
    p.instrsPerBlock = 18;
    p.tripCount = 16;
    p.guardFraction = 0.3;
    p.wLoad = 0.25;
    p.wStore = 0.1;
    p.ilpChains = 3.0;
    p.indepFraction = 0.1;
    return p;
}

/**
 * Instruction fingerprint: stable across scheduling (PCs and stream
 * ids are reassigned by the passes, operands are not).
 */
using InstFp = std::tuple<OpClass, RegIndex, RegIndex, RegIndex>;

InstFp
fingerprint(const StaticInst &si)
{
    return {si.op, si.dst, si.src1, si.src2};
}

/**
 * RAW dataflow signature of a block: the multiset of (producer
 * fingerprint, source register, consumer fingerprint) edges under
 * last-writer semantics.  Any reordering that changes which producer
 * feeds which consumer changes this signature.
 */
std::multiset<std::tuple<InstFp, RegIndex, InstFp>>
rawEdges(const std::vector<StaticInst> &body)
{
    std::multiset<std::tuple<InstFp, RegIndex, InstFp>> edges;
    std::map<RegIndex, InstFp> last_def;
    for (const auto &si : body) {
        for (RegIndex src : {si.src1, si.src2}) {
            if (src == kNoReg)
                continue;
            auto it = last_def.find(src);
            if (it != last_def.end())
                edges.insert({it->second, src, fingerprint(si)});
        }
        if (si.dst != kNoReg)
            last_def[si.dst] = fingerprint(si);
    }
    return edges;
}

/** Mean def-use RAW distance over all blocks of a program. */
double
meanRawDistance(const Program &prog)
{
    std::uint64_t total = 0, count = 0;
    for (const auto &loop : prog.loops) {
        for (const auto &block : loop.blocks) {
            std::map<RegIndex, std::size_t> last_def;
            for (std::size_t i = 0; i < block.body.size(); ++i) {
                const auto &si = block.body[i];
                for (RegIndex src : {si.src1, si.src2}) {
                    if (src == kNoReg)
                        continue;
                    auto it = last_def.find(src);
                    if (it != last_def.end()) {
                        total += i - it->second;
                        ++count;
                    }
                }
                if (si.dst != kNoReg)
                    last_def[si.dst] = i;
            }
        }
    }
    return count ? static_cast<double>(total) /
                       static_cast<double>(count)
                 : 0.0;
}

// ---- scheduling ------------------------------------------------------------------

TEST(Scheduler, PreservesRawDataflow)
{
    Program prog = buildProgram(schedProfile());
    // Capture dataflow signatures before scheduling.
    std::vector<std::multiset<std::tuple<InstFp, RegIndex, InstFp>>>
        before;
    for (const auto &loop : prog.loops)
        for (const auto &block : loop.blocks)
            before.push_back(rawEdges(block.body));

    SchedOptions opt;
    opt.goal = SchedGoal::Spread;
    opt.modelSpills = false; // keep instruction sets identical
    scheduleProgram(prog, opt);

    std::size_t k = 0;
    for (const auto &loop : prog.loops) {
        for (const auto &block : loop.blocks) {
            EXPECT_EQ(rawEdges(block.body), before[k])
                << "dataflow changed in block " << k;
            ++k;
        }
    }
}

TEST(Scheduler, SpreadIncreasesDistances)
{
    Program tight = buildProgram(schedProfile());
    SchedOptions t;
    t.goal = SchedGoal::Tighten;
    scheduleProgram(tight, t);

    Program spread = buildProgram(schedProfile());
    SchedOptions s;
    s.goal = SchedGoal::Spread;
    s.modelSpills = false;
    scheduleProgram(spread, s);

    EXPECT_GT(meanRawDistance(spread), meanRawDistance(tight));
}

TEST(Scheduler, TightenKeepsInstructionCount)
{
    Program prog = buildProgram(schedProfile());
    std::uint64_t before = prog.staticInstCount();
    SchedOptions opt;
    opt.goal = SchedGoal::Tighten;
    scheduleProgram(prog, opt);
    EXPECT_EQ(prog.staticInstCount(), before);
}

TEST(Scheduler, SpillsAddInstructionsUnderPressure)
{
    BenchmarkProfile p = schedProfile();
    p.instrsPerBlock = 40; // long blocks -> long live ranges
    p.ilpChains = 8.0;     // many parallel chains -> high pressure
    Program prog = buildProgram(p);
    std::uint64_t before = prog.staticInstCount();

    SchedOptions opt;
    opt.goal = SchedGoal::Spread;
    opt.modelSpills = true;
    opt.availRegs = 4; // brutal budget forces spills
    std::uint64_t pairs = scheduleProgram(prog, opt);
    EXPECT_GT(pairs, 0u);
    EXPECT_EQ(prog.staticInstCount(), before + 2 * pairs);
}

TEST(Scheduler, NoSpillsWithGenerousBudget)
{
    Program prog = buildProgram(schedProfile());
    SchedOptions opt;
    opt.goal = SchedGoal::Spread;
    opt.availRegs = 32;
    EXPECT_EQ(scheduleProgram(prog, opt), 0u);
}

TEST(Scheduler, ScheduledProgramExecutes)
{
    Program prog = buildProgram(schedProfile());
    SchedOptions opt;
    opt.goal = SchedGoal::Spread;
    opt.availRegs = 12;
    scheduleProgram(prog, opt);
    TraceExecutor exec(prog, 1);
    Trace tr = exec.run(4000);
    std::string err;
    EXPECT_TRUE(validateTrace(tr, &err)) << err;
}

// ---- unrolling --------------------------------------------------------------------

TEST(Unroller, ReplicatesBodiesAndDividesTrips)
{
    Program prog = buildProgram(schedProfile());
    std::uint64_t body_before = 0;
    for (const auto &b : prog.loops[0].blocks)
        body_before += b.body.size();
    std::size_t blocks_before = prog.loops[0].blocks.size();
    std::uint64_t trips_before = prog.loops[0].tripCount;

    unrollLoops(prog, 4);

    // Body instructions replicate 4x; unguarded copies fuse, so the
    // block count shrinks relative to a naive 4x replication.
    std::uint64_t body_after = 0;
    for (const auto &b : prog.loops[0].blocks)
        body_after += b.body.size();
    EXPECT_EQ(body_after, body_before * 4);
    EXPECT_LE(prog.loops[0].blocks.size(), blocks_before * 4);
    EXPECT_EQ(prog.loops[0].tripCount, (trips_before + 3) / 4);
}

TEST(Unroller, FusionKeepsGuardBoundaries)
{
    BenchmarkProfile p = schedProfile();
    p.guardFraction = 1.0; // every block guarded: nothing fuses
    Program prog = buildProgram(p);
    std::size_t blocks_before = prog.loops[0].blocks.size();
    unrollLoops(prog, 2);
    EXPECT_EQ(prog.loops[0].blocks.size(), blocks_before * 2);
    for (const auto &b : prog.loops[0].blocks)
        EXPECT_TRUE(b.guarded);
}

TEST(Unroller, FactorOneIsIdentity)
{
    Program prog = buildProgram(schedProfile());
    std::uint64_t before = prog.staticInstCount();
    unrollLoops(prog, 1);
    EXPECT_EQ(prog.staticInstCount(), before);
}

TEST(Unroller, ReducesDynamicBranchFraction)
{
    BenchmarkProfile p = schedProfile();
    p.guardFraction = 0.0; // only back edges: the clearest signal
    Program base = buildProgram(p);
    Program unrolled = buildProgram(p);
    unrollLoops(unrolled, 4);

    TraceExecutor be(base, 3), ue(unrolled, 3);
    double fb = be.run(20000).mix().fraction(OpClass::Branch);
    double fu = ue.run(20000).mix().fraction(OpClass::Branch);
    EXPECT_LT(fu, fb);
}

TEST(Unroller, UnrolledProgramExecutesValidly)
{
    Program prog = buildProgram(schedProfile());
    unrollLoops(prog, 4);
    SchedOptions opt;
    opt.goal = SchedGoal::Spread;
    opt.modelSpills = true;
    scheduleProgram(prog, opt);
    TraceExecutor exec(prog, 9);
    Trace tr = exec.run(5000);
    std::string err;
    EXPECT_TRUE(validateTrace(tr, &err)) << err;
}

TEST(Unroller, PcsReassignedContiguously)
{
    Program prog = buildProgram(schedProfile());
    unrollLoops(prog, 2);
    Addr expected = kTextBase;
    for (const auto &si : prog.prologue) {
        EXPECT_EQ(si.pc, expected);
        expected += kInstBytes;
    }
    for (const auto &loop : prog.loops) {
        for (const auto &block : loop.blocks) {
            if (block.guarded) {
                EXPECT_EQ(block.guard.pc, expected);
                expected += kInstBytes;
            }
            for (const auto &si : block.body) {
                EXPECT_EQ(si.pc, expected);
                expected += kInstBytes;
            }
        }
        expected += 2 * kInstBytes; // counterInc + backEdge
    }
}

} // namespace
} // namespace mech
