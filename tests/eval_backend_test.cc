/**
 * @file
 * Tests for the unified evaluation-backend API: registry lookups and
 * set parsing, adapter equivalence with the underlying engines (the
 * backends are adapters, not re-implementations), request validation,
 * and extensibility with custom backends.
 */

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "dse/design_space.hh"
#include "dse/study.hh"
#include "eval/backend.hh"
#include "eval/registry.hh"
#include "model/inorder_model.hh"
#include "ooo/ooo_model.hh"
#include "sim/inorder_sim.hh"
#include "workload/suites.hh"

namespace {

using namespace mech;

constexpr InstCount kLen = 15000;

const DseStudy &
sharedStudy()
{
    static const DseStudy study(profileByName("tiffdither"), kLen);
    return study;
}

/** A request against the shared study at the default design point. */
EvalRequest
defaultRequest()
{
    const DseStudy &study = sharedStudy();
    EvalRequest req;
    req.program = &study.profile().program;
    req.memory = &study.profile().memory;
    req.branch = &study.profile().branchProfileFor(
        defaultDesignPoint().predictor);
    req.trace = &study.trace();
    req.point = defaultDesignPoint();
    return req;
}

// ---- registry --------------------------------------------------------------------

TEST(BackendRegistry, GlobalHasBuiltins)
{
    BackendRegistry &reg = BackendRegistry::global();
    ASSERT_NE(reg.find(kModelBackend), nullptr);
    ASSERT_NE(reg.find(kSimBackend), nullptr);
    ASSERT_NE(reg.find(kOooBackend), nullptr);
    EXPECT_EQ(reg.find("model")->name(), "model");
    EXPECT_FALSE(reg.find("model")->isDetailed());
    EXPECT_TRUE(reg.find("sim")->isDetailed());
    EXPECT_TRUE(reg.find("sim")->needsTrace());
    EXPECT_FALSE(reg.find("no-such-backend"));
}

TEST(BackendRegistry, ParseSetPreservesOrderAndTrimsSpaces)
{
    BackendSet set = backendSet(" sim , model ");
    ASSERT_EQ(set.size(), 2u);
    EXPECT_EQ(set[0]->name(), "sim");
    EXPECT_EQ(set[1]->name(), "model");
}

TEST(BackendRegistry, DefaultSetIsModelOnly)
{
    const BackendSet &set = defaultBackends();
    ASSERT_EQ(set.size(), 1u);
    EXPECT_EQ(set[0]->name(), kModelBackend);
}

TEST(BackendRegistry, CustomBackendsPlugIn)
{
    /** A trivial fixed-CPI backend, as an external user would add. */
    class ConstantBackend : public EvalBackend
    {
      public:
        std::string_view name() const override { return "constant"; }
        std::string_view
        description() const override
        {
            return "fixed CPI of 1";
        }
        EvalResult
        evaluate(const EvalRequest &req) const override
        {
            EvalResult res;
            res.backend = std::string(name());
            res.instructions = req.program->n;
            res.cycles = static_cast<double>(req.program->n);
            return res;
        }
    };

    BackendRegistry local;
    local.registerBackend(std::make_unique<ConstantBackend>());
    BackendSet set = local.parseSet("constant");
    ASSERT_EQ(set.size(), 1u);

    EvalResult res = set[0]->evaluate(defaultRequest());
    EXPECT_DOUBLE_EQ(res.cpi(), 1.0);
}

// ---- adapter equivalence ----------------------------------------------------------

TEST(EvalBackend, ModelBackendMatchesEvaluateInOrder)
{
    EvalRequest req = defaultRequest();
    EvalResult res =
        BackendRegistry::global().at(kModelBackend).evaluate(req);

    ModelResult direct =
        evaluateInOrder(*req.program, *req.memory, *req.branch,
                        machineFor(req.point));

    EXPECT_EQ(res.cycles, direct.cycles);
    EXPECT_EQ(res.instructions, direct.instructions);
    EXPECT_TRUE(res.hasStack);
    for (std::size_t c = 0; c < kNumCpiComponents; ++c) {
        auto comp = static_cast<CpiComponent>(c);
        EXPECT_EQ(res.stack[comp], direct.stack[comp])
            << cpiComponentName(comp);
    }
    EXPECT_FALSE(res.detail.has_value());
    EXPECT_GT(res.edp, 0.0);
    EXPECT_GT(res.energy.totalJ(), 0.0);
    EXPECT_GT(res.activity.instructions, 0.0);
}

TEST(EvalBackend, SimBackendMatchesSimulateInOrder)
{
    EvalRequest req = defaultRequest();
    EvalResult res =
        BackendRegistry::global().at(kSimBackend).evaluate(req);

    SimResult direct =
        simulateInOrder(sharedStudy().trace(), simConfigFor(req.point));

    ASSERT_TRUE(res.detail.has_value());
    EXPECT_EQ(res.cycles, static_cast<double>(direct.cycles));
    EXPECT_EQ(res.detail->cycles, direct.cycles);
    EXPECT_EQ(res.detail->mispredicts, direct.mispredicts);
    EXPECT_EQ(res.instructions, direct.retired);
    EXPECT_FALSE(res.hasStack);
    EXPECT_GT(res.edp, 0.0);
}

TEST(EvalBackend, OooBackendMatchesEvaluateOutOfOrder)
{
    EvalRequest req = defaultRequest();
    req.point.ooo.robSize = 64;
    EvalResult res =
        BackendRegistry::global().at(kOooBackend).evaluate(req);

    OooParams ooo;
    ooo.robSize = 64;
    ModelResult direct =
        evaluateOutOfOrder(*req.program, *req.memory, *req.branch,
                           machineFor(req.point), ooo);

    EXPECT_EQ(res.cycles, direct.cycles);
    EXPECT_TRUE(res.hasStack);
    for (std::size_t c = 0; c < kNumCpiComponents; ++c) {
        auto comp = static_cast<CpiComponent>(c);
        EXPECT_EQ(res.stack[comp], direct.stack[comp])
            << cpiComponentName(comp);
    }
}

TEST(EvalBackend, BackendsShareTheActivityModel)
{
    // Same cycles in => same energy out, whatever backend produced
    // them: the EDP ordering of backends must reflect cycles only.
    EvalRequest req = defaultRequest();
    EvalResult model =
        BackendRegistry::global().at(kModelBackend).evaluate(req);
    EvalResult ooo =
        BackendRegistry::global().at(kOooBackend).evaluate(req);
    EXPECT_EQ(model.activity.instructions, ooo.activity.instructions);
    EXPECT_EQ(model.activity.l2Accesses, ooo.activity.l2Accesses);
    EXPECT_EQ(model.activity.branches, ooo.activity.branches);
}

// ---- PointEvaluation accessors ----------------------------------------------------

TEST(PointEvaluation, AccessorsReflectBackendSet)
{
    DseStudy study(profileByName("sha"), kLen);
    PointEvaluation ev =
        study.evaluate(defaultDesignPoint(), backendSet("ooo,model"));
    ASSERT_EQ(ev.results.size(), 2u);
    EXPECT_EQ(ev.results[0].backend, kOooBackend);
    EXPECT_EQ(ev.results[1].backend, kModelBackend);
    EXPECT_TRUE(ev.has(kOooBackend));
    EXPECT_FALSE(ev.has(kSimBackend));
    EXPECT_EQ(ev.sim(), nullptr);
    EXPECT_EQ(&ev.model(), &ev.results[1]);
    EXPECT_FALSE(ev.cpiError().has_value());
}

// ---- request validation -----------------------------------------------------------

TEST(EvalBackendDeathTest, SimWithoutTraceIsAFatalUserError)
{
    EvalRequest req = defaultRequest();
    req.trace = nullptr;
    // fatal(), not panic(): a trace-less artifact is a user-input
    // condition and must exit cleanly rather than abort.
    EXPECT_EXIT(
        BackendRegistry::global().at(kSimBackend).evaluate(req),
        ::testing::ExitedWithCode(1), "replays the trace");
}

TEST(EvalBackendDeathTest, MissingProfileViewPanics)
{
    EvalRequest req = defaultRequest();
    req.memory = nullptr;
    EXPECT_DEATH(
        BackendRegistry::global().at(kModelBackend).evaluate(req),
        "profile view");
}

} // namespace
