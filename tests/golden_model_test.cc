/**
 * @file
 * Golden regression test for the mechanistic model (eqs. 1-16).
 *
 * Snapshots the full CPI stack of one small fixed workload (patricia,
 * seed-determined, 30k instructions) at Table 2 corner points.  Any
 * refactor of the model equations, the profiler, or the workload
 * generator that shifts these numbers fails here with a precise
 * component-level diff instead of silently changing bench output.
 *
 * Regenerating after an *intentional* model change:
 *
 *     MECH_GOLDEN_REGEN=1 ./golden_model_test
 *
 * prints the replacement kGolden table on stdout; paste it below and
 * re-run to confirm.
 */

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dse/design_space.hh"
#include "dse/study.hh"
#include "model/cpi_stack.hh"
#include "workload/suites.hh"

namespace {

using namespace mech;

constexpr InstCount kLen = 30000;
constexpr const char *kBench = "patricia";

/** Corner points of the Table 2 space, plus the paper default. */
std::vector<std::pair<std::string, DesignPoint>>
goldenPoints()
{
    std::vector<std::pair<std::string, DesignPoint>> pts;
    DesignPoint p = defaultDesignPoint();
    pts.emplace_back("default", p);

    // Smallest machine: narrow, shallow, small L2, weak predictor.
    p = DesignPoint{};
    p.l2KB = 128;
    p.l2Assoc = 8;
    p.depth = 5;
    p.freqGHz = 0.6;
    p.width = 1;
    p.predictor = PredictorKind::Gshare1K;
    pts.emplace_back("min-corner", p);

    // Largest machine: wide, deep, big L2, strong predictor.
    p = DesignPoint{};
    p.l2KB = 1024;
    p.l2Assoc = 16;
    p.depth = 9;
    p.freqGHz = 1.0;
    p.width = 4;
    p.predictor = PredictorKind::Hybrid3K5;
    pts.emplace_back("max-corner", p);

    // Mixed corner: narrow but deep with a big L2.
    p = DesignPoint{};
    p.l2KB = 1024;
    p.l2Assoc = 8;
    p.depth = 9;
    p.freqGHz = 1.0;
    p.width = 1;
    p.predictor = PredictorKind::Gshare1K;
    pts.emplace_back("narrow-deep", p);

    // Mixed corner: wide but shallow with the small L2.
    p = DesignPoint{};
    p.l2KB = 128;
    p.l2Assoc = 16;
    p.depth = 5;
    p.freqGHz = 0.6;
    p.width = 4;
    p.predictor = PredictorKind::Hybrid3K5;
    pts.emplace_back("wide-shallow", p);
    return pts;
}

struct GoldenRow
{
    const char *label;
    double cycles;
    std::array<double, kNumCpiComponents> stack;
};

// Snapshot of the model at the golden points (generated with
// MECH_GOLDEN_REGEN=1; see file comment).  Component order follows
// CpiComponent.
const GoldenRow kGolden[] = {
    {"default", 90837.25,
     {7502.5, 0, 0, 14032.875, 43380, 0, 835.5, 29.625, 355.5,
      12737.25, 2989, 4685.9375, 0, 4289.0625}},
    {"min-corner", 73647,
     {30010, 0, 0, 8135, 26028, 0, 504, 18, 216, 3996, 2989, 0, 0,
      1751}},
    {"max-corner", 90190.125,
     {7502.5, 0, 0, 14032.875, 43380, 0, 835.5, 29.625, 355.5,
      12055.125, 3024, 4685.9375, 0, 4289.0625}},
    {"narrow-deep", 105991,
     {30010, 0, 0, 14643, 43380, 0, 840, 30, 360, 11988, 2989, 0, 0,
      1751}},
    {"wide-shallow", 58274.125,
     {7502.5, 0, 0, 7524.875, 26028, 0, 499.5, 17.625, 211.5,
      4491.125, 3024, 4685.9375, 0, 4289.0625}},
};

std::vector<std::pair<std::string, EvalResult>>
evaluateGoldenPoints()
{
    DseStudy study(profileByName(kBench), kLen);
    std::vector<std::pair<std::string, EvalResult>> out;
    for (const auto &[label, point] : goldenPoints())
        out.emplace_back(label, study.evaluate(point).model());
    return out;
}

/** Print a replacement kGolden table from the current model. */
void
printRegen(const std::vector<std::pair<std::string, EvalResult>> &rows)
{
    std::printf("const GoldenRow kGolden[] = {\n");
    for (const auto &[label, model] : rows) {
        std::printf("    {\"%s\", %.17g,\n     {", label.c_str(),
                    model.cycles);
        for (std::size_t c = 0; c < kNumCpiComponents; ++c) {
            std::printf("%s%.17g", c ? ", " : "",
                        model.stack[static_cast<CpiComponent>(c)]);
        }
        std::printf("}},\n");
    }
    std::printf("};\n");
}

TEST(GoldenModel, CpiStacksMatchSnapshotAtTable2Corners)
{
    auto rows = evaluateGoldenPoints();

    if (std::getenv("MECH_GOLDEN_REGEN")) {
        printRegen(rows);
        GTEST_SKIP() << "regeneration mode: table printed, not checked";
    }

    ASSERT_EQ(rows.size(), std::size(kGolden))
        << "golden table out of date; regenerate with MECH_GOLDEN_REGEN=1";

    // The model is closed-form arithmetic on profiled counts, so the
    // snapshot holds to tight relative tolerance across compilers;
    // any real model change moves components far more than 1e-9.
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto &[label, model] = rows[i];
        const GoldenRow &want = kGolden[i];
        EXPECT_EQ(label, want.label);
        EXPECT_NEAR(model.cycles, want.cycles,
                    std::abs(want.cycles) * 1e-9 + 1e-12)
            << label;
        for (std::size_t c = 0; c < kNumCpiComponents; ++c) {
            auto comp = static_cast<CpiComponent>(c);
            EXPECT_NEAR(model.stack[comp], want.stack[c],
                        std::abs(want.stack[c]) * 1e-9 + 1e-12)
                << label << " component " << cpiComponentName(comp);
        }
    }
}

TEST(GoldenModel, StackTotalEqualsPredictedCycles)
{
    for (const auto &[label, model] : evaluateGoldenPoints()) {
        EXPECT_NEAR(model.stack.total(), model.cycles,
                    1e-9 * model.cycles)
            << label;
    }
}

} // namespace
