/**
 * @file
 * Integration tests: the whole stack end to end.  The headline
 * contract — the mechanistic model predicts the cycle-accurate
 * simulator within the paper's error bands — is enforced here, per
 * benchmark and across widths.
 */

#include <gtest/gtest.h>

#include "dse/study.hh"
#include "model/inorder_model.hh"
#include "profiler/profiler.hh"
#include "sim/inorder_sim.hh"
#include "workload/executor.hh"
#include "workload/suites.hh"

namespace mech {
namespace {

constexpr InstCount kTraceLen = 60000;

/** Model-vs-simulation relative CPI error for one benchmark/point. */
double
errorFor(const std::string &bench, const DesignPoint &point,
         InstCount len = kTraceLen)
{
    DseStudy study(profileByName(bench), len);
    PointEvaluation ev =
        study.evaluate(point, backendSet("model,sim"));
    // Both backends ran, so the error must be present — value()
    // throws (and fails the test) if the API contract regresses.
    return ev.cpiError().value();
}

// ---- per-benchmark error bands on the default configuration ---------------------

class DefaultConfigError : public ::testing::TestWithParam<const char *>
{
};

TEST_P(DefaultConfigError, WithinPaperBand)
{
    // Paper Fig. 3: average 3.1%, maximum 8.4%.  Allow headroom for
    // the synthetic substitution: every benchmark must be within 12%.
    double err = errorFor(GetParam(), defaultDesignPoint());
    EXPECT_LT(err, 0.12) << GetParam() << " error " << err * 100 << "%";
}

INSTANTIATE_TEST_SUITE_P(
    Mibench, DefaultConfigError,
    ::testing::Values("adpcm_c", "adpcm_d", "dijkstra", "gsm_c",
                      "jpeg_d", "lame", "patricia", "qsort", "sha",
                      "susan_c", "susan_s", "tiff2bw", "tiffdither",
                      "tiffmedian"));

TEST(DefaultConfigError, SuiteAverageBelowSixPercent)
{
    // Paper: 3.1% average on MiBench.  The synthetic suite must stay
    // below 6% on a representative subset.
    const char *subset[] = {"adpcm_c", "dijkstra", "gsm_c", "sha",
                            "tiff2bw", "tiffdither", "patricia",
                            "tiffmedian"};
    double total = 0.0;
    for (const char *b : subset)
        total += errorFor(b, defaultDesignPoint());
    EXPECT_LT(total / std::size(subset), 0.06);
}

// ---- across widths -----------------------------------------------------------------

class WidthError : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(WidthError, TrioWithinBand)
{
    DesignPoint p = defaultDesignPoint();
    p.width = GetParam();
    for (const char *b : {"sha", "tiffdither", "dijkstra"}) {
        double err = errorFor(b, p, 40000);
        EXPECT_LT(err, 0.12)
            << b << " at W=" << p.width << ": " << err * 100 << "%";
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, WidthError,
                         ::testing::Values(1u, 2u, 3u, 4u));

// ---- qualitative figure shapes -------------------------------------------------------

TEST(FigureShapes, ShaScalesDijkstraSaturates)
{
    // Fig. 4's storyline: sha gains from width throughout; dijkstra
    // gains little beyond W=2 because dependencies eat the base win.
    auto cpi_at = [](const char *bench, std::uint32_t w) {
        DseStudy study(profileByName(bench), 40000);
        DesignPoint p = defaultDesignPoint();
        p.width = w;
        return study.evaluate(p).model().cpi();
    };
    double sha_gain = cpi_at("sha", 1) / cpi_at("sha", 4);
    double dij_gain_late = cpi_at("dijkstra", 2) / cpi_at("dijkstra", 4);
    EXPECT_GT(sha_gain, 1.6);
    EXPECT_LT(dij_gain_late, 1.12);
}

TEST(FigureShapes, DependencyComponentGrowsWithWidth)
{
    DseStudy study(profileByName("dijkstra"), 40000);
    DesignPoint w1 = defaultDesignPoint();
    w1.width = 1;
    DesignPoint w4 = defaultDesignPoint();
    w4.width = 4;
    double d1 = study.evaluate(w1).model().stack.dependencies();
    double d4 = study.evaluate(w4).model().stack.dependencies();
    EXPECT_GT(d4, d1);
}

TEST(FigureShapes, HybridPredictorBeatsGshareOnPatricia)
{
    Trace tr = generateTrace(profileByName("patricia"), kTraceLen);
    ProfilerConfig cfg;
    cfg.predictors = {PredictorKind::Gshare1K, PredictorKind::Hybrid3K5};
    WorkloadProfile prof = profileTrace(tr, cfg);
    EXPECT_LE(prof.branchProfileFor(PredictorKind::Hybrid3K5).rate(),
              prof.branchProfileFor(PredictorKind::Gshare1K).rate() *
                  1.05);
}

TEST(FigureShapes, SpecLikeIsMemoryBound)
{
    // Fig. 6: memory-intensive workloads reach much higher CPI.
    DseStudy mcf(profileByName("mcf"), 40000);
    DseStudy sha(profileByName("sha"), 40000);
    DesignPoint p = defaultDesignPoint();
    double mcf_cpi = mcf.evaluate(p).model().cpi();
    double sha_cpi = sha.evaluate(p).model().cpi();
    EXPECT_GT(mcf_cpi, 3.0 * sha_cpi);
}

TEST(FigureShapes, SpecLikeErrorWithinBand)
{
    // Paper Fig. 6: average 4.1%, max 10.7% on SPEC CPU2006.
    for (const char *b : {"mcf", "libquantum", "hmmer"}) {
        double err = errorFor(b, defaultDesignPoint(), 40000);
        EXPECT_LT(err, 0.13) << b << ": " << err * 100 << "%";
    }
}

// ---- profile once, predict many -------------------------------------------------------

TEST(Workflow, OneProfileServesManyConfigurations)
{
    // The model evaluated via the captured profile must agree with a
    // from-scratch profile at a different L2/predictor point.
    const BenchmarkProfile &bench = profileByName("bzip2");
    Trace tr = generateTrace(bench, kTraceLen);

    DesignPoint alt = defaultDesignPoint();
    alt.l2KB = 128;
    alt.l2Assoc = 16;
    alt.predictor = PredictorKind::Hybrid3K5;

    // Path A: capture-once study.
    DseStudy study(bench, kTraceLen);
    double via_study = study.evaluate(alt).model().cycles;

    // Path B: direct profile at the alternative configuration.
    ProfilerConfig cfg;
    cfg.hierarchy = hierarchyFor(alt);
    cfg.predictors = {alt.predictor};
    WorkloadProfile direct = profileTrace(tr, cfg);
    double via_direct =
        evaluateInOrder(direct.program, direct.memory,
                        direct.branchProfileFor(alt.predictor),
                        machineFor(alt))
            .cycles;

    EXPECT_NEAR(via_study, via_direct, via_direct * 1e-9);
}

} // namespace
} // namespace mech
