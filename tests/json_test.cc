/**
 * @file
 * Unit tests for the shared JSON reader/writer (common/json.hh):
 * value shapes, ordering and duplicate-key semantics, the
 * non-throwing error channel, and the escape/number writers the
 * report and serve layers rely on.
 */

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "common/json.hh"

namespace mech::json {
namespace {

Value
parseOk(const std::string &text)
{
    std::string error;
    auto v = parse(text, &error);
    EXPECT_TRUE(v.has_value()) << "'" << text << "': " << error;
    return v ? *v : Value{};
}

std::string
parseError(const std::string &text)
{
    std::string error;
    auto v = parse(text, &error);
    EXPECT_FALSE(v.has_value()) << "'" << text << "' parsed";
    return error;
}

TEST(JsonParse, Scalars)
{
    EXPECT_TRUE(parseOk("null").isNull());
    EXPECT_TRUE(parseOk("true").boolean);
    EXPECT_FALSE(parseOk("false").boolean);
    EXPECT_DOUBLE_EQ(parseOk("-12.5e2").number, -1250.0);
    EXPECT_EQ(parseOk("\"hi\\nthere\"").string, "hi\nthere");
}

TEST(JsonParse, NestedStructure)
{
    Value v = parseOk(
        R"({"a": [1, 2, {"b": "c"}], "d": {"e": null}, "f": true})");
    ASSERT_TRUE(v.isObject());
    const Value *a = v.get("a");
    ASSERT_TRUE(a && a->isArray());
    ASSERT_EQ(a->array.size(), 3u);
    EXPECT_DOUBLE_EQ(a->array[1].number, 2.0);
    ASSERT_NE(a->array[2].get("b"), nullptr);
    EXPECT_EQ(a->array[2].get("b")->string, "c");
    EXPECT_TRUE(v.get("d")->get("e")->isNull());
    EXPECT_EQ(v.get("nope"), nullptr);
}

TEST(JsonParse, ObjectKeepsInsertionOrderAndFirstDuplicate)
{
    Value v = parseOk(R"({"z": 1, "a": 2, "z": 3})");
    ASSERT_EQ(v.object.size(), 2u);
    EXPECT_EQ(v.object[0].first, "z");
    EXPECT_EQ(v.object[1].first, "a");
    EXPECT_DOUBLE_EQ(v.get("z")->number, 1.0); // first wins
}

TEST(JsonParse, UnicodeEscapes)
{
    EXPECT_EQ(parseOk("\"\\u0041\"").string, "A");
    EXPECT_EQ(parseOk("\"\\u00e9\"").string, "\xc3\xa9");
    EXPECT_EQ(parseOk("\"\\u20ac\"").string, "\xe2\x82\xac");
}

TEST(JsonParse, ErrorsCarryOffsets)
{
    EXPECT_NE(parseError("").find("unexpected end"),
              std::string::npos);
    EXPECT_NE(parseError("{\"a\": }").find("offset"),
              std::string::npos);
    parseError("{\"a\": 1,}");
    parseError("[1, 2");
    parseError("\"unterminated");
    parseError("{\"a\": 1} trailing");
    parseError("{'single': 1}");
    parseError("nul");
    parseError("{\"a\": inf}");
    parseError("{\"a\": 1e999}"); // overflow -> inf, not JSON
    parseError("{\"a\": nan}");
    parseError("{1: 2}");
}

TEST(JsonParse, TruncatedRequestLines)
{
    // The serve layer's bread and butter: every prefix of a valid
    // document must fail cleanly, never crash.
    const std::string full =
        R"({"id": 7, "type": "eval", "point": "l2kb=512"})";
    for (std::size_t len = 0; len < full.size(); ++len) {
        std::string error;
        EXPECT_FALSE(parse(full.substr(0, len), &error).has_value())
            << "prefix length " << len;
    }
    std::string error;
    EXPECT_TRUE(parse(full, &error).has_value());
}

TEST(JsonParse, ManyDistinctKeysParseInLinearTime)
{
    // ~100k keys must dedup through a hash probe, not a per-member
    // rescan of the object (which would take seconds, a DoS on the
    // serve layer's request lines).
    std::string doc = "{";
    for (int i = 0; i < 100000; ++i) {
        if (i)
            doc += ",";
        doc += "\"k" + std::to_string(i) + "\": 1";
    }
    doc += "}";
    Value v = parseOk(doc);
    EXPECT_EQ(v.object.size(), 100000u);
}

TEST(JsonParse, DeepNestingIsBoundedNotFatal)
{
    std::string deep(200, '[');
    deep += std::string(200, ']');
    parseError(deep);
}

TEST(JsonParse, NumberBounds)
{
    EXPECT_EQ(parseOk("42").asU64().value(), 42u);
    EXPECT_EQ(parseOk("0").asU64().value(), 0u);
    EXPECT_FALSE(parseOk("-1").asU64().has_value());
    EXPECT_FALSE(parseOk("1.5").asU64().has_value());
    EXPECT_FALSE(parseOk("1e300").asU64().has_value());
    // 2^64 exactly: one past the largest representable uint64.
    EXPECT_FALSE(
        parseOk("18446744073709551616").asU64().has_value());
    EXPECT_FALSE(parseOk("\"42\"").asU64().has_value());
}

TEST(JsonWrite, StringEscapes)
{
    std::ostringstream os;
    writeString(os, "a\"b\\c\nd\te\x01");
    EXPECT_EQ(os.str(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
}

TEST(JsonWrite, NumbersRoundTrip)
{
    for (double v : {0.0, 1.0, -1250.0, 0.8, 1.0 / 3.0,
                     1.556829428802909e-10,
                     std::numeric_limits<double>::denorm_min()}) {
        std::ostringstream os;
        writeNumber(os, v);
        Value parsed = parseOk(os.str());
        EXPECT_EQ(parsed.number, v) << os.str();
    }
}

TEST(JsonRoundTrip, WriterOutputReparses)
{
    std::ostringstream os;
    os << "{\"name\": ";
    writeString(os, "weird \"chars\"\n\ttabs");
    os << ", \"value\": ";
    writeNumber(os, 0.1 + 0.2);
    os << "}";
    Value v = parseOk(os.str());
    EXPECT_EQ(v.get("name")->string, "weird \"chars\"\n\ttabs");
    EXPECT_EQ(v.get("value")->number, 0.1 + 0.2);
}

} // namespace
} // namespace mech::json
