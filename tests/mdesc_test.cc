/**
 * @file
 * Tests for the `.mdesc` machine-description codec
 * (characterize/mdesc.hh): canonical-writer round trips (text and
 * on-disk) reproduce the input byte for byte, the strict parser
 * rejects every corruption class (format/version, unknown and missing
 * keys at every level, wrong types, out-of-range values, truncation,
 * trailing bytes), and the derived LatencySpec / DesignPoint recover
 * the described MachineParams exactly through machineFor().
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "characterize/mdesc.hh"
#include "dse/design_space.hh"

namespace mech {
namespace {

/** A description with every field off its default. */
MachineDescription
sampleDescription()
{
    MachineDescription desc;
    desc.machine.width = 2;
    desc.machine.frontendDepth = 4;
    desc.machine.latIntMult = 3;
    desc.machine.latIntDiv = 19;
    desc.machine.latFpAlu = 5;
    desc.machine.latFpMult = 7;
    desc.machine.latFpDiv = 23;
    desc.machine.dl1HitCycles = 2;
    desc.machine.l2HitCycles = 8;
    desc.machine.memCycles = 48;
    desc.machine.tlbMissCycles = 24;
    desc.machine.freqGHz = 0.8;
    desc.sourceBackend = "sim";
    desc.sourcePoint = defaultDesignPoint().toKey();
    desc.hasThroughput = true;
    for (std::size_t i = 0; i < kNumOpClasses; ++i)
        desc.throughput[i] = 0.125 * static_cast<double>(i + 1);
    return desc;
}

/** @p text with the first occurrence of @p from swapped for @p to. */
std::string
replaced(std::string text, const std::string &from,
         const std::string &to)
{
    const std::size_t at = text.find(from);
    EXPECT_NE(at, std::string::npos) << "no '" << from << "' to edit";
    if (at != std::string::npos)
        text.replace(at, from.size(), to);
    return text;
}

void
expectRejected(const std::string &text, const char *needle)
{
    try {
        parseMdesc(text);
        FAIL() << "parsed despite corruption (wanted '" << needle
               << "')";
    } catch (const MdescError &e) {
        EXPECT_NE(std::string(e.what()).find(needle),
                  std::string::npos)
            << "error was: " << e.what();
    }
}

TEST(Mdesc, TextRoundTripIsBitIdentical)
{
    const MachineDescription desc = sampleDescription();
    const std::string text = writeMdesc(desc);
    const MachineDescription loaded = parseMdesc(text);
    EXPECT_EQ(loaded, desc);
    // The writer is canonical: load -> save reproduces every byte.
    EXPECT_EQ(writeMdesc(loaded), text);
}

TEST(Mdesc, RoundTripsWithoutThroughput)
{
    MachineDescription desc = sampleDescription();
    desc.hasThroughput = false;
    desc.throughput = {};
    desc.sourceBackend.clear();
    desc.sourcePoint.clear();
    const std::string text = writeMdesc(desc);
    EXPECT_EQ(text.find("throughput"), std::string::npos);
    EXPECT_EQ(parseMdesc(text), desc);
}

TEST(Mdesc, FileRoundTripIsBitIdentical)
{
    const std::string path =
        ::testing::TempDir() + "mdesc_test_roundtrip.mdesc";
    const MachineDescription desc = sampleDescription();
    saveMdesc(desc, path);
    const MachineDescription loaded = loadMdesc(path);
    EXPECT_EQ(loaded, desc);

    // Re-saving the loaded description writes the identical file.
    const std::string again =
        ::testing::TempDir() + "mdesc_test_roundtrip2.mdesc";
    saveMdesc(loaded, again);
    EXPECT_EQ(writeMdesc(loadMdesc(again)), writeMdesc(desc));
    std::remove(path.c_str());
    std::remove(again.c_str());
}

TEST(Mdesc, LoadRejectsMissingFile)
{
    EXPECT_THROW(loadMdesc(::testing::TempDir() + "mdesc_test_nope/x"),
                 MdescError);
}

TEST(Mdesc, RejectsNonJson)
{
    expectRejected("not json at all", "JSON");
    expectRejected("[1, 2, 3]\n", "object");
}

TEST(Mdesc, RejectsWrongFormatTag)
{
    const std::string text = writeMdesc(sampleDescription());
    expectRejected(replaced(text, "\"mdesc\"", "\"mprof\""),
                   "'format'");
}

TEST(Mdesc, RejectsBadVersions)
{
    const std::string text = writeMdesc(sampleDescription());
    expectRejected(replaced(text, "\"version\": 1", "\"version\": 0"),
                   "version");
    expectRejected(replaced(text, "\"version\": 1", "\"version\": 2"),
                   "future format version");
    expectRejected(
        replaced(text, "\"version\": 1", "\"version\": -1"),
        "version");
}

TEST(Mdesc, RejectsUnknownKeysAtEveryLevel)
{
    const std::string text = writeMdesc(sampleDescription());
    expectRejected(
        replaced(text, "\"format\"", "\"fmt\": 1,\n  \"format\""),
        "unknown key 'fmt'");
    expectRejected(
        replaced(text, "\"backend\"", "\"host\": \"x\",\n    \"backend\""),
        "unknown key 'host'");
    expectRejected(
        replaced(text, "\"width\"", "\"girth\": 1,\n    \"width\""),
        "unknown key 'girth'");
    expectRejected(
        replaced(text, "\"IntAlu\"", "\"VecAlu\": 1,\n    \"IntAlu\""),
        "unknown key 'VecAlu'");
}

TEST(Mdesc, RejectsMissingMachineField)
{
    // Drop mem_cycles entirely (key, value, and the line break).
    const std::string text = writeMdesc(sampleDescription());
    expectRejected(replaced(text, "    \"mem_cycles\": 48,\n", ""),
                   "missing key 'mem_cycles'");
}

TEST(Mdesc, RejectsWrongFieldTypes)
{
    const std::string text = writeMdesc(sampleDescription());
    expectRejected(replaced(text, "\"width\": 2", "\"width\": \"2\""),
                   "'width'");
    expectRejected(
        replaced(text, "\"backend\": \"sim\"", "\"backend\": 3"),
        "'backend'");
    expectRejected(
        replaced(text, "\"freq_ghz\": 0.8", "\"freq_ghz\": true"),
        "'freq_ghz'");
}

TEST(Mdesc, RejectsNonIntegerCycleCounts)
{
    const std::string text = writeMdesc(sampleDescription());
    expectRejected(
        replaced(text, "\"l2_hit_cycles\": 8", "\"l2_hit_cycles\": 8.5"),
        "'l2_hit_cycles'");
    expectRejected(
        replaced(text, "\"lat_int_div\": 19", "\"lat_int_div\": -19"),
        "'lat_int_div'");
}

TEST(Mdesc, RejectsOutOfRangeValues)
{
    const std::string text = writeMdesc(sampleDescription());
    expectRejected(replaced(text, "\"width\": 2", "\"width\": 0"),
                   "width");
    expectRejected(replaced(text, "\"width\": 2", "\"width\": 17"),
                   "width");
    expectRejected(
        replaced(text, "\"frontend_depth\": 4", "\"frontend_depth\": 1"),
        "frontend_depth");
    expectRejected(
        replaced(text, "\"lat_fp_div\": 23", "\"lat_fp_div\": 0"),
        "latencies");
    expectRejected(
        replaced(text, "\"freq_ghz\": 0.8", "\"freq_ghz\": 0"),
        "freq_ghz");
    // Overflowing literals die in the shared JSON parser already.
    EXPECT_THROW(parseMdesc(replaced(text, "\"freq_ghz\": 0.8",
                                     "\"freq_ghz\": 1e400")),
                 MdescError);
    expectRejected(replaced(text, "\"Load\": 0.875", "\"Load\": -1"),
                   "Load");
}

TEST(Mdesc, RejectsBadSource)
{
    const std::string text = writeMdesc(sampleDescription());
    expectRejected(
        replaced(text, "\"backend\": \"sim\"", "\"backend\": \"gem5\""),
        "unknown backend");
    MachineDescription desc = sampleDescription();
    desc.sourcePoint = "not-a-point-key";
    expectRejected(writeMdesc(desc), "unparseable point key");
}

TEST(Mdesc, RejectsEveryTruncation)
{
    // Every proper prefix must be rejected without crashing — the
    // atomic writer makes half-written files impossible, a damaged
    // copy is not.
    // (The final newline is cosmetic: the document is complete one
    // byte early, so the loop stops before it.)
    const std::string text = writeMdesc(sampleDescription());
    for (std::size_t len = 0; len + 1 < text.size(); ++len) {
        EXPECT_THROW(parseMdesc(text.substr(0, len)), MdescError)
            << "prefix of " << len << " bytes parsed";
    }
}

TEST(Mdesc, RejectsTrailingBytes)
{
    const std::string text = writeMdesc(sampleDescription());
    EXPECT_THROW(parseMdesc(text + "x"), MdescError);
    EXPECT_THROW(parseMdesc(text + "{}"), MdescError);
}

TEST(Mdesc, LatencySpecRecoversParamsExactly)
{
    // machineFor(designPointFor(d), latencySpecFor(d)) must equal
    // d.machine bit for bit at every Table 2 frequency: the ns values
    // are cycles / freq, and the nsToCycles() guard band absorbs the
    // one-ulp product error.
    for (double freq : {0.6, 0.8, 1.0, 1.2, 1.4}) {
        MachineDescription desc = sampleDescription();
        desc.machine.freqGHz = freq;
        const MachineParams back =
            machineFor(designPointFor(desc), latencySpecFor(desc));
        EXPECT_EQ(compareMachineParams(desc.machine, back).size(), 0u)
            << "at " << freq << " GHz";
        EXPECT_EQ(back.freqGHz, freq);
    }
}

TEST(Mdesc, DesignPointForKeepsNonCoreAxes)
{
    MachineDescription desc = sampleDescription();
    DesignPoint point = defaultDesignPoint();
    point.l2KB = 128;
    point.l2Assoc = 16;
    point.predictor = PredictorKind::Hybrid3K5;
    desc.sourcePoint = point.toKey();
    const DesignPoint derived = designPointFor(desc);
    EXPECT_EQ(derived.l2KB, 128u);
    EXPECT_EQ(derived.l2Assoc, 16u);
    EXPECT_EQ(derived.predictor, PredictorKind::Hybrid3K5);
    // Core axes come from the machine parameters, not the key.
    EXPECT_EQ(derived.width, desc.machine.width);
    EXPECT_EQ(derived.depth, desc.machine.frontendDepth + 3);
    EXPECT_EQ(derived.freqGHz, desc.machine.freqGHz);
}

TEST(Mdesc, CompareReportsDivergenceInSchemaOrder)
{
    MachineParams a;
    MachineParams b = a;
    b.memCycles += 5;
    b.width += 1;
    const auto diffs = compareMachineParams(a, b);
    ASSERT_EQ(diffs.size(), 2u);
    EXPECT_EQ(diffs[0].field, "width");
    EXPECT_EQ(diffs[1].field, "mem_cycles");
    EXPECT_EQ(diffs[1].configured, static_cast<double>(a.memCycles));
    EXPECT_EQ(diffs[1].inferred, static_cast<double>(b.memCycles));
    // Tolerance gates each field independently.
    EXPECT_EQ(compareMachineParams(a, b, 1.0).size(), 1u);
    EXPECT_EQ(compareMachineParams(a, b, 5.0).size(), 0u);
}

} // namespace
} // namespace mech
