/**
 * @file
 * Unit tests for the mechanistic in-order model: every penalty
 * formula against hand-computed values (paper eqs. 1-16), stack
 * consistency, and monotonicity properties across widths.
 */

#include <gtest/gtest.h>

#include <set>
#include <string_view>

#include "isa/machine_params.hh"
#include "model/cpi_stack.hh"
#include "model/inorder_model.hh"

namespace mech {
namespace {

/** Machine with no long-latency classes (everything unit). */
MachineParams
unitMachine(std::uint32_t w, std::uint32_t d = 2)
{
    MachineParams m;
    m.width = w;
    m.frontendDepth = d;
    m.latIntMult = 1;
    m.latIntDiv = 1;
    m.latFpAlu = 1;
    m.latFpMult = 1;
    m.latFpDiv = 1;
    return m;
}

/** Program of n IntAlu instructions with no deps/branches. */
ProgramStats
plainProgram(InstCount n)
{
    ProgramStats p;
    p.n = n;
    p.mix.counts[static_cast<std::size_t>(OpClass::IntAlu)] = n;
    p.mix.total = n;
    return p;
}

// ---- eq. 3 helpers -----------------------------------------------------------

TEST(Formulas, GroupOverlap)
{
    EXPECT_DOUBLE_EQ(groupOverlap(1), 0.0);
    EXPECT_DOUBLE_EQ(groupOverlap(2), 0.25);
    EXPECT_DOUBLE_EQ(groupOverlap(4), 0.375);
}

TEST(Formulas, CacheMissPenalty)
{
    // Eq. 3: MissLatency - (W-1)/2W.
    EXPECT_DOUBLE_EQ(cacheMissPenalty(10, 4), 10.0 - 0.375);
    EXPECT_DOUBLE_EQ(cacheMissPenalty(60, 1), 60.0);
}

TEST(Formulas, BranchMissPenalty)
{
    // Eq. 4: D + (W-1)/2W.
    EXPECT_DOUBLE_EQ(branchMissPenalty(6, 4), 6.375);
    EXPECT_DOUBLE_EQ(branchMissPenalty(2, 1), 2.0);
}

TEST(Formulas, LongLatencyPenalty)
{
    // Eq. 6: (latency - 1) - (W-1)/2W.
    EXPECT_DOUBLE_EQ(longLatencyPenalty(4, 4), 3.0 - 0.375);
    EXPECT_DOUBLE_EQ(longLatencyPenalty(20, 2), 19.0 - 0.25);
}

TEST(Formulas, UnitDepPenalty)
{
    // Eq. 11: ((W-d)/W)^2 for d < W, else 0.
    EXPECT_DOUBLE_EQ(unitDepPenalty(1, 4), 0.5625);
    EXPECT_DOUBLE_EQ(unitDepPenalty(2, 4), 0.25);
    EXPECT_DOUBLE_EQ(unitDepPenalty(3, 4), 0.0625);
    EXPECT_DOUBLE_EQ(unitDepPenalty(4, 4), 0.0);
    EXPECT_DOUBLE_EQ(unitDepPenalty(1, 1), 0.0);
}

TEST(Formulas, LLDepPenalty)
{
    // Eq. 12: (W-d)/W for d < W.
    EXPECT_DOUBLE_EQ(llDepPenalty(1, 4), 0.75);
    EXPECT_DOUBLE_EQ(llDepPenalty(3, 4), 0.25);
    EXPECT_DOUBLE_EQ(llDepPenalty(5, 4), 0.0);
}

TEST(Formulas, LoadDepPenaltyShortDistance)
{
    // Eq. 16 first sum: (W-d)/W * (2W-d)/W + d/W for d < W.
    EXPECT_DOUBLE_EQ(loadDepPenalty(1, 4),
                     0.75 * 1.75 + 0.25); // 1.5625
    EXPECT_DOUBLE_EQ(loadDepPenalty(3, 4), 0.25 * 1.25 + 0.75);
}

TEST(Formulas, LoadDepPenaltyLongDistance)
{
    // Eq. 16 second sum: ((2W-d)/W)^2 for W <= d < 2W.
    EXPECT_DOUBLE_EQ(loadDepPenalty(4, 4), 1.0);
    EXPECT_DOUBLE_EQ(loadDepPenalty(6, 4), 0.25);
    EXPECT_DOUBLE_EQ(loadDepPenalty(7, 4), 0.0625);
    EXPECT_DOUBLE_EQ(loadDepPenalty(8, 4), 0.0);
}

TEST(Formulas, LoadDepPenaltyAtWidthOne)
{
    // W=1: only d=1 contributes, a full bubble.
    EXPECT_DOUBLE_EQ(loadDepPenalty(1, 1), 1.0);
    EXPECT_DOUBLE_EQ(loadDepPenalty(2, 1), 0.0);
}

// ---- full model: base term -----------------------------------------------------

TEST(InOrderModel, IdealProgramIsBaseOnly)
{
    ProgramStats prog = plainProgram(1000);
    MemoryStats mem;
    BranchProfile bp;
    ModelResult res = evaluateInOrder(prog, mem, bp, unitMachine(4));
    EXPECT_DOUBLE_EQ(res.cycles, 250.0);
    EXPECT_DOUBLE_EQ(res.stack[CpiComponent::Base], 250.0);
    EXPECT_DOUBLE_EQ(res.cpi(), 0.25);
}

TEST(InOrderModel, StackSumsToTotal)
{
    ProgramStats prog = plainProgram(1000);
    prog.mix.counts[static_cast<std::size_t>(OpClass::IntMult)] = 50;
    prog.deps.of(OpClass::IntAlu).add(1, 100);
    prog.deps.of(OpClass::Load).add(2, 40);
    MemoryStats mem;
    mem.loadL2Hits = 10;
    mem.loadMemory = 5;
    mem.itlbMisses = 2;
    BranchProfile bp;
    bp.mispredicts = 20;
    bp.predictedTakenCorrect = 30;

    MachineParams m;
    m.width = 4;
    ModelResult res = evaluateInOrder(prog, mem, bp, m);
    EXPECT_NEAR(res.cycles, res.stack.total(), 1e-9);
    EXPECT_GT(res.cycles, 250.0);
}

// ---- full model: each penalty in isolation --------------------------------------

TEST(InOrderModel, MultiplyPenalty)
{
    ProgramStats prog = plainProgram(1000);
    prog.mix.counts[static_cast<std::size_t>(OpClass::IntMult)] = 100;
    MachineParams m;
    m.width = 4;
    m.latIntMult = 4;
    ModelResult res =
        evaluateInOrder(prog, MemoryStats{}, BranchProfile{}, m);
    EXPECT_DOUBLE_EQ(res.stack[CpiComponent::LongLat],
                     100.0 * (3.0 - 0.375));
}

TEST(InOrderModel, L2AccessAndMissSplit)
{
    ProgramStats prog = plainProgram(1000);
    prog.mix.counts[static_cast<std::size_t>(OpClass::Load)] = 200;
    MemoryStats mem;
    mem.loadL2Hits = 20;
    mem.loadMemory = 10;
    MachineParams m = unitMachine(4);
    m.l2HitCycles = 10;
    m.memCycles = 60;
    ModelResult res = evaluateInOrder(prog, mem, BranchProfile{}, m);
    // Both L2-served loads and memory loads pay the L2 access term...
    EXPECT_DOUBLE_EQ(res.stack[CpiComponent::L2Access],
                     30.0 * (9.0 - 0.375));
    // ...and memory loads additionally pay the full memory latency.
    EXPECT_DOUBLE_EQ(res.stack[CpiComponent::L2Miss], 10.0 * 60.0);
}

TEST(InOrderModel, MultiCycleL1DHits)
{
    ProgramStats prog = plainProgram(1000);
    prog.mix.counts[static_cast<std::size_t>(OpClass::Load)] = 100;
    MachineParams m = unitMachine(4);
    m.dl1HitCycles = 2;
    ModelResult res =
        evaluateInOrder(prog, MemoryStats{}, BranchProfile{}, m);
    EXPECT_DOUBLE_EQ(res.stack[CpiComponent::L1DAccess],
                     100.0 * (1.0 - 0.375));
}

TEST(InOrderModel, IFetchPenalties)
{
    ProgramStats prog = plainProgram(1000);
    MemoryStats mem;
    mem.iFetchL2Hits = 8;
    mem.iFetchMemory = 2;
    MachineParams m = unitMachine(4);
    m.l2HitCycles = 10;
    m.memCycles = 60;
    ModelResult res = evaluateInOrder(prog, mem, BranchProfile{}, m);
    EXPECT_DOUBLE_EQ(res.stack[CpiComponent::IFetchL2], 8.0 * 9.625);
    EXPECT_DOUBLE_EQ(res.stack[CpiComponent::IFetchMem], 2.0 * 69.625);
}

TEST(InOrderModel, BranchPenalties)
{
    ProgramStats prog = plainProgram(1000);
    BranchProfile bp;
    bp.mispredicts = 10;
    bp.predictedTakenCorrect = 40;
    MachineParams m = unitMachine(4, 6);
    ModelResult res = evaluateInOrder(prog, MemoryStats{}, bp, m);
    EXPECT_DOUBLE_EQ(res.stack[CpiComponent::BpredMiss], 10.0 * 6.375);
    EXPECT_DOUBLE_EQ(res.stack[CpiComponent::BpredTakenHit], 40.0);
}

TEST(InOrderModel, TlbPenalties)
{
    ProgramStats prog = plainProgram(1000);
    MemoryStats mem;
    mem.itlbMisses = 3;
    mem.dtlbMisses = 5;
    MachineParams m = unitMachine(4);
    m.tlbMissCycles = 30;
    ModelResult res = evaluateInOrder(prog, mem, BranchProfile{}, m);
    EXPECT_DOUBLE_EQ(res.stack.tlb(), 8.0 * (30.0 - 0.375));
}

TEST(InOrderModel, DependencyClassification)
{
    // Producer class decides the formula: IntAlu -> unit, IntMult ->
    // LL, Load -> load; the machine's latency table drives the split.
    ProgramStats prog = plainProgram(1000);
    prog.deps.of(OpClass::IntAlu).add(1, 10);
    prog.deps.of(OpClass::IntMult).add(1, 10);
    prog.deps.of(OpClass::Load).add(1, 10);
    MachineParams m;
    m.width = 4;
    m.latIntMult = 4;
    ModelResult res =
        evaluateInOrder(prog, MemoryStats{}, BranchProfile{}, m);
    EXPECT_DOUBLE_EQ(res.stack[CpiComponent::DepsUnit], 10.0 * 0.5625);
    EXPECT_DOUBLE_EQ(res.stack[CpiComponent::DepsLL], 10.0 * 0.75);
    EXPECT_DOUBLE_EQ(res.stack[CpiComponent::DepsLoad], 10.0 * 1.5625);
}

TEST(InOrderModel, UnitLatencyMultIsNotLongLatency)
{
    // If the machine executes multiplies in one cycle, deps on them
    // use the unit formula and there is no LL penalty.
    ProgramStats prog = plainProgram(1000);
    prog.mix.counts[static_cast<std::size_t>(OpClass::IntMult)] = 100;
    prog.deps.of(OpClass::IntMult).add(1, 10);
    MachineParams m = unitMachine(4);
    ModelResult res =
        evaluateInOrder(prog, MemoryStats{}, BranchProfile{}, m);
    EXPECT_DOUBLE_EQ(res.stack[CpiComponent::LongLat], 0.0);
    EXPECT_DOUBLE_EQ(res.stack[CpiComponent::DepsLL], 0.0);
    EXPECT_DOUBLE_EQ(res.stack[CpiComponent::DepsUnit], 10.0 * 0.5625);
}

TEST(InOrderModel, DistancesBeyondReachAreFree)
{
    ProgramStats prog = plainProgram(1000);
    prog.deps.of(OpClass::IntAlu).add(4, 100);  // d >= W
    prog.deps.of(OpClass::Load).add(8, 100);    // d >= 2W
    MachineParams m = unitMachine(4);
    ModelResult res =
        evaluateInOrder(prog, MemoryStats{}, BranchProfile{}, m);
    EXPECT_DOUBLE_EQ(res.stack.dependencies(), 0.0);
}

// ---- properties across widths -----------------------------------------------------

class ModelWidthSweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(ModelWidthSweep, BaseCyclesScaleInversely)
{
    std::uint32_t w = GetParam();
    ProgramStats prog = plainProgram(1200);
    ModelResult res =
        evaluateInOrder(prog, MemoryStats{}, BranchProfile{},
                        unitMachine(w));
    EXPECT_DOUBLE_EQ(res.stack[CpiComponent::Base], 1200.0 / w);
}

TEST_P(ModelWidthSweep, DependencyFreeTimeNonIncreasingInWidth)
{
    std::uint32_t w = GetParam();
    if (w == 1)
        return; // nothing to compare against
    ProgramStats prog = plainProgram(1200);
    MemoryStats mem;
    mem.loadL2Hits = 17;
    BranchProfile bp;
    bp.mispredicts = 5;
    double narrower =
        evaluateInOrder(prog, mem, bp, unitMachine(w - 1)).cycles;
    double wider = evaluateInOrder(prog, mem, bp, unitMachine(w)).cycles;
    EXPECT_LE(wider, narrower);
}

TEST_P(ModelWidthSweep, StackAlwaysSumsToTotal)
{
    std::uint32_t w = GetParam();
    ProgramStats prog = plainProgram(997);
    prog.deps.of(OpClass::IntAlu).add(1, 31);
    prog.deps.of(OpClass::Load).add(2, 11);
    prog.mix.counts[static_cast<std::size_t>(OpClass::IntDiv)] = 7;
    MemoryStats mem;
    mem.loadMemory = 3;
    BranchProfile bp;
    bp.mispredicts = 13;
    MachineParams m;
    m.width = w;
    ModelResult res = evaluateInOrder(prog, mem, bp, m);
    EXPECT_NEAR(res.cycles, res.stack.total(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Widths, ModelWidthSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u));

// ---- CpiStack helpers ---------------------------------------------------------------

TEST(CpiStack, PerInstructionDividesEveryComponent)
{
    CpiStack s;
    s[CpiComponent::Base] = 100.0;
    s[CpiComponent::BpredMiss] = 50.0;
    CpiStack per = s.perInstruction(200);
    EXPECT_DOUBLE_EQ(per[CpiComponent::Base], 0.5);
    EXPECT_DOUBLE_EQ(per[CpiComponent::BpredMiss], 0.25);
}

TEST(CpiStack, Aggregations)
{
    CpiStack s;
    s[CpiComponent::DepsUnit] = 1.0;
    s[CpiComponent::DepsLL] = 2.0;
    s[CpiComponent::DepsLoad] = 3.0;
    s[CpiComponent::ITlbMiss] = 0.5;
    s[CpiComponent::DTlbMiss] = 0.5;
    s[CpiComponent::IFetchL2] = 4.0;
    EXPECT_DOUBLE_EQ(s.dependencies(), 6.0);
    EXPECT_DOUBLE_EQ(s.tlb(), 1.0);
    EXPECT_DOUBLE_EQ(s.ifetch(), 4.0);
}

TEST(CpiStack, ComponentNamesAreUnique)
{
    std::set<std::string_view> names;
    for (std::size_t c = 0; c < kNumCpiComponents; ++c)
        names.insert(cpiComponentName(static_cast<CpiComponent>(c)));
    EXPECT_EQ(names.size(), kNumCpiComponents);
}

TEST(ModelResult, SecondsAtFrequency)
{
    ModelResult r;
    r.cycles = 2e9;
    r.instructions = 1;
    EXPECT_DOUBLE_EQ(r.seconds(1.0), 2.0);
    EXPECT_DOUBLE_EQ(r.seconds(2.0), 1.0);
}

} // namespace
} // namespace mech
