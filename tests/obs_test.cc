/**
 * @file
 * Tests for the observability layer: metrics primitives (log2 bucket
 * math, merge associativity, quantile edge cases, concurrent
 * recording), the metrics registry, the Prometheus exposition
 * renderer and validator, the Chrome-trace recorder, and the leveled
 * logging gate.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"

namespace {

using namespace mech;

TEST(ObsHistogram, BucketBoundaries)
{
    // Bucket 0 holds exactly 0; bucket i >= 1 holds values whose bit
    // width is i, i.e. [2^(i-1), 2^i - 1].
    EXPECT_EQ(obs::LatencyHistogram::bucketIndex(0), 0u);
    EXPECT_EQ(obs::LatencyHistogram::bucketIndex(1), 1u);
    EXPECT_EQ(obs::LatencyHistogram::bucketIndex(2), 2u);
    EXPECT_EQ(obs::LatencyHistogram::bucketIndex(3), 2u);
    EXPECT_EQ(obs::LatencyHistogram::bucketIndex(4), 3u);
    EXPECT_EQ(obs::LatencyHistogram::bucketIndex(7), 3u);
    EXPECT_EQ(obs::LatencyHistogram::bucketIndex(8), 4u);
    EXPECT_EQ(obs::LatencyHistogram::bucketUpperBound(0), 0u);
    EXPECT_EQ(obs::LatencyHistogram::bucketUpperBound(1), 1u);
    EXPECT_EQ(obs::LatencyHistogram::bucketUpperBound(2), 3u);
    EXPECT_EQ(obs::LatencyHistogram::bucketUpperBound(10), 1023u);

    // Every nonzero value lands in the bucket whose bounds bracket it.
    for (std::uint64_t v : {1ull, 2ull, 5ull, 100ull, 4095ull,
                            4096ull, 123456789ull}) {
        const std::size_t i = obs::LatencyHistogram::bucketIndex(v);
        EXPECT_LE(v, obs::LatencyHistogram::bucketUpperBound(i));
        ASSERT_GE(i, 1u);
        EXPECT_GT(v, obs::LatencyHistogram::bucketUpperBound(i - 1));
    }

    // Values beyond the top bucket's range clamp into it.
    const std::size_t top = obs::LatencyHistogram::kBuckets - 1;
    EXPECT_EQ(obs::LatencyHistogram::bucketIndex(~0ull), top);
}

TEST(ObsHistogram, RecordAndSnapshot)
{
    obs::LatencyHistogram h;
    h.record(0);
    h.record(1);
    h.record(5);
    h.record(5);
    const obs::HistogramSnapshot snap = h.snapshot();
    EXPECT_EQ(snap.count(), 4u);
    EXPECT_EQ(snap.sum, 11u);
    EXPECT_EQ(snap.buckets.at(0), 1u);
    EXPECT_EQ(snap.buckets.at(1), 1u);
    EXPECT_EQ(snap.buckets.at(3), 2u); // 5 has bit width 3
}

TEST(ObsHistogram, MergeAssociativityAndCommutativity)
{
    obs::LatencyHistogram ha, hb, hc;
    for (std::uint64_t v : {1ull, 3ull, 7ull})
        ha.record(v);
    for (std::uint64_t v : {10ull, 100ull})
        hb.record(v);
    for (std::uint64_t v : {0ull, 1000000ull})
        hc.record(v);

    // (a + b) + c
    obs::HistogramSnapshot left = ha.snapshot();
    left.merge(hb.snapshot());
    left.merge(hc.snapshot());
    // a + (b + c)
    obs::HistogramSnapshot bc = hb.snapshot();
    bc.merge(hc.snapshot());
    obs::HistogramSnapshot right = ha.snapshot();
    right.merge(bc);
    // c + b + a (commuted)
    obs::HistogramSnapshot commuted = hc.snapshot();
    commuted.merge(hb.snapshot());
    commuted.merge(ha.snapshot());

    EXPECT_EQ(left.count(), 7u);
    EXPECT_EQ(left.sum, right.sum);
    EXPECT_EQ(left.sum, commuted.sum);
    for (std::uint64_t k = 0; k <= left.buckets.maxKey(); ++k) {
        EXPECT_EQ(left.buckets.at(k), right.buckets.at(k)) << k;
        EXPECT_EQ(left.buckets.at(k), commuted.buckets.at(k)) << k;
    }
}

TEST(ObsHistogram, QuantileEmpty)
{
    obs::LatencyHistogram h;
    EXPECT_EQ(h.quantile(0.5), 0u);
    EXPECT_EQ(h.quantile(0.99), 0u);
}

TEST(ObsHistogram, QuantileSingleSample)
{
    obs::LatencyHistogram h;
    h.record(100); // bucket 7: [64, 127]
    const std::uint64_t bound =
        obs::LatencyHistogram::bucketUpperBound(
            obs::LatencyHistogram::bucketIndex(100));
    EXPECT_EQ(h.quantile(0.0), bound);
    EXPECT_EQ(h.quantile(0.5), bound);
    EXPECT_EQ(h.quantile(1.0), bound);
}

TEST(ObsHistogram, QuantileClampsArgument)
{
    obs::LatencyHistogram h;
    h.record(1);
    h.record(1000);
    EXPECT_EQ(h.quantile(-1.0), h.quantile(0.0));
    EXPECT_EQ(h.quantile(2.0), h.quantile(1.0));
}

TEST(ObsHistogram, QuantileOverflowBucket)
{
    obs::LatencyHistogram h;
    h.record(~0ull); // clamps into the top bucket
    const std::size_t top = obs::LatencyHistogram::kBuckets - 1;
    EXPECT_EQ(h.quantile(0.99),
              obs::LatencyHistogram::bucketUpperBound(top));
}

TEST(ObsHistogram, QuantileOrdering)
{
    obs::LatencyHistogram h;
    for (int i = 0; i < 90; ++i)
        h.record(10); // bucket 4, bound 15
    for (int i = 0; i < 10; ++i)
        h.record(100000); // bucket 17, bound 131071
    EXPECT_EQ(h.quantile(0.5), 15u);
    EXPECT_EQ(h.quantile(0.99), 131071u);
    EXPECT_LE(h.quantile(0.5), h.quantile(0.95));
    EXPECT_LE(h.quantile(0.95), h.quantile(0.99));
}

TEST(ObsHistogram, ConcurrentIncrementStress)
{
    // Relaxed-atomic recording must lose no observations under
    // contention (run under TSan in CI).
    obs::LatencyHistogram h;
    obs::Counter counter;
    obs::Gauge gauge;
    constexpr int kThreads = 8;
    constexpr int kIters = 20000;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            for (int i = 0; i < kIters; ++i) {
                h.record(static_cast<std::uint64_t>(t * kIters + i));
                counter.inc();
                gauge.add(1);
            }
        });
    }
    for (std::thread &w : workers)
        w.join();
    EXPECT_EQ(h.snapshot().count(),
              static_cast<std::uint64_t>(kThreads) * kIters);
    EXPECT_EQ(counter.value(),
              static_cast<std::uint64_t>(kThreads) * kIters);
    EXPECT_EQ(gauge.value(),
              static_cast<std::int64_t>(kThreads) * kIters);
}

TEST(ObsRegistry, ReturnsStableReferences)
{
    obs::MetricsRegistry reg;
    obs::Counter &a = reg.counter("test.hits", "help a");
    obs::Counter &b = reg.counter("test.hits");
    EXPECT_EQ(&a, &b);
    a.inc(3);
    EXPECT_EQ(b.value(), 3u);

    // Many registrations must not invalidate earlier references.
    for (int i = 0; i < 100; ++i)
        reg.counter("test.filler" + std::to_string(i));
    EXPECT_EQ(a.value(), 3u);
    EXPECT_EQ(reg.size(), 101u);
}

TEST(ObsRegistry, CollectsAllKinds)
{
    obs::MetricsRegistry reg;
    reg.counter("c.one", "a counter").inc(7);
    reg.gauge("g.one", "a gauge").set(-5);
    reg.histogram("h.one", "a histogram").record(42);

    const auto samples = reg.collect();
    ASSERT_EQ(samples.size(), 3u);
    EXPECT_EQ(samples[0].name, "c.one");
    EXPECT_EQ(samples[0].kind, obs::MetricKind::CounterKind);
    EXPECT_EQ(samples[0].value, 7);
    EXPECT_EQ(samples[1].name, "g.one");
    EXPECT_EQ(samples[1].value, -5);
    EXPECT_EQ(samples[2].kind, obs::MetricKind::HistogramKind);
    EXPECT_EQ(samples[2].hist.count(), 1u);
}

TEST(ObsRegistry, PrometheusNameMapping)
{
    EXPECT_EQ(obs::prometheusName("serve.latency.result"),
              "mech_serve_latency_result");
    EXPECT_EQ(obs::prometheusName("evalcache.shard3.hits"),
              "mech_evalcache_shard3_hits");
    EXPECT_EQ(obs::prometheusName("weird-name!x"),
              "mech_weird_name_x");
}

TEST(ObsRegistry, RenderedExpositionValidates)
{
    obs::MetricsRegistry reg;
    reg.counter("serve.requests", "Requests answered").inc(12);
    reg.gauge("serve.inflight", "In-flight requests").set(3);
    obs::LatencyHistogram &h =
        reg.histogram("serve.latency", "Latency \\ \"us\"\nmultiline");
    h.record(0);
    h.record(5);
    h.record(1000);

    std::ostringstream os;
    reg.renderPrometheus(os);
    const std::string text = os.str();

    std::string error;
    EXPECT_TRUE(obs::validateExposition(text, &error)) << error;
    EXPECT_NE(text.find("# TYPE mech_serve_requests counter"),
              std::string::npos);
    EXPECT_NE(text.find("mech_serve_requests 12"), std::string::npos);
    EXPECT_NE(text.find("# TYPE mech_serve_inflight gauge"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE mech_serve_latency histogram"),
              std::string::npos);
    EXPECT_NE(text.find("mech_serve_latency_bucket{le=\"+Inf\"} 3"),
              std::string::npos);
    EXPECT_NE(text.find("mech_serve_latency_sum 1005"),
              std::string::npos);
    EXPECT_NE(text.find("mech_serve_latency_count 3"),
              std::string::npos);
}

TEST(ObsRegistry, EmptyRegistryRendersValidEmptyExposition)
{
    obs::MetricsRegistry reg;
    std::ostringstream os;
    reg.renderPrometheus(os);
    std::string error;
    EXPECT_TRUE(obs::validateExposition(os.str(), &error)) << error;
}

TEST(ObsExposition, ValidatorAcceptsKnownGoodPayload)
{
    const std::string good =
        "# HELP http_requests_total The total number of requests.\n"
        "# TYPE http_requests_total counter\n"
        "http_requests_total{method=\"post\",code=\"200\"} 1027\n"
        "# TYPE rpc_duration_seconds histogram\n"
        "rpc_duration_seconds_bucket{le=\"0.05\"} 24054\n"
        "rpc_duration_seconds_bucket{le=\"0.1\"} 33444\n"
        "rpc_duration_seconds_bucket{le=\"+Inf\"} 34488\n"
        "rpc_duration_seconds_sum 53423\n"
        "rpc_duration_seconds_count 34488\n";
    std::string error;
    EXPECT_TRUE(obs::validateExposition(good, &error)) << error;
}

TEST(ObsExposition, ValidatorRejectsMalformedLines)
{
    std::string error;
    EXPECT_FALSE(obs::validateExposition("not a metric line\n",
                                         &error));
    EXPECT_FALSE(obs::validateExposition("123bad_name 1\n", &error));
    EXPECT_FALSE(obs::validateExposition("name notanumber\n", &error));
    EXPECT_FALSE(
        obs::validateExposition("# TYPE x notakind\n", &error));
    EXPECT_FALSE(obs::validateExposition(
        "name{unclosed=\"value\" 1\n", &error));
}

TEST(ObsExposition, ValidatorRejectsBrokenHistograms)
{
    // Non-cumulative buckets.
    const std::string decreasing =
        "# TYPE h histogram\n"
        "h_bucket{le=\"1\"} 10\n"
        "h_bucket{le=\"2\"} 5\n"
        "h_bucket{le=\"+Inf\"} 10\n"
        "h_sum 1\n"
        "h_count 10\n";
    std::string error;
    EXPECT_FALSE(obs::validateExposition(decreasing, &error));

    // Missing the +Inf bucket.
    const std::string noInf = "# TYPE h histogram\n"
                              "h_bucket{le=\"1\"} 10\n"
                              "h_sum 1\n"
                              "h_count 10\n";
    EXPECT_FALSE(obs::validateExposition(noInf, &error));

    // +Inf disagrees with _count.
    const std::string mismatch = "# TYPE h histogram\n"
                                 "h_bucket{le=\"+Inf\"} 10\n"
                                 "h_sum 1\n"
                                 "h_count 11\n";
    EXPECT_FALSE(obs::validateExposition(mismatch, &error));
}

TEST(ObsTrace, InactiveByDefault)
{
    EXPECT_EQ(obs::TraceRecorder::current(), nullptr);
    EXPECT_FALSE(obs::TraceRecorder::active());
    // Spans with no recorder are no-ops.
    { obs::TraceSpan span("noop", "test"); }
}

TEST(ObsTrace, RecordsSpansAndWritesValidChromeTrace)
{
    auto recorder = std::make_unique<obs::TraceRecorder>();
    obs::TraceRecorder::install(recorder.get());
    {
        obs::TraceSpan outer("outer", "test");
        obs::TraceSpan inner("inner", "test");
    }
    recorder->complete("explicit", "test", 10, 5);
    obs::TraceRecorder::install(nullptr);

    EXPECT_EQ(recorder->eventCount(), 3u);
    EXPECT_EQ(recorder->droppedCount(), 0u);

    std::ostringstream os;
    recorder->writeJson(os);
    std::string error;
    auto doc = json::parse(os.str(), &error);
    ASSERT_TRUE(doc) << error;

    const json::Value *events = doc->get("traceEvents");
    ASSERT_TRUE(events && events->isArray());
    ASSERT_EQ(events->array.size(), 3u);
    for (const json::Value &ev : events->array) {
        const json::Value *ph = ev.get("ph");
        ASSERT_TRUE(ph && ph->isString());
        EXPECT_EQ(ph->string, "X");
        EXPECT_TRUE(ev.get("name") && ev.get("name")->isString());
        EXPECT_TRUE(ev.get("cat") && ev.get("cat")->isString());
        EXPECT_TRUE(ev.get("ts") && ev.get("ts")->isNumber());
        EXPECT_TRUE(ev.get("dur") && ev.get("dur")->isNumber());
        EXPECT_TRUE(ev.get("pid") && ev.get("pid")->isNumber());
        EXPECT_TRUE(ev.get("tid") && ev.get("tid")->isNumber());
    }
    // The explicit event round-trips its timestamps.
    const json::Value &last = events->array[2];
    EXPECT_EQ(last.get("name")->string, "explicit");
    EXPECT_EQ(last.get("ts")->number, 10.0);
    EXPECT_EQ(last.get("dur")->number, 5.0);
}

TEST(ObsTrace, ConcurrentSpansAreAllRecorded)
{
    auto recorder = std::make_unique<obs::TraceRecorder>();
    obs::TraceRecorder::install(recorder.get());
    constexpr int kThreads = 4;
    constexpr int kSpans = 500;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([] {
            for (int i = 0; i < kSpans; ++i)
                obs::TraceSpan span("work", "test");
        });
    }
    for (std::thread &w : workers)
        w.join();
    obs::TraceRecorder::install(nullptr);
    EXPECT_EQ(recorder->eventCount(),
              static_cast<std::size_t>(kThreads) * kSpans);
}

TEST(ObsLogging, ParseLogLevel)
{
    EXPECT_EQ(parseLogLevel("error"), LogLevel::Error);
    EXPECT_EQ(parseLogLevel("warn"), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel("warning"), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel("info"), LogLevel::Info);
    EXPECT_EQ(parseLogLevel("debug"), LogLevel::Debug);
    EXPECT_EQ(parseLogLevel("trace"), LogLevel::Trace);
    EXPECT_FALSE(parseLogLevel("loud").has_value());
    EXPECT_FALSE(parseLogLevel("").has_value());
}

TEST(ObsLogging, VerbosityGate)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Warn);
    EXPECT_TRUE(logEnabled(LogLevel::Error));
    EXPECT_TRUE(logEnabled(LogLevel::Warn));
    EXPECT_FALSE(logEnabled(LogLevel::Info));
    EXPECT_FALSE(logEnabled(LogLevel::Debug));
    setLogLevel(LogLevel::Trace);
    EXPECT_TRUE(logEnabled(LogLevel::Trace));
    setLogLevel(before);
}

TEST(ObsLogging, RateLimiterThrottlesAndCounts)
{
    detail::LogRateLimiter limiter(1000 * 60 * 60); // one per hour
    std::uint64_t suppressed = 123;
    EXPECT_TRUE(limiter.allow(&suppressed));
    EXPECT_EQ(suppressed, 0u);
    // Every further call inside the interval is swallowed.
    for (int i = 0; i < 5; ++i)
        EXPECT_FALSE(limiter.allow(&suppressed));
}

} // namespace
