/**
 * @file
 * Tests for the out-of-order interval model, the power model, and the
 * Table 2 design-space machinery.
 */

#include <gtest/gtest.h>

#include <set>

#include "dse/design_space.hh"
#include "dse/study.hh"
#include "ooo/ooo_model.hh"
#include "power/power_model.hh"
#include "workload/suites.hh"

namespace mech {
namespace {

ProgramStats
plainProgram(InstCount n)
{
    ProgramStats p;
    p.n = n;
    p.mix.counts[static_cast<std::size_t>(OpClass::IntAlu)] = n;
    p.mix.total = n;
    return p;
}

// ---- exposedMissPenalty ---------------------------------------------------------

TEST(OooMlp, EmptyStreamIsFree)
{
    EXPECT_DOUBLE_EQ(exposedMissPenalty({}, 60, 128, 4), 0.0);
}

TEST(OooMlp, IsolatedMissPaysLatencyMinusHiddenWork)
{
    // One miss at index 400: 400/4 = 100 cycles of work precede it,
    // more than the 60-cycle latency: fully hidden.
    EXPECT_DOUBLE_EQ(exposedMissPenalty({400}, 60, 128, 4), 0.0);
    // One miss right at the start: fully exposed.
    EXPECT_DOUBLE_EQ(exposedMissPenalty({0}, 60, 128, 4), 60.0);
}

TEST(OooMlp, OverlappingMissesAreOneGroup)
{
    // Two misses within the window: followers ride the leader.
    double two = exposedMissPenalty({0, 50}, 60, 128, 4);
    double one = exposedMissPenalty({0}, 60, 128, 4);
    EXPECT_DOUBLE_EQ(two, one);
}

TEST(OooMlp, SerialChainsPayPerMiss)
{
    // Misses spaced beyond the window but close in instructions:
    // pointer chasing pays nearly full latency each time.
    std::vector<std::uint64_t> chain;
    for (int i = 0; i < 10; ++i)
        chain.push_back(static_cast<std::uint64_t>(i) * 140);
    double p = exposedMissPenalty(chain, 60, 128, 4);
    // First fully exposed; each next hides 140/4 = 35 cycles.
    EXPECT_DOUBLE_EQ(p, 60.0 + 9.0 * 25.0);
}

TEST(OooMlp, WiderDispatchShortensTheGapAndExposesMore)
{
    // The inter-miss work of `gap` instructions takes gap/W cycles; a
    // wider core burns through it faster, exposing more of the next
    // miss's latency (interval analysis, not a hiding bonus).
    std::vector<std::uint64_t> misses = {0, 200, 400};
    EXPECT_GT(exposedMissPenalty(misses, 60, 128, 8),
              exposedMissPenalty(misses, 60, 128, 2));
}

// ---- OoO vs in-order model ------------------------------------------------------

TEST(OooModel, HidesDependenciesAndLongLatencies)
{
    ProgramStats prog = plainProgram(10000);
    prog.mix.counts[static_cast<std::size_t>(OpClass::IntMult)] = 1000;
    prog.deps.of(OpClass::IntAlu).add(1, 3000);
    MachineParams m;
    m.width = 4;
    ModelResult io =
        evaluateInOrder(prog, MemoryStats{}, BranchProfile{}, m);
    ModelResult ooo = evaluateOutOfOrder(prog, MemoryStats{},
                                         BranchProfile{}, m, OooParams{});
    EXPECT_DOUBLE_EQ(ooo.stack.dependencies(), 0.0);
    EXPECT_DOUBLE_EQ(ooo.stack[CpiComponent::LongLat], 0.0);
    EXPECT_GT(io.cycles, ooo.cycles);
}

TEST(OooModel, BranchesCostMoreThanInOrder)
{
    ProgramStats prog = plainProgram(10000);
    BranchProfile bp;
    bp.mispredicts = 100;
    MachineParams m;
    m.width = 4;
    m.frontendDepth = 6;
    ModelResult io = evaluateInOrder(prog, MemoryStats{}, bp, m);
    ModelResult ooo =
        evaluateOutOfOrder(prog, MemoryStats{}, bp, m, OooParams{});
    EXPECT_GT(ooo.stack[CpiComponent::BpredMiss],
              io.stack[CpiComponent::BpredMiss]);
}

TEST(OooModel, IFetchPenaltyIdenticalToInOrder)
{
    ProgramStats prog = plainProgram(10000);
    MemoryStats mem;
    mem.iFetchL2Hits = 50;
    mem.iFetchMemory = 10;
    MachineParams m;
    m.width = 4;
    ModelResult io =
        evaluateInOrder(prog, mem, BranchProfile{}, m);
    ModelResult ooo = evaluateOutOfOrder(prog, mem, BranchProfile{}, m,
                                         OooParams{});
    EXPECT_DOUBLE_EQ(ooo.stack.ifetch(), io.stack.ifetch());
}

TEST(OooModel, StreamingMissesOverlapUnlikeInOrder)
{
    ProgramStats prog = plainProgram(10000);
    MemoryStats mem;
    // 50 misses spaced 64 instructions apart (streaming).
    for (int i = 0; i < 50; ++i)
        mem.loadMemoryIdx.push_back(static_cast<std::uint64_t>(i) * 64);
    mem.loadMemory = 50;
    MachineParams m;
    m.width = 4;
    ModelResult io = evaluateInOrder(prog, mem, BranchProfile{}, m);
    ModelResult ooo = evaluateOutOfOrder(prog, mem, BranchProfile{}, m,
                                         OooParams{});
    EXPECT_LT(ooo.stack[CpiComponent::L2Miss],
              0.5 * io.stack[CpiComponent::L2Miss]);
}

// ---- power model ------------------------------------------------------------------

ActivityCounts
someActivity()
{
    ActivityCounts a;
    a.cycles = 1e6;
    a.instructions = 2e6;
    a.l1iAccesses = 2e6;
    a.l1dAccesses = 6e5;
    a.l2Accesses = 3e4;
    a.memAccesses = 2e3;
    a.branches = 2.5e5;
    return a;
}

TEST(Power, EnergyPositiveAndDecomposed)
{
    DesignPoint p = defaultDesignPoint();
    PowerModel pm(machineFor(p), hierarchyFor(p), p.predictor);
    EnergyBreakdown e = pm.energy(someActivity());
    EXPECT_GT(e.coreDynamicJ, 0.0);
    EXPECT_GT(e.cacheDynamicJ, 0.0);
    EXPECT_GT(e.memoryDynamicJ, 0.0);
    EXPECT_GT(e.staticJ, 0.0);
    EXPECT_NEAR(e.totalJ(),
                e.coreDynamicJ + e.cacheDynamicJ + e.memoryDynamicJ +
                    e.staticJ,
                1e-15);
}

TEST(Power, WiderCoreBurnsMore)
{
    DesignPoint narrow = defaultDesignPoint();
    narrow.width = 1;
    DesignPoint wide = defaultDesignPoint();
    wide.width = 4;
    ActivityCounts a = someActivity();
    PowerModel pn(machineFor(narrow), hierarchyFor(narrow),
                  narrow.predictor);
    PowerModel pw(machineFor(wide), hierarchyFor(wide), wide.predictor);
    EXPECT_GT(pw.energy(a).coreDynamicJ, pn.energy(a).coreDynamicJ);
}

TEST(Power, BiggerL2LeaksMore)
{
    DesignPoint small = defaultDesignPoint();
    small.l2KB = 128;
    DesignPoint big = defaultDesignPoint();
    big.l2KB = 1024;
    PowerModel ps(machineFor(small), hierarchyFor(small),
                  small.predictor);
    PowerModel pb(machineFor(big), hierarchyFor(big), big.predictor);
    EXPECT_GT(pb.staticPowerW(), ps.staticPowerW());
}

TEST(Power, LowerFrequencyLowersVoltage)
{
    DesignPoint fast = defaultDesignPoint(); // 9 stages @ 1 GHz
    DesignPoint slow = defaultDesignPoint();
    slow.depth = 5;
    slow.freqGHz = 0.6;
    PowerModel pf(machineFor(fast), hierarchyFor(fast), fast.predictor);
    PowerModel ps(machineFor(slow), hierarchyFor(slow), slow.predictor);
    EXPECT_LT(ps.voltageScale(), pf.voltageScale());
}

TEST(Power, EdpIsEnergyTimesDelay)
{
    DesignPoint p = defaultDesignPoint();
    PowerModel pm(machineFor(p), hierarchyFor(p), p.predictor);
    ActivityCounts a = someActivity();
    double seconds = a.cycles / (p.freqGHz * 1e9);
    EXPECT_NEAR(pm.edp(a), pm.energy(a).totalJ() * seconds, 1e-15);
}

// ---- design space -------------------------------------------------------------------

TEST(DesignSpace, Has192DistinctPoints)
{
    auto space = table2Space();
    EXPECT_EQ(space.size(), 192u);
    std::set<std::string> labels;
    for (const auto &p : space)
        labels.insert(p.label());
    EXPECT_EQ(labels.size(), 192u);
}

TEST(DesignSpace, DepthTiesFrequency)
{
    for (const auto &p : table2Space()) {
        if (p.depth == 5) {
            EXPECT_DOUBLE_EQ(p.freqGHz, 0.6);
        }
        if (p.depth == 9) {
            EXPECT_DOUBLE_EQ(p.freqGHz, 1.0);
        }
    }
}

TEST(DesignSpace, NsToCyclesScalesWithFrequency)
{
    DesignPoint fast = defaultDesignPoint(); // 1 GHz
    DesignPoint slow = fast;
    slow.depth = 5;
    slow.freqGHz = 0.6;
    MachineParams mf = machineFor(fast);
    MachineParams ms = machineFor(slow);
    EXPECT_EQ(mf.l2HitCycles, 10u); // 10 ns at 1 GHz
    EXPECT_EQ(ms.l2HitCycles, 6u);  // 10 ns at 600 MHz
    EXPECT_EQ(mf.memCycles, 60u);
    EXPECT_EQ(ms.memCycles, 36u);
    EXPECT_EQ(mf.frontendDepth, 6u);
    EXPECT_EQ(ms.frontendDepth, 2u);
}

TEST(DesignSpace, HierarchyMatchesPoint)
{
    DesignPoint p = defaultDesignPoint();
    p.l2KB = 256;
    p.l2Assoc = 16;
    HierarchyConfig h = hierarchyFor(p);
    EXPECT_EQ(h.l2.sizeBytes, 256u * 1024u);
    EXPECT_EQ(h.l2.assoc, 16u);
    EXPECT_EQ(h.l1i.sizeBytes, 32u * 1024u); // L1 fixed per Table 2
}

// ---- DseStudy -------------------------------------------------------------------------

TEST(DseStudy, ModelOnlyEvaluationIsCheapAndConsistent)
{
    DseStudy study(profileByName("tiffdither"), 20000);
    DesignPoint p = defaultDesignPoint();
    PointEvaluation ev = study.evaluate(p);
    EXPECT_FALSE(ev.has(kSimBackend));
    EXPECT_GT(ev.model().cycles, 0.0);
    EXPECT_GT(ev.model().edp, 0.0);
    // No simulation ran: the error must be absent, not "perfect".
    EXPECT_FALSE(ev.cpiError().has_value());
    // Deterministic.
    PointEvaluation ev2 = study.evaluate(p);
    EXPECT_DOUBLE_EQ(ev2.model().cycles, ev.model().cycles);
}

TEST(DseStudy, SimulationBackedEvaluation)
{
    DseStudy study(profileByName("sha"), 20000);
    PointEvaluation ev = study.evaluate(defaultDesignPoint(),
                                        backendSet("model,sim"));
    ASSERT_TRUE(ev.has(kSimBackend));
    EXPECT_GT(ev.sim()->cycles, 0.0);
    EXPECT_GT(ev.sim()->edp, 0.0);
    ASSERT_TRUE(ev.sim()->detail.has_value());
    EXPECT_GT(ev.sim()->detail->cycles, 0u);
    ASSERT_TRUE(ev.cpiError().has_value());
    EXPECT_LT(*ev.cpiError(), 0.25);
}

TEST(DseStudy, L2SweepChangesMemoryStats)
{
    DseStudy study(profileByName("gcc"), 30000);
    DesignPoint big = defaultDesignPoint();
    big.l2KB = 1024;
    DesignPoint small = defaultDesignPoint();
    small.l2KB = 128;
    double cyc_big = study.evaluate(big).model().cycles;
    double cyc_small = study.evaluate(small).model().cycles;
    EXPECT_GE(cyc_small, cyc_big);
}

TEST(DseStudy, PredictorSwapUsesItsProfile)
{
    DseStudy study(profileByName("patricia"), 30000);
    DesignPoint gshare = defaultDesignPoint();
    DesignPoint hybrid = defaultDesignPoint();
    hybrid.predictor = PredictorKind::Hybrid3K5;
    double cg = study.evaluate(gshare).model().cycles;
    double ch = study.evaluate(hybrid).model().cycles;
    EXPECT_NE(cg, ch); // the two predictors behave differently
}

} // namespace
} // namespace mech
